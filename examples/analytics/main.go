// Analytics demonstrates the paper's §6 "MapReduce task scheduling"
// use case: a toy analytics engine schedules its tasks both
// location-aware and storage-tier-aware using the tier information
// that getFileBlockLocations exposes, and prefetches the next job's
// input into the memory tier while the current job runs.
//
//	go run ./examples/analytics
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"sync"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/integration"
)

func main() {
	dir, err := os.MkdirTemp("", "octopus-analytics-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	cfg := integration.DefaultClusterConfig(dir)
	cfg.Throttle = true // emulate the paper's media speeds
	cfg.ThrottleScale = 0.2
	cluster, err := integration.StartCluster(cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	// Generate two "datasets" the jobs will scan.
	loader, err := cluster.Client("")
	if err != nil {
		log.Fatal(err)
	}
	defer loader.Close()
	payload := make([]byte, 24<<20)
	rand.New(rand.NewSource(3)).Read(payload)
	if err := loader.Mkdir("/warehouse", true); err != nil {
		log.Fatal(err)
	}
	for _, path := range []string{"/warehouse/day1", "/warehouse/day2"} {
		if err := loader.WriteFile(path, payload, core.NewReplicationVector(0, 1, 1, 0, 0)); err != nil {
			log.Fatal(err)
		}
	}

	// Job 1 scans day1; while it runs, the scheduler — which knows
	// day2 is queued next — asks OctopusFS to move one replica of
	// day2 into the memory tier (the §6 prefetching mechanism).
	fmt.Println("job 1: scanning /warehouse/day1 while prefetching day2 to memory")
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := loader.SetReplication("/warehouse/day2", core.NewReplicationVector(1, 1, 0, 0, 0)); err != nil {
			log.Printf("prefetch request failed: %v", err)
		}
	}()
	d1 := runScan(cluster, "/warehouse/day1")
	wg.Wait()

	// Give the replication monitor a moment to finish the move, as a
	// real scheduler naturally would while reducers drain.
	waitForMemoryReplica(loader, "/warehouse/day2")

	fmt.Println("job 2: scanning /warehouse/day2 (one replica now in memory)")
	d2 := runScan(cluster, "/warehouse/day2")

	fmt.Printf("\njob 1 (SSD/HDD replicas):   %v\n", d1.Round(time.Millisecond))
	fmt.Printf("job 2 (prefetched memory):  %v\n", d2.Round(time.Millisecond))
	fmt.Printf("prefetch speedup:           %.2fx\n", float64(d1)/float64(d2))
}

// runScan reads every block of a file with one tier-aware task per
// block: each task runs as the client of the worker holding the
// fastest replica, so reads are local to the best tier.
func runScan(cluster *integration.Cluster, path string) time.Duration {
	planner, err := cluster.Client("")
	if err != nil {
		log.Fatal(err)
	}
	defer planner.Close()
	blocks, err := planner.GetFileBlockLocations(path, 0, -1)
	if err != nil {
		log.Fatal(err)
	}

	start := time.Now()
	var wg sync.WaitGroup
	for _, b := range blocks {
		wg.Add(1)
		go func(b core.LocatedBlock) {
			defer wg.Done()
			// Tier-aware scheduling: run the task on the node hosting
			// the first (fastest) replica, so the read is local.
			taskNode := string(b.Locations[0].Worker)
			fs, err := cluster.Client(taskNode)
			if err != nil {
				log.Fatal(err)
			}
			defer fs.Close()
			r, err := fs.Open(path)
			if err != nil {
				log.Fatal(err)
			}
			defer r.Close()
			if _, err := r.Seek(b.Offset, 0); err != nil {
				log.Fatal(err)
			}
			buf := make([]byte, b.Block.NumBytes)
			if _, err := ioReadFull(r, buf); err != nil {
				log.Fatal(err)
			}
		}(b)
	}
	wg.Wait()
	return time.Since(start)
}

func waitForMemoryReplica(fs *client.FileSystem, path string) {
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		blocks, err := fs.GetFileBlockLocations(path, 0, -1)
		if err == nil {
			ready := true
			for _, b := range blocks {
				hasMem := false
				for _, loc := range b.Locations {
					if loc.Tier == core.TierMemory {
						hasMem = true
					}
				}
				if !hasMem {
					ready = false
				}
			}
			if ready {
				return
			}
		}
		time.Sleep(100 * time.Millisecond)
	}
	fmt.Println("(prefetch still in flight; continuing anyway)")
}

func ioReadFull(r *client.Reader, buf []byte) (int, error) {
	n := 0
	for n < len(buf) {
		m, err := r.Read(buf[n:])
		n += m
		if err != nil {
			return n, err
		}
	}
	return n, nil
}
