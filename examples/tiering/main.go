// Tiering demonstrates the full move/copy/delete semantics of
// replication vectors (paper §2.3): starting from ⟨1,0,2,0,0⟩ the
// example moves a replica between tiers, copies one, grows a tier's
// count, and finally drops the in-memory replica — watching the
// replication monitor enact each change asynchronously.
//
//	go run ./examples/tiering
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/integration"
)

func main() {
	dir, err := os.MkdirTemp("", "octopus-tiering-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	cluster, err := integration.StartCluster(integration.DefaultClusterConfig(dir))
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	fs, err := cluster.Client("")
	if err != nil {
		log.Fatal(err)
	}
	defer fs.Close()

	payload := make([]byte, 4<<20)
	rand.New(rand.NewSource(7)).Read(payload)
	start := core.NewReplicationVector(1, 0, 2, 0, 0)
	fmt.Printf("create /f with %s (1 memory + 2 HDD replicas)\n", start)
	if err := fs.WriteFile("/f", payload, start); err != nil {
		log.Fatal(err)
	}
	show(fs)

	steps := []struct {
		what string
		rv   core.ReplicationVector
	}{
		{"move: ⟨1,0,2⟩ → ⟨1,1,1⟩ shifts one replica from HDD to SSD", core.NewReplicationVector(1, 1, 1, 0, 0)},
		{"copy: ⟨1,1,1⟩ → ⟨1,1,2⟩ adds a fourth replica on HDD", core.NewReplicationVector(1, 1, 2, 0, 0)},
		{"shrink: ⟨1,1,2⟩ → ⟨1,1,1⟩ removes the extra HDD replica", core.NewReplicationVector(1, 1, 1, 0, 0)},
		{"drop memory: ⟨1,1,1⟩ → ⟨0,1,1⟩ deletes the volatile replica", core.NewReplicationVector(0, 1, 1, 0, 0)},
	}
	for _, step := range steps {
		fmt.Println("\n" + step.what)
		if err := fs.SetReplication("/f", step.rv); err != nil {
			log.Fatal(err)
		}
		if err := await(fs, step.rv); err != nil {
			log.Fatal(err)
		}
		show(fs)
	}

	// Content stays intact through every transition.
	got, err := fs.ReadFile("/f")
	if err != nil || len(got) != len(payload) {
		log.Fatalf("read after tier dance: %v", err)
	}
	fmt.Println("\ncontent verified after all tier transitions ✓")
}

// await polls until the block replicas match the vector (the
// replication monitor works asynchronously, paper §5).
func await(fs *client.FileSystem, want core.ReplicationVector) error {
	deadline := time.Now().Add(15 * time.Second)
	for {
		blocks, err := fs.GetFileBlockLocations("/f", 0, -1)
		if err != nil {
			return err
		}
		ok := true
		for _, b := range blocks {
			counts := map[core.StorageTier]int{}
			for _, loc := range b.Locations {
				counts[loc.Tier]++
			}
			for _, tier := range core.Tiers() {
				if counts[tier] != want.Tier(tier) {
					ok = false
				}
			}
		}
		if ok {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("timed out waiting for %s", want)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

func show(fs *client.FileSystem) {
	blocks, err := fs.GetFileBlockLocations("/f", 0, -1)
	if err != nil {
		log.Fatal(err)
	}
	for _, b := range blocks {
		fmt.Printf("  %s:", b.Block.ID)
		for _, loc := range b.Locations {
			fmt.Printf("  %s@%s", loc.Tier, loc.Worker)
		}
		fmt.Println()
	}
}
