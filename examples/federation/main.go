// Federation demonstrates horizontal name-service scaling (paper
// §2.1): two independent OctopusFS clusters — a memory/SSD-rich "hot"
// cluster and an HDD-heavy "cold" cluster — mounted under one
// namespace view, with a dataset written hot, aged, and archived cold.
//
//	go run ./examples/federation
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/integration"
)

func main() {
	dir, err := os.MkdirTemp("", "octopus-federation-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// Hot cluster: big memory + SSD media per worker.
	hotCfg := integration.DefaultClusterConfig(dir + "/hot")
	hotCfg.MemCapacity = 128 << 20
	hotCfg.SSDCapacity = 512 << 20
	hot, err := integration.StartCluster(hotCfg)
	if err != nil {
		log.Fatal(err)
	}
	defer hot.Close()

	// Cold cluster: HDD-only plus a remote tier for archival.
	coldCfg := integration.DefaultClusterConfig(dir + "/cold")
	coldCfg.MemCapacity = 0
	coldCfg.SSDCapacity = 0
	coldCfg.RemoteCapacity = 512 << 20
	cold, err := integration.StartCluster(coldCfg)
	if err != nil {
		log.Fatal(err)
	}
	defer cold.Close()

	fed, err := client.NewFederation(map[string]string{
		"/hot":  hot.Master.Addr(),
		"/cold": cold.Master.Addr(),
	}, client.WithOwner("federation-demo"))
	if err != nil {
		log.Fatal(err)
	}
	defer fed.Close()

	// Fresh data lands hot: one memory replica for interactive reads.
	payload := make([]byte, 8<<20)
	rand.New(rand.NewSource(11)).Read(payload)
	fmt.Println("writing /hot/events/today with <1,1,0,0,0>...")
	if err := fed.Mkdir("/hot/events", true); err != nil {
		log.Fatal(err)
	}
	if err := fed.WriteFile("/hot/events/today", payload, core.NewReplicationVector(1, 1, 0, 0, 0)); err != nil {
		log.Fatal(err)
	}

	// Archival: the data ages out — copy it to the cold cluster with
	// one HDD replica and one remote replica, then drop the hot copy.
	fmt.Println("archiving to /cold/events/2026-07-04 with <0,0,1,1,0>...")
	if err := fed.Mkdir("/cold/events", true); err != nil {
		log.Fatal(err)
	}
	data, err := fed.ReadFile("/hot/events/today")
	if err != nil {
		log.Fatal(err)
	}
	if err := fed.WriteFile("/cold/events/2026-07-04", data, core.NewReplicationVector(0, 0, 1, 1, 0)); err != nil {
		log.Fatal(err)
	}
	if err := fed.Delete("/hot/events/today", false); err != nil {
		log.Fatal(err)
	}

	// The federated view spans both clusters' tiers.
	reports, err := fed.GetStorageTierReports()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("federated storage tiers:")
	for _, r := range reports {
		fmt.Printf("  %-8s %2d media on %d workers, %5.1f%% remaining\n",
			r.Tier, r.NumMedia, r.NumWorkers, r.PercentRemaining())
	}

	got, err := fed.ReadFile("/cold/events/2026-07-04")
	if err != nil || len(got) != len(payload) {
		log.Fatalf("archived read: %v", err)
	}
	fmt.Println("archived data verified across clusters ✓")
}
