// Quickstart boots a complete in-process OctopusFS cluster — one
// master and four workers with memory, SSD, and HDD media — writes a
// file with an explicit replication vector, inspects where its blocks
// landed, and reads it back.
//
//	go run ./examples/quickstart
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"
	"os"

	"repro/internal/core"
	"repro/internal/integration"
)

func main() {
	dir, err := os.MkdirTemp("", "octopus-quickstart-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// A 4-worker cluster across 2 racks; every worker has one memory
	// media, one SSD directory, and three HDD directories.
	fmt.Println("starting in-process OctopusFS cluster...")
	cluster, err := integration.StartCluster(integration.DefaultClusterConfig(dir))
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	fs, err := cluster.Client("")
	if err != nil {
		log.Fatal(err)
	}
	defer fs.Close()

	// Write a 10 MB file with one replica in memory, one on SSD, and
	// one on HDD — the replication vector ⟨1,1,1,0,0⟩ of paper §2.3.
	payload := make([]byte, 10<<20)
	rand.New(rand.NewSource(1)).Read(payload)
	rv := core.NewReplicationVector(1, 1, 1, 0, 0)
	fmt.Printf("writing /demo/data.bin with replication vector %s...\n", rv)
	if err := fs.Mkdir("/demo", true); err != nil {
		log.Fatal(err)
	}
	if err := fs.WriteFile("/demo/data.bin", payload, rv); err != nil {
		log.Fatal(err)
	}

	// Where did the blocks land? getFileBlockLocations exposes the
	// storage tier of every replica (paper Table 1).
	blocks, err := fs.GetFileBlockLocations("/demo/data.bin", 0, -1)
	if err != nil {
		log.Fatal(err)
	}
	for _, b := range blocks {
		fmt.Printf("  %s (%d bytes):\n", b.Block.ID, b.Block.NumBytes)
		for _, loc := range b.Locations {
			fmt.Printf("    %-8s on %-8s media %s\n", loc.Tier, loc.Worker, loc.Storage)
		}
	}

	// Cluster-wide tier statistics (paper Table 1:
	// getStorageTierReports).
	reports, err := fs.GetStorageTierReports()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("storage tiers:")
	for _, r := range reports {
		fmt.Printf("  %-8s %2d media on %d workers, %5.1f%% remaining\n",
			r.Tier, r.NumMedia, r.NumWorkers, r.PercentRemaining())
	}

	// Read it back — the client reads from the fastest replica first.
	got, err := fs.ReadFile("/demo/data.bin")
	if err != nil {
		log.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		log.Fatal("content mismatch")
	}
	fmt.Printf("read back %d bytes: content verified ✓\n", len(got))
}
