// Cache demonstrates the paper's §6 "multi-level cache management"
// use case: an application-level cache manager sitting on top of
// OctopusFS promotes hot datasets into faster tiers and demotes cold
// ones — purely through the replication-vector API, with per-tier
// quotas keeping memory usage bounded.
//
//	go run ./examples/cache
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"sort"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/integration"
)

// cacheManager promotes the hottest files to memory and demotes the
// rest, within a memory budget.
type cacheManager struct {
	fs       *client.FileSystem
	hits     map[string]int
	inMemory map[string]bool
	budget   int // max files resident in the memory tier
}

func (cm *cacheManager) access(path string) error {
	cm.hits[path]++
	if _, err := cm.fs.ReadFile(path); err != nil {
		return err
	}
	return cm.rebalance()
}

// rebalance keeps the budget-many hottest files in memory.
func (cm *cacheManager) rebalance() error {
	type entry struct {
		path string
		hits int
	}
	var entries []entry
	for p, h := range cm.hits {
		entries = append(entries, entry{p, h})
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].hits != entries[j].hits {
			return entries[i].hits > entries[j].hits
		}
		return entries[i].path < entries[j].path
	})
	for rank, e := range entries {
		wantHot := rank < cm.budget
		if wantHot == cm.inMemory[e.path] {
			continue
		}
		rv := core.NewReplicationVector(0, 1, 1, 0, 0) // cold: SSD+HDD
		if wantHot {
			rv = core.NewReplicationVector(1, 1, 1, 0, 0) // hot: +memory copy
			fmt.Printf("  cache: promote %s (%d hits)\n", e.path, e.hits)
		} else {
			fmt.Printf("  cache: demote  %s (%d hits)\n", e.path, e.hits)
		}
		if err := cm.fs.SetReplication(e.path, rv); err != nil {
			return err
		}
		cm.inMemory[e.path] = wantHot
	}
	return nil
}

func main() {
	dir, err := os.MkdirTemp("", "octopus-cache-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	cluster, err := integration.StartCluster(integration.DefaultClusterConfig(dir))
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	fs, err := cluster.Client("")
	if err != nil {
		log.Fatal(err)
	}
	defer fs.Close()

	// Bound the cache directory's memory-tier footprint with a quota
	// (paper §1: per-media quotas for multi-tenancy).
	if err := fs.Mkdir("/tables", true); err != nil {
		log.Fatal(err)
	}
	if err := fs.SetQuota("/tables", core.TierMemory, 64<<20); err != nil {
		log.Fatal(err)
	}

	payload := make([]byte, 4<<20)
	rand.New(rand.NewSource(5)).Read(payload)
	tables := []string{"/tables/users", "/tables/orders", "/tables/events", "/tables/logs"}
	for _, t := range tables {
		if err := fs.WriteFile(t, payload, core.NewReplicationVector(0, 1, 1, 0, 0)); err != nil {
			log.Fatal(err)
		}
	}

	cm := &cacheManager{fs: fs, hits: map[string]int{}, inMemory: map[string]bool{}, budget: 2}

	// A skewed access pattern: users and orders are hot.
	fmt.Println("running skewed query workload...")
	pattern := []string{
		"/tables/users", "/tables/orders", "/tables/users", "/tables/events",
		"/tables/users", "/tables/orders", "/tables/logs", "/tables/users",
		"/tables/orders", "/tables/users",
	}
	for _, p := range pattern {
		if err := cm.access(p); err != nil {
			log.Fatal(err)
		}
	}

	// Give the replication monitor a moment, then show where data sits.
	time.Sleep(2 * time.Second)
	fmt.Println("\nfinal data placement:")
	for _, t := range tables {
		blocks, err := fs.GetFileBlockLocations(t, 0, -1)
		if err != nil {
			log.Fatal(err)
		}
		tiers := map[core.StorageTier]int{}
		for _, b := range blocks {
			for _, loc := range b.Locations {
				tiers[loc.Tier]++
			}
		}
		fmt.Printf("  %-16s hits=%d  memory=%d ssd=%d hdd=%d\n",
			t, cm.hits[t], tiers[core.TierMemory], tiers[core.TierSSD], tiers[core.TierHDD])
	}
}
