// Command octopus-worker runs an OctopusFS Worker (paper §2.2): it
// manages the storage media described by -media, registers with the
// master, and serves block reads and pipelined writes.
//
// Example with one memory media, one SSD-backed and two HDD-backed
// directories:
//
//	octopus-worker -master host:9000 -node node1 -rack /rack1 \
//	  -media memory:4096 \
//	  -media ssd:65536:/mnt/ssd0/blocks \
//	  -media hdd:409600:/mnt/hdd0/blocks \
//	  -media hdd:409600:/mnt/hdd1/blocks
//
// Each -media value is kind:capacityMB[:dir[:writeMBps:readMBps]];
// the optional throughput pair throttles the media to emulate a slower
// device (used to reproduce the paper's cluster on one machine).
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/rpc"
	"repro/internal/storage"
	"repro/internal/worker"
)

// mediaFlags collects repeated -media flags.
type mediaFlags []storage.MediaConfig

func (m *mediaFlags) String() string { return fmt.Sprintf("%d media", len(*m)) }

func (m *mediaFlags) Set(v string) error {
	parts := strings.Split(v, ":")
	if len(parts) < 2 {
		return fmt.Errorf("media %q: want kind:capacityMB[:dir[:writeMBps:readMBps]]", v)
	}
	tier, err := storage.TierFromKind(parts[0])
	if err != nil {
		return err
	}
	capMB, err := strconv.ParseInt(parts[1], 10, 64)
	if err != nil || capMB <= 0 {
		return fmt.Errorf("media %q: bad capacity %q", v, parts[1])
	}
	cfg := storage.MediaConfig{Tier: tier, Capacity: capMB << 20}
	if len(parts) >= 3 {
		cfg.Dir = parts[2]
	}
	if len(parts) >= 5 {
		if cfg.WriteMBps, err = strconv.ParseFloat(parts[3], 64); err != nil {
			return fmt.Errorf("media %q: bad write rate %q", v, parts[3])
		}
		if cfg.ReadMBps, err = strconv.ParseFloat(parts[4], 64); err != nil {
			return fmt.Errorf("media %q: bad read rate %q", v, parts[4])
		}
	}
	*m = append(*m, cfg)
	return nil
}

func main() {
	var media mediaFlags
	var (
		masterAddr = flag.String("master", "localhost:9000", "master RPC address")
		node       = flag.String("node", "", "topology node name (default: hostname)")
		rack       = flag.String("rack", "", "rack path, e.g. /rack1")
		dataAddr   = flag.String("data", ":9866", "data transfer listen address")
		netMBps    = flag.Float64("net-mbps", 1250, "advertised network throughput (MB/s)")
		probeMB    = flag.Int64("probe-mb", 8, "startup throughput probe size per media (0 = skip)")
		httpAddr   = flag.String("http", "", "HTTP status/metrics endpoint address (e.g. :9864; empty disables)")
		slowOp     = flag.Duration("slowop", 100*time.Millisecond, "slow-op log threshold (0 logs every op, negative disables)")
		traceRate  = flag.Float64("trace-sample", 0.1, "fraction of fast traces retained (slow traces always kept)")
		eventCap   = flag.Int("events", 0, "event journal capacity (0 = default)")
		pprofOn    = flag.Bool("pprof", false, "serve net/http/pprof under /debug/pprof/ on the -http endpoint")
		poolSize   = flag.Int("data-pool-size", rpc.DefaultDataPoolSize, "idle data connections kept per peer worker (0 disables pooling)")
		poolIdle   = flag.Duration("data-pool-idle", rpc.DefaultDataPoolIdle, "max idle age of a pooled data connection")
	)
	flag.Var(&media, "media", "media spec kind:capacityMB[:dir[:writeMBps:readMBps]] (repeatable)")
	flag.Parse()
	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))
	rpc.SetDataPool(*poolSize, *poolIdle)

	if len(media) == 0 {
		fmt.Fprintln(os.Stderr, "octopus-worker: at least one -media is required")
		os.Exit(2)
	}
	name := *node
	if name == "" {
		host, err := os.Hostname()
		if err != nil {
			fmt.Fprintf(os.Stderr, "octopus-worker: resolving hostname: %v\n", err)
			os.Exit(1)
		}
		name = host
	}
	// Derive cluster-unique media IDs from the node name.
	counts := map[core.StorageTier]int{}
	for i := range media {
		media[i].ID = core.StorageID(fmt.Sprintf("%s:%s%d",
			name, strings.ToLower(media[i].Tier.String()), counts[media[i].Tier]))
		counts[media[i].Tier]++
	}

	w, err := worker.New(worker.Config{
		ID:              core.WorkerID(name),
		Node:            name,
		Rack:            *rack,
		MasterAddr:      *masterAddr,
		DataAddr:        *dataAddr,
		Media:           media,
		NetMBps:         *netMBps,
		ProbeBytes:      *probeMB << 20,
		Logger:          logger,
		SlowOpThreshold: *slowOp,
		TraceSample:     *traceRate,
		EventCapacity:   *eventCap,
		Pprof:           *pprofOn,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "octopus-worker: %v\n", err)
		os.Exit(1)
	}
	if *httpAddr != "" {
		bound, err := w.ServeHTTP(*httpAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "octopus-worker: %v\n", err)
			os.Exit(1)
		}
		logger.Info("http status endpoint", "addr", bound)
	}
	logger.Info("worker running", "id", w.ID(), "data", w.DataAddr(), "media", len(media))

	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	<-ch
	w.Close()
}
