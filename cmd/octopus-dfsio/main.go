// Command octopus-dfsio is the live-cluster counterpart of the
// simulator's DFSIO workload (paper §7.1): it writes and reads data
// against a running OctopusFS deployment with a configurable degree of
// parallelism and replication vector, reporting aggregate and
// per-thread throughput. Use it to reproduce the paper's tiered-storage
// experiments on real hardware.
//
//	octopus-dfsio -master host:9000 -threads 9 -total-mb 1024 \
//	    -repvector "<1,0,2,0,0>" write read
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"sync"
	"time"

	"repro/internal/client"
	"repro/internal/core"
)

func main() {
	var (
		masterAddr = flag.String("master", "localhost:9000", "master RPC address")
		threads    = flag.Int("threads", 4, "degree of parallelism d")
		totalMB    = flag.Int64("total-mb", 256, "aggregate payload to write (MB)")
		rvText     = flag.String("repvector", "<0,0,0,0,3>", "replication vector")
		dir        = flag.String("dir", "/benchmarks/dfsio", "target directory")
		node       = flag.String("node", "", "this client's topology node")
		keep       = flag.Bool("keep", false, "keep the files after the run")
	)
	flag.Parse()
	phases := flag.Args()
	if len(phases) == 0 {
		phases = []string{"write", "read"}
	}

	rv, err := core.ParseReplicationVector(*rvText)
	if err != nil {
		fatal(err)
	}
	opts := []client.Option{client.WithOwner("dfsio")}
	if *node != "" {
		opts = append(opts, client.WithNode(*node))
	}
	setup, err := client.Dial(*masterAddr, opts...)
	if err != nil {
		fatal(err)
	}
	defer setup.Close()
	if err := setup.Mkdir(*dir, true); err != nil {
		fatal(err)
	}

	perThreadMB := *totalMB / int64(*threads)
	for _, phase := range phases {
		switch phase {
		case "write":
			runPhase("write", *masterAddr, opts, *threads, func(fs *client.FileSystem, t int) (int64, error) {
				return writeOne(fs, path(*dir, t), perThreadMB, rv)
			})
		case "read":
			runPhase("read", *masterAddr, opts, *threads, func(fs *client.FileSystem, t int) (int64, error) {
				return readOne(fs, path(*dir, t))
			})
		case "clean":
			if err := setup.Delete(*dir, true); err != nil {
				fatal(err)
			}
			fmt.Println("cleaned", *dir)
		default:
			fatal(fmt.Errorf("unknown phase %q (want write, read, clean)", phase))
		}
	}
	if !*keep && contains(phases, "read") {
		setup.Delete(*dir, true)
	}
}

func path(dir string, t int) string { return fmt.Sprintf("%s/part-%04d", dir, t) }

// runPhase executes fn on every thread concurrently and reports the
// paper's throughput metrics.
func runPhase(name, addr string, opts []client.Option, threads int,
	fn func(fs *client.FileSystem, t int) (int64, error)) {

	var wg sync.WaitGroup
	bytesPer := make([]int64, threads)
	secsPer := make([]float64, threads)
	errs := make([]error, threads)
	start := time.Now()
	for t := 0; t < threads; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			fs, err := client.Dial(addr, opts...)
			if err != nil {
				errs[t] = err
				return
			}
			defer fs.Close()
			t0 := time.Now()
			n, err := fn(fs, t)
			secsPer[t] = time.Since(t0).Seconds()
			bytesPer[t] = n
			errs[t] = err
		}(t)
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()

	var total int64
	var rateSum float64
	for t := 0; t < threads; t++ {
		if errs[t] != nil {
			fatal(fmt.Errorf("%s thread %d: %w", name, t, errs[t]))
		}
		total += bytesPer[t]
		if secsPer[t] > 0 {
			rateSum += float64(bytesPer[t]) / 1e6 / secsPer[t]
		}
	}
	fmt.Printf("%s: %d MB in %.2fs — aggregate %.1f MB/s, avg task rate %.1f MB/s\n",
		name, total>>20, elapsed, float64(total)/1e6/elapsed, rateSum/float64(threads))
}

func writeOne(fs *client.FileSystem, p string, mb int64, rv core.ReplicationVector) (int64, error) {
	w, err := fs.Create(p, client.CreateOptions{RepVector: rv, Overwrite: true})
	if err != nil {
		return 0, err
	}
	rng := rand.New(rand.NewSource(int64(len(p))))
	buf := make([]byte, 1<<20)
	var n int64
	for i := int64(0); i < mb; i++ {
		rng.Read(buf)
		m, err := w.Write(buf)
		n += int64(m)
		if err != nil {
			w.Abort()
			return n, err
		}
	}
	return n, w.Close()
}

func readOne(fs *client.FileSystem, p string) (int64, error) {
	r, err := fs.Open(p)
	if err != nil {
		return 0, err
	}
	defer r.Close()
	return io.Copy(io.Discard, r)
}

func contains(xs []string, want string) bool {
	for _, x := range xs {
		if x == want {
			return true
		}
	}
	return false
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "octopus-dfsio: %v\n", err)
	os.Exit(1)
}
