// Command octopus-master runs an OctopusFS Primary Master or, with
// -backup, a Backup Master that mirrors a primary and persists
// periodic namespace checkpoints (paper §2.1).
//
// Primary:
//
//	octopus-master -listen :9000 -meta /var/octopusfs/meta
//
// Backup:
//
//	octopus-master -backup -primary host:9000 -meta /var/octopusfs/backup
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/master"
	"repro/internal/policy"
	"repro/internal/rpc"
)

func main() {
	var (
		listen    = flag.String("listen", ":9000", "RPC listen address")
		meta      = flag.String("meta", "", "metadata directory (empty = in-memory only)")
		editSync  = flag.Bool("edit-sync", false, "fsync the edit log after every append (durability over latency)")
		auditCap  = flag.Int("audit", 0, "namespace audit log capacity (0 = default)")
		placement = flag.String("placement", "moop", "placement policy: moop, db, lb, ft, tm, rulebased, hdfs, hdfs-ssd")
		retrieval = flag.String("retrieval", "octopus", "retrieval policy: octopus, hdfs")
		useMemory = flag.Bool("use-memory", false, "let the MOOP policy place unspecified replicas in memory")
		blockMB   = flag.Int64("block-mb", 128, "default block size in MB")
		httpAddr  = flag.String("http", "", "HTTP status/metrics endpoint address (e.g. :9870; empty disables)")
		slowOp    = flag.Duration("slowop", 100*time.Millisecond, "slow-op log threshold (0 logs every op, negative disables)")
		traceRate = flag.Float64("trace-sample", 0.1, "fraction of fast traces retained (slow traces always kept)")
		eventCap  = flag.Int("events", 0, "event journal capacity (0 = default)")
		histEvery = flag.Duration("history-interval", 0, "telemetry history sampling interval (0 = default, negative disables)")
		heatHalf  = flag.Duration("heat-half-life", 0, "access-heat decay half-life (0 = default 60s)")
		moverIvl  = flag.Duration("mover-interval", 0, "tier mover pass interval (0 = default 2s, negative disables)")
		moverMax  = flag.Int("mover-max-moves", 0, "max concurrent tier moves (0 = default 4)")
		moverBps  = flag.Int64("mover-mbps", 0, "tier mover bandwidth budget in MB/s (0 = default 64, negative unlimited)")
		moverCool = flag.Duration("mover-cooldown", 0, "per-block cooldown between tier moves (0 = default 30s)")
		pprofOn   = flag.Bool("pprof", false, "serve net/http/pprof under /debug/pprof/ on the -http endpoint")
		backup    = flag.Bool("backup", false, "run as a Backup Master")
		primary   = flag.String("primary", "", "primary master address (backup mode)")
		interval  = flag.Duration("checkpoint-interval", 30*time.Second, "backup checkpoint interval")
		poolSize  = flag.Int("data-pool-size", rpc.DefaultDataPoolSize, "idle data connections kept per worker (0 disables pooling)")
		poolIdle  = flag.Duration("data-pool-idle", rpc.DefaultDataPoolIdle, "max idle age of a pooled data connection")
	)
	flag.Parse()
	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))
	rpc.SetDataPool(*poolSize, *poolIdle)

	if *backup {
		if *primary == "" {
			fmt.Fprintln(os.Stderr, "octopus-master: -backup requires -primary")
			os.Exit(2)
		}
		b, err := master.NewBackup(master.BackupConfig{
			PrimaryAddr:   *primary,
			CheckpointDir: *meta,
			Interval:      *interval,
			Logger:        logger,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "octopus-master: %v\n", err)
			os.Exit(1)
		}
		logger.Info("backup master running", "primary", *primary, "checkpoints", *meta)
		waitForSignal()
		b.Close()
		return
	}

	pol, err := placementByName(*placement, *useMemory)
	if err != nil {
		fmt.Fprintf(os.Stderr, "octopus-master: %v\n", err)
		os.Exit(2)
	}
	ret, err := retrievalByName(*retrieval)
	if err != nil {
		fmt.Fprintf(os.Stderr, "octopus-master: %v\n", err)
		os.Exit(2)
	}
	m, err := master.New(master.Config{
		ListenAddr:      *listen,
		MetaDir:         *meta,
		EditLogSync:     *editSync,
		AuditCapacity:   *auditCap,
		Placement:       pol,
		Retrieval:       ret,
		BlockSize:       *blockMB << 20,
		Logger:          logger,
		SlowOpThreshold: *slowOp,
		TraceSample:     *traceRate,
		EventCapacity:   *eventCap,
		HistoryInterval: *histEvery,
		HeatHalfLife:    *heatHalf,
		MoverInterval:   *moverIvl,
		MoverMaxMoves:   *moverMax,
		MoverBytesPerSec: func() int64 {
			if *moverBps == 0 {
				return 0
			}
			if *moverBps < 0 {
				return -1
			}
			return *moverBps << 20
		}(),
		MoverCooldown: *moverCool,
		Pprof:         *pprofOn,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "octopus-master: %v\n", err)
		os.Exit(1)
	}
	if *httpAddr != "" {
		bound, err := m.ServeHTTP(*httpAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "octopus-master: %v\n", err)
			os.Exit(1)
		}
		logger.Info("http status endpoint", "addr", bound)
	}
	logger.Info("primary master running", "addr", m.Addr(), "placement", pol.Name(), "retrieval", ret.Name())
	waitForSignal()
	m.Close()
}

func placementByName(name string, useMemory bool) (policy.PlacementPolicy, error) {
	switch name {
	case "moop":
		cfg := policy.DefaultMOOPConfig()
		cfg.UseMemory = useMemory
		return policy.NewMOOPPolicy(cfg), nil
	case "db":
		return policy.NewSingleObjectivePolicy(policy.DataBalancing), nil
	case "lb":
		return policy.NewSingleObjectivePolicy(policy.LoadBalancing), nil
	case "ft":
		return policy.NewSingleObjectivePolicy(policy.FaultTolerance), nil
	case "tm":
		return policy.NewSingleObjectivePolicy(policy.ThroughputMax), nil
	case "rulebased":
		return policy.NewRuleBasedPolicy(), nil
	case "hdfs":
		return policy.NewHDFSPolicy(), nil
	case "hdfs-ssd":
		return policy.NewHDFSWithSSDPolicy(), nil
	}
	return nil, fmt.Errorf("unknown placement policy %q", name)
}

func retrievalByName(name string) (policy.RetrievalPolicy, error) {
	switch name {
	case "octopus":
		return policy.NewOctopusRetrievalPolicy(), nil
	case "hdfs":
		return policy.NewHDFSRetrievalPolicy(), nil
	}
	return nil, fmt.Errorf("unknown retrieval policy %q", name)
}

func waitForSignal() {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	<-ch
}
