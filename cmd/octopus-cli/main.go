// Command octopus-cli is the OctopusFS file system shell: the
// command-line face of the Client API (paper §2.3, Table 1).
//
//	octopus-cli -master host:9000 <command> [args]
//
// Commands:
//
//	mkdir <path>                     create a directory (with parents)
//	ls <path>                        list a directory
//	put <local> <path> [repvector]   upload a file (e.g. "<1,0,2,0,0>")
//	get <path> <local>               download a file
//	cat <path>                       print a file
//	rm [-r] <path>                   delete
//	mv <src> <dst>                   rename
//	stat <path>                      show file status
//	setrep <path> <repvector>        change the replication vector
//	locations <path>                 show block locations with tiers
//	tiers                            show storage tier reports
//	report                           per-worker media statistics
//	quota <dir> <tier|total> <MB>    set a per-tier space quota (-1 clears)
//	du <path>                        subtree usage incl. per-tier bytes
//	fsck <path>                      per-file replication health
//	metrics [-json] <http-addr>      dump a daemon's /metrics endpoint
//	trace <req-id>                   print the merged span timeline of one request
//	events [-json] [-since n] [-type t] [-limit n]
//	                                 page through the cluster event journal
//	audit [-json] [-follow] [-since n] [-op name] [-limit n]
//	                                 tail the namespace audit log: per-op
//	                                 phase breakdown (queue/lock/apply/append/fsync)
//	transfers [-json] [-since n] [-op kind] [-limit n]
//	                                 data-path flight recorder: per-transfer
//	                                 phase breakdown (dial/disk/net/ack) from
//	                                 the master and every live worker
//	top [-last n]                    cluster telemetry: live sample + history
//	heat [-json] [-top n] [-file p] [-misplaced]
//	                                 hottest files/blocks + tier-fitness report
//	health                           probe master + all live workers' /healthz
//	explain <path>                   why each replica landed where it did
//	decommission <worker-id>         remove a worker from service
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/audit"
	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/rpc"
	"repro/internal/trace"
	"repro/internal/xfer"
)

// knownCommands lists every subcommand run() dispatches on, so main
// can reject typos with usage and a non-zero exit before dialling the
// master.
var knownCommands = map[string]bool{
	"mkdir": true, "ls": true, "put": true, "get": true, "cat": true,
	"rm": true, "mv": true, "stat": true, "setrep": true, "locations": true,
	"tiers": true, "report": true, "quota": true, "du": true, "fsck": true,
	"trace": true, "events": true, "audit": true, "top": true, "heat": true,
	"health": true, "explain": true, "decommission": true, "mover": true,
	"transfers": true,
}

func main() {
	masterAddr := flag.String("master", "localhost:9000", "master RPC address")
	node := flag.String("node", "", "this client's topology node name (for locality)")
	readahead := flag.Int("readahead", 4, "blocks to prefetch ahead of a sequential read (0 disables)")
	writeWindow := flag.Int("write-window", 1, "flushed blocks with outstanding pipeline acks during writes (0 = synchronous)")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}

	// metrics talks to a daemon's HTTP endpoint, not the master RPC
	// port, so handle it before dialling.
	if args[0] == "metrics" {
		fl := flag.NewFlagSet("metrics", flag.ExitOnError)
		jsonOut := fl.Bool("json", false, "dump the JSON exposition instead of Prometheus text")
		fl.Parse(args[1:])
		need(fl.Args(), 1)
		if err := showMetrics(os.Stdout, fl.Args()[0], *jsonOut); err != nil {
			fatal(err)
		}
		return
	}
	if !knownCommands[args[0]] {
		fmt.Fprintf(os.Stderr, "octopus-cli: unknown command %q\n", args[0])
		usage()
		os.Exit(2)
	}

	opts := []client.Option{
		client.WithOwner(os.Getenv("USER")),
		client.WithReadahead(*readahead),
		client.WithWriteWindow(*writeWindow),
	}
	if *node != "" {
		opts = append(opts, client.WithNode(*node))
	}
	fs, err := client.Dial(*masterAddr, opts...)
	if err != nil {
		fatal(err)
	}
	defer fs.Close()

	if err := run(fs, args); err != nil {
		fatal(err)
	}
}

func run(fs *client.FileSystem, args []string) error {
	cmd, rest := args[0], args[1:]
	switch cmd {
	case "mkdir":
		need(rest, 1)
		return fs.Mkdir(rest[0], true)

	case "ls":
		need(rest, 1)
		entries, err := fs.List(rest[0])
		if err != nil {
			return err
		}
		for _, e := range entries {
			kind := "-"
			if e.IsDir {
				kind = "d"
			}
			fmt.Printf("%s %-14s %12d  %s  %s\n", kind, e.RepVector, e.Length,
				time.Unix(0, e.ModTime).Format("2006-01-02 15:04"), e.Path)
		}
		return nil

	case "put":
		need(rest, 2)
		rv := core.ReplicationVectorFromFactor(3)
		if len(rest) >= 3 {
			parsed, err := core.ParseReplicationVector(rest[2])
			if err != nil {
				return err
			}
			rv = parsed
		}
		in, err := os.Open(rest[0])
		if err != nil {
			return err
		}
		defer in.Close()
		w, err := fs.Create(rest[1], client.CreateOptions{RepVector: rv, Overwrite: true})
		if err != nil {
			return err
		}
		if _, err := io.Copy(w, in); err != nil {
			w.Abort()
			return err
		}
		return w.Close()

	case "get":
		need(rest, 2)
		r, err := fs.Open(rest[0])
		if err != nil {
			return err
		}
		defer r.Close()
		out, err := os.Create(rest[1])
		if err != nil {
			return err
		}
		if _, err := io.Copy(out, r); err != nil {
			out.Close()
			return err
		}
		return out.Close()

	case "cat":
		need(rest, 1)
		r, err := fs.Open(rest[0])
		if err != nil {
			return err
		}
		defer r.Close()
		_, err = io.Copy(os.Stdout, r)
		return err

	case "rm":
		recursive := false
		if len(rest) > 0 && rest[0] == "-r" {
			recursive, rest = true, rest[1:]
		}
		need(rest, 1)
		return fs.Delete(rest[0], recursive)

	case "mv":
		need(rest, 2)
		return fs.Rename(rest[0], rest[1])

	case "stat":
		need(rest, 1)
		st, err := fs.Stat(rest[0])
		if err != nil {
			return err
		}
		fmt.Printf("path:       %s\n", st.Path)
		fmt.Printf("type:       %s\n", map[bool]string{true: "directory", false: "file"}[st.IsDir])
		if !st.IsDir {
			fmt.Printf("length:     %d\n", st.Length)
			fmt.Printf("repvector:  %s\n", st.RepVector)
			fmt.Printf("block size: %d\n", st.BlockSize)
		}
		fmt.Printf("owner:      %s\n", st.Owner)
		fmt.Printf("modified:   %s\n", time.Unix(0, st.ModTime).Format(time.RFC3339))
		return nil

	case "setrep":
		need(rest, 2)
		rv, err := core.ParseReplicationVector(rest[1])
		if err != nil {
			return err
		}
		return fs.SetReplication(rest[0], rv)

	case "locations":
		need(rest, 1)
		blocks, err := fs.GetFileBlockLocations(rest[0], 0, -1)
		if err != nil {
			return err
		}
		for _, b := range blocks {
			fmt.Printf("%s offset=%d len=%d\n", b.Block.ID, b.Offset, b.Block.NumBytes)
			for _, loc := range b.Locations {
				fmt.Printf("  %-8s %-12s %-18s %s\n", loc.Tier, loc.Worker, loc.Storage, loc.Rack)
			}
		}
		return nil

	case "tiers":
		reports, err := fs.GetStorageTierReports()
		if err != nil {
			return err
		}
		fmt.Printf("%-10s%8s%10s%14s%14s%12s%12s\n",
			"tier", "media", "workers", "capacity MB", "remaining MB", "write MB/s", "read MB/s")
		for _, r := range reports {
			fmt.Printf("%-10s%8d%10d%14d%14d%12.1f%12.1f\n",
				r.Tier, r.NumMedia, r.NumWorkers, r.Capacity>>20, r.Remaining>>20,
				r.WriteThruMBps, r.ReadThruMBps)
		}
		return nil

	case "du":
		need(rest, 1)
		sum, err := fs.GetContentSummary(rest[0])
		if err != nil {
			return err
		}
		fmt.Printf("path:        %s\n", rest[0])
		fmt.Printf("directories: %d\n", sum.Directories)
		fmt.Printf("files:       %d\n", sum.Files)
		fmt.Printf("bytes:       %d\n", sum.Bytes)
		names := []string{"memory", "ssd", "hdd", "remote", "total"}
		for i, n := range names {
			if sum.TierBytes[i] > 0 {
				fmt.Printf("%-8s replica bytes: %d\n", n, sum.TierBytes[i])
			}
		}
		return nil

	case "fsck":
		need(rest, 1)
		files, err := fs.Fsck(rest[0])
		if err != nil {
			return err
		}
		healthy := 0
		for _, f := range files {
			status := "HEALTHY"
			switch {
			case f.MissingBlocks > 0:
				status = "CORRUPT (missing blocks)"
			case f.UnderConstruction:
				status = "OPEN"
			case f.MissingReplicas > 0 || f.ExcessReplicas > 0:
				status = fmt.Sprintf("DEGRADED (missing %d, excess %d)", f.MissingReplicas, f.ExcessReplicas)
			default:
				healthy++
			}
			fmt.Printf("%-40s %-14s blocks=%d %s\n", f.Path, f.Expected, f.Blocks, status)
		}
		fmt.Printf("%d/%d files healthy\n", healthy, len(files))
		return nil

	case "report":
		workers, err := fs.GetWorkerReports()
		if err != nil {
			return err
		}
		for _, w := range workers {
			fmt.Printf("%s  node=%s rack=%s data=%s net=%.0fMB/s\n",
				w.ID, w.Node, w.Rack, w.DataAddr, w.NetMBps)
			for _, m := range w.Media {
				usedPct := 0.0
				if m.Capacity > 0 {
					usedPct = 100 * float64(m.Capacity-m.Remaining) / float64(m.Capacity)
				}
				fmt.Printf("  %-20s %-8s cap=%6dMB used=%5.1f%% conns=%d w=%.0f r=%.0f MB/s\n",
					m.ID, m.Tier, m.Capacity>>20, usedPct, m.Connections, m.WriteMBps, m.ReadMBps)
			}
		}
		return nil

	case "quota":
		need(rest, 3)
		tier := core.TierUnspecified
		if rest[1] != "total" {
			parsed, err := core.ParseTier(rest[1])
			if err != nil {
				return err
			}
			tier = parsed
		}
		mb, err := strconv.ParseInt(rest[2], 10, 64)
		if err != nil {
			return err
		}
		bytes := mb << 20
		if mb < 0 {
			bytes = -1
		}
		return fs.SetQuota(rest[0], tier, bytes)

	case "trace":
		need(rest, 1)
		spans, err := fs.Trace(rest[0])
		if err != nil {
			return err
		}
		fmt.Printf("trace %s: %d spans\n", rest[0], len(spans))
		return trace.RenderTree(os.Stdout, spans)

	case "events":
		fl := flag.NewFlagSet("events", flag.ContinueOnError)
		jsonOut := fl.Bool("json", false, "emit the page as JSON")
		since := fl.Uint64("since", 0, "exclusive sequence cursor (0 = oldest retained)")
		typ := fl.String("type", "", "filter by event type")
		limit := fl.Int("limit", 0, "page size cap (0 = server default)")
		if err := fl.Parse(rest); err != nil {
			return err
		}
		page, counts, err := fs.Events(*since, *typ, *limit)
		if err != nil {
			return err
		}
		if *jsonOut {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			return enc.Encode(struct {
				Events  any               `json:"events"`
				Next    uint64            `json:"next"`
				Missed  uint64            `json:"missed"`
				Evicted uint64            `json:"evicted"`
				Counts  map[string]uint64 `json:"counts"`
			}{page.Events, page.Next, page.Missed, page.Evicted, counts})
		}
		for _, e := range page.Events {
			line := fmt.Sprintf("%6d  %s  %-5s %-22s %s",
				e.Seq, time.Unix(0, e.Time).Format("15:04:05.000"), e.Severity, e.Type, e.Message)
			if len(e.Attrs) > 0 {
				keys := make([]string, 0, len(e.Attrs))
				for k := range e.Attrs {
					keys = append(keys, k)
				}
				sort.Strings(keys)
				for _, k := range keys {
					line += fmt.Sprintf(" %s=%s", k, e.Attrs[k])
				}
			}
			if e.TraceID != "" {
				line += " trace=" + e.TraceID
			}
			fmt.Println(line)
		}
		if page.Missed > 0 {
			fmt.Printf("(%d events missed to eviction)\n", page.Missed)
		}
		fmt.Printf("next cursor: %d\n", page.Next)
		return nil

	case "audit":
		fl := flag.NewFlagSet("audit", flag.ContinueOnError)
		jsonOut := fl.Bool("json", false, "emit pages as JSON")
		since := fl.Uint64("since", 0, "exclusive sequence cursor (0 = oldest retained)")
		opFilter := fl.String("op", "", "filter by operation name (e.g. create)")
		limit := fl.Int("limit", 0, "page size cap (0 = no cap)")
		follow := fl.Bool("follow", false, "poll for new entries until interrupted")
		if err := fl.Parse(rest); err != nil {
			return err
		}
		cursor := *since
		for {
			page, counts, err := fs.Audit(cursor, *opFilter, *limit)
			if err != nil {
				return err
			}
			if *jsonOut {
				enc := json.NewEncoder(os.Stdout)
				enc.SetIndent("", "  ")
				if err := enc.Encode(struct {
					Entries any               `json:"entries"`
					Next    uint64            `json:"next"`
					Missed  uint64            `json:"missed"`
					Dropped uint64            `json:"dropped"`
					Counts  map[string]uint64 `json:"counts"`
				}{page.Entries, page.Next, page.Missed, page.Dropped, counts}); err != nil {
					return err
				}
			} else {
				for _, e := range page.Entries {
					fmt.Println(formatAuditEntry(e))
				}
				if page.Missed > 0 {
					fmt.Printf("(%d entries missed to eviction)\n", page.Missed)
				}
			}
			cursor = page.Next
			if !*follow {
				if !*jsonOut {
					fmt.Printf("next cursor: %d\n", cursor)
				}
				return nil
			}
			time.Sleep(500 * time.Millisecond)
		}

	case "transfers":
		fl := flag.NewFlagSet("transfers", flag.ContinueOnError)
		jsonOut := fl.Bool("json", false, "emit the pages as JSON")
		since := fl.Uint64("since", 0, "exclusive sequence cursor, applied per source (0 = oldest retained)")
		opFilter := fl.String("op", "", "filter by transfer kind (read, write, replicate)")
		limit := fl.Int("limit", 0, "page size cap per source (0 = no cap)")
		if err := fl.Parse(rest); err != nil {
			return err
		}
		sources, err := fs.Transfers(*since, *opFilter, *limit)
		if err != nil {
			return err
		}
		if *jsonOut {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			return enc.Encode(sources)
		}
		printTransferSources(sources)
		return nil

	case "top":
		fl := flag.NewFlagSet("top", flag.ContinueOnError)
		last := fl.Int("last", 0, "trailing history samples to fetch (0 = all retained)")
		if err := fl.Parse(rest); err != nil {
			return err
		}
		samples, err := fs.ClusterHistory(*last)
		if err != nil {
			return err
		}
		if len(samples) == 0 {
			fmt.Println("no telemetry samples")
			return nil
		}
		latest := samples[len(samples)-1]
		span := time.Duration(latest.TimeNs - samples[0].TimeNs)
		fmt.Printf("cluster telemetry: %d samples spanning %s — %d files, %d blocks\n",
			len(samples), span.Round(time.Millisecond), latest.Files, latest.Blocks)
		hk := latest.Heat
		fmt.Printf("heat: %d blocks / %d files tracked, total %.1f ops (max %.1f), misplaced %d hot / %d cold\n",
			hk.TrackedBlocks, hk.TrackedFiles, hk.TotalHeat, hk.MaxHeat, hk.MisplacedHot, hk.MisplacedCold)
		fmt.Printf("\n%-10s%8s%14s%14s%12s%12s%10s\n",
			"tier", "media", "capacity MB", "remaining MB", "write MB/s", "read MB/s", "heat")
		for _, t := range latest.Tiers {
			fmt.Printf("%-10s%8d%14d%14d%12.1f%12.1f%10.1f\n",
				t.Tier, t.NumMedia, t.Capacity>>20, t.Remaining>>20,
				t.WriteThruMBps, t.ReadThruMBps, hk.TierHeat[t.Tier])
		}
		fmt.Printf("\n%-14s%14s%12s%8s%12s%12s\n",
			"worker", "capacity MB", "used MB", "conns", "write MB/s", "read MB/s")
		for _, w := range latest.Workers {
			fmt.Printf("%-14s%14d%12d%8d%12.1f%12.1f\n",
				w.ID, w.Capacity>>20, w.Used>>20, w.NetConns, w.WriteMBps, w.ReadMBps)
		}
		return nil

	case "heat":
		fl := flag.NewFlagSet("heat", flag.ContinueOnError)
		jsonOut := fl.Bool("json", false, "emit the report as JSON")
		top := fl.Int("top", 0, "entries per list (0 = server default)")
		file := fl.String("file", "", "restrict the block list to one file")
		misplaced := fl.Bool("misplaced", false, "only the tier-fitness (misplacement) report")
		if err := fl.Parse(rest); err != nil {
			return err
		}
		report, err := fs.Heat(*top, *file, *misplaced)
		if err != nil {
			return err
		}
		if *jsonOut {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			return enc.Encode(report)
		}
		printHeatReport(report, *misplaced)
		return nil

	case "mover":
		fl := flag.NewFlagSet("mover", flag.ContinueOnError)
		jsonOut := fl.Bool("json", false, "emit the status as JSON")
		if err := fl.Parse(rest); err != nil {
			return err
		}
		status, err := fs.Mover()
		if err != nil {
			return err
		}
		if *jsonOut {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			return enc.Encode(status)
		}
		printMoverStatus(status)
		return nil

	case "health":
		rep, err := fs.ClusterReport()
		if err != nil {
			return err
		}
		type probe struct{ name, addr string }
		probes := []probe{{"master", rep.MasterHTTP}}
		for _, w := range rep.Workers {
			probes = append(probes, probe{"worker " + string(w.ID), w.HTTPAddr})
		}
		failed := 0
		for _, p := range probes {
			status := "ok"
			if p.addr == "" {
				status = "no http endpoint"
			} else if err := checkHealthz(p.addr); err != nil {
				status = "FAIL: " + err.Error()
				failed++
			}
			fmt.Printf("%-24s %-22s %s\n", p.name, p.addr, status)
		}
		if failed > 0 {
			return fmt.Errorf("%d of %d health checks failed", failed, len(probes))
		}
		return nil

	case "explain":
		need(rest, 1)
		reply, err := fs.Explain(rest[0])
		if err != nil {
			return err
		}
		if len(reply.Blocks) == 0 {
			fmt.Printf("%s: no retained placement decisions (old block, or non-MOOP policy)\n", rest[0])
			return nil
		}
		names := reply.Objectives
		fvec := func(v [4]float64) string {
			return fmt.Sprintf("%s=%.3f %s=%.3f %s=%.3f %s=%.3f",
				names[0], v[0], names[1], v[1], names[2], v[2], names[3], v[3])
		}
		fmt.Printf("%s: %d blocks with placement decisions\n", reply.Path, len(reply.Blocks))
		for _, b := range reply.Blocks {
			verb := "placed"
			if b.Origin != "" {
				// The tier mover rewrote this record: the block's last
				// placement was a heat-driven promotion or demotion.
				verb = fmt.Sprintf("moved (%s, heat %.2f)", b.Origin, b.Heat)
			}
			fmt.Printf("\nblock %d  %s %s  trace=%s\n",
				b.Block, verb, time.Unix(0, b.TimeNs).Format("15:04:05.000"), b.TraceID)
			for i, r := range b.Replicas {
				entry := "any tier"
				if r.Entry != core.TierUnspecified {
					entry = r.Entry.String()
				}
				fmt.Printf("  replica %d (%s): %d candidates considered, ideal %s\n",
					i, entry, r.Considered, fvec(r.Ideal))
				for _, c := range r.Candidates {
					mark := "      "
					if c.Chosen {
						mark = "chosen"
					}
					fmt.Printf("    %s %-20s %-8s %-10s score=%.4f  %s\n",
						mark, c.Storage, c.Tier, c.Node, c.Score, fvec(c.Objectives))
				}
			}
		}
		return nil

	case "decommission":
		need(rest, 1)
		if err := fs.Decommission(core.WorkerID(rest[0])); err != nil {
			return err
		}
		fmt.Printf("worker %s decommissioned; replicas will be re-replicated\n", rest[0])
		return nil
	}
	usage()
	return fmt.Errorf("unknown command %q", cmd)
}

// printHeatReport renders the heat document: the aggregate line, the
// hottest files and blocks, and the tier-fitness findings with their
// originating placement decisions.
// formatAuditEntry renders one audit entry on a single line: when it
// finished, what it did to which path, and where the time went.
func formatAuditEntry(e audit.Entry) string {
	status := "ok"
	if e.Result != "ok" {
		status = "ERR"
	}
	line := fmt.Sprintf("%6d  %s  %-19s %-4s total=%-10s queue=%s lock=%s apply=%s",
		e.Seq, time.Unix(0, e.Time).Format("15:04:05.000"), e.Op, status,
		fmtNs(e.TotalNs), fmtNs(e.QueueNs), fmtNs(e.LockWaitNs), fmtNs(e.ApplyNs))
	if e.AppendNs > 0 {
		line += " append=" + fmtNs(e.AppendNs)
	}
	if e.FsyncNs > 0 {
		line += " fsync=" + fmtNs(e.FsyncNs)
	}
	if e.Bytes > 0 {
		line += fmt.Sprintf(" bytes=%d", e.Bytes)
	}
	line += "  " + e.Path
	if e.Dst != "" {
		line += " -> " + e.Dst
	}
	if e.Result != "ok" {
		line += "  err=" + e.Result
	}
	if e.TraceID != "" {
		line += "  trace=" + e.TraceID
	}
	return line
}

// fmtNs renders a nanosecond latency compactly for audit lines.
func fmtNs(ns int64) string {
	return time.Duration(ns).Round(time.Microsecond).String()
}

// printTransferSources renders the per-daemon transfer pages: for each
// source one line per record with its serial phase breakdown, so a
// slow transfer shows where it stalled (dial vs disk vs net vs ack).
// Cursors are per source; resume each from its own "next" value.
func printTransferSources(sources []rpc.TransferSource) {
	for i, src := range sources {
		if i > 0 {
			fmt.Println()
		}
		if src.Err != "" {
			fmt.Printf("%s: fan-out failed: %s\n", src.Source, src.Err)
			continue
		}
		fmt.Printf("%s: %d records (next cursor %d", src.Source, len(src.Page.Entries), src.Page.Next)
		if src.Page.Missed > 0 {
			fmt.Printf(", %d missed to eviction", src.Page.Missed)
		}
		if src.Page.Dropped > 0 {
			fmt.Printf(", %d dropped at append", src.Page.Dropped)
		}
		fmt.Println(")")
		for _, e := range src.Page.Entries {
			fmt.Println("  " + formatTransferRecord(e))
		}
	}
}

// formatTransferRecord renders one flight-recorder record on a single
// line: identity, size, wall time, then only the phases that occurred.
func formatTransferRecord(e xfer.Record) string {
	line := fmt.Sprintf("%6d  %s  %-9s blk=%-8d %9dB  %8s",
		e.Seq, time.Unix(0, e.Time).Format("15:04:05.000"), e.Op, e.Block,
		e.Bytes, fmtNs(e.TotalNs))
	phases := []struct {
		name string
		ns   int64
	}{
		{"dial", e.DialNs}, {"enc", e.HeaderEncodeNs}, {"dec", e.HeaderDecodeNs},
		{"throttle", e.ThrottleWaitNs}, {"disk", e.DiskNs}, {"net", e.NetNs},
		{"fwd", e.ForwardNs}, {"ack", e.AckWaitNs}, {"stall", e.StallNs},
	}
	for _, p := range phases {
		if p.ns > 0 {
			line += fmt.Sprintf(" %s=%s", p.name, fmtNs(p.ns))
		}
	}
	if e.PoolHit {
		line += " pool=hit"
	}
	if e.Tier != "" {
		line += " tier=" + e.Tier
	}
	if e.Peer != "" {
		line += " peer=" + e.Peer
	}
	if e.Result != "ok" && e.Result != "" {
		line += " err=" + e.Result
	}
	if e.TraceID != "" {
		line += " trace=" + e.TraceID
	}
	return line
}

func printHeatReport(r rpc.HeatReport, misplacedOnly bool) {
	agg := r.Aggregate
	fmt.Printf("access heat @ %s (half-life %s): %d blocks / %d files tracked, total %.1f ops, max %.1f\n",
		time.Unix(0, r.TimeNs).Format("15:04:05.000"),
		time.Duration(r.HalfLifeNs), agg.TrackedBlocks, agg.TrackedFiles,
		agg.TotalHeat, agg.MaxHeat)

	if !misplacedOnly {
		if len(r.Files) > 0 {
			fmt.Printf("\n%-32s%10s%12s%12s%14s%14s\n",
				"file", "heat", "read ops", "write ops", "read MB", "write MB")
			for _, f := range r.Files {
				fmt.Printf("%-32s%10.2f%12.2f%12.2f%14.2f%14.2f\n",
					f.Path, f.Heat, f.Read.Ops, f.Write.Ops,
					f.Read.Bytes/(1<<20), f.Write.Bytes/(1<<20))
			}
		}
		if len(r.Blocks) > 0 {
			fmt.Printf("\n%-10s%-28s%10s%12s%12s  %s\n",
				"block", "file", "heat", "read ops", "write ops", "tiers")
			for _, b := range r.Blocks {
				fmt.Printf("%-10d%-28s%10.2f%12.2f%12.2f  %s\n",
					b.Block, b.Path, b.Heat, b.Read.Ops, b.Write.Ops,
					formatTiers(b.Tiers))
			}
		}
	}

	if len(r.Misplaced) == 0 {
		fmt.Printf("\ntier fitness: no misplaced blocks\n")
		return
	}
	fmt.Printf("\ntier fitness: %d hot-on-cold, %d cold-on-premium\n",
		agg.MisplacedHot, agg.MisplacedCold)
	fmt.Printf("%-10s%-24s%-18s%10s%10s%14s  %s\n",
		"block", "file", "kind", "heat", "score", "tiers", "decision")
	for _, mb := range r.Misplaced {
		decision := "(aged out)"
		if mb.DecisionTraceID != "" {
			decision = fmt.Sprintf("trace=%s @ %s", mb.DecisionTraceID,
				time.Unix(0, mb.DecisionTimeNs).Format("15:04:05.000"))
		}
		fmt.Printf("%-10d%-24s%-18s%10.2f%10.2f%14s  %s\n",
			mb.Block, mb.Path, mb.Kind, mb.Heat, mb.Score,
			formatTiers(mb.Tiers), decision)
	}
}

// printMoverStatus renders the tier mover document: governors,
// counters, in-flight moves, and the recent-move ring.
func printMoverStatus(st rpc.MoverStatus) {
	state := "enabled"
	if !st.Enabled {
		state = "disabled"
	}
	budget := "unlimited"
	if st.BytesPerSec > 0 {
		budget = fmt.Sprintf("%d MB/s", st.BytesPerSec>>20)
	}
	fmt.Printf("tier mover %s: interval %s, max %d concurrent, budget %s, cooldown %s\n",
		state, time.Duration(st.IntervalNs), st.MaxConcurrent, budget,
		time.Duration(st.CooldownNs))
	c := st.Counters
	fmt.Printf("moved: %d promoted, %d demoted, %d MB; %d scheduled, %d expired\n",
		c.Promoted, c.Demoted, c.MovedBytes>>20, c.Scheduled, c.Expired)
	fmt.Printf("held back: %d cooldown, %d concurrency, %d budget, %d no-target, %d unhealthy\n",
		c.SkippedCooldown, c.SkippedConcurrency, c.SkippedBudget,
		c.SkippedNoTarget, c.SkippedUnhealthy)

	printMoves := func(title string, moves []rpc.MoveRecord) {
		if len(moves) == 0 {
			return
		}
		fmt.Printf("\n%s:\n", title)
		fmt.Printf("%-10s%-24s%-10s%8s  %-22s%-16s%-16s%s\n",
			"block", "file", "kind", "heat", "move", "before", "after", "outcome")
		for _, mv := range moves {
			after := formatTiers(mv.AfterTiers)
			if mv.FinishedNs == 0 {
				after = "-"
			}
			fmt.Printf("%-10d%-24s%-10s%8.2f  %-22s%-16s%-16s%s\n",
				mv.Block, mv.Path, mv.Kind, mv.Heat,
				fmt.Sprintf("%s→%s", mv.FromTier, mv.ToTier),
				formatTiers(mv.BeforeTiers), after, mv.Outcome)
		}
	}
	printMoves("in flight", st.InFlight)
	printMoves("recent moves (newest first)", st.Recent)
	if len(st.InFlight) == 0 && len(st.Recent) == 0 {
		fmt.Println("no moves yet")
	}
}

// formatTiers renders a replica-count-per-tier vector compactly,
// e.g. "HDD:2" or "MEMORY:1,HDD:2".
func formatTiers(tiers [core.NumTiers]int) string {
	var parts []string
	for t, n := range tiers {
		if n > 0 {
			parts = append(parts, fmt.Sprintf("%s:%d", core.StorageTier(t), n))
		}
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, ",")
}

// checkHealthz probes one daemon's /healthz endpoint.
func checkHealthz(addr string) error {
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	c := &http.Client{Timeout: 3 * time.Second}
	resp, err := c.Get(strings.TrimSuffix(addr, "/") + "/healthz")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("healthz returned %s", resp.Status)
	}
	return nil
}

// showMetrics dumps the Prometheus exposition of a master's or
// worker's HTTP endpoint (or the JSON exposition with jsonOut).
func showMetrics(out io.Writer, addr string, jsonOut bool) error {
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	url := strings.TrimSuffix(addr, "/") + "/metrics"
	if jsonOut {
		url += "?format=json"
	}
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("metrics: %s returned %s", addr, resp.Status)
	}
	_, err = io.Copy(out, resp.Body)
	return err
}

func need(args []string, n int) {
	if len(args) < n {
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: octopus-cli [-master addr] [-node name] [-readahead k] [-write-window k] <command> [args]
commands: mkdir ls put get cat rm mv stat setrep locations tiers report quota du fsck
          metrics trace events audit transfers top heat mover health explain decommission`)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "octopus-cli: %v\n", err)
	os.Exit(1)
}
