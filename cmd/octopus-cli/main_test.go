package main

import (
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/integration"
	"repro/internal/rpc"
)

// TestCLICommands drives the shell's command dispatcher end to end
// against a live in-process cluster.
func TestCLICommands(t *testing.T) {
	cluster, err := integration.StartCluster(integration.DefaultClusterConfig(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	fs, err := cluster.Client("")
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()

	local := filepath.Join(t.TempDir(), "payload.bin")
	if err := os.WriteFile(local, []byte("cli round trip payload"), 0o644); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(t.TempDir(), "out.bin")

	steps := [][]string{
		{"mkdir", "/cli"},
		{"put", local, "/cli/f", "<1,0,2,0,0>"},
		{"ls", "/cli"},
		{"stat", "/cli/f"},
		{"locations", "/cli/f"},
		{"explain", "/cli/f"},
		{"events"},
		{"events", "-json", "-limit", "5"},
		{"events", "-type", "block_committed"},
		{"top"},
		{"top", "-last", "3"},
		{"heat"},
		{"heat", "-json"},
		{"heat", "-top", "5"},
		{"heat", "-file", "/cli/f"},
		{"heat", "-misplaced"},
		{"mover"},
		{"mover", "-json"},
		{"health"},
		{"tiers"},
		{"report"},
		{"du", "/cli"},
		{"fsck", "/cli"},
		{"setrep", "/cli/f", "<0,1,2,0,0>"},
		{"get", "/cli/f", out},
		{"mv", "/cli/f", "/cli/g"},
		{"quota", "/cli", "memory", "64"},
		{"quota", "/cli", "total", "-1"},
		{"rm", "/cli/g"},
		{"rm", "-r", "/cli"},
	}
	for _, step := range steps {
		if err := run(fs, step); err != nil {
			t.Fatalf("cli %v: %v", step, err)
		}
	}

	got, err := os.ReadFile(out)
	if err != nil || string(got) != "cli round trip payload" {
		t.Fatalf("get round trip: %q, %v", got, err)
	}

	// The trace subcommand renders the merged span timeline of a real
	// write (the default zero slow-op threshold retains every trace).
	w, err := fs.Create("/traced", client.CreateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write([]byte("traced payload")); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := run(fs, []string{"trace", w.ReqID()}); err != nil {
		t.Fatalf("cli trace %s: %v", w.ReqID(), err)
	}
	if err := run(fs, []string{"trace", "ffffffffffffffff"}); err == nil {
		t.Error("trace of unknown request ID succeeded")
	}

	// Error paths surface cleanly.
	if err := run(fs, []string{"stat", "/missing"}); err == nil {
		t.Error("stat of missing path succeeded")
	}
	if err := run(fs, []string{"setrep", "/missing", "bogus"}); err == nil {
		t.Error("setrep with bogus vector succeeded")
	}
	if err := run(fs, []string{"definitely-not-a-command"}); err == nil {
		t.Error("unknown command succeeded")
	}
	if err := run(fs, []string{"explain", "/missing"}); err == nil {
		t.Error("explain of missing path succeeded")
	}
	if err := run(fs, []string{"decommission", "no-such-worker"}); err == nil {
		t.Error("decommission of unknown worker succeeded")
	}
}

// TestCLIHeatRanking checks the heat subcommand's rendered ranking
// puts a skew-read hot file above a barely-touched one, and that the
// -json variant emits the machine-readable report in the same order.
func TestCLIHeatRanking(t *testing.T) {
	cluster, err := integration.StartCluster(integration.DefaultClusterConfig(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	fs, err := cluster.Client("")
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()

	data := []byte("heat ranking payload")
	for _, path := range []string{"/hotfile", "/coldfile"} {
		if err := fs.WriteFile(path, data, core.NewReplicationVector(0, 0, 2, 0, 0)); err != nil {
			t.Fatal(err)
		}
	}
	read := func(path string, n int) {
		t.Helper()
		for i := 0; i < n; i++ {
			r, err := fs.Open(path)
			if err != nil {
				t.Fatal(err)
			}
			io.Copy(io.Discard, r)
			r.Close()
		}
	}
	read("/hotfile", 8)
	read("/coldfile", 1)

	// File-level heat is recorded synchronously at open time, so the
	// ranking is immediately visible.
	capture := func(args []string) string {
		t.Helper()
		old := os.Stdout
		r, w, err := os.Pipe()
		if err != nil {
			t.Fatal(err)
		}
		os.Stdout = w
		runErr := run(fs, args)
		w.Close()
		os.Stdout = old
		out, _ := io.ReadAll(r)
		if runErr != nil {
			t.Fatalf("cli %v: %v", args, runErr)
		}
		return string(out)
	}

	out := capture([]string{"heat", "-top", "5"})
	hotAt := strings.Index(out, "/hotfile")
	coldAt := strings.Index(out, "/coldfile")
	if hotAt < 0 || coldAt < 0 {
		t.Fatalf("heat output missing files:\n%s", out)
	}
	if hotAt > coldAt {
		t.Errorf("/hotfile ranked below /coldfile:\n%s", out)
	}

	var report rpc.HeatReport
	if err := json.Unmarshal([]byte(capture([]string{"heat", "-json"})), &report); err != nil {
		t.Fatalf("heat -json is not JSON: %v", err)
	}
	if len(report.Files) == 0 || report.Files[0].Path != "/hotfile" {
		t.Errorf("heat -json ranking = %+v, want /hotfile first", report.Files)
	}
}

// TestCLIMetrics fetches a live master's Prometheus exposition through
// the metrics subcommand's fetcher.
func TestCLIMetrics(t *testing.T) {
	cluster, err := integration.StartCluster(integration.DefaultClusterConfig(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	addr, err := cluster.Master.ServeHTTP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	var out strings.Builder
	if err := showMetrics(&out, addr, false); err != nil {
		t.Fatalf("showMetrics: %v", err)
	}
	if !strings.Contains(out.String(), "octopus_master_workers") {
		t.Fatalf("exposition missing octopus_master_workers:\n%s", out.String())
	}

	// The -json variant fetches the JSON exposition.
	var jsonOut strings.Builder
	if err := showMetrics(&jsonOut, addr, true); err != nil {
		t.Fatalf("showMetrics -json: %v", err)
	}
	var doc any
	if err := json.Unmarshal([]byte(jsonOut.String()), &doc); err != nil {
		t.Fatalf("-json exposition is not JSON: %v\n%s", err, jsonOut.String())
	}

	if err := showMetrics(&out, "127.0.0.1:1", false); err == nil {
		t.Error("showMetrics against a dead address succeeded")
	}
}
