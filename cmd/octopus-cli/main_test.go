package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/client"
	"repro/internal/integration"
)

// TestCLICommands drives the shell's command dispatcher end to end
// against a live in-process cluster.
func TestCLICommands(t *testing.T) {
	cluster, err := integration.StartCluster(integration.DefaultClusterConfig(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	fs, err := cluster.Client("")
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()

	local := filepath.Join(t.TempDir(), "payload.bin")
	if err := os.WriteFile(local, []byte("cli round trip payload"), 0o644); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(t.TempDir(), "out.bin")

	steps := [][]string{
		{"mkdir", "/cli"},
		{"put", local, "/cli/f", "<1,0,2,0,0>"},
		{"ls", "/cli"},
		{"stat", "/cli/f"},
		{"locations", "/cli/f"},
		{"explain", "/cli/f"},
		{"events"},
		{"events", "-json", "-limit", "5"},
		{"events", "-type", "block_committed"},
		{"top"},
		{"top", "-last", "3"},
		{"health"},
		{"tiers"},
		{"report"},
		{"du", "/cli"},
		{"fsck", "/cli"},
		{"setrep", "/cli/f", "<0,1,2,0,0>"},
		{"get", "/cli/f", out},
		{"mv", "/cli/f", "/cli/g"},
		{"quota", "/cli", "memory", "64"},
		{"quota", "/cli", "total", "-1"},
		{"rm", "/cli/g"},
		{"rm", "-r", "/cli"},
	}
	for _, step := range steps {
		if err := run(fs, step); err != nil {
			t.Fatalf("cli %v: %v", step, err)
		}
	}

	got, err := os.ReadFile(out)
	if err != nil || string(got) != "cli round trip payload" {
		t.Fatalf("get round trip: %q, %v", got, err)
	}

	// The trace subcommand renders the merged span timeline of a real
	// write (the default zero slow-op threshold retains every trace).
	w, err := fs.Create("/traced", client.CreateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write([]byte("traced payload")); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := run(fs, []string{"trace", w.ReqID()}); err != nil {
		t.Fatalf("cli trace %s: %v", w.ReqID(), err)
	}
	if err := run(fs, []string{"trace", "ffffffffffffffff"}); err == nil {
		t.Error("trace of unknown request ID succeeded")
	}

	// Error paths surface cleanly.
	if err := run(fs, []string{"stat", "/missing"}); err == nil {
		t.Error("stat of missing path succeeded")
	}
	if err := run(fs, []string{"setrep", "/missing", "bogus"}); err == nil {
		t.Error("setrep with bogus vector succeeded")
	}
	if err := run(fs, []string{"definitely-not-a-command"}); err == nil {
		t.Error("unknown command succeeded")
	}
	if err := run(fs, []string{"explain", "/missing"}); err == nil {
		t.Error("explain of missing path succeeded")
	}
	if err := run(fs, []string{"decommission", "no-such-worker"}); err == nil {
		t.Error("decommission of unknown worker succeeded")
	}
}

// TestCLIMetrics fetches a live master's Prometheus exposition through
// the metrics subcommand's fetcher.
func TestCLIMetrics(t *testing.T) {
	cluster, err := integration.StartCluster(integration.DefaultClusterConfig(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	addr, err := cluster.Master.ServeHTTP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	var out strings.Builder
	if err := showMetrics(&out, addr, false); err != nil {
		t.Fatalf("showMetrics: %v", err)
	}
	if !strings.Contains(out.String(), "octopus_master_workers") {
		t.Fatalf("exposition missing octopus_master_workers:\n%s", out.String())
	}

	// The -json variant fetches the JSON exposition.
	var jsonOut strings.Builder
	if err := showMetrics(&jsonOut, addr, true); err != nil {
		t.Fatalf("showMetrics -json: %v", err)
	}
	var doc any
	if err := json.Unmarshal([]byte(jsonOut.String()), &doc); err != nil {
		t.Fatalf("-json exposition is not JSON: %v\n%s", err, jsonOut.String())
	}

	if err := showMetrics(&out, "127.0.0.1:1", false); err == nil {
		t.Error("showMetrics against a dead address succeeded")
	}
}
