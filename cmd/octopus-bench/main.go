// Command octopus-bench regenerates the tables and figures of the
// OctopusFS paper's evaluation (§7).
//
// Usage:
//
//	octopus-bench [table2|table3|fig2|fig3|fig4|fig5|fig6|fig7|ablation|datapath|heat|mover|metadata|all]
//
// Simulator-backed experiments (fig2–fig7) run the paper's full data
// sizes in seconds; table2 and table3 run against live in-process
// components and take a little longer. metadata drives create / stat /
// ls / rename / delete against a persistent master with -md-clients
// concurrent clients over -md-files files (the baseline behind the
// audit log's per-phase latency breakdown).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/bench"
	"repro/internal/integration"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: %s [table2|table3|fig2|fig3|fig4|fig5|fig6|fig7|ablation|datapath|heat|mover|metadata|all]\n", os.Args[0])
		flag.PrintDefaults()
	}
	scale := flag.Int64("scale-mb", 0, "override experiment data size in MB (0 = paper size)")
	jsonPath := flag.String("json", "", "also write datapath/heat/mover/metadata results as JSON to this path")
	mdFiles := flag.Int("md-files", 100000, "metadata benchmark: number of files")
	mdClients := flag.Int("md-clients", 8, "metadata benchmark: concurrent clients")
	compare := flag.String("compare", "", "datapath: baseline JSON report to print a before/after comparison against")
	warmGate := flag.Float64("max-warm-dial-p99-ms", 0, "datapath: fail if warm-path (pooled) dial p99 exceeds this many ms (0 disables)")
	flag.Parse()

	targets := flag.Args()
	if len(targets) == 0 {
		targets = []string{"all"}
	}
	want := map[string]bool{}
	for _, t := range targets {
		want[t] = true
	}
	all := want["all"]
	out := os.Stdout

	fail := func(what string, err error) {
		fmt.Fprintf(os.Stderr, "octopus-bench: %s: %v\n", what, err)
		os.Exit(1)
	}
	// emitJSON is the one -json code path every target shares.
	emitJSON := func(what string, write func(path string) error) {
		if *jsonPath == "" {
			return
		}
		if err := write(*jsonPath); err != nil {
			fail(what, err)
		}
	}

	if all || want["table2"] {
		rows, err := bench.RunTable2(0)
		if err != nil {
			fail("table2", err)
		}
		bench.PrintTable2(out, rows)
	}
	if all || want["fig2"] {
		points, err := bench.RunFig2(*scale)
		if err != nil {
			fail("fig2", err)
		}
		bench.PrintFig2(out, points)
	}
	if all || want["fig3"] || want["fig4"] {
		series, err := bench.RunFig3(*scale * 4)
		if err != nil {
			fail("fig3", err)
		}
		if all || want["fig3"] {
			bench.PrintFig3(out, series)
		}
		if all || want["fig4"] {
			bench.PrintFig4(out, series)
		}
	}
	if all || want["fig5"] {
		points, err := bench.RunFig5(*scale)
		if err != nil {
			fail("fig5", err)
		}
		bench.PrintFig5(out, points)
	}
	if all || want["table3"] {
		dir, cleanup, err := integration.TempDir()
		if err != nil {
			fail("table3", err)
		}
		rows, err := bench.RunTable3(dir, 4, 150)
		cleanup()
		if err != nil {
			fail("table3", err)
		}
		bench.PrintTable3(out, rows)
	}
	if all || want["fig6"] {
		rows, err := bench.RunFig6()
		if err != nil {
			fail("fig6", err)
		}
		bench.PrintFig6(out, rows)
	}
	if all || want["fig7"] {
		rows, err := bench.RunFig7()
		if err != nil {
			fail("fig7", err)
		}
		bench.PrintFig7(out, rows)
	}
	if all || want["ablation"] {
		rows, err := bench.RunAblation(*scale * 4)
		if err != nil {
			fail("ablation", err)
		}
		bench.PrintAblation(out, rows)
	}
	if all || want["datapath"] {
		fileMB := *scale
		if fileMB <= 0 {
			fileMB = 64
		}
		var results []bench.DataPathResult
		for _, p := range []struct{ ra, ww int }{{0, 0}, {2, 1}, {4, 2}} {
			dir, cleanup, err := integration.TempDir()
			if err != nil {
				fail("datapath", err)
			}
			res, err := bench.RunDataPath(dir, fileMB, 1, p.ra, p.ww)
			cleanup()
			if err != nil {
				fail("datapath", err)
			}
			results = append(results, res)
		}
		bench.PrintDataPath(out, results)
		if *compare != "" {
			baseline, err := bench.ReadDataPathJSON(*compare)
			if err != nil {
				fail("datapath", err)
			}
			bench.CompareDataPath(out, baseline, bench.BuildDataPathReport(fileMB, 1, results))
		}
		emitJSON("datapath", func(p string) error { return bench.WriteDataPathJSON(p, fileMB, 1, results) })
		if *warmGate > 0 {
			if err := bench.CheckWarmDial(results, time.Duration(*warmGate*float64(time.Millisecond))); err != nil {
				fail("datapath", err)
			}
			fmt.Fprintf(out, "warm-path dial gate: OK (p99 <= %.1fms on every pooled configuration)\n", *warmGate)
		}
	}
	if all || want["heat"] {
		dir, cleanup, err := integration.TempDir()
		if err != nil {
			fail("heat", err)
		}
		res, err := bench.RunHeat(dir, 24, 2000, 1.2)
		cleanup()
		if err != nil {
			fail("heat", err)
		}
		bench.PrintHeat(out, res)
		emitJSON("heat", func(p string) error { return bench.WriteHeatJSON(p, res) })
	}
	if all || want["mover"] {
		dir, cleanup, err := integration.TempDir()
		if err != nil {
			fail("mover", err)
		}
		res, err := bench.RunMover(dir, 12, 400, 1.5)
		cleanup()
		if err != nil {
			fail("mover", err)
		}
		bench.PrintMover(out, res)
		emitJSON("mover", func(p string) error { return bench.WriteMoverJSON(p, res) })
	}
	if all || want["metadata"] {
		dir, cleanup, err := integration.TempDir()
		if err != nil {
			fail("metadata", err)
		}
		res, err := bench.RunMetadata(dir, *mdFiles, *mdClients)
		cleanup()
		if err != nil {
			fail("metadata", err)
		}
		bench.PrintMetadata(out, res)
		emitJSON("metadata", func(p string) error { return bench.WriteJSON(p, res) })
	}
}
