package octopusfs

// One benchmark per table and figure of the paper's evaluation (§7),
// plus micro-benchmarks for the policy hot paths. The experiment
// logic lives in internal/bench; these harness it under testing.B so
// `go test -bench=.` regenerates every result. Figure benchmarks run
// scaled-down data sizes per iteration; `go run ./cmd/octopus-bench`
// prints the full paper-size results.

import (
	"math/rand"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/workloads"
)

// BenchmarkTable2MediaThroughput probes throttled media like a worker
// does at startup (paper Table 2).
func BenchmarkTable2MediaThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.RunTable2(8 << 20)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 3 {
			b.Fatalf("probed %d media types, want 3", len(rows))
		}
	}
}

// BenchmarkFig2TieredStorage runs the §7.1 tiered-storage DFSIO sweep
// (six replication vectors × five parallelism degrees) at 1 GB per
// cell.
func BenchmarkFig2TieredStorage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points, err := bench.RunFig2(1024)
		if err != nil {
			b.Fatal(err)
		}
		if len(points) != 30 {
			b.Fatalf("fig2 produced %d points, want 30", len(points))
		}
	}
}

// BenchmarkFig3PlacementPolicies runs the §7.2 eight-policy DFSIO
// comparison at 4 GB.
func BenchmarkFig3PlacementPolicies(b *testing.B) {
	for i := 0; i < b.N; i++ {
		series, err := bench.RunFig3(4096)
		if err != nil {
			b.Fatal(err)
		}
		if len(series) != 8 {
			b.Fatalf("fig3 produced %d series, want 8", len(series))
		}
	}
}

// BenchmarkFig4TierCapacities regenerates the Figure 4 per-tier
// remaining capacities (a by-product of the Figure 3 write phase).
func BenchmarkFig4TierCapacities(b *testing.B) {
	for i := 0; i < b.N; i++ {
		series, err := bench.RunFig3(4096)
		if err != nil {
			b.Fatal(err)
		}
		for _, s := range series {
			if len(s.RemainingPercent) == 0 {
				b.Fatalf("fig4: policy %s reported no tier capacities", s.Policy)
			}
		}
	}
}

// BenchmarkFig5Retrieval runs the §7.3 retrieval-policy comparison at
// 1 GB per cell.
func BenchmarkFig5Retrieval(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points, err := bench.RunFig5(1024)
		if err != nil {
			b.Fatal(err)
		}
		if len(points) != 10 {
			b.Fatalf("fig5 produced %d points, want 10", len(points))
		}
	}
}

// BenchmarkTable3NamespaceOps stress-tests the live master's
// namespace operations (paper §7.4) with a reduced operation count.
func BenchmarkTable3NamespaceOps(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.RunTable3(b.TempDir(), 2, 10)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 6 {
			b.Fatalf("table3 produced %d rows, want 6", len(rows))
		}
	}
}

// BenchmarkFig6HiBench runs the §7.5 Hadoop/Spark workload suite over
// HDFS-policy and OctopusFS-policy clusters.
func BenchmarkFig6HiBench(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.RunFig6()
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 18 {
			b.Fatalf("fig6 produced %d rows, want 18", len(rows))
		}
	}
}

// BenchmarkFig7Pegasus runs the §7.6 Pegasus optimisation study.
func BenchmarkFig7Pegasus(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.RunFig7()
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 4 {
			b.Fatalf("fig7 produced %d rows, want 4", len(rows))
		}
	}
}

// BenchmarkMOOPPlacement measures one MOOP placement decision on the
// paper's 45-media cluster — the O(s·r²) hot path of Algorithm 2.
func BenchmarkMOOPPlacement(b *testing.B) {
	c := sim.NewCluster(sim.PaperClusterConfig())
	snap := c.Snapshot()
	p := policy.NewMOOPPolicy(policy.DefaultMOOPConfig())
	rng := rand.New(rand.NewSource(1))
	req := policy.PlacementRequest{
		Snapshot:  snap,
		RepVector: core.ReplicationVectorFromFactor(3),
		BlockSize: 128 << 20,
		Rand:      rng,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.PlaceReplicas(req); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRetrievalOrdering measures one Eq. 12 replica ordering.
func BenchmarkRetrievalOrdering(b *testing.B) {
	c := sim.NewCluster(sim.PaperClusterConfig())
	snap := c.Snapshot()
	p := policy.NewOctopusRetrievalPolicy()
	rng := rand.New(rand.NewSource(1))
	req := policy.RetrievalRequest{
		Snapshot: snap,
		Replicas: snap.Media[:3],
		Rand:     rng,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Order(req)
	}
}

// BenchmarkReplicationVectorCodec measures the 64-bit vector codec.
func BenchmarkReplicationVectorCodec(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		v := core.NewReplicationVector(i%3, i%2, 2, 0, i%4)
		if v.Total() < 2 {
			b.Fatal("unexpected total")
		}
		_ = v.Diff(core.ReplicationVectorFromFactor(3))
	}
}

// BenchmarkSimDFSIOWrite measures simulator throughput itself: one
// full 1 GB DFSIO write pass per iteration.
func BenchmarkSimDFSIOWrite(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c := sim.NewCluster(sim.PaperClusterConfig())
		_, err := workloads.RunWrite(workloads.DFSIOConfig{
			Cluster: c, Threads: 27, TotalMB: 1024, BlockMB: 128,
			RepVector: core.ReplicationVectorFromFactor(3), PathPrefix: "/b",
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationMOOPVariants runs the MOOP design-choice ablation
// (rack pruning, norm, collocation, load-awareness) at 4 GB.
func BenchmarkAblationMOOPVariants(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.RunAblation(4096)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 5 {
			b.Fatalf("ablation produced %d rows, want 5", len(rows))
		}
	}
}

// BenchmarkDataPathSerial measures single-stream write + read
// throughput against a live cluster with the synchronous data path
// (no readahead, no write window): every block pays its master round
// trip, pipeline ack, and dial handshake on the critical path.
func BenchmarkDataPathSerial(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.RunDataPath(b.TempDir(), 32, 1, 0, 0)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.WriteMBps, "write-MB/s")
		b.ReportMetric(res.ReadMBps, "read-MB/s")
	}
}

// BenchmarkDataPathConcurrent is the same workload with block
// readahead and an overlapped write window, hiding the per-block
// latencies behind the data transfer.
func BenchmarkDataPathConcurrent(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.RunDataPath(b.TempDir(), 32, 1, 4, 2)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.WriteMBps, "write-MB/s")
		b.ReportMetric(res.ReadMBps, "read-MB/s")
	}
}
