// Package octopusfs is the root of the OctopusFS reproduction: a
// distributed file system with tiered storage management (SIGMOD'17).
// The implementation lives under internal/; run the examples/ programs
// for a tour and cmd/octopus-bench to regenerate the paper's
// evaluation tables and figures. See README.md, DESIGN.md, and
// EXPERIMENTS.md.
package octopusfs
