package bench

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/workloads"
)

// fig2At finds one Figure 2 cell.
func fig2At(points []Fig2Point, v core.ReplicationVector, d int) Fig2Point {
	for _, p := range points {
		if p.Vector == v && p.D == d {
			return p
		}
	}
	return Fig2Point{}
}

func TestFig2Shapes(t *testing.T) {
	points, err := RunFig2(2048)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 30 {
		t.Fatalf("points = %d, want 30", len(points))
	}
	mem3 := core.NewReplicationVector(3, 0, 0, 0, 0)
	hdd3 := core.NewReplicationVector(0, 0, 3, 0, 0)
	mixed := core.NewReplicationVector(1, 1, 1, 0, 0)

	for _, d := range Parallelisms() {
		m, h := fig2At(points, mem3, d), fig2At(points, hdd3, d)
		// All-memory beats all-HDD at every parallelism.
		if m.WriteMBps <= h.WriteMBps {
			t.Errorf("d=%d: memory write %.1f <= hdd %.1f", d, m.WriteMBps, h.WriteMBps)
		}
		if m.ReadMBps <= h.ReadMBps {
			t.Errorf("d=%d: memory read %.1f <= hdd %.1f", d, m.ReadMBps, h.ReadMBps)
		}
	}
	// Memory write rate per task declines with parallelism (network
	// congestion, §7.1).
	if a, b := fig2At(points, mem3, 9), fig2At(points, mem3, 45); a.WriteMBps <= b.WriteMBps {
		t.Errorf("memory write did not decline with d: %.1f (d=9) vs %.1f (d=45)", a.WriteMBps, b.WriteMBps)
	}
	// Mixed-tier writes are HDD-bottlenecked at d=9 (pipeline min).
	if p := fig2At(points, mixed, 9); p.WriteMBps > 130 {
		t.Errorf("mixed vector at d=9 wrote %.1f MB/s, want HDD-bound (~126)", p.WriteMBps)
	}
	// At high d, mixed tiers beat all-HDD (paper: up to 2x).
	if m, h := fig2At(points, mixed, 45), fig2At(points, hdd3, 45); m.WriteMBps <= h.WriteMBps {
		t.Errorf("d=45: mixed write %.1f <= hdd %.1f, want multi-tier benefit", m.WriteMBps, h.WriteMBps)
	}
}

func TestFig3Shapes(t *testing.T) {
	// Full paper scale (40 GB): the memory-exhaustion behaviour of the
	// TM policy and the SSD benefit of HDFS+SSD only appear once the
	// write volume exceeds the memory tier. The simulator covers this
	// in well under a second.
	series, err := RunFig3(0)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Fig3Series{}
	for _, s := range series {
		byName[s.Policy] = s
	}
	for _, name := range []string{"DB", "LB", "FT", "TM", "MOOP", "RuleBased", "OriginalHDFS", "HDFSwithSSD"} {
		if _, ok := byName[name]; !ok {
			t.Fatalf("missing series %q", name)
		}
	}
	moop, hdfs, hdfsSSD := byName["MOOP"], byName["OriginalHDFS"], byName["HDFSwithSSD"]
	rule := byName["RuleBased"]

	// Paper §7.2 relationships.
	if moop.AvgWriteMBps <= hdfs.AvgWriteMBps {
		t.Errorf("MOOP write %.1f <= OriginalHDFS %.1f", moop.AvgWriteMBps, hdfs.AvgWriteMBps)
	}
	if moop.AvgWriteMBps <= rule.AvgWriteMBps {
		t.Errorf("MOOP write %.1f <= RuleBased %.1f", moop.AvgWriteMBps, rule.AvgWriteMBps)
	}
	if hdfsSSD.AvgWriteMBps <= hdfs.AvgWriteMBps {
		t.Errorf("HDFS+SSD write %.1f <= OriginalHDFS %.1f", hdfsSSD.AvgWriteMBps, hdfs.AvgWriteMBps)
	}
	if moop.AvgReadMBps <= 1.5*hdfs.AvgReadMBps {
		t.Errorf("MOOP read %.1f not >= 1.5x OriginalHDFS %.1f (paper: 2.1x)", moop.AvgReadMBps, hdfs.AvgReadMBps)
	}
	// DB is biased toward the HDD tier (Figure 4): the HDD tier ends
	// up with less remaining capacity than under TM, which avoids it.
	db, tm := byName["DB"], byName["TM"]
	if db.RemainingPercent[core.TierHDD] >= tm.RemainingPercent[core.TierHDD] {
		t.Errorf("DB hdd remaining %.1f%% >= TM %.1f%%", db.RemainingPercent[core.TierHDD], tm.RemainingPercent[core.TierHDD])
	}
	// TM exhausts the memory tier (paper: "throughput quickly degrades
	// as the memory space gets exhausted").
	if tm.RemainingPercent[core.TierMemory] > 5 {
		t.Errorf("TM left %.1f%% memory, want ~0", tm.RemainingPercent[core.TierMemory])
	}
	// Original HDFS never touches memory or SSD.
	if hdfs.RemainingPercent[core.TierMemory] < 99.9 || hdfs.RemainingPercent[core.TierSSD] < 99.9 {
		t.Errorf("OriginalHDFS used memory/SSD: %+v", hdfs.RemainingPercent)
	}
}

func TestFig5Shapes(t *testing.T) {
	points, err := RunFig5(2048)
	if err != nil {
		t.Fatal(err)
	}
	speedups := map[int]float64{}
	vals := map[int]map[string]float64{}
	for _, p := range points {
		if vals[p.D] == nil {
			vals[p.D] = map[string]float64{}
		}
		vals[p.D][p.Policy] = p.ReadMBps
	}
	for d, v := range vals {
		if v["HDFS"] <= 0 {
			t.Fatalf("d=%d: HDFS read rate %v", d, v["HDFS"])
		}
		speedups[d] = v["OctopusFS"] / v["HDFS"]
		// OctopusFS retrieval must beat locality-only HDFS everywhere.
		if speedups[d] < 1.2 {
			t.Errorf("d=%d: speedup %.2fx, want >= 1.2x", d, speedups[d])
		}
	}
	// The benefit shrinks as parallelism grows (paper: ~4x -> ~2x).
	if speedups[9] <= speedups[45] {
		t.Errorf("speedup did not shrink with d: %.2fx (d=9) vs %.2fx (d=45)", speedups[9], speedups[45])
	}
}

func TestTable2ProbesMatchTargets(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive")
	}
	rows, err := RunTable2(16 << 20)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		switch r.Media {
		case "Memory":
			// Multi-GB/s emulation is bounded by the host's own memory
			// bandwidth and timer resolution; require only that the
			// probe lands in the right performance class (clearly
			// faster than SSD, same order of magnitude as the paper).
			if r.WriteMBps < 400 {
				t.Errorf("memory write probe %.1f MB/s, want >= 400", r.WriteMBps)
			}
			if r.ReadMBps < 1000 {
				t.Errorf("memory read probe %.1f MB/s, want >= 1000", r.ReadMBps)
			}
		default:
			// SSD and HDD rates are fully emulable: require a tight
			// match with the paper's Table 2.
			if r.WriteMBps < r.TargetW*0.6 || r.WriteMBps > r.TargetW*1.6 {
				t.Errorf("%s write probe %.1f MB/s, want within 60%% of %.1f", r.Media, r.WriteMBps, r.TargetW)
			}
			if r.ReadMBps < r.TargetR*0.6 || r.ReadMBps > r.TargetR*1.6 {
				t.Errorf("%s read probe %.1f MB/s, want within 60%% of %.1f", r.Media, r.ReadMBps, r.TargetR)
			}
		}
	}
}

func TestFig6AllWorkloadsGain(t *testing.T) {
	rows, err := RunFig6()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 18 {
		t.Fatalf("rows = %d, want 18", len(rows))
	}
	for _, r := range rows {
		if r.Normalized > 1.0+1e-9 {
			t.Errorf("%s/%s: normalized %.2f > 1 (OctopusFS slower)", r.Engine, r.Workload, r.Normalized)
		}
		if r.Normalized < 0.2 {
			t.Errorf("%s/%s: normalized %.2f implausibly low", r.Engine, r.Workload, r.Normalized)
		}
	}
}

func TestFig7OptimisationsCompose(t *testing.T) {
	rows, err := RunFig7()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(rows))
	}
	for _, r := range rows {
		n := r.Normalized
		if n["OctopusFS"] >= 1 {
			t.Errorf("%s: plain OctopusFS %.2f >= HDFS", r.Workload, n["OctopusFS"])
		}
		if n["Octo+prefetch"] > n["OctopusFS"]+1e-9 {
			t.Errorf("%s: prefetch %.3f worse than plain %.3f", r.Workload, n["Octo+prefetch"], n["OctopusFS"])
		}
		if n["Octo+interm"] > n["OctopusFS"]+1e-9 {
			t.Errorf("%s: interm %.3f worse than plain %.3f", r.Workload, n["Octo+interm"], n["OctopusFS"])
		}
		if n["Octo+both"] > math.Min(n["Octo+prefetch"], n["Octo+interm"])+1e-9 {
			t.Errorf("%s: both %.3f worse than best single optimisation", r.Workload, n["Octo+both"])
		}
	}
}

func TestPrintersProduceOutput(t *testing.T) {
	points, err := RunFig2(1024)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	PrintFig2(&buf, points)
	if !strings.Contains(buf.String(), "Figure 2") {
		t.Error("PrintFig2 missing header")
	}

	series, err := RunFig3(2048)
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	PrintFig3(&buf, series)
	PrintFig4(&buf, series)
	out := buf.String()
	if !strings.Contains(out, "Figure 3") || !strings.Contains(out, "Figure 4") {
		t.Error("fig3/fig4 printers missing headers")
	}

	fig5, err := RunFig5(1024)
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	PrintFig5(&buf, fig5)
	if !strings.Contains(buf.String(), "speedup") {
		t.Error("PrintFig5 missing speedup column")
	}
}

func TestTable3WithinTolerance(t *testing.T) {
	if testing.Short() {
		t.Skip("live cluster benchmark")
	}
	rows, err := RunTable3(t.TempDir(), 2, 15)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(workloads.SLiveOps()) {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.HDFSOpsPerSec <= 0 || r.OctoOpsPerSec <= 0 {
			t.Errorf("%s: non-positive rates %+v", r.Op, r)
		}
	}
	var buf bytes.Buffer
	PrintTable3(&buf, rows)
	if !strings.Contains(buf.String(), "Table 3") {
		t.Error("PrintTable3 missing header")
	}
}

func TestAblationShapes(t *testing.T) {
	rows, err := RunAblation(0)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]AblationRow{}
	for _, r := range rows {
		byName[r.Variant] = r
	}
	full := byName["MOOP (full)"]
	if full.AvgWriteMBps <= 0 {
		t.Fatal("full MOOP produced no throughput")
	}
	// Dropping connection awareness (the LB objective) must hurt
	// write throughput noticeably — the statistic-driven edge the
	// paper demonstrates against the rule-based policy.
	noLB := byName["no load-awareness"]
	if noLB.AvgWriteMBps >= full.AvgWriteMBps*0.95 {
		t.Errorf("removing load awareness barely hurt: %.1f vs %.1f", noLB.AvgWriteMBps, full.AvgWriteMBps)
	}
	// The fault-tolerance heuristics (rack pruning, collocation) trade
	// a little raw bandwidth for placement quality; they must not
	// change throughput drastically on this workload.
	for _, name := range []string{"no rack pruning", "no collocation", "L1 norm"} {
		r := byName[name]
		if r.AvgWriteMBps < full.AvgWriteMBps*0.85 || r.AvgWriteMBps > full.AvgWriteMBps*1.15 {
			t.Errorf("%s write %.1f deviates more than 15%% from full %.1f", name, r.AvgWriteMBps, full.AvgWriteMBps)
		}
	}
}

func TestHeatBenchTracksZipf(t *testing.T) {
	if testing.Short() {
		t.Skip("live cluster benchmark")
	}
	res, err := RunHeat(t.TempDir(), 8, 300, 1.3)
	if err != nil {
		t.Fatal(err)
	}
	if res.OpsPerSec <= 0 {
		t.Fatal("heat bench measured no throughput")
	}
	if res.TrackedFiles != 8 || res.TrackedBlocks != 8 {
		t.Errorf("heat plane tracked %d files / %d blocks, want 8 / 8",
			res.TrackedFiles, res.TrackedBlocks)
	}
	// The zipfian head is pronounced enough that the decayed ranking
	// must nail the hottest file and most of the top 3.
	if res.AccuracyAt1 != 1 {
		t.Errorf("accuracy@1 = %.2f, want 1", res.AccuracyAt1)
	}
	if res.AccuracyAt3 < 2.0/3.0 {
		t.Errorf("accuracy@3 = %.2f, want >= 0.67", res.AccuracyAt3)
	}
	var buf bytes.Buffer
	PrintHeat(&buf, res)
	if !strings.Contains(buf.String(), "Access-heat plane") {
		t.Error("PrintHeat missing header")
	}
}

func TestMetadataBenchPhases(t *testing.T) {
	if testing.Short() {
		t.Skip("live master benchmark")
	}
	res, err := RunMetadata(t.TempDir(), 400, 4)
	if err != nil {
		t.Fatal(err)
	}
	wantOps := []string{"create", "stat", "ls", "rename", "delete"}
	if len(res.Ops) != len(wantOps) {
		t.Fatalf("phases = %d, want %d", len(res.Ops), len(wantOps))
	}
	for i, op := range res.Ops {
		if op.Op != wantOps[i] {
			t.Errorf("phase %d = %q, want %q", i, op.Op, wantOps[i])
		}
		if op.Ops == 0 || op.OpsPerSec <= 0 {
			t.Errorf("%s: ops = %d, ops/sec = %.1f; phase did no work", op.Op, op.Ops, op.OpsPerSec)
		}
		if op.P50Micros <= 0 || op.P99Micros < op.P50Micros {
			t.Errorf("%s: p50 = %.1fus p99 = %.1fus; quantiles inverted or empty",
				op.Op, op.P50Micros, op.P99Micros)
		}
		if op.Op != "ls" && op.Ops != res.Files {
			t.Errorf("%s: ops = %d, want %d", op.Op, op.Ops, res.Files)
		}
	}
	var buf bytes.Buffer
	PrintMetadata(&buf, res)
	if !strings.Contains(buf.String(), "Metadata benchmark") {
		t.Error("PrintMetadata missing header")
	}
}
