package bench

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/integration"
	"repro/internal/policy"
	"repro/internal/storage"
	"repro/internal/workloads"
)

// Table2Row is one media type's probed throughput (paper Table 2).
type Table2Row struct {
	Media      string
	WriteMBps  float64
	ReadMBps   float64
	TargetW    float64 // the emulated device's configured rate
	TargetR    float64
	ProbeBytes int64
}

// RunTable2 reproduces Table 2: each worker's startup I/O probe
// measuring sustained write and read throughput per storage media.
// The media are throttled to the paper's device speeds, so the probe
// validates that the emulation reproduces the paper's Table 2.
func RunTable2(probeBytes int64) ([]Table2Row, error) {
	if probeBytes <= 0 {
		probeBytes = 32 << 20
	}
	dir, cleanup, err := integration.TempDir()
	if err != nil {
		return nil, err
	}
	defer cleanup()

	configs := []struct {
		name string
		cfg  storage.MediaConfig
	}{
		{"Memory", storage.MediaConfig{
			ID: "probe:mem", Tier: core.TierMemory, Capacity: 4 * probeBytes,
			WriteMBps: integration.MemWriteMBps, ReadMBps: integration.MemReadMBps,
		}},
		{"SSD", storage.MediaConfig{
			ID: "probe:ssd", Tier: core.TierSSD, Capacity: 4 * probeBytes,
			WriteMBps: integration.SSDWriteMBps, ReadMBps: integration.SSDReadMBps,
			Dir: dir + "/ssd",
		}},
		{"HDD", storage.MediaConfig{
			ID: "probe:hdd", Tier: core.TierHDD, Capacity: 4 * probeBytes,
			WriteMBps: integration.HDDWriteMBps, ReadMBps: integration.HDDReadMBps,
			Dir: dir + "/hdd",
		}},
	}
	var rows []Table2Row
	for _, c := range configs {
		m, err := storage.OpenMedia(c.cfg)
		if err != nil {
			return nil, err
		}
		w, r, err := m.Probe(probeBytes)
		m.Close()
		if err != nil {
			return nil, fmt.Errorf("table2 probe %s: %w", c.name, err)
		}
		rows = append(rows, Table2Row{
			Media: c.name, WriteMBps: w, ReadMBps: r,
			TargetW: c.cfg.WriteMBps, TargetR: c.cfg.ReadMBps,
			ProbeBytes: probeBytes,
		})
	}
	return rows, nil
}

// PrintTable2 renders Table 2.
func PrintTable2(w io.Writer, rows []Table2Row) {
	fmt.Fprintln(w, "\nTable 2: probed write/read throughput (MB/s) per storage media")
	fmt.Fprintf(w, "%-10s%14s%14s%14s%14s\n", "media", "write", "read", "paper write", "paper read")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s%14.1f%14.1f%14.1f%14.1f\n", r.Media, r.WriteMBps, r.ReadMBps, r.TargetW, r.TargetR)
	}
}

// Table3Row compares one namespace operation's rate between the
// HDFS-equivalent configuration and OctopusFS (paper Table 3).
type Table3Row struct {
	Op            workloads.SLiveOp
	HDFSOpsPerSec float64
	OctoOpsPerSec float64
}

// RunTable3 reproduces §7.4: the S-Live namespace stress test against
// two live in-process deployments — one configured like plain HDFS
// (HDD-only placement, locality-only retrieval, scalar replication)
// and one with the full OctopusFS policies — reporting operations per
// second per configuration. Like the paper's protocol, the experiment
// is repeated (four interleaved rounds) and the rates averaged, which
// cancels background drift on shared machines.
func RunTable3(dir string, clients, opsPerClient int) ([]Table3Row, error) {
	const rounds = 4
	sumH := map[workloads.SLiveOp]float64{}
	sumO := map[workloads.SLiveOp]float64{}
	for round := 0; round < rounds; round++ {
		rows, err := runTable3Once(fmt.Sprintf("%s/r%d", dir, round), clients, opsPerClient)
		if err != nil {
			return nil, err
		}
		for _, r := range rows {
			sumH[r.Op] += r.HDFSOpsPerSec
			sumO[r.Op] += r.OctoOpsPerSec
		}
	}
	var rows []Table3Row
	for _, op := range workloads.SLiveOps() {
		rows = append(rows, Table3Row{
			Op:            op,
			HDFSOpsPerSec: sumH[op] / rounds,
			OctoOpsPerSec: sumO[op] / rounds,
		})
	}
	return rows, nil
}

func runTable3Once(dir string, clients, opsPerClient int) ([]Table3Row, error) {
	run := func(placement policy.PlacementPolicy, retrieval policy.RetrievalPolicy, sub string) (map[workloads.SLiveOp]float64, error) {
		cfg := integration.DefaultClusterConfig(dir + "/" + sub)
		cfg.NumWorkers = 3
		cfg.Placement = placement
		cfg.Retrieval = retrieval
		c, err := integration.StartCluster(cfg)
		if err != nil {
			return nil, err
		}
		defer c.Close()
		results, err := workloads.RunSLive(workloads.SLiveConfig{
			MasterAddr:   c.Master.Addr(),
			Clients:      clients,
			OpsPerClient: opsPerClient,
		})
		if err != nil {
			return nil, err
		}
		out := map[workloads.SLiveOp]float64{}
		for _, r := range results {
			out[r.Op] = r.OpsPerSec
		}
		return out, nil
	}

	hdfs, err := run(policy.NewHDFSPolicy(), policy.NewHDFSRetrievalPolicy(), "hdfs")
	if err != nil {
		return nil, fmt.Errorf("table3 hdfs run: %w", err)
	}
	octo, err := run(nil, nil, "octo") // nil = MOOP + OctopusFS defaults
	if err != nil {
		return nil, fmt.Errorf("table3 octopus run: %w", err)
	}
	var rows []Table3Row
	for _, op := range workloads.SLiveOps() {
		rows = append(rows, Table3Row{Op: op, HDFSOpsPerSec: hdfs[op], OctoOpsPerSec: octo[op]})
	}
	return rows, nil
}

// PrintTable3 renders Table 3.
func PrintTable3(w io.Writer, rows []Table3Row) {
	fmt.Fprintln(w, "\nTable 3: namespace operations per second (live cluster)")
	fmt.Fprintf(w, "%-12s%16s%16s%12s\n", "operation", "HDFS-config", "OctopusFS", "overhead")
	for _, r := range rows {
		overhead := 0.0
		if r.HDFSOpsPerSec > 0 {
			overhead = 100 * (r.HDFSOpsPerSec - r.OctoOpsPerSec) / r.HDFSOpsPerSec
		}
		fmt.Fprintf(w, "%-12s%16.1f%16.1f%11.1f%%\n", r.Op, r.HDFSOpsPerSec, r.OctoOpsPerSec, overhead)
	}
}
