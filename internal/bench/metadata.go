package bench

import (
	"fmt"
	"io"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/master"
)

// MetadataOpResult is the throughput and latency of one metadata
// operation phase, aggregated over every client.
type MetadataOpResult struct {
	Op        string  `json:"op"`
	Ops       int     `json:"ops"`
	Seconds   float64 `json:"seconds"`
	OpsPerSec float64 `json:"ops_per_sec"`
	P50Micros float64 `json:"p50_us"`
	P99Micros float64 `json:"p99_us"`
}

// MetadataResult is one run of the metadata benchmark: create, stat,
// ls, rename, and delete phases driven by N concurrent clients against
// a persistent master, in that order, each phase timed separately.
type MetadataResult struct {
	Files   int                `json:"files"`
	Clients int                `json:"clients"`
	Dirs    int                `json:"dirs"`
	Ops     []MetadataOpResult `json:"ops"`
}

// RunMetadata measures master metadata throughput: files empty files
// spread over up to 256 directories, created, stat'ed, listed,
// renamed, and deleted by clients concurrent clients over real RPC.
// The master persists its namespace (checkpoint + edit log), so every
// mutation pays the edit-log append the audit log's phase breakdown
// reports — this is the baseline the contention instrumentation is
// meant to explain. Workers are not involved: files stay empty, so no
// block is ever placed and the master is the only bottleneck.
func RunMetadata(dir string, files, clients int) (MetadataResult, error) {
	if files <= 0 {
		files = 100000
	}
	if clients <= 0 {
		clients = 8
	}
	nDirs := 256
	if files < nDirs {
		nDirs = files
	}
	res := MetadataResult{Files: files, Clients: clients, Dirs: nDirs}

	m, err := master.New(master.Config{
		ListenAddr:      "127.0.0.1:0",
		MetaDir:         filepath.Join(dir, "meta"),
		HistoryInterval: -1,
		MoverInterval:   -1,
		Seed:            1,
	})
	if err != nil {
		return res, err
	}
	defer m.Close()

	fss := make([]*client.FileSystem, clients)
	for c := range fss {
		fs, err := client.Dial(m.Addr(), client.WithOwner("bench"))
		if err != nil {
			return res, err
		}
		defer fs.Close()
		fss[c] = fs
	}

	dirPath := func(i int) string { return fmt.Sprintf("/bench/d%03d", i%nDirs) }
	filePath := func(i int) string { return fmt.Sprintf("%s/f%06d", dirPath(i), i) }
	if err := fss[0].Mkdir("/bench", true); err != nil {
		return res, err
	}
	for d := 0; d < nDirs; d++ {
		if err := fss[0].Mkdir(dirPath(d), false); err != nil {
			return res, err
		}
	}

	// phase fans items out to the clients round-robin, times every
	// call, and folds the merged latencies into one result row. Exact
	// quantiles: the full latency set is kept and sorted, not bucketed.
	phase := func(op string, items int, fn func(fs *client.FileSystem, i int) error) error {
		lats := make([][]time.Duration, clients)
		errs := make([]error, clients)
		var wg sync.WaitGroup
		start := time.Now()
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				lat := make([]time.Duration, 0, items/clients+1)
				for i := c; i < items; i += clients {
					t0 := time.Now()
					if err := fn(fss[c], i); err != nil {
						errs[c] = fmt.Errorf("%s #%d: %w", op, i, err)
						return
					}
					lat = append(lat, time.Since(t0))
				}
				lats[c] = lat
			}(c)
		}
		wg.Wait()
		elapsed := time.Since(start).Seconds()
		for _, err := range errs {
			if err != nil {
				return err
			}
		}
		var all []time.Duration
		for _, l := range lats {
			all = append(all, l...)
		}
		sort.Slice(all, func(a, b int) bool { return all[a] < all[b] })
		r := MetadataOpResult{Op: op, Ops: len(all), Seconds: elapsed}
		if elapsed > 0 {
			r.OpsPerSec = float64(len(all)) / elapsed
		}
		if n := len(all); n > 0 {
			r.P50Micros = float64(all[n/2]) / 1e3
			r.P99Micros = float64(all[min(n*99/100, n-1)]) / 1e3
		}
		res.Ops = append(res.Ops, r)
		return nil
	}

	rv := core.ReplicationVectorFromFactor(1)
	steps := []struct {
		op    string
		items int
		fn    func(fs *client.FileSystem, i int) error
	}{
		{"create", files, func(fs *client.FileSystem, i int) error {
			w, err := fs.Create(filePath(i), client.CreateOptions{RepVector: rv})
			if err != nil {
				return err
			}
			return w.Close()
		}},
		{"stat", files, func(fs *client.FileSystem, i int) error {
			_, err := fs.Stat(filePath(i))
			return err
		}},
		// Every client lists every directory, so ls throughput reflects
		// concurrent read-lock sharing over ~files/dirs-entry listings.
		{"ls", nDirs * clients, func(fs *client.FileSystem, i int) error {
			_, err := fs.List(dirPath(i % nDirs))
			return err
		}},
		{"rename", files, func(fs *client.FileSystem, i int) error {
			return fs.Rename(filePath(i), filePath(i)+".r")
		}},
		{"delete", files, func(fs *client.FileSystem, i int) error {
			return fs.Delete(filePath(i)+".r", false)
		}},
	}
	for _, s := range steps {
		if err := phase(s.op, s.items, s.fn); err != nil {
			return res, err
		}
	}
	return res, nil
}

// PrintMetadata renders the metadata benchmark as a table.
func PrintMetadata(w io.Writer, r MetadataResult) {
	fmt.Fprintf(w, "\nMetadata benchmark: %d files, %d dirs, %d concurrent clients (persistent master)\n",
		r.Files, r.Dirs, r.Clients)
	fmt.Fprintf(w, "%-10s%10s%12s%14s%12s%12s\n",
		"op", "ops", "seconds", "ops/sec", "p50 us", "p99 us")
	for _, op := range r.Ops {
		fmt.Fprintf(w, "%-10s%10d%12.2f%14.1f%12.1f%12.1f\n",
			op.Op, op.Ops, op.Seconds, op.OpsPerSec, op.P50Micros, op.P99Micros)
	}
}
