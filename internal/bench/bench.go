// Package bench contains the experiment drivers that regenerate every
// table and figure of the paper's evaluation (§7). Each RunXxx
// function returns structured results; each PrintXxx renders them in
// the paper's format. The cmd/octopus-bench binary and the top-level
// Go benchmarks are thin wrappers over this package.
package bench

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/workloads"
)

// Fig2Vectors are the six replication vectors of paper Figure 2.
func Fig2Vectors() []core.ReplicationVector {
	return []core.ReplicationVector{
		core.NewReplicationVector(3, 0, 0, 0, 0),
		core.NewReplicationVector(0, 3, 0, 0, 0),
		core.NewReplicationVector(0, 0, 3, 0, 0),
		core.NewReplicationVector(1, 1, 1, 0, 0),
		core.NewReplicationVector(1, 0, 2, 0, 0),
		core.NewReplicationVector(0, 1, 2, 0, 0),
	}
}

// Parallelisms are the five degrees of parallelism of Figures 2 and 5.
func Parallelisms() []int { return []int{9, 18, 27, 36, 45} }

// Fig2Point is one measurement of Figure 2: a (vector, parallelism)
// cell with the average write and read task throughput.
type Fig2Point struct {
	Vector     core.ReplicationVector
	D          int
	WriteMBps  float64 // average per-task write rate
	ReadMBps   float64 // average per-task read rate
	LocalReads float64 // fraction of node-local reads
}

// RunFig2 reproduces §7.1: DFSIO writing and reading 10 GB with six
// explicit replication vectors under five degrees of parallelism.
// totalMB scales the experiment (10240 reproduces the paper).
func RunFig2(totalMB int64) ([]Fig2Point, error) {
	if totalMB <= 0 {
		totalMB = 10240
	}
	var points []Fig2Point
	for _, d := range Parallelisms() {
		for _, v := range Fig2Vectors() {
			c := sim.NewCluster(sim.PaperClusterConfig())
			cfg := workloads.DFSIOConfig{
				Cluster: c, Threads: d, TotalMB: totalMB, BlockMB: 128,
				RepVector: v, PathPrefix: "/dfsio",
			}
			w, err := workloads.RunWrite(cfg)
			if err != nil {
				return nil, fmt.Errorf("fig2 write %s d=%d: %w", v, d, err)
			}
			r, err := workloads.RunRead(cfg)
			if err != nil {
				return nil, fmt.Errorf("fig2 read %s d=%d: %w", v, d, err)
			}
			p := Fig2Point{Vector: v, D: d, WriteMBps: w.PerThreadMBps, ReadMBps: r.PerThreadMBps}
			if r.TotalReads > 0 {
				p.LocalReads = float64(r.LocalReads) / float64(r.TotalReads)
			}
			points = append(points, p)
		}
	}
	return points, nil
}

// PrintFig2 renders Figure 2 as two tables (write and read).
func PrintFig2(w io.Writer, points []Fig2Point) {
	byD := map[int]map[core.ReplicationVector]Fig2Point{}
	for _, p := range points {
		if byD[p.D] == nil {
			byD[p.D] = map[core.ReplicationVector]Fig2Point{}
		}
		byD[p.D][p.Vector] = p
	}
	for _, phase := range []string{"write", "read"} {
		fmt.Fprintf(w, "\nFigure 2(%s): avg %s throughput per task (MB/s), <M,S,H> vectors\n",
			map[string]string{"write": "a", "read": "b"}[phase], phase)
		fmt.Fprintf(w, "%-10s", "d")
		for _, v := range Fig2Vectors() {
			fmt.Fprintf(w, "%12s", fmt.Sprintf("<%d,%d,%d>", v.Memory(), v.SSD(), v.HDD()))
		}
		fmt.Fprintln(w)
		for _, d := range Parallelisms() {
			fmt.Fprintf(w, "%-10d", d)
			for _, v := range Fig2Vectors() {
				p := byD[d][v]
				val := p.WriteMBps
				if phase == "read" {
					val = p.ReadMBps
				}
				fmt.Fprintf(w, "%12.1f", val)
			}
			fmt.Fprintln(w)
		}
	}
}

// PlacementPolicies returns the eight placement policies of §7.2 in
// the paper's presentation order. MOOP and the single-objective
// policies enable the memory tier ("we enabled the use of the Memory
// tier for fairness").
func PlacementPolicies() []policy.PlacementPolicy {
	moopCfg := policy.DefaultMOOPConfig()
	moopCfg.UseMemory = true
	return []policy.PlacementPolicy{
		policy.NewSingleObjectivePolicy(policy.DataBalancing),
		policy.NewSingleObjectivePolicy(policy.LoadBalancing),
		policy.NewSingleObjectivePolicy(policy.FaultTolerance),
		policy.NewSingleObjectivePolicy(policy.ThroughputMax),
		policy.NewMOOPPolicy(moopCfg),
		policy.NewRuleBasedPolicy(),
		policy.NewHDFSPolicy(),
		policy.NewHDFSWithSSDPolicy(),
	}
}

// Fig3Series is one policy's result for Figures 3 and 4.
type Fig3Series struct {
	Policy string

	AvgWriteMBps  float64 // avg write throughput per worker (Fig 3a)
	AvgReadMBps   float64 // avg read throughput per worker (Fig 3b)
	WriteTimeline []workloads.Sample
	ReadTimeline  []workloads.Sample

	// RemainingPercent per tier after the write phase (Figure 4).
	RemainingPercent map[core.StorageTier]float64
}

// RunFig3 reproduces §7.2: DFSIO writing and reading 40 GB with U=3
// at d=27 under each of the eight placement policies. totalMB scales
// the run (40960 reproduces the paper).
func RunFig3(totalMB int64) ([]Fig3Series, error) {
	if totalMB <= 0 {
		totalMB = 40960
	}
	var out []Fig3Series
	for _, pol := range PlacementPolicies() {
		cfg := sim.PaperClusterConfig()
		cfg.Placement = pol
		c := sim.NewCluster(cfg)
		dfsio := workloads.DFSIOConfig{
			Cluster: c, Threads: 27, TotalMB: totalMB, BlockMB: 128,
			RepVector: core.ReplicationVectorFromFactor(3), PathPrefix: "/fig3",
		}
		w, err := workloads.RunWrite(dfsio)
		if err != nil {
			return nil, fmt.Errorf("fig3 %s write: %w", pol.Name(), err)
		}
		series := Fig3Series{
			Policy:           pol.Name(),
			AvgWriteMBps:     w.ThroughputPerWorkerMBps,
			WriteTimeline:    workloads.WindowedThroughput(w.Timeline, w.MakespanSec/20+1e-9, 9),
			RemainingPercent: map[core.StorageTier]float64{},
		}
		for tier, uc := range c.TierUsage() {
			if uc[1] > 0 {
				series.RemainingPercent[tier] = 100 * float64(uc[1]-uc[0]) / float64(uc[1])
			}
		}
		r, err := workloads.RunRead(dfsio)
		if err != nil {
			return nil, fmt.Errorf("fig3 %s read: %w", pol.Name(), err)
		}
		series.AvgReadMBps = r.ThroughputPerWorkerMBps
		series.ReadTimeline = workloads.WindowedThroughput(r.Timeline, r.MakespanSec/20+1e-9, 9)
		out = append(out, series)
	}
	return out, nil
}

// PrintFig3 renders the Figure 3 averages and time series.
func PrintFig3(w io.Writer, series []Fig3Series) {
	fmt.Fprintln(w, "\nFigure 3: DFSIO 40GB, U=3, d=27 — avg throughput per worker (MB/s)")
	fmt.Fprintf(w, "%-14s%14s%14s\n", "policy", "write MB/s", "read MB/s")
	for _, s := range series {
		fmt.Fprintf(w, "%-14s%14.1f%14.1f\n", s.Policy, s.AvgWriteMBps, s.AvgReadMBps)
	}
	fmt.Fprintln(w, "\nFigure 3(a): write throughput per worker over time (MB/s, 20 windows)")
	for _, s := range series {
		fmt.Fprintf(w, "%-14s", s.Policy)
		for _, p := range s.WriteTimeline {
			fmt.Fprintf(w, "%7.0f", p.PayloadMB)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w, "\nFigure 3(b): read throughput per worker over time (MB/s, 20 windows)")
	for _, s := range series {
		fmt.Fprintf(w, "%-14s", s.Policy)
		for _, p := range s.ReadTimeline {
			fmt.Fprintf(w, "%7.0f", p.PayloadMB)
		}
		fmt.Fprintln(w)
	}
}

// PrintFig4 renders the Figure 4 per-tier remaining capacities.
func PrintFig4(w io.Writer, series []Fig3Series) {
	fmt.Fprintln(w, "\nFigure 4: remaining capacity percent per storage tier after the 40GB write")
	fmt.Fprintf(w, "%-14s%10s%10s%10s\n", "policy", "MEMORY", "SSD", "HDD")
	for _, s := range series {
		fmt.Fprintf(w, "%-14s%10.1f%10.1f%10.1f\n", s.Policy,
			s.RemainingPercent[core.TierMemory],
			s.RemainingPercent[core.TierSSD],
			s.RemainingPercent[core.TierHDD])
	}
}

// Fig5Point is one measurement of Figure 5.
type Fig5Point struct {
	Policy   string
	D        int
	ReadMBps float64 // avg read throughput per task
}

// RunFig5 reproduces §7.3: data written with the MOOP policy, then
// read with the OctopusFS retrieval policy vs the original HDFS
// (locality-only) policy, for five degrees of parallelism.
func RunFig5(totalMB int64) ([]Fig5Point, error) {
	if totalMB <= 0 {
		totalMB = 10240
	}
	retrievals := []policy.RetrievalPolicy{
		policy.NewOctopusRetrievalPolicy(),
		policy.NewHDFSRetrievalPolicy(),
	}
	moopCfg := policy.DefaultMOOPConfig()
	moopCfg.UseMemory = true
	var out []Fig5Point
	for _, d := range Parallelisms() {
		for _, ret := range retrievals {
			cfg := sim.PaperClusterConfig()
			cfg.Placement = policy.NewMOOPPolicy(moopCfg)
			cfg.Retrieval = ret
			c := sim.NewCluster(cfg)
			dfsio := workloads.DFSIOConfig{
				Cluster: c, Threads: d, TotalMB: totalMB, BlockMB: 128,
				RepVector: core.ReplicationVectorFromFactor(3), PathPrefix: "/fig5",
			}
			if _, err := workloads.RunWrite(dfsio); err != nil {
				return nil, fmt.Errorf("fig5 write d=%d: %w", d, err)
			}
			r, err := workloads.RunRead(dfsio)
			if err != nil {
				return nil, fmt.Errorf("fig5 read %s d=%d: %w", ret.Name(), d, err)
			}
			out = append(out, Fig5Point{Policy: ret.Name(), D: d, ReadMBps: r.PerThreadMBps})
		}
	}
	return out, nil
}

// PrintFig5 renders Figure 5.
func PrintFig5(w io.Writer, points []Fig5Point) {
	fmt.Fprintln(w, "\nFigure 5: avg read throughput per task (MB/s), MOOP-placed data")
	fmt.Fprintf(w, "%-10s%14s%14s%10s\n", "d", "OctopusFS", "HDFS", "speedup")
	vals := map[int]map[string]float64{}
	for _, p := range points {
		if vals[p.D] == nil {
			vals[p.D] = map[string]float64{}
		}
		vals[p.D][p.Policy] = p.ReadMBps
	}
	for _, d := range Parallelisms() {
		oct, hdfs := vals[d]["OctopusFS"], vals[d]["HDFS"]
		speedup := 0.0
		if hdfs > 0 {
			speedup = oct / hdfs
		}
		fmt.Fprintf(w, "%-10d%14.1f%14.1f%9.1fx\n", d, oct, hdfs, speedup)
	}
}
