package bench

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/workloads"
)

// AblationRow measures one MOOP variant on the Figure 3 workload
// (DFSIO, U=3, d=27).
type AblationRow struct {
	Variant      string
	AvgWriteMBps float64
	AvgReadMBps  float64
}

// ablationVariants builds the MOOP configurations whose design choices
// DESIGN.md calls out: the Eq. 11 norm, the two-rack pruning
// heuristic, writer collocation, and the load-balancing objective
// (connection awareness).
func ablationVariants() []struct {
	name string
	pol  policy.PlacementPolicy
} {
	base := func() policy.MOOPConfig {
		cfg := policy.DefaultMOOPConfig()
		cfg.UseMemory = true
		return cfg
	}
	noRack := base()
	noRack.RackPruning = false
	l1 := base()
	l1.Norm = policy.NormL1
	noLocal := base()
	noLocal.ClientLocal = false
	noLB := base()
	noLB.Objectives = []policy.Objective{
		policy.DataBalancing, policy.FaultTolerance, policy.ThroughputMax,
	}
	return []struct {
		name string
		pol  policy.PlacementPolicy
	}{
		{"MOOP (full)", policy.NewMOOPPolicy(base())},
		{"no rack pruning", policy.NewMOOPPolicy(noRack)},
		{"L1 norm", policy.NewMOOPPolicy(l1)},
		{"no collocation", policy.NewMOOPPolicy(noLocal)},
		{"no load-awareness", policy.NewMOOPPolicy(noLB)},
	}
}

// RunAblation executes the Figure 3 write+read workload under each
// MOOP variant. totalMB scales the run (0 = the paper's 40 GB).
func RunAblation(totalMB int64) ([]AblationRow, error) {
	if totalMB <= 0 {
		totalMB = 40960
	}
	var rows []AblationRow
	for _, v := range ablationVariants() {
		cfg := sim.PaperClusterConfig()
		cfg.Placement = v.pol
		c := sim.NewCluster(cfg)
		dfsio := workloads.DFSIOConfig{
			Cluster: c, Threads: 27, TotalMB: totalMB, BlockMB: 128,
			RepVector: core.ReplicationVectorFromFactor(3), PathPrefix: "/abl",
		}
		w, err := workloads.RunWrite(dfsio)
		if err != nil {
			return nil, fmt.Errorf("ablation %s write: %w", v.name, err)
		}
		r, err := workloads.RunRead(dfsio)
		if err != nil {
			return nil, fmt.Errorf("ablation %s read: %w", v.name, err)
		}
		rows = append(rows, AblationRow{
			Variant:      v.name,
			AvgWriteMBps: w.ThroughputPerWorkerMBps,
			AvgReadMBps:  r.ThroughputPerWorkerMBps,
		})
	}
	return rows, nil
}

// PrintAblation renders the ablation study.
func PrintAblation(w io.Writer, rows []AblationRow) {
	fmt.Fprintln(w, "\nAblation: MOOP design choices on the Figure 3 workload (40GB, U=3, d=27)")
	fmt.Fprintf(w, "%-20s%14s%14s\n", "variant", "write MB/s", "read MB/s")
	for _, r := range rows {
		fmt.Fprintf(w, "%-20s%14.1f%14.1f\n", r.Variant, r.AvgWriteMBps, r.AvgReadMBps)
	}
}
