package bench

import (
	"fmt"
	"io"
	"math/rand"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/integration"
	"repro/internal/rpc"
)

// HeatResult is one measurement of the access-heat plane: a zipfian
// read workload over a set of small files on a live in-process
// cluster, the achieved open+read throughput, and how faithfully the
// master's decayed heat ranking reproduces the true access ranking.
type HeatResult struct {
	Files     int     `json:"files"`
	Reads     int     `json:"reads"`
	ZipfS     float64 `json:"zipf_s"`
	OpsPerSec float64 `json:"ops_per_sec"`
	// AccuracyAt1/3/5 is the overlap fraction between the true top-k
	// files (by actual read count) and the master's reported top-k.
	AccuracyAt1 float64 `json:"accuracy_at_1"`
	AccuracyAt3 float64 `json:"accuracy_at_3"`
	AccuracyAt5 float64 `json:"accuracy_at_5"`
	// TrackedBlocks and TrackedFiles echo the master-side aggregate so
	// the report shows the plane saw the whole working set.
	TrackedBlocks int `json:"tracked_blocks"`
	TrackedFiles  int `json:"tracked_files"`
}

// RunHeat drives a zipfian (s = zipfS) read workload over files small
// files and then asks the master for its heat ranking. The half-life
// is set well above the run length so the decayed scores are a nearly
// pure access count and ranking accuracy measures tracking fidelity,
// not decay. Every read is a full client open (one getBlockLocations
// plus one worker block transfer), so ops/sec is the end-to-end rate
// the heat plane must keep up with.
func RunHeat(dir string, files, reads int, zipfS float64) (HeatResult, error) {
	if files <= 0 {
		files = 24
	}
	if reads <= 0 {
		reads = 2000
	}
	if zipfS <= 1 {
		zipfS = 1.2
	}
	res := HeatResult{Files: files, Reads: reads, ZipfS: zipfS}

	cfg := integration.DefaultClusterConfig(dir)
	cfg.NumWorkers = 2
	cfg.BlockSize = 256 << 10
	cfg.HeatHalfLife = time.Hour
	c, err := integration.StartCluster(cfg)
	if err != nil {
		return res, err
	}
	defer c.Close()
	fs, err := c.Client("")
	if err != nil {
		return res, err
	}
	defer fs.Close()

	rng := rand.New(rand.NewSource(7))
	data := make([]byte, 64<<10)
	rng.Read(data)
	if err := fs.Mkdir("/heat", true); err != nil {
		return res, err
	}
	paths := make([]string, files)
	for i := range paths {
		paths[i] = fmt.Sprintf("/heat/f%02d", i)
		if err := fs.WriteFile(paths[i], data, core.ReplicationVectorFromFactor(1)); err != nil {
			return res, err
		}
	}

	// Zipf ranks map to file indices directly: file 0 is the true
	// hottest, file 1 the next, and so on.
	zipf := rand.NewZipf(rng, zipfS, 1, uint64(files-1))
	counts := make([]int, files)
	start := time.Now()
	for i := 0; i < reads; i++ {
		idx := int(zipf.Uint64())
		counts[idx]++
		r, err := fs.Open(paths[idx])
		if err != nil {
			return res, err
		}
		if _, err := io.Copy(io.Discard, r); err != nil {
			r.Close()
			return res, err
		}
		r.Close()
	}
	res.OpsPerSec = float64(reads) / time.Since(start).Seconds()

	report, err := fs.Heat(files, "", false)
	if err != nil {
		return res, err
	}
	res.TrackedBlocks = report.Aggregate.TrackedBlocks
	res.TrackedFiles = report.Aggregate.TrackedFiles
	res.AccuracyAt1 = topKAccuracy(counts, paths, report.Files, 1)
	res.AccuracyAt3 = topKAccuracy(counts, paths, report.Files, 3)
	res.AccuracyAt5 = topKAccuracy(counts, paths, report.Files, 5)
	return res, nil
}

// topKAccuracy computes |true top-k ∩ reported top-k| / k, where the
// true ranking orders files by actual read count (ties broken by
// index, matching zipf's rank order).
func topKAccuracy(counts []int, paths []string, reported []rpc.FileHeat, k int) float64 {
	order := make([]int, len(counts))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return counts[order[a]] > counts[order[b]] })
	truth := make(map[string]bool, k)
	for _, i := range order[:min(k, len(order))] {
		truth[paths[i]] = true
	}
	hits := 0
	for _, f := range reported[:min(k, len(reported))] {
		if truth[f.Path] {
			hits++
		}
	}
	return float64(hits) / float64(k)
}

// PrintHeat renders the heat-plane measurement as a table.
func PrintHeat(w io.Writer, r HeatResult) {
	fmt.Fprintf(w, "\nAccess-heat plane: zipfian read workload (s=%.1f, %d files, %d reads)\n",
		r.ZipfS, r.Files, r.Reads)
	fmt.Fprintf(w, "%-14s%12s%12s%12s%12s%12s\n",
		"ops/sec", "acc@1", "acc@3", "acc@5", "blocks", "files")
	fmt.Fprintf(w, "%-14.1f%12.2f%12.2f%12.2f%12d%12d\n",
		r.OpsPerSec, r.AccuracyAt1, r.AccuracyAt3, r.AccuracyAt5,
		r.TrackedBlocks, r.TrackedFiles)
}

// WriteHeatJSON writes the heat measurement to path as JSON.
func WriteHeatJSON(path string, r HeatResult) error {
	return WriteJSON(path, r)
}
