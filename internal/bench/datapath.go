package bench

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/integration"
)

// DataPathResult is one measurement of the concurrent data path: the
// end-to-end single-stream write and read throughput of a live
// in-process cluster under a given readahead depth and write window.
type DataPathResult struct {
	Readahead   int
	WriteWindow int
	WriteMBps   float64
	ReadMBps    float64
}

// RunDataPath measures single-client streaming throughput against a
// live cluster. With readahead == 0 and writeWindow == 0 the data
// path is fully synchronous (one master round trip plus one pipeline
// ack wait per block on writes, one dial + handshake per block on
// reads); larger values overlap those latencies with the data
// transfer. Small blocks make the per-block latency share visible
// without needing a slow network.
func RunDataPath(dir string, fileMB, blockMB int64, readahead, writeWindow int) (DataPathResult, error) {
	res := DataPathResult{Readahead: readahead, WriteWindow: writeWindow}
	if fileMB <= 0 {
		fileMB = 64
	}
	if blockMB <= 0 {
		blockMB = 1
	}
	cfg := integration.DefaultClusterConfig(dir)
	cfg.NumWorkers = 3
	cfg.BlockSize = blockMB << 20
	cfg.HDDCapacity = 4 * fileMB << 20
	c, err := integration.StartCluster(cfg)
	if err != nil {
		return res, err
	}
	defer c.Close()
	fs, err := c.Client("",
		client.WithReadahead(readahead), client.WithWriteWindow(writeWindow))
	if err != nil {
		return res, err
	}
	defer fs.Close()

	data := make([]byte, fileMB<<20)
	rand.New(rand.NewSource(42)).Read(data)

	start := time.Now()
	w, err := fs.Create("/bench.bin", client.CreateOptions{
		RepVector: core.ReplicationVectorFromFactor(2),
	})
	if err != nil {
		return res, err
	}
	if _, err := w.Write(data); err != nil {
		w.Abort()
		return res, err
	}
	if err := w.Close(); err != nil {
		return res, err
	}
	res.WriteMBps = float64(fileMB) / time.Since(start).Seconds()

	start = time.Now()
	r, err := fs.Open("/bench.bin")
	if err != nil {
		return res, err
	}
	got := make([]byte, len(data))
	if _, err := io.ReadFull(r, got); err != nil {
		r.Close()
		return res, err
	}
	r.Close()
	res.ReadMBps = float64(fileMB) / time.Since(start).Seconds()
	if !bytes.Equal(got, data) {
		return res, fmt.Errorf("datapath: read-back mismatch")
	}
	return res, nil
}

// PrintDataPath renders data-path measurements as a table.
func PrintDataPath(w io.Writer, results []DataPathResult) {
	fmt.Fprintf(w, "\nConcurrent data path: single-stream throughput (MB/s)\n")
	fmt.Fprintf(w, "%-12s%-14s%12s%12s\n", "readahead", "write-window", "write MB/s", "read MB/s")
	for _, r := range results {
		fmt.Fprintf(w, "%-12d%-14d%12.1f%12.1f\n", r.Readahead, r.WriteWindow, r.WriteMBps, r.ReadMBps)
	}
}
