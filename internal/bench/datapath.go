package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"os"
	"sort"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/integration"
	"repro/internal/metrics"
	"repro/internal/rpc"
	"repro/internal/xfer"
)

// DataPathResult is one measurement of the concurrent data path: the
// end-to-end single-stream write and read throughput of a live
// in-process cluster under a given readahead depth and write window,
// plus per-block-operation latency quantiles pulled from the workers'
// octopus_worker_op_duration_seconds histograms.
type DataPathResult struct {
	Readahead   int     `json:"readahead"`
	WriteWindow int     `json:"write_window"`
	WriteMBps   float64 `json:"write_mbps"`
	ReadMBps    float64 `json:"read_mbps"`
	WriteP50    float64 `json:"write_p50_seconds"`
	WriteP99    float64 `json:"write_p99_seconds"`
	ReadP50     float64 `json:"read_p50_seconds"`
	ReadP99     float64 `json:"read_p99_seconds"`

	// WritePhases and ReadPhases break the op latency down by
	// critical-path phase (dial, header, throttle, disk, net, ack),
	// computed exactly from the flight-recorder records of the client
	// and every worker rather than interpolated from histogram buckets.
	WritePhases map[string]PhaseQuantiles `json:"write_phases"`
	ReadPhases  map[string]PhaseQuantiles `json:"read_phases"`

	// PoolHits / PoolMisses are the data-connection pool checkouts
	// this run served from idle conns vs. fresh dials; PoolHitRate is
	// hits over all checkouts.
	PoolHits    uint64  `json:"pool_hits"`
	PoolMisses  uint64  `json:"pool_misses"`
	PoolHitRate float64 `json:"pool_hit_rate"`

	// WarmDialWrite / WarmDialRead are the "dial" (pool checkout)
	// latency quantiles over only the transfers that reused a pooled
	// connection — the warm path, which pooling must keep near zero.
	WarmDialWrite PhaseQuantiles `json:"warm_dial_write"`
	WarmDialRead  PhaseQuantiles `json:"warm_dial_read"`
}

// PhaseQuantiles is the exact p50/p99 over the per-transfer samples of
// one critical-path phase. Count is the number of transfers that
// exercised the phase at all — a phase a transfer skipped (no dial on
// a prefetched read, no throttle when no rate limit is set) does not
// contribute a zero sample.
type PhaseQuantiles struct {
	P50Seconds float64 `json:"p50_seconds"`
	P99Seconds float64 `json:"p99_seconds"`
	Count      int     `json:"count"`
}

// phaseNames fixes the JSON key set (and print order) of a phase
// breakdown; absent phases appear with Count == 0 rather than
// vanishing from the report.
var phaseNames = []string{"dial", "header", "throttle", "disk", "net", "ack"}

// RunDataPath measures single-client streaming throughput against a
// live cluster. With readahead == 0 and writeWindow == 0 the data
// path is fully synchronous (one master round trip plus one pipeline
// ack wait per block on writes, one dial + handshake per block on
// reads); larger values overlap those latencies with the data
// transfer. Small blocks make the per-block latency share visible
// without needing a slow network.
func RunDataPath(dir string, fileMB, blockMB int64, readahead, writeWindow int) (DataPathResult, error) {
	res := DataPathResult{Readahead: readahead, WriteWindow: writeWindow}
	if fileMB <= 0 {
		fileMB = 64
	}
	if blockMB <= 0 {
		blockMB = 1
	}
	poolBefore := rpc.DataPoolStats()
	cfg := integration.DefaultClusterConfig(dir)
	cfg.NumWorkers = 3
	cfg.BlockSize = blockMB << 20
	cfg.HDDCapacity = 4 * fileMB << 20
	c, err := integration.StartCluster(cfg)
	if err != nil {
		return res, err
	}
	defer c.Close()
	fs, err := c.Client("",
		client.WithReadahead(readahead), client.WithWriteWindow(writeWindow))
	if err != nil {
		return res, err
	}
	defer fs.Close()

	data := make([]byte, fileMB<<20)
	rand.New(rand.NewSource(42)).Read(data)

	start := time.Now()
	w, err := fs.Create("/bench.bin", client.CreateOptions{
		RepVector: core.ReplicationVectorFromFactor(2),
	})
	if err != nil {
		return res, err
	}
	if _, err := w.Write(data); err != nil {
		w.Abort()
		return res, err
	}
	if err := w.Close(); err != nil {
		return res, err
	}
	res.WriteMBps = float64(fileMB) / time.Since(start).Seconds()

	start = time.Now()
	r, err := fs.Open("/bench.bin")
	if err != nil {
		return res, err
	}
	got := make([]byte, len(data))
	if _, err := io.ReadFull(r, got); err != nil {
		r.Close()
		return res, err
	}
	r.Close()
	res.ReadMBps = float64(fileMB) / time.Since(start).Seconds()
	if !bytes.Equal(got, data) {
		return res, fmt.Errorf("datapath: read-back mismatch")
	}
	res.WriteP50, res.WriteP99 = opQuantiles(c, "write")
	res.ReadP50, res.ReadP99 = opQuantiles(c, "read")
	recs := collectTransfers(c, fs)
	res.WritePhases = phaseQuantiles(recs, "write")
	res.ReadPhases = phaseQuantiles(recs, "read")
	res.WarmDialWrite = warmDialQuantiles(recs, "write")
	res.WarmDialRead = warmDialQuantiles(recs, "read")
	poolAfter := rpc.DataPoolStats()
	res.PoolHits = poolAfter.Hits - poolBefore.Hits
	res.PoolMisses = poolAfter.Misses - poolBefore.Misses
	if total := res.PoolHits + res.PoolMisses; total > 0 {
		res.PoolHitRate = float64(res.PoolHits) / float64(total)
	}
	return res, nil
}

// warmDialQuantiles computes dial (pool checkout) latency quantiles
// over only the transfers of one kind that reused a pooled
// connection. Unlike phaseQuantiles it keeps near-zero samples: the
// warm path's whole point is that the dial phase collapses.
func warmDialQuantiles(recs []xfer.Record, op string) PhaseQuantiles {
	var s []float64
	for _, r := range recs {
		if r.Op == op && r.PoolHit {
			s = append(s, float64(r.DialNs)/1e9)
		}
	}
	sort.Float64s(s)
	return PhaseQuantiles{
		P50Seconds: exactQuantile(s, 0.5),
		P99Seconds: exactQuantile(s, 0.99),
		Count:      len(s),
	}
}

// collectTransfers drains every flight recorder in the cluster — the
// client's (dial/ack side) and each worker's (disk/net side) — into
// one record set for phase analysis.
func collectTransfers(c *integration.Cluster, fs *client.FileSystem) []xfer.Record {
	recs := append([]xfer.Record(nil), fs.TransferLog().Since(0, "", 0).Entries...)
	for _, w := range c.Workers {
		recs = append(recs, w.TransferLog().Since(0, "", 0).Entries...)
	}
	return recs
}

// phaseQuantiles computes the exact per-phase p50/p99 over the records
// of one transfer kind. Client and worker records both contribute:
// each reports the phases measured on its own side of the wire.
func phaseQuantiles(recs []xfer.Record, op string) map[string]PhaseQuantiles {
	samples := make(map[string][]float64, len(phaseNames))
	add := func(name string, ns int64) {
		if ns > 0 {
			samples[name] = append(samples[name], float64(ns)/1e9)
		}
	}
	for _, r := range recs {
		if r.Op != op {
			continue
		}
		add("dial", r.DialNs)
		add("header", r.HeaderEncodeNs+r.HeaderDecodeNs)
		add("throttle", r.ThrottleWaitNs)
		add("disk", r.DiskNs)
		add("net", r.NetNs)
		add("ack", r.AckWaitNs)
	}
	out := make(map[string]PhaseQuantiles, len(phaseNames))
	for _, name := range phaseNames {
		s := samples[name]
		sort.Float64s(s)
		out[name] = PhaseQuantiles{
			P50Seconds: exactQuantile(s, 0.5),
			P99Seconds: exactQuantile(s, 0.99),
			Count:      len(s),
		}
	}
	return out
}

// exactQuantile returns the q-quantile of an ascending sample set by
// the nearest-rank method (no interpolation: every returned value was
// observed).
func exactQuantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(math.Ceil(q*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// opQuantiles merges every worker's op-duration histogram for one
// block operation and interpolates p50/p99 from the combined buckets.
// Re-registering a histogram family returns the existing one, so this
// reads the live counters without new instrumentation.
func opQuantiles(c *integration.Cluster, op string) (p50, p99 float64) {
	var upper []float64
	var cum []uint64
	var count uint64
	for _, w := range c.Workers {
		h := w.Metrics().HistogramVec("octopus_worker_op_duration_seconds",
			"Data-port operation latency in seconds, by operation.",
			metrics.DefLatencyBuckets, "op").With(op)
		u, cu, n, _ := h.Snapshot()
		if upper == nil {
			upper = u
			cum = make([]uint64, len(cu))
		}
		for i := range cu {
			cum[i] += cu[i]
		}
		count += n
	}
	return metrics.QuantileFromBuckets(upper, cum, count, 0.5),
		metrics.QuantileFromBuckets(upper, cum, count, 0.99)
}

// PrintDataPath renders data-path measurements as a table.
func PrintDataPath(w io.Writer, results []DataPathResult) {
	fmt.Fprintf(w, "\nConcurrent data path: single-stream throughput (MB/s)\n")
	fmt.Fprintf(w, "%-12s%-14s%12s%12s%12s%12s%12s%12s\n",
		"readahead", "write-window", "write MB/s", "read MB/s",
		"w p50 ms", "w p99 ms", "r p50 ms", "r p99 ms")
	for _, r := range results {
		fmt.Fprintf(w, "%-12d%-14d%12.1f%12.1f%12.2f%12.2f%12.2f%12.2f\n",
			r.Readahead, r.WriteWindow, r.WriteMBps, r.ReadMBps,
			r.WriteP50*1e3, r.WriteP99*1e3, r.ReadP50*1e3, r.ReadP99*1e3)
	}

	fmt.Fprintf(w, "\nPer-phase critical-path latency, p50/p99 ms (exact, from the flight recorder)\n")
	fmt.Fprintf(w, "%-7s%-12s%-14s", "op", "readahead", "write-window")
	for _, name := range phaseNames {
		fmt.Fprintf(w, "%16s", name)
	}
	fmt.Fprintln(w)
	for _, r := range results {
		printPhaseRow(w, "write", r.Readahead, r.WriteWindow, r.WritePhases)
		printPhaseRow(w, "read", r.Readahead, r.WriteWindow, r.ReadPhases)
	}

	fmt.Fprintf(w, "\nConnection pool: checkout reuse and warm-path dial latency\n")
	fmt.Fprintf(w, "%-12s%-14s%8s%8s%8s%22s%22s\n",
		"readahead", "write-window", "hits", "misses", "hit%",
		"warm dial w p50/p99", "warm dial r p50/p99")
	for _, r := range results {
		fmt.Fprintf(w, "%-12d%-14d%8d%8d%8.1f%22s%22s\n",
			r.Readahead, r.WriteWindow, r.PoolHits, r.PoolMisses, r.PoolHitRate*100,
			fmtWarmDial(r.WarmDialWrite), fmtWarmDial(r.WarmDialRead))
	}
}

// fmtWarmDial renders warm-path checkout quantiles in microseconds —
// the scale a healthy pooled checkout lives at.
func fmtWarmDial(pq PhaseQuantiles) string {
	if pq.Count == 0 {
		return "-"
	}
	return fmt.Sprintf("%.0f/%.0fµs", pq.P50Seconds*1e6, pq.P99Seconds*1e6)
}

func printPhaseRow(w io.Writer, op string, ra, ww int, phases map[string]PhaseQuantiles) {
	fmt.Fprintf(w, "%-7s%-12d%-14d", op, ra, ww)
	for _, name := range phaseNames {
		pq := phases[name]
		if pq.Count == 0 {
			fmt.Fprintf(w, "%16s", "-")
			continue
		}
		fmt.Fprintf(w, "%16s", fmt.Sprintf("%.2f/%.2f", pq.P50Seconds*1e3, pq.P99Seconds*1e3))
	}
	fmt.Fprintln(w)
}

// DataPathReport is the JSON document WriteDataPathJSON emits: one row
// per operation per (readahead, write window) configuration with
// throughput in bytes/sec and worker-side block-op latency quantiles.
type DataPathReport struct {
	FileMB  int64        `json:"file_mb"`
	BlockMB int64        `json:"block_mb"`
	Ops     []DataPathOp `json:"ops"`
}

// DataPathOp is one operation row of a DataPathReport. The pool
// fields are per-run (shared by the run's write and read rows);
// WarmDial is per operation. Reports from before connection pooling
// decode with those fields zero.
type DataPathOp struct {
	Op          string                    `json:"op"`
	Readahead   int                       `json:"readahead"`
	WriteWindow int                       `json:"write_window"`
	BytesPerSec float64                   `json:"bytes_per_sec"`
	P50Seconds  float64                   `json:"p50_seconds"`
	P99Seconds  float64                   `json:"p99_seconds"`
	Phases      map[string]PhaseQuantiles `json:"phases"`

	PoolHits    uint64         `json:"pool_hits,omitempty"`
	PoolMisses  uint64         `json:"pool_misses,omitempty"`
	PoolHitRate float64        `json:"pool_hit_rate,omitempty"`
	WarmDial    PhaseQuantiles `json:"warm_dial,omitempty"`
}

// BuildDataPathReport assembles the JSON report document from a set
// of measurements.
func BuildDataPathReport(fileMB, blockMB int64, results []DataPathResult) DataPathReport {
	report := DataPathReport{FileMB: fileMB, BlockMB: blockMB}
	for _, r := range results {
		report.Ops = append(report.Ops,
			DataPathOp{
				Op: "write", Readahead: r.Readahead, WriteWindow: r.WriteWindow,
				BytesPerSec: r.WriteMBps * (1 << 20), P50Seconds: r.WriteP50, P99Seconds: r.WriteP99,
				Phases:   r.WritePhases,
				PoolHits: r.PoolHits, PoolMisses: r.PoolMisses, PoolHitRate: r.PoolHitRate,
				WarmDial: r.WarmDialWrite,
			},
			DataPathOp{
				Op: "read", Readahead: r.Readahead, WriteWindow: r.WriteWindow,
				BytesPerSec: r.ReadMBps * (1 << 20), P50Seconds: r.ReadP50, P99Seconds: r.ReadP99,
				Phases:   r.ReadPhases,
				PoolHits: r.PoolHits, PoolMisses: r.PoolMisses, PoolHitRate: r.PoolHitRate,
				WarmDial: r.WarmDialRead,
			})
	}
	return report
}

// WriteDataPathJSON writes the data-path measurements to path as JSON,
// one entry per operation per configuration.
func WriteDataPathJSON(path string, fileMB, blockMB int64, results []DataPathResult) error {
	return WriteJSON(path, BuildDataPathReport(fileMB, blockMB, results))
}

// ReadDataPathJSON loads a previously written data-path report, e.g.
// the checked-in baseline CI compares a fresh run against.
func ReadDataPathJSON(path string) (DataPathReport, error) {
	var report DataPathReport
	data, err := os.ReadFile(path)
	if err != nil {
		return report, err
	}
	if err := json.Unmarshal(data, &report); err != nil {
		return report, fmt.Errorf("bench: parsing %s: %w", path, err)
	}
	return report, nil
}

// CompareDataPath renders a before/after table between two data-path
// reports matched by (op, readahead, write window): throughput, dial
// p50/p99, and pool hit rate. Baselines from before connection
// pooling show "-" in the pool columns.
func CompareDataPath(w io.Writer, before, after DataPathReport) {
	type key struct {
		op     string
		ra, ww int
	}
	old := make(map[key]DataPathOp, len(before.Ops))
	for _, op := range before.Ops {
		old[key{op.Op, op.Readahead, op.WriteWindow}] = op
	}
	fmt.Fprintf(w, "\nData path before/after (baseline -> this run)\n")
	fmt.Fprintf(w, "%-7s%-11s%-8s%22s%24s%24s%14s\n",
		"op", "readahead", "window", "MB/s", "dial p50 ms", "dial p99 ms", "pool hit%")
	for _, cur := range after.Ops {
		prev, ok := old[key{cur.Op, cur.Readahead, cur.WriteWindow}]
		fmtPair := func(f string, oldV, newV float64, has bool) string {
			if !has {
				return fmt.Sprintf("- -> "+f, newV)
			}
			return fmt.Sprintf(f+" -> "+f, oldV, newV)
		}
		dialOld, dialNew := prev.Phases["dial"], cur.Phases["dial"]
		hit := "-"
		if cur.PoolHits+cur.PoolMisses > 0 {
			hit = fmt.Sprintf("%.1f", cur.PoolHitRate*100)
		}
		fmt.Fprintf(w, "%-7s%-11d%-8d%22s%24s%24s%14s\n",
			cur.Op, cur.Readahead, cur.WriteWindow,
			fmtPair("%.1f", prev.BytesPerSec/(1<<20), cur.BytesPerSec/(1<<20), ok),
			fmtPair("%.3f", dialOld.P50Seconds*1e3, dialNew.P50Seconds*1e3, ok && dialOld.Count > 0),
			fmtPair("%.3f", dialOld.P99Seconds*1e3, dialNew.P99Seconds*1e3, ok && dialOld.Count > 0),
			hit)
	}
}

// CheckWarmDial gates on pooling effectiveness: at least one transfer
// must have reused a pooled connection, and the p99 checkout latency
// over pooled transfers must stay within maxP99 for every
// configuration that had warm transfers. CI fails the bench job on a
// non-nil return.
func CheckWarmDial(results []DataPathResult, maxP99 time.Duration) error {
	warm := 0
	for _, r := range results {
		for _, pq := range []struct {
			op string
			q  PhaseQuantiles
		}{{"write", r.WarmDialWrite}, {"read", r.WarmDialRead}} {
			if pq.q.Count == 0 {
				continue
			}
			warm += pq.q.Count
			if p99 := time.Duration(pq.q.P99Seconds * float64(time.Second)); p99 > maxP99 {
				return fmt.Errorf("bench: warm-path dial p99 %v exceeds %v (op=%s readahead=%d window=%d, %d pooled transfers)",
					p99, maxP99, pq.op, r.Readahead, r.WriteWindow, pq.q.Count)
			}
		}
	}
	if warm == 0 {
		return fmt.Errorf("bench: no transfer reused a pooled connection; pooling is not effective")
	}
	return nil
}
