package bench

import (
	"encoding/json"
	"os"
)

// WriteJSON writes a benchmark result document to path as indented
// JSON with a trailing newline. It is the single implementation behind
// every octopus-bench -json output, so all checked-in BENCH_*.json
// artifacts share one format.
func WriteJSON(path string, v any) error {
	buf, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}
