package bench

import (
	"fmt"
	"io"

	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/workloads"
)

// fsConfig describes a file system under test for the application
// experiments: a placement and a retrieval policy pair.
type fsConfig struct {
	name      string
	placement func() policy.PlacementPolicy
	retrieval func() policy.RetrievalPolicy
}

func hdfsFS() fsConfig {
	return fsConfig{
		name:      "HDFS",
		placement: func() policy.PlacementPolicy { return policy.NewHDFSPolicy() },
		retrieval: func() policy.RetrievalPolicy { return policy.NewHDFSRetrievalPolicy() },
	}
}

func octopusFS() fsConfig {
	return fsConfig{
		name: "OctopusFS",
		// The paper-default MOOP policy: the volatile memory tier is
		// NOT used for unspecified replicas (§3.3), which is exactly
		// why the explicit prefetch/intermediate optimisations of
		// Figure 7 have headroom on top of the automated policies.
		placement: func() policy.PlacementPolicy {
			return policy.NewMOOPPolicy(policy.DefaultMOOPConfig())
		},
		retrieval: func() policy.RetrievalPolicy { return policy.NewOctopusRetrievalPolicy() },
	}
}

func newAppCluster(fs fsConfig) *sim.Cluster {
	cfg := sim.PaperClusterConfig()
	cfg.Placement = fs.placement()
	cfg.Retrieval = fs.retrieval()
	return sim.NewCluster(cfg)
}

// Fig6Row is one workload × engine measurement of Figure 6.
type Fig6Row struct {
	Workload   string
	Category   string
	Engine     workloads.EngineKind
	HDFSSec    float64
	OctopusSec float64
	// Normalized is OctopusSec/HDFSSec — the paper's Figure 6 y-axis.
	Normalized float64
}

// appTasks is the task parallelism of the application experiments
// (3 task slots per worker, the usual Hadoop configuration for
// 8-core nodes).
const appTasks = 27

// RunFig6 reproduces §7.5: the nine HiBench workloads on the Hadoop
// and Spark engine models, each over HDFS-policy and OctopusFS-policy
// clusters, reporting normalized execution time.
func RunFig6() ([]Fig6Row, error) {
	var rows []Fig6Row
	for _, engine := range []workloads.EngineKind{workloads.Hadoop, workloads.Spark} {
		for _, w := range workloads.HiBenchSuite() {
			var secs [2]float64
			for i, fs := range []fsConfig{hdfsFS(), octopusFS()} {
				c := newAppCluster(fs)
				sec, err := workloads.RunHiBench(c, w, engine, appTasks, 128)
				if err != nil {
					return nil, fmt.Errorf("fig6 %s/%s/%s: %w", engine, w.Name, fs.name, err)
				}
				secs[i] = sec
			}
			rows = append(rows, Fig6Row{
				Workload: w.Name, Category: w.Category, Engine: engine,
				HDFSSec: secs[0], OctopusSec: secs[1],
				Normalized: secs[1] / secs[0],
			})
		}
	}
	return rows, nil
}

// PrintFig6 renders Figure 6.
func PrintFig6(w io.Writer, rows []Fig6Row) {
	fmt.Fprintln(w, "\nFigure 6: normalized execution time of OctopusFS over HDFS (lower is better)")
	fmt.Fprintf(w, "%-8s%-14s%-8s%12s%14s%12s%12s\n",
		"engine", "workload", "cat", "HDFS s", "OctopusFS s", "normalized", "gain")
	sums := map[workloads.EngineKind]float64{}
	counts := map[workloads.EngineKind]int{}
	for _, r := range rows {
		fmt.Fprintf(w, "%-8s%-14s%-8s%12.0f%14.0f%12.2f%11.0f%%\n",
			r.Engine, r.Workload, r.Category, r.HDFSSec, r.OctopusSec,
			r.Normalized, 100*(1-r.Normalized))
		sums[r.Engine] += 1 - r.Normalized
		counts[r.Engine]++
	}
	for _, e := range []workloads.EngineKind{workloads.Hadoop, workloads.Spark} {
		if counts[e] > 0 {
			fmt.Fprintf(w, "%s average improvement: %.0f%%\n", e, 100*sums[e]/float64(counts[e]))
		}
	}
}

// Fig7Variants are the execution variants of Figure 7.
var Fig7Variants = []string{"HDFS", "OctopusFS", "Octo+prefetch", "Octo+interm", "Octo+both"}

// Fig7Row is one workload's set of normalized execution times.
type Fig7Row struct {
	Workload string
	// Seconds per variant, keyed like Fig7Variants.
	Seconds map[string]float64
	// Normalized to the HDFS time (the paper's Figure 7 y-axis).
	Normalized map[string]float64
}

// RunFig7 reproduces §7.6: the four Pegasus workloads executed over
// HDFS, plain OctopusFS, and OctopusFS with the prefetching and
// in-memory-intermediate optimisations separately and together.
func RunFig7() ([]Fig7Row, error) {
	var rows []Fig7Row
	for _, w := range workloads.PegasusSuite() {
		row := Fig7Row{
			Workload:   w.Name,
			Seconds:    map[string]float64{},
			Normalized: map[string]float64{},
		}
		variants := []struct {
			name string
			fs   fsConfig
			opts workloads.PegasusOpts
		}{
			{"HDFS", hdfsFS(), workloads.PegasusOpts{}},
			{"OctopusFS", octopusFS(), workloads.PegasusOpts{}},
			{"Octo+prefetch", octopusFS(), workloads.PegasusOpts{Prefetch: true}},
			{"Octo+interm", octopusFS(), workloads.PegasusOpts{MemIntermediate: true}},
			{"Octo+both", octopusFS(), workloads.PegasusOpts{Prefetch: true, MemIntermediate: true}},
		}
		for _, v := range variants {
			c := newAppCluster(v.fs)
			sec, err := workloads.RunPegasus(c, w, v.opts, appTasks, 128)
			if err != nil {
				return nil, fmt.Errorf("fig7 %s/%s: %w", w.Name, v.name, err)
			}
			row.Seconds[v.name] = sec
		}
		for _, v := range Fig7Variants {
			row.Normalized[v] = row.Seconds[v] / row.Seconds["HDFS"]
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// PrintFig7 renders Figure 7.
func PrintFig7(w io.Writer, rows []Fig7Row) {
	fmt.Fprintln(w, "\nFigure 7: normalized execution time of Pegasus workloads (lower is better)")
	fmt.Fprintf(w, "%-12s", "workload")
	for _, v := range Fig7Variants {
		fmt.Fprintf(w, "%16s", v)
	}
	fmt.Fprintln(w)
	for _, r := range rows {
		fmt.Fprintf(w, "%-12s", r.Workload)
		for _, v := range Fig7Variants {
			fmt.Fprintf(w, "%16.2f", r.Normalized[v])
		}
		fmt.Fprintln(w)
	}
}
