package bench

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/integration"
)

// MoverResult is one measurement of the background tier mover closing
// the heat loop: a zipfian read workload over HDD-resident files on a
// throttled cluster, split into four equal quartiles. As the mover
// promotes the hot set to memory, the later quartiles run at memory
// speed — the improvement ratio is the figure of merit.
type MoverResult struct {
	Files int     `json:"files"`
	Reads int     `json:"reads"`
	ZipfS float64 `json:"zipf_s"`
	// QuartileOpsPerSec is the achieved open+read throughput of each
	// quarter of the read stream, in order.
	QuartileOpsPerSec [4]float64 `json:"quartile_ops_per_sec"`
	// Improvement = Q4 / Q1 throughput; the acceptance floor is 1.5.
	Improvement float64 `json:"improvement_q4_over_q1"`
	// Promoted and MovedBytes echo the master's mover counters.
	Promoted   int64 `json:"promoted"`
	MovedBytes int64 `json:"moved_bytes"`
	// MemoryResidentTop5 counts how many of the five truly hottest
	// files finished the run with a memory replica.
	MemoryResidentTop5 int `json:"memory_resident_top5"`
}

// RunMover drives a zipfian (s = zipfS) read workload over files
// HDD-resident files on a cluster throttled to the paper's Table 2
// device speeds (scaled down), with the tier mover passing every
// 100ms. All files start on HDD (factor-1 writes, no memory use at
// placement time); only the mover can migrate them, so any throughput
// rise across quartiles is the mover's doing.
func RunMover(dir string, files, reads int, zipfS float64) (MoverResult, error) {
	if files <= 0 {
		files = 12
	}
	if reads <= 0 {
		reads = 400
	}
	if zipfS <= 1 {
		zipfS = 1.5
	}
	res := MoverResult{Files: files, Reads: reads, ZipfS: zipfS}

	cfg := integration.DefaultClusterConfig(dir)
	cfg.NumWorkers = 2
	cfg.SSDCapacity = 0 // promotions land in memory, the strongest contrast
	cfg.BlockSize = 256 << 10
	cfg.Throttle = true
	cfg.ThrottleScale = 0.03 // HDD ~5 MB/s, memory ~97 MB/s
	cfg.HeatHalfLife = time.Hour
	cfg.MoverInterval = 100 * time.Millisecond
	cfg.MoverCooldown = time.Hour
	cfg.MoverMaxMoves = 8
	c, err := integration.StartCluster(cfg)
	if err != nil {
		return res, err
	}
	defer c.Close()
	fs, err := c.Client("")
	if err != nil {
		return res, err
	}
	defer fs.Close()

	rng := rand.New(rand.NewSource(11))
	data := make([]byte, 256<<10)
	rng.Read(data)
	if err := fs.Mkdir("/mover", true); err != nil {
		return res, err
	}
	paths := make([]string, files)
	for i := range paths {
		paths[i] = fmt.Sprintf("/mover/f%02d", i)
		if err := fs.WriteFile(paths[i], data, core.ReplicationVectorFromFactor(1)); err != nil {
			return res, err
		}
	}

	// Zipf ranks map to file indices directly: file 0 is the true
	// hottest. The stream is split into four equal quartiles timed
	// separately.
	zipf := rand.NewZipf(rng, zipfS, 1, uint64(files-1))
	quarter := reads / 4
	for q := 0; q < 4; q++ {
		start := time.Now()
		for i := 0; i < quarter; i++ {
			r, err := fs.Open(paths[int(zipf.Uint64())])
			if err != nil {
				return res, err
			}
			if _, err := io.Copy(io.Discard, r); err != nil {
				r.Close()
				return res, err
			}
			r.Close()
		}
		res.QuartileOpsPerSec[q] = float64(quarter) / time.Since(start).Seconds()
	}
	if res.QuartileOpsPerSec[0] > 0 {
		res.Improvement = res.QuartileOpsPerSec[3] / res.QuartileOpsPerSec[0]
	}

	st, err := fs.Mover()
	if err != nil {
		return res, err
	}
	res.Promoted = st.Counters.Promoted
	res.MovedBytes = st.Counters.MovedBytes
	for i := 0; i < 5 && i < files; i++ {
		blocks, err := fs.GetFileBlockLocations(paths[i], 0, -1)
		if err != nil {
			return res, err
		}
		inMemory := false
		for _, b := range blocks {
			for _, loc := range b.Locations {
				if loc.Tier == core.TierMemory {
					inMemory = true
				}
			}
		}
		if inMemory {
			res.MemoryResidentTop5++
		}
	}
	return res, nil
}

// PrintMover renders the mover measurement as a table.
func PrintMover(w io.Writer, r MoverResult) {
	fmt.Fprintf(w, "\nTier mover: zipfian reads over HDD-resident files (s=%.1f, %d files, %d reads)\n",
		r.ZipfS, r.Files, r.Reads)
	fmt.Fprintf(w, "%-10s%12s%12s%12s%12s%14s%10s%12s\n",
		"q1 ops/s", "q2 ops/s", "q3 ops/s", "q4 ops/s", "q4/q1", "promoted", "mem@top5", "moved MB")
	fmt.Fprintf(w, "%-10.1f%12.1f%12.1f%12.1f%12.2fx%14d%10d%12.1f\n",
		r.QuartileOpsPerSec[0], r.QuartileOpsPerSec[1], r.QuartileOpsPerSec[2], r.QuartileOpsPerSec[3],
		r.Improvement, r.Promoted, r.MemoryResidentTop5, float64(r.MovedBytes)/(1<<20))
}

// WriteMoverJSON writes the mover measurement to path as JSON.
func WriteMoverJSON(path string, r MoverResult) error {
	return WriteJSON(path, r)
}
