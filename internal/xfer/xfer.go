// Package xfer implements the data-path flight recorder: one
// structured record per block transfer — client reads and writes,
// worker pipeline stages, and replications — carrying the op, block,
// tier, byte count, the request/span IDs that join it to the trace
// store, and a per-phase latency breakdown (dial, gob header
// encode/decode, throttle wait, disk, network, downstream forward,
// ack wait). Where the namespace audit log answers "where did a
// metadata op's time go", the transfer log answers the same question
// for the data path, per transfer, so a slow read can be attributed
// to the media, the link, or the framing without guesswork.
//
// The log is bounded twice over, exactly like the audit log: retained
// records live in a ring buffer, and the producer side is a
// non-blocking buffered channel — when the backlog is full the record
// is dropped and counted rather than slowing a transfer down. The
// recorder must never become the data-path overhead it exists to
// measure.
package xfer

import (
	"sync"
	"sync/atomic"
	"time"
)

// DefaultCapacity bounds the ring when the configured capacity is
// zero. A record is ~250 bytes, so 4096 cover the recent past in
// about a MB.
const DefaultCapacity = 4096

// backlog is the producer channel depth: how many records may be in
// flight between transfer completions and the ring before Append
// starts dropping.
const backlog = 1024

// Record is one completed (or failed) block transfer. All latency
// fields are nanoseconds; phases that did not occur on the recording
// side (dial on a served read, ack wait on a read) are zero. The
// phases are measured serially on the transfer's critical path, so
// their sum never exceeds TotalNs.
type Record struct {
	// Seq is the log-assigned sequence number: strictly monotonically
	// increasing, starting at 1. It is the cursor for Since.
	Seq uint64 `json:"seq"`

	// Time is the transfer completion time in Unix nanoseconds.
	Time int64 `json:"time_ns"`

	// Op is the transfer kind: "read", "write", or "replicate".
	Op string `json:"op"`

	// Source names the daemon that recorded the transfer ("client",
	// "worker:<id>"), since every hop of a pipeline records its own
	// view.
	Source string `json:"source"`

	// Block is the block ID transferred.
	Block uint64 `json:"block"`

	// Tier is the storage tier served or stored on, where the
	// recording side knows it (client-side records leave it empty).
	Tier string `json:"tier,omitempty"`

	// Peer is the remote address dialled, for client-originated
	// transfers and pipeline forwards.
	Peer string `json:"peer,omitempty"`

	// TraceID is the request ID of the client operation, joining the
	// record to the span timeline served by `octopus-cli trace`.
	TraceID string `json:"trace_id,omitempty"`

	// SpanID is the span recorded for this transfer leg, when one was
	// started.
	SpanID string `json:"span_id,omitempty"`

	// Result is "ok" on success, the error text otherwise.
	Result string `json:"result"`

	// Bytes is the block content transferred by this leg.
	Bytes int64 `json:"bytes"`

	// Phase breakdown. DialNs is TCP connect time (client side, or a
	// pipeline stage dialling downstream). HeaderEncodeNs and
	// HeaderDecodeNs are the gob control-frame costs: encoding+sending
	// the opener's header, and decoding the peer's frame (which, on
	// the opener side, includes the peer's pre-response work such as
	// the checksum scrub before a read). ThrottleWaitNs is time the
	// emulated media pacing held this stream. DiskNs is media device
	// time on the critical path. NetNs is time blocked on the data
	// socket. ForwardNs is time feeding the downstream pipeline stage.
	// AckWaitNs is time waiting for the (downstream or pipeline) ack.
	// StallNs is reader-side prefetch stall: time the consumer waited
	// for a readahead open that had not finished. TotalNs is the
	// transfer's wall time and is >= the sum of the phases.
	DialNs         int64 `json:"dial_ns"`
	HeaderEncodeNs int64 `json:"header_encode_ns"`
	HeaderDecodeNs int64 `json:"header_decode_ns"`
	ThrottleWaitNs int64 `json:"throttle_wait_ns"`
	DiskNs         int64 `json:"disk_ns"`
	NetNs          int64 `json:"net_ns"`
	ForwardNs      int64 `json:"forward_ns"`
	AckWaitNs      int64 `json:"ack_wait_ns"`
	StallNs        int64 `json:"stall_ns"`
	TotalNs        int64 `json:"total_ns"`

	// AllocBytes counts the transfer-local buffer bytes freshly
	// allocated for this leg (packet reader/writer buffers, frame
	// scratch, copy buffers); buffers reused from the pools count
	// zero, so steady state reads 0.
	AllocBytes int64 `json:"alloc_bytes"`

	// PoolHit reports that the leg's outbound connection was reused
	// from the data-connection pool instead of freshly dialled.
	PoolHit bool `json:"pool_hit,omitempty"`
}

// PhaseSumNs returns the sum of the record's phase fields, the
// quantity the recorder keeps <= TotalNs.
func (r Record) PhaseSumNs() int64 {
	return r.DialNs + r.HeaderEncodeNs + r.HeaderDecodeNs + r.ThrottleWaitNs +
		r.DiskNs + r.NetNs + r.ForwardNs + r.AckWaitNs + r.StallNs
}

// Log is the bounded transfer stream. A nil *Log is valid and
// discards everything, so callers never nil-check the append path.
type Log struct {
	ch      chan Record
	dropped atomic.Uint64

	mu      sync.Mutex
	buf     []Record // ring storage, len == capacity
	start   int      // index of the oldest retained record
	n       int      // retained records
	nextSeq uint64   // next sequence number to assign (first record gets 1)
	evicted uint64   // records overwritten in the ring (oldest-first)
	counts  map[string]uint64
}

// New builds a log retaining up to capacity records (<= 0 selects
// DefaultCapacity).
func New(capacity int) *Log {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Log{
		ch:      make(chan Record, backlog),
		buf:     make([]Record, capacity),
		nextSeq: 1,
		counts:  make(map[string]uint64),
	}
}

// Append records one transfer. It never blocks: the record goes onto
// the backlog channel if there is room and is otherwise dropped and
// counted. Time is stamped here (completion time) unless the producer
// already set it; Seq is assigned when the backlog is drained into
// the ring, preserving channel FIFO order. Nil logs discard.
func (l *Log) Append(r Record) {
	if l == nil {
		return
	}
	if r.Time == 0 {
		r.Time = time.Now().UnixNano()
	}
	select {
	case l.ch <- r:
	default:
		l.dropped.Add(1)
	}
}

// drainLocked moves backlogged records into the ring. Callers hold
// l.mu.
func (l *Log) drainLocked() {
	for {
		select {
		case r := <-l.ch:
			r.Seq = l.nextSeq
			l.nextSeq++
			l.counts[r.Op]++
			if l.n == len(l.buf) {
				l.buf[l.start] = r
				l.start = (l.start + 1) % len(l.buf)
				l.evicted++
			} else {
				l.buf[(l.start+l.n)%len(l.buf)] = r
				l.n++
			}
		default:
			return
		}
	}
}

// Page is one Since result, with the same exactly-once cursor
// semantics as the audit log's page: Next advances over op-filtered
// records too, and Missed surfaces eviction gaps.
type Page struct {
	// Entries are the matching records, oldest first.
	Entries []Record `json:"entries"`

	// Next is the cursor for the following Since call: the highest
	// sequence number examined, or the request's since value when
	// nothing new exists.
	Next uint64 `json:"next"`

	// Missed counts records with Seq > since evicted from the ring
	// before this call.
	Missed uint64 `json:"missed"`

	// Evicted is the lifetime ring-eviction total.
	Evicted uint64 `json:"evicted"`

	// Dropped is the lifetime count of records discarded because the
	// producer backlog was full — load shedding, distinct from ring
	// eviction.
	Dropped uint64 `json:"dropped"`
}

// Since returns retained records with Seq > since, oldest first,
// optionally filtered by op, capped at limit (<= 0 means no cap).
func (l *Log) Since(since uint64, op string, limit int) Page {
	if l == nil {
		return Page{Next: since}
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.drainLocked()
	page := Page{Next: since, Evicted: l.evicted, Dropped: l.dropped.Load()}
	if l.evicted > since {
		page.Missed = l.evicted - since
		page.Next = l.evicted
	}
	for i := 0; i < l.n; i++ {
		r := l.buf[(l.start+i)%len(l.buf)]
		if r.Seq <= since {
			continue
		}
		if limit > 0 && len(page.Entries) >= limit {
			break
		}
		page.Next = r.Seq
		if op != "" && r.Op != op {
			continue
		}
		page.Entries = append(page.Entries, r)
	}
	return page
}

// Counts returns a copy of the per-op lifetime totals for records
// that reached the ring.
func (l *Log) Counts() map[string]uint64 {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.drainLocked()
	out := make(map[string]uint64, len(l.counts))
	for k, v := range l.counts {
		out[k] = v
	}
	return out
}

// Dropped returns how many records were shed because the producer
// backlog was full.
func (l *Log) Dropped() uint64 {
	if l == nil {
		return 0
	}
	return l.dropped.Load()
}

// Len returns the number of retained records (after draining the
// backlog).
func (l *Log) Len() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.drainLocked()
	return l.n
}

// Cap returns the configured ring capacity.
func (l *Log) Cap() int {
	if l == nil {
		return 0
	}
	return len(l.buf)
}
