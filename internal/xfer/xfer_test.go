package xfer

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func appendN(l *Log, n int, op string) {
	for i := 0; i < n; i++ {
		l.Append(Record{Op: op, Block: uint64(i), Result: "ok", TotalNs: 1})
	}
}

func TestAppendSinceCursor(t *testing.T) {
	l := New(16)
	appendN(l, 5, "read")
	page := l.Since(0, "", 0)
	if len(page.Entries) != 5 {
		t.Fatalf("entries = %d, want 5", len(page.Entries))
	}
	for i, r := range page.Entries {
		if r.Seq != uint64(i+1) {
			t.Fatalf("record %d seq = %d, want %d", i, r.Seq, i+1)
		}
		if r.Time == 0 {
			t.Fatalf("record %d has zero time", i)
		}
	}
	if page.Next != 5 {
		t.Fatalf("next = %d, want 5", page.Next)
	}
	// Polling from the cursor returns nothing and leaves it in place.
	page = l.Since(page.Next, "", 0)
	if len(page.Entries) != 0 || page.Next != 5 {
		t.Fatalf("empty poll: entries=%d next=%d", len(page.Entries), page.Next)
	}
	appendN(l, 2, "write")
	page = l.Since(5, "", 0)
	if len(page.Entries) != 2 || page.Entries[0].Seq != 6 || page.Next != 7 {
		t.Fatalf("resume: entries=%d next=%d", len(page.Entries), page.Next)
	}
}

func TestOpFilterAdvancesCursor(t *testing.T) {
	l := New(32)
	l.Append(Record{Op: "read", Block: 1, Result: "ok"})
	l.Append(Record{Op: "write", Block: 2, Result: "ok"})
	l.Append(Record{Op: "read", Block: 3, Result: "ok"})
	page := l.Since(0, "read", 0)
	if len(page.Entries) != 2 {
		t.Fatalf("filtered entries = %d, want 2", len(page.Entries))
	}
	// The filtered-out "write" record (seq 2) must still advance Next
	// so a read-only poller does not re-examine it.
	if page.Next != 3 {
		t.Fatalf("next = %d, want 3", page.Next)
	}
	if page.Entries[0].Block != 1 || page.Entries[1].Block != 3 {
		t.Fatalf("unexpected blocks %d %d", page.Entries[0].Block, page.Entries[1].Block)
	}
}

func TestLimitCapsPage(t *testing.T) {
	l := New(64)
	appendN(l, 10, "read")
	page := l.Since(0, "", 3)
	if len(page.Entries) != 3 || page.Next != 3 {
		t.Fatalf("limited page: entries=%d next=%d", len(page.Entries), page.Next)
	}
	page = l.Since(page.Next, "", 3)
	if len(page.Entries) != 3 || page.Entries[0].Seq != 4 {
		t.Fatalf("second page: entries=%d firstSeq=%d", len(page.Entries), page.Entries[0].Seq)
	}
}

func TestEvictionReportsMissed(t *testing.T) {
	l := New(4)
	appendN(l, 10, "replicate") // seqs 1..10; ring keeps 7..10, evicted 6
	page := l.Since(0, "", 0)
	if page.Missed != 6 {
		t.Fatalf("missed = %d, want 6", page.Missed)
	}
	if page.Evicted != 6 {
		t.Fatalf("evicted = %d, want 6", page.Evicted)
	}
	if len(page.Entries) != 4 || page.Entries[0].Seq != 7 {
		t.Fatalf("retained: entries=%d firstSeq=%d", len(page.Entries), page.Entries[0].Seq)
	}
	// A cursor past the hole reports no further loss.
	page = l.Since(page.Next, "", 0)
	if page.Missed != 0 {
		t.Fatalf("post-hole missed = %d, want 0", page.Missed)
	}
}

func TestBacklogOverflowDropsAndCounts(t *testing.T) {
	l := New(16)
	// Never draining (no Since call), so everything past the channel
	// backlog must be shed.
	total := backlog + 100
	appendN(l, total, "read")
	if got := l.Dropped(); got != 100 {
		t.Fatalf("dropped = %d, want 100", got)
	}
	// The backlog itself survives and drains in FIFO order.
	page := l.Since(0, "", 0)
	if page.Dropped != 100 {
		t.Fatalf("page dropped = %d, want 100", page.Dropped)
	}
	if page.Next != uint64(backlog) {
		t.Fatalf("next = %d, want %d", page.Next, backlog)
	}
	if last := page.Entries[len(page.Entries)-1]; last.Block != uint64(backlog-1) {
		t.Fatalf("last retained block = %d", last.Block)
	}
}

func TestCountsLifetime(t *testing.T) {
	l := New(4)
	appendN(l, 6, "read")
	appendN(l, 3, "write")
	counts := l.Counts()
	if counts["read"] != 6 || counts["write"] != 3 {
		t.Fatalf("counts = %v", counts)
	}
}

func TestPhaseSum(t *testing.T) {
	r := Record{
		DialNs: 1, HeaderEncodeNs: 2, HeaderDecodeNs: 3, ThrottleWaitNs: 4,
		DiskNs: 5, NetNs: 6, ForwardNs: 7, AckWaitNs: 8, StallNs: 9,
	}
	if got := r.PhaseSumNs(); got != 45 {
		t.Fatalf("phase sum = %d, want 45", got)
	}
}

func TestNilLogSafe(t *testing.T) {
	var l *Log
	l.Append(Record{Op: "read"})
	if page := l.Since(0, "", 0); len(page.Entries) != 0 {
		t.Fatal("nil log returned records")
	}
	if l.Dropped() != 0 || l.Len() != 0 || l.Cap() != 0 || l.Counts() != nil {
		t.Fatal("nil log accessors not zero")
	}
}

func TestConcurrentAppendAndPoll(t *testing.T) {
	l := New(128)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				l.Append(Record{Op: "read", Block: uint64(g*1000 + i), Result: "ok"})
				if i%50 == 0 {
					l.Since(0, "", 10)
				}
			}
		}(g)
	}
	wg.Wait()
	total := l.Dropped()
	for _, c := range l.Counts() {
		total += c
	}
	if total != 8*500 {
		t.Fatalf("accounted records = %d, want %d", total, 8*500)
	}
}

func TestDebugHandler(t *testing.T) {
	l := New(16)
	appendN(l, 4, "read")
	l.Append(Record{Op: "write", Block: 42, Tier: "SSD", Result: "ok"})
	mux := http.NewServeMux()
	RegisterDebugHandler(mux, l, func() any {
		return map[string]uint64{"dials": 7}
	})

	get := func(url string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		req := httptest.NewRequest("GET", url, nil)
		mux.ServeHTTP(rec, req)
		return rec
	}

	rec := get("/debug/transfers?op=write")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	body := rec.Body.String()
	if !strings.Contains(body, `"tier": "SSD"`) || strings.Contains(body, `"op": "read"`) {
		t.Fatalf("filtered body = %s", body)
	}
	if !strings.Contains(body, `"counts"`) || !strings.Contains(body, `"next": 5`) {
		t.Fatalf("missing cursor/counts: %s", body)
	}
	if !strings.Contains(body, `"dials": 7`) {
		t.Fatalf("missing conns snapshot: %s", body)
	}

	if rec := get("/debug/transfers?since=bogus"); rec.Code != http.StatusBadRequest {
		t.Fatalf("bad since: status = %d", rec.Code)
	}
	if rec := get("/debug/transfers?limit=bogus"); rec.Code != http.StatusBadRequest {
		t.Fatalf("bad limit: status = %d", rec.Code)
	}

	// The conns hook is optional; nil must serve fine and omit the key.
	mux2 := http.NewServeMux()
	RegisterDebugHandler(mux2, l, nil)
	rec2 := httptest.NewRecorder()
	mux2.ServeHTTP(rec2, httptest.NewRequest("GET", "/debug/transfers", nil))
	if rec2.Code != http.StatusOK || strings.Contains(rec2.Body.String(), `"conns"`) {
		t.Fatalf("nil conns hook: status=%d body=%s", rec2.Code, rec2.Body.String())
	}
}
