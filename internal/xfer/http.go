package xfer

import (
	"net/http"

	"repro/internal/httpjson"
)

// debugResponse is the /debug/transfers JSON document: one cursor
// page, the per-op lifetime counters, and (when the daemon supplies
// one) a connection-lifecycle snapshot quantifying dials, handshakes,
// open data conns, and bytes per conn.
type debugResponse struct {
	Page
	Counts map[string]uint64 `json:"counts"`
	Conns  any               `json:"conns,omitempty"`
}

// RegisterDebugHandler mounts the log on mux at /debug/transfers.
// Query parameters mirror /debug/audit: ?since=<seq> resumes a cursor
// (default 0 = from the oldest retained record), ?op=<op> filters by
// transfer kind, and ?limit=<n> caps the page size (default 1000).
// conns, when non-nil, is called per request to attach the daemon's
// connection-lifecycle counters to the response.
func RegisterDebugHandler(mux *http.ServeMux, l *Log, conns func() any) {
	mux.HandleFunc("/debug/transfers", func(w http.ResponseWriter, r *http.Request) {
		since, ok := httpjson.Uint64Param(w, r, "since", 0)
		if !ok {
			return
		}
		limit, ok := httpjson.IntParam(w, r, "limit", 1000)
		if !ok {
			return
		}
		page := l.Since(since, r.URL.Query().Get("op"), limit)
		if page.Entries == nil {
			page.Entries = []Record{}
		}
		resp := debugResponse{Page: page, Counts: l.Counts()}
		if conns != nil {
			resp.Conns = conns()
		}
		httpjson.Write(w, resp)
	})
}
