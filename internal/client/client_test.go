package client

import (
	"io"
	"testing"

	"repro/internal/core"
)

func TestFederationValidation(t *testing.T) {
	if _, err := NewFederation(nil); err == nil {
		t.Error("empty federation accepted")
	}
	if _, err := NewFederation(map[string]string{"relative": "addr"}); err == nil {
		t.Error("relative mount prefix accepted")
	}
	// Unreachable master: Dial must fail and the error propagate.
	if _, err := NewFederation(map[string]string{"/": "127.0.0.1:1"}); err == nil {
		t.Error("unreachable mount accepted")
	}
}

func TestFederationResolveLongestPrefix(t *testing.T) {
	// Construct a federation without dialling by building the struct
	// directly (same package).
	a, b, root := &FileSystem{}, &FileSystem{}, &FileSystem{}
	f := &Federation{mounts: []mount{
		{prefix: "/data/hot", fs: a},
		{prefix: "/data", fs: b},
		{prefix: "", fs: root}, // "/" normalises to ""
	}}
	tests := []struct {
		path string
		want *FileSystem
	}{
		{"/data/hot/x", a},
		{"/data/hot", a},
		{"/data/warm/y", b},
		{"/data", b},
		{"/other", root},
		{"/datafoo", root}, // no partial-segment match
	}
	for _, tt := range tests {
		got, err := f.Resolve(tt.path)
		if err != nil {
			t.Errorf("Resolve(%q): %v", tt.path, err)
			continue
		}
		if got != tt.want {
			t.Errorf("Resolve(%q) picked the wrong mount", tt.path)
		}
	}
	// Without a root mount, uncovered paths error.
	f2 := &Federation{mounts: []mount{{prefix: "/data", fs: a}}}
	if _, err := f2.Resolve("/other"); err == nil {
		t.Error("uncovered path resolved")
	}
}

func TestReaderBlockAt(t *testing.T) {
	r := &Reader{
		length: 300,
		blocks: []core.LocatedBlock{
			{Block: core.Block{ID: 1, NumBytes: 100}, Offset: 0},
			{Block: core.Block{ID: 2, NumBytes: 100}, Offset: 100},
			{Block: core.Block{ID: 3, NumBytes: 100}, Offset: 200},
		},
	}
	tests := []struct {
		offset int64
		want   core.BlockID
		none   bool
	}{
		{0, 1, false},
		{99, 1, false},
		{100, 2, false},
		{250, 3, false},
		{299, 3, false},
		{300, 0, true},
		{1000, 0, true},
	}
	for _, tt := range tests {
		got, idx := r.blockAt(tt.offset)
		if tt.none {
			if got != nil {
				t.Errorf("blockAt(%d) = %v, want nil", tt.offset, got.Block.ID)
			}
			if idx != -1 {
				t.Errorf("blockAt(%d) idx = %d, want -1", tt.offset, idx)
			}
			continue
		}
		if got == nil || got.Block.ID != tt.want {
			t.Errorf("blockAt(%d) = %v, want %v", tt.offset, got, tt.want)
		}
		if got != nil && idx != int(tt.want)-1 {
			t.Errorf("blockAt(%d) idx = %d, want %d", tt.offset, idx, int(tt.want)-1)
		}
	}
}

func TestReaderSeekValidation(t *testing.T) {
	r := &Reader{length: 100}
	if _, err := r.Seek(-1, io.SeekStart); err == nil {
		t.Error("negative seek accepted")
	}
	if _, err := r.Seek(0, 99); err == nil {
		t.Error("bad whence accepted")
	}
	pos, err := r.Seek(-10, io.SeekEnd)
	if err != nil || pos != 90 {
		t.Errorf("SeekEnd(-10) = %d, %v", pos, err)
	}
	pos, err = r.Seek(5, io.SeekCurrent)
	if err != nil || pos != 95 {
		t.Errorf("SeekCurrent(5) = %d, %v", pos, err)
	}
}

func TestReaderClosedRead(t *testing.T) {
	r := &Reader{length: 10}
	r.Close()
	if _, err := r.Read(make([]byte, 4)); err != core.ErrFileClosed {
		t.Errorf("read after close err = %v", err)
	}
	if err := r.Close(); err != nil {
		t.Errorf("double close err = %v", err)
	}
}

func TestWriterAfterCloseAndAbort(t *testing.T) {
	w := &Writer{closed: true}
	if _, err := w.Write([]byte("x")); err != core.ErrFileClosed {
		t.Errorf("write after close err = %v", err)
	}
	if err := w.Abort(); err != core.ErrFileClosed {
		t.Errorf("abort after close err = %v", err)
	}
	// Close on an already-closed writer is a no-op.
	if err := w.Close(); err != nil {
		t.Errorf("double close err = %v", err)
	}
}
