package client

import (
	"log/slog"
	"strings"
	"time"

	"repro/internal/metrics"
	"repro/internal/rpc"
)

// clientMetrics bundles the client's instruments under one registry,
// exposed via FileSystem.Metrics() as octopus_client_* families.
type clientMetrics struct {
	reg *metrics.Registry

	rpcs    *metrics.CounterVec   // octopus_client_rpcs_total{method}
	rpcErrs *metrics.CounterVec   // octopus_client_rpc_errors_total{method}
	rpcDur  *metrics.HistogramVec // octopus_client_rpc_duration_seconds{method}

	readBytes      *metrics.CounterVec // octopus_client_read_bytes_total{tier,source}
	writeBytes     *metrics.Counter    // octopus_client_write_bytes_total
	failovers      *metrics.Counter    // octopus_client_read_failovers_total
	badReports     *metrics.Counter    // octopus_client_bad_block_reports_total
	retries        *metrics.Counter    // octopus_client_block_retries_total
	readaheadOpens *metrics.Counter    // octopus_client_readahead_opens_total
	writeStalls    *metrics.Counter    // octopus_client_write_window_stalls_total

	slow *metrics.SlowLogger
}

func newClientMetrics(logger *slog.Logger, slowOp time.Duration) *clientMetrics {
	reg := metrics.NewRegistry()
	return &clientMetrics{
		reg:     reg,
		rpcs:    reg.CounterVec("octopus_client_rpcs_total", "Master RPCs issued, by method.", "method"),
		rpcErrs: reg.CounterVec("octopus_client_rpc_errors_total", "Master RPCs that failed, by method.", "method"),
		rpcDur: reg.HistogramVec("octopus_client_rpc_duration_seconds",
			"Master RPC latency in seconds, by method.", metrics.DefLatencyBuckets, "method"),
		readBytes: reg.CounterVec("octopus_client_read_bytes_total",
			"Block bytes read, by storage tier and local/remote source.", "tier", "source"),
		writeBytes: reg.Counter("octopus_client_write_bytes_total", "Block bytes written into pipelines.", nil),
		failovers:  reg.Counter("octopus_client_read_failovers_total", "Reads that failed over to another replica.", nil),
		badReports: reg.Counter("octopus_client_bad_block_reports_total", "Corrupt or missing replicas reported to the master.", nil),
		retries:    reg.Counter("octopus_client_block_retries_total", "Blocks retried on a fresh pipeline.", nil),
		readaheadOpens: reg.Counter("octopus_client_readahead_opens_total",
			"Replica streams opened by background block readahead.", nil),
		writeStalls: reg.Counter("octopus_client_write_window_stalls_total",
			"Writes that blocked on a pipeline ack because the write window was full.", nil),
		slow: metrics.NewSlowLogger(logger, slowOp,
			reg.Counter("octopus_client_slow_ops_total", "RPCs slower than the slow-op threshold.", nil)),
	}
}

// Metrics returns the client's metric registry for exposition.
func (fs *FileSystem) Metrics() *metrics.Registry { return fs.metrics.reg }

// DataPathStats is a point-in-time snapshot of the client's
// cumulative data-path counters, for tests and tooling that assert on
// failover and retry behaviour.
type DataPathStats struct {
	WriteBytes     float64 // bytes accepted into write pipelines (retries not re-counted)
	Failovers      float64 // reads that switched to another replica
	Retries        float64 // blocks retried on a fresh pipeline
	BadReports     float64 // corrupt/missing replicas reported to the master
	ReadaheadOpens float64 // replica streams opened by block readahead
	WriteStalls    float64 // writes that blocked on a full write window
}

// DataPathStats snapshots the data-path counters.
func (fs *FileSystem) DataPathStats() DataPathStats {
	return DataPathStats{
		WriteBytes:     fs.metrics.writeBytes.Value(),
		Failovers:      fs.metrics.failovers.Value(),
		Retries:        fs.metrics.retries.Value(),
		BadReports:     fs.metrics.badReports.Value(),
		ReadaheadOpens: fs.metrics.readaheadOpens.Value(),
		WriteStalls:    fs.metrics.writeStalls.Value(),
	}
}

// callReq invokes a master RPC under the given request ID: the ID is
// stamped into the args header (so master logs and error strings carry
// it) and the call is counted, timed, and slow-logged.
func (fs *FileSystem) callReq(reqID, method string, args, reply any) error {
	if id, ok := args.(rpc.Identified); ok && id.RequestID() == "" {
		id.SetRequestID(reqID)
	}
	op := strings.TrimPrefix(method, "Master.")
	start := time.Now()
	err := fs.rawCall(method, args, reply)
	d := time.Since(start)
	fs.metrics.rpcs.With(op).Inc()
	fs.metrics.rpcDur.With(op).Observe(d.Seconds())
	if err != nil {
		fs.metrics.rpcErrs.With(op).Inc()
	}
	fs.metrics.slow.Observe(op, reqID, d)
	return err
}
