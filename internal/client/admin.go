package client

import (
	"repro/internal/audit"
	"repro/internal/core"
	"repro/internal/events"
	"repro/internal/rpc"
)

// This file holds the administrative/observability client surface:
// the cluster event journal, the telemetry history, placement
// explanations, and worker decommissioning. octopus-cli builds its
// events/top/explain/health/decommission subcommands on it.

// Events fetches one page of the cluster event journal. since is an
// exclusive sequence cursor (0 = oldest retained); polling with
// since = page.Next is exactly-once over retained events. typ filters
// by event type ("" = all); limit caps the page (<= 0 = server
// default). The second result carries the per-type lifetime counters.
func (fs *FileSystem) Events(since uint64, typ string, limit int) (events.Page, map[string]uint64, error) {
	var reply rpc.GetEventsReply
	err := fs.call("Master.GetEvents", &rpc.GetEventsArgs{
		Since: since, Type: typ, Limit: limit,
	}, &reply)
	return reply.Page, reply.Counts, err
}

// Audit fetches one page of the master's namespace audit log: one
// entry per namespace RPC with its result and per-phase latency
// breakdown. Cursor semantics match Events (since is exclusive,
// poll with since = page.Next); op filters by operation name ("" =
// all); limit caps the page (<= 0 = no cap). The second result
// carries the per-op lifetime counters.
func (fs *FileSystem) Audit(since uint64, op string, limit int) (audit.Page, map[string]uint64, error) {
	var reply rpc.GetAuditReply
	err := fs.call("Master.GetAudit", &rpc.GetAuditArgs{
		Since: since, Op: op, Limit: limit,
	}, &reply)
	return reply.Page, reply.Counts, err
}

// Transfers fetches one page of the cluster's transfer flight
// recorders: the master's own log (which holds client-reported
// records) plus every live worker's, one TransferSource per daemon.
// Cursor semantics match Audit per source — each daemon assigns its
// own sequence numbers, so poll each source with since = its Page.Next.
// op filters by transfer kind ("" = all); limit caps each source's
// page (<= 0 = server default).
func (fs *FileSystem) Transfers(since uint64, op string, limit int) ([]rpc.TransferSource, error) {
	var reply rpc.GetTransfersReply
	err := fs.call("Master.GetTransfers", &rpc.GetTransfersArgs{
		Since: since, Op: op, Limit: limit,
	}, &reply)
	return reply.Sources, err
}

// ClusterHistory fetches the master's sampled telemetry history,
// oldest first, always ending with a fresh live sample. last trims to
// the trailing n samples (<= 0 = all retained).
func (fs *FileSystem) ClusterHistory(last int) ([]rpc.ClusterSample, error) {
	var reply rpc.GetClusterHistoryReply
	err := fs.call("Master.GetClusterHistory", &rpc.GetClusterHistoryArgs{Last: last}, &reply)
	return reply.Samples, err
}

// Explain fetches the retained placement decisions for a file: for
// every replica of every block, the winning (worker, tier) with its
// four-objective score vector plus the rejected candidates' scores.
func (fs *FileSystem) Explain(path string) (rpc.ExplainReply, error) {
	var reply rpc.ExplainReply
	err := fs.call("Master.Explain", &rpc.ExplainArgs{Path: path}, &reply)
	return reply, err
}

// Decommission removes a worker from service: its replicas are
// re-replicated elsewhere and the worker may not re-register.
func (fs *FileSystem) Decommission(id core.WorkerID) error {
	return fs.call("Master.Decommission", &rpc.DecommissionArgs{ID: id}, &rpc.DecommissionReply{})
}

// Heat fetches the cluster access-heat report: the hottest files and
// blocks (decayed read/write counters) plus the tier-fitness report
// of misplaced blocks. top caps each list (<= 0 = server default);
// file restricts the block list to one file's blocks ("" = all);
// misplacedOnly omits the rankings and returns only the fitness
// report.
func (fs *FileSystem) Heat(top int, file string, misplacedOnly bool) (rpc.HeatReport, error) {
	var reply rpc.GetHeatReply
	err := fs.call("Master.GetHeat", &rpc.GetHeatArgs{
		Top: top, File: file, Misplaced: misplacedOnly,
	}, &reply)
	return reply.Report, err
}

// Mover returns the background tier mover's status: governors,
// in-flight moves, recently finished moves, and counters.
func (fs *FileSystem) Mover() (rpc.MoverStatus, error) {
	var reply rpc.GetMoverReply
	err := fs.call("Master.GetMover", &rpc.GetMoverArgs{}, &reply)
	return reply.Status, err
}

// ClusterReport returns the full worker-reports reply, including each
// worker's debug HTTP endpoint and the master's own, so admin tools
// can fan out health checks without extra configuration.
func (fs *FileSystem) ClusterReport() (rpc.WorkerReportsReply, error) {
	var reply rpc.WorkerReportsReply
	err := fs.call("Master.GetWorkerReports", &rpc.WorkerReportsArgs{}, &reply)
	return reply, err
}
