package client

import (
	"strings"

	"repro/internal/rpc"
	"repro/internal/trace"
	"repro/internal/xfer"
)

// callTraced invokes a master RPC as a child span of parent. The span
// ID travels in the request header so the master's handler span links
// under it, and the client-observed latency (queueing, network, and
// server time together) is recorded as "client.rpc.<Method>".
func (fs *FileSystem) callTraced(parent *trace.ActiveSpan, reqID, method string, args, reply any) error {
	sp := fs.tracer.Start(reqID, parent.ID(), "client.rpc."+strings.TrimPrefix(method, "Master."))
	if t, ok := args.(rpc.Traced); ok {
		t.SetParentSpan(sp.ID())
	}
	err := fs.callReq(reqID, method, args, reply)
	sp.SetError(err)
	sp.End()
	return err
}

// Trace fetches the cluster-assembled span timeline for one request
// ID: the master merges its own store with every live worker's and
// with any client spans previously shipped via reportSpans.
func (fs *FileSystem) Trace(reqID string) ([]trace.Span, error) {
	var reply rpc.GetTraceReply
	err := fs.call("Master.GetTrace", &rpc.GetTraceArgs{TraceID: reqID}, &reply)
	return reply.Spans, err
}

// reportSpans ships the client's spans for one finished trace to the
// master so cross-hop assembly includes the client side. Best-effort:
// a failure only costs observability, never the operation. Spans still
// open when this runs (e.g. a readahead open cancelled at Close) miss
// the shipment but stay in the local store.
func (fs *FileSystem) reportSpans(traceID string) {
	if fs == nil || fs.traces == nil {
		return // bare handles (tests) trace nothing
	}
	spans := fs.traces.Get(traceID)
	if len(spans) == 0 {
		return
	}
	fs.call("Master.ReportSpans", &rpc.ReportSpansArgs{Spans: spans}, &rpc.ReportSpansReply{})
}

// TransferLog exposes the client's transfer flight recorder (for
// octopus-bench and tests).
func (fs *FileSystem) TransferLog() *xfer.Log { return fs.xfers }

// reportTransfers ships not-yet-reported flight-recorder entries to
// the master, which folds them into its own transfer log so
// Master.GetTransfers serves the client-side phase breakdowns after
// the client has exited. Best-effort, like reportSpans: on failure
// the cursor stays put and the next shipment retries.
func (fs *FileSystem) reportTransfers() {
	if fs == nil || fs.xfers == nil {
		return
	}
	fs.shipMu.Lock()
	defer fs.shipMu.Unlock()
	for {
		page := fs.xfers.Since(fs.shipCursor, "", 256)
		if len(page.Entries) == 0 {
			return
		}
		err := fs.call("Master.ReportTransfers",
			&rpc.ReportTransfersArgs{Records: page.Entries}, &rpc.ReportTransfersReply{})
		if err != nil {
			return
		}
		fs.shipCursor = page.Next
	}
}
