// Package client implements the OctopusFS Client (paper §2.3): the
// file system API applications use to create, write, read, and manage
// files, including the tiered-storage extensions of paper Table 1 —
// replication vectors on create/setReplication, tier-annotated block
// locations, and per-tier storage reports.
package client

import (
	"fmt"
	"log/slog"
	netrpc "net/rpc"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/rpc"
	"repro/internal/trace"
	"repro/internal/xfer"
)

// Option customises a FileSystem handle.
type Option func(*FileSystem)

// WithNode declares the topology node this client runs on, enabling
// locality-aware placement and retrieval. Off-cluster clients omit it.
func WithNode(node string) Option {
	return func(fs *FileSystem) { fs.node = node }
}

// WithOwner sets the owner recorded on created files and directories.
func WithOwner(owner string) Option {
	return func(fs *FileSystem) { fs.owner = owner }
}

// WithLogger directs the client's slow-op log lines to logger.
func WithLogger(logger *slog.Logger) Option {
	return func(fs *FileSystem) { fs.logger = logger }
}

// WithSlowOpThreshold sets the latency above which a master RPC is
// logged as slow with its request ID. Zero logs every RPC; negative
// disables slow-op logging.
func WithSlowOpThreshold(d time.Duration) Option {
	return func(fs *FileSystem) { fs.slowOp = d }
}

// WithReadahead sets the default number of blocks a Reader prefetches
// ahead of the consumed position (0, the default, disables
// readahead). Each prefetched block holds one open replica stream.
func WithReadahead(k int) Option {
	return func(fs *FileSystem) {
		if k < 0 {
			k = 0
		}
		fs.readahead = k
	}
}

// WithWriteWindow sets the default number of flushed blocks whose
// pipeline acks may still be outstanding while a Writer streams later
// blocks (0, the default, waits for every ack synchronously). Each
// outstanding block keeps its bytes buffered for retry, so memory use
// grows by window × block size.
func WithWriteWindow(k int) Option {
	return func(fs *FileSystem) {
		if k < 0 {
			k = 0
		}
		fs.writeWindow = k
	}
}

// FileSystem is a client handle to an OctopusFS master.
type FileSystem struct {
	addr        string
	node        string
	owner       string
	logger      *slog.Logger
	slowOp      time.Duration
	readahead   int
	writeWindow int

	metrics *clientMetrics
	traces  *trace.Store
	tracer  *trace.Tracer
	xfers   *xfer.Log

	shipMu     sync.Mutex
	shipCursor uint64 // flight-recorder seq already shipped to the master

	mu   sync.Mutex
	conn *netrpc.Client
}

// Dial connects to the master at addr.
func Dial(addr string, opts ...Option) (*FileSystem, error) {
	fs := &FileSystem{addr: addr, owner: "anonymous"}
	for _, opt := range opts {
		opt(fs)
	}
	if fs.logger == nil {
		fs.logger = slog.New(slog.DiscardHandler)
	}
	fs.metrics = newClientMetrics(fs.logger, fs.slowOp)
	// The client keeps every span of its own in-flight operations
	// (sample 1): traces are short-lived here and shipped to the master
	// when the operation finishes, so the small store is the only cost.
	fs.traces = trace.NewStore(256, fs.slowOp, 1)
	fs.tracer = trace.NewTracer("client", fs.traces)
	// Client-side transfer records are shipped to the master as
	// operations finish, so the ring only needs to cover in-flight work.
	fs.xfers = xfer.New(1024)
	if err := fs.reconnect(); err != nil {
		return nil, err
	}
	return fs, nil
}

func (fs *FileSystem) reconnect() error {
	c, err := netrpc.Dial("tcp", fs.addr)
	if err != nil {
		return fmt.Errorf("client: dialling master %s: %w", fs.addr, err)
	}
	fs.mu.Lock()
	if fs.conn != nil {
		fs.conn.Close()
	}
	fs.conn = c
	fs.mu.Unlock()
	return nil
}

// call invokes a master RPC under a fresh request ID. Multi-step
// operations (Open/Create flows) use callReq instead so all their RPCs
// and data transfers share one ID.
func (fs *FileSystem) call(method string, args, reply any) error {
	return fs.callReq(rpc.NewRequestID(), method, args, reply)
}

// rawCall invokes a master RPC, reconnecting once on connection failure.
func (fs *FileSystem) rawCall(method string, args, reply any) error {
	fs.mu.Lock()
	c := fs.conn
	fs.mu.Unlock()
	if c == nil {
		if err := fs.reconnect(); err != nil {
			return err
		}
		fs.mu.Lock()
		c = fs.conn
		fs.mu.Unlock()
	}
	err := c.Call(method, args, reply)
	if isTransportErr(err) {
		if rerr := fs.reconnect(); rerr == nil {
			fs.mu.Lock()
			c = fs.conn
			fs.mu.Unlock()
			err = c.Call(method, args, reply)
		}
	}
	return rpc.WrapRemote(err)
}

// isTransportErr reports whether an RPC failure came from the
// connection rather than the server (net/rpc wraps server-side errors
// in rpc.ServerError), in which case a reconnect and single retry is
// safe for our idempotent-or-reported operations.
func isTransportErr(err error) bool {
	if err == nil {
		return false
	}
	_, isServer := err.(netrpc.ServerError)
	return !isServer
}

// Close releases the client connection.
func (fs *FileSystem) Close() error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.conn != nil {
		err := fs.conn.Close()
		fs.conn = nil
		return err
	}
	return nil
}

// Node returns the client's declared topology node ("" off-cluster).
func (fs *FileSystem) Node() string { return fs.node }

// Mkdir creates a directory; parents=true behaves like mkdir -p.
func (fs *FileSystem) Mkdir(path string, parents bool) error {
	return fs.call("Master.Mkdir", &rpc.MkdirArgs{Path: path, Parents: parents, Owner: fs.owner}, &rpc.MkdirReply{})
}

// CreateOptions tunes file creation.
type CreateOptions struct {
	// RepVector is the per-tier replica request (paper Table 1). The
	// zero value defaults to ⟨0,0,0,0,3⟩, the HDFS-compatible default.
	RepVector core.ReplicationVector

	// BlockSize overrides the cluster default block size.
	BlockSize int64

	// Overwrite replaces an existing file.
	Overwrite bool
}

// Create starts writing a new file and returns a streaming Writer.
// This is the paper's create(Path, ReplicationVector, blockSize) API.
func (fs *FileSystem) Create(path string, opts CreateOptions) (*Writer, error) {
	if opts.RepVector.IsZero() {
		opts.RepVector = core.ReplicationVectorFromFactor(3)
	}
	// One request ID covers the whole write: create, every AddBlock,
	// the pipeline transfers, and Complete share it across logs and
	// trace spans (the request ID doubles as the trace ID).
	reqID := rpc.NewRequestID()
	root := fs.tracer.Start(reqID, "", "client.write")
	root.Annotate("path", path)
	err := fs.callTraced(root, reqID, "Master.Create", &rpc.CreateArgs{
		Path:       path,
		RepVector:  opts.RepVector,
		BlockSize:  opts.BlockSize,
		Overwrite:  opts.Overwrite,
		Owner:      fs.owner,
		ClientNode: fs.node,
	}, &rpc.CreateReply{})
	if err != nil {
		root.SetError(err)
		root.End()
		fs.reportSpans(reqID)
		return nil, err
	}
	status, err := fs.Stat(path)
	if err != nil {
		root.SetError(err)
		root.End()
		fs.reportSpans(reqID)
		return nil, err
	}
	return &Writer{fs: fs, path: path, blockSize: status.BlockSize, reqID: reqID, window: fs.writeWindow, span: root}, nil
}

// WriteFile writes data as a new file with the given replication
// vector (a convenience wrapper over Create).
func (fs *FileSystem) WriteFile(path string, data []byte, rv core.ReplicationVector) error {
	w, err := fs.Create(path, CreateOptions{RepVector: rv, Overwrite: true})
	if err != nil {
		return err
	}
	if _, err := w.Write(data); err != nil {
		w.Abort()
		return err
	}
	return w.Close()
}

// Open returns a Reader over an existing file.
func (fs *FileSystem) Open(path string) (*Reader, error) {
	// One request ID covers the whole read: the location lookup and
	// every block transfer share it across master and worker logs and
	// trace spans.
	reqID := rpc.NewRequestID()
	root := fs.tracer.Start(reqID, "", "client.open")
	root.Annotate("path", path)
	var reply rpc.GetBlockLocationsReply
	err := fs.callTraced(root, reqID, "Master.GetBlockLocations", &rpc.GetBlockLocationsArgs{
		Path: path, Offset: 0, Length: -1, ClientNode: fs.node,
	}, &reply)
	if err != nil {
		root.SetError(err)
		root.End()
		fs.reportSpans(reqID)
		return nil, err
	}
	return &Reader{fs: fs, path: path, length: reply.FileLength, blocks: reply.Blocks, reqID: reqID, readahead: fs.readahead, span: root}, nil
}

// ReadFile reads a whole file (a convenience wrapper over Open).
func (fs *FileSystem) ReadFile(path string) ([]byte, error) {
	r, err := fs.Open(path)
	if err != nil {
		return nil, err
	}
	defer r.Close()
	buf := make([]byte, r.Length())
	if _, err := ioReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// Stat returns one path's status.
func (fs *FileSystem) Stat(path string) (rpc.FileStatus, error) {
	var reply rpc.GetFileInfoReply
	err := fs.call("Master.GetFileInfo", &rpc.GetFileInfoArgs{Path: path}, &reply)
	return reply.Status, err
}

// List returns a directory's entries.
func (fs *FileSystem) List(path string) ([]rpc.FileStatus, error) {
	var reply rpc.ListReply
	err := fs.call("Master.List", &rpc.ListArgs{Path: path}, &reply)
	return reply.Entries, err
}

// Delete removes a path.
func (fs *FileSystem) Delete(path string, recursive bool) error {
	return fs.call("Master.Delete", &rpc.DeleteArgs{Path: path, Recursive: recursive}, &rpc.DeleteReply{})
}

// Rename moves a path.
func (fs *FileSystem) Rename(src, dst string) error {
	return fs.call("Master.Rename", &rpc.RenameArgs{Src: src, Dst: dst}, &rpc.RenameReply{})
}

// SetReplication changes a file's replication vector; replica moves,
// copies, and deletions happen asynchronously (paper §2.3, Table 1).
func (fs *FileSystem) SetReplication(path string, rv core.ReplicationVector) error {
	return fs.call("Master.SetReplication", &rpc.SetReplicationArgs{Path: path, RepVector: rv}, &rpc.SetReplicationReply{})
}

// GetFileBlockLocations returns the blocks overlapping [offset,
// offset+length) with tier-annotated replica locations ordered by the
// retrieval policy (paper Table 1). length = -1 means to end of file.
func (fs *FileSystem) GetFileBlockLocations(path string, offset, length int64) ([]core.LocatedBlock, error) {
	var reply rpc.GetBlockLocationsReply
	err := fs.call("Master.GetBlockLocations", &rpc.GetBlockLocationsArgs{
		Path: path, Offset: offset, Length: length, ClientNode: fs.node,
	}, &reply)
	return reply.Blocks, err
}

// GetStorageTierReports returns per-tier capacity and throughput
// aggregates (paper Table 1).
func (fs *FileSystem) GetStorageTierReports() ([]core.StorageTierReport, error) {
	var reply rpc.TierReportsReply
	err := fs.call("Master.GetStorageTierReports", &rpc.TierReportsArgs{}, &reply)
	return reply.Reports, err
}

// SetQuota sets a per-tier byte quota on a directory;
// core.TierUnspecified addresses the total-space quota, bytes <= 0
// clears it.
func (fs *FileSystem) SetQuota(path string, tier core.StorageTier, bytes int64) error {
	return fs.call("Master.SetQuota", &rpc.SetQuotaArgs{Path: path, Tier: tier, Bytes: bytes}, &rpc.SetQuotaReply{})
}

// abandon drops an under-construction file after a failed write.
func (fs *FileSystem) abandon(reqID, path string) error {
	if reqID == "" {
		reqID = rpc.NewRequestID()
	}
	return fs.callReq(reqID, "Master.Abandon", &rpc.AbandonArgs{Path: path}, &rpc.AbandonReply{})
}

// GetContentSummary aggregates a subtree's usage: file and directory
// counts, logical bytes, and per-tier replica bytes.
func (fs *FileSystem) GetContentSummary(path string) (rpc.ContentSummary, error) {
	var reply rpc.ContentSummaryReply
	err := fs.call("Master.GetContentSummary", &rpc.ContentSummaryArgs{Path: path}, &reply)
	return reply.Summary, err
}

// Fsck reports per-file replication health over a subtree.
func (fs *FileSystem) Fsck(path string) ([]rpc.FsckFile, error) {
	var reply rpc.FsckReply
	err := fs.call("Master.Fsck", &rpc.FsckArgs{Path: path}, &reply)
	return reply.Files, err
}

// GetWorkerReports lists every live worker with per-media statistics
// (the dfsadmin -report equivalent).
func (fs *FileSystem) GetWorkerReports() ([]rpc.WorkerReport, error) {
	var reply rpc.WorkerReportsReply
	err := fs.call("Master.GetWorkerReports", &rpc.WorkerReportsArgs{}, &reply)
	return reply.Workers, err
}
