package client

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/rpc"
)

// Writer streams file content into OctopusFS one block at a time
// (paper §3.1): for every block it asks the master for placement
// targets, organises the Worker-to-Worker pipeline, and streams
// checksummed packets into it.
type Writer struct {
	fs        *FileSystem
	path      string
	blockSize int64
	reqID     string // correlates all of this write's RPCs and transfers

	cur      *rpc.BlockWriter
	curBlock core.Block
	curLen   int64
	curBuf   []byte      // bytes of the in-flight block, kept for retry
	retries  int         // pipeline retries consumed for this block
	prev     *core.Block // finished block awaiting commit at next AddBlock
	written  int64
	err      error
	closed   bool
}

// maxBlockRetries bounds how many times one block is retried with a
// fresh pipeline after a write failure (HDFS-style pipeline recovery,
// simplified to block granularity: the failed block is abandoned and
// re-allocated, letting the placement policy route around the dead
// stage once the master notices it).
const maxBlockRetries = 3

// Write implements io.Writer. The current block's bytes are buffered
// so a broken pipeline can be retried transparently on fresh replica
// locations.
func (w *Writer) Write(p []byte) (int, error) {
	if w.err != nil {
		return 0, w.err
	}
	if w.closed {
		return 0, core.ErrFileClosed
	}
	total := 0
	for len(p) > 0 {
		if w.cur == nil {
			if err := w.startBlock(); err != nil {
				if rerr := w.retryBlock(err); rerr != nil {
					w.fail(rerr)
					return total, w.err
				}
			}
		}
		chunk := p
		if room := w.blockSize - w.curLen; int64(len(chunk)) > room {
			chunk = chunk[:room]
		}
		n, err := w.cur.Write(chunk)
		w.curLen += int64(n)
		w.written += int64(n)
		w.fs.metrics.writeBytes.Add(float64(n))
		w.curBuf = append(w.curBuf, chunk[:n]...)
		total += n
		p = p[n:]
		if err != nil {
			if rerr := w.retryBlock(fmt.Errorf("client: block stream: %w", err)); rerr != nil {
				w.fail(rerr)
				return total, w.err
			}
			continue
		}
		if w.curLen == w.blockSize {
			if err := w.finishBlock(); err != nil {
				if rerr := w.retryBlock(err); rerr != nil {
					w.fail(rerr)
					return total, w.err
				}
				continue
			}
		}
	}
	return total, nil
}

// retryBlock abandons the current block and replays its buffered bytes
// through a freshly allocated one.
func (w *Writer) retryBlock(cause error) error {
	if w.retries >= maxBlockRetries {
		return fmt.Errorf("client: block failed after %d retries: %w", w.retries, cause)
	}
	w.retries++
	w.fs.metrics.retries.Inc()
	if w.cur != nil {
		w.cur.Abort()
		w.cur = nil
	}
	// Drop the failed block server-side; ignore errors (the file may
	// already be gone) and surface the original cause instead.
	w.fs.callReq(w.reqID, "Master.AbandonBlock", &rpc.AbandonBlockArgs{
		Path: w.path, Block: w.curBlock,
	}, &rpc.AbandonBlockReply{})

	buf := w.curBuf
	w.curBuf = nil
	w.written -= int64(len(buf))
	w.curLen = 0
	if err := w.startBlock(); err != nil {
		return fmt.Errorf("client: re-allocating failed block: %w (after %w)", err, cause)
	}
	if len(buf) > 0 {
		n, err := w.cur.Write(buf)
		w.curLen += int64(n)
		w.written += int64(n)
		w.fs.metrics.writeBytes.Add(float64(n))
		w.curBuf = append(w.curBuf, buf[:n]...)
		if err != nil {
			return w.retryBlock(fmt.Errorf("client: replaying block: %w", err))
		}
	}
	return nil
}

// startBlock allocates the next block (committing the previous one)
// and opens the write pipeline to its first target.
func (w *Writer) startBlock() error {
	var reply rpc.AddBlockReply
	err := w.fs.callReq(w.reqID, "Master.AddBlock", &rpc.AddBlockArgs{
		Path:       w.path,
		ClientNode: w.fs.node,
		Previous:   w.prev,
	}, &reply)
	if err != nil {
		return err
	}
	w.prev = nil
	located := reply.Located
	// Record the allocated block before opening the pipeline so a
	// dial failure can still abandon it.
	w.curBlock = located.Block
	pipeline := make([]rpc.PipelineTarget, len(located.Locations))
	for i, loc := range located.Locations {
		pipeline[i] = rpc.PipelineTarget{
			Worker:  loc.Worker,
			Address: loc.Address,
			Storage: loc.Storage,
		}
	}
	// Declare the full block size up front: workers use it both as a
	// capacity reservation and as a buffer-sizing hint; the committed
	// length is reported separately when the block finishes.
	hdrBlock := located.Block
	hdrBlock.NumBytes = w.blockSize
	bw, err := rpc.OpenBlockWriterReq(hdrBlock, pipeline, w.fs.owner, w.reqID)
	if err != nil {
		return err
	}
	w.cur = bw
	w.curLen = 0
	w.curBuf = w.curBuf[:0]
	return nil
}

// finishBlock completes the current pipeline and records the block for
// commit by the next AddBlock or Complete call.
func (w *Writer) finishBlock() error {
	err := w.cur.Commit()
	w.cur = nil
	if err != nil {
		return fmt.Errorf("client: pipeline ack for %s: %w", w.curBlock.ID, err)
	}
	done := w.curBlock
	done.NumBytes = w.curLen
	w.prev = &done
	w.curBuf = nil
	w.retries = 0
	return nil
}

// fail records the first error and abandons the file so the namespace
// does not accumulate half-written files.
func (w *Writer) fail(err error) {
	if w.err == nil {
		w.err = err
		if w.cur != nil {
			w.cur.Abort()
			w.cur = nil
		}
		w.fs.abandon(w.reqID, w.path)
	}
}

// Written returns the number of bytes accepted so far.
func (w *Writer) Written() int64 { return w.written }

// Close flushes the final block and seals the file.
func (w *Writer) Close() error {
	if w.err != nil {
		return w.err
	}
	if w.closed {
		return nil
	}
	w.closed = true
	if w.cur != nil {
		if err := w.finishBlock(); err != nil {
			if rerr := w.retryBlock(err); rerr != nil {
				w.fail(rerr)
				return w.err
			}
			if err := w.finishBlock(); err != nil {
				w.fail(err)
				return w.err
			}
		}
	}
	err := w.fs.callReq(w.reqID, "Master.Complete", &rpc.CompleteArgs{
		Path: w.path,
		Last: w.prev,
	}, &rpc.CompleteReply{})
	if err != nil {
		w.err = err
		return err
	}
	return nil
}

// Abort abandons the file, discarding everything written.
func (w *Writer) Abort() error {
	if w.closed {
		return core.ErrFileClosed
	}
	w.closed = true
	if w.cur != nil {
		w.cur.Abort()
		w.cur = nil
	}
	if w.err != nil {
		return nil // fail() already abandoned the file
	}
	return w.fs.abandon(w.reqID, w.path)
}

var _ io.WriteCloser = (*Writer)(nil)
