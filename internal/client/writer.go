package client

import (
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/rpc"
	"repro/internal/trace"
	"repro/internal/xfer"
)

// Writer streams file content into OctopusFS (paper §3.1): for every
// block it asks the master for placement targets, organises the
// Worker-to-Worker pipeline, and streams checksummed packets into it.
//
// With a write window of W > 0 the data path is overlapped: when a
// block fills, its packet stream is flushed and the pipeline
// acknowledgement is collected on a background goroutine while the
// next block is allocated (Master.AddBlock) and streamed, so Write
// runs at media speed instead of stalling one round trip per block.
// Up to W flushed blocks may have outstanding acks; each is committed
// (Master.CommitBlock) as its ack arrives, in file order. Every
// not-yet-acknowledged block's bytes stay buffered so a broken
// pipeline can be replayed onto freshly allocated replicas.
type Writer struct {
	fs        *FileSystem
	path      string
	blockSize int64
	reqID     string // correlates all of this write's RPCs and transfers
	window    int    // max flushed blocks with outstanding acks (0 = synchronous)

	cur     *inflightBlock   // block currently accepting bytes
	pending []*inflightBlock // flushed blocks awaiting ack + commit, oldest first
	written int64
	err     error
	closed  bool

	span     *trace.ActiveSpan // root "client.write" span for the whole file
	reported bool              // client spans already shipped to the master
}

// inflightBlock is one allocated block with an open or flushed
// pipeline stream. buf retains the block's bytes until the pipeline
// acknowledgement arrives, so any failure can be replayed.
type inflightBlock struct {
	w       *Writer
	block   core.Block
	targets []core.WorkerID
	bw      *rpc.BlockWriter
	buf     []byte
	n       int64
	retries int               // retry budget consumed by this block's bytes
	ack     chan error        // buffered; receives the WaitAck result
	span    *trace.ActiveSpan // "client.block": pipeline open through commit or abandonment

	start    time.Time // pipeline open start, the flight record's epoch
	recorded bool      // flight-recorder entry already appended
}

// endSpan closes the block's span with its final byte count and
// appends the block's flight-recorder entry. End is idempotent, so
// recovery paths may race Close harmlessly.
func (ib *inflightBlock) endSpan(err error) {
	ib.span.AnnotateInt("bytes", ib.n)
	ib.span.SetError(err)
	ib.span.End()
	ib.record(err)
}

// record appends the block's transfer record, once: dial and header
// encode from the pipeline open, socket time from the packet stream,
// and the ack wait (zero when the block was aborted before its ack).
func (ib *inflightBlock) record(err error) {
	if ib.w == nil || ib.recorded {
		return
	}
	ib.recorded = true
	dial, enc, net, ack := ib.bw.Phases()
	rec := xfer.Record{
		Op:             "write",
		Source:         "client",
		Block:          uint64(ib.block.ID),
		Peer:           ib.bw.Peer(),
		TraceID:        ib.w.reqID,
		SpanID:         ib.span.ID(),
		Bytes:          ib.n,
		DialNs:         dial,
		HeaderEncodeNs: enc,
		NetNs:          net,
		AckWaitNs:      ack,
		AllocBytes:     ib.bw.AllocBytes(),
		PoolHit:        ib.bw.PoolHit(),
		TotalNs:        time.Since(ib.start).Nanoseconds(),
		Result:         "ok",
	}
	if err != nil {
		rec.Result = err.Error()
	}
	ib.w.fs.xfers.Append(rec)
}

// maxBlockRetries bounds how many times one block's bytes are retried
// on a fresh pipeline after a write failure (HDFS-style pipeline
// recovery, simplified to block granularity: the failed block is
// abandoned and re-allocated, letting the placement policy route
// around the dead stage once the master notices it).
const maxBlockRetries = 3

// Write implements io.Writer. The bytes of every block that has not
// yet been acknowledged are buffered so a broken pipeline can be
// retried transparently on fresh replica locations.
func (w *Writer) Write(p []byte) (int, error) {
	if w.err != nil {
		return 0, w.err
	}
	if w.closed {
		return 0, core.ErrFileClosed
	}
	total := 0
	for len(p) > 0 {
		if w.cur == nil {
			ib, err := w.allocBlock()
			if err != nil {
				if ib, err = w.redo(nil, 0, err); err != nil {
					w.fail(err)
					return total, w.err
				}
			}
			w.cur = ib
		}
		chunk := p
		if room := w.blockSize - w.cur.n; int64(len(chunk)) > room {
			chunk = chunk[:room]
		}
		n, err := w.cur.bw.Write(chunk)
		w.cur.n += int64(n)
		w.cur.buf = append(w.cur.buf, chunk[:n]...)
		// Accepted bytes are counted exactly once, here: retry replays
		// never re-add to written or the write-bytes counter.
		w.written += int64(n)
		w.fs.metrics.writeBytes.Add(float64(n))
		total += n
		p = p[n:]
		if err != nil {
			if rerr := w.recoverCur(fmt.Errorf("client: block stream: %w", err)); rerr != nil {
				w.fail(rerr)
				return total, w.err
			}
			continue
		}
		if w.cur.n == w.blockSize {
			if err := w.finishCur(); err != nil {
				w.fail(err)
				return total, w.err
			}
		}
	}
	return total, nil
}

// allocBlock asks the master for the next block and opens its write
// pipeline. A dial failure abandons the fresh allocation — and only
// it, so a previously committed block can never be dropped by a
// failed allocation — before surfacing the error.
func (w *Writer) allocBlock() (*inflightBlock, error) {
	var reply rpc.AddBlockReply
	err := w.fs.callTraced(w.span, w.reqID, "Master.AddBlock", &rpc.AddBlockArgs{
		Path:       w.path,
		ClientNode: w.fs.node,
	}, &reply)
	if err != nil {
		return nil, err
	}
	located := reply.Located
	pipeline := make([]rpc.PipelineTarget, len(located.Locations))
	targets := make([]core.WorkerID, len(located.Locations))
	for i, loc := range located.Locations {
		pipeline[i] = rpc.PipelineTarget{
			Worker:  loc.Worker,
			Address: loc.Address,
			Storage: loc.Storage,
		}
		targets[i] = loc.Worker
	}
	// Declare the full block size up front: workers use it both as a
	// capacity reservation and as a buffer-sizing hint; the committed
	// length is reported separately when the block finishes.
	hdrBlock := located.Block
	hdrBlock.NumBytes = w.blockSize
	// The block span's ID rides the transfer header, so the head
	// worker's "worker.write" span becomes its child.
	bsp := w.fs.tracer.Start(w.reqID, w.span.ID(), "client.block")
	bsp.AnnotateInt("block", int64(located.Block.ID)).AnnotateInt("pipeline", int64(len(pipeline)))
	start := time.Now()
	bw, err := rpc.OpenBlockWriterSpan(hdrBlock, pipeline, w.fs.owner, w.reqID, bsp.ID())
	if err != nil {
		bsp.SetError(err)
		bsp.End()
		w.abandonBlock(located.Block)
		return nil, err
	}
	return &inflightBlock{w: w, block: located.Block, targets: targets, bw: bw, ack: make(chan error, 1), span: bsp, start: start}, nil
}

// abandonBlock drops a failed block server-side; errors are ignored
// (the file may already be gone) so the original cause surfaces.
func (w *Writer) abandonBlock(b core.Block) {
	w.fs.callTraced(w.span, w.reqID, "Master.AbandonBlock", &rpc.AbandonBlockArgs{
		Path: w.path, Block: b,
	}, &rpc.AbandonBlockReply{})
}

// redo allocates a fresh block and replays buf into its pipeline,
// leaving the stream open. retries is the budget already consumed by
// these bytes; each attempt here consumes more, bounded by
// maxBlockRetries.
func (w *Writer) redo(buf []byte, retries int, cause error) (*inflightBlock, error) {
	for {
		if retries >= maxBlockRetries {
			return nil, fmt.Errorf("client: block failed after %d retries: %w", retries, cause)
		}
		retries++
		w.fs.metrics.retries.Inc()
		ib, err := w.allocBlock()
		if err != nil {
			cause = fmt.Errorf("client: re-allocating failed block: %w (after %w)", err, cause)
			continue
		}
		ib.retries = retries
		if len(buf) > 0 {
			if _, err := ib.bw.Write(buf); err != nil {
				ib.bw.Abort()
				w.abandonBlock(ib.block)
				cause = fmt.Errorf("client: replaying block: %w", err)
				continue
			}
		}
		ib.buf = buf
		ib.n = int64(len(buf))
		return ib, nil
	}
}

// recoverCur abandons the current block and replays its buffered
// bytes through a freshly allocated one, leaving the stream open.
// Flushed blocks are unaffected: their pipelines are independent.
func (w *Writer) recoverCur(cause error) error {
	ib := w.cur
	w.cur = nil
	ib.bw.Abort()
	ib.endSpan(cause)
	w.abandonBlock(ib.block)
	nc, err := w.redo(ib.buf, ib.retries, cause)
	if err != nil {
		return err
	}
	w.cur = nc
	return nil
}

// finishCur flushes the current block's packet stream, hands the
// acknowledgement wait to a background goroutine, and enforces the
// write window.
func (w *Writer) finishCur() error {
	for {
		ib := w.cur
		if err := ib.bw.CloseStream(); err != nil {
			if rerr := w.recoverCur(fmt.Errorf("client: flushing block %s: %w", ib.block.ID, err)); rerr != nil {
				return rerr
			}
			continue
		}
		// The ack-wait span makes write-window overlap visible: under a
		// window it runs concurrently with the next block's streaming.
		asp := w.fs.tracer.Start(w.reqID, ib.span.ID(), "client.ack_wait")
		go func(ib *inflightBlock, asp *trace.ActiveSpan) {
			err := ib.bw.WaitAck()
			asp.SetError(err)
			asp.End()
			ib.ack <- err
		}(ib, asp)
		w.pending = append(w.pending, ib)
		w.cur = nil
		return w.reap(false)
	}
}

// reap commits flushed blocks whose acks have arrived, oldest first.
// When the window is full (or force is set) it blocks on the oldest
// outstanding ack; otherwise it returns as soon as an ack is still in
// flight.
func (w *Writer) reap(force bool) error {
	for len(w.pending) > 0 {
		oldest := w.pending[0]
		var ackErr error
		select {
		case ackErr = <-oldest.ack:
		default:
			if !force {
				if len(w.pending) <= w.window {
					return nil
				}
				// Write is about to block on a pipeline ack: the
				// window, not the media, is the bottleneck.
				w.fs.metrics.writeStalls.Inc()
			}
			ackErr = <-oldest.ack
		}
		if ackErr != nil {
			if err := w.recoverPending(fmt.Errorf("client: pipeline ack for %s: %w", oldest.block.ID, ackErr)); err != nil {
				return err
			}
			continue
		}
		oldest.endSpan(nil)
		done := oldest.block
		done.NumBytes = oldest.n
		if err := w.commitBlock(done); err != nil {
			return err
		}
		w.pending = w.pending[1:]
	}
	return nil
}

// recoverPending rebuilds the write after the oldest flushed block's
// ack failed. The namespace only abandons its last block, so every
// block allocated after the failed one — later flushed blocks and the
// in-progress current block — is abandoned newest-first, then each is
// replayed in file order onto fresh pipelines: flushed blocks
// synchronously (flush, ack, commit), the current block left open.
func (w *Writer) recoverPending(cause error) error {
	var curBuf []byte
	curRetries := 0
	hadCur := false
	if w.cur != nil {
		hadCur = true
		curBuf, curRetries = w.cur.buf, w.cur.retries
		w.cur.bw.Abort()
		w.cur.endSpan(cause)
		w.abandonBlock(w.cur.block)
		w.cur = nil
	}
	failed := w.pending
	w.pending = nil
	for j := len(failed) - 1; j >= 0; j-- {
		failed[j].bw.Abort()
		failed[j].endSpan(cause)
		w.abandonBlock(failed[j].block)
	}
	for _, ib := range failed {
		nc, err := w.redo(ib.buf, ib.retries, cause)
		if err != nil {
			return err
		}
		if err := w.commitSync(nc); err != nil {
			return err
		}
	}
	if hadCur {
		nc, err := w.redo(curBuf, curRetries, cause)
		if err != nil {
			return err
		}
		w.cur = nc
	}
	return nil
}

// commitSync finishes one replayed block end to end: flush, wait for
// the ack, and commit, retrying on yet another fresh pipeline if the
// replay itself fails.
func (w *Writer) commitSync(ib *inflightBlock) error {
	for {
		err := ib.bw.CloseStream()
		if err == nil {
			err = ib.bw.WaitAck()
		}
		if err != nil {
			ib.bw.Abort()
			ib.endSpan(err)
			w.abandonBlock(ib.block)
			nc, rerr := w.redo(ib.buf, ib.retries, err)
			if rerr != nil {
				return rerr
			}
			ib = nc
			continue
		}
		ib.endSpan(nil)
		done := ib.block
		done.NumBytes = ib.n
		return w.commitBlock(done)
	}
}

// commitBlock records a finished block's final length at the master.
func (w *Writer) commitBlock(b core.Block) error {
	err := w.fs.callTraced(w.span, w.reqID, "Master.CommitBlock", &rpc.CommitBlockArgs{
		Path: w.path, Block: b,
	}, &rpc.CommitBlockReply{})
	if err != nil {
		return fmt.Errorf("client: committing block %s: %w", b.ID, err)
	}
	return nil
}

// fail records the first error and abandons the file so the namespace
// does not accumulate half-written files.
func (w *Writer) fail(err error) {
	if w.err != nil {
		return
	}
	w.err = err
	if w.cur != nil {
		w.cur.bw.Abort()
		w.cur.endSpan(err)
		w.cur = nil
	}
	for _, ib := range w.pending {
		ib.bw.Abort()
		ib.endSpan(err)
	}
	w.pending = nil
	w.fs.abandon(w.reqID, w.path)
	w.finishTrace(err)
}

// finishTrace ends the write's root span and ships the client's spans
// to the master for cross-hop assembly, exactly once per Writer.
func (w *Writer) finishTrace(err error) {
	if w.reported {
		return
	}
	w.reported = true
	w.span.AnnotateInt("bytes", w.written)
	w.span.SetError(err)
	w.span.End()
	w.fs.reportSpans(w.reqID)
	w.fs.reportTransfers()
}

// Written returns the number of bytes accepted so far.
func (w *Writer) Written() int64 { return w.written }

// ReqID returns the request ID correlating all of this write's RPCs,
// transfers, and trace spans (it doubles as the trace ID).
func (w *Writer) ReqID() string { return w.reqID }

// SetWindow changes the write window (0 = synchronous); it takes
// effect when the next block finishes.
func (w *Writer) SetWindow(k int) {
	if k < 0 {
		k = 0
	}
	w.window = k
}

// CurrentTargets returns the worker pipeline of the block currently
// being streamed (nil between blocks); tests and tooling use it to
// identify the replica set an in-flight write depends on.
func (w *Writer) CurrentTargets() []core.WorkerID {
	if w.cur == nil {
		return nil
	}
	return append([]core.WorkerID(nil), w.cur.targets...)
}

// Close flushes the final block, waits out every outstanding ack, and
// seals the file.
func (w *Writer) Close() error {
	if w.err != nil {
		return w.err
	}
	if w.closed {
		return nil
	}
	w.closed = true
	if w.cur != nil {
		if err := w.finishCur(); err != nil {
			w.fail(err)
			return w.err
		}
	}
	if err := w.reap(true); err != nil {
		w.fail(err)
		return w.err
	}
	// Every block was committed individually as its ack arrived, so
	// Complete only seals the file.
	err := w.fs.callTraced(w.span, w.reqID, "Master.Complete", &rpc.CompleteArgs{
		Path: w.path,
	}, &rpc.CompleteReply{})
	if err != nil {
		w.err = err
		w.finishTrace(err)
		return err
	}
	w.finishTrace(nil)
	return nil
}

// Abort abandons the file, discarding everything written.
func (w *Writer) Abort() error {
	if w.closed {
		return core.ErrFileClosed
	}
	w.closed = true
	if w.cur != nil {
		w.cur.bw.Abort()
		w.cur.endSpan(core.ErrFileClosed)
		w.cur = nil
	}
	for _, ib := range w.pending {
		ib.bw.Abort()
		ib.endSpan(core.ErrFileClosed)
	}
	w.pending = nil
	if w.err != nil {
		return nil // fail() already abandoned the file and reported spans
	}
	w.span.Annotate("aborted", "true")
	err := w.fs.abandon(w.reqID, w.path)
	w.finishTrace(err)
	return err
}

var _ io.WriteCloser = (*Writer)(nil)
