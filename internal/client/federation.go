package client

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/rpc"
)

// Federation routes file system operations across multiple independent
// Primary Masters by path prefix — the horizontal name-service scaling
// of paper §2.1 ("multiple Masters are used to form a federation and
// are independent from each other"), realised like HDFS ViewFS as a
// client-side mount table.
type Federation struct {
	mounts []mount // sorted by descending prefix length
}

type mount struct {
	prefix string
	fs     *FileSystem
}

// NewFederation dials one FileSystem per mount. The mounts map binds
// path prefixes (e.g. "/warm") to master addresses; a "/" mount, if
// present, catches everything unmatched. Prefixes must be clean
// absolute paths.
func NewFederation(mounts map[string]string, opts ...Option) (*Federation, error) {
	if len(mounts) == 0 {
		return nil, fmt.Errorf("client: federation needs at least one mount")
	}
	f := &Federation{}
	for prefix, addr := range mounts {
		if !strings.HasPrefix(prefix, "/") {
			return nil, fmt.Errorf("client: mount prefix %q is not absolute", prefix)
		}
		fs, err := Dial(addr, opts...)
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("client: dialling mount %s: %w", prefix, err)
		}
		f.mounts = append(f.mounts, mount{prefix: strings.TrimRight(prefix, "/"), fs: fs})
	}
	sort.Slice(f.mounts, func(i, j int) bool {
		return len(f.mounts[i].prefix) > len(f.mounts[j].prefix)
	})
	return f, nil
}

// Close releases every mount's connection.
func (f *Federation) Close() error {
	var first error
	for _, m := range f.mounts {
		if m.fs == nil {
			continue
		}
		if err := m.fs.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Resolve returns the FileSystem owning a path (longest matching mount
// prefix wins).
func (f *Federation) Resolve(path string) (*FileSystem, error) {
	for _, m := range f.mounts {
		if m.prefix == "" || path == m.prefix || strings.HasPrefix(path, m.prefix+"/") {
			return m.fs, nil
		}
	}
	return nil, fmt.Errorf("client: no federation mount covers %q: %w", path, core.ErrNotFound)
}

// sameMount reports whether two paths resolve to the same master.
func (f *Federation) sameMount(a, b string) bool {
	fa, ea := f.Resolve(a)
	fb, eb := f.Resolve(b)
	return ea == nil && eb == nil && fa == fb
}

// Mkdir creates a directory on the owning master.
func (f *Federation) Mkdir(path string, parents bool) error {
	fs, err := f.Resolve(path)
	if err != nil {
		return err
	}
	return fs.Mkdir(path, parents)
}

// Create starts writing a file on the owning master.
func (f *Federation) Create(path string, opts CreateOptions) (*Writer, error) {
	fs, err := f.Resolve(path)
	if err != nil {
		return nil, err
	}
	return fs.Create(path, opts)
}

// WriteFile writes a whole file on the owning master.
func (f *Federation) WriteFile(path string, data []byte, rv core.ReplicationVector) error {
	fs, err := f.Resolve(path)
	if err != nil {
		return err
	}
	return fs.WriteFile(path, data, rv)
}

// Open opens a file for reading on the owning master.
func (f *Federation) Open(path string) (*Reader, error) {
	fs, err := f.Resolve(path)
	if err != nil {
		return nil, err
	}
	return fs.Open(path)
}

// ReadFile reads a whole file from the owning master.
func (f *Federation) ReadFile(path string) ([]byte, error) {
	fs, err := f.Resolve(path)
	if err != nil {
		return nil, err
	}
	return fs.ReadFile(path)
}

// Stat stats a path on the owning master.
func (f *Federation) Stat(path string) (rpc.FileStatus, error) {
	fs, err := f.Resolve(path)
	if err != nil {
		return rpc.FileStatus{}, err
	}
	return fs.Stat(path)
}

// List lists a directory on the owning master.
func (f *Federation) List(path string) ([]rpc.FileStatus, error) {
	fs, err := f.Resolve(path)
	if err != nil {
		return nil, err
	}
	return fs.List(path)
}

// Delete removes a path on the owning master.
func (f *Federation) Delete(path string, recursive bool) error {
	fs, err := f.Resolve(path)
	if err != nil {
		return err
	}
	return fs.Delete(path, recursive)
}

// Rename moves a path within one mount. Cross-mount renames are
// rejected, like HDFS federation.
func (f *Federation) Rename(src, dst string) error {
	if !f.sameMount(src, dst) {
		return fmt.Errorf("client: rename %s -> %s crosses federation mounts: %w", src, dst, core.ErrPermission)
	}
	fs, err := f.Resolve(src)
	if err != nil {
		return err
	}
	return fs.Rename(src, dst)
}

// SetReplication changes a file's replication vector on the owning
// master.
func (f *Federation) SetReplication(path string, rv core.ReplicationVector) error {
	fs, err := f.Resolve(path)
	if err != nil {
		return err
	}
	return fs.SetReplication(path, rv)
}

// GetFileBlockLocations queries tier-annotated block locations from
// the owning master.
func (f *Federation) GetFileBlockLocations(path string, offset, length int64) ([]core.LocatedBlock, error) {
	fs, err := f.Resolve(path)
	if err != nil {
		return nil, err
	}
	return fs.GetFileBlockLocations(path, offset, length)
}

// GetStorageTierReports aggregates tier reports across every mount's
// cluster.
func (f *Federation) GetStorageTierReports() ([]core.StorageTierReport, error) {
	agg := map[core.StorageTier]core.StorageTierReport{}
	seen := map[*FileSystem]bool{}
	for _, m := range f.mounts {
		if seen[m.fs] {
			continue
		}
		seen[m.fs] = true
		reports, err := m.fs.GetStorageTierReports()
		if err != nil {
			return nil, err
		}
		for _, r := range reports {
			a := agg[r.Tier]
			a.Tier = r.Tier
			a.NumMedia += r.NumMedia
			a.NumWorkers += r.NumWorkers
			a.Capacity += r.Capacity
			a.Remaining += r.Remaining
			// Weighted-average throughputs by media count.
			total := float64(a.NumMedia)
			if total > 0 {
				a.WriteThruMBps += (r.WriteThruMBps - a.WriteThruMBps) * float64(r.NumMedia) / total
				a.ReadThruMBps += (r.ReadThruMBps - a.ReadThruMBps) * float64(r.NumMedia) / total
			}
			agg[r.Tier] = a
		}
	}
	out := make([]core.StorageTierReport, 0, len(agg))
	for _, r := range agg {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Tier < out[j].Tier })
	return out, nil
}
