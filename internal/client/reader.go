package client

import (
	"errors"
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/master"
	"repro/internal/rpc"
)

// Reader streams a file out of OctopusFS (paper §4.1): for each block
// it contacts replica locations in the order chosen by the master's
// retrieval policy, failing over to the next location on error and
// reporting corrupt replicas back to the master.
type Reader struct {
	fs     *FileSystem
	path   string
	length int64
	blocks []core.LocatedBlock
	reqID  string // correlates all of this read's RPCs and transfers

	pos    int64
	cur    io.ReadCloser
	curEnd int64 // absolute file offset where the current stream ends
	closed bool
}

// Length returns the file's total length at open time.
func (r *Reader) Length() int64 { return r.length }

// Read implements io.Reader.
func (r *Reader) Read(p []byte) (int, error) {
	if r.closed {
		return 0, core.ErrFileClosed
	}
	for {
		if r.pos >= r.length {
			return 0, io.EOF
		}
		if r.cur == nil {
			if err := r.openAt(r.pos); err != nil {
				return 0, err
			}
		}
		n, err := r.cur.Read(p)
		r.pos += int64(n)
		if err == io.EOF {
			r.cur.Close()
			r.cur = nil
			if n > 0 {
				return n, nil
			}
			if r.pos < r.curEnd {
				return 0, io.ErrUnexpectedEOF
			}
			continue // move on to the next block
		}
		if err != nil {
			r.cur.Close()
			r.cur = nil
			return n, err
		}
		return n, nil
	}
}

// openAt connects to a replica of the block containing offset, trying
// locations in retrieval-policy order.
func (r *Reader) openAt(offset int64) error {
	blk := r.blockAt(offset)
	if blk == nil {
		return fmt.Errorf("client: no block at offset %d of %s: %w", offset, r.path, core.ErrNotFound)
	}
	within := offset - blk.Offset
	var lastErr error
	for i, loc := range blk.Locations {
		rc, _, err := rpc.OpenBlockReaderReq(loc.Address, blk.Block, loc.Storage, within, blk.Block.NumBytes-within, r.reqID)
		if err != nil {
			lastErr = err
			if errors.Is(err, core.ErrCorrupt) || errors.Is(err, core.ErrNotFound) {
				r.reportBad(blk.Block, loc)
			}
			continue
		}
		if i > 0 {
			r.fs.metrics.failovers.Inc()
		}
		r.cur = &corruptionReportingReader{rc: rc, r: r, block: blk.Block, loc: loc}
		r.curEnd = blk.Offset + blk.Block.NumBytes
		return nil
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("client: block %s has no live replicas: %w", blk.Block.ID, core.ErrNoWorkers)
	}
	return lastErr
}

// blockAt finds the located block containing the absolute offset.
func (r *Reader) blockAt(offset int64) *core.LocatedBlock {
	for i := range r.blocks {
		b := &r.blocks[i]
		if offset >= b.Offset && offset < b.Offset+b.Block.NumBytes {
			return b
		}
	}
	return nil
}

// reportBad tells the master a replica is corrupt or missing so
// re-replication can repair it (paper §5).
func (r *Reader) reportBad(b core.Block, loc core.BlockLocation) {
	r.fs.metrics.badReports.Inc()
	r.fs.callReq(r.reqID, "Master.ReportBadBlock", &master.ReportBadBlockArgs{
		Block: b, Storage: loc.Storage, Worker: loc.Worker,
	}, &master.ReportBadBlockReply{})
}

// Seek implements io.Seeker.
func (r *Reader) Seek(offset int64, whence int) (int64, error) {
	var target int64
	switch whence {
	case io.SeekStart:
		target = offset
	case io.SeekCurrent:
		target = r.pos + offset
	case io.SeekEnd:
		target = r.length + offset
	default:
		return 0, fmt.Errorf("client: invalid whence %d", whence)
	}
	if target < 0 {
		return 0, fmt.Errorf("client: negative seek position %d", target)
	}
	if r.cur != nil {
		r.cur.Close()
		r.cur = nil
	}
	r.pos = target
	return target, nil
}

// Close releases the reader.
func (r *Reader) Close() error {
	if r.closed {
		return nil
	}
	r.closed = true
	if r.cur != nil {
		err := r.cur.Close()
		r.cur = nil
		return err
	}
	return nil
}

// corruptionReportingReader wraps a block stream and reports checksum
// failures to the master as they surface mid-stream.
type corruptionReportingReader struct {
	rc    io.ReadCloser
	r     *Reader
	block core.Block
	loc   core.BlockLocation
}

func (c *corruptionReportingReader) Read(p []byte) (int, error) {
	n, err := c.rc.Read(p)
	if n > 0 {
		source := "remote"
		if string(c.loc.Worker) == c.r.fs.node {
			source = "local"
		}
		c.r.fs.metrics.readBytes.With(c.loc.Tier.String(), source).Add(float64(n))
	}
	if err != nil && errors.Is(err, core.ErrCorrupt) {
		c.r.reportBad(c.block, c.loc)
	}
	return n, err
}

func (c *corruptionReportingReader) Close() error { return c.rc.Close() }

var _ io.ReadSeekCloser = (*Reader)(nil)

// ioReadFull is io.ReadFull, indirected for fs.go's ReadFile.
func ioReadFull(r io.Reader, buf []byte) (int, error) { return io.ReadFull(r, buf) }
