package client

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/master"
	"repro/internal/rpc"
	"repro/internal/trace"
	"repro/internal/xfer"
)

// Reader streams a file out of OctopusFS (paper §4.1): for each block
// it contacts replica locations in the order chosen by the master's
// retrieval policy, failing over to the next location on error and
// reporting corrupt replicas back to the master.
//
// A replica that dies mid-stream is handled the same way: the stream
// is resumed at the current position from the next location, with the
// dead replica excluded so it is not immediately re-picked.
//
// With readahead K > 0 the reader keeps replica streams for the next
// K blocks opening on background goroutines while the current block
// is consumed, hiding the per-block dial + handshake round trip.
// Prefetched streams are delivered strictly in order; Seek and Close
// cancel the window.
type Reader struct {
	fs        *FileSystem
	path      string
	length    int64
	blocks    []core.LocatedBlock
	reqID     string // correlates all of this read's RPCs and transfers
	readahead int

	pos    int64
	cur    io.ReadCloser
	curEnd int64 // absolute file offset where the current stream ends
	curLoc core.BlockLocation
	closed bool

	// exclude lists replica locations of block excludeIdx that failed
	// mid-stream or at open, so failover never re-picks them. It resets
	// when the reader moves to another block.
	exclude    map[core.StorageID]bool
	excludeIdx int

	window []*prefetchedStream // pending prefetches, ascending block index

	span     *trace.ActiveSpan // root "client.open" span for the whole read
	curSpan  *trace.ActiveSpan // "client.read_block" span of the current stream
	curStart int64             // r.pos when the current block span began

	curRec      *xfer.Record // flight-recorder entry of the current stream
	curRecStart time.Time
}

// endBlockSpan closes the current block's read span, annotated with
// the bytes the consumer actually drained from it, and completes the
// stream's flight-recorder entry.
func (r *Reader) endBlockSpan(err error) {
	if r.curRec != nil {
		rec := *r.curRec
		r.curRec = nil
		rec.Bytes = r.pos - r.curStart
		rec.TotalNs = time.Since(r.curRecStart).Nanoseconds()
		rec.Result = "ok"
		if err != nil {
			rec.Result = err.Error()
		}
		r.fs.xfers.Append(rec)
	}
	if r.curSpan == nil {
		return
	}
	r.curSpan.AnnotateInt("bytes", r.pos-r.curStart)
	r.curSpan.SetError(err)
	r.curSpan.End()
	r.curSpan = nil
}

// Length returns the file's total length at open time.
func (r *Reader) Length() int64 { return r.length }

// SetReadahead changes the number of blocks prefetched ahead of the
// consumed position (0 disables readahead). It applies from the next
// block boundary.
func (r *Reader) SetReadahead(k int) {
	if k < 0 {
		k = 0
	}
	r.readahead = k
	if k == 0 {
		r.cancelWindow()
	}
}

// CurrentLocation reports the replica location the reader is
// currently streaming from; ok is false between blocks. Tests and
// tooling use it to identify the worker an in-flight read depends on.
func (r *Reader) CurrentLocation() (loc core.BlockLocation, ok bool) {
	if r.cur == nil {
		return core.BlockLocation{}, false
	}
	return r.curLoc, true
}

// Read implements io.Reader.
func (r *Reader) Read(p []byte) (int, error) {
	if r.closed {
		return 0, core.ErrFileClosed
	}
	for {
		if r.pos >= r.length {
			return 0, io.EOF
		}
		if r.cur == nil {
			if err := r.openAt(r.pos); err != nil {
				return 0, err
			}
		}
		n, err := r.cur.Read(p)
		r.pos += int64(n)
		if err == io.EOF && r.pos >= r.curEnd {
			r.cur.Close()
			r.cur = nil
			r.endBlockSpan(nil)
			if n > 0 {
				return n, nil
			}
			continue // move on to the next block
		}
		if err != nil {
			// The replica died mid-stream (connection error, short
			// stream, or checksum failure): exclude it and resume at
			// the current position from another location.
			r.cur.Close()
			r.cur = nil
			r.endBlockSpan(err)
			r.markBad(r.curLoc)
			if n > 0 {
				return n, nil
			}
			continue
		}
		return n, nil
	}
}

// markBad records the location of a stream that failed mid-block so
// the retry skips it.
func (r *Reader) markBad(loc core.BlockLocation) {
	if r.exclude == nil {
		r.exclude = make(map[core.StorageID]bool)
	}
	r.exclude[loc.Storage] = true
}

// openAt connects to a replica of the block containing offset, taking
// a prefetched stream when one is ready and dialling replicas in
// retrieval-policy order otherwise.
func (r *Reader) openAt(offset int64) error {
	blk, idx := r.blockAt(offset)
	if blk == nil {
		return fmt.Errorf("client: no block at offset %d of %s: %w", offset, r.path, core.ErrNotFound)
	}
	if idx != r.excludeIdx {
		r.excludeIdx = idx
		r.exclude = nil
	}
	if r.readahead > 0 {
		r.pruneWindow(idx)
		if entry := r.takeWindow(idx); entry != nil {
			awaitStart := time.Now()
			rc, loc, err := entry.await()
			stallNs := time.Since(awaitStart).Nanoseconds()
			// A prefetched stream always starts at the block head; it
			// is only adoptable when the consumed position is there
			// too and the replica has not failed since.
			if err == nil && offset == blk.Offset && !r.exclude[loc.Storage] {
				// The open already happened under a "client.prefetch"
				// span; this span times draining the adopted stream.
				r.curSpan = r.fs.tracer.Start(r.reqID, r.span.ID(), "client.read_block")
				r.curSpan.AnnotateInt("block", int64(blk.Block.ID)).Annotate("prefetched", "true")
				r.curStart = r.pos
				// The record covers the consumer's critical path only:
				// the stall waiting for the background open, then the
				// drain. The hidden dial + handshake cost is on the
				// prefetch span and the worker-side record.
				r.curRec = &xfer.Record{
					Op:      "read",
					Source:  "client",
					Block:   uint64(blk.Block.ID),
					Tier:    loc.Tier.String(),
					Peer:    loc.Address,
					TraceID: r.reqID,
					SpanID:  r.curSpan.ID(),
					StallNs: stallNs,
				}
				r.curRecStart = awaitStart
				if ab, ok := rc.(interface{ AllocBytes() int64 }); ok {
					r.curRec.AllocBytes = ab.AllocBytes()
				}
				if ph, ok := rc.(interface{ PoolHit() bool }); ok {
					r.curRec.PoolHit = ph.PoolHit()
				}
				if stallNs > 0 {
					r.curSpan.AnnotateInt("stall_ns", stallNs)
				}
				r.adopt(blk, rc, loc)
				r.fillWindow(idx)
				return nil
			}
			if err == nil {
				rc.Close()
			}
		}
		defer r.fillWindow(idx)
	}
	within := offset - blk.Offset
	// One span covers the block read end to end: its ID rides the
	// transfer header so the serving worker's "worker.read" span links
	// under it, failovers included.
	bsp := r.fs.tracer.Start(r.reqID, r.span.ID(), "client.read_block")
	bsp.AnnotateInt("block", int64(blk.Block.ID)).Annotate("prefetched", "false")
	openStart := time.Now()
	var lastErr error
	failedOver := len(r.exclude) > 0
	for _, loc := range blk.Locations {
		if r.exclude[loc.Storage] {
			continue
		}
		// tm holds the winning attempt's open-phase split; failed
		// failover attempts still land in TotalNs via openStart.
		var tm rpc.TransferTiming
		rc, _, err := rpc.OpenBlockReaderTimed(loc.Address, blk.Block, loc.Storage, within, blk.Block.NumBytes-within, r.reqID, bsp.ID(), &tm)
		if err != nil {
			lastErr = err
			failedOver = true
			if errors.Is(err, core.ErrCorrupt) || errors.Is(err, core.ErrNotFound) {
				r.reportBad(blk.Block, loc)
			}
			continue
		}
		if failedOver {
			r.fs.metrics.failovers.Inc()
			bsp.Annotate("failover", "true")
		}
		r.curSpan, r.curStart = bsp, r.pos
		r.curRec = &xfer.Record{
			Op:             "read",
			Source:         "client",
			Block:          uint64(blk.Block.ID),
			Tier:           loc.Tier.String(),
			Peer:           loc.Address,
			TraceID:        r.reqID,
			SpanID:         bsp.ID(),
			DialNs:         tm.DialNs,
			HeaderEncodeNs: tm.HeaderEncodeNs,
			HeaderDecodeNs: tm.HeaderDecodeNs,
			PoolHit:        tm.PoolHit,
		}
		r.curRecStart = openStart
		if ab, ok := rc.(interface{ AllocBytes() int64 }); ok {
			r.curRec.AllocBytes = ab.AllocBytes()
		}
		r.adopt(blk, rc, loc)
		return nil
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("client: block %s has no live replicas: %w", blk.Block.ID, core.ErrNoWorkers)
	}
	bsp.SetError(lastErr)
	bsp.End()
	return lastErr
}

// adopt installs a replica stream as the current one. The stream's
// flight-recorder entry (r.curRec, when set) receives the socket time
// of every subsequent read.
func (r *Reader) adopt(blk *core.LocatedBlock, rc io.ReadCloser, loc core.BlockLocation) {
	r.cur = &corruptionReportingReader{rc: rc, r: r, block: blk.Block, loc: loc, rec: r.curRec}
	r.curEnd = blk.Offset + blk.Block.NumBytes
	r.curLoc = loc
}

// blockAt finds the located block containing the absolute offset and
// its index.
func (r *Reader) blockAt(offset int64) (*core.LocatedBlock, int) {
	for i := range r.blocks {
		b := &r.blocks[i]
		if offset >= b.Offset && offset < b.Offset+b.Block.NumBytes {
			return b, i
		}
	}
	return nil, -1
}

// reportBad tells the master a replica is corrupt or missing so
// re-replication can repair it (paper §5).
func (r *Reader) reportBad(b core.Block, loc core.BlockLocation) {
	r.fs.metrics.badReports.Inc()
	r.fs.callReq(r.reqID, "Master.ReportBadBlock", &master.ReportBadBlockArgs{
		Block: b, Storage: loc.Storage, Worker: loc.Worker,
	}, &master.ReportBadBlockReply{})
}

// Seek implements io.Seeker. Seeking cancels the readahead window; it
// refills from the new position on the next Read.
func (r *Reader) Seek(offset int64, whence int) (int64, error) {
	var target int64
	switch whence {
	case io.SeekStart:
		target = offset
	case io.SeekCurrent:
		target = r.pos + offset
	case io.SeekEnd:
		target = r.length + offset
	default:
		return 0, fmt.Errorf("client: invalid whence %d", whence)
	}
	if target < 0 {
		return 0, fmt.Errorf("client: negative seek position %d", target)
	}
	if r.cur != nil {
		r.cur.Close()
		r.cur = nil
	}
	r.endBlockSpan(nil)
	r.cancelWindow()
	r.pos = target
	return target, nil
}

// Close releases the reader and cancels any prefetched streams.
func (r *Reader) Close() error {
	if r.closed {
		return nil
	}
	r.closed = true
	r.cancelWindow()
	var err error
	if r.cur != nil {
		err = r.cur.Close()
		r.cur = nil
	}
	r.endBlockSpan(nil)
	r.span.End()
	r.fs.reportSpans(r.reqID)
	r.fs.reportTransfers()
	return err
}

// ReqID returns the request ID correlating all of this read's RPCs,
// transfers, and trace spans (it doubles as the trace ID).
func (r *Reader) ReqID() string { return r.reqID }

// prefetchedStream is one background block-open in the readahead
// window. The opening goroutine publishes its result under mu and
// closes done; cancellation closes an already-delivered stream and
// makes a late delivery close itself.
type prefetchedStream struct {
	idx  int
	done chan struct{}

	mu        sync.Mutex
	rc        io.ReadCloser
	loc       core.BlockLocation
	err       error
	cancelled bool
}

// await blocks until the open attempt finished and hands over the
// stream (or error). The caller owns the returned stream.
func (p *prefetchedStream) await() (io.ReadCloser, core.BlockLocation, error) {
	<-p.done
	p.mu.Lock()
	defer p.mu.Unlock()
	rc, loc, err := p.rc, p.loc, p.err
	p.rc = nil
	return rc, loc, err
}

// cancel discards the prefetch: a delivered stream is closed now, a
// late one is closed by the opening goroutine.
func (p *prefetchedStream) cancel() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.cancelled = true
	if p.rc != nil {
		p.rc.Close()
		p.rc = nil
	}
}

// deliver publishes the open result, closing the stream instead if
// the prefetch was cancelled meanwhile.
func (p *prefetchedStream) deliver(rc io.ReadCloser, loc core.BlockLocation, err error) {
	p.mu.Lock()
	if p.cancelled && rc != nil {
		rc.Close()
		rc = nil
	}
	p.rc, p.loc, p.err = rc, loc, err
	p.mu.Unlock()
	close(p.done)
}

// fillWindow ensures prefetches are running for the readahead blocks
// after idx.
func (r *Reader) fillWindow(idx int) {
	if r.readahead <= 0 {
		return
	}
	next := idx + 1
	if len(r.window) > 0 {
		next = r.window[len(r.window)-1].idx + 1
	}
	for ; next <= idx+r.readahead && next < len(r.blocks); next++ {
		entry := &prefetchedStream{idx: next, done: make(chan struct{})}
		r.window = append(r.window, entry)
		go r.prefetch(entry, r.blocks[next])
	}
}

// prefetch opens a replica stream for one upcoming block, trying
// locations in retrieval-policy order, and delivers the result.
func (r *Reader) prefetch(entry *prefetchedStream, blk core.LocatedBlock) {
	// The prefetch span times the background dial + handshake that
	// readahead hides from the consumer; the worker's "worker.read"
	// span for the stream links under it.
	psp := r.fs.tracer.Start(r.reqID, r.span.ID(), "client.prefetch")
	psp.AnnotateInt("block", int64(blk.Block.ID))
	var lastErr error
	for i, loc := range blk.Locations {
		rc, _, err := rpc.OpenBlockReaderSpan(loc.Address, blk.Block, loc.Storage, 0, blk.Block.NumBytes, r.reqID, psp.ID())
		if err != nil {
			lastErr = err
			continue
		}
		if i > 0 {
			r.fs.metrics.failovers.Inc()
			psp.Annotate("failover", "true")
		}
		r.fs.metrics.readaheadOpens.Inc()
		psp.End()
		entry.deliver(rc, loc, nil)
		return
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("client: block %s has no live replicas: %w", blk.Block.ID, core.ErrNoWorkers)
	}
	psp.SetError(lastErr)
	psp.End()
	entry.deliver(nil, core.BlockLocation{}, lastErr)
}

// takeWindow pops the window entry for block idx, if it is the head.
func (r *Reader) takeWindow(idx int) *prefetchedStream {
	if len(r.window) == 0 || r.window[0].idx != idx {
		return nil
	}
	entry := r.window[0]
	r.window = r.window[1:]
	return entry
}

// pruneWindow cancels window entries for blocks before idx (stale
// after a seek or a skipped range).
func (r *Reader) pruneWindow(idx int) {
	for len(r.window) > 0 && r.window[0].idx < idx {
		r.window[0].cancel()
		r.window = r.window[1:]
	}
}

// cancelWindow discards the whole readahead window.
func (r *Reader) cancelWindow() {
	for _, entry := range r.window {
		entry.cancel()
	}
	r.window = nil
}

// corruptionReportingReader wraps a block stream, reports checksum
// failures to the master as they surface mid-stream, and attributes
// socket wait to the stream's flight-recorder entry.
type corruptionReportingReader struct {
	rc    io.ReadCloser
	r     *Reader
	block core.Block
	loc   core.BlockLocation
	rec   *xfer.Record
}

func (c *corruptionReportingReader) Read(p []byte) (int, error) {
	start := time.Now()
	n, err := c.rc.Read(p)
	if c.rec != nil {
		c.rec.NetNs += time.Since(start).Nanoseconds()
	}
	if n > 0 {
		source := "remote"
		if string(c.loc.Worker) == c.r.fs.node {
			source = "local"
		}
		c.r.fs.metrics.readBytes.With(c.loc.Tier.String(), source).Add(float64(n))
	}
	if err != nil && errors.Is(err, core.ErrCorrupt) {
		c.r.reportBad(c.block, c.loc)
	}
	return n, err
}

func (c *corruptionReportingReader) Close() error { return c.rc.Close() }

var _ io.ReadSeekCloser = (*Reader)(nil)

// ioReadFull is io.ReadFull, indirected for fs.go's ReadFile.
func ioReadFull(r io.Reader, buf []byte) (int, error) { return io.ReadFull(r, buf) }
