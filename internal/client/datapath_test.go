package client

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math/rand"
	"net"
	netrpc "net/rpc"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/master"
	"repro/internal/rpc"
)

// The data-path tests run the real client against a stub master (a
// net/rpc server that enforces the namespace's block-commit rules)
// and a fake worker speaking the wire transfer protocol, with fault
// injection: aborted write streams, error acks, and replica streams
// that die mid-block.

// stubFile mirrors the master-side state of one file.
type stubFile struct {
	blocks    []core.Block // allocation order; NumBytes filled in on commit
	committed map[core.BlockID]bool
	sealed    bool
}

type stubMaster struct {
	mu        sync.Mutex
	blockSize int64
	nextID    int
	files     map[string]*stubFile
	locate    func(core.Block) []core.BlockLocation // replica locations per block
	deadAddrs int                                   // AddBlocks that point at an unreachable address

	abandonedBlocks []core.BlockID
	badReports      int
}

func (s *stubMaster) file(path string) *stubFile {
	f, ok := s.files[path]
	if !ok {
		f = &stubFile{committed: make(map[core.BlockID]bool)}
		s.files[path] = f
	}
	return f
}

func (s *stubMaster) Create(args *rpc.CreateArgs, _ *rpc.CreateReply) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.files[args.Path] = &stubFile{committed: make(map[core.BlockID]bool)}
	return nil
}

func (s *stubMaster) GetFileInfo(args *rpc.GetFileInfoArgs, reply *rpc.GetFileInfoReply) error {
	reply.Status = rpc.FileStatus{Path: args.Path, BlockSize: s.blockSize}
	return nil
}

func (s *stubMaster) AddBlock(args *rpc.AddBlockArgs, reply *rpc.AddBlockReply) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	f := s.file(args.Path)
	s.nextID++
	blk := core.Block{ID: core.BlockID(s.nextID), GenStamp: 1}
	f.blocks = append(f.blocks, blk)
	var offset int64
	for _, b := range f.blocks[:len(f.blocks)-1] {
		offset += b.NumBytes
	}
	locs := s.locate(blk)
	if s.deadAddrs > 0 {
		s.deadAddrs--
		locs = []core.BlockLocation{{Worker: "dead", Address: "127.0.0.1:1", Storage: "dead:s0", Tier: core.TierHDD}}
	}
	reply.Located = core.LocatedBlock{Block: blk, Offset: offset, Locations: locs}
	return nil
}

func (s *stubMaster) CommitBlock(args *rpc.CommitBlockArgs, _ *rpc.CommitBlockReply) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	f := s.file(args.Path)
	for i, b := range f.blocks {
		if b.ID == args.Block.ID {
			f.blocks[i] = args.Block
			f.committed[args.Block.ID] = true
			return nil
		}
	}
	return fmt.Errorf("commit of unknown block %d", args.Block.ID)
}

// AbandonBlock enforces the real namespace's rules: only the last
// block can be abandoned, and a committed block never can. A client
// regression that abandons the wrong (possibly durable) block fails
// loudly here.
func (s *stubMaster) AbandonBlock(args *rpc.AbandonBlockArgs, _ *rpc.AbandonBlockReply) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	f := s.file(args.Path)
	if f.committed[args.Block.ID] {
		return fmt.Errorf("abandoning committed block %d", args.Block.ID)
	}
	if len(f.blocks) == 0 || f.blocks[len(f.blocks)-1].ID != args.Block.ID {
		return fmt.Errorf("block %d is not the last block", args.Block.ID)
	}
	f.blocks = f.blocks[:len(f.blocks)-1]
	s.abandonedBlocks = append(s.abandonedBlocks, args.Block.ID)
	return nil
}

func (s *stubMaster) Complete(args *rpc.CompleteArgs, _ *rpc.CompleteReply) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	f := s.file(args.Path)
	if args.Last != nil {
		for i, b := range f.blocks {
			if b.ID == args.Last.ID {
				f.blocks[i] = *args.Last
				f.committed[args.Last.ID] = true
			}
		}
	}
	for _, b := range f.blocks {
		if !f.committed[b.ID] {
			return fmt.Errorf("complete with uncommitted block %d", b.ID)
		}
	}
	f.sealed = true
	return nil
}

func (s *stubMaster) Abandon(args *rpc.AbandonArgs, _ *rpc.AbandonReply) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.files, args.Path)
	return nil
}

func (s *stubMaster) GetBlockLocations(args *rpc.GetBlockLocationsArgs, reply *rpc.GetBlockLocationsReply) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	f := s.file(args.Path)
	var offset int64
	for _, b := range f.blocks {
		reply.Blocks = append(reply.Blocks, core.LocatedBlock{
			Block: b, Offset: offset, Locations: s.locate(b),
		})
		offset += b.NumBytes
	}
	reply.FileLength = offset
	return nil
}

func (s *stubMaster) ReportBadBlock(args *master.ReportBadBlockArgs, _ *master.ReportBadBlockReply) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.badReports++
	return nil
}

// fakeWorker speaks the data-transfer wire protocol with injectable
// faults.
type fakeWorker struct {
	ln net.Listener
	wg sync.WaitGroup

	mu           sync.Mutex
	blocks       map[core.BlockID][]byte
	abortWrites  int                     // write streams to sever mid-stream
	ackErrWrites int                     // write streams to accept fully, then nack
	dieReads     map[core.StorageID]bool // storages whose read streams die halfway
}

func newFakeWorker(t *testing.T) *fakeWorker {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	f := &fakeWorker{ln: ln, blocks: make(map[core.BlockID][]byte), dieReads: make(map[core.StorageID]bool)}
	f.wg.Add(1)
	go f.serve()
	t.Cleanup(func() {
		ln.Close()
		f.wg.Wait()
	})
	return f
}

func (f *fakeWorker) serve() {
	defer f.wg.Done()
	for {
		conn, err := f.ln.Accept()
		if err != nil {
			return
		}
		f.wg.Add(1)
		go func() {
			defer f.wg.Done()
			defer conn.Close()
			var op [1]byte
			if _, err := io.ReadFull(conn, op[:]); err != nil {
				return
			}
			switch op[0] {
			case rpc.OpWriteBlock:
				f.handleWrite(conn)
			case rpc.OpReadBlock:
				f.handleRead(conn)
			}
		}()
	}
}

func (f *fakeWorker) handleWrite(conn net.Conn) {
	var hdr rpc.WriteBlockHeader
	if err := rpc.ReadFrame(conn, &hdr); err != nil {
		return
	}
	f.mu.Lock()
	abort := f.abortWrites > 0
	if abort {
		f.abortWrites--
	}
	nack := false
	if !abort && f.ackErrWrites > 0 {
		f.ackErrWrites--
		nack = true
	}
	f.mu.Unlock()

	pr := rpc.NewPacketReader(conn)
	if abort {
		// Consume a little, then sever the connection mid-stream.
		io.CopyN(io.Discard, pr, 512)
		return
	}
	data, err := io.ReadAll(pr)
	if err != nil {
		return
	}
	if nack {
		rpc.WriteFrame(conn, rpc.WriteBlockAck{Err: rpc.EncodeError(fmt.Errorf("injected media failure"))})
		return
	}
	f.mu.Lock()
	f.blocks[hdr.Block.ID] = data
	f.mu.Unlock()
	rpc.WriteFrame(conn, rpc.WriteBlockAck{Stored: int64(len(data))})
}

func (f *fakeWorker) handleRead(conn net.Conn) {
	var hdr rpc.ReadBlockHeader
	if err := rpc.ReadFrame(conn, &hdr); err != nil {
		return
	}
	f.mu.Lock()
	data, ok := f.blocks[hdr.Block.ID]
	die := f.dieReads[hdr.Storage]
	f.mu.Unlock()
	if !ok {
		rpc.WriteFrame(conn, rpc.ReadBlockResponse{Err: rpc.EncodeError(core.ErrNotFound)})
		return
	}
	length := hdr.Length
	if length < 0 || hdr.Offset+length > int64(len(data)) {
		length = int64(len(data)) - hdr.Offset
	}
	if err := rpc.WriteFrame(conn, rpc.ReadBlockResponse{Length: length}); err != nil {
		return
	}
	if die {
		// Deliver half the range as one well-formed packet written
		// straight to the conn (the PacketWriter buffers), then sever
		// the connection without the end packet.
		chunk := data[hdr.Offset : hdr.Offset+length/2]
		var phdr [8]byte
		binary.BigEndian.PutUint32(phdr[0:4], uint32(len(chunk)))
		binary.BigEndian.PutUint32(phdr[4:8], crc32.Checksum(chunk, crc32.MakeTable(crc32.Castagnoli)))
		conn.Write(phdr[:])
		conn.Write(chunk)
		conn.Close()
		return
	}
	pw := rpc.NewPacketWriter(conn)
	if _, err := pw.Write(data[hdr.Offset : hdr.Offset+length]); err != nil {
		return
	}
	pw.Close()
}

// startStub wires a stub master + fake worker and returns a connected
// client. locations lists the replica storages tried in order; all
// point at the one fake worker.
func startStub(t *testing.T, blockSize int64, storages ...core.StorageID) (*FileSystem, *stubMaster, *fakeWorker) {
	t.Helper()
	if len(storages) == 0 {
		storages = []core.StorageID{"w1:s0"}
	}
	fw := newFakeWorker(t)
	sm := &stubMaster{blockSize: blockSize, files: make(map[string]*stubFile)}
	sm.locate = func(core.Block) []core.BlockLocation {
		locs := make([]core.BlockLocation, len(storages))
		for i, st := range storages {
			locs[i] = core.BlockLocation{Worker: "w1", Address: fw.ln.Addr().String(), Storage: st, Tier: core.TierHDD}
		}
		return locs
	}
	srv := netrpc.NewServer()
	if err := srv.RegisterName("Master", sm); err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go srv.ServeConn(conn)
		}
	}()
	t.Cleanup(func() { ln.Close() })
	fs, err := Dial(ln.Addr().String(), WithOwner("test"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fs.Close() })
	return fs, sm, fw
}

func testPattern(n int, seed int64) []byte {
	buf := make([]byte, n)
	rand.New(rand.NewSource(seed)).Read(buf)
	return buf
}

// writeReadBack writes data, closes, and verifies the read-back.
func writeReadBack(t *testing.T, fs *FileSystem, path string, data []byte) {
	t.Helper()
	w, err := fs.Create(path, CreateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write(data); err != nil {
		t.Fatalf("write: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	got, err := fs.ReadFile(path)
	if err != nil {
		t.Fatalf("read back: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("read back %d bytes, want %d, content mismatch", len(got), len(data))
	}
}

// TestWriterRetrySingleCountedBytes forces a mid-stream pipeline
// failure and asserts the retry replays the block without
// double-counting accepted bytes (the old path re-added the replay to
// the write-bytes counter and re-incremented written).
func TestWriterRetrySingleCountedBytes(t *testing.T) {
	const blockSize = 64 << 10
	fs, sm, fw := startStub(t, blockSize)
	fw.mu.Lock()
	fw.abortWrites = 1
	fw.mu.Unlock()

	data := testPattern(blockSize*3+blockSize/2, 1)
	writeReadBack(t, fs, "/f", data)

	stats := fs.DataPathStats()
	if stats.WriteBytes != float64(len(data)) {
		t.Errorf("writeBytes = %.0f, want %d (accepted bytes must be counted exactly once across retries)",
			stats.WriteBytes, len(data))
	}
	if stats.Retries < 1 {
		t.Errorf("retries = %.0f, want >= 1", stats.Retries)
	}
	sm.mu.Lock()
	f := sm.files["/f"]
	var total int64
	for _, b := range f.blocks {
		if !f.committed[b.ID] {
			t.Errorf("block %d left uncommitted", b.ID)
		}
		total += b.NumBytes
	}
	sealed := f.sealed
	sm.mu.Unlock()
	if total != int64(len(data)) {
		t.Errorf("committed %d bytes at master, want %d", total, len(data))
	}
	if !sealed {
		t.Error("file not sealed")
	}
}

// TestWriterOverlappedAckFailure nacks a pipeline ack while later
// blocks are already streaming under a write window, exercising the
// abandon-newest-first + replay-in-order recovery.
func TestWriterOverlappedAckFailure(t *testing.T) {
	const blockSize = 32 << 10
	fs, sm, fw := startStub(t, blockSize)
	fs.writeWindow = 2
	fw.mu.Lock()
	fw.ackErrWrites = 1
	fw.mu.Unlock()

	data := testPattern(blockSize*5+100, 2)
	writeReadBack(t, fs, "/f", data)

	stats := fs.DataPathStats()
	if stats.WriteBytes != float64(len(data)) {
		t.Errorf("writeBytes = %.0f, want %d", stats.WriteBytes, len(data))
	}
	if stats.Retries < 1 {
		t.Errorf("retries = %.0f, want >= 1", stats.Retries)
	}
	sm.mu.Lock()
	sealed := sm.files["/f"].sealed
	sm.mu.Unlock()
	if !sealed {
		t.Error("file not sealed")
	}
}

// TestWriterAllocFailureAbandonsOnlyFreshBlock makes the second
// AddBlock return an unreachable pipeline: the writer must abandon
// only that fresh allocation — never the committed first block, which
// the old retry path dropped via the stale curBlock field (the stub
// master rejects such an abandon, failing the write).
func TestWriterAllocFailureAbandonsOnlyFreshBlock(t *testing.T) {
	const blockSize = 16 << 10
	fs, sm, _ := startStub(t, blockSize)

	w, err := fs.Create("/f", CreateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	data := testPattern(blockSize*2, 3)
	// Fill exactly one block so it flushes, acks, and commits.
	if _, err := w.Write(data[:blockSize]); err != nil {
		t.Fatal(err)
	}
	sm.mu.Lock()
	sm.deadAddrs = 1
	sm.mu.Unlock()
	if _, err := w.Write(data[blockSize:]); err != nil {
		t.Fatalf("write after dead allocation: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	got, err := fs.ReadFile("/f")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("read back mismatch (err=%v)", err)
	}
	sm.mu.Lock()
	defer sm.mu.Unlock()
	for _, id := range sm.abandonedBlocks {
		if sm.files["/f"].committed[id] {
			t.Errorf("abandoned block %d is committed", id)
		}
	}
	if len(sm.abandonedBlocks) == 0 {
		t.Error("dead allocation was never abandoned")
	}
}

// TestReaderReadaheadSequential streams a multi-block file through
// the prefetch window and checks content and that readahead actually
// opened streams in the background.
func TestReaderReadaheadSequential(t *testing.T) {
	const blockSize = 16 << 10
	fs, _, _ := startStub(t, blockSize)
	data := testPattern(blockSize*6+50, 4)
	writeReadBack(t, fs, "/f", data)

	fs.readahead = 3
	got, err := fs.ReadFile("/f")
	if err != nil {
		t.Fatalf("readahead read: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("readahead read content mismatch")
	}
	if stats := fs.DataPathStats(); stats.ReadaheadOpens < 1 {
		t.Errorf("readaheadOpens = %.0f, want >= 1", stats.ReadaheadOpens)
	}
}

// TestReaderMidStreamFailover kills the first replica's stream
// halfway through every block: the reader must resume at the current
// position on the second replica, excluding the dead one, without
// surfacing an error — with and without readahead.
func TestReaderMidStreamFailover(t *testing.T) {
	for _, readahead := range []int{0, 2} {
		t.Run(fmt.Sprintf("readahead=%d", readahead), func(t *testing.T) {
			const blockSize = 16 << 10
			fs, _, fw := startStub(t, blockSize, "w1:bad", "w1:good")
			data := testPattern(blockSize*4, 5)
			writeReadBack(t, fs, "/f", data)

			fw.mu.Lock()
			fw.dieReads["w1:bad"] = true
			fw.mu.Unlock()

			fs.readahead = readahead
			got, err := fs.ReadFile("/f")
			if err != nil {
				t.Fatalf("read with dying replica: %v", err)
			}
			if !bytes.Equal(got, data) {
				t.Fatal("failover read content mismatch")
			}
			if stats := fs.DataPathStats(); stats.Failovers < 1 {
				t.Errorf("failovers = %.0f, want >= 1", stats.Failovers)
			}
		})
	}
}

// TestReaderSeekCancelsReadahead seeks around a prefetching reader
// and verifies positions stay correct.
func TestReaderSeekCancelsReadahead(t *testing.T) {
	const blockSize = 16 << 10
	fs, _, _ := startStub(t, blockSize)
	data := testPattern(blockSize*5, 6)
	writeReadBack(t, fs, "/f", data)

	fs.readahead = 2
	r, err := fs.Open("/f")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	buf := make([]byte, blockSize)
	if _, err := io.ReadFull(r, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, data[:blockSize]) {
		t.Fatal("first block mismatch")
	}
	// Jump backwards to a mid-block offset, then forwards.
	for _, off := range []int64{100, int64(blockSize)*3 + 7, 0, int64(blockSize) * 4} {
		if _, err := r.Seek(off, io.SeekStart); err != nil {
			t.Fatal(err)
		}
		if _, err := io.ReadFull(r, buf[:512]); err != nil {
			t.Fatalf("read at %d: %v", off, err)
		}
		if !bytes.Equal(buf[:512], data[off:off+512]) {
			t.Fatalf("content mismatch at offset %d", off)
		}
	}
}
