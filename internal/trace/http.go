package trace

import (
	"net/http"
	"strings"

	"repro/internal/httpjson"
)

// RegisterDebugHandlers mounts a trace store on mux at /debug/traces
// (JSON list of retained traces, newest first) and
// /debug/traces/<traceID> (the trace's spans as JSON). fetch, when
// non-nil, overrides single-trace lookup — the master passes its
// cluster-assembly fan-out so the endpoint serves merged timelines;
// workers pass nil and serve their local store.
func RegisterDebugHandlers(mux *http.ServeMux, store *Store, fetch func(traceID string) ([]Span, error)) {
	mux.HandleFunc("/debug/traces", func(w http.ResponseWriter, r *http.Request) {
		list := store.List()
		if list == nil {
			list = []Summary{}
		}
		httpjson.Write(w, list)
	})
	mux.HandleFunc("/debug/traces/", func(w http.ResponseWriter, r *http.Request) {
		id := strings.TrimPrefix(r.URL.Path, "/debug/traces/")
		if id == "" || strings.Contains(id, "/") {
			http.NotFound(w, r)
			return
		}
		var spans []Span
		if fetch != nil {
			spans, _ = fetch(id)
		}
		if len(spans) == 0 {
			spans = store.Get(id)
		}
		if len(spans) == 0 {
			http.Error(w, "trace not retained: "+id, http.StatusNotFound)
			return
		}
		httpjson.Write(w, spans)
	})
}
