package trace

import (
	"hash/fnv"
	"sort"
	"sync"
	"time"
)

const (
	// DefaultCapacity bounds the number of traces a Store retains.
	DefaultCapacity = 512
	// DefaultSample is the fraction of non-slow traces retained when
	// the configured sample rate is zero.
	DefaultSample = 0.1
	// maxSpansPerTrace caps one trace's span list so a pathological
	// request cannot consume the store by itself; further spans are
	// counted in Summary.Dropped.
	maxSpansPerTrace = 512
)

// Store is a bounded in-memory trace store. Retention follows the
// slow-op semantics of metrics.SlowLogger: traces containing a span
// at or above the slow threshold are always kept (a positive
// threshold; zero marks every trace slow; negative marks none), plus
// a deterministically sampled fraction of the rest. Sampling hashes
// the trace ID so every daemon in the cluster keeps or drops the
// same traces, which is what makes cross-daemon assembly work at
// sample rates below 1.0.
//
// Eviction beyond capacity removes the oldest non-slow trace first,
// falling back to the oldest overall, so slow traces survive churn
// while sampled-in fast traces age out.
type Store struct {
	mu       sync.Mutex
	capacity int
	slow     time.Duration
	sample   float64
	traces   map[string]*traceEntry
	order    []string // insertion order, oldest first
}

type traceEntry struct {
	spans   []Span
	slow    bool
	dropped int
}

// NewStore builds a Store keeping up to capacity traces (0 means
// DefaultCapacity). slowThreshold shares metrics.SlowLogger's
// semantics; sample is the keep-fraction for non-slow traces (0
// means DefaultSample, negative keeps only slow traces).
func NewStore(capacity int, slowThreshold time.Duration, sample float64) *Store {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	if sample == 0 {
		sample = DefaultSample
	}
	if sample < 0 {
		sample = 0
	}
	if sample > 1 {
		sample = 1
	}
	return &Store{
		capacity: capacity,
		slow:     slowThreshold,
		sample:   sample,
		traces:   make(map[string]*traceEntry),
	}
}

// isSlow mirrors metrics.SlowLogger: threshold zero marks everything
// slow, negative nothing, positive compares the span duration.
func (s *Store) isSlow(sp Span) bool {
	if s.slow < 0 {
		return false
	}
	if s.slow == 0 {
		return true
	}
	return sp.Duration() >= s.slow
}

// Sampled reports whether traceID falls into the store's
// deterministic sample. All stores configured with the same rate
// agree on the answer regardless of daemon.
func (s *Store) Sampled(traceID string) bool {
	if s.sample >= 1 {
		return true
	}
	if s.sample <= 0 {
		return false
	}
	h := fnv.New64a()
	h.Write([]byte(traceID))
	return h.Sum64()%10000 < uint64(s.sample*10000)
}

// Add records a finished span. Nil stores discard silently.
func (s *Store) Add(sp Span) {
	if s == nil || sp.TraceID == "" {
		return
	}
	slow := s.isSlow(sp)
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.traces[sp.TraceID]
	if !ok {
		// Admit a new trace only if this span is slow or the trace is
		// sampled in; later slow spans of a sampled-out trace still
		// admit it (tail sampling — its early fast spans are lost).
		if !slow && !s.Sampled(sp.TraceID) {
			return
		}
		e = &traceEntry{}
		s.traces[sp.TraceID] = e
		s.order = append(s.order, sp.TraceID)
	}
	if slow {
		e.slow = true
	}
	if len(e.spans) >= maxSpansPerTrace {
		e.dropped++
		return
	}
	e.spans = append(e.spans, sp)
	s.evictLocked()
}

// evictLocked enforces capacity, preferring the oldest non-slow
// trace; if every trace is slow the oldest overall goes.
func (s *Store) evictLocked() {
	for len(s.order) > s.capacity {
		victim := -1
		for i, id := range s.order {
			if !s.traces[id].slow {
				victim = i
				break
			}
		}
		if victim < 0 {
			victim = 0
		}
		delete(s.traces, s.order[victim])
		s.order = append(s.order[:victim:victim], s.order[victim+1:]...)
	}
}

// Get returns a copy of the trace's spans sorted by start time, or
// nil if the trace is not retained.
func (s *Store) Get(traceID string) []Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	e, ok := s.traces[traceID]
	if !ok {
		s.mu.Unlock()
		return nil
	}
	spans := make([]Span, len(e.spans))
	copy(spans, e.spans)
	s.mu.Unlock()
	SortSpans(spans)
	return spans
}

// Len returns the number of retained traces.
func (s *Store) Len() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.traces)
}

// Summary describes one retained trace for the /debug/traces list.
type Summary struct {
	TraceID  string `json:"trace_id"`
	Root     string `json:"root"`
	Start    int64  `json:"start"`
	Duration int64  `json:"duration_ns"`
	Spans    int    `json:"spans"`
	Slow     bool   `json:"slow"`
	Dropped  int    `json:"dropped,omitempty"`
}

// List summarises retained traces, newest first.
func (s *Store) List() []Summary {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Summary, 0, len(s.order))
	for i := len(s.order) - 1; i >= 0; i-- {
		id := s.order[i]
		e := s.traces[id]
		sum := Summary{TraceID: id, Spans: len(e.spans), Slow: e.slow, Dropped: e.dropped}
		var minStart, maxEnd int64
		for _, sp := range e.spans {
			if minStart == 0 || sp.Start < minStart {
				minStart = sp.Start
				sum.Root = sp.Op
			}
			if sp.End > maxEnd {
				maxEnd = sp.End
			}
			// Prefer a true root's op name when one is present.
			if sp.ParentID == "" && sum.Root != sp.Op && sp.Start == minStart {
				sum.Root = sp.Op
			}
		}
		sum.Start = minStart
		if maxEnd > minStart {
			sum.Duration = maxEnd - minStart
		}
		out = append(out, sum)
	}
	return out
}

// SortSpans orders spans by start time, then span ID for stability.
func SortSpans(spans []Span) {
	sort.Slice(spans, func(i, j int) bool {
		if spans[i].Start != spans[j].Start {
			return spans[i].Start < spans[j].Start
		}
		return spans[i].SpanID < spans[j].SpanID
	})
}

// Merge combines span sets from several daemons into one sorted
// timeline, dropping duplicate span IDs (a span can surface both
// from a daemon's own store and from a client report).
func Merge(sets ...[]Span) []Span {
	seen := make(map[string]bool)
	var out []Span
	for _, set := range sets {
		for _, sp := range set {
			if sp.SpanID != "" && seen[sp.SpanID] {
				continue
			}
			seen[sp.SpanID] = true
			out = append(out, sp)
		}
	}
	SortSpans(out)
	return out
}
