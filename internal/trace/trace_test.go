package trace

import (
	"errors"
	"fmt"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

func span(traceID, spanID, parentID, op string, start, end int64) Span {
	return Span{TraceID: traceID, SpanID: spanID, ParentID: parentID,
		Service: "test", Op: op, Start: start, End: end}
}

func TestNewSpanID(t *testing.T) {
	hex16 := regexp.MustCompile(`^[0-9a-f]{16}$`)
	seen := make(map[string]bool)
	for i := 0; i < 100; i++ {
		id := NewSpanID()
		if !hex16.MatchString(id) {
			t.Fatalf("span ID %q not 16-hex", id)
		}
		if seen[id] {
			t.Fatalf("duplicate span ID %q", id)
		}
		seen[id] = true
	}
}

func TestTracerRecordsSpan(t *testing.T) {
	st := NewStore(0, 0, 1.0)
	tr := NewTracer("client", st)
	sp := tr.Start("trace1", "", "client.write")
	sp.Annotate("path", "/f").AnnotateInt("bytes", 42)
	sp.SetError(errors.New("boom"))
	child := tr.Start("trace1", sp.ID(), "client.rpc.Create")
	child.End()
	sp.End()
	sp.End() // idempotent

	got := st.Get("trace1")
	if len(got) != 2 {
		t.Fatalf("got %d spans, want 2", len(got))
	}
	root := got[0]
	if root.Op != "client.write" || root.Service != "client" {
		t.Errorf("root span = %+v", root)
	}
	if root.Attrs["path"] != "/f" || root.Attrs["bytes"] != "42" {
		t.Errorf("annotations = %v", root.Attrs)
	}
	if root.Error != "boom" {
		t.Errorf("error = %q", root.Error)
	}
	if got[1].ParentID != root.SpanID {
		t.Errorf("child parent = %q, want %q", got[1].ParentID, root.SpanID)
	}
	if root.End < root.Start {
		t.Errorf("span end %d before start %d", root.End, root.Start)
	}
}

func TestNilTracerAndSpanAreSafe(t *testing.T) {
	var tr *Tracer
	sp := tr.Start("id", "", "op")
	if sp != nil {
		t.Fatal("nil tracer produced a span")
	}
	// All methods on a nil span must be no-ops.
	sp.Annotate("k", "v").AnnotateInt("n", 1)
	sp.SetError(errors.New("x"))
	sp.End()
	if sp.ID() != "" || sp.TraceID() != "" {
		t.Error("nil span has identity")
	}
	// A tracer with a store but empty trace ID also yields nil.
	if s := NewTracer("x", NewStore(0, 0, 1)).Start("", "", "op"); s != nil {
		t.Error("empty trace ID produced a span")
	}
	var st *Store
	st.Add(Span{TraceID: "x"})
	if st.Get("x") != nil || st.Len() != 0 || st.List() != nil {
		t.Error("nil store not inert")
	}
}

func TestStoreSlowRetentionSurvivesEviction(t *testing.T) {
	// threshold 1ms, sample 1.0 so fast traces are admitted but
	// evictable; slow traces must survive arbitrary churn.
	st := NewStore(4, time.Millisecond, 1.0)
	slowEnd := int64(2 * time.Millisecond)
	st.Add(span("slow1", "s1", "", "op", 0, slowEnd))
	for i := 0; i < 50; i++ {
		id := fmt.Sprintf("fast%d", i)
		st.Add(span(id, "f", "", "op", 0, 10)) // 10ns: fast
	}
	if st.Get("slow1") == nil {
		t.Fatal("slow trace evicted by fast churn")
	}
	if st.Len() > 4 {
		t.Fatalf("store holds %d traces, capacity 4", st.Len())
	}
	// The earliest fast traces must be gone.
	if st.Get("fast0") != nil {
		t.Error("oldest fast trace survived eviction")
	}
}

func TestStoreSampledOutFastTracesDropped(t *testing.T) {
	// sample < 0 (normalised to 0) keeps only slow traces.
	st := NewStore(8, time.Millisecond, -1)
	st.Add(span("fast", "f", "", "op", 0, 10))
	if st.Get("fast") != nil {
		t.Fatal("sampled-out fast trace retained")
	}
	st.Add(span("slow", "s", "", "op", 0, int64(time.Second)))
	if st.Get("slow") == nil {
		t.Fatal("slow trace dropped despite zero sample")
	}
	// A later slow span admits a previously rejected trace (tail
	// sampling) and marks it slow.
	st.Add(span("fast", "f2", "", "op2", 0, int64(time.Second)))
	if st.Get("fast") == nil {
		t.Fatal("late slow span did not admit trace")
	}
}

func TestStoreSamplingDeterministic(t *testing.T) {
	a := NewStore(0, -1, 0.5) // slow disabled: sampling decides alone
	b := NewStore(0, -1, 0.5)
	var kept, dropped int
	for i := 0; i < 200; i++ {
		id := fmt.Sprintf("%016x", i*2654435761)
		if a.Sampled(id) != b.Sampled(id) {
			t.Fatalf("stores disagree on %s", id)
		}
		if a.Sampled(id) {
			kept++
		} else {
			dropped++
		}
	}
	if kept == 0 || dropped == 0 {
		t.Fatalf("degenerate sampling: kept=%d dropped=%d", kept, dropped)
	}
}

func TestStoreZeroThresholdKeepsEverything(t *testing.T) {
	// Threshold 0 mirrors SlowLogger: every op is slow, so even with
	// a negative sample every trace is retained (bounded FIFO).
	st := NewStore(4, 0, -1)
	for i := 0; i < 10; i++ {
		st.Add(span(fmt.Sprintf("t%d", i), "s", "", "op", 0, 1))
	}
	if st.Len() != 4 {
		t.Fatalf("len = %d, want capacity 4", st.Len())
	}
	if st.Get("t9") == nil || st.Get("t0") != nil {
		t.Error("all-slow eviction should drop oldest overall")
	}
}

func TestStorePerTraceSpanCap(t *testing.T) {
	st := NewStore(0, 0, 1)
	for i := 0; i < maxSpansPerTrace+25; i++ {
		st.Add(span("big", fmt.Sprintf("s%d", i), "", "op", int64(i), int64(i+1)))
	}
	if got := len(st.Get("big")); got != maxSpansPerTrace {
		t.Fatalf("stored %d spans, want cap %d", got, maxSpansPerTrace)
	}
	list := st.List()
	if len(list) != 1 || list[0].Dropped != 25 {
		t.Fatalf("summary = %+v, want 25 dropped", list)
	}
}

func TestStoreList(t *testing.T) {
	st := NewStore(0, time.Millisecond, 1)
	st.Add(span("t1", "a", "", "client.write", 100, 200))
	st.Add(span("t1", "b", "a", "master.create", 110, 150))
	st.Add(span("t2", "c", "", "client.open", 300, int64(time.Second)))
	list := st.List()
	if len(list) != 2 {
		t.Fatalf("list len = %d", len(list))
	}
	// Newest first.
	if list[0].TraceID != "t2" || !list[0].Slow {
		t.Errorf("list[0] = %+v, want slow t2", list[0])
	}
	if list[1].TraceID != "t1" || list[1].Root != "client.write" ||
		list[1].Spans != 2 || list[1].Duration != 100 {
		t.Errorf("list[1] = %+v", list[1])
	}
}

func TestMergeDeduplicates(t *testing.T) {
	a := []Span{span("t", "s1", "", "root", 0, 100)}
	b := []Span{span("t", "s1", "", "root", 0, 100), span("t", "s2", "s1", "child", 10, 20)}
	merged := Merge(a, b)
	if len(merged) != 2 {
		t.Fatalf("merged %d spans, want 2", len(merged))
	}
	if merged[0].SpanID != "s1" || merged[1].SpanID != "s2" {
		t.Errorf("merge order: %+v", merged)
	}
}

func TestRenderTree(t *testing.T) {
	root := span("t", "r", "", "client.write", 0, int64(3*time.Millisecond))
	rpcSpan := span("t", "m", "r", "master.create", int64(time.Millisecond), int64(2*time.Millisecond))
	wk := span("t", "w", "m", "worker.write", int64(time.Millisecond), int64(2*time.Millisecond))
	wk.Attrs = map[string]string{"tier": "ssd", "bytes": "4096"}
	orphan := span("t", "o", "missing-parent", "worker.read", int64(2*time.Millisecond), int64(3*time.Millisecond))
	orphan.Error = "gone"

	var b strings.Builder
	if err := RenderTree(&b, []Span{wk, orphan, root, rpcSpan}); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("rendered %d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "client.write 3ms (test)") {
		t.Errorf("root line = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "  master.create") {
		t.Errorf("child not indented: %q", lines[1])
	}
	if !strings.HasPrefix(lines[2], "    worker.write") ||
		!strings.Contains(lines[2], "bytes=4096 tier=ssd") {
		t.Errorf("grandchild line = %q", lines[2])
	}
	// Orphan renders as a root with its error.
	if strings.HasPrefix(lines[3], " ") || !strings.Contains(lines[3], "[ERROR: gone]") {
		t.Errorf("orphan line = %q", lines[3])
	}

	var empty strings.Builder
	if err := RenderTree(&empty, nil); err != nil || !strings.Contains(empty.String(), "no spans") {
		t.Errorf("empty render = %q, %v", empty.String(), err)
	}
}

// TestStoreBoundedUnderChurn hammers a store from many goroutines
// (run under -race in CI) and asserts the trace count stays bounded.
func TestStoreBoundedUnderChurn(t *testing.T) {
	st := NewStore(64, time.Millisecond, 0.5)
	tr := NewTracer("churn", st)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				id := fmt.Sprintf("%08x%08x", g, i)
				sp := tr.Start(id, "", "op")
				sp.AnnotateInt("i", int64(i))
				sp.End()
				st.Get(id)
				if i%100 == 0 {
					st.List()
				}
			}
		}(g)
	}
	wg.Wait()
	if st.Len() > 64 {
		t.Fatalf("store grew to %d traces, capacity 64", st.Len())
	}
}
