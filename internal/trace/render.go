package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// RenderTree writes the spans of one trace as an indented tree with
// per-span durations. Spans whose parent is absent from the set
// (e.g. lost to sampling on another daemon) render as roots, so a
// partial trace still produces a readable timeline.
func RenderTree(w io.Writer, spans []Span) error {
	if len(spans) == 0 {
		_, err := fmt.Fprintln(w, "(no spans)")
		return err
	}
	byID := make(map[string]Span, len(spans))
	children := make(map[string][]Span)
	for _, sp := range spans {
		byID[sp.SpanID] = sp
	}
	var roots []Span
	for _, sp := range spans {
		if sp.ParentID != "" {
			if _, ok := byID[sp.ParentID]; ok {
				children[sp.ParentID] = append(children[sp.ParentID], sp)
				continue
			}
		}
		roots = append(roots, sp)
	}
	sortByStart := func(s []Span) {
		sort.Slice(s, func(i, j int) bool {
			if s[i].Start != s[j].Start {
				return s[i].Start < s[j].Start
			}
			return s[i].SpanID < s[j].SpanID
		})
	}
	sortByStart(roots)
	for _, c := range children {
		sortByStart(c)
	}
	var render func(sp Span, depth int) error
	render = func(sp Span, depth int) error {
		if _, err := fmt.Fprintln(w, renderLine(sp, depth)); err != nil {
			return err
		}
		for _, c := range children[sp.SpanID] {
			if err := render(c, depth+1); err != nil {
				return err
			}
		}
		return nil
	}
	for _, r := range roots {
		if err := render(r, 0); err != nil {
			return err
		}
	}
	return nil
}

func renderLine(sp Span, depth int) string {
	var b strings.Builder
	b.WriteString(strings.Repeat("  ", depth))
	fmt.Fprintf(&b, "%s %s (%s)", sp.Op, sp.Duration().Round(time.Microsecond), sp.Service)
	for _, k := range sortedKeys(sp.Attrs) {
		fmt.Fprintf(&b, " %s=%s", k, sp.Attrs[k])
	}
	if sp.Error != "" {
		fmt.Fprintf(&b, " [ERROR: %s]", sp.Error)
	}
	return b.String()
}

func sortedKeys(m map[string]string) []string {
	if len(m) == 0 {
		return nil
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
