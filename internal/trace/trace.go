// Package trace implements lightweight distributed tracing for
// OctopusFS. A trace is identified by the 16-hex request ID that
// already flows through every RPC and data-transfer header (PR 1);
// each daemon records its own spans into a bounded in-memory Store
// and the master assembles the cross-daemon timeline on demand.
//
// The package depends only on the standard library so every layer
// (rpc, client, master, worker) can import it without cycles.
package trace

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Span is one timed operation within a trace. Start and End are
// UnixNano timestamps so spans serialise compactly over gob and JSON
// and merge across daemons without clock-format ambiguity.
type Span struct {
	TraceID  string            `json:"trace_id"`
	SpanID   string            `json:"span_id"`
	ParentID string            `json:"parent_id,omitempty"`
	Service  string            `json:"service"`
	Op       string            `json:"op"`
	Start    int64             `json:"start"`
	End      int64             `json:"end"`
	Error    string            `json:"error,omitempty"`
	Attrs    map[string]string `json:"attrs,omitempty"`
}

// Duration returns the span's elapsed time.
func (s Span) Duration() time.Duration {
	return time.Duration(s.End - s.Start)
}

var spanFallback atomic.Uint64

// NewSpanID returns a 16-hex span identifier, mirroring
// rpc.NewRequestID: crypto/rand with a counter fallback so span
// creation never fails.
func NewSpanID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return fmt.Sprintf("%016x", spanFallback.Add(1))
	}
	return hex.EncodeToString(b[:])
}

// Tracer creates spans on behalf of one daemon ("client", "master",
// "worker") and records them into its Store. A nil Tracer is valid
// and produces nil (no-op) spans.
type Tracer struct {
	service string
	store   *Store
}

// NewTracer returns a Tracer recording spans for service into store.
func NewTracer(service string, store *Store) *Tracer {
	return &Tracer{service: service, store: store}
}

// Store returns the tracer's backing span store.
func (t *Tracer) Store() *Store {
	if t == nil {
		return nil
	}
	return t.store
}

// Start begins a span. It returns nil — a valid no-op span — when the
// tracer is nil, has no store, or traceID is empty, so call sites
// never need to guard.
func (t *Tracer) Start(traceID, parentID, op string) *ActiveSpan {
	if t == nil || t.store == nil || traceID == "" {
		return nil
	}
	return &ActiveSpan{
		store: t.store,
		span: Span{
			TraceID:  traceID,
			SpanID:   NewSpanID(),
			ParentID: parentID,
			Service:  t.service,
			Op:       op,
			Start:    time.Now().UnixNano(),
		},
	}
}

// ActiveSpan is an in-progress span. All methods are safe on a nil
// receiver and safe for concurrent use; End is idempotent and records
// the finished span into the store.
type ActiveSpan struct {
	mu    sync.Mutex
	store *Store
	span  Span
	done  bool
}

// ID returns the span's ID, or "" for a nil span.
func (a *ActiveSpan) ID() string {
	if a == nil {
		return ""
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.span.SpanID
}

// TraceID returns the trace this span belongs to, or "" for nil.
func (a *ActiveSpan) TraceID() string {
	if a == nil {
		return ""
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.span.TraceID
}

// Annotate attaches a key/value annotation and returns the span for
// chaining.
func (a *ActiveSpan) Annotate(key, value string) *ActiveSpan {
	if a == nil {
		return nil
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.span.Attrs == nil {
		a.span.Attrs = make(map[string]string, 4)
	}
	a.span.Attrs[key] = value
	return a
}

// AnnotateInt attaches an integer annotation.
func (a *ActiveSpan) AnnotateInt(key string, value int64) *ActiveSpan {
	return a.Annotate(key, fmt.Sprint(value))
}

// SetError records the span's failure status.
func (a *ActiveSpan) SetError(err error) {
	if a == nil || err == nil {
		return
	}
	a.mu.Lock()
	a.span.Error = err.Error()
	a.mu.Unlock()
}

// End finishes the span and records it into the store. Only the
// first call has effect.
func (a *ActiveSpan) End() {
	if a == nil {
		return
	}
	a.mu.Lock()
	if a.done {
		a.mu.Unlock()
		return
	}
	a.done = true
	a.span.End = time.Now().UnixNano()
	sp := a.span
	store := a.store
	a.mu.Unlock()
	if store != nil {
		store.Add(sp)
	}
}
