package metrics

import (
	"log/slog"
	"time"
)

// SlowLogger emits one structured log line per operation that takes at
// least a threshold duration, carrying the request ID so a client
// operation can be correlated across master and worker logs.
//
// Threshold semantics:
//
//	> 0  log operations at or above the threshold
//	== 0 log every operation (forced logging, used by tests)
//	< 0  never log
type SlowLogger struct {
	logger    *slog.Logger
	threshold time.Duration
	count     *Counter // incremented per emitted line; may be nil
	sink      func(op, reqID string, d time.Duration)
}

// NewSlowLogger builds a slow-op logger. A nil logger disables logging
// regardless of threshold; count (optional) tallies emitted lines.
func NewSlowLogger(logger *slog.Logger, threshold time.Duration, count *Counter) *SlowLogger {
	return &SlowLogger{logger: logger, threshold: threshold, count: count}
}

// SetSink registers a callback invoked for every operation that the
// logger emits (same threshold semantics as the log line). The daemons
// use it to journal slow operations as cluster events with their trace
// ID. Set once during daemon construction, before concurrent use.
func (l *SlowLogger) SetSink(fn func(op, reqID string, d time.Duration)) {
	if l == nil {
		return
	}
	l.sink = fn
}

// Threshold returns the configured slow threshold, so subsystems that
// share the slow-op semantics (e.g. the trace store's retention
// policy) use the same boundary.
func (l *SlowLogger) Threshold() time.Duration {
	if l == nil {
		return -1
	}
	return l.threshold
}

// Observe logs the operation if it crossed the threshold. attrs are
// extra slog key/value pairs appended to the line.
func (l *SlowLogger) Observe(op, reqID string, d time.Duration, attrs ...any) {
	if l == nil || l.logger == nil || l.threshold < 0 {
		return
	}
	// Explicit zero-threshold case: "0 logs every op" is documented
	// behaviour, not an accident of d < 0 being impossible.
	if l.threshold > 0 && d < l.threshold {
		return
	}
	if l.count != nil {
		l.count.Inc()
	}
	if l.sink != nil {
		l.sink(op, reqID, d)
	}
	all := make([]any, 0, 8+len(attrs))
	all = append(all, "op", op, "req", reqID, "dur", d.String())
	all = append(all, attrs...)
	// The request ID doubles as the trace ID; emit it under an explicit
	// "trace" key so log pipelines can join slow-op lines with
	// /debug/traces/<id> without knowing the req/trace equivalence.
	all = append(all, "trace", reqID)
	l.logger.Warn("slow op", all...)
}
