package metrics

import (
	"runtime"
	"sync"
	"time"
)

// memSampler caches runtime.ReadMemStats so the several GaugeFuncs a
// daemon registers don't each trigger a stop-the-world per scrape.
type memSampler struct {
	mu   sync.Mutex
	at   time.Time
	stat runtime.MemStats
}

func (s *memSampler) read() runtime.MemStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	if time.Since(s.at) > time.Second {
		runtime.ReadMemStats(&s.stat)
		s.at = time.Now()
	}
	return s.stat
}

// RegisterRuntimeGauges adds Go runtime health gauges to a daemon's
// registry under the given metric prefix (e.g. "octopus_master"):
// goroutine count, heap in-use bytes, cumulative GC pause seconds,
// and process uptime since started. Values refresh on scrape; the
// memory stats are sampled at most once per second.
func RegisterRuntimeGauges(r *Registry, prefix string, started time.Time) {
	s := &memSampler{}
	r.GaugeFunc(prefix+"_goroutines", "Number of live goroutines.", nil,
		func() float64 { return float64(runtime.NumGoroutine()) })
	r.GaugeFunc(prefix+"_heap_inuse_bytes", "Bytes in in-use heap spans.", nil,
		func() float64 { return float64(s.read().HeapInuse) })
	r.GaugeFunc(prefix+"_gc_pause_seconds_total", "Cumulative GC stop-the-world pause time.", nil,
		func() float64 { return float64(s.read().PauseTotalNs) / 1e9 })
	r.GaugeFunc(prefix+"_uptime_seconds", "Seconds since the daemon started.", nil,
		func() float64 { return time.Since(started).Seconds() })
}
