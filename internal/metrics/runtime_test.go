package metrics

import (
	"math"
	"strconv"
	"strings"
	"testing"
	"time"
)

func TestRegisterRuntimeGauges(t *testing.T) {
	r := NewRegistry()
	RegisterRuntimeGauges(r, "octopus_test", time.Now().Add(-3*time.Second))

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, name := range []string{
		"octopus_test_goroutines",
		"octopus_test_heap_inuse_bytes",
		"octopus_test_gc_pause_seconds_total",
		"octopus_test_uptime_seconds",
	} {
		if !strings.Contains(out, "# TYPE "+name+" gauge") {
			t.Errorf("exposition missing gauge %s:\n%s", name, out)
		}
	}
	// Values must be sampled live: a process always has goroutines,
	// a heap, and (here) at least ~3s of uptime.
	if !strings.Contains(out, "octopus_test_goroutines ") {
		t.Fatalf("no goroutines sample:\n%s", out)
	}
	for _, line := range strings.Split(out, "\n") {
		switch {
		case strings.HasPrefix(line, "octopus_test_goroutines "),
			strings.HasPrefix(line, "octopus_test_heap_inuse_bytes "):
			if strings.HasSuffix(line, " 0") {
				t.Errorf("gauge sampled as zero: %q", line)
			}
		case strings.HasPrefix(line, "octopus_test_uptime_seconds "):
			v, err := strconv.ParseFloat(strings.TrimSpace(line[len("octopus_test_uptime_seconds "):]), 64)
			if err != nil || v < 2.5 {
				t.Errorf("uptime %q, want >= 2.5s", line)
			}
		}
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := newHistogram([]float64{0.01, 0.1, 1})
	if got := h.Quantile(0.5); got != 0 {
		t.Errorf("empty histogram quantile = %v, want 0", got)
	}
	// 100 observations uniformly in (0, 0.01]: p50 interpolates to
	// the middle of the first bucket.
	for i := 0; i < 100; i++ {
		h.Observe(0.005)
	}
	if got := h.Quantile(0.5); math.Abs(got-0.005) > 1e-9 {
		t.Errorf("p50 = %v, want 0.005", got)
	}
	// Add 100 in (0.01, 0.1]: p75 lands in the second bucket.
	for i := 0; i < 100; i++ {
		h.Observe(0.05)
	}
	p75 := h.Quantile(0.75)
	if p75 <= 0.01 || p75 > 0.1 {
		t.Errorf("p75 = %v, want within (0.01, 0.1]", p75)
	}
	// An observation beyond the last bound clamps to it.
	h.Observe(50)
	if got := h.Quantile(1); got != 1 {
		t.Errorf("p100 with +Inf outlier = %v, want clamp to 1", got)
	}
	// Snapshot exposes merge-ready state.
	upper, cum, count, sum := h.Snapshot()
	if len(upper) != 3 || len(cum) != 3 || count != 201 || sum <= 0 {
		t.Errorf("Snapshot = (%v, %v, %d, %v)", upper, cum, count, sum)
	}
	if got := QuantileFromBuckets(nil, nil, 0, 0.5); got != 0 {
		t.Errorf("degenerate QuantileFromBuckets = %v", got)
	}
}
