package metrics

import (
	"bytes"
	"log/slog"
	"strings"
	"testing"
	"time"
)

func slowTestLogger(buf *bytes.Buffer) *slog.Logger {
	return slog.New(slog.NewTextHandler(buf, nil))
}

func TestSlowLoggerThresholdZeroLogsEverything(t *testing.T) {
	var buf bytes.Buffer
	r := NewRegistry()
	c := r.Counter("slow_ops_total", "", nil)
	l := NewSlowLogger(slowTestLogger(&buf), 0, c)

	l.Observe("read", "req-abc", time.Microsecond, "block", "b1")
	out := buf.String()
	if !strings.Contains(out, "req=req-abc") || !strings.Contains(out, "op=read") {
		t.Errorf("forced slow log missing fields: %q", out)
	}
	if !strings.Contains(out, "block=b1") {
		t.Errorf("extra attrs dropped: %q", out)
	}
	if c.Value() != 1 {
		t.Errorf("slow counter = %v, want 1", c.Value())
	}
}

func TestSlowLoggerThresholdFilters(t *testing.T) {
	var buf bytes.Buffer
	l := NewSlowLogger(slowTestLogger(&buf), 100*time.Millisecond, nil)
	l.Observe("read", "r1", 10*time.Millisecond)
	if buf.Len() != 0 {
		t.Errorf("fast op logged: %q", buf.String())
	}
	l.Observe("read", "r2", 150*time.Millisecond)
	if !strings.Contains(buf.String(), "req=r2") {
		t.Errorf("slow op not logged: %q", buf.String())
	}
}

func TestSlowLoggerDisabled(t *testing.T) {
	var buf bytes.Buffer
	l := NewSlowLogger(slowTestLogger(&buf), -1, nil)
	l.Observe("read", "r1", time.Hour)
	if buf.Len() != 0 {
		t.Errorf("disabled logger emitted: %q", buf.String())
	}
	var nilLogger *SlowLogger
	nilLogger.Observe("read", "r1", time.Hour) // must not panic
}
