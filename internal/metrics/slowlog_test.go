package metrics

import (
	"bytes"
	"log/slog"
	"strings"
	"testing"
	"time"
)

func slowTestLogger(buf *bytes.Buffer) *slog.Logger {
	return slog.New(slog.NewTextHandler(buf, nil))
}

func TestSlowLoggerThresholdZeroLogsEverything(t *testing.T) {
	var buf bytes.Buffer
	r := NewRegistry()
	c := r.Counter("slow_ops_total", "", nil)
	l := NewSlowLogger(slowTestLogger(&buf), 0, c)

	l.Observe("read", "req-abc", time.Microsecond, "block", "b1")
	out := buf.String()
	if !strings.Contains(out, "req=req-abc") || !strings.Contains(out, "op=read") {
		t.Errorf("forced slow log missing fields: %q", out)
	}
	if !strings.Contains(out, "block=b1") {
		t.Errorf("extra attrs dropped: %q", out)
	}
	if c.Value() != 1 {
		t.Errorf("slow counter = %v, want 1", c.Value())
	}
}

// TestSlowLoggerZeroThresholdZeroDuration pins the documented "0 logs
// every op" semantics for the edge the old guard got right only by
// accident: a zero-duration op at threshold 0 (d < threshold is false
// for d == 0, but the behaviour is now explicit, not incidental).
func TestSlowLoggerZeroThresholdZeroDuration(t *testing.T) {
	var buf bytes.Buffer
	l := NewSlowLogger(slowTestLogger(&buf), 0, nil)
	l.Observe("write", "req-zero", 0)
	if !strings.Contains(buf.String(), "req=req-zero") {
		t.Fatalf("zero-duration op not logged at threshold 0: %q", buf.String())
	}
}

// TestSlowLoggerEmitsTraceID verifies every slow-op line carries the
// request ID again under the "trace" key, joining logs to the trace
// store's /debug/traces/<id> endpoint.
func TestSlowLoggerEmitsTraceID(t *testing.T) {
	var buf bytes.Buffer
	l := NewSlowLogger(slowTestLogger(&buf), 0, nil)
	l.Observe("read", "deadbeef00c0ffee", time.Millisecond, "tier", "SSD")
	out := buf.String()
	if !strings.Contains(out, "trace=deadbeef00c0ffee") {
		t.Errorf("slow log missing trace attribute: %q", out)
	}
	if !strings.Contains(out, "tier=SSD") {
		t.Errorf("extra attrs dropped: %q", out)
	}
	if l.Threshold() != 0 {
		t.Errorf("Threshold() = %v, want 0", l.Threshold())
	}
	var nilLogger *SlowLogger
	if nilLogger.Threshold() >= 0 {
		t.Error("nil logger threshold should be negative (disabled)")
	}
}

func TestSlowLoggerThresholdFilters(t *testing.T) {
	var buf bytes.Buffer
	l := NewSlowLogger(slowTestLogger(&buf), 100*time.Millisecond, nil)
	l.Observe("read", "r1", 10*time.Millisecond)
	if buf.Len() != 0 {
		t.Errorf("fast op logged: %q", buf.String())
	}
	l.Observe("read", "r2", 150*time.Millisecond)
	if !strings.Contains(buf.String(), "req=r2") {
		t.Errorf("slow op not logged: %q", buf.String())
	}
}

func TestSlowLoggerDisabled(t *testing.T) {
	var buf bytes.Buffer
	l := NewSlowLogger(slowTestLogger(&buf), -1, nil)
	l.Observe("read", "r1", time.Hour)
	if buf.Len() != 0 {
		t.Errorf("disabled logger emitted: %q", buf.String())
	}
	var nilLogger *SlowLogger
	nilLogger.Observe("read", "r1", time.Hour) // must not panic
}
