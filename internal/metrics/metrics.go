// Package metrics is a dependency-free telemetry substrate for the
// OctopusFS master, workers, and client: named registries of counters,
// gauges, and fixed-bucket histograms with Prometheus-text and JSON
// exposition.
//
// Metric names follow the scheme octopus_<component>_<name>; tiers are
// attached as a label carrying core.StorageTier.String() values
// ("MEMORY", "SSD", "HDD", "REMOTE"). All metric types are safe for
// concurrent use; updates are lock-free atomics, registration and
// exposition take the registry lock.
package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Labels attaches dimensions to a metric. Nil means no labels.
type Labels map[string]string

// Metric type discriminators used in exposition output.
const (
	typeCounter   = "counter"
	typeGauge     = "gauge"
	typeHistogram = "histogram"
)

// DefLatencyBuckets are the default operation-latency buckets in
// seconds, spanning sub-millisecond RPCs to multi-second streams.
var DefLatencyBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// DefSizeBuckets are the default transfer-size buckets in bytes
// (1 KiB up to 1 GiB in powers of four).
var DefSizeBuckets = []float64{
	1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20, 4 << 20, 16 << 20, 64 << 20, 256 << 20, 1 << 30,
}

// atomicFloat is a float64 with atomic add/load via bit-casting.
type atomicFloat struct{ bits atomic.Uint64 }

func (f *atomicFloat) Add(v float64) {
	for {
		old := f.bits.Load()
		new := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, new) {
			return
		}
	}
}

func (f *atomicFloat) Store(v float64) { f.bits.Store(math.Float64bits(v)) }
func (f *atomicFloat) Load() float64   { return math.Float64frombits(f.bits.Load()) }

// Counter is a monotonically increasing value.
type Counter struct{ v atomicFloat }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds v; negative deltas are ignored to keep the counter monotone.
func (c *Counter) Add(v float64) {
	if v > 0 {
		c.v.Add(v)
	}
}

// Value returns the current count.
func (c *Counter) Value() float64 { return c.v.Load() }

// Gauge is a value that can go up and down.
type Gauge struct{ v atomicFloat }

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.v.Store(v) }

// Add shifts the gauge by v (may be negative).
func (g *Gauge) Add(v float64) { g.v.Add(v) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return g.v.Load() }

// Histogram counts observations into fixed cumulative buckets and
// tracks their sum, exposed in the Prometheus histogram convention
// (le-labelled cumulative buckets plus _sum and _count).
type Histogram struct {
	upper  []float64 // sorted bucket upper bounds, exclusive of +Inf
	counts []atomic.Uint64
	count  atomic.Uint64
	sum    atomicFloat
}

func newHistogram(buckets []float64) *Histogram {
	upper := append([]float64(nil), buckets...)
	sort.Float64s(upper)
	return &Histogram{upper: upper, counts: make([]atomic.Uint64, len(upper))}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	for i, ub := range h.upper {
		if v <= ub {
			h.counts[i].Add(1)
			break
		}
	}
	h.count.Add(1)
	h.sum.Add(v)
}

// ObserveSince records the seconds elapsed since t0.
func (h *Histogram) ObserveSince(t0 time.Time) { h.Observe(time.Since(t0).Seconds()) }

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return h.sum.Load() }

// snapshot returns cumulative bucket counts aligned with h.upper,
// plus the total count and sum.
func (h *Histogram) snapshot() (cum []uint64, count uint64, sum float64) {
	cum = make([]uint64, len(h.upper))
	var acc uint64
	for i := range h.counts {
		acc += h.counts[i].Load()
		cum[i] = acc
	}
	return cum, h.count.Load(), h.sum.Load()
}

// Snapshot returns the histogram's bucket upper bounds, cumulative
// counts aligned with them, total count, and sum — the inputs to
// quantile estimation and cross-daemon histogram merging.
func (h *Histogram) Snapshot() (upper []float64, cum []uint64, count uint64, sum float64) {
	cum, count, sum = h.snapshot()
	return append([]float64(nil), h.upper...), cum, count, sum
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) of the observed
// distribution from the bucket counts, Prometheus histogram_quantile
// style. It returns 0 for an empty histogram.
func (h *Histogram) Quantile(q float64) float64 {
	cum, count, _ := h.snapshot()
	return QuantileFromBuckets(h.upper, cum, count, q)
}

// QuantileFromBuckets estimates the q-quantile from cumulative bucket
// counts (aligned with the sorted upper bounds) using linear
// interpolation within the located bucket, like PromQL's
// histogram_quantile. Observations beyond the last bound clamp to it.
func QuantileFromBuckets(upper []float64, cum []uint64, count uint64, q float64) float64 {
	if count == 0 || len(upper) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(count)
	for i, c := range cum {
		if float64(c) >= rank {
			lower, prev := 0.0, uint64(0)
			if i > 0 {
				lower, prev = upper[i-1], cum[i-1]
			}
			inBucket := float64(c - prev)
			if inBucket == 0 {
				return upper[i]
			}
			return lower + (upper[i]-lower)*((rank-float64(prev))/inBucket)
		}
	}
	// Rank falls in the implicit +Inf bucket: clamp to the last bound.
	return upper[len(upper)-1]
}

// metric is one registered series: a label set plus exactly one of the
// value kinds.
type metric struct {
	labels    Labels
	labelsKey string // canonical rendering, used for ordering and output

	counter *Counter
	gauge   *Gauge
	fn      func() float64
	hist    *Histogram
}

// family groups the series sharing one metric name.
type family struct {
	name    string
	help    string
	typ     string
	buckets []float64 // histogram families only

	mu      sync.Mutex
	metrics map[string]*metric
}

func (f *family) get(labels Labels) (*metric, bool) {
	key := canonicalLabels(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	m, ok := f.metrics[key]
	if !ok {
		m = &metric{labels: copyLabels(labels), labelsKey: key}
		f.metrics[key] = m
	}
	// Initialise the value holder here, under the family lock:
	// concurrent first uses of a series (e.g. two RPC handlers hitting
	// the same vec child) must not race on lazy init.
	switch f.typ {
	case typeCounter:
		if m.counter == nil {
			m.counter = &Counter{}
		}
	case typeGauge:
		if m.gauge == nil {
			m.gauge = &Gauge{}
		}
	case typeHistogram:
		if m.hist == nil {
			m.hist = newHistogram(f.buckets)
		}
	}
	return m, ok
}

// setFn installs a sampling callback under the family lock.
func (f *family) setFn(labels Labels, fn func() float64) {
	key := canonicalLabels(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	m, ok := f.metrics[key]
	if !ok {
		m = &metric{labels: copyLabels(labels), labelsKey: key}
		f.metrics[key] = m
	}
	m.fn = fn
}

// Registry holds one component's metric families.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// family returns (creating if needed) the named family, enforcing that
// one name maps to one metric type.
func (r *Registry) family(name, help, typ string, buckets []float64) *family {
	r.mu.RLock()
	f, ok := r.families[name]
	r.mu.RUnlock()
	if !ok {
		r.mu.Lock()
		f, ok = r.families[name]
		if !ok {
			f = &family{name: name, help: help, typ: typ, buckets: buckets,
				metrics: make(map[string]*metric)}
			r.families[name] = f
		}
		r.mu.Unlock()
	}
	if f.typ != typ {
		panic(fmt.Sprintf("metrics: %s registered as %s, requested as %s", name, f.typ, typ))
	}
	return f
}

// Counter returns the counter series name{labels}, creating it on
// first use.
func (r *Registry) Counter(name, help string, labels Labels) *Counter {
	m, _ := r.family(name, help, typeCounter, nil).get(labels)
	return m.counter
}

// Gauge returns the settable gauge series name{labels}.
func (r *Registry) Gauge(name, help string, labels Labels) *Gauge {
	m, _ := r.family(name, help, typeGauge, nil).get(labels)
	return m.gauge
}

// GaugeFunc registers a gauge series whose value is sampled from fn at
// exposition time. fn must be safe for concurrent use.
func (r *Registry) GaugeFunc(name, help string, labels Labels, fn func() float64) {
	r.family(name, help, typeGauge, nil).setFn(labels, fn)
}

// Histogram returns the histogram series name{labels} with the given
// bucket upper bounds (nil selects DefLatencyBuckets). Bucket layout is
// fixed by the first registration of the family.
func (r *Registry) Histogram(name, help string, buckets []float64, labels Labels) *Histogram {
	if buckets == nil {
		buckets = DefLatencyBuckets
	}
	f := r.family(name, help, typeHistogram, buckets)
	m, _ := f.get(labels)
	return m.hist
}

// CounterVec is a family of counters distinguished by an ordered label
// key set, for cheap per-call lookups like ops.With("create").
type CounterVec struct {
	r    *Registry
	name string
	help string
	keys []string
}

// CounterVec declares a labelled counter family.
func (r *Registry) CounterVec(name, help string, keys ...string) *CounterVec {
	r.family(name, help, typeCounter, nil)
	return &CounterVec{r: r, name: name, help: help, keys: keys}
}

// With returns the series for the given label values (ordered like the
// vec's keys).
func (v *CounterVec) With(values ...string) *Counter {
	return v.r.Counter(v.name, v.help, zipLabels(v.keys, values))
}

// HistogramVec is a family of histograms distinguished by an ordered
// label key set.
type HistogramVec struct {
	r       *Registry
	name    string
	help    string
	keys    []string
	buckets []float64
}

// HistogramVec declares a labelled histogram family (nil buckets
// selects DefLatencyBuckets).
func (r *Registry) HistogramVec(name, help string, buckets []float64, keys ...string) *HistogramVec {
	if buckets == nil {
		buckets = DefLatencyBuckets
	}
	r.family(name, help, typeHistogram, buckets)
	return &HistogramVec{r: r, name: name, help: help, keys: keys, buckets: buckets}
}

// With returns the series for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	return v.r.Histogram(v.name, v.help, v.buckets, zipLabels(v.keys, values))
}

func zipLabels(keys, values []string) Labels {
	if len(keys) != len(values) {
		panic(fmt.Sprintf("metrics: %d label values for %d keys", len(values), len(keys)))
	}
	l := make(Labels, len(keys))
	for i, k := range keys {
		l[k] = values[i]
	}
	return l
}

func copyLabels(l Labels) Labels {
	out := make(Labels, len(l))
	for k, v := range l {
		out[k] = v
	}
	return out
}

// canonicalLabels renders a label set as `k1="v1",k2="v2"` with sorted
// keys and escaped values; "" for the empty set.
func canonicalLabels(l Labels) string {
	if len(l) == 0 {
		return ""
	}
	keys := make([]string, 0, len(l))
	for k := range l {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l[k]))
		b.WriteByte('"')
	}
	return b.String()
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

// formatFloat renders values the way Prometheus clients do: shortest
// representation that round-trips.
func formatFloat(v float64) string {
	if math.IsInf(v, +1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// sortedFamilies snapshots the family list in name order.
func (r *Registry) sortedFamilies() []*family {
	r.mu.RLock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.RUnlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	return fams
}

// sortedMetrics snapshots a family's series in label order.
func (f *family) sortedMetrics() []*metric {
	f.mu.Lock()
	ms := make([]*metric, 0, len(f.metrics))
	for _, m := range f.metrics {
		ms = append(ms, m)
	}
	f.mu.Unlock()
	sort.Slice(ms, func(i, j int) bool { return ms[i].labelsKey < ms[j].labelsKey })
	return ms
}

func (m *metric) scalarValue() float64 {
	switch {
	case m.counter != nil:
		return m.counter.Value()
	case m.gauge != nil:
		return m.gauge.Value()
	case m.fn != nil:
		return m.fn()
	}
	return 0
}

// WritePrometheus renders every registered series in the Prometheus
// text exposition format (version 0.0.4), families and series in
// deterministic order.
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, f := range r.sortedFamilies() {
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ); err != nil {
			return err
		}
		for _, m := range f.sortedMetrics() {
			if err := writePromMetric(w, f, m); err != nil {
				return err
			}
		}
	}
	return nil
}

func writePromMetric(w io.Writer, f *family, m *metric) error {
	if f.typ != typeHistogram {
		_, err := fmt.Fprintf(w, "%s%s %s\n", f.name, braced(m.labelsKey), formatFloat(m.scalarValue()))
		return err
	}
	hist := m.hist
	if hist == nil {
		return nil
	}
	cum, count, sum := hist.snapshot()
	for i, ub := range hist.upper {
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
			f.name, braced(withLE(m.labelsKey, formatFloat(ub))), cum[i]); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, braced(withLE(m.labelsKey, "+Inf")), count); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", f.name, braced(m.labelsKey), formatFloat(sum)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", f.name, braced(m.labelsKey), count)
	return err
}

func braced(labels string) string {
	if labels == "" {
		return ""
	}
	return "{" + labels + "}"
}

func withLE(labels, le string) string {
	if labels == "" {
		return `le="` + le + `"`
	}
	return labels + `,le="` + le + `"`
}

// jsonMetric is one series in the JSON exposition document.
type jsonMetric struct {
	Labels Labels `json:"labels,omitempty"`
	// Scalar kinds.
	Value *float64 `json:"value,omitempty"`
	// Histogram kind.
	Count   *uint64           `json:"count,omitempty"`
	Sum     *float64          `json:"sum,omitempty"`
	Buckets map[string]uint64 `json:"buckets,omitempty"`
}

// jsonFamily is one family in the JSON exposition document.
type jsonFamily struct {
	Name    string       `json:"name"`
	Type    string       `json:"type"`
	Help    string       `json:"help,omitempty"`
	Metrics []jsonMetric `json:"metrics"`
}

// WriteJSON renders every registered series as a JSON array of metric
// families, in the same deterministic order as WritePrometheus.
func (r *Registry) WriteJSON(w io.Writer) error {
	fams := r.sortedFamilies()
	out := make([]jsonFamily, 0, len(fams))
	for _, f := range fams {
		jf := jsonFamily{Name: f.name, Type: f.typ, Help: f.help, Metrics: []jsonMetric{}}
		for _, m := range f.sortedMetrics() {
			var jm jsonMetric
			jm.Labels = m.labels
			if f.typ == typeHistogram {
				if m.hist == nil {
					continue
				}
				cum, count, sum := m.hist.snapshot()
				jm.Count, jm.Sum = &count, &sum
				jm.Buckets = make(map[string]uint64, len(cum)+1)
				for i, ub := range m.hist.upper {
					jm.Buckets[formatFloat(ub)] = cum[i]
				}
				jm.Buckets["+Inf"] = count
			} else {
				v := m.scalarValue()
				jm.Value = &v
			}
			jf.Metrics = append(jf.Metrics, jm)
		}
		out = append(out, jf)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
