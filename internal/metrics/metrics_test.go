package metrics

import (
	"bytes"
	"encoding/json"
	"flag"
	"math"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "", nil)
	c.Inc()
	c.Add(2.5)
	c.Add(-5) // ignored: counters are monotone
	if got := c.Value(); got != 3.5 {
		t.Errorf("counter = %v, want 3.5", got)
	}
	if again := r.Counter("c_total", "", nil); again != c {
		t.Error("same name+labels returned a different counter")
	}

	g := r.Gauge("g", "", Labels{"x": "1"})
	g.Set(10)
	g.Add(-4)
	if got := g.Value(); got != 6 {
		t.Errorf("gauge = %v, want 6", got)
	}
}

func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "", []float64{1, 2, 5}, nil)

	// Boundary cases: exactly on a bound counts into that bucket
	// (le is inclusive), above the top bound counts only in +Inf.
	for _, v := range []float64{0.5, 1, 1.0000001, 2, 5, 7} {
		h.Observe(v)
	}
	cum, count, sum := h.snapshot()
	if want := []uint64{2, 4, 5}; cum[0] != want[0] || cum[1] != want[1] || cum[2] != want[2] {
		t.Errorf("cumulative buckets = %v, want %v", cum, want)
	}
	if count != 6 {
		t.Errorf("count = %d, want 6", count)
	}
	if math.Abs(sum-16.5000001) > 1e-6 {
		t.Errorf("sum = %v, want ~16.5", sum)
	}
}

func TestHistogramUnsortedBucketsAreSorted(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "", []float64{5, 1, 2}, nil)
	h.Observe(1.5)
	cum, _, _ := h.snapshot()
	if cum[0] != 0 || cum[1] != 1 || cum[2] != 1 {
		t.Errorf("cumulative buckets = %v, want [0 1 1]", cum)
	}
}

// TestConcurrentUpdates exercises every metric kind from many
// goroutines; run under -race this doubles as the data-race check.
func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	ops := r.CounterVec("ops_total", "", "op")
	dur := r.HistogramVec("dur_seconds", "", []float64{0.01, 0.1, 1}, "op")
	g := r.Gauge("load", "", nil)

	const workers, iters = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			op := []string{"read", "write"}[w%2]
			for i := 0; i < iters; i++ {
				ops.With(op).Inc()
				dur.With(op).Observe(float64(i%3) * 0.05)
				g.Add(1)
				g.Add(-1)
				if i%100 == 0 {
					var sink bytes.Buffer
					r.WritePrometheus(&sink)
				}
			}
		}()
	}
	wg.Wait()

	total := ops.With("read").Value() + ops.With("write").Value()
	if total != workers*iters {
		t.Errorf("op total = %v, want %d", total, workers*iters)
	}
	if n := dur.With("read").Count() + dur.With("write").Count(); n != workers*iters {
		t.Errorf("histogram count = %d, want %d", n, workers*iters)
	}
	if v := g.Value(); v != 0 {
		t.Errorf("gauge = %v, want 0", v)
	}
}

// TestPrometheusGolden locks down the text exposition format.
func TestPrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("octopus_test_bytes_total", "Bytes moved.", Labels{"op": "read", "tier": "HDD"}).Add(4096)
	r.Counter("octopus_test_bytes_total", "Bytes moved.", Labels{"op": "write", "tier": "SSD"}).Add(1024)
	r.Counter("octopus_test_plain_total", "", nil).Inc()
	r.Gauge("octopus_test_workers", "Live workers.", nil).Set(3)
	r.GaugeFunc("octopus_test_remaining_bytes", "", Labels{"tier": "MEMORY"}, func() float64 { return 12.5 })
	h := r.Histogram("octopus_test_duration_seconds", "Op latency.", []float64{0.01, 0.1, 1}, Labels{"op": "read"})
	h.Observe(0.005)
	h.Observe(0.05)
	h.Observe(0.05)
	h.Observe(2)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "exposition.golden")
	if *updateGolden {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("exposition mismatch\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}
}

func TestJSONExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", "help", Labels{"op": "x"}).Add(2)
	r.Histogram("h", "", []float64{1}, nil).Observe(0.5)

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc []struct {
		Name    string `json:"name"`
		Type    string `json:"type"`
		Metrics []struct {
			Labels  map[string]string `json:"labels"`
			Value   *float64          `json:"value"`
			Count   *uint64           `json:"count"`
			Buckets map[string]uint64 `json:"buckets"`
		} `json:"metrics"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if len(doc) != 2 || doc[0].Name != "c_total" || doc[1].Name != "h" {
		t.Fatalf("unexpected families: %s", buf.String())
	}
	m := doc[0].Metrics[0]
	if m.Value == nil || *m.Value != 2 || m.Labels["op"] != "x" {
		t.Errorf("counter JSON wrong: %s", buf.String())
	}
	hm := doc[1].Metrics[0]
	if hm.Count == nil || *hm.Count != 1 || hm.Buckets["1"] != 1 || hm.Buckets["+Inf"] != 1 {
		t.Errorf("histogram JSON wrong: %s", buf.String())
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", "", Labels{"path": `a"b\c` + "\n"}).Inc()
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `path="a\"b\\c\n"`) {
		t.Errorf("labels not escaped: %s", buf.String())
	}
}

func TestTypeConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x", "", nil)
	defer func() {
		if recover() == nil {
			t.Error("registering x as gauge after counter did not panic")
		}
	}()
	r.Gauge("x", "", nil)
}
