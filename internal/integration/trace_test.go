package integration

import (
	"bytes"
	"io"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/trace"
)

// traceIndex groups assembled spans by span ID and by op name.
type traceIndex struct {
	byID map[string]trace.Span
	byOp map[string][]trace.Span
}

func indexSpans(spans []trace.Span) traceIndex {
	idx := traceIndex{byID: make(map[string]trace.Span), byOp: make(map[string][]trace.Span)}
	for _, sp := range spans {
		idx.byID[sp.SpanID] = sp
		idx.byOp[sp.Op] = append(idx.byOp[sp.Op], sp)
	}
	return idx
}

// TestTraceTimelineAcrossDaemons writes and reads a multi-block file
// with readahead on a 3-worker cluster, then assembles the timelines
// via the master's cross-daemon fan-out and asserts that client,
// master, and at least two distinct workers contributed spans sharing
// the request's trace ID with intact parent/child links.
func TestTraceTimelineAcrossDaemons(t *testing.T) {
	c := startTestCluster(t, func(cfg *ClusterConfig) {
		cfg.NumWorkers = 3
		cfg.NumRacks = 1
		cfg.BlockSize = 1 << 20
		// The default zero SlowOpThreshold marks every trace slow, so
		// stores retain everything regardless of the sampling rate.
	})
	fs, err := c.Client("", client.WithReadahead(2), client.WithWriteWindow(1))
	if err != nil {
		t.Fatalf("Client: %v", err)
	}
	defer fs.Close()

	data := randomBytes(3<<20, 7)
	w, err := fs.Create("/traced.bin", client.CreateOptions{
		RepVector: core.ReplicationVectorFromFactor(2),
	})
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	writeID := w.ReqID()
	if _, err := w.Write(data); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	r, err := fs.Open("/traced.bin")
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	readID := r.ReqID()
	got := make([]byte, len(data))
	if _, err := io.ReadFull(r, got); err != nil {
		t.Fatalf("ReadFull: %v", err)
	}
	r.Close()
	if !bytes.Equal(got, data) {
		t.Fatal("read-back mismatch")
	}

	// Worker read/replicate spans are recorded after the client has its
	// bytes, so poll the assembled trace until the cross-daemon picture
	// is complete.
	assertTimeline(t, fs, writeID, "client.write", "worker.write", 2)
	assertTimeline(t, fs, readID, "client.open", "worker.read", 1)
}

// assertTimeline polls the assembled trace for reqID until it contains
// the client root, a master span, and wantWorkers distinct workers'
// daemonOp spans, then verifies trace-ID consistency and parent links.
func assertTimeline(t *testing.T, fs *client.FileSystem, reqID, rootOp, daemonOp string, wantWorkers int) {
	t.Helper()
	var spans []trace.Span
	waitFor(t, 5*time.Second, rootOp+" timeline for "+reqID, func() bool {
		var err error
		spans, err = fs.Trace(reqID)
		if err != nil {
			return false
		}
		idx := indexSpans(spans)
		return len(idx.byOp[rootOp]) > 0 && distinctWorkers(idx.byOp[daemonOp]) >= wantWorkers
	})
	idx := indexSpans(spans)

	services := map[string]bool{}
	for _, sp := range spans {
		if sp.TraceID != reqID {
			t.Errorf("span %s/%s has trace ID %s, want %s", sp.Service, sp.Op, sp.TraceID, reqID)
		}
		if sp.End < sp.Start {
			t.Errorf("span %s/%s ends before it starts", sp.Service, sp.Op)
		}
		services[sp.Service] = true
	}
	for _, svc := range []string{"client", "master", "worker"} {
		if !services[svc] {
			t.Errorf("no %s spans in timeline %s", svc, reqID)
		}
	}

	root := idx.byOp[rootOp][0]
	if root.ParentID != "" {
		t.Errorf("root span %s has parent %s", rootOp, root.ParentID)
	}
	// Every worker span must link to a live client-side parent: the
	// span ID propagated over the transfer header survived the hop.
	linked := 0
	for _, sp := range idx.byOp[daemonOp] {
		parent, ok := idx.byID[sp.ParentID]
		if !ok {
			continue
		}
		if parent.Service != "client" && parent.Service != "worker" {
			t.Errorf("%s span parented by %s/%s", daemonOp, parent.Service, parent.Op)
		}
		linked++
	}
	if linked == 0 {
		t.Errorf("no %s span is linked to a parent span", daemonOp)
	}
	// Master handler spans hang off client RPC spans (internal master
	// spans like master.placement hang off their handler instead).
	for _, sp := range spans {
		if sp.Service != "master" || sp.ParentID == "" {
			continue
		}
		parent, ok := idx.byID[sp.ParentID]
		if ok && parent.Service != "client" && parent.Service != "master" {
			t.Errorf("master span %s parented by %s/%s", sp.Op, parent.Service, parent.Op)
		}
	}
}

func distinctWorkers(spans []trace.Span) int {
	workers := map[string]bool{}
	for _, sp := range spans {
		workers[sp.Attrs["worker"]] = true
	}
	return len(workers)
}

// TestTraceReadahead asserts that a readahead-driven read records
// prefetch spans and that the worker reads they trigger parent to
// them, making the hidden background opens visible in the timeline.
func TestTraceReadahead(t *testing.T) {
	c := startTestCluster(t, func(cfg *ClusterConfig) {
		cfg.NumWorkers = 3
		cfg.NumRacks = 1
		cfg.BlockSize = 1 << 20
	})
	fs, err := c.Client("", client.WithReadahead(2))
	if err != nil {
		t.Fatalf("Client: %v", err)
	}
	defer fs.Close()

	data := randomBytes(3<<20, 11)
	if err := fs.WriteFile("/ra.bin", data, core.ReplicationVectorFromFactor(2)); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	r, err := fs.Open("/ra.bin")
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	reqID := r.ReqID()
	if _, err := io.ReadAll(r); err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	r.Close()

	waitFor(t, 5*time.Second, "prefetch spans", func() bool {
		spans, err := fs.Trace(reqID)
		if err != nil {
			return false
		}
		idx := indexSpans(spans)
		if len(idx.byOp["client.prefetch"]) == 0 {
			return false
		}
		// At least one worker.read must be the child of a prefetch span.
		for _, sp := range idx.byOp["worker.read"] {
			if parent, ok := idx.byID[sp.ParentID]; ok && parent.Op == "client.prefetch" {
				return true
			}
		}
		return false
	})
}
