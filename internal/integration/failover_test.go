package integration

import (
	"bytes"
	"io"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/core"
)

// workerIndex finds the cluster index of a worker ID; -1 if unknown.
func (c *Cluster) workerIndex(id core.WorkerID) int {
	for i, w := range c.Workers {
		if w != nil && w.ID() == id {
			return i
		}
	}
	return -1
}

// TestReadFailoverMidStream kills the worker a reader is streaming
// from, mid-block, and expects the read to complete from the remaining
// replicas without surfacing an error — with the readahead window on.
func TestReadFailoverMidStream(t *testing.T) {
	c := startTestCluster(t, func(cfg *ClusterConfig) {
		cfg.NumWorkers = 3
		cfg.BlockSize = 1 << 20
		// Throttle the media so a block takes real time to stream:
		// on an unthrottled loopback a whole block can land in the
		// socket buffers before the worker is killed, making the kill
		// invisible to the reader.
		cfg.Throttle = true
		cfg.ThrottleScale = 0.1
	})
	fs, err := c.Client("", client.WithReadahead(2))
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()

	// Pin all replicas to the throttled HDD tier.
	data := randomBytes(4<<20, 11)
	if err := fs.WriteFile("/fo.bin", data, core.NewReplicationVector(0, 0, 3, 0, 0)); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}

	r, err := fs.Open("/fo.bin")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	got := make([]byte, len(data))
	if _, err := io.ReadFull(r, got[:256<<10]); err != nil {
		t.Fatalf("reading head: %v", err)
	}
	loc, ok := r.CurrentLocation()
	if !ok {
		t.Fatal("no current location mid-block")
	}
	idx := c.workerIndex(loc.Worker)
	if idx < 0 {
		t.Fatalf("unknown worker %s", loc.Worker)
	}
	if err := c.KillWorker(idx); err != nil {
		t.Fatalf("KillWorker: %v", err)
	}
	if _, err := io.ReadFull(r, got[256<<10:]); err != nil {
		t.Fatalf("reading tail across worker death: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("content mismatch after mid-stream failover")
	}
	if stats := fs.DataPathStats(); stats.Failovers < 1 {
		t.Errorf("failovers = %.0f, want >= 1", stats.Failovers)
	}
}

// TestWriteRetryMidStream kills the head of the pipeline a writer is
// streaming into and expects the write to finish on re-allocated
// blocks, with every accepted byte counted exactly once.
func TestWriteRetryMidStream(t *testing.T) {
	c := startTestCluster(t, func(cfg *ClusterConfig) {
		cfg.NumWorkers = 4
		cfg.BlockSize = 1 << 20
		cfg.WorkerTimeout = 300 * time.Millisecond
	})
	fs, err := c.Client("", client.WithWriteWindow(1))
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()

	data := randomBytes(2<<20+512<<10, 13)
	w, err := fs.Create("/wf.bin", client.CreateOptions{RepVector: core.ReplicationVectorFromFactor(2)})
	if err != nil {
		t.Fatal(err)
	}
	// Stream one and a half blocks so a block is mid-flight, then kill
	// the head of its pipeline.
	head := 1<<20 + 512<<10
	if _, err := w.Write(data[:head]); err != nil {
		t.Fatalf("writing head: %v", err)
	}
	targets := w.CurrentTargets()
	if len(targets) == 0 {
		t.Fatal("no in-flight pipeline")
	}
	idx := c.workerIndex(targets[0])
	if idx < 0 {
		t.Fatalf("unknown worker %s", targets[0])
	}
	if err := c.KillWorker(idx); err != nil {
		t.Fatalf("KillWorker: %v", err)
	}
	// Wait for the master to expire the dead worker so re-allocated
	// pipelines stop routing to it.
	waitFor(t, 5*time.Second, "dead worker to deregister", func() bool {
		return c.Master.NumWorkers() == 3
	})
	if _, err := w.Write(data[head:]); err != nil {
		t.Fatalf("writing tail across worker death: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	stats := fs.DataPathStats()
	if stats.Retries < 1 {
		t.Errorf("retries = %.0f, want >= 1", stats.Retries)
	}
	if stats.WriteBytes != float64(len(data)) {
		t.Errorf("writeBytes = %.0f, want %d (bytes must be counted once across replays)",
			stats.WriteBytes, len(data))
	}

	// Verify through a second client so the read-back cannot lean on
	// any writer-side state.
	fs2, err := c.Client("")
	if err != nil {
		t.Fatal(err)
	}
	defer fs2.Close()
	got, err := fs2.ReadFile("/wf.bin")
	if err != nil {
		t.Fatalf("read back: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("content mismatch after mid-write worker death")
	}
}
