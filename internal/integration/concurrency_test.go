package integration

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"repro/internal/core"
)

// TestConcurrentClients drives many clients writing, reading, and
// mutating the namespace simultaneously — a miniature multi-tenant
// workload over real TCP.
func TestConcurrentClients(t *testing.T) {
	c := startTestCluster(t)
	const clients = 6
	const filesPerClient = 4

	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for ci := 0; ci < clients; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			fs, err := c.Client("")
			if err != nil {
				errs <- err
				return
			}
			defer fs.Close()
			dir := fmt.Sprintf("/tenant%d", ci)
			if err := fs.Mkdir(dir, true); err != nil {
				errs <- fmt.Errorf("client %d mkdir: %w", ci, err)
				return
			}
			for fi := 0; fi < filesPerClient; fi++ {
				path := fmt.Sprintf("%s/f%d", dir, fi)
				data := randomBytes(512<<10, int64(ci*100+fi))
				if err := fs.WriteFile(path, data, core.ReplicationVectorFromFactor(2)); err != nil {
					errs <- fmt.Errorf("client %d write %s: %w", ci, path, err)
					return
				}
				got, err := fs.ReadFile(path)
				if err != nil {
					errs <- fmt.Errorf("client %d read %s: %w", ci, path, err)
					return
				}
				if !bytes.Equal(got, data) {
					errs <- fmt.Errorf("client %d: %s content mismatch", ci, path)
					return
				}
			}
			// Shuffle the namespace a bit.
			if err := fs.Rename(dir+"/f0", dir+"/renamed"); err != nil {
				errs <- fmt.Errorf("client %d rename: %w", ci, err)
				return
			}
			if err := fs.Delete(dir+"/f1", false); err != nil {
				errs <- fmt.Errorf("client %d delete: %w", ci, err)
				return
			}
		}(ci)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// Everything left must still be listable and readable.
	fs, _ := c.Client("")
	defer fs.Close()
	for ci := 0; ci < clients; ci++ {
		entries, err := fs.List(fmt.Sprintf("/tenant%d", ci))
		if err != nil {
			t.Fatalf("final list tenant%d: %v", ci, err)
		}
		if len(entries) != filesPerClient-1 { // f1 deleted, f0 renamed
			t.Errorf("tenant%d has %d entries, want %d", ci, len(entries), filesPerClient-1)
		}
	}
}
