package integration

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/events"
)

// firstSeq returns the sequence number of the first event of a type in
// a page, or 0 if absent.
func firstSeq(evs []events.Event, typ string) uint64 {
	for _, e := range evs {
		if e.Type == typ {
			return e.Seq
		}
	}
	return 0
}

// TestEventJournalCausalOrder is the journal's end-to-end acceptance
// test: write a file, kill a worker holding a replica, and check the
// cluster's life story reads back in causal order — registration before
// allocation, allocation before commit, commit before the expiry of the
// killed worker, expiry before re-replication — with strictly monotonic
// sequence numbers.
func TestEventJournalCausalOrder(t *testing.T) {
	c := startTestCluster(t, func(cfg *ClusterConfig) {
		cfg.NumWorkers = 3
		cfg.WorkerTimeout = 300 * time.Millisecond
	})
	fs, err := c.Client("")
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()

	data := randomBytes(1<<20, 17)
	if err := fs.WriteFile("/journal.bin", data, core.NewReplicationVector(0, 0, 2, 0, 0)); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}

	// Kill a worker that holds a replica so the monitor must expire it
	// and re-replicate the block elsewhere.
	locs, err := fs.GetFileBlockLocations("/journal.bin", 0, int64(len(data)))
	if err != nil || len(locs) == 0 || len(locs[0].Locations) == 0 {
		t.Fatalf("GetFileBlockLocations: %v (%d blocks)", err, len(locs))
	}
	victim := locs[0].Locations[0].Worker
	idx := c.workerIndex(victim)
	if idx < 0 {
		t.Fatalf("unknown worker %s", victim)
	}
	if err := c.KillWorker(idx); err != nil {
		t.Fatal(err)
	}

	// Wait until the journal records both the expiry and a
	// re-replication.
	waitFor(t, 10*time.Second, "expiry and re-replication events", func() bool {
		page, _, err := fs.Events(0, "", 0)
		if err != nil {
			return false
		}
		return firstSeq(page.Events, "worker_expired") > 0 &&
			firstSeq(page.Events, "block_rereplicated") > 0
	})

	page, counts, err := fs.Events(0, "", 0)
	if err != nil {
		t.Fatal(err)
	}
	evs := page.Events
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq <= evs[i-1].Seq {
			t.Fatalf("seqs not strictly monotonic: %d after %d", evs[i].Seq, evs[i-1].Seq)
		}
	}

	register := firstSeq(evs, "worker_register")
	allocated := firstSeq(evs, "block_allocated")
	committed := firstSeq(evs, "block_committed")
	expired := firstSeq(evs, "worker_expired")
	rereplicated := firstSeq(evs, "block_rereplicated")
	for name, seq := range map[string]uint64{
		"worker_register": register, "block_allocated": allocated,
		"block_committed": committed, "worker_expired": expired,
		"block_rereplicated": rereplicated,
	} {
		if seq == 0 {
			t.Fatalf("journal has no %s event; counts = %v", name, counts)
		}
	}
	if !(register < allocated && allocated < committed && committed < expired && expired < rereplicated) {
		t.Fatalf("causal order violated: register=%d allocated=%d committed=%d expired=%d rereplicated=%d",
			register, allocated, committed, expired, rereplicated)
	}
	if counts["worker_register"] != 3 {
		t.Errorf("counts[worker_register] = %d, want 3", counts["worker_register"])
	}

	// The expiry event names the worker that was killed.
	expPage, _, err := fs.Events(0, "worker_expired", 0)
	if err != nil || len(expPage.Events) == 0 {
		t.Fatalf("fetching worker_expired events: %v", err)
	}
	if got := expPage.Events[0].Attrs["worker"]; got != string(victim) {
		t.Errorf("expiry attributes name worker %q, want %q", got, victim)
	}

	// Cursoring: resuming from the last delivered cursor returns only
	// events published afterwards.
	c.Master.Journal().Publish(events.Info, "cursor_probe", "after the fact")
	tail, _, err := fs.Events(page.Next, "", 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range tail.Events {
		if e.Seq <= page.Next {
			t.Fatalf("cursor re-delivered seq %d (cursor %d)", e.Seq, page.Next)
		}
	}
	if firstSeq(tail.Events, "cursor_probe") == 0 {
		t.Error("cursor page missing the freshly published event")
	}
}

// TestExplainEveryReplica is the explainability acceptance test: after
// a write, Master.Explain must account for every replica of every block
// with the winning (worker, tier), its four-objective score vector, and
// at least one rejected candidate's scores.
func TestExplainEveryReplica(t *testing.T) {
	c := startTestCluster(t, func(cfg *ClusterConfig) { cfg.NumWorkers = 4 })
	fs, err := c.Client("")
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()

	data := randomBytes(6<<20, 19) // two blocks at the 4 MB default
	rv := core.NewReplicationVector(0, 1, 2, 0, 0)
	if err := fs.WriteFile("/explain.bin", data, rv); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}

	reply, err := fs.Explain("/explain.bin")
	if err != nil {
		t.Fatal(err)
	}
	if len(reply.Blocks) != 2 {
		t.Fatalf("explained %d blocks, want 2", len(reply.Blocks))
	}
	for _, name := range reply.Objectives {
		if name == "" {
			t.Fatalf("objective names incomplete: %v", reply.Objectives)
		}
	}

	locs, err := fs.GetFileBlockLocations("/explain.bin", 0, int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	locByBlock := map[core.BlockID]map[core.WorkerID]bool{}
	for _, lb := range locs {
		set := map[core.WorkerID]bool{}
		for _, l := range lb.Locations {
			set[l.Worker] = true
		}
		locByBlock[lb.Block.ID] = set
	}

	for _, be := range reply.Blocks {
		if len(be.Replicas) != 3 {
			t.Fatalf("block %d explains %d replicas, want 3", be.Block, len(be.Replicas))
		}
		if be.TraceID == "" {
			t.Errorf("block %d explanation carries no trace ID", be.Block)
		}
		for i, re := range be.Replicas {
			if len(re.Candidates) < 2 {
				t.Fatalf("block %d replica %d has %d candidates, want the winner plus >= 1 rejected",
					be.Block, i, len(re.Candidates))
			}
			win := re.Candidates[0]
			if !win.Chosen {
				t.Fatalf("block %d replica %d first candidate not marked chosen", be.Block, i)
			}
			if win.Worker == "" || win.Tier.String() == "" {
				t.Fatalf("block %d replica %d winner missing identity: %+v", be.Block, i, win)
			}
			if !locByBlock[be.Block][win.Worker] {
				t.Errorf("block %d replica %d chose %s but no replica lives there",
					be.Block, i, win.Worker)
			}
			zero := [4]float64{}
			if win.Objectives == zero {
				t.Errorf("block %d replica %d winner has an all-zero objective vector", be.Block, i)
			}
			for k, cand := range re.Candidates {
				if cand.Chosen != (k == 0) {
					t.Errorf("block %d replica %d candidate %d chosen flag wrong", be.Block, i, k)
				}
				if k > 0 && cand.Score < re.Candidates[k-1].Score {
					t.Errorf("block %d replica %d candidates not sorted by score", be.Block, i)
				}
			}
			if re.Considered < len(re.Candidates) {
				t.Errorf("block %d replica %d considered %d < retained %d",
					be.Block, i, re.Considered, len(re.Candidates))
			}
		}
	}

	// The per-block placement event carries the chosen-vs-runner-up
	// summary for the CLI's text view.
	pl, _, err := fs.Events(0, "placement", 0)
	if err != nil || len(pl.Events) < 2 {
		t.Fatalf("placement events: %v (%d)", err, len(pl.Events))
	}
	if pl.Events[0].Attrs["replica0.chosen"] == "" || pl.Events[0].Attrs["replica0.runner_up"] == "" {
		t.Errorf("placement event lacks chosen/runner-up attrs: %v", pl.Events[0].Attrs)
	}
}

// TestClusterHistorySampling checks the telemetry ring accumulates
// samples at the configured cadence and serves them oldest-first with a
// live sample at the end.
func TestClusterHistorySampling(t *testing.T) {
	c := startTestCluster(t, func(cfg *ClusterConfig) {
		cfg.NumWorkers = 2
		cfg.HistoryInterval = 60 * time.Millisecond
	})
	fs, err := c.Client("")
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()

	waitFor(t, 10*time.Second, "history samples to accumulate", func() bool {
		samples, err := fs.ClusterHistory(0)
		return err == nil && len(samples) >= 4
	})
	samples, err := fs.ClusterHistory(0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(samples); i++ {
		if samples[i].TimeNs < samples[i-1].TimeNs {
			t.Fatalf("samples out of order at %d", i)
		}
	}
	live := samples[len(samples)-1]
	if len(live.Workers) != 2 {
		t.Fatalf("live sample has %d workers, want 2", len(live.Workers))
	}
	if live.Workers[0].ID >= live.Workers[1].ID {
		t.Errorf("workers not sorted: %s, %s", live.Workers[0].ID, live.Workers[1].ID)
	}
	if live.Workers[0].Capacity == 0 {
		t.Error("live sample reports zero capacity")
	}

	if trimmed, err := fs.ClusterHistory(2); err != nil || len(trimmed) != 2 {
		t.Errorf("ClusterHistory(2) = %d samples, %v; want 2", len(trimmed), err)
	}
}
