package integration

import (
	"bytes"
	"io"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/rpc"
	"repro/internal/xfer"
)

// TestTransferFlightRecorder is the acceptance test for the data-path
// flight recorder: it writes and reads a multi-block file on a
// 3-worker cluster, then asserts via Master.GetTransfers that every
// daemon recorded its transfers with a coherent phase breakdown —
// phases sum to no more than the wall time — and that each record
// joins the request's trace (its span ID appears in the assembled
// timeline "octopus-cli trace" renders).
func TestTransferFlightRecorder(t *testing.T) {
	c := startTestCluster(t, func(cfg *ClusterConfig) {
		cfg.NumWorkers = 3
		cfg.NumRacks = 1
		cfg.BlockSize = 1 << 20
	})
	fs, err := c.Client("", client.WithReadahead(2), client.WithWriteWindow(1))
	if err != nil {
		t.Fatalf("Client: %v", err)
	}
	defer fs.Close()

	data := randomBytes(3<<20, 23)
	w, err := fs.Create("/xfer.bin", client.CreateOptions{
		RepVector: core.ReplicationVectorFromFactor(2),
	})
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	writeID := w.ReqID()
	if _, err := w.Write(data); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	r, err := fs.Open("/xfer.bin")
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	readID := r.ReqID()
	got := make([]byte, len(data))
	if _, err := io.ReadFull(r, got); err != nil {
		t.Fatalf("ReadFull: %v", err)
	}
	r.Close()
	if !bytes.Equal(got, data) {
		t.Fatal("read-back mismatch")
	}

	// Worker-side records land after the client has its bytes, and the
	// client ships its own records on Reader.Close/Writer.Close, so
	// poll the fan-out until both requests are fully represented.
	var sources []rpc.TransferSource
	waitFor(t, 5*time.Second, "transfer records from every side", func() bool {
		var err error
		sources, err = fs.Transfers(0, "", 0)
		if err != nil {
			return false
		}
		var clientWrites, clientReads, workerWrites, workerReads int
		for _, src := range sources {
			for _, rec := range src.Page.Entries {
				switch {
				case rec.Source == "client" && rec.Op == "write":
					clientWrites++
				case rec.Source == "client" && rec.Op == "read":
					clientReads++
				case rec.Source != "client" && rec.Op == "write":
					workerWrites++
				case rec.Source != "client" && rec.Op == "read":
					workerReads++
				}
			}
		}
		// 3 blocks at 2 replicas: 3 client writes, 6 worker writes
		// (pipeline hops), 3 client reads, 3 worker reads.
		return clientWrites >= 3 && clientReads >= 3 && workerWrites >= 6 && workerReads >= 3
	})

	if len(sources) != 1+len(c.Workers) {
		t.Fatalf("sources = %d, want master + %d workers", len(sources), len(c.Workers))
	}
	if sources[0].Source != "master" {
		t.Fatalf("first source = %q, want master", sources[0].Source)
	}
	for _, src := range sources {
		if src.Err != "" {
			t.Fatalf("source %s fan-out failed: %s", src.Source, src.Err)
		}
	}

	var all []xfer.Record
	for _, src := range sources {
		all = append(all, src.Page.Entries...)
	}
	for _, rec := range all {
		checkRecord(t, rec)
	}

	// The records must join the traces the requests produced: every
	// write-path record carries the write request's trace ID, and a
	// worker record's span appears in the assembled timeline.
	assertJoined(t, fs, all, writeID, "write")
	assertJoined(t, fs, all, readID, "read")
}

// checkRecord asserts the per-record invariants: identity fields set,
// a wall time, and serially measured phases that sum to no more than
// that wall time.
func checkRecord(t *testing.T, rec xfer.Record) {
	t.Helper()
	if rec.Op == "" || rec.Source == "" || rec.Block == 0 {
		t.Errorf("record missing identity: %+v", rec)
	}
	if rec.Result != "ok" {
		t.Errorf("%s %s of block %d: result %q", rec.Source, rec.Op, rec.Block, rec.Result)
	}
	if rec.TraceID == "" || rec.SpanID == "" {
		t.Errorf("%s %s of block %d not joined to a trace/span", rec.Source, rec.Op, rec.Block)
	}
	if rec.TotalNs <= 0 {
		t.Errorf("%s %s of block %d: TotalNs = %d", rec.Source, rec.Op, rec.Block, rec.TotalNs)
	}
	if sum := rec.PhaseSumNs(); sum > rec.TotalNs {
		t.Errorf("%s %s of block %d: phases sum to %d > wall %d",
			rec.Source, rec.Op, rec.Block, sum, rec.TotalNs)
	}
	if rec.Bytes <= 0 {
		t.Errorf("%s %s of block %d: Bytes = %d", rec.Source, rec.Op, rec.Block, rec.Bytes)
	}

	// Phase completeness per vantage point: each side must populate
	// the phases that exist on its side of the wire.
	switch {
	case rec.Source == "client" && rec.Op == "write":
		if rec.DialNs <= 0 || rec.HeaderEncodeNs <= 0 || rec.NetNs <= 0 || rec.AckWaitNs <= 0 {
			t.Errorf("client write of block %d missing phases: dial=%d enc=%d net=%d ack=%d",
				rec.Block, rec.DialNs, rec.HeaderEncodeNs, rec.NetNs, rec.AckWaitNs)
		}
	case rec.Source == "client" && rec.Op == "read":
		// A prefetched read carries stall instead of dial/decode (the
		// open ran in the background); both kinds must show net time.
		if rec.NetNs <= 0 {
			t.Errorf("client read of block %d: NetNs = %d", rec.Block, rec.NetNs)
		}
		if rec.DialNs <= 0 && rec.StallNs <= 0 {
			t.Errorf("client read of block %d has neither dial nor prefetch stall", rec.Block)
		}
	case rec.Op == "write": // worker vantage
		if rec.HeaderDecodeNs <= 0 || rec.DiskNs <= 0 || rec.NetNs <= 0 {
			t.Errorf("worker write of block %d missing phases: dec=%d disk=%d net=%d",
				rec.Block, rec.HeaderDecodeNs, rec.DiskNs, rec.NetNs)
		}
		if rec.Tier == "" {
			t.Errorf("worker write of block %d has no tier", rec.Block)
		}
	case rec.Op == "read": // worker vantage
		if rec.HeaderDecodeNs <= 0 || rec.DiskNs <= 0 || rec.NetNs <= 0 {
			t.Errorf("worker read of block %d missing phases: dec=%d disk=%d net=%d",
				rec.Block, rec.HeaderDecodeNs, rec.DiskNs, rec.NetNs)
		}
	}
}

// assertJoined checks the record↔trace join for one request: records
// with the request's trace ID exist on both the client and worker
// sides, and at least one worker record's span ID appears in the
// assembled timeline (the view "octopus-cli trace <req-id>" renders).
func assertJoined(t *testing.T, fs *client.FileSystem, all []xfer.Record, reqID, op string) {
	t.Helper()
	var clientRecs, workerRecs []xfer.Record
	for _, rec := range all {
		if rec.TraceID != reqID || rec.Op != op {
			continue
		}
		if rec.Source == "client" {
			clientRecs = append(clientRecs, rec)
		} else {
			workerRecs = append(workerRecs, rec)
		}
	}
	if len(clientRecs) == 0 || len(workerRecs) == 0 {
		t.Fatalf("trace %s: client records = %d, worker records = %d, want both sides",
			reqID, len(clientRecs), len(workerRecs))
	}

	spans, err := fs.Trace(reqID)
	if err != nil {
		t.Fatalf("Trace(%s): %v", reqID, err)
	}
	spanIDs := map[string]bool{}
	for _, sp := range spans {
		spanIDs[sp.SpanID] = true
	}
	joined := 0
	for _, rec := range workerRecs {
		if spanIDs[rec.SpanID] {
			joined++
		}
	}
	if joined == 0 {
		t.Errorf("trace %s: no worker %s record's span ID appears in the assembled timeline", reqID, op)
	}
}
