package integration

import (
	"bytes"
	"io"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/rpc"
)

// TestMoverPromotesHotBlockEndToEnd is the tier-mover acceptance test:
// a block pinned to HDD that turns hot gains a memory replica chosen
// by the placement policy, the cold HDD source is retired once the
// copy confirms, the move is journaled with its before/after tier
// vectors, and both octopus-cli surfaces (explain, mover) can render
// why it happened. The data survives the move intact.
func TestMoverPromotesHotBlockEndToEnd(t *testing.T) {
	c := startTestCluster(t, func(cfg *ClusterConfig) {
		cfg.NumWorkers = 2
		cfg.SSDCapacity = 0 // promotions have exactly one destination tier
		cfg.MoverInterval = 100 * time.Millisecond
		cfg.MoverCooldown = time.Hour // one move per block, no oscillation
	})
	fs, err := c.Client("")
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()

	data := randomBytes(256<<10, 7)
	if err := fs.WriteFile("/mover-hot", data, core.NewReplicationVector(0, 0, 1, 0, 0)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 15; i++ {
		r, err := fs.Open("/mover-hot")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := io.Copy(io.Discard, r); err != nil {
			t.Fatal(err)
		}
		r.Close()
	}

	// Heat rides worker heartbeats (50ms), the mover passes every
	// 100ms, and the copy confirms via BlockReceived: within a few
	// seconds the only replica should sit in memory.
	waitFor(t, 10*time.Second, "hot block promoted to memory and HDD source retired", func() bool {
		blocks, err := fs.GetFileBlockLocations("/mover-hot", 0, -1)
		if err != nil || len(blocks) != 1 {
			return false
		}
		mem, hdd := 0, 0
		for _, loc := range blocks[0].Locations {
			switch loc.Tier {
			case core.TierMemory:
				mem++
			case core.TierHDD:
				hdd++
			}
		}
		return mem == 1 && hdd == 0
	})

	// The bytes are intact after copy-then-delete.
	got, err := fs.ReadFile("/mover-hot")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("data corrupted by the tier move")
	}

	// The block converges to healthy against its (shifted) expectation:
	// the pin followed the replica from HDD to memory. A block report
	// generated before the source worker processed its delete can
	// transiently resurface the retired replica, so poll until the
	// excess-removal pass settles it.
	var f rpc.FsckFile
	waitFor(t, 10*time.Second, "post-move block fully healthy", func() bool {
		files, err := fs.Fsck("/mover-hot")
		if err != nil || len(files) != 1 {
			return false
		}
		f = files[0]
		return f.MissingReplicas == 0 && f.ExcessReplicas == 0 && f.HealthyBlocks == f.Blocks
	})
	if f.Expected.Tier(core.TierHDD) != 1 {
		t.Errorf("namespace vector = %v (the file-level pin is not rewritten by design)", f.Expected)
	}

	// The move is a first-class journal event with tier vectors.
	page, _, err := fs.Events(0, "block_moved", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(page.Events) != 1 {
		t.Fatalf("block_moved events = %d, want 1", len(page.Events))
	}
	e := page.Events[0]
	if e.Attrs["path"] != "/mover-hot" || e.Attrs["kind"] != rpc.MovePromote ||
		e.Attrs["before"] != "HDD:1" || e.Attrs["after"] != "MEMORY:1" {
		t.Errorf("block_moved attrs = %+v", e.Attrs)
	}
	if e.TraceID == "" {
		t.Error("block_moved event carries no trace ID")
	}

	// octopus-cli explain: the block's record now answers "why is this
	// in memory" with the promotion, not the original write.
	exp, err := fs.Explain("/mover-hot")
	if err != nil {
		t.Fatal(err)
	}
	if len(exp.Blocks) != 1 {
		t.Fatalf("explain blocks = %d, want 1", len(exp.Blocks))
	}
	be := exp.Blocks[0]
	if be.Origin != rpc.MovePromote || be.Heat <= 0 {
		t.Errorf("explain record = origin %q heat %.2f, want promote with heat", be.Origin, be.Heat)
	}
	if be.TraceID != e.TraceID {
		t.Errorf("explain trace %q != journal trace %q", be.TraceID, e.TraceID)
	}
	chosenMemory := false
	for _, rep := range be.Replicas {
		for _, cand := range rep.Candidates {
			if cand.Chosen && cand.Tier == core.TierMemory {
				chosenMemory = true
			}
		}
	}
	if !chosenMemory {
		t.Errorf("explain decision = %+v, want a chosen memory target", be.Replicas)
	}

	// octopus-cli mover: status reports the completed promotion.
	st, err := fs.Mover()
	if err != nil {
		t.Fatal(err)
	}
	if !st.Enabled || st.Counters.Promoted != 1 || st.Counters.MovedBytes != int64(len(data)) {
		t.Errorf("mover status = enabled %v counters %+v", st.Enabled, st.Counters)
	}
	if len(st.Recent) != 1 {
		t.Fatalf("recent moves = %d, want 1", len(st.Recent))
	}
	rec := st.Recent[0]
	if rec.Path != "/mover-hot" || rec.Kind != rpc.MovePromote || rec.Outcome != rpc.MoveDone {
		t.Errorf("recent move = %+v", rec)
	}
	if rec.FromTier != core.TierHDD || rec.ToTier != core.TierMemory ||
		rec.AfterTiers[core.TierMemory] != 1 || rec.AfterTiers[core.TierHDD] != 0 {
		t.Errorf("recent move tiers = %+v", rec)
	}
}

// TestMoverCooldownPreventsThrash drives the oscillation scenario: a
// promoted block whose heat immediately collapses (short half-life)
// becomes cold-on-premium on the very next pass, but the per-block
// cooldown must hold the demotion back — one move, not a ping-pong.
func TestMoverCooldownPreventsThrash(t *testing.T) {
	c := startTestCluster(t, func(cfg *ClusterConfig) {
		cfg.NumWorkers = 2
		cfg.SSDCapacity = 0
		cfg.MoverInterval = 100 * time.Millisecond
		cfg.MoverCooldown = time.Hour
		cfg.HeatHalfLife = 300 * time.Millisecond // heat collapses right after the reads
	})
	fs, err := c.Client("")
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()

	data := randomBytes(128<<10, 9)
	if err := fs.WriteFile("/flip", data, core.NewReplicationVector(0, 0, 1, 0, 0)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 15; i++ {
		r, err := fs.Open("/flip")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := io.Copy(io.Discard, r); err != nil {
			t.Fatal(err)
		}
		r.Close()
	}
	waitFor(t, 10*time.Second, "hot block promoted", func() bool {
		page, _, err := fs.Events(0, "block_moved", 0)
		if err != nil {
			t.Fatal(err)
		}
		return len(page.Events) >= 1
	})

	// Within a few half-lives the heat collapses below the cold cutoff
	// and the block turns cold-on-premium; the mover sees the finding
	// every pass but the cooldown must hold the demotion back.
	waitFor(t, 10*time.Second, "cold-on-premium finding held back by cooldown", func() bool {
		st, err := fs.Mover()
		if err != nil {
			t.Fatal(err)
		}
		return st.Counters.SkippedCooldown > 0
	})
	// More passes run; still exactly one move.
	time.Sleep(300 * time.Millisecond)
	page, _, err := fs.Events(0, "block_moved", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(page.Events) != 1 {
		t.Fatalf("block_moved events = %d, want exactly 1 (no thrash)", len(page.Events))
	}
	blocks, err := fs.GetFileBlockLocations("/flip", 0, -1)
	if err != nil || len(blocks) != 1 {
		t.Fatalf("locations: %v", err)
	}
	for _, loc := range blocks[0].Locations {
		if loc.Tier != core.TierMemory {
			t.Errorf("replica drifted off memory during cooldown: %+v", loc)
		}
	}
	st, err := fs.Mover()
	if err != nil {
		t.Fatal(err)
	}
	if st.Counters.SkippedCooldown == 0 {
		t.Error("cooldown never held a move back despite the cold-on-premium finding")
	}
	if st.Counters.Demoted != 0 {
		t.Errorf("demotions = %d, want 0 under cooldown", st.Counters.Demoted)
	}
}
