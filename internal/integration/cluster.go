// Package integration provides an in-process OctopusFS cluster —
// master, workers, and clients wired over real TCP on localhost — for
// integration tests, examples, and the namespace benchmarks. Media can
// be throttled to emulate the heterogeneous devices of the paper's
// evaluation cluster.
package integration

import (
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/master"
	"repro/internal/policy"
	"repro/internal/rpc"
	"repro/internal/storage"
	"repro/internal/worker"
)

// ClusterConfig shapes a test cluster.
type ClusterConfig struct {
	// NumWorkers and NumRacks lay out the topology (workers are
	// assigned to racks round-robin).
	NumWorkers int
	NumRacks   int

	// MemCapacity, SSDCapacity, HDDCapacity size each worker's media;
	// HDDs are split across NumHDDs devices. RemoteCapacity, when
	// positive, attaches a remote-tier media to every worker
	// (integrated mode, paper §2.4) emulating network-attached
	// storage.
	MemCapacity    int64
	SSDCapacity    int64
	HDDCapacity    int64
	NumHDDs        int
	RemoteCapacity int64

	// Throttle applies the paper's Table 2 throughputs (scaled by
	// ThrottleScale) to every media, making a laptop behave like the
	// evaluation cluster. Unthrottled clusters run at native speed.
	Throttle      bool
	ThrottleScale float64

	// BlockSize is the default file block size.
	BlockSize int64

	// Placement overrides the master's placement policy (nil = MOOP).
	Placement policy.PlacementPolicy

	// Retrieval overrides the retrieval policy (nil = OctopusFS).
	Retrieval policy.RetrievalPolicy

	// MetaDir persists the master namespace (""= volatile).
	MetaDir string

	// EditLogSync fsyncs the master edit log after every append, so
	// audit/observability tests see a non-zero fsync phase.
	EditLogSync bool

	// Dir is the root directory for worker block storage.
	Dir string

	// MasterLogger and WorkerLogger capture daemon logs (nil =
	// discard); SlowOpThreshold is forwarded to both daemons so tests
	// can force slow-op logging with a zero threshold.
	MasterLogger    *slog.Logger
	WorkerLogger    *slog.Logger
	SlowOpThreshold time.Duration

	// TraceSample is the fraction of fast traces each daemon retains
	// (slow traces are always kept). Forwarded to master and workers;
	// with the default zero SlowOpThreshold every trace counts as slow,
	// so tests see all spans regardless.
	TraceSample float64

	// WorkerTimeout overrides how long the master waits without
	// heartbeats before declaring a worker dead (0 = 10s). Failover
	// tests shrink it so killed workers deregister quickly.
	WorkerTimeout time.Duration

	// EventCapacity bounds each daemon's event journal (0 = default).
	EventCapacity int

	// HistoryInterval paces the master's telemetry sampling (0 =
	// default; negative disables sampling).
	HistoryInterval time.Duration

	// HeatHalfLife is the master's access-heat decay half-life (0 =
	// default 60s).
	HeatHalfLife time.Duration

	// MoverInterval enables the master's background tier mover at this
	// cadence. Unlike on a production master, zero keeps the mover
	// DISABLED in test clusters, so heat-plane tests can observe
	// misplacements without the mover fixing them underneath.
	MoverInterval time.Duration

	// MoverMaxMoves, MoverBytesPerSec, and MoverCooldown forward the
	// mover governors to the master (0 = master defaults).
	MoverMaxMoves    int
	MoverBytesPerSec int64
	MoverCooldown    time.Duration
}

// DefaultClusterConfig mirrors the paper's worker shape at laptop
// scale: 3 racks, memory + SSD + 3 HDDs per worker.
func DefaultClusterConfig(dir string) ClusterConfig {
	return ClusterConfig{
		NumWorkers:  4,
		NumRacks:    2,
		MemCapacity: 64 << 20,
		SSDCapacity: 256 << 20,
		HDDCapacity: 768 << 20,
		NumHDDs:     3,
		BlockSize:   4 << 20,
		Dir:         dir,
	}
}

// Cluster is a running in-process OctopusFS deployment.
type Cluster struct {
	Master  *master.Master
	Workers []*worker.Worker
	cfg     ClusterConfig
}

// Table 2 throughputs (MB/s) used when throttling is enabled; the
// remote tier (not in Table 2) emulates network-attached storage
// bottlenecked by a shared 1 Gbps uplink.
const (
	MemWriteMBps    = 1897.4
	MemReadMBps     = 3224.8
	SSDWriteMBps    = 340.6
	SSDReadMBps     = 419.5
	HDDWriteMBps    = 126.3
	HDDReadMBps     = 177.1
	RemoteWriteMBps = 110.0
	RemoteReadMBps  = 115.0
)

// StartCluster boots a master and its workers and waits for every
// worker to register.
func StartCluster(cfg ClusterConfig) (*Cluster, error) {
	if cfg.NumWorkers <= 0 {
		return nil, fmt.Errorf("integration: NumWorkers must be positive")
	}
	if cfg.NumRacks <= 0 {
		cfg.NumRacks = 1
	}
	if cfg.NumHDDs <= 0 {
		cfg.NumHDDs = 1
	}
	if cfg.ThrottleScale <= 0 {
		cfg.ThrottleScale = 1
	}
	if cfg.WorkerTimeout <= 0 {
		cfg.WorkerTimeout = 10 * time.Second
	}
	moverInterval := cfg.MoverInterval
	if moverInterval == 0 {
		moverInterval = -1 // disabled unless a test opts in
	}
	m, err := master.New(master.Config{
		ListenAddr:       "127.0.0.1:0",
		MetaDir:          cfg.MetaDir,
		EditLogSync:      cfg.EditLogSync,
		Placement:        cfg.Placement,
		Retrieval:        cfg.Retrieval,
		BlockSize:        cfg.BlockSize,
		WorkerTimeout:    cfg.WorkerTimeout,
		MonitorInterval:  50 * time.Millisecond,
		Seed:             1,
		Logger:           cfg.MasterLogger,
		SlowOpThreshold:  cfg.SlowOpThreshold,
		TraceSample:      cfg.TraceSample,
		EventCapacity:    cfg.EventCapacity,
		HistoryInterval:  cfg.HistoryInterval,
		HeatHalfLife:     cfg.HeatHalfLife,
		MoverInterval:    moverInterval,
		MoverMaxMoves:    cfg.MoverMaxMoves,
		MoverBytesPerSec: cfg.MoverBytesPerSec,
		MoverCooldown:    cfg.MoverCooldown,
	})
	if err != nil {
		return nil, err
	}
	c := &Cluster{Master: m, cfg: cfg}
	for i := 0; i < cfg.NumWorkers; i++ {
		w, err := c.startWorker(i)
		if err != nil {
			c.Close()
			return nil, err
		}
		c.Workers = append(c.Workers, w)
	}
	if err := c.awaitWorkers(cfg.NumWorkers, 5*time.Second); err != nil {
		c.Close()
		return nil, err
	}
	return c, nil
}

func (c *Cluster) startWorker(i int) (*worker.Worker, error) {
	cfg := c.cfg
	node := fmt.Sprintf("node%d", i+1)
	rack := fmt.Sprintf("/rack%d", i%cfg.NumRacks+1)
	scale := cfg.ThrottleScale

	var media []storage.MediaConfig
	// Unthrottled media still advertise the paper's tier speeds so the
	// policies see realistic relative performance.
	throttle := func(w, r float64) (float64, float64) {
		if !cfg.Throttle {
			return 0, 0
		}
		return w * scale, r * scale
	}
	if cfg.MemCapacity > 0 {
		w, r := throttle(MemWriteMBps, MemReadMBps)
		media = append(media, storage.MediaConfig{
			ID: core.StorageID(node + ":mem0"), Tier: core.TierMemory,
			Capacity: cfg.MemCapacity, WriteMBps: w, ReadMBps: r,
			AdvertiseWriteMBps: MemWriteMBps, AdvertiseReadMBps: MemReadMBps,
		})
	}
	if cfg.SSDCapacity > 0 {
		w, r := throttle(SSDWriteMBps, SSDReadMBps)
		media = append(media, storage.MediaConfig{
			ID: core.StorageID(node + ":ssd0"), Tier: core.TierSSD,
			Capacity: cfg.SSDCapacity, WriteMBps: w, ReadMBps: r,
			AdvertiseWriteMBps: SSDWriteMBps, AdvertiseReadMBps: SSDReadMBps,
			Dir: filepath.Join(cfg.Dir, node, "ssd0"),
		})
	}
	for d := 0; d < cfg.NumHDDs && cfg.HDDCapacity > 0; d++ {
		w, r := throttle(HDDWriteMBps, HDDReadMBps)
		media = append(media, storage.MediaConfig{
			ID:        core.StorageID(fmt.Sprintf("%s:hdd%d", node, d)),
			Tier:      core.TierHDD,
			Capacity:  cfg.HDDCapacity / int64(cfg.NumHDDs),
			WriteMBps: w, ReadMBps: r,
			AdvertiseWriteMBps: HDDWriteMBps, AdvertiseReadMBps: HDDReadMBps,
			Dir: filepath.Join(cfg.Dir, node, fmt.Sprintf("hdd%d", d)),
		})
	}
	if cfg.RemoteCapacity > 0 {
		w, r := throttle(RemoteWriteMBps, RemoteReadMBps)
		media = append(media, storage.MediaConfig{
			ID: core.StorageID(node + ":remote0"), Tier: core.TierRemote,
			Capacity: cfg.RemoteCapacity, WriteMBps: w, ReadMBps: r,
			AdvertiseWriteMBps: RemoteWriteMBps, AdvertiseReadMBps: RemoteReadMBps,
			Dir: filepath.Join(cfg.Dir, node, "remote0"),
		})
	}
	return worker.New(worker.Config{
		ID:                  core.WorkerID(node),
		Node:                node,
		Rack:                rack,
		MasterAddr:          c.Master.Addr(),
		DataAddr:            "127.0.0.1:0",
		Media:               media,
		HeartbeatInterval:   50 * time.Millisecond,
		BlockReportInterval: 250 * time.Millisecond,
		Logger:              cfg.WorkerLogger,
		SlowOpThreshold:     cfg.SlowOpThreshold,
		TraceSample:         cfg.TraceSample,
		EventCapacity:       cfg.EventCapacity,
	})
}

// awaitWorkers blocks until n workers are registered.
func (c *Cluster) awaitWorkers(n int, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for c.Master.NumWorkers() < n {
		if time.Now().After(deadline) {
			return fmt.Errorf("integration: only %d of %d workers registered", c.Master.NumWorkers(), n)
		}
		time.Sleep(10 * time.Millisecond)
	}
	return nil
}

// Client dials a client handle; node may name one of the worker nodes
// for locality or be empty for an off-cluster client. Extra options
// (e.g. client.WithReadahead, client.WithWriteWindow) are forwarded.
func (c *Cluster) Client(node string, extra ...client.Option) (*client.FileSystem, error) {
	opts := []client.Option{client.WithOwner("it")}
	if node != "" {
		opts = append(opts, client.WithNode(node))
	}
	opts = append(opts, extra...)
	return client.Dial(c.Master.Addr(), opts...)
}

// KillWorker stops one worker without deregistering it, simulating a
// node failure.
func (c *Cluster) KillWorker(i int) error {
	return c.Workers[i].Close()
}

// Close tears the cluster down.
func (c *Cluster) Close() {
	// Idle pooled conns point at this cluster's workers; drop them so
	// they don't linger (or get picked up by a later in-process
	// cluster that happens to land on a reused port).
	rpc.ResetDataPool()
	for _, w := range c.Workers {
		if w != nil {
			w.Close()
		}
	}
	c.Master.Close()
}

// TempDir builds a disposable directory for standalone callers
// (examples); tests should pass t.TempDir() instead.
func TempDir() (string, func(), error) {
	dir, err := os.MkdirTemp("", "octopusfs-*")
	if err != nil {
		return "", nil, err
	}
	return dir, func() { os.RemoveAll(dir) }, nil
}
