package integration

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/master"
)

func TestBackupMasterCheckpointAndTakeover(t *testing.T) {
	c := startTestCluster(t)
	fs, _ := c.Client("")
	defer fs.Close()

	fs.Mkdir("/critical", true)
	if err := fs.WriteFile("/critical/state", randomBytes(1<<20, 53), core.ReplicationVectorFromFactor(1)); err != nil {
		t.Fatal(err)
	}

	ckptDir := t.TempDir()
	b, err := master.NewBackup(master.BackupConfig{
		PrimaryAddr:   c.Master.Addr(),
		CheckpointDir: ckptDir,
		Interval:      100 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("NewBackup: %v", err)
	}
	defer b.Close()

	// The backup's standby image must already reflect the namespace.
	if !b.Namespace().Exists("/critical/state") {
		t.Error("backup standby image missing file")
	}

	// New mutations reach the backup within the sync interval.
	fs.Mkdir("/late", true)
	waitFor(t, 5*time.Second, "backup to pick up /late", func() bool {
		return b.Namespace().Exists("/late")
	})

	// The checkpoint file must be restorable by a fresh master.
	if _, err := os.Stat(filepath.Join(ckptDir, "fsimage")); err != nil {
		t.Fatalf("checkpoint file: %v", err)
	}
	m2, err := master.New(master.Config{
		ListenAddr: "127.0.0.1:0",
		MetaDir:    ckptDir,
	})
	if err != nil {
		t.Fatalf("takeover master: %v", err)
	}
	defer m2.Close()
	if !m2.Namespace().Exists("/critical/state") || !m2.Namespace().Exists("/late") {
		t.Error("takeover master missing namespace entries")
	}
}

func TestMasterRestartFromMetaDir(t *testing.T) {
	metaDir := t.TempDir()
	dataDir := t.TempDir()
	cfg := DefaultClusterConfig(dataDir)
	cfg.MetaDir = metaDir
	c, err := StartCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fs, _ := c.Client("")
	data := randomBytes(2<<20, 59)
	if err := fs.WriteFile("/durable", data, core.ReplicationVectorFromFactor(2)); err != nil {
		t.Fatal(err)
	}
	fs.Close()
	c.Close()

	// A new cluster over the same metadata and block directories must
	// recover the namespace, and block reports must repopulate the
	// block map so the data is readable again.
	cfg2 := DefaultClusterConfig(dataDir)
	cfg2.MetaDir = metaDir
	c2, err := StartCluster(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	fs2, _ := c2.Client("")
	defer fs2.Close()

	waitFor(t, 10*time.Second, "block reports to restore replicas", func() bool {
		blocks, err := fs2.GetFileBlockLocations("/durable", 0, -1)
		if err != nil || len(blocks) == 0 {
			return false
		}
		for _, b := range blocks {
			if len(b.Locations) == 0 {
				return false
			}
		}
		return true
	})
	got, err := fs2.ReadFile("/durable")
	if err != nil {
		t.Fatalf("read after restart: %v", err)
	}
	if len(got) != len(data) {
		t.Fatalf("restored length = %d, want %d", len(got), len(data))
	}
	for i := range got {
		if got[i] != data[i] {
			t.Fatal("restored content differs")
		}
	}
}
