package integration

import (
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
)

// fetchMetrics GETs a daemon's metrics endpoint and returns the body.
func fetchMetrics(t *testing.T, addr, query string) string {
	t.Helper()
	resp, err := http.Get("http://" + addr + "/metrics" + query)
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: %s", resp.Status)
	}
	if query == "" {
		if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
			t.Errorf("Content-Type = %q, want Prometheus text 0.0.4", ct)
		}
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading /metrics body: %v", err)
	}
	return string(body)
}

// parseExposition reads Prometheus text into sample name (incl. labels)
// -> value, ignoring comment lines.
func parseExposition(t *testing.T, body string) map[string]float64 {
	t.Helper()
	samples := map[string]float64{}
	for _, line := range strings.Split(body, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("malformed exposition line %q", line)
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			t.Fatalf("bad value in exposition line %q: %v", line, err)
		}
		samples[line[:i]] = v
	}
	return samples
}

// sumPrefix totals every sample whose name starts with prefix.
func sumPrefix(samples map[string]float64, prefix string) float64 {
	total := 0.0
	for name, v := range samples {
		if strings.HasPrefix(name, prefix) {
			total += v
		}
	}
	return total
}

// TestClusterMetricsEndpoints drives a write/read workload through a
// mini-cluster and asserts the master and worker /metrics endpoints
// report the op counts, latency histograms, and per-tier byte counters
// the workload must have produced.
func TestClusterMetricsEndpoints(t *testing.T) {
	c := startTestCluster(t, func(cfg *ClusterConfig) {
		cfg.NumWorkers = 2
		cfg.NumRacks = 1
	})
	masterAddr, err := c.Master.ServeHTTP("127.0.0.1:0")
	if err != nil {
		t.Fatalf("master ServeHTTP: %v", err)
	}
	workerAddrs := make([]string, len(c.Workers))
	for i, w := range c.Workers {
		if workerAddrs[i], err = w.ServeHTTP("127.0.0.1:0"); err != nil {
			t.Fatalf("worker %d ServeHTTP: %v", i, err)
		}
	}

	fs, err := c.Client("")
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	const replicas = 2
	data := randomBytes(2<<20, 11)
	if err := fs.WriteFile("/metrics.bin", data, core.ReplicationVectorFromFactor(replicas)); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	if _, err := fs.ReadFile("/metrics.bin"); err != nil {
		t.Fatalf("ReadFile: %v", err)
	}

	master := parseExposition(t, fetchMetrics(t, masterAddr, ""))
	for _, op := range []string{"create", "addBlock", "complete", "getBlockLocations"} {
		key := fmt.Sprintf("octopus_master_ops_total{op=%q}", op)
		if master[key] < 1 {
			t.Errorf("%s = %v, want >= 1", key, master[key])
		}
		count := fmt.Sprintf("octopus_master_op_duration_seconds_count{op=%q}", op)
		if master[count] < 1 {
			t.Errorf("%s = %v, want >= 1 (latency histogram missing)", count, master[count])
		}
	}
	if got := sumPrefix(master, "octopus_master_op_duration_seconds_bucket"); got == 0 {
		t.Error("master exposition has no op latency histogram buckets")
	}
	if got := sumPrefix(master, "octopus_master_placements_total"); got < replicas {
		t.Errorf("placements total = %v, want >= %d", got, replicas)
	}
	if got := sumPrefix(master, "octopus_master_retrievals_total"); got < 1 {
		t.Errorf("retrievals total = %v, want >= 1", got)
	}

	// Every replica's bytes must land in some worker's per-tier write
	// counter; the read bytes come from exactly one replica.
	tiered := regexp.MustCompile(`^octopus_worker_bytes_total\{op="(write|read)",tier="(MEMORY|SSD|HDD|REMOTE)"\} `)
	var wrote, read float64
	tierLabelled := false
	for i, addr := range workerAddrs {
		body := fetchMetrics(t, addr, "")
		samples := parseExposition(t, body)
		wrote += sumPrefix(samples, `octopus_worker_bytes_total{op="write"`)
		read += sumPrefix(samples, `octopus_worker_bytes_total{op="read"`)
		for _, line := range strings.Split(body, "\n") {
			if tiered.MatchString(line) {
				tierLabelled = true
			}
		}
		if got := sumPrefix(samples, "octopus_worker_op_duration_seconds_bucket"); got == 0 {
			t.Errorf("worker %d exposition has no op latency histogram buckets", i)
		}
	}
	if want := float64(len(data) * replicas); wrote < want {
		t.Errorf("workers wrote %v bytes, want >= %v", wrote, want)
	}
	if want := float64(len(data)); read < want {
		t.Errorf("workers served %v read bytes, want >= %v", read, want)
	}
	if !tierLabelled {
		t.Error("no octopus_worker_bytes_total sample carries a known tier label")
	}

	// The JSON exposition and health endpoints must work on both daemons.
	for _, addr := range []string{masterAddr, workerAddrs[0]} {
		var decoded []map[string]any
		if err := json.Unmarshal([]byte(fetchMetrics(t, addr, "?format=json")), &decoded); err != nil {
			t.Errorf("%s JSON exposition: %v", addr, err)
		} else if len(decoded) == 0 {
			t.Errorf("%s JSON exposition is empty", addr)
		}
		resp, err := http.Get("http://" + addr + "/healthz")
		if err != nil {
			t.Fatalf("GET /healthz: %v", err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s /healthz = %s", addr, resp.Status)
		}
	}
}

// syncBuffer is a goroutine-safe log sink.
type syncBuffer struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// TestSlowOpRequestIDCorrelation forces slow-op logging with a zero
// threshold and checks that a single client read carries one request ID
// through both the master's and the serving worker's slow-op lines.
func TestSlowOpRequestIDCorrelation(t *testing.T) {
	var masterLog, workerLog syncBuffer
	c := startTestCluster(t, func(cfg *ClusterConfig) {
		cfg.NumWorkers = 2
		cfg.NumRacks = 1
		cfg.MasterLogger = slog.New(slog.NewTextHandler(&masterLog, nil))
		cfg.WorkerLogger = slog.New(slog.NewTextHandler(&workerLog, nil))
		cfg.SlowOpThreshold = 0 // log every operation
	})
	fs, err := c.Client("")
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()

	data := randomBytes(1<<20, 13)
	if err := fs.WriteFile("/trace.bin", data, core.ReplicationVectorFromFactor(2)); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	if _, err := fs.ReadFile("/trace.bin"); err != nil {
		t.Fatalf("ReadFile: %v", err)
	}

	readLine := regexp.MustCompile(`msg="slow op" op=read req=([0-9a-f]{16})`)
	m := readLine.FindStringSubmatch(workerLog.String())
	if m == nil {
		t.Fatalf("no slow-op read line in worker log:\n%s", workerLog.String())
	}
	reqID := m[1]
	if !strings.Contains(masterLog.String(), "op=getBlockLocations req="+reqID) {
		t.Fatalf("master log has no getBlockLocations line for req %s:\n%s", reqID, masterLog.String())
	}

	// The write's request ID must likewise appear on both sides.
	writeLine := regexp.MustCompile(`msg="slow op" op=write req=([0-9a-f]{16})`)
	m = writeLine.FindStringSubmatch(workerLog.String())
	if m == nil {
		t.Fatalf("no slow-op write line in worker log")
	}
	if !strings.Contains(masterLog.String(), "op=addBlock req="+m[1]) {
		t.Fatalf("master log has no addBlock line for write req %s", m[1])
	}
}
