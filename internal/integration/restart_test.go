package integration

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/master"
)

// TestMasterRestartWithLiveWorkers restarts the master on the same
// address while the workers keep running: their heartbeats fail during
// the outage, they re-register automatically, and block reports
// repopulate the new master's block map so existing data stays
// readable.
func TestMasterRestartWithLiveWorkers(t *testing.T) {
	metaDir := t.TempDir()
	cfg := DefaultClusterConfig(t.TempDir())
	cfg.MetaDir = metaDir
	c, err := StartCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	fs, _ := c.Client("")
	defer fs.Close()
	data := randomBytes(2<<20, 101)
	if err := fs.WriteFile("/sticky", data, core.NewReplicationVector(0, 1, 1, 0, 0)); err != nil {
		t.Fatal(err)
	}

	// Restart the master on the exact same address.
	addr := c.Master.Addr()
	if err := c.Master.Close(); err != nil {
		t.Fatal(err)
	}
	m2, err := master.New(master.Config{
		ListenAddr:      addr,
		MetaDir:         metaDir,
		BlockSize:       cfg.BlockSize,
		WorkerTimeout:   2 * time.Second,
		MonitorInterval: 50 * time.Millisecond,
		Seed:            1,
	})
	if err != nil {
		t.Fatalf("restarting master on %s: %v", addr, err)
	}
	c.Master = m2 // so Cleanup closes the right instance

	// The running workers re-register on their next failed heartbeat.
	waitFor(t, 10*time.Second, "workers to re-register", func() bool {
		return m2.NumWorkers() == cfg.NumWorkers
	})

	// Data written before the restart is readable again once block
	// reports arrive.
	fs2, err := c.Client("")
	if err != nil {
		t.Fatal(err)
	}
	defer fs2.Close()
	waitFor(t, 10*time.Second, "block map to repopulate", func() bool {
		blocks, err := fs2.GetFileBlockLocations("/sticky", 0, -1)
		if err != nil || len(blocks) == 0 {
			return false
		}
		for _, b := range blocks {
			if len(b.Locations) < 2 {
				return false
			}
		}
		return true
	})
	got, err := fs2.ReadFile("/sticky")
	if err != nil || len(got) != len(data) {
		t.Fatalf("read after master restart: %v", err)
	}
	for i := range got {
		if got[i] != data[i] {
			t.Fatal("content differs after master restart")
		}
	}

	// And the cluster still accepts new writes.
	if err := fs2.WriteFile("/fresh", randomBytes(1<<20, 103), core.ReplicationVectorFromFactor(2)); err != nil {
		t.Fatalf("write after master restart: %v", err)
	}
}
