package integration

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/client"
	"repro/internal/core"
)

func TestFederationRoutesByMount(t *testing.T) {
	// Two independent clusters federated under /hot and /cold.
	hot := startTestCluster(t)
	cold := startTestCluster(t)

	fed, err := client.NewFederation(map[string]string{
		"/hot":  hot.Master.Addr(),
		"/cold": cold.Master.Addr(),
	}, client.WithOwner("fed"))
	if err != nil {
		t.Fatal(err)
	}
	defer fed.Close()

	hotData := randomBytes(1<<20, 71)
	coldData := randomBytes(1<<20, 73)
	if err := fed.Mkdir("/hot/a", true); err != nil {
		t.Fatal(err)
	}
	if err := fed.Mkdir("/cold/a", true); err != nil {
		t.Fatal(err)
	}
	if err := fed.WriteFile("/hot/a/f", hotData, core.ReplicationVectorFromFactor(2)); err != nil {
		t.Fatal(err)
	}
	if err := fed.WriteFile("/cold/a/f", coldData, core.ReplicationVectorFromFactor(2)); err != nil {
		t.Fatal(err)
	}

	// Each file must live only on its own cluster.
	hotFS, _ := hot.Client("")
	defer hotFS.Close()
	coldFS, _ := cold.Client("")
	defer coldFS.Close()
	if _, err := hotFS.Stat("/cold/a/f"); !errors.Is(err, core.ErrNotFound) {
		t.Errorf("cold file leaked to hot cluster: %v", err)
	}
	if _, err := coldFS.Stat("/hot/a/f"); !errors.Is(err, core.ErrNotFound) {
		t.Errorf("hot file leaked to cold cluster: %v", err)
	}

	got, err := fed.ReadFile("/hot/a/f")
	if err != nil || !bytes.Equal(got, hotData) {
		t.Fatalf("federated read of /hot: %v", err)
	}
	got, err = fed.ReadFile("/cold/a/f")
	if err != nil || !bytes.Equal(got, coldData) {
		t.Fatalf("federated read of /cold: %v", err)
	}

	// Rename within a mount works; across mounts is rejected.
	if err := fed.Rename("/hot/a/f", "/hot/a/g"); err != nil {
		t.Fatal(err)
	}
	if err := fed.Rename("/hot/a/g", "/cold/a/g"); !errors.Is(err, core.ErrPermission) {
		t.Errorf("cross-mount rename err = %v, want ErrPermission", err)
	}

	// Unmounted paths are rejected.
	if _, err := fed.Stat("/elsewhere/x"); !errors.Is(err, core.ErrNotFound) {
		t.Errorf("unmounted path err = %v, want ErrNotFound", err)
	}

	// Aggregated tier reports span both clusters.
	reports, err := fed.GetStorageTierReports()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range reports {
		if r.NumWorkers != 8 { // 4 workers per cluster
			t.Errorf("tier %s reports %d workers, want 8 (both clusters)", r.Tier, r.NumWorkers)
		}
	}
}

func TestFederationRootMountCatchesAll(t *testing.T) {
	c := startTestCluster(t)
	fed, err := client.NewFederation(map[string]string{"/": c.Master.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	defer fed.Close()
	if err := fed.Mkdir("/anything/goes", true); err != nil {
		t.Fatal(err)
	}
	entries, err := fed.List("/anything")
	if err != nil || len(entries) != 1 {
		t.Fatalf("List via root mount: %v, %v", entries, err)
	}
}
