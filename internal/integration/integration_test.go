package integration

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/master"
)

func startTestCluster(t *testing.T, mutate ...func(*ClusterConfig)) *Cluster {
	t.Helper()
	cfg := DefaultClusterConfig(t.TempDir())
	for _, fn := range mutate {
		fn(&cfg)
	}
	c, err := StartCluster(cfg)
	if err != nil {
		t.Fatalf("StartCluster: %v", err)
	}
	t.Cleanup(c.Close)
	return c
}

func randomBytes(n int, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	data := make([]byte, n)
	rng.Read(data)
	return data
}

// waitFor polls cond until it holds or the timeout expires.
func waitFor(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(25 * time.Millisecond)
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	c := startTestCluster(t)
	fs, err := c.Client("")
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()

	// Multi-block file: 3 blocks of 4 MB plus a 1 MB tail.
	data := randomBytes(13<<20, 7)
	if err := fs.WriteFile("/big.bin", data, core.ReplicationVectorFromFactor(2)); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	got, err := fs.ReadFile("/big.bin")
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("read back different content")
	}

	info, err := fs.Stat("/big.bin")
	if err != nil {
		t.Fatal(err)
	}
	if info.Length != int64(len(data)) {
		t.Errorf("Length = %d, want %d", info.Length, len(data))
	}
	blocks, err := fs.GetFileBlockLocations("/big.bin", 0, -1)
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks) != 4 {
		t.Errorf("blocks = %d, want 4", len(blocks))
	}
	for _, b := range blocks {
		if len(b.Locations) != 2 {
			t.Errorf("block %s has %d locations, want 2", b.Block.ID, len(b.Locations))
		}
	}
}

func TestEmptyFile(t *testing.T) {
	c := startTestCluster(t)
	fs, _ := c.Client("")
	defer fs.Close()
	if err := fs.WriteFile("/empty", nil, core.ReplicationVectorFromFactor(1)); err != nil {
		t.Fatalf("WriteFile(empty): %v", err)
	}
	got, err := fs.ReadFile("/empty")
	if err != nil {
		t.Fatalf("ReadFile(empty): %v", err)
	}
	if len(got) != 0 {
		t.Errorf("empty file read %d bytes", len(got))
	}
}

func TestTierPinnedPlacement(t *testing.T) {
	c := startTestCluster(t)
	fs, _ := c.Client("")
	defer fs.Close()

	rv := core.NewReplicationVector(1, 1, 1, 0, 0)
	data := randomBytes(1<<20, 3)
	if err := fs.WriteFile("/tiered", data, rv); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	blocks, err := fs.GetFileBlockLocations("/tiered", 0, -1)
	if err != nil {
		t.Fatal(err)
	}
	tiers := map[core.StorageTier]int{}
	for _, loc := range blocks[0].Locations {
		tiers[loc.Tier]++
	}
	if tiers[core.TierMemory] != 1 || tiers[core.TierSSD] != 1 || tiers[core.TierHDD] != 1 {
		t.Errorf("replica tiers = %v, want one each of memory/ssd/hdd", tiers)
	}
	// Reading must pick the memory replica first (idle cluster, equal
	// network shares, faster media wins the tie-break).
	if blocks[0].Locations[0].Tier != core.TierMemory {
		t.Errorf("first location tier = %v, want MEMORY", blocks[0].Locations[0].Tier)
	}
	got, err := fs.ReadFile("/tiered")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("ReadFile: %v", err)
	}
}

func TestNamespaceOpsOverRPC(t *testing.T) {
	c := startTestCluster(t)
	fs, _ := c.Client("")
	defer fs.Close()

	if err := fs.Mkdir("/a/b", true); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("/a/b/f", []byte("hello"), core.ReplicationVectorFromFactor(1)); err != nil {
		t.Fatal(err)
	}
	entries, err := fs.List("/a/b")
	if err != nil || len(entries) != 1 || entries[0].Path != "/a/b/f" {
		t.Fatalf("List = %v, %v", entries, err)
	}
	if err := fs.Rename("/a/b/f", "/a/g"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Stat("/a/b/f"); !errors.Is(err, core.ErrNotFound) {
		t.Errorf("stat after rename err = %v, want ErrNotFound", err)
	}
	data, err := fs.ReadFile("/a/g")
	if err != nil || string(data) != "hello" {
		t.Fatalf("read renamed: %q, %v", data, err)
	}
	if err := fs.Delete("/a", false); !errors.Is(err, core.ErrNotEmpty) {
		t.Errorf("non-recursive delete err = %v, want ErrNotEmpty", err)
	}
	if err := fs.Delete("/a", true); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Stat("/a"); !errors.Is(err, core.ErrNotFound) {
		t.Errorf("stat deleted err = %v", err)
	}
}

func TestStorageTierReports(t *testing.T) {
	c := startTestCluster(t)
	fs, _ := c.Client("")
	defer fs.Close()

	reports, err := fs.GetStorageTierReports()
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 3 {
		t.Fatalf("reports = %d tiers, want 3", len(reports))
	}
	byTier := map[core.StorageTier]core.StorageTierReport{}
	for _, r := range reports {
		byTier[r.Tier] = r
	}
	cfg := DefaultClusterConfig("")
	if got := byTier[core.TierMemory].Capacity; got != int64(cfg.NumWorkers)*cfg.MemCapacity {
		t.Errorf("memory capacity = %d", got)
	}
	if got := byTier[core.TierHDD].NumMedia; got != cfg.NumWorkers*cfg.NumHDDs {
		t.Errorf("hdd media = %d, want %d", got, cfg.NumWorkers*cfg.NumHDDs)
	}
	if byTier[core.TierSSD].NumWorkers != cfg.NumWorkers {
		t.Errorf("ssd workers = %d", byTier[core.TierSSD].NumWorkers)
	}
}

func TestSetReplicationCopyToFasterTier(t *testing.T) {
	c := startTestCluster(t)
	fs, _ := c.Client("")
	defer fs.Close()

	data := randomBytes(1<<20, 11)
	if err := fs.WriteFile("/f", data, core.NewReplicationVector(0, 0, 2, 0, 0)); err != nil {
		t.Fatal(err)
	}
	// Copy one replica into memory: <0,0,2> -> <1,0,2>.
	if err := fs.SetReplication("/f", core.NewReplicationVector(1, 0, 2, 0, 0)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, "memory replica to appear", func() bool {
		blocks, err := fs.GetFileBlockLocations("/f", 0, -1)
		if err != nil || len(blocks) == 0 {
			return false
		}
		tiers := map[core.StorageTier]int{}
		for _, loc := range blocks[0].Locations {
			tiers[loc.Tier]++
		}
		return tiers[core.TierMemory] == 1 && tiers[core.TierHDD] == 2
	})
	got, err := fs.ReadFile("/f")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("read after replication change: %v", err)
	}
}

func TestSetReplicationMoveBetweenTiers(t *testing.T) {
	c := startTestCluster(t)
	fs, _ := c.Client("")
	defer fs.Close()

	data := randomBytes(1<<20, 13)
	if err := fs.WriteFile("/mv", data, core.NewReplicationVector(1, 0, 1, 0, 0)); err != nil {
		t.Fatal(err)
	}
	// Move the memory replica to SSD: <1,0,1> -> <0,1,1>.
	if err := fs.SetReplication("/mv", core.NewReplicationVector(0, 1, 1, 0, 0)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, "replica to move to SSD", func() bool {
		blocks, err := fs.GetFileBlockLocations("/mv", 0, -1)
		if err != nil || len(blocks) == 0 {
			return false
		}
		tiers := map[core.StorageTier]int{}
		for _, loc := range blocks[0].Locations {
			tiers[loc.Tier]++
		}
		return tiers[core.TierMemory] == 0 && tiers[core.TierSSD] == 1 && tiers[core.TierHDD] == 1
	})
	got, err := fs.ReadFile("/mv")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("read after move: %v", err)
	}
}

func TestWorkerFailureTriggersReReplication(t *testing.T) {
	c := startTestCluster(t)
	fs, _ := c.Client("")
	defer fs.Close()

	data := randomBytes(2<<20, 17)
	if err := fs.WriteFile("/resilient", data, core.NewReplicationVector(0, 0, 2, 0, 0)); err != nil {
		t.Fatal(err)
	}
	blocks, err := fs.GetFileBlockLocations("/resilient", 0, -1)
	if err != nil || len(blocks) == 0 {
		t.Fatal(err)
	}
	victim := blocks[0].Locations[0].Worker
	idx := -1
	for i, w := range c.Workers {
		if w.ID() == victim {
			idx = i
			break
		}
	}
	if idx < 0 {
		t.Fatalf("victim worker %s not found", victim)
	}
	if err := c.KillWorker(idx); err != nil {
		t.Fatal(err)
	}

	waitFor(t, 15*time.Second, "re-replication onto surviving workers", func() bool {
		blocks, err := fs.GetFileBlockLocations("/resilient", 0, -1)
		if err != nil {
			return false
		}
		for _, b := range blocks {
			live := 0
			for _, loc := range b.Locations {
				if loc.Worker != victim {
					live++
				}
			}
			if live < 2 {
				return false
			}
		}
		return true
	})
	got, err := fs.ReadFile("/resilient")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("read after failure: %v", err)
	}
}

func TestReaderFailoverAcrossReplicas(t *testing.T) {
	c := startTestCluster(t)
	fs, _ := c.Client("")
	defer fs.Close()

	data := randomBytes(1<<20, 19)
	if err := fs.WriteFile("/fo", data, core.NewReplicationVector(0, 0, 3, 0, 0)); err != nil {
		t.Fatal(err)
	}
	blocks, _ := fs.GetFileBlockLocations("/fo", 0, -1)
	// Open the reader first (captures locations), then kill the first
	// worker in its list: Read must fail over.
	r, err := fs.Open("/fo")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	victim := blocks[0].Locations[0].Worker
	for i, w := range c.Workers {
		if w.ID() == victim {
			c.KillWorker(i)
			break
		}
	}
	got, err := io.ReadAll(r)
	if err != nil {
		t.Fatalf("read with dead first replica: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("failover read returned wrong content")
	}
}

func TestQuotaOverRPC(t *testing.T) {
	c := startTestCluster(t)
	fs, _ := c.Client("")
	defer fs.Close()

	if err := fs.Mkdir("/q", true); err != nil {
		t.Fatal(err)
	}
	if err := fs.SetQuota("/q", core.TierMemory, 1); err != nil {
		t.Fatal(err)
	}
	// One memory replica of a 4 MB block exceeds the 1-byte quota.
	err := fs.WriteFile("/q/f", randomBytes(1<<20, 23), core.NewReplicationVector(1, 0, 1, 0, 0))
	if !errors.Is(err, core.ErrQuotaExceeded) {
		t.Errorf("quota write err = %v, want ErrQuotaExceeded", err)
	}
	// HDD-only file is unaffected by the memory quota.
	if err := fs.WriteFile("/q/ok", randomBytes(1<<20, 29), core.NewReplicationVector(0, 0, 1, 0, 0)); err != nil {
		t.Errorf("hdd-only write err = %v", err)
	}
}

func TestClientCollocationOverRPC(t *testing.T) {
	c := startTestCluster(t)
	fs, err := c.Client("node2")
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	if err := fs.WriteFile("/local", randomBytes(1<<20, 31), core.NewReplicationVector(0, 0, 2, 0, 0)); err != nil {
		t.Fatal(err)
	}
	blocks, _ := fs.GetFileBlockLocations("/local", 0, -1)
	if blocks[0].Locations[0].Worker != "node2" && blocks[0].Locations[1].Worker != "node2" {
		t.Errorf("no replica on the writer's node: %+v", blocks[0].Locations)
	}
}

func TestSeekAndPartialRead(t *testing.T) {
	c := startTestCluster(t)
	fs, _ := c.Client("")
	defer fs.Close()

	data := randomBytes(9<<20, 37) // spans 3 blocks
	if err := fs.WriteFile("/seek", data, core.ReplicationVectorFromFactor(1)); err != nil {
		t.Fatal(err)
	}
	r, err := fs.Open("/seek")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	// Seek into the middle of the second block.
	off := int64(5<<20 + 123)
	if _, err := r.Seek(off, io.SeekStart); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1<<20)
	if _, err := io.ReadFull(r, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, data[off:off+1<<20]) {
		t.Error("seeked read returned wrong range")
	}
	// Seek from end.
	if _, err := r.Seek(-100, io.SeekEnd); err != nil {
		t.Fatal(err)
	}
	tail, err := io.ReadAll(r)
	if err != nil || !bytes.Equal(tail, data[len(data)-100:]) {
		t.Errorf("tail read wrong: %v", err)
	}
}

func TestOverwriteInvalidatesOldBlocks(t *testing.T) {
	c := startTestCluster(t)
	fs, _ := c.Client("")
	defer fs.Close()

	if err := fs.WriteFile("/ow", randomBytes(1<<20, 41), core.ReplicationVectorFromFactor(1)); err != nil {
		t.Fatal(err)
	}
	newData := randomBytes(2<<20, 43)
	if err := fs.WriteFile("/ow", newData, core.ReplicationVectorFromFactor(1)); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadFile("/ow")
	if err != nil || !bytes.Equal(got, newData) {
		t.Fatalf("read after overwrite: %v", err)
	}
}

func TestLeaseRecoveryAbandonsDeadWriters(t *testing.T) {
	m, err := master.New(master.Config{
		ListenAddr:      "127.0.0.1:0",
		BlockSize:       4 << 20,
		MonitorInterval: 50 * time.Millisecond,
		LeaseTimeout:    300 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	fs, err := client.Dial(m.Addr(), client.WithOwner("it"))
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()

	// Open a file and walk away without completing it (the writer
	// "crashed"). No workers are needed: the file never gets blocks.
	if _, err := fs.Create("/orphan", client.CreateOptions{
		RepVector: core.ReplicationVectorFromFactor(1),
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Stat("/orphan"); err != nil {
		t.Fatalf("stat right after create: %v", err)
	}
	waitFor(t, 10*time.Second, "lease recovery to abandon the file", func() bool {
		_, err := fs.Stat("/orphan")
		return errors.Is(err, core.ErrNotFound)
	})
}

func TestContentSummaryAndFsck(t *testing.T) {
	c := startTestCluster(t)
	fs, _ := c.Client("")
	defer fs.Close()

	fs.Mkdir("/proj/sub", true)
	if err := fs.WriteFile("/proj/a", randomBytes(1<<20, 83), core.NewReplicationVector(1, 0, 2, 0, 0)); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("/proj/sub/b", randomBytes(2<<20, 89), core.ReplicationVectorFromFactor(2)); err != nil {
		t.Fatal(err)
	}

	sum, err := fs.GetContentSummary("/proj")
	if err != nil {
		t.Fatal(err)
	}
	if sum.Files != 2 || sum.Directories != 2 {
		t.Errorf("summary files=%d dirs=%d, want 2/2", sum.Files, sum.Directories)
	}
	if sum.Bytes != 3<<20 {
		t.Errorf("summary bytes=%d, want 3MB", sum.Bytes)
	}
	// /proj/a pins 1 memory + 2 HDD replicas of 1MB.
	if sum.TierBytes[core.TierMemory] != 1<<20 {
		t.Errorf("memory tier bytes = %d, want 1MB", sum.TierBytes[core.TierMemory])
	}
	if sum.TierBytes[core.TierHDD] != 2<<20 {
		t.Errorf("hdd tier bytes = %d, want 2MB", sum.TierBytes[core.TierHDD])
	}
	// Total slot: 3 replicas of a (3MB) + 2 of b (4MB).
	if got := sum.TierBytes[4]; got != 7<<20 {
		t.Errorf("total replica bytes = %d, want 7MB", got)
	}

	// fsck: everything healthy right after writing.
	waitFor(t, 5*time.Second, "fsck to report all healthy", func() bool {
		files, err := fs.Fsck("/proj")
		if err != nil || len(files) != 2 {
			return false
		}
		for _, f := range files {
			if f.HealthyBlocks != f.Blocks || f.MissingBlocks > 0 || f.UnderConstruction {
				return false
			}
		}
		return true
	})

	// Kill a worker hosting /proj/sub/b: fsck must show degradation,
	// then recovery.
	blocks, _ := fs.GetFileBlockLocations("/proj/sub/b", 0, -1)
	victim := blocks[0].Locations[0].Worker
	for i, w := range c.Workers {
		if w.ID() == victim {
			c.KillWorker(i)
			break
		}
	}
	waitFor(t, 20*time.Second, "fsck to report full health after repair", func() bool {
		files, err := fs.Fsck("/proj")
		if err != nil {
			return false
		}
		for _, f := range files {
			if f.HealthyBlocks != f.Blocks {
				return false
			}
		}
		return true
	})
}

func TestWriterSurvivesWorkerDeathMidWrite(t *testing.T) {
	c := startTestCluster(t, func(cfg *ClusterConfig) {
		cfg.NumWorkers = 5
	})
	fs, _ := c.Client("")
	defer fs.Close()

	// Write block-by-block, killing a pipeline worker between blocks —
	// before the master's 2s worker timeout notices, so the next
	// AddBlock may well hand out the dead worker and force the client
	// through its block-retry path.
	w, err := fs.Create("/survivor", client.CreateOptions{
		RepVector: core.NewReplicationVector(0, 0, 2, 0, 0),
	})
	if err != nil {
		t.Fatal(err)
	}
	data := randomBytes(12<<20, 97) // 3 blocks of 4MB
	if _, err := w.Write(data[:5<<20]); err != nil {
		t.Fatalf("first write: %v", err)
	}

	// Kill a worker that hosts a replica of the in-flight file.
	blocks, _ := fs.GetFileBlockLocations("/survivor", 0, -1)
	if len(blocks) == 0 || len(blocks[0].Locations) == 0 {
		t.Fatal("no locations yet")
	}
	victim := blocks[0].Locations[0].Worker
	for i, wk := range c.Workers {
		if wk.ID() == victim {
			c.KillWorker(i)
			break
		}
	}

	if _, err := w.Write(data[5<<20:]); err != nil {
		t.Fatalf("write after worker death: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	got, err := fs.ReadFile("/survivor")
	if err != nil {
		t.Fatalf("read back: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("content mismatch after mid-write failure")
	}
}
