package integration

import (
	"bytes"
	"testing"

	"repro/internal/core"
)

func TestRemoteTierIntegratedMode(t *testing.T) {
	c := startTestCluster(t, func(cfg *ClusterConfig) {
		cfg.RemoteCapacity = 256 << 20
	})
	fs, _ := c.Client("")
	defer fs.Close()

	// Four tiers must be visible.
	reports, err := fs.GetStorageTierReports()
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 4 {
		t.Fatalf("reports = %d tiers, want 4 (incl. remote)", len(reports))
	}

	// Pin one replica to the remote tier (archival pattern: one fast
	// copy, one durable remote copy).
	data := randomBytes(1<<20, 79)
	rv := core.NewReplicationVector(0, 1, 0, 1, 0)
	if err := fs.WriteFile("/archive", data, rv); err != nil {
		t.Fatal(err)
	}
	blocks, err := fs.GetFileBlockLocations("/archive", 0, -1)
	if err != nil {
		t.Fatal(err)
	}
	tiers := map[core.StorageTier]int{}
	for _, loc := range blocks[0].Locations {
		tiers[loc.Tier]++
	}
	if tiers[core.TierSSD] != 1 || tiers[core.TierRemote] != 1 {
		t.Errorf("tiers = %v, want 1 SSD + 1 remote", tiers)
	}
	// Retrieval prefers the faster SSD replica over the remote one.
	if blocks[0].Locations[0].Tier != core.TierSSD {
		t.Errorf("first replica tier = %v, want SSD", blocks[0].Locations[0].Tier)
	}

	got, err := fs.ReadFile("/archive")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("read across tiers: %v", err)
	}

	// Demote entirely to remote (archival): <0,1,0,1> -> <0,0,0,2>.
	if err := fs.SetReplication("/archive", core.NewReplicationVector(0, 0, 0, 2, 0)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 10e9, "replicas to move to remote tier", func() bool {
		blocks, err := fs.GetFileBlockLocations("/archive", 0, -1)
		if err != nil || len(blocks) == 0 {
			return false
		}
		tiers := map[core.StorageTier]int{}
		for _, loc := range blocks[0].Locations {
			tiers[loc.Tier]++
		}
		return tiers[core.TierRemote] == 2 && len(blocks[0].Locations) == 2
	})
	got, err = fs.ReadFile("/archive")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("read from remote tier: %v", err)
	}
}
