package integration

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
)

// corruptOneReplica flips bytes in the on-disk file of the block's
// first non-memory replica and returns the storage ID it hit.
func corruptOneReplica(t *testing.T, dir string, loc core.BlockLocation, blk core.Block) {
	t.Helper()
	// Storage IDs look like "node1:hdd0"; files live under
	// dir/node1/hdd0/blk_<id>_<gen>.
	parts := strings.SplitN(string(loc.Storage), ":", 2)
	blockPath := filepath.Join(dir, parts[0], parts[1],
		blk.String()[:strings.Index(blk.String(), " ")])
	// core.Block.String() = "blk_1_1 (Nb)" — trim the size suffix.
	data, err := os.ReadFile(blockPath)
	if err != nil {
		t.Fatalf("reading replica file %s: %v", blockPath, err)
	}
	for i := 0; i < len(data); i += 101 {
		data[i] ^= 0xFF
	}
	if err := os.WriteFile(blockPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestCorruptReplicaDetectedAndRepaired(t *testing.T) {
	dir := t.TempDir()
	cfg := DefaultClusterConfig(dir)
	c, err := StartCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	fs, _ := c.Client("")
	defer fs.Close()

	payload := randomBytes(2<<20, 61)
	// HDD-only replicas so every copy lives in a corruptible file.
	if err := fs.WriteFile("/fragile", payload, core.NewReplicationVector(0, 0, 2, 0, 0)); err != nil {
		t.Fatal(err)
	}
	blocks, err := fs.GetFileBlockLocations("/fragile", 0, -1)
	if err != nil || len(blocks) == 0 {
		t.Fatal(err)
	}
	victim := blocks[0].Locations[0]
	corruptOneReplica(t, dir, victim, blocks[0].Block)

	// The read must fail over to the healthy replica and still return
	// the right content, while reporting the corrupt one.
	got, err := fs.ReadFile("/fragile")
	if err != nil {
		t.Fatalf("read with corrupt first replica: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("failover read returned wrong content")
	}

	// The master must repair: the corrupt replica is dropped and a
	// fresh one re-replicated, restoring 2 healthy HDD replicas not
	// including the corrupted media.
	waitFor(t, 15*time.Second, "corrupt replica to be replaced", func() bool {
		blocks, err := fs.GetFileBlockLocations("/fragile", 0, -1)
		if err != nil {
			return false
		}
		for _, b := range blocks {
			healthy := 0
			for _, loc := range b.Locations {
				if loc.Storage != victim.Storage {
					healthy++
				}
			}
			if healthy < 2 {
				return false
			}
		}
		return true
	})
}

func TestCorruptionErrorCodeCrossesWire(t *testing.T) {
	dir := t.TempDir()
	c, err := StartCluster(DefaultClusterConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	fs, _ := c.Client("")
	defer fs.Close()

	payload := randomBytes(1<<20, 67)
	// Single replica: corruption has nowhere to fail over, so the
	// client must surface ErrCorrupt itself.
	if err := fs.WriteFile("/single", payload, core.NewReplicationVector(0, 0, 1, 0, 0)); err != nil {
		t.Fatal(err)
	}
	blocks, _ := fs.GetFileBlockLocations("/single", 0, -1)
	corruptOneReplica(t, dir, blocks[0].Locations[0], blocks[0].Block)

	_, err = fs.ReadFile("/single")
	if !errors.Is(err, core.ErrCorrupt) {
		t.Errorf("read of corrupt single-replica file: err = %v, want ErrCorrupt", err)
	}
}
