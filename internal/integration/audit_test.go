package integration

import (
	"encoding/json"
	"net/http"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/audit"
	"repro/internal/client"
	"repro/internal/core"
)

// TestAuditPhaseBreakdownJoinsTrace is the observability acceptance
// path: a single create on a persistent, fsyncing master produces an
// audit entry whose phase breakdown (queue wait, lock wait, apply,
// edit-log append, fsync) is fully populated, and whose trace ID joins
// the entry to the master.create span carrying the same phases as
// annotations — the end-to-end story `octopus-cli audit` + `trace`
// tell an operator about one slow create.
func TestAuditPhaseBreakdownJoinsTrace(t *testing.T) {
	c := startTestCluster(t, func(cfg *ClusterConfig) {
		cfg.NumWorkers = 2
		cfg.NumRacks = 1
		cfg.BlockSize = 1 << 20
		cfg.MetaDir = filepath.Join(cfg.Dir, "meta")
		cfg.EditLogSync = true
	})
	fs, err := c.Client("")
	if err != nil {
		t.Fatalf("Client: %v", err)
	}
	defer fs.Close()

	w, err := fs.Create("/audited.bin", client.CreateOptions{
		RepVector: core.ReplicationVectorFromFactor(2),
	})
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	reqID := w.ReqID()
	if _, err := w.Write(randomBytes(1<<20, 3)); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// The audit entry records the create with its full phase breakdown.
	page, counts, err := fs.Audit(0, "create", 0)
	if err != nil {
		t.Fatalf("Audit: %v", err)
	}
	var entry *audit.Entry
	for i := range page.Entries {
		if page.Entries[i].Path == "/audited.bin" {
			entry = &page.Entries[i]
		}
	}
	if entry == nil {
		t.Fatalf("no create audit entry for /audited.bin in %d entries", len(page.Entries))
	}
	if entry.Result != "ok" {
		t.Errorf("Result = %q, want ok", entry.Result)
	}
	if entry.TraceID != reqID {
		t.Errorf("TraceID = %q, want the client request ID %q", entry.TraceID, reqID)
	}
	if entry.ApplyNs <= 0 {
		t.Errorf("ApplyNs = %d, want > 0", entry.ApplyNs)
	}
	if entry.AppendNs <= 0 {
		t.Errorf("AppendNs = %d, want > 0 (persistent master must log the edit)", entry.AppendNs)
	}
	if entry.FsyncNs <= 0 {
		t.Errorf("FsyncNs = %d, want > 0 (EditLogSync must pay a real fsync)", entry.FsyncNs)
	}
	if entry.QueueNs < 0 || entry.LockWaitNs < 0 {
		t.Errorf("negative wait phases: queue %d, lock %d", entry.QueueNs, entry.LockWaitNs)
	}
	if entry.TotalNs < entry.ApplyNs+entry.AppendNs {
		t.Errorf("TotalNs %d < apply %d + append %d", entry.TotalNs, entry.ApplyNs, entry.AppendNs)
	}
	if counts["create"] == 0 {
		t.Error("lifetime counts missing create")
	}

	// Every mutation of the write shares the create's trace ID, so the
	// audit stream reconstructs the whole file lifecycle.
	full, _, err := fs.Audit(0, "", 0)
	if err != nil {
		t.Fatalf("Audit all: %v", err)
	}
	sameTrace := map[string]bool{}
	for _, e := range full.Entries {
		if e.TraceID == reqID {
			sameTrace[e.Op] = true
		}
	}
	for _, op := range []string{"create", "addBlock", "commitBlock", "complete"} {
		if !sameTrace[op] {
			t.Errorf("no %s audit entry under trace %s (got %v)", op, reqID, sameTrace)
		}
	}

	// The trace ID joins the entry to the master.create span, which
	// carries the same phase breakdown as annotations.
	waitFor(t, 5*time.Second, "master.create span with phase annotations", func() bool {
		spans, err := fs.Trace(entry.TraceID)
		if err != nil {
			return false
		}
		for _, sp := range spans {
			if sp.Op == "master.create" && sp.Attrs["apply_ns"] != "" {
				for _, key := range []string{"queue_ns", "lock_wait_ns", "apply_ns", "append_ns", "fsync_ns"} {
					if sp.Attrs[key] == "" {
						t.Errorf("master.create span missing %s annotation (attrs %v)", key, sp.Attrs)
					}
				}
				return true
			}
		}
		return false
	})

	// /debug/audit serves the same entry over HTTP with cursoring.
	addr, err := c.Master.ServeHTTP("127.0.0.1:0")
	if err != nil {
		t.Fatalf("ServeHTTP: %v", err)
	}
	resp, err := http.Get("http://" + addr + "/debug/audit?op=create")
	if err != nil {
		t.Fatalf("GET /debug/audit: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/audit = %s", resp.Status)
	}
	var doc struct {
		Entries []audit.Entry `json:"entries"`
		Next    uint64        `json:"next"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatalf("decoding /debug/audit: %v", err)
	}
	httpSeen := false
	for _, e := range doc.Entries {
		if e.Path == "/audited.bin" && e.TraceID == reqID {
			httpSeen = true
		}
	}
	if !httpSeen {
		t.Error("/debug/audit?op=create did not serve the create entry")
	}
	if doc.Next == 0 {
		t.Error("/debug/audit cursor is zero")
	}

	// The contention instrumentation shows up in the exposition.
	body := fetchMetrics(t, addr, "")
	for _, name := range []string{
		"octopus_master_rpc_inflight",
		"octopus_master_ns_lock_wait_seconds",
		"octopus_master_editlog_append_seconds",
		"octopus_master_editlog_fsync_seconds",
		"octopus_master_rpc_queue_wait_seconds",
	} {
		if !strings.Contains(body, name) {
			t.Errorf("metrics exposition missing %s", name)
		}
	}
}

// TestAuditCursorAndFailures covers the audit stream's operator
// contract: failed operations are recorded with their error text, the
// op filter isolates one operation, and polling with since = page.Next
// never re-delivers an entry.
func TestAuditCursorAndFailures(t *testing.T) {
	c := startTestCluster(t, func(cfg *ClusterConfig) {
		cfg.NumWorkers = 2
		cfg.NumRacks = 1
	})
	fs, err := c.Client("")
	if err != nil {
		t.Fatalf("Client: %v", err)
	}
	defer fs.Close()

	if err := fs.Mkdir("/a", false); err != nil {
		t.Fatalf("Mkdir: %v", err)
	}
	if _, err := fs.Stat("/missing"); err == nil {
		t.Fatal("Stat(/missing) succeeded")
	}

	page, _, err := fs.Audit(0, "getFileInfo", 0)
	if err != nil {
		t.Fatalf("Audit: %v", err)
	}
	var failed *audit.Entry
	for i := range page.Entries {
		if page.Entries[i].Path == "/missing" {
			failed = &page.Entries[i]
		}
	}
	if failed == nil {
		t.Fatal("failed stat not audited")
	}
	if failed.Result == "ok" || failed.Result == "" {
		t.Errorf("failed stat Result = %q, want the error text", failed.Result)
	}

	// Exactly-once cursoring: a second poll from Next yields only ops
	// issued after the first page.
	cursor := page.Next
	if err := fs.Mkdir("/b", false); err != nil {
		t.Fatalf("Mkdir: %v", err)
	}
	next, _, err := fs.Audit(cursor, "mkdir", 0)
	if err != nil {
		t.Fatalf("Audit since %d: %v", cursor, err)
	}
	if len(next.Entries) != 1 || next.Entries[0].Path != "/b" {
		t.Fatalf("cursor page = %+v, want exactly the /b mkdir", next.Entries)
	}
	if next.Entries[0].Seq <= cursor {
		t.Errorf("re-delivered seq %d at cursor %d", next.Entries[0].Seq, cursor)
	}
}
