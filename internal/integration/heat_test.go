package integration

import (
	"io"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/events"
	"repro/internal/rpc"
)

// TestHeatPlaneEndToEnd is the access-heat acceptance test: after a
// skewed read workload, the master's heat report ranks the truly hot
// file first, flags the hot HDD-pinned block as hot_on_cold with its
// tier vector and originating placement decision, journals the
// transition, and folds the aggregate into telemetry samples.
func TestHeatPlaneEndToEnd(t *testing.T) {
	c := startTestCluster(t, func(cfg *ClusterConfig) {
		cfg.NumWorkers = 2
		cfg.HistoryInterval = 60 * time.Millisecond
	})
	fs, err := c.Client("")
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()

	// /hot is pinned to HDD only — exactly the shape the fitness
	// report must flag once reads pile on. /chilly keeps a memory
	// replica, so however often it is read it is never hot-on-cold.
	data := randomBytes(256<<10, 3)
	if err := fs.WriteFile("/hot", data, core.NewReplicationVector(0, 0, 2, 0, 0)); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("/warm", data, core.NewReplicationVector(0, 0, 1, 0, 0)); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("/chilly", data, core.NewReplicationVector(1, 0, 1, 0, 0)); err != nil {
		t.Fatal(err)
	}

	readFile := func(path string, n int) {
		t.Helper()
		for i := 0; i < n; i++ {
			r, err := fs.Open(path)
			if err != nil {
				t.Fatalf("Open(%s): %v", path, err)
			}
			if _, err := io.Copy(io.Discard, r); err != nil {
				t.Fatalf("read %s: %v", path, err)
			}
			r.Close()
		}
	}
	readFile("/hot", 12)
	readFile("/warm", 4)
	readFile("/chilly", 1)

	// Block heat rides worker heartbeats (50ms here) and the
	// misplacement scan runs at history cadence, so poll until the
	// deltas have landed and the scan has flagged the hot block.
	var report rpc.HeatReport
	waitFor(t, 5*time.Second, "heat deltas folded and misplacement flagged", func() bool {
		report, err = fs.Heat(10, "", false)
		if err != nil {
			t.Fatal(err)
		}
		return report.Aggregate.TrackedBlocks >= 3 && len(report.Misplaced) > 0
	})

	// File ranking follows the read skew (opens: 12 vs 4 vs 1).
	if len(report.Files) < 3 {
		t.Fatalf("file ranking = %d entries, want >= 3", len(report.Files))
	}
	if report.Files[0].Path != "/hot" || report.Files[1].Path != "/warm" || report.Files[2].Path != "/chilly" {
		t.Fatalf("file ranking = %q %q %q, want /hot /warm /chilly",
			report.Files[0].Path, report.Files[1].Path, report.Files[2].Path)
	}
	if report.Files[0].Read.Ops < 10 {
		t.Errorf("/hot read ops = %.1f, want ~12", report.Files[0].Read.Ops)
	}

	// The hot HDD-pinned block tops the fitness report, with its tier
	// vector and a link back to the placement decision that put it
	// there. The memory-replicated /chilly block must not be flagged
	// hot-on-cold no matter how its heat compares.
	top := report.Misplaced[0]
	if top.Kind != rpc.MisplacedHotOnCold || top.Path != "/hot" {
		t.Fatalf("top misplacement = %+v, want hot_on_cold for /hot", top)
	}
	if top.Tiers[core.TierHDD] != 2 || top.BestTier != core.TierHDD {
		t.Errorf("tier vector = %v best %v, want 2 HDD replicas", top.Tiers, top.BestTier)
	}
	if top.Heat <= 0 || top.Score <= 0 {
		t.Errorf("finding carries no heat: %+v", top)
	}
	if top.DecisionTraceID == "" {
		t.Error("finding not linked to its placement decision")
	}
	for _, mb := range report.Misplaced {
		if mb.Path == "/chilly" && mb.Kind == rpc.MisplacedHotOnCold {
			t.Errorf("memory-replicated /chilly flagged hot_on_cold: %+v", mb)
		}
	}

	// The transition was journaled, linked to the same trace. The
	// scan runs at history cadence, so the event can trail the
	// on-demand report by a tick.
	var pageEvents []events.Event
	waitFor(t, 5*time.Second, "heat_misplaced event journaled", func() bool {
		page, _, err := fs.Events(0, "heat_misplaced", 0)
		if err != nil {
			t.Fatal(err)
		}
		pageEvents = page.Events
		return len(pageEvents) > 0
	})
	found := false
	for _, e := range pageEvents {
		if e.Attrs["path"] == "/hot" {
			found = true
			if e.TraceID != top.DecisionTraceID {
				t.Errorf("event trace %q != decision trace %q", e.TraceID, top.DecisionTraceID)
			}
		}
	}
	if !found {
		t.Errorf("no heat_misplaced event for /hot: %+v", pageEvents)
	}

	// Telemetry samples carry the heat aggregate.
	samples, err := fs.ClusterHistory(1)
	if err != nil || len(samples) == 0 {
		t.Fatalf("ClusterHistory: %v", err)
	}
	live := samples[len(samples)-1]
	if live.Heat.TrackedBlocks < 3 || live.Heat.TotalHeat <= 0 {
		t.Errorf("live sample heat = %+v, want >= 3 tracked blocks", live.Heat)
	}
	if live.Heat.TierHeat[core.TierHDD] <= 0 {
		t.Errorf("live sample HDD tier heat = %v, want > 0", live.Heat.TierHeat)
	}

	// The per-file view restricts the block list.
	only, err := fs.Heat(10, "/hot", false)
	if err != nil {
		t.Fatal(err)
	}
	if len(only.Blocks) == 0 {
		t.Fatal("file-filtered report has no blocks")
	}
	for _, b := range only.Blocks {
		if b.Path != "/hot" {
			t.Errorf("?file=/hot leaked block for %q", b.Path)
		}
	}
}
