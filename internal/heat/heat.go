// Package heat implements exponentially-decayed access statistics:
// the observability plane that tells the tier-management machinery
// which data is hot. Workers count block reads and writes on their
// data path with a single atomic update per operation (Collector),
// ship the raw deltas to the master piggybacked on heartbeats, and
// the master folds them into decayed per-block and per-file counters
// (Map) whose values halve every configurable half-life.
//
// Decay is deterministic and applied on read: every counter stores
// the instant it was last folded, and any later observation scales it
// by 2^(-elapsed/halfLife). No background ticker ever touches the
// counters, so the hot path stays lock-free and the math is exactly
// reproducible from (value, lastNs, halfLife) — which is what the
// unit tests assert against closed-form expectations.
package heat

import (
	"math"
	"sort"
	"sync"
	"time"
)

// Kind discriminates the two access directions of a counter.
type Kind int

// Access kinds.
const (
	Read Kind = iota
	Write
)

// DefaultHalfLife is the decay half-life selected when a configuration
// leaves it zero: long enough that a hot set survives between mover
// scans, short enough that yesterday's batch job does not look hot.
const DefaultHalfLife = 60 * time.Second

// Score is one direction's decayed access statistics: operations and
// bytes, both halved every half-life since their last fold.
type Score struct {
	Ops   float64
	Bytes float64
}

func (s Score) scaled(f float64) Score {
	return Score{Ops: s.Ops * f, Bytes: s.Bytes * f}
}

// Stat is one key's decayed read and write scores, valid at LastNs.
type Stat struct {
	Read  Score
	Write Score
	// LastNs is the Unix-nanosecond instant the scores are decayed to.
	LastNs int64
}

// Heat is the scalar ranking value: decayed read plus write
// operations. Bytes stay available for policies that care about
// volume rather than op frequency.
func (s Stat) Heat() float64 { return s.Read.Ops + s.Write.Ops }

// At returns the stat decayed forward to nowNs. Instants at or before
// LastNs return the stat unchanged (clock skew must never inflate a
// counter).
func (s Stat) At(nowNs int64, halfLife time.Duration) Stat {
	f := decayFactor(nowNs-s.LastNs, halfLife)
	if f >= 1 {
		return s
	}
	return Stat{Read: s.Read.scaled(f), Write: s.Write.scaled(f), LastNs: nowNs}
}

// decayFactor returns 2^(-elapsed/halfLife), clamped to 1 for
// non-positive elapsed times.
func decayFactor(elapsedNs int64, halfLife time.Duration) float64 {
	if elapsedNs <= 0 || halfLife <= 0 {
		return 1
	}
	return math.Exp2(-float64(elapsedNs) / float64(halfLife))
}

// Entry pairs a key with its decayed stat in a Snapshot.
type Entry[K comparable] struct {
	Key  K
	Stat Stat
}

// Map is a bounded collection of decayed access counters keyed by K
// (block IDs on the master's block heat map, paths on its file heat
// map). All methods take explicit nanosecond timestamps so decay is
// deterministic under test. Map is safe for concurrent use; it is
// NOT meant for per-I/O hot paths — workers use Collector there and
// fold into a Map only at heartbeat granularity.
type Map[K comparable] struct {
	halfLife time.Duration
	capacity int

	mu    sync.Mutex
	stats map[K]*Stat
}

// DefaultMapCapacity bounds a Map when the configuration leaves the
// capacity zero. When full, the coldest entries are evicted first, so
// capacity pressure degrades the cold tail, never the hot set.
const DefaultMapCapacity = 65536

// NewMap builds a Map. halfLife <= 0 selects DefaultHalfLife;
// capacity <= 0 selects DefaultMapCapacity.
func NewMap[K comparable](halfLife time.Duration, capacity int) *Map[K] {
	if halfLife <= 0 {
		halfLife = DefaultHalfLife
	}
	if capacity <= 0 {
		capacity = DefaultMapCapacity
	}
	return &Map[K]{
		halfLife: halfLife,
		capacity: capacity,
		stats:    make(map[K]*Stat),
	}
}

// HalfLife returns the configured decay half-life.
func (m *Map[K]) HalfLife() time.Duration { return m.halfLife }

// Add folds ops operations moving bytes bytes of kind k into key's
// counter at instant nowNs, decaying the previous value first.
func (m *Map[K]) Add(key K, kind Kind, ops, bytes int64, nowNs int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	st, ok := m.stats[key]
	if !ok {
		if len(m.stats) >= m.capacity {
			m.evictLocked(nowNs)
		}
		st = &Stat{LastNs: nowNs}
		m.stats[key] = st
	}
	*st = st.At(nowNs, m.halfLife)
	add := Score{Ops: float64(ops), Bytes: float64(bytes)}
	switch kind {
	case Read:
		st.Read.Ops += add.Ops
		st.Read.Bytes += add.Bytes
	default:
		st.Write.Ops += add.Ops
		st.Write.Bytes += add.Bytes
	}
}

// evictLocked drops the coldest eighth of the map (at least one
// entry) to make room, ranking by heat decayed to nowNs.
func (m *Map[K]) evictLocked(nowNs int64) {
	type cold struct {
		key  K
		heat float64
	}
	all := make([]cold, 0, len(m.stats))
	for k, st := range m.stats {
		all = append(all, cold{k, st.At(nowNs, m.halfLife).Heat()})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].heat < all[j].heat })
	n := len(all) / 8
	if n < 1 {
		n = 1
	}
	for _, c := range all[:n] {
		delete(m.stats, c.key)
	}
}

// Get returns key's stat decayed to nowNs; ok is false for untracked
// keys.
func (m *Map[K]) Get(key K, nowNs int64) (Stat, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	st, ok := m.stats[key]
	if !ok {
		return Stat{}, false
	}
	return st.At(nowNs, m.halfLife), true
}

// Remove forgets one key (e.g. a deleted block or file).
func (m *Map[K]) Remove(key K) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.stats, key)
}

// RemoveFunc forgets every key the predicate matches (e.g. all paths
// under a deleted directory).
func (m *Map[K]) RemoveFunc(pred func(K) bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for k := range m.stats {
		if pred(k) {
			delete(m.stats, k)
		}
	}
}

// Rekey rewrites keys through fn (e.g. path prefixes after a rename);
// fn returns the new key and whether to apply it. A rewrite that
// collides with an existing key folds the two stats together at the
// later of their fold instants.
func (m *Map[K]) Rekey(fn func(K) (K, bool)) {
	m.mu.Lock()
	defer m.mu.Unlock()
	moved := make(map[K]*Stat)
	for k, st := range m.stats {
		if nk, ok := fn(k); ok && nk != k {
			delete(m.stats, k)
			moved[nk] = st
		}
	}
	for nk, st := range moved {
		if dst, exists := m.stats[nk]; exists {
			now := max64(dst.LastNs, st.LastNs)
			a, b := dst.At(now, m.halfLife), st.At(now, m.halfLife)
			*dst = Stat{
				Read:   Score{a.Read.Ops + b.Read.Ops, a.Read.Bytes + b.Read.Bytes},
				Write:  Score{a.Write.Ops + b.Write.Ops, a.Write.Bytes + b.Write.Bytes},
				LastNs: now,
			}
			continue
		}
		m.stats[nk] = st
	}
}

// Len returns the number of tracked keys.
func (m *Map[K]) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.stats)
}

// Snapshot returns every entry decayed to nowNs, hottest first.
func (m *Map[K]) Snapshot(nowNs int64) []Entry[K] {
	m.mu.Lock()
	out := make([]Entry[K], 0, len(m.stats))
	for k, st := range m.stats {
		out = append(out, Entry[K]{Key: k, Stat: st.At(nowNs, m.halfLife)})
	}
	m.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool { return out[i].Stat.Heat() > out[j].Stat.Heat() })
	return out
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
