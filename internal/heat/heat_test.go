package heat

import (
	"math"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
)

const ns = int64(time.Second)

func almostEqual(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

// TestDecayClosedForm checks the decay math against hand-computed
// closed-form values: value(t) = value(t0) * 2^(-(t-t0)/half).
func TestDecayClosedForm(t *testing.T) {
	half := 10 * time.Second
	st := Stat{Read: Score{Ops: 8, Bytes: 800}, Write: Score{Ops: 4, Bytes: 400}, LastNs: 0}

	cases := []struct {
		atNs    int64
		wantOps float64 // expected Read.Ops
	}{
		{0, 8},                        // no elapsed time, no decay
		{-5 * ns, 8},                  // clock skew backwards must not inflate
		{10 * ns, 4},                  // one half-life
		{20 * ns, 2},                  // two half-lives
		{30 * ns, 1},                  // three half-lives
		{5 * ns, 8 * math.Exp2(-0.5)}, // fractional half-life
	}
	for _, c := range cases {
		got := st.At(c.atNs, half)
		if !almostEqual(got.Read.Ops, c.wantOps) {
			t.Errorf("At(%d): Read.Ops = %v, want %v", c.atNs, got.Read.Ops, c.wantOps)
		}
		// Bytes and writes decay by the same factor.
		f := c.wantOps / 8
		if !almostEqual(got.Read.Bytes, 800*f) || !almostEqual(got.Write.Ops, 4*f) || !almostEqual(got.Write.Bytes, 400*f) {
			t.Errorf("At(%d): got %+v, want uniform factor %v", c.atNs, got, f)
		}
	}
}

// TestMapAddDecaysBeforeFold verifies Add decays the stored value to
// the fold instant before accumulating: add 10 ops at t=0, then 1 op
// at t=half ⇒ 10/2 + 1 = 6.
func TestMapAddDecaysBeforeFold(t *testing.T) {
	half := 10 * time.Second
	m := NewMap[string](half, 0)
	m.Add("/f", Read, 10, 1000, 0)
	m.Add("/f", Read, 1, 100, 10*ns)
	st, ok := m.Get("/f", 10*ns)
	if !ok {
		t.Fatal("key missing")
	}
	if !almostEqual(st.Read.Ops, 6) {
		t.Errorf("Read.Ops = %v, want 6", st.Read.Ops)
	}
	if !almostEqual(st.Read.Bytes, 600) {
		t.Errorf("Read.Bytes = %v, want 600", st.Read.Bytes)
	}
	// Query another half-life later without folding: 6/2 = 3.
	st, _ = m.Get("/f", 20*ns)
	if !almostEqual(st.Read.Ops, 3) {
		t.Errorf("Read.Ops at 2×half = %v, want 3", st.Read.Ops)
	}
}

func TestMapSnapshotOrderAndDirections(t *testing.T) {
	m := NewMap[string](time.Minute, 0)
	m.Add("/cold", Read, 1, 10, 0)
	m.Add("/hot", Read, 5, 50, 0)
	m.Add("/hot", Write, 3, 30, 0)
	m.Add("/warm", Write, 4, 40, 0)
	snap := m.Snapshot(0)
	if len(snap) != 3 {
		t.Fatalf("len = %d, want 3", len(snap))
	}
	if snap[0].Key != "/hot" || snap[1].Key != "/warm" || snap[2].Key != "/cold" {
		t.Errorf("order = %v,%v,%v", snap[0].Key, snap[1].Key, snap[2].Key)
	}
	if h := snap[0].Stat.Heat(); !almostEqual(h, 8) {
		t.Errorf("hot heat = %v, want 8 (read+write ops)", h)
	}
}

func TestMapCapacityEvictsColdest(t *testing.T) {
	m := NewMap[int](time.Minute, 8)
	for i := 0; i < 8; i++ {
		// Key i gets i+1 ops, so 0 is the coldest.
		m.Add(i, Read, int64(i+1), 0, 0)
	}
	m.Add(100, Read, 50, 0, 0) // forces eviction of the coldest eighth (=1 entry)
	if _, ok := m.Get(0, 0); ok {
		t.Error("coldest key 0 should have been evicted")
	}
	if _, ok := m.Get(100, 0); !ok {
		t.Error("new key 100 missing after eviction")
	}
	if _, ok := m.Get(7, 0); !ok {
		t.Error("hot key 7 must survive eviction")
	}
}

func TestMapRemoveFuncAndRekey(t *testing.T) {
	m := NewMap[string](time.Minute, 0)
	m.Add("/a/x", Read, 1, 0, 0)
	m.Add("/a/y", Read, 2, 0, 0)
	m.Add("/b/z", Read, 3, 0, 0)
	m.RemoveFunc(func(k string) bool { return k == "/a/y" })
	if m.Len() != 2 {
		t.Fatalf("Len = %d, want 2", m.Len())
	}
	m.Rekey(func(k string) (string, bool) {
		if k == "/a/x" {
			return "/b/z", true // collide: stats fold together
		}
		return k, false
	})
	st, ok := m.Get("/b/z", 0)
	if !ok || !almostEqual(st.Read.Ops, 4) {
		t.Errorf("folded stat = %+v ok=%v, want Read.Ops 4", st, ok)
	}
}

func TestCollectorDrain(t *testing.T) {
	c := NewCollector()
	c.Touch(7, Read, 100)
	c.Touch(7, Read, 50)
	c.Touch(7, Write, 25)
	c.Touch(3, Write, 10)
	got := c.Drain()
	if len(got) != 2 {
		t.Fatalf("len = %d, want 2", len(got))
	}
	if got[0].Block != 3 || got[1].Block != 7 {
		t.Fatalf("order = %v,%v, want 3,7", got[0].Block, got[1].Block)
	}
	d := got[1]
	if d.ReadOps != 2 || d.ReadBytes != 150 || d.WriteOps != 1 || d.WriteBytes != 25 {
		t.Errorf("block 7 delta = %+v", d)
	}
	if again := c.Drain(); len(again) != 0 {
		t.Errorf("second drain = %v, want empty", again)
	}
}

func TestCollectorRestore(t *testing.T) {
	c := NewCollector()
	c.Touch(9, Read, 40)
	drained := c.Drain()
	c.Restore(drained)
	c.Touch(9, Read, 2)
	got := c.Drain()
	if len(got) != 1 || got[0].ReadOps != 2 || got[0].ReadBytes != 42 {
		t.Fatalf("after restore = %+v, want 2 ops / 42 bytes", got)
	}
}

func TestCollectorIdlePurge(t *testing.T) {
	c := NewCollector()
	c.Touch(5, Read, 1)
	c.Drain()
	for i := 0; i < idleDrains; i++ {
		c.Drain()
	}
	if _, ok := c.cells.Load(core.BlockID(5)); ok {
		t.Error("idle cell should have been purged")
	}
	// Touching after a purge starts a fresh cell.
	c.Touch(5, Read, 3)
	got := c.Drain()
	if len(got) != 1 || got[0].ReadBytes != 3 {
		t.Fatalf("post-purge drain = %+v", got)
	}
}

// TestCollectorConcurrent hammers Touch from many goroutines while
// Drain runs concurrently, then checks no operation was lost (drains
// plus the residual must equal the touches). Run under -race in CI.
func TestCollectorConcurrent(t *testing.T) {
	c := NewCollector()
	const goroutines = 8
	const perG = 2000
	var drained []Delta
	stop := make(chan struct{})
	drainerDone := make(chan struct{})
	go func() {
		defer close(drainerDone)
		for {
			drained = append(drained, c.Drain()...)
			select {
			case <-stop:
				return
			default:
			}
		}
	}()
	var writers sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		writers.Add(1)
		go func() {
			defer writers.Done()
			for i := 0; i < perG; i++ {
				c.Touch(core.BlockID(i%4), Read, 1)
				c.Touch(core.BlockID(i%4), Write, 2)
			}
		}()
	}
	// Wait for the writers, then stop the drainer and take the rest.
	writers.Wait()
	close(stop)
	<-drainerDone
	drained = append(drained, c.Drain()...)

	var readOps, writeBytes int64
	for _, d := range drained {
		readOps += int64(d.ReadOps)
		writeBytes += d.WriteBytes
	}
	wantOps := int64(goroutines * perG)
	if readOps != wantOps {
		t.Errorf("read ops = %d, want %d", readOps, wantOps)
	}
	if writeBytes != 2*wantOps {
		t.Errorf("write bytes = %d, want %d", writeBytes, 2*wantOps)
	}
}

// TestMapConcurrent exercises Add/Snapshot/Get concurrently; mainly a
// race-detector target.
func TestMapConcurrent(t *testing.T) {
	m := NewMap[core.BlockID](time.Minute, 128)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				m.Add(core.BlockID(i%32), Kind(i%2), 1, 8, int64(i)*ns)
				if i%50 == 0 {
					m.Snapshot(int64(i) * ns)
					m.Get(core.BlockID(i%32), int64(i)*ns)
				}
			}
		}(g)
	}
	wg.Wait()
	if m.Len() == 0 {
		t.Error("map unexpectedly empty")
	}
}
