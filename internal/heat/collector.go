package heat

import (
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/core"
)

// Delta is one block's raw (undecayed) access counts accumulated on a
// worker since the previous heartbeat drain. Workers ship these
// piggybacked on HeartbeatArgs; the master folds them into its
// decayed heat maps.
type Delta struct {
	Block      core.BlockID
	ReadOps    uint32
	WriteOps   uint32
	ReadBytes  int64
	WriteBytes int64
}

// cell packs an op count and a byte count into one uint64 so the data
// path pays exactly one atomic add per operation:
//
//	bits 40..63  op count   (24 bits, 16.7M ops per drain window)
//	bits  0..39  byte count (40 bits, ~1.1 TiB per drain window)
//
// Heartbeats drain every few seconds, so neither field can plausibly
// overflow between drains (a single worker cannot move a tebibyte or
// serve sixteen million block ops in one window).
const (
	cellOpShift   = 40
	cellByteMask  = (uint64(1) << cellOpShift) - 1
	cellOneOp     = uint64(1) << cellOpShift
	cellByteLimit = int64(cellByteMask)
)

// pair holds one block's read and write cells.
type pair struct {
	read  atomic.Uint64
	write atomic.Uint64
}

// Collector accumulates per-block access deltas on a worker's data
// path. Touch is lock-free — a sync.Map load plus one atomic add —
// so it meets the "one atomic update per block op" budget. Drain and
// Restore run at heartbeat granularity.
type Collector struct {
	cells sync.Map // core.BlockID -> *pair

	mu   sync.Mutex
	idle map[core.BlockID]int // consecutive zero drains, guarded by mu
}

// idleDrains is how many consecutive empty drains a block survives
// before its cell is purged. Purging races a concurrent Touch: an add
// landing between the final Swap and the Delete is lost. A block idle
// for ~64 heartbeats then touched exactly during the purge window
// loses at most that one delta — benign for a decayed statistic — so
// the hot path stays free of purge coordination.
const idleDrains = 64

// NewCollector builds an empty Collector.
func NewCollector() *Collector {
	return &Collector{idle: make(map[core.BlockID]int)}
}

// Touch records one operation of kind k moving n bytes against block
// id. Safe for concurrent use; one atomic add on the fast path.
func (c *Collector) Touch(id core.BlockID, kind Kind, n int64) {
	if n < 0 {
		n = 0
	} else if n > cellByteLimit {
		n = cellByteLimit
	}
	p, ok := c.cells.Load(id)
	if !ok {
		p, _ = c.cells.LoadOrStore(id, &pair{})
	}
	cellp := &p.(*pair).read
	if kind == Write {
		cellp = &p.(*pair).write
	}
	cellp.Add(cellOneOp | uint64(n))
}

// Drain atomically swaps out and returns all non-zero deltas, sorted
// by block ID. Blocks that stay zero for idleDrains consecutive
// drains are purged so deleted blocks don't pin memory forever.
func (c *Collector) Drain() []Delta {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []Delta
	c.cells.Range(func(key, value any) bool {
		id := key.(core.BlockID)
		p := value.(*pair)
		r := p.read.Swap(0)
		w := p.write.Swap(0)
		if r == 0 && w == 0 {
			c.idle[id]++
			if c.idle[id] >= idleDrains {
				c.cells.Delete(id)
				delete(c.idle, id)
			}
			return true
		}
		delete(c.idle, id)
		out = append(out, Delta{
			Block:      id,
			ReadOps:    uint32(r >> cellOpShift),
			WriteOps:   uint32(w >> cellOpShift),
			ReadBytes:  int64(r & cellByteMask),
			WriteBytes: int64(w & cellByteMask),
		})
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i].Block < out[j].Block })
	return out
}

// Restore folds previously drained deltas back in, used when the
// heartbeat carrying them failed so the counts survive master
// hiccups.
func (c *Collector) Restore(deltas []Delta) {
	for _, d := range deltas {
		p, ok := c.cells.Load(d.Block)
		if !ok {
			p, _ = c.cells.LoadOrStore(d.Block, &pair{})
		}
		pr := p.(*pair)
		if d.ReadOps > 0 || d.ReadBytes > 0 {
			pr.read.Add(uint64(d.ReadOps)<<cellOpShift | uint64(d.ReadBytes)&cellByteMask)
		}
		if d.WriteOps > 0 || d.WriteBytes > 0 {
			pr.write.Add(uint64(d.WriteOps)<<cellOpShift | uint64(d.WriteBytes)&cellByteMask)
		}
	}
}

// Forget drops a block's cell immediately (e.g. after the block is
// invalidated on this worker).
func (c *Collector) Forget(id core.BlockID) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.cells.Delete(id)
	delete(c.idle, id)
}
