package blockmgmt

import (
	"testing"
	"time"

	"repro/internal/core"
)

func b(id uint64) core.Block { return core.Block{ID: core.BlockID(id), GenStamp: 1} }

func rep(w, s string, t core.StorageTier) Replica {
	return Replica{Worker: core.WorkerID(w), Storage: core.StorageID(s), Tier: t}
}

func TestComputeStateSatisfied(t *testing.T) {
	st := computeState(core.NewReplicationVector(1, 0, 2, 0, 0), map[core.StorageTier]int{
		core.TierMemory: 1, core.TierHDD: 2,
	})
	if !st.Satisfied() {
		t.Errorf("exact match not satisfied: %+v", st)
	}
}

func TestComputeStatePinnedDeficit(t *testing.T) {
	st := computeState(core.NewReplicationVector(1, 0, 2, 0, 0), map[core.StorageTier]int{
		core.TierHDD: 1,
	})
	if st.MissingPerTier[core.TierMemory] != 1 || st.MissingPerTier[core.TierHDD] != 1 {
		t.Errorf("MissingPerTier = %v, want memory:1 hdd:1", st.MissingPerTier)
	}
	if st.MissingTotal() != 2 {
		t.Errorf("MissingTotal = %d, want 2", st.MissingTotal())
	}
}

func TestComputeStateUnspecifiedSatisfiedByAnyTier(t *testing.T) {
	// U=3, replicas on SSD+HDD+HDD: satisfied.
	st := computeState(core.ReplicationVectorFromFactor(3), map[core.StorageTier]int{
		core.TierSSD: 1, core.TierHDD: 2,
	})
	if !st.Satisfied() {
		t.Errorf("U=3 with 3 replicas not satisfied: %+v", st)
	}
}

func TestComputeStateUnderReplicatedUnspecified(t *testing.T) {
	st := computeState(core.ReplicationVectorFromFactor(3), map[core.StorageTier]int{
		core.TierHDD: 1,
	})
	if st.MissingAny != 2 || len(st.MissingPerTier) != 0 {
		t.Errorf("state = %+v, want MissingAny=2", st)
	}
}

func TestComputeStateExcess(t *testing.T) {
	// Expected <1,0,2,0,0>, actual 1 mem + 3 hdd: one HDD replica in
	// excess.
	st := computeState(core.NewReplicationVector(1, 0, 2, 0, 0), map[core.StorageTier]int{
		core.TierMemory: 1, core.TierHDD: 3,
	})
	if st.Excess != 1 {
		t.Errorf("Excess = %d, want 1", st.Excess)
	}
	if len(st.ExcessTiers) != 1 || st.ExcessTiers[0] != core.TierHDD {
		t.Errorf("ExcessTiers = %v, want [HDD]", st.ExcessTiers)
	}
}

func TestComputeStateMixedSurplusFeedsUnspecified(t *testing.T) {
	// <0,1,0,0,2>: one pinned SSD, two anywhere. Actual: 2 SSD + 1 HDD.
	// SSD surplus (1) and the HDD replica both count toward U=2.
	st := computeState(core.NewReplicationVector(0, 1, 0, 0, 2), map[core.StorageTier]int{
		core.TierSSD: 2, core.TierHDD: 1,
	})
	if !st.Satisfied() {
		t.Errorf("state = %+v, want satisfied", st)
	}
}

func TestComputeStateSimultaneousDeficitAndExcess(t *testing.T) {
	// <1,0,2,0,0>: actual 3 SSD. Memory missing 1, HDD missing 2, and
	// all 3 SSD replicas are excess (no U entries to absorb them).
	st := computeState(core.NewReplicationVector(1, 0, 2, 0, 0), map[core.StorageTier]int{
		core.TierSSD: 3,
	})
	if st.MissingPerTier[core.TierMemory] != 1 || st.MissingPerTier[core.TierHDD] != 2 {
		t.Errorf("MissingPerTier = %v", st.MissingPerTier)
	}
	if st.Excess != 3 {
		t.Errorf("Excess = %d, want 3", st.Excess)
	}
}

func TestManagerAddRemoveReplica(t *testing.T) {
	m := NewManager()
	m.AddBlock(b(1), core.ReplicationVectorFromFactor(2))
	if n := m.NumBlocks(); n != 1 {
		t.Fatalf("NumBlocks = %d", n)
	}

	if ok, stale := m.AddReplica(b(1), rep("w1", "w1:hdd0", core.TierHDD)); !ok || stale {
		t.Errorf("AddReplica = %v,%v", ok, stale)
	}
	m.AddReplica(b(1), rep("w2", "w2:hdd0", core.TierHDD))
	if got := len(m.Replicas(1)); got != 2 {
		t.Fatalf("replicas = %d, want 2", got)
	}
	// Duplicate storage updates in place, not appends.
	m.AddReplica(b(1), rep("w1", "w1:hdd0", core.TierHDD))
	if got := len(m.Replicas(1)); got != 2 {
		t.Errorf("replicas after duplicate add = %d, want 2", got)
	}

	st, ok := m.State(1)
	if !ok || !st.Satisfied() {
		t.Errorf("State = %+v, want satisfied", st)
	}

	m.RemoveReplica(1, "w1:hdd0")
	st, _ = m.State(1)
	if st.MissingAny != 1 {
		t.Errorf("after removal MissingAny = %d, want 1", st.MissingAny)
	}
}

func TestManagerStaleGeneration(t *testing.T) {
	m := NewManager()
	fresh := core.Block{ID: 5, GenStamp: 3}
	m.AddBlock(fresh, core.ReplicationVectorFromFactor(1))
	stale := core.Block{ID: 5, GenStamp: 2}
	ok, isStale := m.AddReplica(stale, rep("w1", "w1:hdd0", core.TierHDD))
	if ok || !isStale {
		t.Errorf("stale replica: ok=%v stale=%v, want false,true", ok, isStale)
	}
	if got := len(m.Replicas(5)); got != 0 {
		t.Errorf("stale replica stored: %d", got)
	}
}

func TestManagerUnknownBlockReplica(t *testing.T) {
	m := NewManager()
	ok, stale := m.AddReplica(b(99), rep("w1", "w1:hdd0", core.TierHDD))
	if ok || stale {
		t.Errorf("unknown block: ok=%v stale=%v, want false,false", ok, stale)
	}
}

func TestManagerRemoveBlock(t *testing.T) {
	m := NewManager()
	m.AddBlock(b(1), core.ReplicationVectorFromFactor(2))
	m.AddReplica(b(1), rep("w1", "w1:hdd0", core.TierHDD))
	m.AddReplica(b(1), rep("w2", "w2:ssd0", core.TierSSD))
	replicas := m.RemoveBlock(1)
	if len(replicas) != 2 {
		t.Errorf("RemoveBlock returned %d replicas, want 2", len(replicas))
	}
	if m.NumBlocks() != 0 {
		t.Error("block not removed")
	}
	if got := m.RemoveBlock(1); got != nil {
		t.Errorf("double RemoveBlock = %v", got)
	}
}

func TestManagerRemoveWorker(t *testing.T) {
	m := NewManager()
	m.AddBlock(b(1), core.ReplicationVectorFromFactor(2))
	m.AddBlock(b(2), core.ReplicationVectorFromFactor(2))
	m.AddReplica(b(1), rep("w1", "w1:hdd0", core.TierHDD))
	m.AddReplica(b(1), rep("w2", "w2:hdd0", core.TierHDD))
	m.AddReplica(b(2), rep("w1", "w1:ssd0", core.TierSSD))

	affected := m.RemoveWorker("w1")
	if len(affected) != 2 || affected[0] != 1 || affected[1] != 2 {
		t.Errorf("RemoveWorker affected = %v, want [1 2]", affected)
	}
	if got := len(m.Replicas(1)); got != 1 {
		t.Errorf("block 1 replicas = %d, want 1", got)
	}
	if got := len(m.Replicas(2)); got != 0 {
		t.Errorf("block 2 replicas = %d, want 0", got)
	}
	if got := m.RemoveWorker("w1"); len(got) != 0 {
		t.Errorf("double RemoveWorker = %v", got)
	}
}

func TestManagerCommitAndSetExpected(t *testing.T) {
	m := NewManager()
	m.AddBlock(b(1), core.ReplicationVectorFromFactor(1))
	committed := core.Block{ID: 1, GenStamp: 1, NumBytes: 4096}
	m.CommitBlock(committed)
	info, ok := m.Info(1)
	if !ok || info.Block.NumBytes != 4096 {
		t.Errorf("Info after commit = %+v", info)
	}
	m.SetExpected(1, core.NewReplicationVector(1, 1, 1, 0, 0))
	st, _ := m.State(1)
	if st.MissingTotal() != 3 {
		t.Errorf("MissingTotal after SetExpected = %d, want 3", st.MissingTotal())
	}
}

func TestScanUnhealthy(t *testing.T) {
	m := NewManager()
	m.AddBlock(b(1), core.ReplicationVectorFromFactor(1)) // missing 1
	m.AddBlock(b(2), core.ReplicationVectorFromFactor(1)) // healthy
	m.AddReplica(b(2), rep("w1", "w1:hdd0", core.TierHDD))
	m.AddBlock(b(3), core.ReplicationVectorFromFactor(1)) // excess
	m.AddReplica(b(3), rep("w1", "w1:hdd1", core.TierHDD))
	m.AddReplica(b(3), rep("w2", "w2:hdd0", core.TierHDD))
	for _, id := range []uint64{1, 2, 3} {
		m.CommitBlock(b(id)) // release to the monitor
	}

	var visited []core.BlockID
	m.ScanUnhealthy(func(info BlockInfo, st ReplicationState) {
		visited = append(visited, info.Block.ID)
		if st.Satisfied() {
			t.Errorf("ScanUnhealthy visited satisfied block %v", info.Block.ID)
		}
	})
	if len(visited) != 2 || visited[0] != 1 || visited[1] != 3 {
		t.Errorf("visited = %v, want [1 3] in order", visited)
	}
}

func TestUnderConstructionBlocksSkippedByScan(t *testing.T) {
	m := NewManager()
	m.AddBlock(b(1), core.ReplicationVectorFromFactor(3)) // UC, 0 replicas
	visited := 0
	m.ScanUnhealthy(func(BlockInfo, ReplicationState) { visited++ })
	if visited != 0 {
		t.Errorf("scan visited %d under-construction blocks, want 0", visited)
	}
	m.CommitBlock(b(1))
	m.ScanUnhealthy(func(BlockInfo, ReplicationState) { visited++ })
	if visited != 1 {
		t.Errorf("scan visited %d committed blocks, want 1", visited)
	}
}

func TestReplicasOnWorkerGraceWindow(t *testing.T) {
	m := NewManager()
	m.AddBlock(b(1), core.ReplicationVectorFromFactor(1))
	m.AddReplica(b(1), rep("w1", "w1:hdd0", core.TierHDD))

	// A cutoff in the past excludes the just-added replica.
	past := time.Now().Add(-time.Second)
	if got := m.ReplicasOnWorker("w1", past); len(got) != 0 {
		t.Errorf("fresh replica visible before cutoff: %v", got)
	}
	// A future cutoff includes it.
	future := time.Now().Add(time.Second)
	if got := m.ReplicasOnWorker("w1", future); len(got) != 1 {
		t.Errorf("replica missing with future cutoff: %v", got)
	}
}
