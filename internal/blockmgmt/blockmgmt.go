// Package blockmgmt maintains the master's second metadata collection
// (paper §2.1): the mapping from file blocks to the workers and
// storage media hosting their replicas, and the per-tier replication
// state from which the master drives re-replication and excess-replica
// removal (paper §5).
package blockmgmt

import (
	"sort"
	"sync"
	"time"

	"repro/internal/core"
)

// Replica locates one stored copy of a block.
type Replica struct {
	Worker  core.WorkerID
	Storage core.StorageID
	Tier    core.StorageTier
}

// BlockInfo is the master-side record of one block: its identity, the
// replication vector it should satisfy, and its known replicas.
type BlockInfo struct {
	Block    core.Block
	Expected core.ReplicationVector
	Replicas []Replica

	// UnderConstruction marks a block still being written through a
	// client pipeline. The replication monitor ignores such blocks —
	// their replicas trickle in as the pipeline stages acknowledge —
	// and only repairs committed blocks, like HDFS.
	UnderConstruction bool
}

// TierCounts tallies the block's replicas per tier.
func (bi *BlockInfo) TierCounts() map[core.StorageTier]int {
	counts := make(map[core.StorageTier]int)
	for _, r := range bi.Replicas {
		counts[r.Tier]++
	}
	return counts
}

// ReplicationState summarises how a block's replica set diverges from
// its replication vector.
type ReplicationState struct {
	// MissingPerTier counts replicas still needed on tiers the vector
	// pins explicitly.
	MissingPerTier map[core.StorageTier]int

	// MissingAny counts additional replicas needed on any tier
	// (unsatisfied "Unspecified" entries).
	MissingAny int

	// Excess counts replicas beyond the vector's total that should be
	// removed.
	Excess int

	// ExcessTiers lists, fastest tier first, the tiers holding more
	// replicas than pinned and not needed to satisfy unspecified
	// entries — the candidate tiers for removal.
	ExcessTiers []core.StorageTier
}

// Satisfied reports whether the block needs no repair.
func (s ReplicationState) Satisfied() bool {
	return len(s.MissingPerTier) == 0 && s.MissingAny == 0 && s.Excess == 0
}

// MissingTotal returns the total number of replicas to create.
func (s ReplicationState) MissingTotal() int {
	n := s.MissingAny
	for _, v := range s.MissingPerTier {
		n += v
	}
	return n
}

// computeState diffs actual per-tier counts against a replication
// vector. Surplus replicas on pinned tiers count toward unspecified
// entries before being declared excess, matching the paper's semantics
// that "U" replicas may live on any tier.
func computeState(expected core.ReplicationVector, actual map[core.StorageTier]int) ReplicationState {
	st := ReplicationState{MissingPerTier: make(map[core.StorageTier]int)}
	surplus := make(map[core.StorageTier]int)
	totalSurplus := 0
	for _, t := range core.Tiers() {
		want := expected.Tier(t)
		have := actual[t]
		switch {
		case have < want:
			st.MissingPerTier[t] = want - have
		case have > want:
			surplus[t] = have - want
			totalSurplus += have - want
		}
	}
	u := expected.Unspecified()
	if totalSurplus < u {
		st.MissingAny = u - totalSurplus
	} else if totalSurplus > u {
		st.Excess = totalSurplus - u
		for _, t := range core.Tiers() {
			if surplus[t] > 0 {
				st.ExcessTiers = append(st.ExcessTiers, t)
			}
		}
	}
	return st
}

// replicaKey identifies one replica record.
type replicaKey struct {
	id      core.BlockID
	storage core.StorageID
}

// Manager is the concurrent block map.
type Manager struct {
	mu     sync.RWMutex
	blocks map[core.BlockID]*BlockInfo
	// byWorker indexes block IDs by hosting worker for fast failure
	// handling.
	byWorker map[core.WorkerID]map[core.BlockID]struct{}
	// added records when each replica was first seen, so block-report
	// reconciliation can ignore replicas newer than the report (a
	// report generated before a pipeline write finished must not erase
	// the freshly received replica).
	added map[replicaKey]time.Time
}

// NewManager returns an empty block map.
func NewManager() *Manager {
	return &Manager{
		blocks:   make(map[core.BlockID]*BlockInfo),
		byWorker: make(map[core.WorkerID]map[core.BlockID]struct{}),
		added:    make(map[replicaKey]time.Time),
	}
}

// AddBlock registers a freshly allocated block with its expected
// replication vector.
func (m *Manager) AddBlock(b core.Block, expected core.ReplicationVector) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if existing, ok := m.blocks[b.ID]; ok {
		existing.Expected = expected
		if b.GenStamp >= existing.Block.GenStamp {
			existing.Block = b
		}
		return
	}
	m.blocks[b.ID] = &BlockInfo{Block: b, Expected: expected, UnderConstruction: true}
}

// CommitBlock records a block's final length and releases it to the
// replication monitor.
func (m *Manager) CommitBlock(b core.Block) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if bi, ok := m.blocks[b.ID]; ok {
		if b.GenStamp >= bi.Block.GenStamp {
			bi.Block = b
		}
		bi.UnderConstruction = false
	}
}

// RemoveBlock forgets a block (file deleted) and returns the replicas
// to invalidate on the workers.
func (m *Manager) RemoveBlock(id core.BlockID) []Replica {
	m.mu.Lock()
	defer m.mu.Unlock()
	bi, ok := m.blocks[id]
	if !ok {
		return nil
	}
	for _, r := range bi.Replicas {
		m.unindexLocked(r.Worker, id)
		delete(m.added, replicaKey{id, r.Storage})
	}
	delete(m.blocks, id)
	return bi.Replicas
}

// SetExpected updates a block's replication vector (SetReplication).
func (m *Manager) SetExpected(id core.BlockID, expected core.ReplicationVector) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if bi, ok := m.blocks[id]; ok {
		bi.Expected = expected
	}
}

// AddReplica records that a worker stores a replica. Stale-generation
// replicas are rejected and reported for deletion (stale=true).
// Replicas of unknown blocks (e.g. of files deleted while the report
// was in flight) are also rejected for deletion.
func (m *Manager) AddReplica(b core.Block, r Replica) (accepted, stale bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	bi, ok := m.blocks[b.ID]
	if !ok {
		return false, false
	}
	if b.GenStamp < bi.Block.GenStamp {
		return false, true
	}
	for i, existing := range bi.Replicas {
		if existing.Storage == r.Storage {
			bi.Replicas[i] = r
			return true, false
		}
	}
	bi.Replicas = append(bi.Replicas, r)
	if b.NumBytes > bi.Block.NumBytes {
		bi.Block.NumBytes = b.NumBytes
	}
	m.indexLocked(r.Worker, b.ID)
	m.added[replicaKey{b.ID, r.Storage}] = time.Now()
	return true, false
}

// RemoveReplica forgets one replica (media failure, deletion ack, or
// corruption report).
func (m *Manager) RemoveReplica(id core.BlockID, storage core.StorageID) {
	m.mu.Lock()
	defer m.mu.Unlock()
	bi, ok := m.blocks[id]
	if !ok {
		return
	}
	for i, r := range bi.Replicas {
		if r.Storage == storage {
			worker := r.Worker
			bi.Replicas = append(bi.Replicas[:i], bi.Replicas[i+1:]...)
			delete(m.added, replicaKey{id, storage})
			still := false
			for _, rest := range bi.Replicas {
				if rest.Worker == worker {
					still = true
					break
				}
			}
			if !still {
				m.unindexLocked(worker, id)
			}
			return
		}
	}
}

// RemoveWorker drops every replica hosted by a failed worker and
// returns the IDs of the affected blocks (candidates for
// re-replication).
func (m *Manager) RemoveWorker(w core.WorkerID) []core.BlockID {
	m.mu.Lock()
	defer m.mu.Unlock()
	ids := make([]core.BlockID, 0, len(m.byWorker[w]))
	for id := range m.byWorker[w] {
		bi := m.blocks[id]
		kept := bi.Replicas[:0]
		for _, r := range bi.Replicas {
			if r.Worker != w {
				kept = append(kept, r)
			} else {
				delete(m.added, replicaKey{id, r.Storage})
			}
		}
		bi.Replicas = kept
		ids = append(ids, id)
	}
	delete(m.byWorker, w)
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// ReplicasOnWorker lists every (block, storage) pair the map believes
// the worker hosts and that was added before the cutoff; block reports
// reconcile against it. The cutoff excludes replicas fresher than the
// report being processed, which would otherwise be erased by a report
// generated before their pipeline write completed.
func (m *Manager) ReplicasOnWorker(w core.WorkerID, addedBefore time.Time) map[core.BlockID]core.StorageID {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make(map[core.BlockID]core.StorageID)
	for id := range m.byWorker[w] {
		for _, r := range m.blocks[id].Replicas {
			if r.Worker != w {
				continue
			}
			if at, ok := m.added[replicaKey{id, r.Storage}]; ok && at.After(addedBefore) {
				continue
			}
			out[id] = r.Storage
		}
	}
	return out
}

// Replicas returns a copy of a block's replica list.
func (m *Manager) Replicas(id core.BlockID) []Replica {
	m.mu.RLock()
	defer m.mu.RUnlock()
	bi, ok := m.blocks[id]
	if !ok {
		return nil
	}
	return append([]Replica(nil), bi.Replicas...)
}

// Info returns a copy of the block's record.
func (m *Manager) Info(id core.BlockID) (BlockInfo, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	bi, ok := m.blocks[id]
	if !ok {
		return BlockInfo{}, false
	}
	out := *bi
	out.Replicas = append([]Replica(nil), bi.Replicas...)
	return out, true
}

// State computes a block's replication state.
func (m *Manager) State(id core.BlockID) (ReplicationState, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	bi, ok := m.blocks[id]
	if !ok {
		return ReplicationState{}, false
	}
	return computeState(bi.Expected, bi.tierCountsLocked()), true
}

func (bi *BlockInfo) tierCountsLocked() map[core.StorageTier]int {
	counts := make(map[core.StorageTier]int)
	for _, r := range bi.Replicas {
		counts[r.Tier]++
	}
	return counts
}

// ScanUnhealthy visits every block whose replication state is not
// satisfied, in block-ID order. The callback receives copies.
func (m *Manager) ScanUnhealthy(fn func(BlockInfo, ReplicationState)) {
	type item struct {
		info  BlockInfo
		state ReplicationState
	}
	m.mu.RLock()
	var items []item
	for _, bi := range m.blocks {
		if bi.UnderConstruction {
			continue
		}
		st := computeState(bi.Expected, bi.tierCountsLocked())
		if st.Satisfied() {
			continue
		}
		cp := *bi
		cp.Replicas = append([]Replica(nil), bi.Replicas...)
		items = append(items, item{cp, st})
	}
	m.mu.RUnlock()
	sort.Slice(items, func(i, j int) bool { return items[i].info.Block.ID < items[j].info.Block.ID })
	for _, it := range items {
		fn(it.info, it.state)
	}
}

// NumBlocks returns the number of tracked blocks.
func (m *Manager) NumBlocks() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.blocks)
}

func (m *Manager) indexLocked(w core.WorkerID, id core.BlockID) {
	set, ok := m.byWorker[w]
	if !ok {
		set = make(map[core.BlockID]struct{})
		m.byWorker[w] = set
	}
	set[id] = struct{}{}
}

func (m *Manager) unindexLocked(w core.WorkerID, id core.BlockID) {
	if set, ok := m.byWorker[w]; ok {
		delete(set, id)
		if len(set) == 0 {
			delete(m.byWorker, w)
		}
	}
}
