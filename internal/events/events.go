// Package events implements the cluster event journal, the third
// observability plane next to metrics (internal/metrics) and traces
// (internal/trace). Where metrics answer "what is the cluster doing
// right now" and a trace answers "what happened inside one request",
// the journal answers "what has happened to the cluster over time":
// worker lifecycle changes, block state transitions, replication
// actions, and placement decisions, each stamped with a monotonic
// sequence number so consumers can cursor through them exactly once.
//
// The journal is a bounded ring buffer: memory never grows past the
// configured capacity no matter how many events are published. Evicted
// events are counted, and the Since cursor reports how many events a
// consumer missed to eviction, so a poller can always distinguish "no
// news" from "news lost".
package events

import (
	"sync"
	"time"
)

// DefaultCapacity bounds the journal when the configured capacity is
// zero. At typical cluster event rates (worker lifecycle + block
// transitions) this covers hours of history in a few MB.
const DefaultCapacity = 4096

// Severity grades an event. The journal does not interpret it; it
// exists so consumers can filter signal (warn/error) from routine
// lifecycle noise (info).
type Severity string

// Severity levels.
const (
	Info  Severity = "info"
	Warn  Severity = "warn"
	Error Severity = "error"
)

// Event is one journaled occurrence. Attrs carry the event-specific
// details (worker ID, block ID, tier, scores…) as strings so the
// package stays dependency-free and events serialise uniformly to
// JSON and gob.
type Event struct {
	// Seq is the journal-assigned sequence number: strictly
	// monotonically increasing, starting at 1, never reused. It
	// doubles as the cursor for incremental consumption.
	Seq uint64 `json:"seq"`

	// Time is the publication time in Unix nanoseconds.
	Time int64 `json:"time_ns"`

	// Type names the event kind (e.g. "worker_register",
	// "block_committed", "placement", "slow_op").
	Type string `json:"type"`

	// Severity grades the event.
	Severity Severity `json:"severity"`

	// Message is the human-readable one-liner.
	Message string `json:"message,omitempty"`

	// TraceID links the event to a distributed trace (the request ID)
	// when the event was caused by one identifiable request.
	TraceID string `json:"trace_id,omitempty"`

	// Attrs carry event-specific key/value details.
	Attrs map[string]string `json:"attrs,omitempty"`
}

// Journal is a bounded, thread-safe event ring buffer with per-type
// counters. A nil *Journal is valid and discards everything, so
// callers never need nil checks on the publish path.
type Journal struct {
	mu      sync.Mutex
	buf     []Event // ring storage, len == capacity
	start   int     // index of the oldest retained event
	n       int     // retained events
	nextSeq uint64  // next sequence number to assign (first event gets 1)
	evicted uint64  // events dropped from the ring (oldest-first)
	counts  map[string]uint64
}

// NewJournal builds a journal retaining up to capacity events (<= 0
// selects DefaultCapacity).
func NewJournal(capacity int) *Journal {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Journal{
		buf:     make([]Event, capacity),
		nextSeq: 1,
		counts:  make(map[string]uint64),
	}
}

// Publish appends an event and returns its sequence number. kv are
// alternating attribute key/value pairs; a trailing odd key is
// ignored. Nil journals return 0.
func (j *Journal) Publish(sev Severity, typ, msg string, kv ...string) uint64 {
	return j.PublishTraced(sev, typ, "", msg, kv...)
}

// PublishTraced is Publish with a trace ID linking the event to a
// request's span timeline.
func (j *Journal) PublishTraced(sev Severity, typ, traceID, msg string, kv ...string) uint64 {
	if j == nil {
		return 0
	}
	var attrs map[string]string
	if len(kv) >= 2 {
		attrs = make(map[string]string, len(kv)/2)
		for i := 0; i+1 < len(kv); i += 2 {
			attrs[kv[i]] = kv[i+1]
		}
	}
	e := Event{
		Time:     time.Now().UnixNano(),
		Type:     typ,
		Severity: sev,
		Message:  msg,
		TraceID:  traceID,
		Attrs:    attrs,
	}
	j.mu.Lock()
	e.Seq = j.nextSeq
	j.nextSeq++
	j.counts[typ]++
	if j.n == len(j.buf) {
		// Ring full: overwrite the oldest slot in place; memory stays
		// exactly at capacity.
		j.buf[j.start] = e
		j.start = (j.start + 1) % len(j.buf)
		j.evicted++
	} else {
		j.buf[(j.start+j.n)%len(j.buf)] = e
		j.n++
	}
	j.mu.Unlock()
	return e.Seq
}

// Page is one Since result: a slice of events plus the cursor state a
// poller needs to continue without re-delivery or silent gaps.
type Page struct {
	// Events are the matching events, oldest first.
	Events []Event `json:"events"`

	// Next is the cursor for the following Since call: the highest
	// sequence number examined (not merely returned — type-filtered
	// events advance it too), or the request's since value when
	// nothing new exists. Polling with since=Next is exactly-once over
	// retained events.
	Next uint64 `json:"next"`

	// Missed counts events with Seq > since that were evicted before
	// this call — the poller's data loss indicator.
	Missed uint64 `json:"missed"`

	// Evicted is the journal-lifetime eviction total.
	Evicted uint64 `json:"evicted"`
}

// Since returns retained events with Seq > since, oldest first,
// optionally filtered by type, capped at limit (<= 0 means no cap).
func (j *Journal) Since(since uint64, typ string, limit int) Page {
	if j == nil {
		return Page{Next: since}
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	page := Page{Next: since, Evicted: j.evicted}
	// Events 1..evicted are gone; anything the cursor had not yet seen
	// in that range was missed. Advance the cursor past the hole so
	// the loss is reported exactly once.
	if j.evicted > since {
		page.Missed = j.evicted - since
		page.Next = j.evicted
	}
	for i := 0; i < j.n; i++ {
		e := j.buf[(j.start+i)%len(j.buf)]
		if e.Seq <= since {
			continue
		}
		if limit > 0 && len(page.Events) >= limit {
			break
		}
		page.Next = e.Seq
		if typ != "" && e.Type != typ {
			continue
		}
		page.Events = append(page.Events, e)
	}
	return page
}

// Counts returns a copy of the per-type publication totals (lifetime,
// not just retained).
func (j *Journal) Counts() map[string]uint64 {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make(map[string]uint64, len(j.counts))
	for k, v := range j.counts {
		out[k] = v
	}
	return out
}

// Len returns the number of retained events.
func (j *Journal) Len() int {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.n
}

// Cap returns the configured capacity.
func (j *Journal) Cap() int {
	if j == nil {
		return 0
	}
	return len(j.buf)
}

// LastSeq returns the highest assigned sequence number (0 before the
// first publish).
func (j *Journal) LastSeq() uint64 {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.nextSeq - 1
}

// Evicted returns how many events have been dropped to the capacity
// bound over the journal's lifetime.
func (j *Journal) Evicted() uint64 {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.evicted
}
