package events

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
)

// TestJournalBounded proves the acceptance bound: publishing far more
// events than the capacity never grows the journal past it, while the
// lifetime counters keep exact totals.
func TestJournalBounded(t *testing.T) {
	const capacity = 1024
	const published = 120_000
	j := NewJournal(capacity)
	for i := 0; i < published; i++ {
		j.Publish(Info, fmt.Sprintf("type%d", i%3), "msg", "k", "v")
	}
	if got := j.Len(); got != capacity {
		t.Fatalf("Len = %d, want exactly the capacity %d", got, capacity)
	}
	if got := j.Cap(); got != capacity {
		t.Fatalf("Cap = %d, want %d (ring must not reallocate)", got, capacity)
	}
	if got := j.LastSeq(); got != published {
		t.Fatalf("LastSeq = %d, want %d", got, published)
	}
	if got := j.Evicted(); got != published-capacity {
		t.Fatalf("Evicted = %d, want %d", got, published-capacity)
	}
	var total uint64
	for _, c := range j.Counts() {
		total += c
	}
	if total != published {
		t.Fatalf("sum of Counts = %d, want %d", total, published)
	}
	// Retained events are the newest `capacity`, in order, contiguous.
	page := j.Since(0, "", 0)
	if len(page.Events) != capacity {
		t.Fatalf("retained %d events, want %d", len(page.Events), capacity)
	}
	for i, e := range page.Events {
		want := uint64(published - capacity + 1 + i)
		if e.Seq != want {
			t.Fatalf("event %d has seq %d, want %d", i, e.Seq, want)
		}
	}
	if page.Missed != published-capacity {
		t.Fatalf("Missed from cursor 0 = %d, want %d", page.Missed, published-capacity)
	}
}

// TestCursorExactlyOnceAcrossEviction drives a poller cursor while the
// journal churns past its capacity: every retained event must be
// delivered exactly once, and every event lost to eviction must be
// reported in Missed, never silently skipped.
func TestCursorExactlyOnceAcrossEviction(t *testing.T) {
	const capacity = 16
	j := NewJournal(capacity)

	seen := make(map[uint64]int)
	var cursor, missed uint64
	poll := func() {
		page := j.Since(cursor, "", 0)
		for _, e := range page.Events {
			if e.Seq <= cursor {
				t.Fatalf("re-delivered seq %d at cursor %d", e.Seq, cursor)
			}
			seen[e.Seq]++
		}
		missed += page.Missed
		cursor = page.Next
	}

	var published uint64
	for round := 0; round < 40; round++ {
		// Publish a burst; odd rounds overflow the ring between polls.
		burst := 3 + round%29
		for i := 0; i < burst; i++ {
			j.Publish(Info, "churn", "m")
			published++
		}
		poll()
	}
	poll()

	for seq, n := range seen {
		if n != 1 {
			t.Fatalf("seq %d delivered %d times", seq, n)
		}
	}
	if got := uint64(len(seen)) + missed; got != published {
		t.Fatalf("delivered(%d) + missed(%d) = %d, want %d published",
			len(seen), missed, got, published)
	}
	if cursor != published {
		t.Fatalf("final cursor %d, want %d", cursor, published)
	}
}

// TestSinceTypeFilterAndLimit exercises the type filter (which must
// still advance the cursor past non-matching events) and page limits.
func TestSinceTypeFilterAndLimit(t *testing.T) {
	j := NewJournal(64)
	for i := 0; i < 10; i++ {
		typ := "a"
		if i%2 == 1 {
			typ = "b"
		}
		j.Publish(Warn, typ, "m")
	}
	page := j.Since(0, "b", 0)
	if len(page.Events) != 5 {
		t.Fatalf("type filter returned %d events, want 5", len(page.Events))
	}
	for _, e := range page.Events {
		if e.Type != "b" {
			t.Fatalf("filtered page contains type %q", e.Type)
		}
	}
	if page.Next != 10 {
		t.Fatalf("filtered Next = %d, want 10 (cursor advances past non-matches)", page.Next)
	}

	page = j.Since(0, "", 3)
	if len(page.Events) != 3 || page.Next != 3 {
		t.Fatalf("limit page: %d events next=%d, want 3 events next=3", len(page.Events), page.Next)
	}
	page = j.Since(page.Next, "", 3)
	if len(page.Events) != 3 || page.Events[0].Seq != 4 {
		t.Fatalf("second page starts at seq %d, want 4", page.Events[0].Seq)
	}
}

// TestNilJournal proves the publish/read paths are nil-safe.
func TestNilJournal(t *testing.T) {
	var j *Journal
	if seq := j.Publish(Info, "x", "m"); seq != 0 {
		t.Fatalf("nil Publish returned %d", seq)
	}
	if p := j.Since(0, "", 0); len(p.Events) != 0 || p.Next != 0 {
		t.Fatalf("nil Since returned %+v", p)
	}
	if j.Len() != 0 || j.Cap() != 0 || j.LastSeq() != 0 || j.Evicted() != 0 || j.Counts() != nil {
		t.Fatal("nil accessors not zero")
	}
}

// TestPublishConcurrent hammers the journal from many goroutines under
// the race detector: sequence numbers must stay unique and the ring
// bounded.
func TestPublishConcurrent(t *testing.T) {
	j := NewJournal(128)
	var wg sync.WaitGroup
	const workers, per = 8, 500
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				j.Publish(Info, "c", "m")
				j.Since(0, "", 10)
			}
		}()
	}
	wg.Wait()
	if got := j.LastSeq(); got != workers*per {
		t.Fatalf("LastSeq = %d, want %d", got, workers*per)
	}
	if j.Len() != 128 {
		t.Fatalf("Len = %d, want 128", j.Len())
	}
}

// TestDebugHandler exercises the /debug/events endpoint: full dump,
// since cursoring, type filtering, and bad-parameter rejection.
func TestDebugHandler(t *testing.T) {
	j := NewJournal(32)
	j.Publish(Info, "alpha", "first")
	j.PublishTraced(Warn, "beta", "cafecafecafecafe", "second", "worker", "node1")
	mux := http.NewServeMux()
	RegisterDebugHandler(mux, j)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	get := func(path string) (debugResponse, int) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var doc debugResponse
		if resp.StatusCode == http.StatusOK {
			if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
				t.Fatalf("decoding %s: %v", path, err)
			}
		}
		return doc, resp.StatusCode
	}

	doc, code := get("/debug/events")
	if code != http.StatusOK || len(doc.Events) != 2 || doc.Next != 2 {
		t.Fatalf("full dump: code=%d events=%d next=%d", code, len(doc.Events), doc.Next)
	}
	if doc.Counts["alpha"] != 1 || doc.Counts["beta"] != 1 {
		t.Fatalf("counts = %v", doc.Counts)
	}
	if doc.Events[1].TraceID != "cafecafecafecafe" || doc.Events[1].Attrs["worker"] != "node1" {
		t.Fatalf("event payload = %+v", doc.Events[1])
	}

	doc, _ = get("/debug/events?since=1")
	if len(doc.Events) != 1 || doc.Events[0].Type != "beta" {
		t.Fatalf("since=1 returned %+v", doc.Events)
	}
	doc, _ = get("/debug/events?type=alpha")
	if len(doc.Events) != 1 || doc.Events[0].Type != "alpha" {
		t.Fatalf("type filter returned %+v", doc.Events)
	}
	doc, _ = get("/debug/events?since=99")
	if len(doc.Events) != 0 || doc.Next != 99 {
		t.Fatalf("future cursor: events=%d next=%d", len(doc.Events), doc.Next)
	}
	if _, code := get("/debug/events?since=bogus"); code != http.StatusBadRequest {
		t.Fatalf("bad since accepted: %d", code)
	}
	if _, code := get("/debug/events?limit=bogus"); code != http.StatusBadRequest {
		t.Fatalf("bad limit accepted: %d", code)
	}
}
