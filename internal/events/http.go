package events

import (
	"encoding/json"
	"net/http"
	"strconv"
)

// debugResponse is the /debug/events JSON document: one cursor page
// plus the per-type lifetime counters.
type debugResponse struct {
	Page
	Counts map[string]uint64 `json:"counts"`
}

// RegisterDebugHandler mounts the journal on mux at /debug/events.
// Query parameters: ?since=<seq> resumes a cursor (default 0 = from
// the oldest retained event), ?type=<type> filters by event type, and
// ?limit=<n> caps the page size (default 1000). The response carries
// the next cursor and the number of events lost to eviction so pollers
// can page through churn without re-delivery or silent gaps.
func RegisterDebugHandler(mux *http.ServeMux, j *Journal) {
	mux.HandleFunc("/debug/events", func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query()
		since, err := parseUint(q.Get("since"))
		if err != nil {
			http.Error(w, "bad since: "+err.Error(), http.StatusBadRequest)
			return
		}
		limit := 1000
		if s := q.Get("limit"); s != "" {
			n, err := strconv.Atoi(s)
			if err != nil {
				http.Error(w, "bad limit: "+err.Error(), http.StatusBadRequest)
				return
			}
			limit = n
		}
		page := j.Since(since, q.Get("type"), limit)
		if page.Events == nil {
			page.Events = []Event{}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(debugResponse{Page: page, Counts: j.Counts()})
	})
}

func parseUint(s string) (uint64, error) {
	if s == "" {
		return 0, nil
	}
	return strconv.ParseUint(s, 10, 64)
}
