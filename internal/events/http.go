package events

import (
	"net/http"

	"repro/internal/httpjson"
)

// debugResponse is the /debug/events JSON document: one cursor page
// plus the per-type lifetime counters.
type debugResponse struct {
	Page
	Counts map[string]uint64 `json:"counts"`
}

// RegisterDebugHandler mounts the journal on mux at /debug/events.
// Query parameters: ?since=<seq> resumes a cursor (default 0 = from
// the oldest retained event), ?type=<type> filters by event type, and
// ?limit=<n> caps the page size (default 1000). The response carries
// the next cursor and the number of events lost to eviction so pollers
// can page through churn without re-delivery or silent gaps.
func RegisterDebugHandler(mux *http.ServeMux, j *Journal) {
	mux.HandleFunc("/debug/events", func(w http.ResponseWriter, r *http.Request) {
		since, ok := httpjson.Uint64Param(w, r, "since", 0)
		if !ok {
			return
		}
		limit, ok := httpjson.IntParam(w, r, "limit", 1000)
		if !ok {
			return
		}
		page := j.Since(since, r.URL.Query().Get("type"), limit)
		if page.Events == nil {
			page.Events = []Event{}
		}
		httpjson.Write(w, debugResponse{Page: page, Counts: j.Counts()})
	})
}
