// Package sim implements a deterministic flow-level simulator of an
// OctopusFS cluster. Transfers are modelled as flows through capacity
// resources (media write/read bandwidth, per-node NIC in/out), with
// every resource's capacity split equally among the flows crossing it
// — exactly the bandwidth-sharing model the paper uses to motivate its
// placement and retrieval policies (§3.2, Eq. 12). The simulator
// drives the *same* policy implementations as the live master, so the
// benchmark harness reproduces the paper's experiments by construction
// rather than by re-implementation.
package sim

import (
	"fmt"
	"math"
	"sort"
)

// Resource is a capacity-constrained stage (a media's write or read
// bandwidth, or a NIC direction). Flows crossing a resource share its
// capacity equally.
type Resource struct {
	Name     string
	Capacity float64 // MB/s
	flows    int     // active flows crossing this resource
}

// Load returns the number of active flows on the resource.
func (r *Resource) Load() int { return r.flows }

// Flow is one in-flight transfer: size bytes through a fixed set of
// resources. Rate = min over resources of capacity/flows.
type Flow struct {
	name      string
	remaining float64 // MB still to move
	resources []*Resource
	onDone    func(e *Engine)
	fixedRate float64 // >0 models a fixed-rate stage (e.g. compute)
	rate      float64 // current rate, recomputed every step
}

// Name returns the flow's diagnostic label.
func (f *Flow) Name() string { return f.name }

// Engine is the discrete-event loop: it advances simulated time from
// flow completion to flow completion, recomputing equal-share rates at
// every event.
type Engine struct {
	now   float64 // seconds
	flows map[*Flow]struct{}
	// spawned defers completions scheduled during callbacks.
	epoch int64
}

// NewEngine returns an empty engine at t=0.
func NewEngine() *Engine {
	return &Engine{flows: make(map[*Flow]struct{})}
}

// Now returns the current simulated time in seconds.
func (e *Engine) Now() float64 { return e.now }

// StartFlow launches a transfer of sizeMB through the given resources;
// onDone (may be nil) runs at completion and may start new flows.
func (e *Engine) StartFlow(name string, sizeMB float64, resources []*Resource, onDone func(*Engine)) *Flow {
	f := &Flow{name: name, remaining: sizeMB, resources: resources, onDone: onDone}
	if sizeMB <= 0 {
		f.remaining = 0
	}
	for _, r := range resources {
		r.flows++
	}
	e.flows[f] = struct{}{}
	return f
}

// StartDelay schedules onDone after a fixed simulated duration,
// modelling compute phases that consume no I/O resources.
func (e *Engine) StartDelay(name string, seconds float64, onDone func(*Engine)) *Flow {
	f := &Flow{name: name, remaining: seconds, fixedRate: 1, onDone: onDone}
	if seconds <= 0 {
		f.remaining = 0
	}
	e.flows[f] = struct{}{}
	return f
}

// rateOf computes a flow's current equal-share rate.
func rateOf(f *Flow) float64 {
	if f.fixedRate > 0 {
		return f.fixedRate
	}
	rate := math.Inf(1)
	for _, r := range f.resources {
		if r.flows <= 0 {
			continue
		}
		share := r.Capacity / float64(r.flows)
		if share < rate {
			rate = share
		}
	}
	if math.IsInf(rate, 1) {
		return math.MaxFloat64 // resource-less flow finishes instantly
	}
	return rate
}

const timeEpsilon = 1e-12

// Run advances the simulation until no flows remain, returning the
// elapsed simulated seconds. It fails if the system deadlocks (a flow
// with zero rate).
func (e *Engine) Run() (float64, error) {
	start := e.now
	for len(e.flows) > 0 {
		// Compute rates and the earliest completion.
		dt := math.Inf(1)
		for f := range e.flows {
			f.rate = rateOf(f)
			if f.rate <= 0 {
				return 0, fmt.Errorf("sim: flow %q stalled at t=%.3fs", f.name, e.now)
			}
			if t := f.remaining / f.rate; t < dt {
				dt = t
			}
		}
		if dt < 0 {
			dt = 0
		}
		// Advance every flow by dt.
		e.now += dt
		var completed []*Flow
		for f := range e.flows {
			f.remaining -= f.rate * dt
			if f.remaining <= f.rate*timeEpsilon+1e-9 {
				f.remaining = 0
				completed = append(completed, f)
			}
		}
		// Deterministic completion order.
		sort.Slice(completed, func(i, j int) bool { return completed[i].name < completed[j].name })
		for _, f := range completed {
			delete(e.flows, f)
			for _, r := range f.resources {
				r.flows--
			}
		}
		for _, f := range completed {
			if f.onDone != nil {
				f.onDone(e)
			}
		}
	}
	return e.now - start, nil
}

// Active returns the number of in-flight flows.
func (e *Engine) Active() int { return len(e.flows) }
