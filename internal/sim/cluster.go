package sim

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/policy"
	"repro/internal/topology"
)

// MediaSim is one simulated storage media.
type MediaSim struct {
	ID        core.StorageID
	Tier      core.StorageTier
	Capacity  int64 // bytes
	Used      int64 // bytes, charged at placement time
	WriteMBps float64
	ReadMBps  float64

	// Write and Read are the bandwidth resources flows cross.
	Write *Resource
	Read  *Resource

	node *NodeSim
}

// Remaining returns the media's free bytes.
func (m *MediaSim) Remaining() int64 {
	r := m.Capacity - m.Used
	if r < 0 {
		return 0
	}
	return r
}

// Connections returns the media's active I/O flow count (read+write).
func (m *MediaSim) Connections() int { return m.Write.Load() + m.Read.Load() }

// NodeSim is one simulated worker node.
type NodeSim struct {
	Name    string
	Rack    string
	NetMBps float64
	// NetIn / NetOut model the full-duplex NIC.
	NetIn  *Resource
	NetOut *Resource
	Media  []*MediaSim
}

// Connections returns the node's active network flow count.
func (n *NodeSim) Connections() int { return n.NetIn.Load() + n.NetOut.Load() }

// ClusterConfig shapes a simulated cluster. The defaults mirror the
// paper's evaluation cluster (§7): 9 workers, one 4 GB memory media,
// one 64 GB SSD, three 133 GB HDDs per worker, 10 Gbps network,
// Table 2 media throughputs.
type ClusterConfig struct {
	NumWorkers  int
	NumRacks    int
	NetMBps     float64
	MemCapacity int64
	SSDCapacity int64
	HDDCapacity int64 // total per worker, split across NumHDDs
	NumHDDs     int

	MemWriteMBps, MemReadMBps float64
	SSDWriteMBps, SSDReadMBps float64
	HDDWriteMBps, HDDReadMBps float64

	Placement policy.PlacementPolicy
	Retrieval policy.RetrievalPolicy
	Seed      int64
}

// PaperClusterConfig returns the §7 evaluation cluster shape.
func PaperClusterConfig() ClusterConfig {
	const gb = int64(1) << 30
	return ClusterConfig{
		NumWorkers:   9,
		NumRacks:     3,
		NetMBps:      1250, // 10 Gbps
		MemCapacity:  4 * gb,
		SSDCapacity:  64 * gb,
		HDDCapacity:  400 * gb,
		NumHDDs:      3,
		MemWriteMBps: 1897.4, MemReadMBps: 3224.8,
		SSDWriteMBps: 340.6, SSDReadMBps: 419.5,
		HDDWriteMBps: 126.3, HDDReadMBps: 177.1,
		Seed: 1,
	}
}

// Cluster is a simulated OctopusFS deployment: nodes, media, a block
// registry, and the placement/retrieval policies under test.
type Cluster struct {
	cfg       ClusterConfig
	Engine    *Engine
	Nodes     []*NodeSim
	placement policy.PlacementPolicy
	retrieval policy.RetrievalPolicy
	rng       *rand.Rand

	mediaByID map[core.StorageID]*MediaSim
	files     map[string]*FileSim
	nextBlock uint64
}

// FileSim tracks a simulated file's blocks and replica locations.
type FileSim struct {
	Path      string
	RepVector core.ReplicationVector
	Blocks    []BlockSim
}

// BlockSim is one simulated block with its replica media.
type BlockSim struct {
	Block    core.Block
	Replicas []*MediaSim
}

// NewCluster builds a simulated cluster.
func NewCluster(cfg ClusterConfig) *Cluster {
	if cfg.Placement == nil {
		cfg.Placement = policy.NewMOOPPolicy(policy.DefaultMOOPConfig())
	}
	if cfg.Retrieval == nil {
		cfg.Retrieval = policy.NewOctopusRetrievalPolicy()
	}
	if cfg.NumRacks <= 0 {
		cfg.NumRacks = 1
	}
	if cfg.NumHDDs <= 0 {
		cfg.NumHDDs = 1
	}
	c := &Cluster{
		cfg:       cfg,
		Engine:    NewEngine(),
		placement: cfg.Placement,
		retrieval: cfg.Retrieval,
		rng:       rand.New(rand.NewSource(cfg.Seed)),
		mediaByID: make(map[core.StorageID]*MediaSim),
		files:     make(map[string]*FileSim),
		nextBlock: 1,
	}
	for i := 0; i < cfg.NumWorkers; i++ {
		node := &NodeSim{
			Name:    fmt.Sprintf("node%d", i+1),
			Rack:    fmt.Sprintf("/rack%d", i%cfg.NumRacks+1),
			NetMBps: cfg.NetMBps,
			NetIn:   &Resource{Name: fmt.Sprintf("node%d:net-in", i+1), Capacity: cfg.NetMBps},
			NetOut:  &Resource{Name: fmt.Sprintf("node%d:net-out", i+1), Capacity: cfg.NetMBps},
		}
		addMedia := func(kind string, idx int, tier core.StorageTier, capBytes int64, w, r float64) {
			if capBytes <= 0 {
				return
			}
			id := core.StorageID(fmt.Sprintf("%s:%s%d", node.Name, kind, idx))
			m := &MediaSim{
				ID: id, Tier: tier, Capacity: capBytes,
				WriteMBps: w, ReadMBps: r,
				Write: &Resource{Name: string(id) + ":w", Capacity: w},
				Read:  &Resource{Name: string(id) + ":r", Capacity: r},
				node:  node,
			}
			node.Media = append(node.Media, m)
			c.mediaByID[id] = m
		}
		addMedia("mem", 0, core.TierMemory, cfg.MemCapacity, cfg.MemWriteMBps, cfg.MemReadMBps)
		addMedia("ssd", 0, core.TierSSD, cfg.SSDCapacity, cfg.SSDWriteMBps, cfg.SSDReadMBps)
		for d := 0; d < cfg.NumHDDs; d++ {
			addMedia("hdd", d, core.TierHDD, cfg.HDDCapacity/int64(cfg.NumHDDs), cfg.HDDWriteMBps, cfg.HDDReadMBps)
		}
		c.Nodes = append(c.Nodes, node)
	}
	return c
}

// Node returns the i-th node (round-robin on overflow), mirroring task
// slots spread across the cluster.
func (c *Cluster) Node(i int) *NodeSim { return c.Nodes[i%len(c.Nodes)] }

// Rand exposes the cluster's seeded randomness for workload drivers.
func (c *Cluster) Rand() *rand.Rand { return c.rng }

// Snapshot builds the policy view of the current simulated state.
func (c *Cluster) Snapshot() *policy.Snapshot {
	s := &policy.Snapshot{Workers: make(map[core.WorkerID]policy.WorkerInfo, len(c.Nodes))}
	racks := map[string]struct{}{}
	for _, n := range c.Nodes {
		racks[n.Rack] = struct{}{}
		id := core.WorkerID(n.Name)
		s.Workers[id] = policy.WorkerInfo{
			ID:          id,
			Node:        n.Name,
			Rack:        n.Rack,
			NetThruMBps: n.NetMBps,
			Connections: n.Connections(),
		}
		for _, m := range n.Media {
			s.Media = append(s.Media, policy.Media{
				ID:            m.ID,
				Worker:        id,
				Node:          n.Name,
				Tier:          m.Tier,
				Rack:          n.Rack,
				Capacity:      m.Capacity,
				Remaining:     m.Remaining(),
				Connections:   m.Connections(),
				WriteThruMBps: m.WriteMBps,
				ReadThruMBps:  m.ReadMBps,
			})
		}
	}
	s.NumRacks = len(racks)
	policy.SortMediaStable(s.Media)
	return s
}

// PlaceBlock runs the placement policy for one block of blockSize
// bytes written from clientNode, charges the chosen media, and
// registers the block under path.
func (c *Cluster) PlaceBlock(path string, clientNode *NodeSim, rv core.ReplicationVector, blockSize int64) (BlockSim, error) {
	req := policy.PlacementRequest{
		Snapshot:  c.Snapshot(),
		RepVector: rv,
		BlockSize: blockSize,
		Rand:      c.rng,
	}
	if clientNode != nil {
		req.Client = topology.Location{Rack: clientNode.Rack, Node: clientNode.Name}
	}
	targets, err := c.placement.PlaceReplicas(req)
	if err != nil && len(targets) == 0 {
		return BlockSim{}, err
	}
	blk := BlockSim{Block: core.Block{ID: core.BlockID(c.nextBlock), GenStamp: 1, NumBytes: blockSize}}
	c.nextBlock++
	for _, t := range targets {
		m := c.mediaByID[t.ID]
		m.Used += blockSize
		blk.Replicas = append(blk.Replicas, m)
	}
	f, ok := c.files[path]
	if !ok {
		f = &FileSim{Path: path, RepVector: rv}
		c.files[path] = f
	}
	f.Blocks = append(f.Blocks, blk)
	return blk, nil
}

// File returns a simulated file's record.
func (c *Cluster) File(path string) (*FileSim, bool) {
	f, ok := c.files[path]
	return f, ok
}

// OrderReplicas runs the retrieval policy for a block read from
// clientNode and returns the replica media in read order.
func (c *Cluster) OrderReplicas(blk BlockSim, clientNode *NodeSim) []*MediaSim {
	replicas := make([]policy.Media, len(blk.Replicas))
	for i, m := range blk.Replicas {
		replicas[i] = policy.Media{
			ID:            m.ID,
			Worker:        core.WorkerID(m.node.Name),
			Node:          m.node.Name,
			Tier:          m.Tier,
			Rack:          m.node.Rack,
			Capacity:      m.Capacity,
			Remaining:     m.Remaining(),
			Connections:   m.Connections(),
			WriteThruMBps: m.WriteMBps,
			ReadThruMBps:  m.ReadMBps,
		}
	}
	req := policy.RetrievalRequest{
		Snapshot: c.Snapshot(),
		Replicas: replicas,
		Rand:     c.rng,
	}
	if clientNode != nil {
		req.Client = topology.Location{Rack: clientNode.Rack, Node: clientNode.Name}
	}
	ordered := c.retrieval.Order(req)
	out := make([]*MediaSim, len(ordered))
	for i, om := range ordered {
		out[i] = c.mediaByID[om.ID]
	}
	return out
}

// WriteResources assembles the resource chain of a pipelined block
// write from clientNode through the replica media in order (paper
// §3.1): each inter-node hop crosses the sender's NIC-out and the
// receiver's NIC-in, and each stage crosses its media's write
// bandwidth.
func WriteResources(clientNode *NodeSim, replicas []*MediaSim) []*Resource {
	var rs []*Resource
	prev := clientNode
	for _, m := range replicas {
		if prev != nil && prev != m.node {
			rs = append(rs, prev.NetOut, m.node.NetIn)
		} else if prev == nil {
			// Off-cluster client: only the receiver's NIC-in applies.
			rs = append(rs, m.node.NetIn)
		}
		rs = append(rs, m.Write)
		prev = m.node
	}
	return rs
}

// ReadResources assembles the resource chain of a block read from one
// replica media to clientNode (paper §4.1).
func ReadResources(clientNode *NodeSim, m *MediaSim) []*Resource {
	rs := []*Resource{m.Read}
	if clientNode != m.node {
		rs = append(rs, m.node.NetOut)
		if clientNode != nil {
			rs = append(rs, clientNode.NetIn)
		}
	}
	return rs
}

// TierUsage reports used and capacity bytes per tier.
func (c *Cluster) TierUsage() map[core.StorageTier][2]int64 {
	out := make(map[core.StorageTier][2]int64)
	for _, n := range c.Nodes {
		for _, m := range n.Media {
			u := out[m.Tier]
			u[0] += m.Used
			u[1] += m.Capacity
			out[m.Tier] = u
		}
	}
	return out
}

// Reset clears all stored data (between experiment phases) while
// keeping the cluster shape.
func (c *Cluster) Reset() {
	for _, n := range c.Nodes {
		for _, m := range n.Media {
			m.Used = 0
		}
	}
	c.files = make(map[string]*FileSim)
	c.nextBlock = 1
	c.Engine = NewEngine()
}

// Node returns the node hosting this media.
func (m *MediaSim) Node() *NodeSim { return m.node }

// RemoveFile forgets a file's registry entry. Capacity accounting is
// the caller's responsibility (see workloads.DeleteDataset).
func (c *Cluster) RemoveFile(path string) {
	delete(c.files, path)
}

// AddMemoryReplica places one replica of the block on a memory media
// chosen by the placement policy, modelling a replication-vector
// change that copies (move=false) or moves (move=true) data into the
// memory tier (paper §2.3). With move=true the slowest existing
// replica is dropped and its capacity released.
func (c *Cluster) AddMemoryReplica(blk *BlockSim, move bool) error {
	for _, m := range blk.Replicas {
		if m.Tier == core.TierMemory {
			return nil // already has a memory replica
		}
	}
	existing := make([]policy.Media, 0, len(blk.Replicas))
	for _, m := range blk.Replicas {
		existing = append(existing, policy.Media{
			ID: m.ID, Worker: core.WorkerID(m.node.Name), Node: m.node.Name,
			Tier: m.Tier, Rack: m.node.Rack,
			Capacity: m.Capacity, Remaining: m.Remaining(),
			Connections: m.Connections(), WriteThruMBps: m.WriteMBps, ReadThruMBps: m.ReadMBps,
		})
	}
	targets, err := c.placement.PlaceReplicas(policy.PlacementRequest{
		Snapshot:  c.Snapshot(),
		RepVector: core.NewReplicationVector(1, 0, 0, 0, 0),
		BlockSize: blk.Block.NumBytes,
		Existing:  existing,
		Rand:      c.rng,
	})
	if err != nil && len(targets) == 0 {
		return err
	}
	m := c.mediaByID[targets[0].ID]
	m.Used += blk.Block.NumBytes
	blk.Replicas = append(blk.Replicas, m)
	if move && len(blk.Replicas) > 1 {
		// Drop the slowest (highest-tier-number) non-memory replica.
		worst := -1
		for i, r := range blk.Replicas {
			if r.Tier == core.TierMemory {
				continue
			}
			if worst < 0 || r.Tier > blk.Replicas[worst].Tier {
				worst = i
			}
		}
		if worst >= 0 {
			victim := blk.Replicas[worst]
			victim.Used -= blk.Block.NumBytes
			if victim.Used < 0 {
				victim.Used = 0
			}
			blk.Replicas = append(blk.Replicas[:worst], blk.Replicas[worst+1:]...)
		}
	}
	return nil
}
