package sim

import (
	"testing"

	"repro/internal/core"
	"repro/internal/policy"
)

func testCluster() *Cluster {
	cfg := PaperClusterConfig()
	return NewCluster(cfg)
}

func TestClusterShapeMatchesPaper(t *testing.T) {
	c := testCluster()
	if len(c.Nodes) != 9 {
		t.Fatalf("nodes = %d, want 9", len(c.Nodes))
	}
	s := c.Snapshot()
	if s.NumRacks != 3 {
		t.Errorf("racks = %d, want 3", s.NumRacks)
	}
	if got := len(s.Media); got != 9*5 {
		t.Errorf("media = %d, want 45 (5 per node)", got)
	}
	if s.NumTiers() != 3 {
		t.Errorf("tiers = %d, want 3", s.NumTiers())
	}
	if got := s.MaxWriteThru(); got != 1897.4 {
		t.Errorf("max write thru = %v", got)
	}
}

func TestPlaceBlockChargesCapacityAndRegistersFile(t *testing.T) {
	c := testCluster()
	rv := core.NewReplicationVector(1, 1, 1, 0, 0)
	blk, err := c.PlaceBlock("/f", c.Node(0), rv, 128<<20)
	if err != nil {
		t.Fatalf("PlaceBlock: %v", err)
	}
	if len(blk.Replicas) != 3 {
		t.Fatalf("replicas = %d, want 3", len(blk.Replicas))
	}
	tiers := map[core.StorageTier]int{}
	for _, m := range blk.Replicas {
		tiers[m.Tier]++
		if m.Used != 128<<20 {
			t.Errorf("media %s used = %d, want charged block", m.ID, m.Used)
		}
	}
	if tiers[core.TierMemory] != 1 || tiers[core.TierSSD] != 1 || tiers[core.TierHDD] != 1 {
		t.Errorf("tiers = %v", tiers)
	}
	f, ok := c.File("/f")
	if !ok || len(f.Blocks) != 1 {
		t.Errorf("file registry: %+v ok=%v", f, ok)
	}
}

func TestPlaceBlockRunsOutOfSpace(t *testing.T) {
	cfg := PaperClusterConfig()
	cfg.MemCapacity = 1 << 20 // 1 MB memory per node
	c := NewCluster(cfg)
	// Pin to memory with blocks bigger than the media.
	_, err := c.PlaceBlock("/f", nil, core.NewReplicationVector(1, 0, 0, 0, 0), 2<<20)
	if err == nil {
		t.Error("oversized memory placement succeeded")
	}
}

func TestOrderReplicasPrefersMemory(t *testing.T) {
	c := testCluster()
	blk, err := c.PlaceBlock("/f", nil, core.NewReplicationVector(1, 1, 1, 0, 0), 64<<20)
	if err != nil {
		t.Fatal(err)
	}
	ordered := c.OrderReplicas(blk, c.Node(0))
	if ordered[0].Tier != core.TierMemory {
		t.Errorf("first replica tier = %v, want MEMORY", ordered[0].Tier)
	}
}

func TestWriteResourcesPipelineShape(t *testing.T) {
	c := testCluster()
	blk, err := c.PlaceBlock("/f", c.Node(0), core.NewReplicationVector(0, 0, 3, 0, 0), 64<<20)
	if err != nil {
		t.Fatal(err)
	}
	rs := WriteResources(c.Node(0), blk.Replicas)
	// 3 media write resources plus 2 NIC resources per inter-node hop.
	mediaCount, nicCount := 0, 0
	for _, r := range rs {
		switch {
		case r == blk.Replicas[0].Write || r == blk.Replicas[1].Write || r == blk.Replicas[2].Write:
			mediaCount++
		default:
			nicCount++
		}
	}
	if mediaCount != 3 {
		t.Errorf("media stages = %d, want 3", mediaCount)
	}
	if nicCount%2 != 0 || nicCount == 0 {
		t.Errorf("nic stages = %d, want even and positive", nicCount)
	}
}

func TestReadResourcesLocalVsRemote(t *testing.T) {
	c := testCluster()
	m := c.Nodes[0].Media[0]
	local := ReadResources(c.Nodes[0], m)
	if len(local) != 1 || local[0] != m.Read {
		t.Errorf("local read resources = %v, want just media read", local)
	}
	remote := ReadResources(c.Nodes[1], m)
	if len(remote) != 3 {
		t.Errorf("remote read resources = %d, want media+out+in", len(remote))
	}
	offCluster := ReadResources(nil, m)
	if len(offCluster) != 2 {
		t.Errorf("off-cluster read resources = %d, want media+out", len(offCluster))
	}
}

func TestSimulatedPipelineWriteBottleneck(t *testing.T) {
	// A single pipelined write with one HDD replica runs at the HDD
	// write rate (126.3 MB/s), regardless of the memory stage — the
	// paper's observation that mixed-tier writes are bottlenecked by
	// the slowest stage at low parallelism.
	c := testCluster()
	blk, err := c.PlaceBlock("/f", c.Node(0), core.NewReplicationVector(1, 1, 1, 0, 0), 0)
	if err != nil {
		t.Fatal(err)
	}
	const sizeMB = 1263 // 10x the HDD rate => expect ~10s
	c.Engine.StartFlow("w", sizeMB, WriteResources(c.Node(0), blk.Replicas), nil)
	elapsed, err := c.Engine.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(elapsed, 10, 0.01) {
		t.Errorf("pipeline write took %.3fs, want ~10s (HDD-bound)", elapsed)
	}
}

func TestTierUsageAndReset(t *testing.T) {
	c := testCluster()
	if _, err := c.PlaceBlock("/f", nil, core.NewReplicationVector(0, 0, 2, 0, 0), 1<<20); err != nil {
		t.Fatal(err)
	}
	usage := c.TierUsage()
	if usage[core.TierHDD][0] != 2<<20 {
		t.Errorf("hdd used = %d, want 2MB", usage[core.TierHDD][0])
	}
	c.Reset()
	usage = c.TierUsage()
	if usage[core.TierHDD][0] != 0 {
		t.Errorf("hdd used after reset = %d", usage[core.TierHDD][0])
	}
	if _, ok := c.File("/f"); ok {
		t.Error("file survived reset")
	}
}

func TestClusterWithBaselinePolicy(t *testing.T) {
	cfg := PaperClusterConfig()
	cfg.Placement = policy.NewHDFSPolicy()
	c := NewCluster(cfg)
	blk, err := c.PlaceBlock("/f", c.Node(0), core.ReplicationVectorFromFactor(3), 64<<20)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range blk.Replicas {
		if m.Tier != core.TierHDD {
			t.Errorf("HDFS baseline placed on %v", m.Tier)
		}
	}
}

// TestAggregateBandwidthScalesLinearly validates the paper's premise
// that "the total bandwidth is linear with the number of nodes" (§7.1)
// in the simulator: doubling the cluster doubles aggregate write
// throughput for a proportionally scaled workload.
func TestAggregateBandwidthScalesLinearly(t *testing.T) {
	aggregate := func(workers int) float64 {
		cfg := PaperClusterConfig()
		cfg.NumWorkers = workers
		c := NewCluster(cfg)
		// One writer per node, each writing 10 x 128MB blocks, all-HDD.
		done := 0
		for i := 0; i < workers; i++ {
			node := c.Node(i)
			remaining := 10
			var next func(e *Engine)
			next = func(e *Engine) {
				if remaining == 0 {
					return
				}
				remaining--
				blk, err := c.PlaceBlock("/f", node, core.NewReplicationVector(0, 0, 3, 0, 0), 128<<20)
				if err != nil {
					t.Fatal(err)
				}
				e.StartFlow("w", 128, WriteResources(node, blk.Replicas), func(e *Engine) {
					done++
					next(e)
				})
			}
			next(c.Engine)
		}
		elapsed, err := c.Engine.Run()
		if err != nil {
			t.Fatal(err)
		}
		return float64(done) * 128 / elapsed
	}
	small := aggregate(9)
	big := aggregate(18)
	ratio := big / small
	if ratio < 1.7 || ratio > 2.3 {
		t.Errorf("aggregate bandwidth ratio 18w/9w = %.2f, want ~2 (linear scaling)", ratio)
	}
}

// TestEngineByteConservation property-checks the event loop: the sum
// of simulated transfer times equals work/rate for isolated flows, and
// every started flow completes exactly once.
func TestEngineByteConservation(t *testing.T) {
	e := NewEngine()
	r1 := &Resource{Name: "a", Capacity: 50}
	r2 := &Resource{Name: "b", Capacity: 200}
	completions := map[string]int{}
	sizes := map[string]float64{"x": 100, "y": 400, "z": 50}
	e.StartFlow("x", sizes["x"], []*Resource{r1}, func(*Engine) { completions["x"]++ })
	e.StartFlow("y", sizes["y"], []*Resource{r2}, func(*Engine) { completions["y"]++ })
	e.StartFlow("z", sizes["z"], []*Resource{r1, r2}, func(*Engine) { completions["z"]++ })
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for name, n := range completions {
		if n != 1 {
			t.Errorf("flow %s completed %d times", name, n)
		}
	}
	if len(completions) != 3 {
		t.Errorf("only %d flows completed", len(completions))
	}
	if r1.Load() != 0 || r2.Load() != 0 {
		t.Errorf("resources still loaded after Run: %d, %d", r1.Load(), r2.Load())
	}
}
