package sim

import (
	"math"
	"testing"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSingleFlowSingleResource(t *testing.T) {
	e := NewEngine()
	r := &Resource{Name: "disk", Capacity: 100} // 100 MB/s
	done := false
	e.StartFlow("f", 500, []*Resource{r}, func(*Engine) { done = true })
	elapsed, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(elapsed, 5, 1e-9) {
		t.Errorf("elapsed = %v, want 5s (500MB at 100MB/s)", elapsed)
	}
	if !done {
		t.Error("completion callback not invoked")
	}
}

func TestFlowBottleneckedByslowestResource(t *testing.T) {
	e := NewEngine()
	fast := &Resource{Name: "mem", Capacity: 1000}
	slow := &Resource{Name: "hdd", Capacity: 100}
	e.StartFlow("f", 100, []*Resource{fast, slow}, nil)
	elapsed, _ := e.Run()
	if !almostEqual(elapsed, 1, 1e-9) {
		t.Errorf("elapsed = %v, want 1s (bottleneck 100MB/s)", elapsed)
	}
}

func TestEqualShareAmongConcurrentFlows(t *testing.T) {
	e := NewEngine()
	r := &Resource{Name: "disk", Capacity: 100}
	// Two equal flows sharing 100 MB/s: each runs at 50 => 2s for 100MB.
	e.StartFlow("a", 100, []*Resource{r}, nil)
	e.StartFlow("b", 100, []*Resource{r}, nil)
	elapsed, _ := e.Run()
	if !almostEqual(elapsed, 2, 1e-9) {
		t.Errorf("elapsed = %v, want 2s", elapsed)
	}
}

func TestShareRecomputedAfterCompletion(t *testing.T) {
	e := NewEngine()
	r := &Resource{Name: "disk", Capacity: 100}
	// a: 50MB, b: 100MB. Phase 1: both at 50MB/s until a finishes (1s,
	// b has 50MB left). Phase 2: b alone at 100MB/s (0.5s). Total 1.5s.
	var aDone, bDone float64
	e.StartFlow("a", 50, []*Resource{r}, func(e *Engine) { aDone = e.Now() })
	e.StartFlow("b", 100, []*Resource{r}, func(e *Engine) { bDone = e.Now() })
	elapsed, _ := e.Run()
	if !almostEqual(aDone, 1, 1e-6) {
		t.Errorf("a done at %v, want 1s", aDone)
	}
	if !almostEqual(bDone, 1.5, 1e-6) {
		t.Errorf("b done at %v, want 1.5s", bDone)
	}
	if !almostEqual(elapsed, 1.5, 1e-6) {
		t.Errorf("elapsed = %v, want 1.5s", elapsed)
	}
}

func TestCallbackChainsFlows(t *testing.T) {
	e := NewEngine()
	r := &Resource{Name: "disk", Capacity: 10}
	blocks := 0
	var writeNext func(e *Engine)
	writeNext = func(e *Engine) {
		if blocks >= 3 {
			return
		}
		blocks++
		e.StartFlow("blk", 10, []*Resource{r}, writeNext)
	}
	writeNext(e)
	elapsed, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if blocks != 3 {
		t.Errorf("wrote %d blocks, want 3", blocks)
	}
	if !almostEqual(elapsed, 3, 1e-9) {
		t.Errorf("elapsed = %v, want 3s (3 sequential 1s blocks)", elapsed)
	}
}

func TestStartDelay(t *testing.T) {
	e := NewEngine()
	fired := false
	e.StartDelay("compute", 2.5, func(*Engine) { fired = true })
	elapsed, _ := e.Run()
	if !almostEqual(elapsed, 2.5, 1e-9) || !fired {
		t.Errorf("elapsed = %v fired=%v", elapsed, fired)
	}
}

func TestZeroSizeFlowCompletesInstantly(t *testing.T) {
	e := NewEngine()
	r := &Resource{Name: "disk", Capacity: 10}
	done := false
	e.StartFlow("empty", 0, []*Resource{r}, func(*Engine) { done = true })
	elapsed, err := e.Run()
	if err != nil || !done || elapsed > 1e-9 {
		t.Errorf("elapsed=%v done=%v err=%v", elapsed, done, err)
	}
	if r.Load() != 0 {
		t.Errorf("resource still loaded: %d", r.Load())
	}
}

func TestStalledFlowReportsError(t *testing.T) {
	e := NewEngine()
	dead := &Resource{Name: "dead", Capacity: 0}
	e.StartFlow("f", 10, []*Resource{dead}, nil)
	if _, err := e.Run(); err == nil {
		t.Error("zero-capacity resource: Run returned nil error")
	}
}

func TestPipelineSharedNIC(t *testing.T) {
	// Two writers on the same node share its NIC-out: each flow also
	// crosses its own dedicated disk. NIC 100 MB/s, disks 100 MB/s:
	// NIC share 50 each => 2s for 100MB each.
	e := NewEngine()
	nic := &Resource{Name: "nic", Capacity: 100}
	d1 := &Resource{Name: "d1", Capacity: 100}
	d2 := &Resource{Name: "d2", Capacity: 100}
	e.StartFlow("w1", 100, []*Resource{nic, d1}, nil)
	e.StartFlow("w2", 100, []*Resource{nic, d2}, nil)
	elapsed, _ := e.Run()
	if !almostEqual(elapsed, 2, 1e-9) {
		t.Errorf("elapsed = %v, want 2s (NIC shared)", elapsed)
	}
}
