package worker

import (
	"errors"
	"fmt"
	"io"
	"net"
	"time"

	"repro/internal/core"
	"repro/internal/events"
	"repro/internal/heat"
	"repro/internal/rpc"
	"repro/internal/storage"
	"repro/internal/trace"
)

// serveData accepts and dispatches data-transfer connections.
func (w *Worker) serveData() {
	defer w.wg.Done()
	for {
		conn, err := w.ln.Accept()
		if err != nil {
			select {
			case <-w.done:
				return
			default:
				w.cfg.Logger.Warn("data accept failed", "err", err)
				continue
			}
		}
		w.wg.Add(1)
		go func() {
			defer w.wg.Done()
			w.handleConn(conn)
		}()
	}
}

func (w *Worker) handleConn(conn net.Conn) {
	defer conn.Close()
	w.netConns.Add(1)
	defer w.netConns.Add(-1)
	w.connMu.Lock()
	if w.closed.Load() {
		// Close already swept w.conns; a conn registered now would
		// never be severed and its handler would block Close forever.
		w.connMu.Unlock()
		return
	}
	w.conns[conn] = struct{}{}
	w.connMu.Unlock()
	defer func() {
		w.connMu.Lock()
		delete(w.conns, conn)
		w.connMu.Unlock()
	}()

	var op [1]byte
	if _, err := io.ReadFull(conn, op[:]); err != nil {
		return
	}
	switch op[0] {
	case rpc.OpWriteBlock:
		w.handleWriteBlock(conn)
	case rpc.OpReadBlock:
		w.handleReadBlock(conn)
	case rpc.OpReplicateBlock:
		w.handleReplicateBlock(conn)
	case rpc.OpTraceDump:
		w.handleTraceDump(conn)
	default:
		w.cfg.Logger.Warn("unknown data opcode", "op", op[0])
	}
}

// handleWriteBlock implements one stage of the Worker-to-Worker write
// pipeline (paper §3.1): store the incoming packet stream on the local
// media named by the pipeline head while forwarding it verbatim to the
// next stage, then combine the downstream ack with the local result.
func (w *Worker) handleWriteBlock(conn net.Conn) {
	var hdr rpc.WriteBlockHeader
	if err := rpc.ReadFrame(conn, &hdr); err != nil {
		w.cfg.Logger.Warn("bad write header", "err", err)
		return
	}
	start := time.Now()
	sp := w.tracer.Start(hdr.ReqID, hdr.SpanID, "worker.write")
	sp.Annotate("worker", string(w.id)).AnnotateInt("block", int64(hdr.Block.ID))
	tier := "UNKNOWN"
	var limiter *storage.RateLimiter
	if len(hdr.Pipeline) > 0 {
		if m, ok := w.media[hdr.Pipeline[0].Storage]; ok {
			tier = m.Tier().String()
			limiter = m.WriteLimit()
		}
	}
	waitBefore := limiterWait(limiter)
	ack := w.writeBlockPipeline(conn, hdr, sp)
	ack.Err = rpc.WithReqID(ack.Err, hdr.ReqID)
	sp.Annotate("tier", tier).AnnotateInt("bytes", ack.Stored)
	if d := limiterWait(limiter) - waitBefore; d > 0 {
		// Approximate under concurrent transfers on the same media:
		// the counter delta includes other streams' waits.
		sp.Annotate("throttle_wait", d.String())
	}
	if ack.Err != "" {
		sp.SetError(errors.New(ack.Err))
	}
	// End (and thus store) the span before acking: once the client
	// sees the ack, this stage's span is queryable.
	sp.End()
	if ack.Stored > 0 {
		w.heat.Touch(hdr.Block.ID, heat.Write, ack.Stored)
	}
	w.metrics.observeOp("write", hdr.ReqID, start, ack.Stored, tier, ack.Err != "")
	if err := rpc.WriteFrame(conn, ack); err != nil {
		w.cfg.Logger.Warn("write ack failed", "err", err)
	}
}

// limiterWait samples a throttle's cumulative wait time (0 for
// unthrottled media).
func limiterWait(l *storage.RateLimiter) time.Duration {
	if l == nil {
		return 0
	}
	_, d := l.Stats()
	return d
}

func (w *Worker) writeBlockPipeline(conn net.Conn, hdr rpc.WriteBlockHeader, sp *trace.ActiveSpan) rpc.WriteBlockAck {
	if len(hdr.Pipeline) == 0 {
		return rpc.WriteBlockAck{Err: rpc.EncodeError(fmt.Errorf("worker: empty pipeline: %w", core.ErrNotFound))}
	}
	media, ok := w.media[hdr.Pipeline[0].Storage]
	if !ok {
		return rpc.WriteBlockAck{Err: rpc.EncodeError(fmt.Errorf("worker: unknown media %s: %w", hdr.Pipeline[0].Storage, core.ErrNotFound))}
	}

	// Open the downstream stage, if any. The forwarded header carries
	// this stage's span ID, chaining the pipeline's spans client →
	// worker → downstream worker.
	var downstream *rpc.BlockWriter
	if len(hdr.Pipeline) > 1 {
		var err error
		downstream, err = rpc.OpenBlockWriterSpan(hdr.Block, hdr.Pipeline[1:], hdr.Client, hdr.ReqID, sp.ID())
		if err != nil {
			return rpc.WriteBlockAck{Err: rpc.EncodeError(err)}
		}
	}

	// Feed the verified packet stream both into the local media and
	// down the pipeline.
	src := rpc.NewPacketReader(conn)
	pr, pw := io.Pipe()
	putDone := make(chan error, 1)
	putStored := make(chan int64, 1)
	go func() {
		n, err := media.Put(hdr.Block, pr)
		// Drain on failure so the producer never blocks forever.
		if err != nil {
			io.Copy(io.Discard, pr)
		}
		putStored <- n
		putDone <- err
	}()

	var streamErr error
	buf := make([]byte, rpc.MaxPacketSize)
	for {
		n, err := src.Read(buf)
		if n > 0 {
			if _, werr := pw.Write(buf[:n]); werr != nil && streamErr == nil {
				streamErr = werr
			}
			if downstream != nil {
				if _, werr := downstream.Write(buf[:n]); werr != nil && streamErr == nil {
					streamErr = werr
				}
			}
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			streamErr = err
			break
		}
	}
	pw.Close()
	putErr := <-putDone
	stored := <-putStored

	var downErr error
	if downstream != nil {
		downErr = downstream.Commit()
	}

	block := hdr.Block
	block.NumBytes = stored
	switch {
	case streamErr != nil:
		media.Delete(block) // drop the partial replica
		return rpc.WriteBlockAck{Err: rpc.EncodeError(fmt.Errorf("worker: pipeline stream: %w", streamErr))}
	case putErr != nil:
		return rpc.WriteBlockAck{Err: rpc.EncodeError(putErr), Stored: 0}
	case downErr != nil:
		// Local copy is good; report the downstream failure so the
		// client can decide. The local replica is kept and will be
		// reported to the master.
		w.notifyReceived(hdr.Pipeline[0].Storage, block)
		return rpc.WriteBlockAck{Err: rpc.EncodeError(fmt.Errorf("worker: downstream: %w", downErr)), Stored: stored}
	default:
		w.notifyReceived(hdr.Pipeline[0].Storage, block)
		return rpc.WriteBlockAck{Stored: stored}
	}
}

// handleReadBlock streams a block range to a reader (paper §4.1).
func (w *Worker) handleReadBlock(conn net.Conn) {
	var hdr rpc.ReadBlockHeader
	if err := rpc.ReadFrame(conn, &hdr); err != nil {
		w.cfg.Logger.Warn("bad read header", "err", err)
		return
	}
	start := time.Now()
	sp := w.tracer.Start(hdr.ReqID, hdr.SpanID, "worker.read")
	sp.Annotate("worker", string(w.id)).AnnotateInt("block", int64(hdr.Block.ID))
	var limiter *storage.RateLimiter
	if m, ok := w.media[hdr.Storage]; ok {
		limiter = m.ReadLimit()
	}
	waitBefore := limiterWait(limiter)
	served, tier, err := w.readBlock(conn, hdr)
	sp.Annotate("tier", tier).AnnotateInt("bytes", served)
	if d := limiterWait(limiter) - waitBefore; d > 0 {
		sp.Annotate("throttle_wait", d.String())
	}
	sp.SetError(err)
	sp.End()
	if err == nil {
		w.heat.Touch(hdr.Block.ID, heat.Read, served)
	}
	w.metrics.observeOp("read", hdr.ReqID, start, served, tier, err != nil)
}

// readBlock serves one OpReadBlock exchange; errors that can still be
// delivered go back in the response frame with the request ID attached.
func (w *Worker) readBlock(conn net.Conn, hdr rpc.ReadBlockHeader) (served int64, tier string, err error) {
	tier = "UNKNOWN"
	refuse := func(e error) (int64, string, error) {
		rpc.WriteFrame(conn, rpc.ReadBlockResponse{Err: rpc.WithReqID(rpc.EncodeError(e), hdr.ReqID)})
		return 0, tier, e
	}
	media, ok := w.media[hdr.Storage]
	if !ok {
		return refuse(fmt.Errorf("worker: unknown media %s: %w", hdr.Storage, core.ErrNotFound))
	}
	tier = media.Tier().String()
	// Scrub the replica before serving so disk corruption surfaces as
	// an explicit error the client can report (paper §5 repairs it).
	if err := media.Verify(hdr.Block); err != nil {
		w.journal.PublishTraced(events.Error, "block_corrupt", hdr.ReqID,
			"replica failed checksum scrub; read refused",
			"block", fmt.Sprintf("%d", hdr.Block.ID),
			"storage", string(hdr.Storage))
		return refuse(err)
	}
	rc, err := media.Open(hdr.Block)
	if err != nil {
		return refuse(err)
	}
	defer rc.Close()

	if hdr.Offset > 0 {
		if _, err := io.CopyN(io.Discard, rc, hdr.Offset); err != nil {
			return refuse(fmt.Errorf("worker: seeking to %d: %w", hdr.Offset, err))
		}
	}
	length := hdr.Length
	if length < 0 {
		length = hdr.Block.NumBytes - hdr.Offset
	}
	if length < 0 {
		length = 0
	}
	if err := rpc.WriteFrame(conn, rpc.ReadBlockResponse{Length: length}); err != nil {
		return 0, tier, err
	}
	pw := rpc.NewPacketWriter(conn)
	n, err := io.CopyN(pw, rc, length)
	if err != nil {
		w.cfg.Logger.Warn("block read stream failed", "block", hdr.Block.ID, "req", hdr.ReqID, "err", err)
		return n, tier, err // connection dies; the client fails over
	}
	if err := pw.Close(); err != nil {
		w.cfg.Logger.Warn("block read close failed", "err", err)
		return n, tier, err
	}
	return n, tier, nil
}

// handleReplicateBlock lets a peer push a replication order directly
// over the data port (the master normally uses heartbeat commands
// instead).
func (w *Worker) handleReplicateBlock(conn net.Conn) {
	var hdr rpc.ReplicateBlockHeader
	if err := rpc.ReadFrame(conn, &hdr); err != nil {
		return
	}
	reqID := hdr.ReqID
	if reqID == "" {
		reqID = rpc.NewRequestID()
	}
	start := time.Now()
	sp := w.tracer.Start(reqID, hdr.SpanID, "worker.replicate")
	sp.Annotate("worker", string(w.id)).AnnotateInt("block", int64(hdr.Block.ID))
	n, tier, err := w.replicate(reqID, sp, hdr.Block, hdr.Target, hdr.Sources)
	sp.Annotate("tier", tier).AnnotateInt("bytes", n)
	sp.SetError(err)
	sp.End()
	if err == nil {
		w.heat.Touch(hdr.Block.ID, heat.Write, n)
	}
	w.metrics.observeOp("replicate", reqID, start, n, tier, err != nil)
	rpc.WriteFrame(conn, rpc.ReplicateBlockAck{Err: rpc.WithReqID(rpc.EncodeError(err), reqID)})
}

// handleTraceDump serves the worker's retained spans of one trace to
// the master's assembly fan-out.
func (w *Worker) handleTraceDump(conn net.Conn) {
	var hdr rpc.TraceDumpHeader
	if err := rpc.ReadFrame(conn, &hdr); err != nil {
		return
	}
	if err := rpc.WriteFrame(conn, rpc.TraceDumpResponse{Spans: w.traces.Get(hdr.TraceID)}); err != nil {
		w.cfg.Logger.Warn("trace dump failed", "trace", hdr.TraceID, "err", err)
	}
}

// replicate copies a block from the best available source replica onto
// local media (paper §5: the hosting worker uses the retrieval policy's
// source ordering for copying from the most efficient location). It
// returns the bytes stored and the target media's tier label. sp is
// the caller's replication span; source reads carry its ID so the
// serving worker's read span parents under it.
func (w *Worker) replicate(reqID string, sp *trace.ActiveSpan, block core.Block, target core.StorageID, sources []core.BlockLocation) (int64, string, error) {
	media, ok := w.media[target]
	if !ok {
		return 0, "UNKNOWN", fmt.Errorf("worker: unknown media %s: %w", target, core.ErrNotFound)
	}
	tier := media.Tier().String()
	if media.Has(block) {
		w.notifyReceived(target, block)
		return 0, tier, nil
	}
	var lastErr error
	for _, src := range sources {
		if src.Worker == w.id && src.Storage != target {
			// Local cross-media copy: read directly.
			if local, ok := w.media[src.Storage]; ok {
				rc, err := local.Open(block)
				if err != nil {
					lastErr = err
					continue
				}
				n, err := media.Put(block, rc)
				rc.Close()
				if err != nil {
					lastErr = err
					continue
				}
				w.notifyReceived(target, block)
				return n, tier, nil
			}
		}
		rc, _, err := rpc.OpenBlockReaderSpan(src.Address, block, src.Storage, 0, -1, reqID, sp.ID())
		if err != nil {
			lastErr = err
			continue
		}
		n, err := media.Put(block, rc)
		rc.Close()
		if err != nil {
			lastErr = err
			continue
		}
		w.notifyReceived(target, block)
		return n, tier, nil
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("worker: no replica source for %s: %w", block.ID, core.ErrNotFound)
	}
	return 0, tier, lastErr
}
