package worker

import (
	"errors"
	"fmt"
	"io"
	"net"
	"time"

	"repro/internal/bufpool"
	"repro/internal/core"
	"repro/internal/events"
	"repro/internal/heat"
	"repro/internal/rpc"
	"repro/internal/storage"
	"repro/internal/trace"
	"repro/internal/xfer"
)

// serveData accepts and dispatches data-transfer connections.
func (w *Worker) serveData() {
	defer w.wg.Done()
	for {
		conn, err := w.ln.Accept()
		if err != nil {
			select {
			case <-w.done:
				return
			default:
				w.cfg.Logger.Warn("data accept failed", "err", err)
				continue
			}
		}
		w.wg.Add(1)
		go func() {
			defer w.wg.Done()
			w.handleConn(conn)
		}()
	}
}

func (w *Worker) handleConn(conn net.Conn) {
	defer conn.Close()
	w.netConns.Add(1)
	defer w.netConns.Add(-1)
	w.connMu.Lock()
	if w.closed.Load() {
		// Close already swept w.conns; a conn registered now would
		// never be severed and its handler would block Close forever.
		w.connMu.Unlock()
		return
	}
	w.conns[conn] = struct{}{}
	w.connMu.Unlock()
	defer func() {
		w.connMu.Lock()
		delete(w.conns, conn)
		w.connMu.Unlock()
	}()

	// Persistent connections: after a clean exchange (request stream
	// fully consumed, response fully written) the same connection
	// carries the next opcode, so a pooling client dials once per
	// worker instead of once per block. A handler reports whether the
	// exchange left the connection clean; anything ambiguous —
	// truncated stream, failed response write — drops it.
	//
	// The accepted side of the handshake bound: a dialler that never
	// sends its opcode and header must not pin a handler goroutine
	// (and a conns-map slot) forever. Between exchanges the much
	// longer idle timeout applies; the client pool's idle cap is kept
	// below it, so the client side almost always closes first.
	// Handlers lift the deadline once the header frame is in
	// (endHandshake), after which the packet stream governs its own
	// pacing.
	for first := true; ; first = false {
		wait := dataIdleTimeout
		if first {
			wait = rpc.HandshakeTimeout()
		}
		if wait > 0 {
			conn.SetReadDeadline(time.Now().Add(wait))
		} else {
			conn.SetReadDeadline(time.Time{})
		}
		var op [1]byte
		if _, err := io.ReadFull(conn, op[:]); err != nil {
			return // idle close, peer gone, or garbage: drop the conn
		}
		// A new exchange began: its header must arrive promptly.
		if ht := rpc.HandshakeTimeout(); ht > 0 {
			conn.SetReadDeadline(time.Now().Add(ht))
		} else {
			conn.SetReadDeadline(time.Time{})
		}
		keep := false
		switch op[0] {
		case rpc.OpWriteBlock:
			keep = w.handleWriteBlock(conn)
		case rpc.OpReadBlock:
			keep = w.handleReadBlock(conn)
		case rpc.OpReplicateBlock:
			keep = w.handleReplicateBlock(conn)
		case rpc.OpTraceDump:
			keep = w.handleTraceDump(conn)
		case rpc.OpTransferDump:
			keep = w.handleTransferDump(conn)
		default:
			w.cfg.Logger.Warn("unknown data opcode", "op", op[0])
		}
		if !keep {
			return
		}
	}
}

// dataIdleTimeout is how long an accepted data connection may sit
// between exchanges before the worker closes it. The client pool's
// idle age (DefaultDataPoolIdle) stays well below it, so pooled conns
// retire client-side first and the stale-conn race window is narrow.
const dataIdleTimeout = 2 * time.Minute

// respFrame returns the frame writer matching the requester's format:
// a legacy gob request gets gob responses, so old and new daemons
// interoperate in either direction.
func respFrame(legacy bool) func(io.Writer, any) error {
	if legacy {
		return rpc.WriteFrameLegacy
	}
	return rpc.WriteFrame
}

// endHandshake lifts the accept-side handshake deadline armed in
// handleConn, once the header frame has been decoded.
func endHandshake(conn net.Conn) {
	conn.SetReadDeadline(time.Time{})
}

// timedWriter accumulates time spent inside Write into *ns.
type timedWriter struct {
	w  io.Writer
	ns *int64
}

func (t *timedWriter) Write(p []byte) (int, error) {
	start := time.Now()
	n, err := t.w.Write(p)
	*t.ns += time.Since(start).Nanoseconds()
	return n, err
}

// handleWriteBlock implements one stage of the Worker-to-Worker write
// pipeline (paper §3.1): store the incoming packet stream on the local
// media named by the pipeline head while forwarding it verbatim to the
// next stage, then combine the downstream ack with the local result.
// It reports whether the connection is clean for another exchange:
// the upstream stream fully drained and the ack delivered.
func (w *Worker) handleWriteBlock(conn net.Conn) (keep bool) {
	start := time.Now()
	var hdr rpc.WriteBlockHeader
	legacy, err := rpc.ReadFrameEx(conn, &hdr)
	if err != nil {
		w.cfg.Logger.Warn("bad write header", "err", err)
		return false
	}
	endHandshake(conn)
	sp := w.tracer.Start(hdr.ReqID, hdr.SpanID, "worker.write")
	sp.Annotate("worker", string(w.id)).AnnotateInt("block", int64(hdr.Block.ID))
	rec := xfer.Record{
		Op:             "write",
		Source:         "worker:" + string(w.id),
		Block:          uint64(hdr.Block.ID),
		TraceID:        hdr.ReqID,
		SpanID:         sp.ID(),
		Peer:           conn.RemoteAddr().String(),
		HeaderDecodeNs: time.Since(start).Nanoseconds(),
	}
	tier := "UNKNOWN"
	if len(hdr.Pipeline) > 0 {
		if m, ok := w.media[hdr.Pipeline[0].Storage]; ok {
			tier = m.Tier().String()
		}
	}
	ack, streamDone := w.writeBlockPipeline(conn, hdr, sp, &rec)
	ack.Err = rpc.WithReqID(ack.Err, hdr.ReqID)
	sp.Annotate("tier", tier).AnnotateInt("bytes", ack.Stored)
	rec.Tier = tier
	rec.Bytes = ack.Stored
	rec.Result = "ok"
	if ack.Err != "" {
		rec.Result = ack.Err
		sp.SetError(errors.New(ack.Err))
	}
	annotatePhases(sp, &rec)
	// End (and thus store) the span before acking: once the client
	// sees the ack, this stage's span is queryable.
	sp.End()
	if ack.Stored > 0 {
		w.heat.Touch(hdr.Block.ID, heat.Write, ack.Stored)
	}
	w.metrics.observeOp("write", hdr.ReqID, start, ack.Stored, tier, ack.Err != "")
	w.metrics.observeDisk(tier, "write", rec.DiskNs)
	ackErr := respFrame(legacy)(conn, ack)
	if ackErr != nil {
		w.cfg.Logger.Warn("write ack failed", "err", ackErr)
	}
	rec.TotalNs = time.Since(start).Nanoseconds()
	w.xfers.Append(rec)
	return streamDone && ackErr == nil
}

// annotatePhases copies a transfer record's non-zero phase timings
// onto its span, so `octopus-cli trace` shows where the leg stalled.
func annotatePhases(sp *trace.ActiveSpan, rec *xfer.Record) {
	phase := func(name string, v int64) {
		if v > 0 {
			sp.AnnotateInt(name, v)
		}
	}
	phase("dial_ns", rec.DialNs)
	phase("header_encode_ns", rec.HeaderEncodeNs)
	phase("header_decode_ns", rec.HeaderDecodeNs)
	phase("throttle_wait_ns", rec.ThrottleWaitNs)
	phase("disk_ns", rec.DiskNs)
	phase("net_ns", rec.NetNs)
	phase("forward_ns", rec.ForwardNs)
	phase("ack_wait_ns", rec.AckWaitNs)
	phase("stall_ns", rec.StallNs)
	phase("alloc_bytes", rec.AllocBytes)
	if rec.PoolHit {
		sp.AnnotateInt("pool_hit", 1)
	}
}

// writeBlockPipeline runs the body of one OpWriteBlock exchange. The
// second result reports whether the upstream packet stream was fully
// consumed (end marker seen), i.e. whether the connection holds no
// residual request bytes.
func (w *Worker) writeBlockPipeline(conn net.Conn, hdr rpc.WriteBlockHeader, sp *trace.ActiveSpan, rec *xfer.Record) (rpc.WriteBlockAck, bool) {
	if len(hdr.Pipeline) == 0 {
		return rpc.WriteBlockAck{Err: rpc.EncodeError(fmt.Errorf("worker: empty pipeline: %w", core.ErrNotFound))}, false
	}
	media, ok := w.media[hdr.Pipeline[0].Storage]
	if !ok {
		return rpc.WriteBlockAck{Err: rpc.EncodeError(fmt.Errorf("worker: unknown media %s: %w", hdr.Pipeline[0].Storage, core.ErrNotFound))}, false
	}

	// Open the downstream stage, if any. The forwarded header carries
	// this stage's span ID, chaining the pipeline's spans client →
	// worker → downstream worker.
	var downstream *rpc.BlockWriter
	if len(hdr.Pipeline) > 1 {
		var err error
		downstream, err = rpc.OpenBlockWriterSpan(hdr.Block, hdr.Pipeline[1:], hdr.Client, hdr.ReqID, sp.ID())
		if err != nil {
			return rpc.WriteBlockAck{Err: rpc.EncodeError(err)}, false
		}
	}

	// Feed the verified packet stream both into the local media and
	// down the pipeline. The phase split is measured serially on this
	// goroutine so it can never sum past the wall time: netNs is time
	// blocked reading the upstream socket, pipeNs is time blocked on
	// the local store (pipe backpressure plus the final completion
	// wait), and the downstream writer accumulates its own forward
	// and ack phases.
	src := rpc.NewPacketReader(conn)
	defer src.Release()
	pr, pw := io.Pipe()
	putDone := make(chan error, 1)
	putStored := make(chan int64, 1)
	var iost storage.IOStats
	go func() {
		n, err := media.PutStats(hdr.Block, pr, &iost)
		// Drain on failure so the producer never blocks forever.
		if err != nil {
			io.Copy(io.Discard, pr)
		}
		putStored <- n
		putDone <- err
	}()

	var streamErr error
	var netNs, pipeNs int64
	buf, fresh := bufpool.Get(rpc.MaxPacketSize)
	defer bufpool.Put(buf)
	var bufAlloc int64
	if fresh {
		bufAlloc = int64(len(buf))
	}
	streamDone := false
	for {
		rs := time.Now()
		n, err := src.Read(buf)
		netNs += time.Since(rs).Nanoseconds()
		if n > 0 {
			ps := time.Now()
			_, werr := pw.Write(buf[:n])
			pipeNs += time.Since(ps).Nanoseconds()
			if werr != nil && streamErr == nil {
				streamErr = werr
			}
			if downstream != nil {
				if _, werr := downstream.Write(buf[:n]); werr != nil && streamErr == nil {
					streamErr = werr
				}
			}
		}
		if err == io.EOF {
			streamDone = true // end marker consumed: the conn is drained
			break
		}
		if err != nil {
			streamErr = err
			break
		}
	}
	ps := time.Now()
	pw.Close()
	putErr := <-putDone
	stored := <-putStored
	pipeNs += time.Since(ps).Nanoseconds()

	var downErr error
	if downstream != nil {
		downErr = downstream.Commit()
	}

	// The store goroutine overlaps with the socket reads, so only the
	// backpressure this goroutine actually felt (pipeNs) is on the
	// critical path. The limiter sleep is exact per stream; clip it to
	// the visible stall and attribute the rest of the stall to the
	// device.
	rec.NetNs = netNs
	throttle := iost.ThrottleWaitNs
	if throttle > pipeNs {
		throttle = pipeNs
	}
	rec.ThrottleWaitNs = throttle
	rec.DiskNs = pipeNs - throttle
	rec.AllocBytes = src.AllocBytes() + bufAlloc
	if downstream != nil {
		dial, hdrEnc, fwd, ackWait := downstream.Phases()
		rec.DialNs, rec.HeaderEncodeNs, rec.ForwardNs, rec.AckWaitNs = dial, hdrEnc, fwd, ackWait
		rec.AllocBytes += downstream.AllocBytes()
		rec.PoolHit = downstream.PoolHit()
	}

	block := hdr.Block
	block.NumBytes = stored
	switch {
	case streamErr != nil:
		media.Delete(block) // drop the partial replica
		return rpc.WriteBlockAck{Err: rpc.EncodeError(fmt.Errorf("worker: pipeline stream: %w", streamErr))}, streamDone
	case putErr != nil:
		return rpc.WriteBlockAck{Err: rpc.EncodeError(putErr), Stored: 0}, streamDone
	case downErr != nil:
		// Local copy is good; report the downstream failure so the
		// client can decide. The local replica is kept and will be
		// reported to the master.
		w.notifyReceived(hdr.Pipeline[0].Storage, block)
		return rpc.WriteBlockAck{Err: rpc.EncodeError(fmt.Errorf("worker: downstream: %w", downErr)), Stored: stored}, streamDone
	default:
		w.notifyReceived(hdr.Pipeline[0].Storage, block)
		return rpc.WriteBlockAck{Stored: stored}, streamDone
	}
}

// handleReadBlock streams a block range to a reader (paper §4.1). It
// reports whether the connection is clean for another exchange: the
// refusal or the full packet stream was delivered without error.
func (w *Worker) handleReadBlock(conn net.Conn) (keep bool) {
	start := time.Now()
	var hdr rpc.ReadBlockHeader
	legacy, err := rpc.ReadFrameEx(conn, &hdr)
	if err != nil {
		w.cfg.Logger.Warn("bad read header", "err", err)
		return false
	}
	endHandshake(conn)
	sp := w.tracer.Start(hdr.ReqID, hdr.SpanID, "worker.read")
	sp.Annotate("worker", string(w.id)).AnnotateInt("block", int64(hdr.Block.ID))
	rec := xfer.Record{
		Op:             "read",
		Source:         "worker:" + string(w.id),
		Block:          uint64(hdr.Block.ID),
		TraceID:        hdr.ReqID,
		SpanID:         sp.ID(),
		Peer:           conn.RemoteAddr().String(),
		HeaderDecodeNs: time.Since(start).Nanoseconds(),
	}
	served, tier, keep, err := w.readBlock(conn, hdr, legacy, &rec)
	sp.Annotate("tier", tier).AnnotateInt("bytes", served)
	rec.Tier = tier
	rec.Bytes = served
	rec.Result = "ok"
	if err != nil {
		rec.Result = err.Error()
	}
	annotatePhases(sp, &rec)
	sp.SetError(err)
	sp.End()
	if err == nil {
		w.heat.Touch(hdr.Block.ID, heat.Read, served)
	}
	w.metrics.observeOp("read", hdr.ReqID, start, served, tier, err != nil)
	w.metrics.observeDisk(tier, "read", rec.DiskNs)
	rec.TotalNs = time.Since(start).Nanoseconds()
	w.xfers.Append(rec)
	return keep
}

// readBlock serves one OpReadBlock exchange; errors that can still be
// delivered go back in the response frame with the request ID attached.
// The record receives the serve's phase split: device and throttle
// time from the media stream, socket time from a timed writer around
// the response frame and packet stream. keep reports whether the
// response (refusal or full stream) was delivered cleanly.
func (w *Worker) readBlock(conn net.Conn, hdr rpc.ReadBlockHeader, legacy bool, rec *xfer.Record) (served int64, tier string, keep bool, err error) {
	writeResp := respFrame(legacy)
	tier = "UNKNOWN"
	refuse := func(e error) (int64, string, bool, error) {
		// A delivered refusal leaves the conn clean: the requester got
		// its answer and nothing is mid-stream.
		werr := writeResp(conn, rpc.ReadBlockResponse{Err: rpc.WithReqID(rpc.EncodeError(e), hdr.ReqID)})
		return 0, tier, werr == nil, e
	}
	media, ok := w.media[hdr.Storage]
	if !ok {
		return refuse(fmt.Errorf("worker: unknown media %s: %w", hdr.Storage, core.ErrNotFound))
	}
	tier = media.Tier().String()
	// Scrub the replica before serving so disk corruption surfaces as
	// an explicit error the client can report (paper §5 repairs it).
	if err := media.Verify(hdr.Block); err != nil {
		w.journal.PublishTraced(events.Error, "block_corrupt", hdr.ReqID,
			"replica failed checksum scrub; read refused",
			"block", fmt.Sprintf("%d", hdr.Block.ID),
			"storage", string(hdr.Storage))
		return refuse(err)
	}
	var iost storage.IOStats
	rc, err := media.OpenRangeStats(hdr.Block, hdr.Offset, &iost)
	if err != nil {
		return refuse(err)
	}
	defer func() {
		rc.Close()
		rec.DiskNs = iost.DeviceNs
		rec.ThrottleWaitNs = iost.ThrottleWaitNs
	}()

	length := hdr.Length
	if length < 0 {
		length = hdr.Block.NumBytes - hdr.Offset
	}
	if length < 0 {
		length = 0
	}
	tw := &timedWriter{w: conn, ns: &rec.NetNs}
	if err := writeResp(tw, rpc.ReadBlockResponse{Length: length}); err != nil {
		return 0, tier, false, err
	}
	pw := rpc.NewPacketWriter(tw)
	defer pw.Release()
	n, err := io.CopyN(pw, rc, length)
	rec.AllocBytes = pw.AllocBytes()
	if err != nil {
		w.cfg.Logger.Warn("block read stream failed", "block", hdr.Block.ID, "req", hdr.ReqID, "err", err)
		return n, tier, false, err // connection dies; the client fails over
	}
	if err := pw.Close(); err != nil {
		w.cfg.Logger.Warn("block read close failed", "err", err)
		return n, tier, false, err
	}
	return n, tier, true, nil
}

// handleReplicateBlock lets a peer push a replication order directly
// over the data port (the master normally uses heartbeat commands
// instead).
func (w *Worker) handleReplicateBlock(conn net.Conn) (keep bool) {
	start := time.Now()
	var hdr rpc.ReplicateBlockHeader
	legacy, err := rpc.ReadFrameEx(conn, &hdr)
	if err != nil {
		return false
	}
	endHandshake(conn)
	reqID := hdr.ReqID
	if reqID == "" {
		reqID = rpc.NewRequestID()
	}
	sp := w.tracer.Start(reqID, hdr.SpanID, "worker.replicate")
	sp.Annotate("worker", string(w.id)).AnnotateInt("block", int64(hdr.Block.ID))
	rec := xfer.Record{
		Op:             "replicate",
		Source:         "worker:" + string(w.id),
		Block:          uint64(hdr.Block.ID),
		TraceID:        reqID,
		SpanID:         sp.ID(),
		HeaderDecodeNs: time.Since(start).Nanoseconds(),
	}
	n, tier, err := w.replicate(reqID, sp, hdr.Block, hdr.Target, hdr.Sources, &rec)
	sp.Annotate("tier", tier).AnnotateInt("bytes", n)
	rec.Tier = tier
	rec.Bytes = n
	rec.Result = "ok"
	if err != nil {
		rec.Result = err.Error()
	}
	annotatePhases(sp, &rec)
	sp.SetError(err)
	sp.End()
	if err == nil {
		w.heat.Touch(hdr.Block.ID, heat.Write, n)
	}
	w.metrics.observeOp("replicate", reqID, start, n, tier, err != nil)
	w.metrics.observeDisk(tier, "replicate", rec.DiskNs)
	ackErr := respFrame(legacy)(conn, rpc.ReplicateBlockAck{Err: rpc.WithReqID(rpc.EncodeError(err), reqID)})
	rec.TotalNs = time.Since(start).Nanoseconds()
	w.xfers.Append(rec)
	return ackErr == nil
}

// handleTraceDump serves the worker's retained spans of one trace to
// the master's assembly fan-out.
func (w *Worker) handleTraceDump(conn net.Conn) (keep bool) {
	var hdr rpc.TraceDumpHeader
	legacy, err := rpc.ReadFrameEx(conn, &hdr)
	if err != nil {
		return false
	}
	endHandshake(conn)
	if err := respFrame(legacy)(conn, rpc.TraceDumpResponse{Spans: w.traces.Get(hdr.TraceID)}); err != nil {
		w.cfg.Logger.Warn("trace dump failed", "trace", hdr.TraceID, "err", err)
		return false
	}
	return true
}

// transferDumpMaxPage caps one OpTransferDump page so the response
// stays well under the control-frame size limit; callers page with
// Since = Page.Next.
const transferDumpMaxPage = 512

// handleTransferDump serves one page of the worker's transfer flight
// recorder to Master.GetTransfers' fan-out.
func (w *Worker) handleTransferDump(conn net.Conn) (keep bool) {
	var hdr rpc.TransferDumpHeader
	legacy, err := rpc.ReadFrameEx(conn, &hdr)
	if err != nil {
		return false
	}
	endHandshake(conn)
	limit := hdr.Limit
	if limit <= 0 || limit > transferDumpMaxPage {
		limit = transferDumpMaxPage
	}
	resp := rpc.TransferDumpResponse{Page: w.xfers.Since(hdr.Since, hdr.Op, limit), Counts: w.xfers.Counts()}
	if resp.Page.Entries == nil {
		resp.Page.Entries = []xfer.Record{}
	}
	if err := respFrame(legacy)(conn, resp); err != nil {
		w.cfg.Logger.Warn("transfer dump failed", "err", err)
		return false
	}
	return true
}

// replicate copies a block from the best available source replica onto
// local media (paper §5: the hosting worker uses the retrieval policy's
// source ordering for copying from the most efficient location). It
// returns the bytes stored and the target media's tier label. sp is
// the caller's replication span; source reads carry its ID so the
// serving worker's read span parents under it. rec accumulates the
// winning attempt's phase timings.
func (w *Worker) replicate(reqID string, sp *trace.ActiveSpan, block core.Block, target core.StorageID, sources []core.BlockLocation, rec *xfer.Record) (int64, string, error) {
	media, ok := w.media[target]
	if !ok {
		return 0, "UNKNOWN", fmt.Errorf("worker: unknown media %s: %w", target, core.ErrNotFound)
	}
	tier := media.Tier().String()
	if media.Has(block) {
		w.notifyReceived(target, block)
		return 0, tier, nil
	}
	var lastErr error
	for _, src := range sources {
		if src.Worker == w.id && src.Storage != target {
			// Local cross-media copy: read directly. Both the source
			// read (Put's source wait) and the store write are device
			// time here.
			if local, ok := w.media[src.Storage]; ok {
				rc, err := local.Open(block)
				if err != nil {
					lastErr = err
					continue
				}
				var iost storage.IOStats
				n, err := media.PutStats(block, rc, &iost)
				rc.Close()
				if err != nil {
					lastErr = err
					continue
				}
				rec.DiskNs += iost.DeviceNs + iost.SourceNs
				rec.ThrottleWaitNs += iost.ThrottleWaitNs
				w.notifyReceived(target, block)
				return n, tier, nil
			}
		}
		var tm rpc.TransferTiming
		rc, _, err := rpc.OpenBlockReaderTimed(src.Address, block, src.Storage, 0, -1, reqID, sp.ID(), &tm)
		if err != nil {
			lastErr = err
			continue
		}
		rec.DialNs += tm.DialNs
		rec.HeaderEncodeNs += tm.HeaderEncodeNs
		rec.HeaderDecodeNs += tm.HeaderDecodeNs
		rec.PoolHit = tm.PoolHit
		var iost storage.IOStats
		n, err := media.PutStats(block, rc, &iost)
		if ac, ok := rc.(interface{ AllocBytes() int64 }); ok {
			rec.AllocBytes += ac.AllocBytes()
		}
		rc.Close()
		if err != nil {
			lastErr = err
			continue
		}
		// Put's source wait is time reading the peer's packet stream.
		rec.NetNs += iost.SourceNs
		rec.DiskNs += iost.DeviceNs
		rec.ThrottleWaitNs += iost.ThrottleWaitNs
		w.notifyReceived(target, block)
		return n, tier, nil
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("worker: no replica source for %s: %w", block.ID, core.ErrNotFound)
	}
	return 0, tier, lastErr
}
