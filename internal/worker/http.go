package worker

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"

	"repro/internal/core"
	"repro/internal/events"
	"repro/internal/httpjson"
	"repro/internal/rpc"
	"repro/internal/trace"
	"repro/internal/xfer"
)

// WorkerStatus is the JSON document served at /status.
type WorkerStatus struct {
	ID       core.WorkerID `json:"id"`
	Node     string        `json:"node"`
	Rack     string        `json:"rack"`
	DataAddr string        `json:"dataAddr"`
	Media    []MediaStatus `json:"media"`
}

// MediaStatus summarises one media for /status.
type MediaStatus struct {
	ID          core.StorageID `json:"id"`
	Tier        string         `json:"tier"`
	CapacityMB  int64          `json:"capacityMB"`
	UsedMB      int64          `json:"usedMB"`
	Connections int            `json:"connections"`
	WriteMBps   float64        `json:"writeMBps"`
	ReadMBps    float64        `json:"readMBps"`
}

// ServeHTTP starts an HTTP status server on addr and returns its bound
// address. Endpoints: /status (JSON), /metrics (Prometheus text, or
// JSON with ?format=json), and /healthz. The server stops when the
// worker closes.
func (w *Worker) ServeHTTP(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("worker: http listen on %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/status", func(rw http.ResponseWriter, r *http.Request) {
		httpjson.Write(rw, w.status())
	})
	mux.HandleFunc("/metrics", func(rw http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("format") == "json" {
			rw.Header().Set("Content-Type", "application/json")
			w.metrics.reg.WriteJSON(rw)
			return
		}
		rw.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		w.metrics.reg.WritePrometheus(rw)
	})
	mux.HandleFunc("/healthz", func(rw http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(rw, "ok")
	})
	trace.RegisterDebugHandlers(mux, w.traces, nil)
	events.RegisterDebugHandler(mux, w.journal)
	xfer.RegisterDebugHandler(mux, w.xfers, func() any { return rpc.DataConnStats() })
	if w.cfg.Pprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	srv := &http.Server{Handler: mux}
	// Record the bound address so subsequent heartbeats advertise it to
	// the master (Register usually runs before ServeHTTP).
	w.httpMu.Lock()
	w.httpAddr = ln.Addr().String()
	w.httpMu.Unlock()
	w.wg.Add(1)
	go func() {
		defer w.wg.Done()
		srv.Serve(ln)
	}()
	go func() {
		<-w.done
		srv.Close()
	}()
	return ln.Addr().String(), nil
}

func (w *Worker) status() WorkerStatus {
	st := WorkerStatus{
		ID: w.id, Node: w.cfg.Node, Rack: w.cfg.Rack,
		DataAddr: w.DataAddr(),
	}
	for id, m := range w.media {
		st.Media = append(st.Media, MediaStatus{
			ID:          id,
			Tier:        m.Tier().String(),
			CapacityMB:  m.Capacity() >> 20,
			UsedMB:      m.Used() >> 20,
			Connections: m.Connections(),
			WriteMBps:   m.WriteThruMBps(),
			ReadMBps:    m.ReadThruMBps(),
		})
	}
	sort.Slice(st.Media, func(i, j int) bool { return st.Media[i].ID < st.Media[j].ID })
	return st
}
