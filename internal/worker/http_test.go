package worker

import (
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"testing"
	"time"

	"repro/internal/events"
	"repro/internal/rpc"
)

// TestWorkerHTTPRouting starts the worker's HTTP server and checks
// every mounted route answers: /status, /metrics (text and JSON),
// /healthz, and /debug/events with ?since cursoring and parameter
// validation.
func TestWorkerHTTPRouting(t *testing.T) {
	_, w := testWorker(t)
	addr, err := w.ServeHTTP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	code, body := get("/status")
	var st WorkerStatus
	if code != http.StatusOK {
		t.Fatalf("/status = %d", code)
	}
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatalf("/status JSON: %v", err)
	}
	if st.ID != "wtest" || len(st.Media) != 2 {
		t.Errorf("/status = %+v, want wtest with 2 media", st)
	}

	if code, body = get("/metrics"); code != http.StatusOK || body == "" {
		t.Errorf("/metrics = %d, body %d bytes", code, len(body))
	}
	_, body = get("/metrics?format=json")
	var decoded []map[string]any
	if err := json.Unmarshal([]byte(body), &decoded); err != nil {
		t.Errorf("/metrics?format=json: %v", err)
	}
	if code, _ = get("/healthz"); code != http.StatusOK {
		t.Errorf("/healthz = %d", code)
	}

	// The worker journals its own block lifecycle; seed events and walk
	// the cursor through the debug endpoint.
	w.Journal().Publish(events.Info, "test_a", "first")
	w.Journal().Publish(events.Warn, "test_b", "second")
	code, body = get("/debug/events")
	if code != http.StatusOK {
		t.Fatalf("/debug/events = %d", code)
	}
	var page struct {
		Events []events.Event    `json:"events"`
		Next   uint64            `json:"next"`
		Counts map[string]uint64 `json:"counts"`
	}
	if err := json.Unmarshal([]byte(body), &page); err != nil {
		t.Fatalf("/debug/events JSON: %v", err)
	}
	if len(page.Events) < 2 || page.Counts["test_a"] != 1 {
		t.Fatalf("/debug/events page = %+v", page)
	}
	for i := 1; i < len(page.Events); i++ {
		if page.Events[i].Seq <= page.Events[i-1].Seq {
			t.Fatalf("seqs not monotonic at %d", i)
		}
	}

	w.Journal().Publish(events.Error, "test_c", "third")
	_, body = get("/debug/events?since=" + strconv.FormatUint(page.Next, 10))
	var next struct {
		Events []events.Event `json:"events"`
	}
	if err := json.Unmarshal([]byte(body), &next); err != nil {
		t.Fatal(err)
	}
	if len(next.Events) != 1 || next.Events[0].Type != "test_c" {
		t.Fatalf("cursor page = %+v, want only test_c", next.Events)
	}

	if code, _ = get("/debug/events?since=bogus"); code != http.StatusBadRequest {
		t.Errorf("?since=bogus = %d, want 400", code)
	}
	if code, _ = get("/debug/events?limit=bogus"); code != http.StatusBadRequest {
		t.Errorf("?limit=bogus = %d, want 400", code)
	}
}

// TestWorkerHTTPAddrAdvertised checks the bound debug address reaches
// the master through heartbeats, so admin tools can fan out health
// checks without configuration.
func TestWorkerHTTPAddrAdvertised(t *testing.T) {
	_, w := testWorker(t)
	addr, err := w.ServeHTTP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if got := w.HTTPAddr(); got != addr {
		t.Fatalf("HTTPAddr() = %q, want %q", got, addr)
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		var reply rpc.WorkerReportsReply
		if err := w.callMaster("Master.GetWorkerReports", &rpc.WorkerReportsArgs{}, &reply); err != nil {
			t.Fatal(err)
		}
		if len(reply.Workers) == 1 && reply.Workers[0].HTTPAddr == addr {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("master never learned the worker http addr: %+v", reply.Workers)
		}
		time.Sleep(20 * time.Millisecond)
	}
}
