package worker

import (
	"time"

	"repro/internal/metrics"
	"repro/internal/rpc"
	"repro/internal/storage"
)

// workerMetrics bundles the worker's instruments under one registry,
// exposed at /metrics as octopus_worker_* families.
type workerMetrics struct {
	reg *metrics.Registry

	ops     *metrics.CounterVec   // octopus_worker_ops_total{op}
	opErrs  *metrics.CounterVec   // octopus_worker_op_errors_total{op}
	opDur   *metrics.HistogramVec // octopus_worker_op_duration_seconds{op}
	bytes   *metrics.CounterVec   // octopus_worker_bytes_total{op,tier}
	diskDur *metrics.HistogramVec // octopus_worker_disk_seconds{tier,op}

	heartbeats *metrics.Counter
	hbErrs     *metrics.Counter
	commands   *metrics.CounterVec // octopus_worker_commands_total{kind}

	slow *metrics.SlowLogger
}

func newWorkerMetrics(w *Worker) *workerMetrics {
	reg := metrics.NewRegistry()
	wm := &workerMetrics{
		reg:    reg,
		ops:    reg.CounterVec("octopus_worker_ops_total", "Data-port operations served, by operation.", "op"),
		opErrs: reg.CounterVec("octopus_worker_op_errors_total", "Data-port operations that failed, by operation.", "op"),
		opDur: reg.HistogramVec("octopus_worker_op_duration_seconds",
			"Data-port operation latency in seconds, by operation.", metrics.DefLatencyBuckets, "op"),
		bytes: reg.CounterVec("octopus_worker_bytes_total",
			"Block bytes moved by data-port operations, by operation and storage tier.", "op", "tier"),
		diskDur: reg.HistogramVec("octopus_worker_disk_seconds",
			"Media device time on a transfer's critical path, by storage tier and operation.",
			metrics.DefLatencyBuckets, "tier", "op"),
		heartbeats: reg.Counter("octopus_worker_heartbeats_total", "Heartbeats sent to the master.", nil),
		hbErrs:     reg.Counter("octopus_worker_heartbeat_failures_total", "Heartbeats that failed.", nil),
		commands:   reg.CounterVec("octopus_worker_commands_total", "Master commands executed, by kind.", "kind"),
		slow: metrics.NewSlowLogger(w.cfg.Logger, w.cfg.SlowOpThreshold,
			reg.Counter("octopus_worker_slow_ops_total", "Operations slower than the slow-op threshold.", nil)),
	}
	for id, m := range w.media {
		media := m
		labels := metrics.Labels{"media": string(id), "tier": media.Tier().String()}
		reg.GaugeFunc("octopus_worker_media_capacity_bytes",
			"Configured capacity of the media.", labels,
			func() float64 { return float64(media.Capacity()) })
		reg.GaugeFunc("octopus_worker_media_used_bytes",
			"Bytes currently stored on the media.", labels,
			func() float64 { return float64(media.Used()) })
		reg.GaugeFunc("octopus_worker_media_connections",
			"Active I/O connections on the media.", labels,
			func() float64 { return float64(media.Connections()) })
		wm.limiterGauges(media.WriteLimit(), "write", labels)
		wm.limiterGauges(media.ReadLimit(), "read", labels)
	}
	reg.GaugeFunc("octopus_worker_net_connections", "Active data-port connections.", nil,
		func() float64 { return float64(w.netConns.Load()) })
	// Outbound data-connection lifecycle. The counters live in the rpc
	// package and are process-wide, so in-process multi-daemon tests
	// (and octopus-bench) see one shared view.
	reg.GaugeFunc("octopus_worker_data_dials_total", "Outbound data-connection dial attempts (process-wide).", nil,
		func() float64 { return float64(rpc.DataConnStats().Dials) })
	reg.GaugeFunc("octopus_worker_data_dial_failures_total", "Outbound data-connection dials that failed (process-wide).", nil,
		func() float64 { return float64(rpc.DataConnStats().DialFailures) })
	reg.GaugeFunc("octopus_worker_data_handshakes_total", "Outbound data-connection header handshakes completed (process-wide).", nil,
		func() float64 { return float64(rpc.DataConnStats().Handshakes) })
	reg.GaugeFunc("octopus_worker_data_open_conns", "Outbound data connections currently open (process-wide).", nil,
		func() float64 { return float64(rpc.DataConnStats().OpenConns) })
	reg.GaugeFunc("octopus_worker_data_pool_hits_total", "Outbound data-connection checkouts served from the pool (process-wide).", nil,
		func() float64 { return float64(rpc.DataPoolStats().Hits) })
	reg.GaugeFunc("octopus_worker_data_pool_misses_total", "Outbound data-connection checkouts that had to dial (process-wide).", nil,
		func() float64 { return float64(rpc.DataPoolStats().Misses) })
	reg.GaugeFunc("octopus_worker_data_pool_idle_conns", "Idle data connections currently pooled (process-wide).", nil,
		func() float64 { return float64(rpc.DataPoolStats().Idle) })
	metrics.RegisterRuntimeGauges(reg, "octopus_worker", time.Now())
	return wm
}

// limiterGauges surfaces one token-bucket throttle: its configured
// rate, the bytes it has paced, and the cumulative time it made
// callers wait. Unthrottled media export no throttle series.
func (wm *workerMetrics) limiterGauges(l *storage.RateLimiter, dir string, media metrics.Labels) {
	if l == nil {
		return
	}
	labels := metrics.Labels{"media": media["media"], "tier": media["tier"], "dir": dir}
	wm.reg.GaugeFunc("octopus_worker_throttle_rate_bytes_per_second",
		"Configured throughput throttle of the media.", labels,
		func() float64 { return l.Rate() })
	wm.reg.GaugeFunc("octopus_worker_throttle_bytes",
		"Cumulative bytes paced through the throttle.", labels,
		func() float64 { b, _ := l.Stats(); return float64(b) })
	wm.reg.GaugeFunc("octopus_worker_throttle_wait_seconds",
		"Cumulative time the throttle made I/O wait.", labels,
		func() float64 { _, d := l.Stats(); return d.Seconds() })
}

// observeOp records one data-port operation: count, latency, moved
// bytes by tier, errors, and a slow-op log line carrying the request
// ID for cross-node correlation.
func (wm *workerMetrics) observeOp(op, reqID string, start time.Time, n int64, tier string, errored bool) {
	d := time.Since(start)
	wm.ops.With(op).Inc()
	wm.opDur.With(op).Observe(d.Seconds())
	if n > 0 {
		wm.bytes.With(op, tier).Add(float64(n))
	}
	if errored {
		wm.opErrs.With(op).Inc()
	}
	wm.slow.Observe(op, reqID, d, "bytes", n, "tier", tier)
}

// observeDisk records the device time a transfer spent on a media, in
// the per-tier latency histogram backing octopus_worker_disk_seconds.
// Zero device time (e.g. a memory-tier serve too fast to measure, or a
// failed op that never reached the media) is not observed.
func (wm *workerMetrics) observeDisk(tier, op string, ns int64) {
	if ns <= 0 || tier == "UNKNOWN" {
		return
	}
	wm.diskDur.With(tier, op).Observe(float64(ns) / 1e9)
}

// Metrics returns the worker's metric registry for exposition.
func (w *Worker) Metrics() *metrics.Registry { return w.metrics.reg }
