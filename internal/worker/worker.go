// Package worker implements the OctopusFS Worker (paper §2.2): it
// manages the heterogeneous storage media attached to one node, serves
// pipelined block writes and streamed block reads on its data port,
// and executes replication and deletion commands delivered by the
// master through heartbeats.
package worker

import (
	"fmt"
	"log/slog"
	"net"
	netrpc "net/rpc"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/events"
	"repro/internal/heat"
	"repro/internal/rpc"
	"repro/internal/storage"
	"repro/internal/trace"
	"repro/internal/xfer"
)

// Config configures a Worker.
type Config struct {
	// ID is the worker's cluster identity; defaults to the data
	// address after listen.
	ID core.WorkerID

	// Node and Rack place the worker in the network topology.
	Node string
	Rack string

	// MasterAddr is the master's RPC endpoint.
	MasterAddr string

	// DataAddr is the data-transfer listen address (":0" for tests).
	DataAddr string

	// Media lists the storage media to manage. Media IDs are
	// prefixed with the node name when not cluster-unique already.
	Media []storage.MediaConfig

	// NetMBps advertises the node's network throughput for the
	// retrieval policy's rate estimates (paper Eq. 12).
	NetMBps float64

	// HeartbeatInterval paces heartbeats; BlockReportInterval paces
	// full block reports.
	HeartbeatInterval   time.Duration
	BlockReportInterval time.Duration

	// ProbeBytes sizes the startup throughput probe per media
	// (paper §3.2). Zero skips probing and trusts the configured
	// throttle rates.
	ProbeBytes int64

	// Logger receives operational logs; nil discards them.
	Logger *slog.Logger

	// SlowOpThreshold is the latency above which a data-port operation
	// is logged as slow with its request ID. Zero logs every
	// operation; negative disables slow-op logging. Daemons default it
	// to 100ms via their -slowop flag.
	SlowOpThreshold time.Duration

	// TraceSample is the fraction of non-slow traces the in-memory
	// trace store retains; slow traces (per SlowOpThreshold) are
	// always kept. Zero selects the default (trace.DefaultSample);
	// negative keeps only slow traces.
	TraceSample float64

	// TraceCapacity bounds the number of retained traces; zero
	// selects trace.DefaultCapacity.
	TraceCapacity int

	// EventCapacity bounds the worker's event journal; zero selects
	// events.DefaultCapacity.
	EventCapacity int

	// TransferCapacity bounds the worker's transfer flight recorder;
	// zero selects xfer.DefaultCapacity.
	TransferCapacity int

	// Pprof mounts net/http/pprof under /debug/pprof/ on the HTTP
	// endpoint. Off by default.
	Pprof bool
}

func (c *Config) fillDefaults() {
	if c.HeartbeatInterval <= 0 {
		c.HeartbeatInterval = 250 * time.Millisecond
	}
	if c.BlockReportInterval <= 0 {
		c.BlockReportInterval = 2 * time.Second
	}
	if c.NetMBps <= 0 {
		c.NetMBps = 1250 // 10 Gbps
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.DiscardHandler)
	}
}

// Worker is one running worker daemon.
type Worker struct {
	cfg   Config
	id    core.WorkerID
	media map[core.StorageID]*storage.Media

	masterMu sync.Mutex
	master   *netrpc.Client

	ln       net.Listener
	netConns atomic.Int64
	connMu   sync.Mutex
	conns    map[net.Conn]struct{}

	metrics *workerMetrics
	traces  *trace.Store
	tracer  *trace.Tracer
	journal *events.Journal
	heat    *heat.Collector
	xfers   *xfer.Log

	unhookDial func() // deregisters the repeated-dial-failure journal hook

	httpMu   sync.Mutex
	httpAddr string // bound debug HTTP endpoint ("" until ServeHTTP)

	done   chan struct{}
	wg     sync.WaitGroup
	closed atomic.Bool
}

// New starts a Worker: it opens its media, probes their throughput,
// registers with the master, and begins serving data requests and
// heartbeating.
func New(cfg Config) (*Worker, error) {
	cfg.fillDefaults()
	ln, err := net.Listen("tcp", cfg.DataAddr)
	if err != nil {
		return nil, fmt.Errorf("worker: listening on %s: %w", cfg.DataAddr, err)
	}
	id := cfg.ID
	if id == "" {
		id = core.WorkerID(ln.Addr().String())
	}
	w := &Worker{
		cfg:   cfg,
		id:    id,
		media: make(map[core.StorageID]*storage.Media, len(cfg.Media)),
		ln:    ln,
		conns: make(map[net.Conn]struct{}),
		done:  make(chan struct{}),
	}
	for _, mc := range cfg.Media {
		if mc.ID == "" {
			return nil, fmt.Errorf("worker %s: media config missing ID", id)
		}
		m, err := storage.OpenMedia(mc)
		if err != nil {
			ln.Close()
			return nil, err
		}
		if cfg.ProbeBytes > 0 {
			if _, _, err := m.Probe(cfg.ProbeBytes); err != nil {
				w.cfg.Logger.Warn("media probe failed", "media", mc.ID, "err", err)
			}
		}
		w.media[mc.ID] = m
	}
	w.journal = events.NewJournal(cfg.EventCapacity)
	w.heat = heat.NewCollector()
	w.xfers = xfer.New(cfg.TransferCapacity)
	// Repeated data-dial failures to one peer (e.g. a dead pipeline
	// stage this worker keeps forwarding to) become a warn-severity
	// cluster event instead of just per-request error tags.
	w.unhookDial = rpc.OnRepeatedDialFailure(func(addr string, consecutive int) {
		w.journal.Publish(events.Warn, "worker_unreachable",
			"repeated data-connection dial failures to peer",
			"addr", addr, "consecutive", fmt.Sprintf("%d", consecutive),
			"worker", string(id))
	})
	w.traces = trace.NewStore(cfg.TraceCapacity, cfg.SlowOpThreshold, cfg.TraceSample)
	w.tracer = trace.NewTracer("worker", w.traces)
	w.metrics = newWorkerMetrics(w)
	w.metrics.slow.SetSink(func(op, reqID string, d time.Duration) {
		w.journal.PublishTraced(events.Warn, "slow_op", reqID,
			"slow operation on worker", "op", op, "dur", d.String(),
			"worker", string(w.id))
	})

	if err := w.register(); err != nil {
		ln.Close()
		return nil, err
	}
	w.wg.Add(3)
	go w.serveData()
	go w.heartbeatLoop()
	go w.blockReportLoop()
	w.cfg.Logger.Info("worker started", "id", id, "data", ln.Addr().String())
	return w, nil
}

// ID returns the worker's cluster identity.
func (w *Worker) ID() core.WorkerID { return w.id }

// DataAddr returns the data-transfer endpoint address.
func (w *Worker) DataAddr() string { return w.ln.Addr().String() }

// Media returns the managed media keyed by storage ID (for tests).
func (w *Worker) Media() map[core.StorageID]*storage.Media { return w.media }

// Journal exposes the worker's event journal (for the HTTP handler and
// tests).
func (w *Worker) Journal() *events.Journal { return w.journal }

// TransferLog exposes the worker's transfer flight recorder (for the
// HTTP handler, benchmarks, and tests).
func (w *Worker) TransferLog() *xfer.Log { return w.xfers }

// HTTPAddr returns the bound debug HTTP endpoint ("" until ServeHTTP
// runs). Heartbeats advertise it to the master so admin tools can fan
// out health checks.
func (w *Worker) HTTPAddr() string {
	w.httpMu.Lock()
	defer w.httpMu.Unlock()
	return w.httpAddr
}

// Close shuts the worker down.
func (w *Worker) Close() error {
	if !w.closed.CompareAndSwap(false, true) {
		return nil
	}
	close(w.done)
	if w.unhookDial != nil {
		w.unhookDial()
	}
	w.ln.Close()
	// Sever in-flight data transfers so Close behaves like a node
	// failure instead of draining them: clients detect the broken
	// stream and fail over or retry elsewhere.
	w.connMu.Lock()
	for conn := range w.conns {
		conn.Close()
	}
	w.connMu.Unlock()
	w.wg.Wait()
	w.masterMu.Lock()
	if w.master != nil {
		w.master.Close()
	}
	w.masterMu.Unlock()
	for _, m := range w.media {
		m.Close()
	}
	return nil
}

// callMaster invokes a master RPC, (re)dialling as needed.
func (w *Worker) callMaster(method string, args, reply any) error {
	w.masterMu.Lock()
	if w.master == nil {
		c, err := netrpc.Dial("tcp", w.cfg.MasterAddr)
		if err != nil {
			w.masterMu.Unlock()
			return fmt.Errorf("worker: dialling master: %w", err)
		}
		w.master = c
	}
	c := w.master
	w.masterMu.Unlock()

	err := c.Call(method, args, reply)
	if isTransportError(err) {
		w.masterMu.Lock()
		if w.master == c {
			w.master.Close()
			w.master = nil
		}
		w.masterMu.Unlock()
	}
	return rpc.WrapRemote(err)
}

// isTransportError reports whether an RPC failure came from the
// connection rather than the server: net/rpc wraps server-side errors
// in rpc.ServerError, so anything else (EOF, reset, shutdown) means
// the connection must be re-dialled.
func isTransportError(err error) bool {
	if err == nil {
		return false
	}
	_, isServer := err.(netrpc.ServerError)
	return !isServer
}

// mediaStats snapshots every media's statistics for registration and
// heartbeats.
func (w *Worker) mediaStats() []rpc.MediaStat {
	stats := make([]rpc.MediaStat, 0, len(w.media))
	for id, m := range w.media {
		stats = append(stats, rpc.MediaStat{
			ID:          id,
			Tier:        m.Tier(),
			Capacity:    m.Capacity(),
			Remaining:   m.Remaining(),
			Connections: m.Connections(),
			WriteMBps:   m.WriteThruMBps(),
			ReadMBps:    m.ReadThruMBps(),
		})
	}
	return stats
}

func (w *Worker) register() error {
	args := &rpc.RegisterArgs{
		ReqHeader: rpc.ReqHeader{ReqID: rpc.NewRequestID()},
		ID:        w.id,
		Node:      w.cfg.Node,
		Rack:      w.cfg.Rack,
		DataAddr:  w.ln.Addr().String(),
		HTTPAddr:  w.HTTPAddr(),
		NetMBps:   w.cfg.NetMBps,
		Media:     w.mediaStats(),
	}
	var reply rpc.RegisterReply
	if err := w.callMaster("Master.Register", args, &reply); err != nil {
		return fmt.Errorf("worker %s: registration failed: %w", w.id, err)
	}
	return nil
}

func (w *Worker) heartbeatLoop() {
	defer w.wg.Done()
	ticker := time.NewTicker(w.cfg.HeartbeatInterval)
	defer ticker.Stop()
	for {
		select {
		case <-w.done:
			return
		case <-ticker.C:
			w.heartbeat()
		}
	}
}

func (w *Worker) heartbeat() {
	args := &rpc.HeartbeatArgs{
		ReqHeader: rpc.ReqHeader{ReqID: rpc.NewRequestID()},
		ID:        w.id,
		Media:     w.mediaStats(),
		NetConns:  int(w.netConns.Load()),
		NetMBps:   w.cfg.NetMBps,
		HTTPAddr:  w.HTTPAddr(),
		Heat:      w.heat.Drain(),
	}
	w.metrics.heartbeats.Inc()
	var reply rpc.HeartbeatReply
	if err := w.callMaster("Master.Heartbeat", args, &reply); err != nil {
		// The master may have expired us (e.g. after its restart):
		// re-register and retry on the next tick. Put the drained heat
		// deltas back so access history survives master hiccups.
		w.heat.Restore(args.Heat)
		w.metrics.hbErrs.Inc()
		w.cfg.Logger.Warn("heartbeat failed", "req", args.ReqID, "err", err)
		if err := w.register(); err != nil {
			w.cfg.Logger.Warn("re-registration failed", "err", err)
		}
		return
	}
	for _, cmd := range reply.Commands {
		cmd := cmd
		w.wg.Add(1)
		go func() {
			defer w.wg.Done()
			w.execute(cmd)
		}()
	}
}

func (w *Worker) blockReportLoop() {
	defer w.wg.Done()
	ticker := time.NewTicker(w.cfg.BlockReportInterval)
	defer ticker.Stop()
	for {
		select {
		case <-w.done:
			return
		case <-ticker.C:
			w.sendBlockReport()
		}
	}
}

func (w *Worker) sendBlockReport() {
	var blocks []rpc.StoredBlock
	for id, m := range w.media {
		for _, b := range m.Blocks() {
			blocks = append(blocks, rpc.StoredBlock{Storage: id, Block: b})
		}
	}
	args := &rpc.BlockReportArgs{ID: w.id, Blocks: blocks}
	var reply rpc.BlockReportReply
	if err := w.callMaster("Master.BlockReport", args, &reply); err != nil {
		w.cfg.Logger.Warn("block report failed", "err", err)
	}
}

// execute runs one master command.
func (w *Worker) execute(cmd rpc.Command) {
	switch cmd.Kind {
	case rpc.CmdDelete:
		w.metrics.commands.With("delete").Inc()
		m, ok := w.media[cmd.Target]
		if !ok {
			return
		}
		if err := m.Delete(cmd.Block); err != nil {
			w.cfg.Logger.Warn("delete command failed", "block", cmd.Block.ID, "err", err)
			return
		}
		w.heat.Forget(cmd.Block.ID)
		w.journal.Publish(events.Info, "block_deleted",
			"replica deleted on master command",
			"block", fmt.Sprintf("%d", cmd.Block.ID),
			"storage", string(cmd.Target))
		var reply rpc.BlockDeletedReply
		w.callMaster("Master.BlockDeleted", &rpc.BlockDeletedArgs{
			ID: w.id, Storage: cmd.Target, Block: cmd.Block,
		}, &reply)
	case rpc.CmdReplicate:
		// Command-driven replications get a fresh request ID so their
		// slow-op lines are traceable like client-driven ops.
		w.metrics.commands.With("replicate").Inc()
		reqID := rpc.NewRequestID()
		start := time.Now()
		sp := w.tracer.Start(reqID, "", "worker.replicate")
		sp.Annotate("worker", string(w.id)).AnnotateInt("block", int64(cmd.Block.ID))
		rec := xfer.Record{
			Op:      "replicate",
			Source:  "worker:" + string(w.id),
			Block:   uint64(cmd.Block.ID),
			TraceID: reqID,
			SpanID:  sp.ID(),
		}
		n, tier, err := w.replicate(reqID, sp, cmd.Block, cmd.Target, cmd.Sources, &rec)
		sp.Annotate("tier", tier).AnnotateInt("bytes", n)
		rec.Tier = tier
		rec.Bytes = n
		rec.Result = "ok"
		if err != nil {
			rec.Result = err.Error()
		}
		annotatePhases(sp, &rec)
		sp.SetError(err)
		sp.End()
		w.metrics.observeOp("replicate", reqID, start, n, tier, err != nil)
		w.metrics.observeDisk(tier, "replicate", rec.DiskNs)
		rec.TotalNs = time.Since(start).Nanoseconds()
		w.xfers.Append(rec)
		if err != nil {
			w.cfg.Logger.Warn("replication command failed",
				"block", cmd.Block.ID, "target", cmd.Target, "req", reqID, "err", err)
			w.journal.PublishTraced(events.Warn, "block_replicate_failed", reqID,
				"replication command failed",
				"block", fmt.Sprintf("%d", cmd.Block.ID),
				"target", string(cmd.Target), "err", err.Error())
		} else {
			w.heat.Touch(cmd.Block.ID, heat.Write, n)
			w.journal.PublishTraced(events.Info, "block_replicated", reqID,
				"replica copied on master command",
				"block", fmt.Sprintf("%d", cmd.Block.ID),
				"target", string(cmd.Target), "tier", tier)
		}
	}
}

// notifyReceived tells the master a replica landed on local media.
func (w *Worker) notifyReceived(storageID core.StorageID, b core.Block) {
	var reply rpc.BlockReceivedReply
	if err := w.callMaster("Master.BlockReceived", &rpc.BlockReceivedArgs{
		ID: w.id, Storage: storageID, Block: b,
	}, &reply); err != nil {
		w.cfg.Logger.Warn("block-received notification failed", "err", err)
	}
}
