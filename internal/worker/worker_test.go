package worker

import (
	"bytes"
	"errors"
	"io"
	"net"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/master"
	"repro/internal/rpc"
	"repro/internal/storage"
)

// testWorker boots a master and one worker with a memory and an HDD
// media, returning both.
func testWorker(t *testing.T) (*master.Master, *Worker) {
	t.Helper()
	m, err := master.New(master.Config{
		ListenAddr:      "127.0.0.1:0",
		BlockSize:       1 << 20,
		MonitorInterval: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { m.Close() })
	w, err := New(Config{
		ID:         "wtest",
		Node:       "wtest",
		Rack:       "/r1",
		MasterAddr: m.Addr(),
		DataAddr:   "127.0.0.1:0",
		Media: []storage.MediaConfig{
			{ID: "wtest:mem0", Tier: core.TierMemory, Capacity: 64 << 20},
			{ID: "wtest:hdd0", Tier: core.TierHDD, Capacity: 64 << 20, Dir: t.TempDir()},
		},
		HeartbeatInterval:   50 * time.Millisecond,
		BlockReportInterval: 200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { w.Close() })
	return m, w
}

func TestWriteAndReadBlockDirectly(t *testing.T) {
	_, w := testWorker(t)
	blk := core.Block{ID: 1, GenStamp: 1, NumBytes: 1 << 20}
	payload := bytes.Repeat([]byte("octo"), 1<<18)

	bw, err := rpc.OpenBlockWriter(blk, []rpc.PipelineTarget{
		{Worker: w.ID(), Address: w.DataAddr(), Storage: "wtest:hdd0"},
	}, "test")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bw.Write(payload); err != nil {
		t.Fatal(err)
	}
	if err := bw.Commit(); err != nil {
		t.Fatalf("pipeline ack: %v", err)
	}

	// Full read.
	rc, length, err := rpc.OpenBlockReader(w.DataAddr(), core.Block{ID: 1, GenStamp: 1, NumBytes: int64(len(payload))}, "wtest:hdd0", 0, -1)
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(rc)
	rc.Close()
	if err != nil || length != int64(len(payload)) {
		t.Fatalf("read: %v len=%d", err, length)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("content mismatch")
	}

	// Ranged read.
	rc, length, err = rpc.OpenBlockReader(w.DataAddr(), core.Block{ID: 1, GenStamp: 1, NumBytes: int64(len(payload))}, "wtest:hdd0", 100, 256)
	if err != nil {
		t.Fatal(err)
	}
	got, _ = io.ReadAll(rc)
	rc.Close()
	if length != 256 || !bytes.Equal(got, payload[100:356]) {
		t.Fatalf("ranged read wrong: len=%d", length)
	}
}

func TestReadUnknownMediaAndBlock(t *testing.T) {
	_, w := testWorker(t)
	_, _, err := rpc.OpenBlockReader(w.DataAddr(), core.Block{ID: 9, GenStamp: 1}, "wtest:nope", 0, -1)
	if !errors.Is(err, core.ErrNotFound) {
		t.Errorf("unknown media err = %v, want ErrNotFound", err)
	}
	_, _, err = rpc.OpenBlockReader(w.DataAddr(), core.Block{ID: 9, GenStamp: 1}, "wtest:hdd0", 0, -1)
	if !errors.Is(err, core.ErrNotFound) {
		t.Errorf("unknown block err = %v, want ErrNotFound", err)
	}
}

func TestWriteToUnknownMediaFails(t *testing.T) {
	_, w := testWorker(t)
	bw, err := rpc.OpenBlockWriter(core.Block{ID: 2, GenStamp: 1}, []rpc.PipelineTarget{
		{Worker: w.ID(), Address: w.DataAddr(), Storage: "wtest:nope"},
	}, "test")
	if err != nil {
		t.Fatal(err)
	}
	bw.Write([]byte("data"))
	if err := bw.Commit(); !errors.Is(err, core.ErrNotFound) {
		t.Errorf("ack err = %v, want ErrNotFound", err)
	}
}

func TestReplicateViaDataPort(t *testing.T) {
	_, w := testWorker(t)
	// Store a block on hdd0, then ask the worker (over the data port)
	// to replicate it onto mem0 from itself.
	blk := core.Block{ID: 3, GenStamp: 1, NumBytes: 4096}
	payload := bytes.Repeat([]byte{7}, 4096)
	bw, err := rpc.OpenBlockWriter(blk, []rpc.PipelineTarget{
		{Worker: w.ID(), Address: w.DataAddr(), Storage: "wtest:hdd0"},
	}, "test")
	if err != nil {
		t.Fatal(err)
	}
	bw.Write(payload)
	if err := bw.Commit(); err != nil {
		t.Fatal(err)
	}

	conn, err := net.Dial("tcp", w.DataAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.Write([]byte{rpc.OpReplicateBlock})
	if err := rpc.WriteFrame(conn, rpc.ReplicateBlockHeader{
		Block:  blk,
		Target: "wtest:mem0",
		Sources: []core.BlockLocation{{
			Worker: w.ID(), Address: w.DataAddr(), Storage: "wtest:hdd0", Tier: core.TierHDD,
		}},
	}); err != nil {
		t.Fatal(err)
	}
	var ack rpc.ReplicateBlockAck
	if err := rpc.ReadFrame(conn, &ack); err != nil {
		t.Fatal(err)
	}
	if ack.Err != "" {
		t.Fatalf("replicate ack: %s", ack.Err)
	}
	if !w.Media()["wtest:mem0"].Has(blk) {
		t.Error("replica not present on memory media")
	}
}

func TestWorkerRegistersAndHeartbeats(t *testing.T) {
	m, _ := testWorker(t)
	if m.NumWorkers() != 1 {
		t.Fatalf("workers = %d, want 1", m.NumWorkers())
	}
}

func TestMediaStats(t *testing.T) {
	_, w := testWorker(t)
	stats := w.mediaStats()
	if len(stats) != 2 {
		t.Fatalf("stats = %d media, want 2", len(stats))
	}
	for _, s := range stats {
		if s.Capacity != 64<<20 {
			t.Errorf("%s capacity = %d", s.ID, s.Capacity)
		}
		if s.Remaining > s.Capacity {
			t.Errorf("%s remaining > capacity", s.ID)
		}
	}
}
