package storage

import (
	"io"
	"sync"
	"time"

	"repro/internal/bufpool"
)

// RateLimiter paces bytes at a sustained rate to emulate the
// throughput of a storage media on hardware that is actually faster.
// A nil limiter imposes no limit.
//
// The limiter uses virtual-time pacing: it tracks the absolute time at
// which the last accounted byte is "due" and sleeps until then. This
// self-corrects OS timer overshoot (a sleep that runs long simply
// leaves the schedule ahead of wall-clock), which matters on machines
// with coarse tick granularity when emulating multi-GB/s media.
type RateLimiter struct {
	mu          sync.Mutex
	bytesPerSec float64
	next        time.Time // when the last accounted byte is due
	lastCall    time.Time // for idle detection

	totalBytes int64         // cumulative bytes accounted
	totalWait  time.Duration // cumulative time spent sleeping
}

const (
	// minSleep batches sleep debt to amortise timer slack.
	minSleep = time.Millisecond
	// idleReset is the gap between Wait calls after which the
	// schedule restarts, so one transfer's unused allowance does not
	// become a burst for the next.
	idleReset = 10 * time.Millisecond
)

// NewRateLimiter builds a limiter sustaining bytesPerSec.
// A non-positive rate returns nil, meaning unlimited.
func NewRateLimiter(bytesPerSec float64) *RateLimiter {
	if bytesPerSec <= 0 {
		return nil
	}
	now := time.Now()
	return &RateLimiter{bytesPerSec: bytesPerSec, next: now, lastCall: now}
}

// Wait accounts for n bytes and blocks until they are due, returning
// the time this caller was actually made to sleep so per-stream
// telemetry can attribute throttle wait exactly. It is safe for
// concurrent use; concurrent callers share the rate, which is
// exactly the bandwidth-splitting behaviour of a real device under
// concurrent I/O.
func (l *RateLimiter) Wait(n int) time.Duration {
	if l == nil || n <= 0 {
		return 0
	}
	l.mu.Lock()
	now := time.Now()
	// Restart the schedule after idleness; within a transfer, being
	// behind schedule (e.g. from sleep overshoot) carries over as
	// allowance so the long-run rate converges to the target.
	if now.Sub(l.lastCall) > idleReset && l.next.Before(now) {
		l.next = now
	}
	l.lastCall = now
	l.next = l.next.Add(time.Duration(float64(n) / l.bytesPerSec * float64(time.Second)))
	sleep := l.next.Sub(now)
	l.totalBytes += int64(n)
	if sleep >= minSleep {
		l.totalWait += sleep
	}
	l.mu.Unlock()
	if sleep >= minSleep {
		time.Sleep(sleep)
		return sleep
	}
	return 0
}

// Stats returns the cumulative bytes accounted by the limiter and the
// total time callers were made to wait, for throttling telemetry. A
// nil (unlimited) limiter reports zeros.
func (l *RateLimiter) Stats() (bytes int64, waited time.Duration) {
	if l == nil {
		return 0, 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.totalBytes, l.totalWait
}

// Rate returns the sustained rate in bytes per second (0 = unlimited).
func (l *RateLimiter) Rate() float64 {
	if l == nil {
		return 0
	}
	return l.bytesPerSec
}

// limitedReader throttles an io.Reader through a RateLimiter,
// optionally accumulating this stream's own sleep time into waitNs.
type limitedReader struct {
	r      io.Reader
	l      *RateLimiter
	waitNs *int64
}

// LimitReader wraps r so reads are throttled by l. A nil limiter
// returns r unchanged.
func LimitReader(r io.Reader, l *RateLimiter) io.Reader {
	return LimitReaderStats(r, l, nil)
}

// LimitReaderStats is LimitReader accumulating the stream's own
// throttle sleep (exact, unlike the limiter's cross-stream Stats
// total) into *waitNs. waitNs may be nil.
func LimitReaderStats(r io.Reader, l *RateLimiter, waitNs *int64) io.Reader {
	if l == nil {
		return r
	}
	return &limitedReader{r: r, l: l, waitNs: waitNs}
}

func (lr *limitedReader) Read(p []byte) (int, error) {
	// Cap chunk size so the limiter smooths rather than bursts.
	if len(p) > 256<<10 {
		p = p[:256<<10]
	}
	n, err := lr.r.Read(p)
	slept := lr.l.Wait(n)
	if lr.waitNs != nil && slept > 0 {
		*lr.waitNs += slept.Nanoseconds()
	}
	return n, err
}

// WriteTo implements io.WriterTo through one pooled staging buffer,
// pacing each chunk exactly as Read would, so whole-stream copies out
// of a throttled media avoid io.Copy's per-call allocation.
func (lr *limitedReader) WriteTo(w io.Writer) (int64, error) {
	buf, _ := bufpool.Get(64 << 10)
	defer bufpool.Put(buf)
	var total int64
	for {
		n, err := lr.r.Read(buf)
		slept := lr.l.Wait(n)
		if lr.waitNs != nil && slept > 0 {
			*lr.waitNs += slept.Nanoseconds()
		}
		if n > 0 {
			m, werr := w.Write(buf[:n])
			total += int64(m)
			if werr != nil {
				return total, werr
			}
			if m < n {
				return total, io.ErrShortWrite
			}
		}
		if err == io.EOF {
			return total, nil
		}
		if err != nil {
			return total, err
		}
	}
}

// limitedReadCloser is LimitReader plus pass-through Close.
type limitedReadCloser struct {
	limitedReader
	c io.Closer
}

// LimitReadCloser wraps rc so reads are throttled by l.
func LimitReadCloser(rc io.ReadCloser, l *RateLimiter) io.ReadCloser {
	if l == nil {
		return rc
	}
	return &limitedReadCloser{limitedReader{r: rc, l: l}, rc}
}

func (lrc *limitedReadCloser) Close() error { return lrc.c.Close() }
