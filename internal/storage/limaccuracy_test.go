package storage

import (
	"bytes"
	"io"
	"testing"
	"time"
)

// TestRateLimiterAccuracyAcrossRates checks the limiter emulates
// device rates from HDD to memory speed within tolerance.
func TestRateLimiterAccuracyAcrossRates(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive")
	}
	data := make([]byte, 16<<20)
	for _, rateMBps := range []float64{126.3, 340.6, 1897.4, 3224.8} {
		l := NewRateLimiter(rateMBps * 1e6)
		t0 := time.Now()
		io.Copy(io.Discard, LimitReader(bytes.NewReader(data), l))
		measured := 16 * 1024 * 1024 / 1e6 / time.Since(t0).Seconds()
		t.Logf("target %7.1f MB/s -> measured %7.1f MB/s", rateMBps, measured)
		if measured < rateMBps*0.6 || measured > rateMBps*1.6 {
			t.Errorf("target %.1f: measured %.1f outside tolerance", rateMBps, measured)
		}
	}
}
