package storage

import (
	"bytes"
	"errors"
	"io"
	"os"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/core"
)

func testStores(t *testing.T) map[string]Store {
	t.Helper()
	disk, err := NewDiskStore(t.TempDir())
	if err != nil {
		t.Fatalf("NewDiskStore: %v", err)
	}
	return map[string]Store{"mem": NewMemStore(), "disk": disk}
}

func blk(id uint64, size int64) core.Block {
	return core.Block{ID: core.BlockID(id), GenStamp: 1, NumBytes: size}
}

func TestStorePutOpenDelete(t *testing.T) {
	for name, s := range testStores(t) {
		t.Run(name, func(t *testing.T) {
			data := []byte("hello tiered storage")
			b := blk(1, int64(len(data)))

			n, err := s.Put(b, bytes.NewReader(data))
			if err != nil {
				t.Fatalf("Put: %v", err)
			}
			if n != int64(len(data)) {
				t.Errorf("Put returned %d bytes, want %d", n, len(data))
			}
			if !s.Has(b) {
				t.Error("Has = false after Put")
			}
			if got := s.Used(); got != int64(len(data)) {
				t.Errorf("Used = %d, want %d", got, len(data))
			}

			rc, err := s.Open(b)
			if err != nil {
				t.Fatalf("Open: %v", err)
			}
			got, err := io.ReadAll(rc)
			rc.Close()
			if err != nil {
				t.Fatalf("ReadAll: %v", err)
			}
			if !bytes.Equal(got, data) {
				t.Errorf("content mismatch: %q vs %q", got, data)
			}

			if err := s.Delete(b); err != nil {
				t.Fatalf("Delete: %v", err)
			}
			if s.Has(b) {
				t.Error("Has = true after Delete")
			}
			if got := s.Used(); got != 0 {
				t.Errorf("Used after delete = %d, want 0", got)
			}
			if _, err := s.Open(b); !errors.Is(err, core.ErrNotFound) {
				t.Errorf("Open after delete: err = %v, want ErrNotFound", err)
			}
			if err := s.Delete(b); !errors.Is(err, core.ErrNotFound) {
				t.Errorf("double Delete: err = %v, want ErrNotFound", err)
			}
		})
	}
}

func TestStoreOverwriteAdjustsUsed(t *testing.T) {
	for name, s := range testStores(t) {
		t.Run(name, func(t *testing.T) {
			b := blk(1, 0)
			if _, err := s.Put(b, bytes.NewReader(make([]byte, 100))); err != nil {
				t.Fatal(err)
			}
			if _, err := s.Put(b, bytes.NewReader(make([]byte, 40))); err != nil {
				t.Fatal(err)
			}
			if got := s.Used(); got != 40 {
				t.Errorf("Used = %d after overwrite, want 40", got)
			}
		})
	}
}

func TestStoreBlocksListing(t *testing.T) {
	for name, s := range testStores(t) {
		t.Run(name, func(t *testing.T) {
			for i := 5; i >= 1; i-- {
				if _, err := s.Put(blk(uint64(i), 0), bytes.NewReader(make([]byte, i))); err != nil {
					t.Fatal(err)
				}
			}
			bs := s.Blocks()
			if len(bs) != 5 {
				t.Fatalf("Blocks() returned %d entries, want 5", len(bs))
			}
			for i, b := range bs {
				if b.ID != core.BlockID(i+1) {
					t.Errorf("Blocks()[%d].ID = %v, want %d (sorted)", i, b.ID, i+1)
				}
				if b.NumBytes != int64(i+1) {
					t.Errorf("Blocks()[%d].NumBytes = %d, want %d", i, b.NumBytes, i+1)
				}
			}
		})
	}
}

func TestStoreGenerationStampsDistinguishReplicas(t *testing.T) {
	for name, s := range testStores(t) {
		t.Run(name, func(t *testing.T) {
			old := core.Block{ID: 9, GenStamp: 1}
			new_ := core.Block{ID: 9, GenStamp: 2}
			if _, err := s.Put(old, bytes.NewReader([]byte("old"))); err != nil {
				t.Fatal(err)
			}
			if _, err := s.Put(new_, bytes.NewReader([]byte("new!"))); err != nil {
				t.Fatal(err)
			}
			if !s.Has(old) || !s.Has(new_) {
				t.Error("generations are not independent")
			}
			rc, err := s.Open(new_)
			if err != nil {
				t.Fatal(err)
			}
			got, _ := io.ReadAll(rc)
			rc.Close()
			if string(got) != "new!" {
				t.Errorf("new generation content = %q", got)
			}
		})
	}
}

func TestDiskStoreReindexOnRestart(t *testing.T) {
	dir := t.TempDir()
	s, err := NewDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("persistent block content")
	b := blk(42, int64(len(data)))
	if _, err := s.Put(b, bytes.NewReader(data)); err != nil {
		t.Fatal(err)
	}
	s.Close()

	s2, err := NewDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !s2.Has(b) {
		t.Fatal("restarted store lost the block")
	}
	if got := s2.Used(); got != int64(len(data)) {
		t.Errorf("restarted Used = %d, want %d", got, len(data))
	}
	rc, err := s2.Open(b)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := io.ReadAll(rc)
	rc.Close()
	if !bytes.Equal(got, data) {
		t.Error("restarted store returned wrong content")
	}
}

func TestMemStoreCloseDropsContentAndRejectsWrites(t *testing.T) {
	s := NewMemStore()
	b := blk(1, 0)
	if _, err := s.Put(b, bytes.NewReader([]byte("x"))); err != nil {
		t.Fatal(err)
	}
	s.Close()
	if s.Used() != 0 {
		t.Error("Close did not drop volatile content")
	}
	if _, err := s.Put(b, bytes.NewReader([]byte("y"))); !errors.Is(err, core.ErrShutdown) {
		t.Errorf("Put after Close: err = %v, want ErrShutdown", err)
	}
}

func TestStoreConcurrentPutGet(t *testing.T) {
	for name, s := range testStores(t) {
		t.Run(name, func(t *testing.T) {
			var wg sync.WaitGroup
			for g := 0; g < 8; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for i := 0; i < 25; i++ {
						b := blk(uint64(g*100+i), 0)
						payload := bytes.Repeat([]byte{byte(g)}, 64)
						if _, err := s.Put(b, bytes.NewReader(payload)); err != nil {
							t.Errorf("Put: %v", err)
							return
						}
						rc, err := s.Open(b)
						if err != nil {
							t.Errorf("Open: %v", err)
							return
						}
						got, _ := io.ReadAll(rc)
						rc.Close()
						if !bytes.Equal(got, payload) {
							t.Error("content mismatch under concurrency")
							return
						}
					}
				}(g)
			}
			wg.Wait()
			if got := len(s.Blocks()); got != 200 {
				t.Errorf("stored %d blocks, want 200", got)
			}
		})
	}
}

func TestTierFromKind(t *testing.T) {
	tests := []struct {
		in      string
		want    core.StorageTier
		wantErr bool
	}{
		{"memory", core.TierMemory, false},
		{"ssd", core.TierSSD, false},
		{"hdd", core.TierHDD, false},
		{"remote", core.TierRemote, false},
		{"unspecified", 0, true}, // not a concrete media kind
		{"floppy", 0, true},
	}
	for _, tt := range tests {
		got, err := TierFromKind(tt.in)
		if (err != nil) != tt.wantErr {
			t.Errorf("TierFromKind(%q) err = %v, wantErr %v", tt.in, err, tt.wantErr)
			continue
		}
		if err == nil && got != tt.want {
			t.Errorf("TierFromKind(%q) = %v, want %v", tt.in, got, tt.want)
		}
	}
}

// TestQuickStoreRoundTrip property-checks that any payload stored is
// returned byte-identical by both store kinds.
func TestQuickStoreRoundTrip(t *testing.T) {
	disk, err := NewDiskStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	stores := map[string]Store{"mem": NewMemStore(), "disk": disk}
	id := uint64(0)
	f := func(payload []byte) bool {
		id++
		for _, s := range stores {
			b := blk(id, int64(len(payload)))
			if _, err := s.Put(b, bytes.NewReader(payload)); err != nil {
				return false
			}
			rc, err := s.Open(b)
			if err != nil {
				return false
			}
			got, err := io.ReadAll(rc)
			rc.Close()
			if err != nil || !bytes.Equal(got, payload) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestDiskStoreIgnoresForeignFiles(t *testing.T) {
	dir := t.TempDir()
	if err := writeFile(dir+"/README.txt", []byte("not a block")); err != nil {
		t.Fatal(err)
	}
	s, err := NewDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(s.Blocks()); got != 0 {
		t.Errorf("foreign files indexed as blocks: %d", got)
	}
}

func writeFile(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644)
}
