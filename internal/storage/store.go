// Package storage implements the per-worker storage media of
// OctopusFS: block stores backed by memory or directories on disk,
// wrapped with capacity accounting, active-connection tracking, and
// optional token-bucket throughput throttling.
//
// Throttling exists so that a single test machine can faithfully
// emulate the heterogeneous media of the paper's evaluation cluster
// (Table 2: memory ≈ 1897/3225 MB/s, SSD ≈ 341/420, HDD ≈ 126/177
// write/read): a worker configured with a throttled directory store
// behaves — from the file system's point of view — like a worker with
// a real device of that speed.
package storage

import (
	"bytes"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"repro/internal/core"
)

// Store is a flat container of block replicas. Implementations must be
// safe for concurrent use.
type Store interface {
	// Put stores the block's content read from r, replacing any
	// existing replica of the same block, and returns the number of
	// bytes stored.
	Put(b core.Block, r io.Reader) (int64, error)

	// Open returns a reader over the stored replica.
	// It returns core.ErrNotFound if the replica is absent.
	Open(b core.Block) (io.ReadCloser, error)

	// Delete removes the replica. Deleting an absent replica returns
	// core.ErrNotFound.
	Delete(b core.Block) error

	// Has reports whether a replica of the block is present.
	Has(b core.Block) bool

	// Blocks lists the stored replicas, sorted by block ID.
	Blocks() []core.Block

	// Used returns the number of bytes currently stored.
	Used() int64

	// Verify recomputes the replica's checksum and compares it with
	// the one recorded at Put time, returning core.ErrCorrupt on
	// mismatch (the moral equivalent of HDFS's .meta files).
	Verify(b core.Block) error

	// Close releases the store's resources. Memory stores drop their
	// content (the tier is volatile); disk stores keep files on disk.
	Close() error
}

// blockKey identifies a replica within a store.
type blockKey struct {
	id  core.BlockID
	gen core.GenerationStamp
}

// crcTable is the CRC-32C polynomial used for stored-replica
// checksums, matching the transfer protocol's.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// MemStore is a volatile in-memory block store backing the memory
// tier.
type MemStore struct {
	mu     sync.RWMutex
	blocks map[blockKey][]byte
	crcs   map[blockKey]uint32
	used   int64
	closed bool
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore {
	return &MemStore{
		blocks: make(map[blockKey][]byte),
		crcs:   make(map[blockKey]uint32),
	}
}

// Put implements Store.
func (s *MemStore) Put(b core.Block, r io.Reader) (int64, error) {
	data, err := readAllSized(r, b.NumBytes)
	if err != nil {
		return 0, fmt.Errorf("storage: reading block %s: %w", b.ID, err)
	}
	key := blockKey{b.ID, b.GenStamp}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, core.ErrShutdown
	}
	if old, ok := s.blocks[key]; ok {
		s.used -= int64(len(old))
	}
	s.blocks[key] = data
	s.crcs[key] = crc32.Checksum(data, crcTable)
	s.used += int64(len(data))
	return int64(len(data)), nil
}

// Verify implements Store.
func (s *MemStore) Verify(b core.Block) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	key := blockKey{b.ID, b.GenStamp}
	data, ok := s.blocks[key]
	if !ok {
		return fmt.Errorf("storage: block %s: %w", b.ID, core.ErrNotFound)
	}
	if crc32.Checksum(data, crcTable) != s.crcs[key] {
		return fmt.Errorf("storage: block %s: %w", b.ID, core.ErrCorrupt)
	}
	return nil
}

// Open implements Store.
func (s *MemStore) Open(b core.Block) (io.ReadCloser, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	data, ok := s.blocks[blockKey{b.ID, b.GenStamp}]
	if !ok {
		return nil, fmt.Errorf("storage: block %s: %w", b.ID, core.ErrNotFound)
	}
	return memReader{bytes.NewReader(data)}, nil
}

// memReader is the memory store's block reader. Unlike io.NopCloser
// it keeps the underlying *bytes.Reader's io.Seeker and io.WriterTo
// visible, so range reads seek instead of discard-copying and whole
// copies skip the staging buffer.
type memReader struct{ *bytes.Reader }

func (memReader) Close() error { return nil }

// Delete implements Store.
func (s *MemStore) Delete(b core.Block) error {
	key := blockKey{b.ID, b.GenStamp}
	s.mu.Lock()
	defer s.mu.Unlock()
	data, ok := s.blocks[key]
	if !ok {
		return fmt.Errorf("storage: block %s: %w", b.ID, core.ErrNotFound)
	}
	s.used -= int64(len(data))
	delete(s.blocks, key)
	delete(s.crcs, key)
	return nil
}

// Has implements Store.
func (s *MemStore) Has(b core.Block) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.blocks[blockKey{b.ID, b.GenStamp}]
	return ok
}

// Blocks implements Store.
func (s *MemStore) Blocks() []core.Block {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]core.Block, 0, len(s.blocks))
	for k, data := range s.blocks {
		out = append(out, core.Block{ID: k.id, GenStamp: k.gen, NumBytes: int64(len(data))})
	}
	sortBlocks(out)
	return out
}

// Used implements Store.
func (s *MemStore) Used() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.used
}

// Close implements Store, dropping all content.
func (s *MemStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.blocks = make(map[blockKey][]byte)
	s.used = 0
	s.closed = true
	return nil
}

// DiskStore is a directory-backed block store. Each replica lives in
// one file named "blk_<id>_<gen>", so the store can be rebuilt from
// the directory listing on worker restart.
type DiskStore struct {
	dir string

	mu     sync.RWMutex
	sizes  map[blockKey]int64
	used   int64
	closed bool
}

// NewDiskStore opens (creating if needed) a directory-backed store and
// indexes any replica files already present.
func NewDiskStore(dir string) (*DiskStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("storage: creating block directory: %w", err)
	}
	s := &DiskStore{dir: dir, sizes: make(map[blockKey]int64)}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("storage: listing block directory: %w", err)
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".crc") {
			continue // checksum sidecar
		}
		var id, gen uint64
		if _, err := fmt.Sscanf(e.Name(), "blk_%d_%d", &id, &gen); err != nil {
			continue // foreign file; leave it alone
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		key := blockKey{core.BlockID(id), core.GenerationStamp(gen)}
		s.sizes[key] = info.Size()
		s.used += info.Size()
	}
	return s, nil
}

// Dir returns the store's backing directory.
func (s *DiskStore) Dir() string { return s.dir }

func (s *DiskStore) path(b core.Block) string {
	return filepath.Join(s.dir, fmt.Sprintf("blk_%d_%d", uint64(b.ID), uint64(b.GenStamp)))
}

func (s *DiskStore) crcPath(b core.Block) string {
	return s.path(b) + ".crc"
}

// Put implements Store. The content is written to a temporary file and
// renamed into place so that a crash mid-write never leaves a
// truncated replica that could be mistaken for a valid one.
func (s *DiskStore) Put(b core.Block, r io.Reader) (int64, error) {
	s.mu.RLock()
	closed := s.closed
	s.mu.RUnlock()
	if closed {
		return 0, core.ErrShutdown
	}
	tmp, err := os.CreateTemp(s.dir, ".tmp-blk-*")
	if err != nil {
		return 0, fmt.Errorf("storage: creating temp block file: %w", err)
	}
	tmpName := tmp.Name()
	h := crc32.New(crcTable)
	n, err := io.Copy(io.MultiWriter(tmp, h), r)
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmpName)
		return 0, fmt.Errorf("storage: writing block %s: %w", b.ID, err)
	}
	if err := os.WriteFile(s.crcPath(b), fmt.Appendf(nil, "%08x", h.Sum32()), 0o644); err != nil {
		os.Remove(tmpName)
		return 0, fmt.Errorf("storage: writing block checksum: %w", err)
	}
	if err := os.Rename(tmpName, s.path(b)); err != nil {
		os.Remove(tmpName)
		return 0, fmt.Errorf("storage: committing block %s: %w", b.ID, err)
	}
	key := blockKey{b.ID, b.GenStamp}
	s.mu.Lock()
	if old, ok := s.sizes[key]; ok {
		s.used -= old
	}
	s.sizes[key] = n
	s.used += n
	s.mu.Unlock()
	return n, nil
}

// Open implements Store.
func (s *DiskStore) Open(b core.Block) (io.ReadCloser, error) {
	f, err := os.Open(s.path(b))
	if os.IsNotExist(err) {
		return nil, fmt.Errorf("storage: block %s: %w", b.ID, core.ErrNotFound)
	}
	if err != nil {
		return nil, fmt.Errorf("storage: opening block %s: %w", b.ID, err)
	}
	return f, nil
}

// Delete implements Store.
func (s *DiskStore) Delete(b core.Block) error {
	key := blockKey{b.ID, b.GenStamp}
	s.mu.Lock()
	size, ok := s.sizes[key]
	if ok {
		delete(s.sizes, key)
		s.used -= size
	}
	s.mu.Unlock()
	err := os.Remove(s.path(b))
	os.Remove(s.crcPath(b)) // best-effort sidecar cleanup
	if os.IsNotExist(err) || (!ok && err == nil) {
		if !ok {
			return fmt.Errorf("storage: block %s: %w", b.ID, core.ErrNotFound)
		}
		return nil
	}
	return err
}

// Verify implements Store by recomputing the file's CRC-32C and
// comparing it with the sidecar recorded at Put time. Replicas that
// predate checksum support (no sidecar) verify trivially.
func (s *DiskStore) Verify(b core.Block) error {
	want, err := os.ReadFile(s.crcPath(b))
	if os.IsNotExist(err) {
		if s.Has(b) {
			return nil
		}
		return fmt.Errorf("storage: block %s: %w", b.ID, core.ErrNotFound)
	}
	if err != nil {
		return fmt.Errorf("storage: reading block checksum: %w", err)
	}
	f, err := os.Open(s.path(b))
	if err != nil {
		return fmt.Errorf("storage: block %s: %w", b.ID, core.ErrNotFound)
	}
	defer f.Close()
	h := crc32.New(crcTable)
	if _, err := io.Copy(h, f); err != nil {
		return fmt.Errorf("storage: checksumming block %s: %w", b.ID, err)
	}
	if got := fmt.Sprintf("%08x", h.Sum32()); got != string(want) {
		return fmt.Errorf("storage: block %s checksum %s != %s: %w", b.ID, got, want, core.ErrCorrupt)
	}
	return nil
}

// Has implements Store.
func (s *DiskStore) Has(b core.Block) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.sizes[blockKey{b.ID, b.GenStamp}]
	return ok
}

// Blocks implements Store.
func (s *DiskStore) Blocks() []core.Block {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]core.Block, 0, len(s.sizes))
	for k, size := range s.sizes {
		out = append(out, core.Block{ID: k.id, GenStamp: k.gen, NumBytes: size})
	}
	sortBlocks(out)
	return out
}

// Used implements Store.
func (s *DiskStore) Used() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.used
}

// Close implements Store. On-disk content is preserved.
func (s *DiskStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	return nil
}

// readAllSized reads r to EOF like io.ReadAll but pre-sizes the buffer
// from the declared block length, avoiding the growth-doubling copies
// that dominate large in-memory writes.
func readAllSized(r io.Reader, sizeHint int64) ([]byte, error) {
	capHint := int(sizeHint)
	if capHint < 512 {
		capHint = 512
	}
	buf := make([]byte, 0, capHint)
	for {
		if len(buf) == cap(buf) {
			buf = append(buf, 0)[:len(buf)] // grow
		}
		n, err := r.Read(buf[len(buf):cap(buf)])
		buf = buf[:len(buf)+n]
		if err == io.EOF {
			return buf, nil
		}
		if err != nil {
			return buf, err
		}
	}
}

func sortBlocks(bs []core.Block) {
	sort.Slice(bs, func(i, j int) bool {
		if bs[i].ID != bs[j].ID {
			return bs[i].ID < bs[j].ID
		}
		return bs[i].GenStamp < bs[j].GenStamp
	})
}

// TierFromKind maps a media kind string from worker configuration
// ("memory", "ssd", "hdd", "remote") to its storage tier.
func TierFromKind(kind string) (core.StorageTier, error) {
	t, err := core.ParseTier(strings.TrimSpace(kind))
	if err != nil || !t.Valid() {
		return 0, fmt.Errorf("storage: invalid media kind %q", kind)
	}
	return t, nil
}
