package storage

import (
	"bytes"
	"fmt"
	"io"
	"math"
	"sync/atomic"
	"time"

	"repro/internal/bufpool"
	"repro/internal/core"
)

// MediaConfig describes one storage media attached to a worker.
type MediaConfig struct {
	// ID uniquely identifies the media within the cluster, e.g.
	// "worker1:hdd0". The worker prefixes its own ID when empty.
	ID core.StorageID

	// Tier is the media's storage tier.
	Tier core.StorageTier

	// Capacity is the number of bytes OctopusFS may use on this media
	// (paper §7: e.g. 4 GB memory, 64 GB SSD, 400 GB HDD per worker).
	Capacity int64

	// Dir is the backing directory for non-memory tiers. Memory-tier
	// media ignore it and use an in-memory store.
	Dir string

	// WriteMBps / ReadMBps optionally throttle the media to emulate a
	// device with these sustained throughputs. Zero means unthrottled.
	WriteMBps float64
	ReadMBps  float64

	// AdvertiseWriteMBps / AdvertiseReadMBps seed the throughput the
	// media reports before (or instead of) a startup probe. When zero,
	// the throttle rates are advertised. Useful for unthrottled test
	// media that should still expose realistic tier speeds to the
	// policies.
	AdvertiseWriteMBps float64
	AdvertiseReadMBps  float64
}

// Media is one storage media instance managed by a worker: a block
// store plus capacity accounting, connection tracking, and measured
// throughput.
type Media struct {
	id    core.StorageID
	tier  core.StorageTier
	cap   int64
	store Store

	writeLimit *RateLimiter
	readLimit  *RateLimiter

	conns atomic.Int64

	// measured sustained throughputs from the startup probe, MB/s
	writeMBps atomic.Uint64 // math.Float64bits
	readMBps  atomic.Uint64
}

// OpenMedia builds a Media from its configuration: an in-memory store
// for the memory tier, a directory store otherwise.
func OpenMedia(cfg MediaConfig) (*Media, error) {
	if cfg.Capacity <= 0 {
		return nil, fmt.Errorf("storage: media %s: capacity must be positive", cfg.ID)
	}
	var store Store
	if cfg.Tier == core.TierMemory {
		store = NewMemStore()
	} else {
		if cfg.Dir == "" {
			return nil, fmt.Errorf("storage: media %s: tier %v requires a directory", cfg.ID, cfg.Tier)
		}
		ds, err := NewDiskStore(cfg.Dir)
		if err != nil {
			return nil, err
		}
		store = ds
	}
	m := &Media{
		id:         cfg.ID,
		tier:       cfg.Tier,
		cap:        cfg.Capacity,
		store:      store,
		writeLimit: NewRateLimiter(cfg.WriteMBps * 1e6),
		readLimit:  NewRateLimiter(cfg.ReadMBps * 1e6),
	}
	advW, advR := cfg.AdvertiseWriteMBps, cfg.AdvertiseReadMBps
	if advW == 0 {
		advW = cfg.WriteMBps
	}
	if advR == 0 {
		advR = cfg.ReadMBps
	}
	m.setThroughput(advW, advR)
	return m, nil
}

// ID returns the media's cluster-unique identifier.
func (m *Media) ID() core.StorageID { return m.id }

// Tier returns the media's storage tier.
func (m *Media) Tier() core.StorageTier { return m.tier }

// Capacity returns the bytes OctopusFS may store on this media.
func (m *Media) Capacity() int64 { return m.cap }

// Used returns the bytes currently stored.
func (m *Media) Used() int64 { return m.store.Used() }

// Remaining returns Capacity − Used, floored at zero.
func (m *Media) Remaining() int64 {
	r := m.cap - m.store.Used()
	if r < 0 {
		return 0
	}
	return r
}

// Connections returns the number of active I/O connections, the
// NrConn[m] statistic reported in heartbeats (paper §3.2).
func (m *Media) Connections() int { return int(m.conns.Load()) }

// WriteThruMBps returns the measured sustained write throughput.
func (m *Media) WriteThruMBps() float64 {
	return float64FromBits(m.writeMBps.Load())
}

// ReadThruMBps returns the measured sustained read throughput.
func (m *Media) ReadThruMBps() float64 {
	return float64FromBits(m.readMBps.Load())
}

func (m *Media) setThroughput(w, r float64) {
	m.writeMBps.Store(float64Bits(w))
	m.readMBps.Store(float64Bits(r))
}

// IOStats receives one stream's media I/O attribution, for the
// transfer flight recorder. All fields are nanoseconds on the
// stream's own critical path — unlike the limiter's cross-stream
// Stats total, these are exact per stream. ThrottleWaitNs is time
// the emulated pacing slept this stream. DeviceNs is store device
// time: read time under a throttled Open, or the Put residual after
// source-wait and throttle are subtracted. SourceNs (Put only) is
// time the store spent waiting on the supplied reader — the network
// or pipe feeding the write.
type IOStats struct {
	ThrottleWaitNs int64
	DeviceNs       int64
	SourceNs       int64
}

// timedReader accumulates time spent inside Read into *ns.
type timedReader struct {
	r  io.Reader
	ns *int64
}

func (t *timedReader) Read(p []byte) (int, error) {
	start := time.Now()
	n, err := t.r.Read(p)
	*t.ns += time.Since(start).Nanoseconds()
	return n, err
}

// WriteTo implements io.WriterTo through one pooled staging buffer,
// timing only the inner reads so the accumulated phase never exceeds
// the stream's wall time.
func (t *timedReader) WriteTo(w io.Writer) (int64, error) {
	buf, _ := bufpool.Get(32 << 10)
	defer bufpool.Put(buf)
	var total int64
	for {
		start := time.Now()
		n, err := t.r.Read(buf)
		*t.ns += time.Since(start).Nanoseconds()
		if n > 0 {
			m, werr := w.Write(buf[:n])
			total += int64(m)
			if werr != nil {
				return total, werr
			}
			if m < n {
				return total, io.ErrShortWrite
			}
		}
		if err == io.EOF {
			return total, nil
		}
		if err != nil {
			return total, err
		}
	}
}

// Put stores a block replica, throttled at the media's write rate, and
// counted as an active connection for its duration. ErrNoSpace is
// returned when the content would exceed the media's capacity.
func (m *Media) Put(b core.Block, r io.Reader) (int64, error) {
	return m.PutStats(b, r, nil)
}

// PutStats is Put recording the stream's throttle, device, and
// source-wait attribution into st (which may be nil).
func (m *Media) PutStats(b core.Block, r io.Reader, st *IOStats) (int64, error) {
	if st == nil {
		st = &IOStats{}
	}
	if b.NumBytes > 0 && b.NumBytes > m.Remaining() && !m.store.Has(b) {
		return 0, fmt.Errorf("storage: media %s: %w", m.id, core.ErrNoSpace)
	}
	m.conns.Add(1)
	defer m.conns.Add(-1)
	src := LimitReaderStats(&timedReader{r: r, ns: &st.SourceNs}, m.writeLimit, &st.ThrottleWaitNs)
	start := time.Now()
	n, err := m.store.Put(b, src)
	if d := time.Since(start).Nanoseconds() - st.SourceNs - st.ThrottleWaitNs; d > 0 {
		st.DeviceNs = d
	}
	if err != nil {
		return n, err
	}
	if m.store.Used() > m.cap {
		// The writer lied about NumBytes; roll back.
		m.store.Delete(b)
		return 0, fmt.Errorf("storage: media %s: %w", m.id, core.ErrNoSpace)
	}
	return n, nil
}

// Open returns a throttled reader over a stored replica. The media's
// connection count stays elevated until the reader is closed.
func (m *Media) Open(b core.Block) (io.ReadCloser, error) {
	return m.OpenStats(b, nil)
}

// OpenStats is Open recording the stream's device read time and
// throttle sleep into st (which may be nil) as the replica is
// consumed.
func (m *Media) OpenStats(b core.Block, st *IOStats) (io.ReadCloser, error) {
	return m.OpenRangeStats(b, 0, st)
}

// OpenRangeStats is OpenStats starting at offset bytes into the
// replica. When the store's reader can seek (disk files, memory
// readers), the skipped prefix is never read — and thus neither
// throttled nor charged as device time; otherwise it is discarded on
// the raw store reader before the throttle wrapper is applied.
func (m *Media) OpenRangeStats(b core.Block, offset int64, st *IOStats) (io.ReadCloser, error) {
	if st == nil {
		st = &IOStats{}
	}
	rc, err := m.store.Open(b)
	if err != nil {
		return nil, err
	}
	if offset > 0 {
		if sk, ok := rc.(io.Seeker); ok {
			_, err = sk.Seek(offset, io.SeekStart)
		} else {
			_, err = io.CopyN(io.Discard, rc, offset)
		}
		if err != nil {
			rc.Close()
			return nil, fmt.Errorf("storage: block %s: seeking to %d: %w", b.ID, offset, err)
		}
	}
	m.conns.Add(1)
	r := LimitReaderStats(&timedReader{r: rc, ns: &st.DeviceNs}, m.readLimit, &st.ThrottleWaitNs)
	return &connTrackingReadCloser{
		ReadCloser: readerWithCloser{r, rc},
		conns:      &m.conns,
	}, nil
}

// readerWithCloser pairs a wrapped read path with the store reader's
// Close.
type readerWithCloser struct {
	io.Reader
	io.Closer
}

// WriteLimit returns the media's write-side throttle (nil when
// unthrottled), so telemetry can surface emulated-device pacing.
func (m *Media) WriteLimit() *RateLimiter { return m.writeLimit }

// ReadLimit returns the media's read-side throttle (nil when
// unthrottled).
func (m *Media) ReadLimit() *RateLimiter { return m.readLimit }

// Verify recomputes a stored replica's checksum against the one
// recorded at write time, returning core.ErrCorrupt on mismatch.
// Verification bypasses the throughput throttle and connection
// accounting: it models a local scrub, not a served read.
func (m *Media) Verify(b core.Block) error { return m.store.Verify(b) }

// Delete removes a stored replica.
func (m *Media) Delete(b core.Block) error { return m.store.Delete(b) }

// Has reports whether the media holds a replica of the block.
func (m *Media) Has(b core.Block) bool { return m.store.Has(b) }

// Blocks lists the stored replicas.
func (m *Media) Blocks() []core.Block { return m.store.Blocks() }

// Close shuts the media down.
func (m *Media) Close() error { return m.store.Close() }

// connTrackingReadCloser decrements the connection counter once on
// Close, tolerating double-Close.
type connTrackingReadCloser struct {
	io.ReadCloser
	conns  *atomic.Int64
	closed atomic.Bool
}

func (c *connTrackingReadCloser) Close() error {
	if c.closed.CompareAndSwap(false, true) {
		c.conns.Add(-1)
	}
	return c.ReadCloser.Close()
}

// Probe measures the media's sustained write and read throughput by
// writing and reading back a probe block of the given size, mirroring
// the short I/O-intensive test each worker runs at launch (paper
// §3.2). The measured values are stored on the media and returned in
// MB/s. The probe block is deleted afterwards.
func (m *Media) Probe(probeBytes int64) (writeMBps, readMBps float64, err error) {
	if probeBytes <= 0 {
		probeBytes = 4 << 20
	}
	if probeBytes > m.Remaining() {
		probeBytes = m.Remaining() / 2
	}
	if probeBytes < 1<<16 {
		return 0, 0, fmt.Errorf("storage: media %s: not enough space to probe", m.id)
	}
	probe := core.Block{ID: 0, GenStamp: 0, NumBytes: probeBytes}
	data, _ := bufpool.Get(int(probeBytes))
	defer bufpool.Put(data)
	// Fill with a non-trivial pattern quickly (doubling copy).
	for i := 0; i < 256; i++ {
		data[i] = byte(i*31 + 7)
	}
	for filled := 256; filled < len(data); filled *= 2 {
		copy(data[filled:], data[:filled])
	}

	start := time.Now()
	if _, err := m.Put(probe, bytes.NewReader(data)); err != nil {
		return 0, 0, fmt.Errorf("storage: probe write: %w", err)
	}
	writeMBps = float64(probeBytes) / 1e6 / time.Since(start).Seconds()

	start = time.Now()
	rc, err := m.Open(probe)
	if err != nil {
		return 0, 0, fmt.Errorf("storage: probe read: %w", err)
	}
	_, err = io.Copy(io.Discard, rc)
	rc.Close()
	if err != nil {
		return 0, 0, fmt.Errorf("storage: probe read: %w", err)
	}
	readMBps = float64(probeBytes) / 1e6 / time.Since(start).Seconds()

	if err := m.Delete(probe); err != nil {
		return 0, 0, fmt.Errorf("storage: probe cleanup: %w", err)
	}
	m.setThroughput(writeMBps, readMBps)
	return writeMBps, readMBps, nil
}

func float64Bits(f float64) uint64     { return math.Float64bits(f) }
func float64FromBits(b uint64) float64 { return math.Float64frombits(b) }
