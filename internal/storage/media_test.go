package storage

import (
	"bytes"
	"errors"
	"io"
	"math"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
)

func testMedia(t *testing.T, tier core.StorageTier, capBytes int64, writeMBps, readMBps float64) *Media {
	t.Helper()
	cfg := MediaConfig{
		ID:        "w1:test0",
		Tier:      tier,
		Capacity:  capBytes,
		WriteMBps: writeMBps,
		ReadMBps:  readMBps,
	}
	if tier != core.TierMemory {
		cfg.Dir = t.TempDir()
	}
	m, err := OpenMedia(cfg)
	if err != nil {
		t.Fatalf("OpenMedia: %v", err)
	}
	return m
}

func TestOpenMediaValidation(t *testing.T) {
	if _, err := OpenMedia(MediaConfig{Tier: core.TierMemory, Capacity: 0}); err == nil {
		t.Error("zero capacity accepted")
	}
	if _, err := OpenMedia(MediaConfig{Tier: core.TierHDD, Capacity: 100}); err == nil {
		t.Error("disk media without directory accepted")
	}
}

func TestMediaCapacityAccounting(t *testing.T) {
	m := testMedia(t, core.TierMemory, 1000, 0, 0)
	b := core.Block{ID: 1, GenStamp: 1, NumBytes: 600}
	if _, err := m.Put(b, bytes.NewReader(make([]byte, 600))); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if got := m.Used(); got != 600 {
		t.Errorf("Used = %d, want 600", got)
	}
	if got := m.Remaining(); got != 400 {
		t.Errorf("Remaining = %d, want 400", got)
	}
	// Second block over capacity must be rejected up front.
	b2 := core.Block{ID: 2, GenStamp: 1, NumBytes: 600}
	if _, err := m.Put(b2, bytes.NewReader(make([]byte, 600))); !errors.Is(err, core.ErrNoSpace) {
		t.Errorf("over-capacity Put err = %v, want ErrNoSpace", err)
	}
	if m.Has(b2) {
		t.Error("rejected block was stored")
	}
}

func TestMediaRejectsUnderdeclaredSize(t *testing.T) {
	m := testMedia(t, core.TierMemory, 1000, 0, 0)
	// Block claims 100 bytes but streams 2000: must be rolled back.
	b := core.Block{ID: 1, GenStamp: 1, NumBytes: 100}
	if _, err := m.Put(b, bytes.NewReader(make([]byte, 2000))); !errors.Is(err, core.ErrNoSpace) {
		t.Errorf("lying Put err = %v, want ErrNoSpace", err)
	}
	if m.Used() != 0 {
		t.Errorf("Used = %d after rollback, want 0", m.Used())
	}
}

func TestMediaConnectionTracking(t *testing.T) {
	m := testMedia(t, core.TierMemory, 1<<20, 0, 0)
	b := core.Block{ID: 1, GenStamp: 1, NumBytes: 10}
	if _, err := m.Put(b, bytes.NewReader(make([]byte, 10))); err != nil {
		t.Fatal(err)
	}
	if got := m.Connections(); got != 0 {
		t.Fatalf("idle Connections = %d, want 0", got)
	}
	rc1, err := m.Open(b)
	if err != nil {
		t.Fatal(err)
	}
	rc2, err := m.Open(b)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Connections(); got != 2 {
		t.Errorf("Connections with 2 open readers = %d, want 2", got)
	}
	rc1.Close()
	rc1.Close() // double close must not double-decrement
	if got := m.Connections(); got != 1 {
		t.Errorf("Connections after closing one = %d, want 1", got)
	}
	rc2.Close()
	if got := m.Connections(); got != 0 {
		t.Errorf("Connections after closing all = %d, want 0", got)
	}
}

func TestMediaThrottledThroughput(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive")
	}
	// 8 MB/s write throttle, 2 MB payload => ~250ms minimum.
	m := testMedia(t, core.TierMemory, 64<<20, 8, 0)
	payload := make([]byte, 2<<20)
	b := core.Block{ID: 1, GenStamp: 1, NumBytes: int64(len(payload))}
	start := time.Now()
	if _, err := m.Put(b, bytes.NewReader(payload)); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	rate := float64(len(payload)) / 1e6 / elapsed.Seconds()
	if rate > 12 { // generous upper bound: throttle must bite
		t.Errorf("throttled write ran at %.1f MB/s, want ~8", rate)
	}
}

func TestMediaProbeMeasuresThrottleRate(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive")
	}
	m := testMedia(t, core.TierMemory, 64<<20, 20, 40)
	w, r, err := m.Probe(4 << 20)
	if err != nil {
		t.Fatalf("Probe: %v", err)
	}
	if w < 10 || w > 30 {
		t.Errorf("probed write throughput = %.1f MB/s, want ~20", w)
	}
	if r < 20 || r > 60 {
		t.Errorf("probed read throughput = %.1f MB/s, want ~40", r)
	}
	if got := m.WriteThruMBps(); math.Abs(got-w) > 1e-9 {
		t.Errorf("WriteThruMBps = %v, want stored probe value %v", got, w)
	}
	// Probe must clean up after itself.
	if m.Used() != 0 {
		t.Errorf("Used = %d after probe, want 0", m.Used())
	}
}

func TestMediaProbeTooSmall(t *testing.T) {
	m := testMedia(t, core.TierMemory, 1<<16, 0, 0)
	if _, _, err := m.Probe(1 << 20); err == nil {
		t.Error("Probe on tiny media: got nil error")
	}
}

func TestMediaDiskBacked(t *testing.T) {
	m := testMedia(t, core.TierHDD, 1<<20, 0, 0)
	data := []byte("on disk")
	b := core.Block{ID: 3, GenStamp: 7, NumBytes: int64(len(data))}
	if _, err := m.Put(b, bytes.NewReader(data)); err != nil {
		t.Fatal(err)
	}
	rc, err := m.Open(b)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := io.ReadAll(rc)
	rc.Close()
	if !bytes.Equal(got, data) {
		t.Errorf("disk media content = %q, want %q", got, data)
	}
	if err := m.Delete(b); err != nil {
		t.Fatal(err)
	}
	if len(m.Blocks()) != 0 {
		t.Error("Blocks() non-empty after delete")
	}
}

func TestRateLimiterSharedAcrossConcurrentWriters(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive")
	}
	// Two concurrent 1MB writes through one 8 MB/s limiter must take
	// about 2MB/8MBps = 250ms total, i.e. the rate is shared.
	l := NewRateLimiter(8e6)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r := LimitReader(bytes.NewReader(make([]byte, 1<<20)), l)
			io.Copy(io.Discard, r)
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	aggregate := 2.0 * (1 << 20) / 1e6 / elapsed.Seconds()
	if aggregate > 12 {
		t.Errorf("aggregate rate %.1f MB/s exceeds shared 8 MB/s limit", aggregate)
	}
}

func TestNilRateLimiterIsUnlimited(t *testing.T) {
	var l *RateLimiter
	l.Wait(1 << 30) // must not block or panic
	if l.Rate() != 0 {
		t.Error("nil limiter Rate() != 0")
	}
	r := LimitReader(bytes.NewReader([]byte("abc")), nil)
	got, _ := io.ReadAll(r)
	if string(got) != "abc" {
		t.Error("nil limiter altered data")
	}
}
