package rpc

import (
	"bytes"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
)

// resetPool isolates a test from the process-wide data pool: idle
// conns from other tests are dropped and the default configuration is
// restored afterwards.
func resetPool(t *testing.T) {
	t.Helper()
	ResetDataPool()
	SetDataPool(DefaultDataPoolSize, DefaultDataPoolIdle)
	t.Cleanup(func() {
		ResetDataPool()
		SetDataPool(DefaultDataPoolSize, DefaultDataPoolIdle)
	})
}

// fakeDataServer speaks just enough of the data protocol for pool
// tests: it serves OpReadBlock exchanges on persistent connections and
// counts accepts, so a test can tell reuse from re-dialling.
type fakeDataServer struct {
	t       *testing.T
	payload []byte

	mu      sync.Mutex
	ln      net.Listener
	conns   []net.Conn
	accepts atomic.Int32
}

func startFakeDataServer(t *testing.T, payload []byte) *fakeDataServer {
	t.Helper()
	s := &fakeDataServer{t: t, payload: payload}
	s.listen("127.0.0.1:0")
	t.Cleanup(s.Stop)
	return s
}

func (s *fakeDataServer) listen(addr string) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		s.t.Fatalf("fake data server listen %s: %v", addr, err)
	}
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			s.accepts.Add(1)
			s.mu.Lock()
			s.conns = append(s.conns, conn)
			s.mu.Unlock()
			go s.serve(conn)
		}
	}()
}

func (s *fakeDataServer) serve(conn net.Conn) {
	defer conn.Close()
	var op [1]byte
	for {
		if _, err := io.ReadFull(conn, op[:]); err != nil {
			return // client closed or went away: conn retired
		}
		if op[0] != OpReadBlock {
			return
		}
		var hdr ReadBlockHeader
		if _, err := ReadFrameEx(conn, &hdr); err != nil {
			return
		}
		if err := WriteFrame(conn, ReadBlockResponse{Length: int64(len(s.payload))}); err != nil {
			return
		}
		pw := NewPacketWriter(conn)
		_, werr := pw.Write(s.payload)
		cerr := pw.Close()
		pw.Release()
		if werr != nil || cerr != nil {
			return
		}
	}
}

func (s *fakeDataServer) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ln.Addr().String()
}

// Stop closes the listener and every live connection — from a
// client's perspective, the worker process died.
func (s *fakeDataServer) Stop() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln != nil {
		s.ln.Close()
	}
	for _, c := range s.conns {
		c.Close()
	}
	s.conns = nil
}

// readOnce performs one full block-read exchange and reports whether
// it reused a pooled connection.
func (s *fakeDataServer) readOnce(t *testing.T) bool {
	t.Helper()
	var tm TransferTiming
	block := core.Block{ID: 1, GenStamp: 1, NumBytes: int64(len(s.payload))}
	rc, n, err := OpenBlockReaderTimed(s.Addr(), block, "w1:mem0", 0, -1, "", "", &tm)
	if err != nil {
		t.Fatalf("OpenBlockReader: %v", err)
	}
	got, err := io.ReadAll(rc)
	if cerr := rc.Close(); cerr != nil {
		t.Fatalf("Close: %v", cerr)
	}
	if err != nil || n != int64(len(s.payload)) || !bytes.Equal(got, s.payload) {
		t.Fatalf("read exchange corrupt: n=%d err=%v got=%d bytes", n, err, len(got))
	}
	return tm.PoolHit
}

// TestPoolReuseAcrossTransfers: the second and later transfers to the
// same worker must ride the pooled connection — one TCP accept total,
// pool hits reported per transfer.
func TestPoolReuseAcrossTransfers(t *testing.T) {
	resetPool(t)
	payload := bytes.Repeat([]byte("octopus"), 4096)
	s := startFakeDataServer(t, payload)

	for i := 0; i < 3; i++ {
		hit := s.readOnce(t)
		if i == 0 && hit {
			t.Error("first transfer reported a pool hit")
		}
		if i > 0 && !hit {
			t.Errorf("transfer %d did not reuse the pooled connection", i)
		}
	}
	if got := s.accepts.Load(); got != 1 {
		t.Errorf("server accepted %d connections over 3 transfers, want 1", got)
	}
}

// TestWorkerRestartInvalidatesPool: a pooled connection whose worker
// restarted must be discarded by the checkout health check (or retried
// over a fresh dial), never surface an error to the caller.
func TestWorkerRestartInvalidatesPool(t *testing.T) {
	resetPool(t)
	payload := bytes.Repeat([]byte("block"), 1024)
	s := startFakeDataServer(t, payload)
	addr := s.Addr()

	if s.readOnce(t) {
		t.Fatal("first transfer reported a pool hit")
	}

	// "Restart" the worker: kill listener and conns, re-listen on the
	// same address. The pooled conn is now a dead socket.
	s.Stop()
	s.listen(addr)
	// Let the FIN reach the pooled socket so the health check can see it.
	time.Sleep(50 * time.Millisecond)

	before := DataPoolStats()
	if s.readOnce(t) {
		t.Error("transfer against the restarted worker reported a pool hit")
	}
	after := DataPoolStats()
	if after.Discards+after.Stale == before.Discards+before.Stale {
		t.Errorf("dead pooled conn neither discarded nor retried: before=%+v after=%+v", before, after)
	}
	if got := s.accepts.Load(); got < 1 {
		t.Errorf("restarted server accepted %d connections, want >= 1", got)
	}
}

// tcpPair returns a client-side deadlineConn (pool-keyed to key) and
// its server-side peer.
func tcpPair(t *testing.T, key string) (*deadlineConn, net.Conn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	ch := make(chan net.Conn, 1)
	go func() {
		c, _ := ln.Accept()
		ch <- c
	}()
	c, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	srv := <-ch
	if srv == nil {
		t.Fatal("accept failed")
	}
	t.Cleanup(func() { c.Close(); srv.Close() })
	return &deadlineConn{Conn: c, lastAddr: key}, srv
}

// TestPoolIdleCapEvicts: the per-address idle list is bounded; a put
// beyond the cap closes the conn instead of growing the list.
func TestPoolIdleCapEvicts(t *testing.T) {
	p := NewConnPool(2, time.Minute)
	defer p.Clear()
	var dcs []*deadlineConn
	for i := 0; i < 3; i++ {
		dc, _ := tcpPair(t, "worker:1")
		dcs = append(dcs, dc)
		p.put(dc)
	}
	if n := p.idleCount(); n != 2 {
		t.Errorf("idle count = %d, want cap 2", n)
	}
	if !dcs[2].closed {
		t.Error("conn over the idle cap was pooled, not closed")
	}
	if s := p.stats(); s.Returns != 2 || s.Expired != 1 {
		t.Errorf("stats = %+v, want 2 returns / 1 expired", s)
	}
	// LIFO: the newest pooled conn comes back first.
	if got := p.take("worker:1"); got != dcs[1] {
		t.Error("take did not return the newest idle conn")
	}
}

// TestPoolAgeExpiry: idle conns past the max age are retired at
// checkout, forcing a fresh dial.
func TestPoolAgeExpiry(t *testing.T) {
	p := NewConnPool(2, 10*time.Millisecond)
	defer p.Clear()
	dc, _ := tcpPair(t, "worker:1")
	p.put(dc)
	time.Sleep(30 * time.Millisecond)
	if got := p.take("worker:1"); got != nil {
		t.Error("expired idle conn handed out")
	}
	if s := p.stats(); s.Expired != 1 {
		t.Errorf("stats = %+v, want 1 expired", s)
	}
	if !dc.closed {
		t.Error("expired conn left open")
	}
}

// TestPoolDiscardsDeadConn: a pooled conn whose peer closed it must
// fail the checkout health check.
func TestPoolDiscardsDeadConn(t *testing.T) {
	p := NewConnPool(2, time.Minute)
	defer p.Clear()
	dc, srv := tcpPair(t, "worker:1")
	p.put(dc)
	srv.Close()
	// Wait for the FIN to land so MSG_PEEK observes the close.
	deadline := time.Now().Add(time.Second)
	for connAlive(dc.Conn) && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := p.take("worker:1"); got != nil {
		t.Fatal("dead idle conn handed out")
	}
	if s := p.stats(); s.Discards != 1 {
		t.Errorf("stats = %+v, want 1 discard", s)
	}
}

// TestPoolDisabled: maxIdle <= 0 turns the pool off — every take
// misses and every put closes.
func TestPoolDisabled(t *testing.T) {
	p := NewConnPool(0, time.Minute)
	dc, _ := tcpPair(t, "worker:1")
	p.put(dc)
	if !dc.closed {
		t.Error("disabled pool kept a conn")
	}
	if got := p.take("worker:1"); got != nil {
		t.Error("disabled pool handed out a conn")
	}
}

// TestPoolConcurrentCheckout hammers take/put from many goroutines;
// run under -race it proves the pool's locking. Conns come from one
// accept-and-hold server.
func TestPoolConcurrentCheckout(t *testing.T) {
	p := NewConnPool(4, time.Minute)
	defer p.Clear()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	var held []net.Conn
	var heldMu sync.Mutex
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			heldMu.Lock()
			held = append(held, c)
			heldMu.Unlock()
		}
	}()
	defer func() {
		heldMu.Lock()
		for _, c := range held {
			c.Close()
		}
		heldMu.Unlock()
	}()

	addr := ln.Addr().String()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				dc := p.take(addr)
				if dc == nil {
					c, err := net.Dial("tcp", addr)
					if err != nil {
						t.Error(err)
						return
					}
					dc = &deadlineConn{Conn: c, lastAddr: addr}
				}
				p.put(dc)
			}
		}()
	}
	wg.Wait()
	s := p.stats()
	if s.Hits == 0 {
		t.Error("concurrent checkout never hit the pool")
	}
	if n := p.idleCount(); n > 4 {
		t.Errorf("idle count %d exceeds cap", n)
	}
}
