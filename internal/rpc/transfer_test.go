package rpc

import (
	"errors"
	"io"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
)

// shortTransferTimeout shrinks the rolling transfer deadline for the
// duration of a test.
func shortTransferTimeout(t *testing.T, d time.Duration) {
	t.Helper()
	old := TransferTimeout()
	SetTransferTimeout(d)
	t.Cleanup(func() { SetTransferTimeout(old) })
}

// TestReadDeadlineHungWorker: a worker that accepts the connection
// and then never responds must surface a timeout instead of stalling
// the read forever (only the dial had a deadline before).
func TestReadDeadlineHungWorker(t *testing.T) {
	shortTransferTimeout(t, 200*time.Millisecond)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	hung := make(chan net.Conn, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		hung <- conn // hold the connection open, read and write nothing
	}()
	defer func() {
		select {
		case conn := <-hung:
			conn.Close()
		default:
		}
	}()

	start := time.Now()
	_, _, err = OpenBlockReader(ln.Addr().String(), core.Block{ID: 1, NumBytes: 64}, "s0", 0, -1)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("open against a hung worker succeeded")
	}
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Errorf("err = %v, want a timeout", err)
	}
	if elapsed > 5*time.Second {
		t.Errorf("hung open took %v, want ~TransferTimeout", elapsed)
	}
}

// TestWriteAckDeadlineHungWorker: a pipeline stage that consumes the
// whole stream but never acknowledges must time the writer out.
func TestWriteAckDeadlineHungWorker(t *testing.T) {
	shortTransferTimeout(t, 200*time.Millisecond)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		// Drain everything, never send the ack.
		io.Copy(io.Discard, conn)
		conn.Close()
	}()

	bw, err := OpenBlockWriter(core.Block{ID: 2, NumBytes: 64},
		[]PipelineTarget{{Worker: "w1", Address: ln.Addr().String(), Storage: "s0"}}, "test")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bw.Write(make([]byte, 64)); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	err = bw.Commit()
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("commit against a mute pipeline succeeded")
	}
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Errorf("err = %v, want a timeout", err)
	}
	if elapsed > 5*time.Second {
		t.Errorf("mute commit took %v, want ~TransferTimeout", elapsed)
	}
}

// shortHandshakeTimeout shrinks the absolute handshake deadline for
// the duration of a test.
func shortHandshakeTimeout(t *testing.T, d time.Duration) {
	t.Helper()
	old := HandshakeTimeout()
	SetHandshakeTimeout(d)
	t.Cleanup(func() { SetHandshakeTimeout(old) })
}

// TestHandshakeDeadlineHungPeer: the absolute handshake bound must
// cover the initial header exchange even when the rolling transfer
// deadline is disabled — a peer that accepts the dial and then hangs
// during the gob handshake previously stalled such a client forever.
func TestHandshakeDeadlineHungPeer(t *testing.T) {
	shortTransferTimeout(t, 0) // rolling deadlines off: handshake bound alone must save us
	shortHandshakeTimeout(t, 200*time.Millisecond)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	hung := make(chan net.Conn, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		hung <- conn // hold the connection open, never answer the handshake
	}()
	defer func() {
		select {
		case conn := <-hung:
			conn.Close()
		default:
		}
	}()

	start := time.Now()
	_, _, err = OpenBlockReader(ln.Addr().String(), core.Block{ID: 7, NumBytes: 64}, "s0", 0, -1)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("open against a handshake-hung peer succeeded")
	}
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Errorf("err = %v, want a timeout", err)
	}
	if elapsed > 5*time.Second {
		t.Errorf("hung handshake took %v, want ~HandshakeTimeout", elapsed)
	}
}

// TestHandshakeDeadlineTricklingPeer: the handshake bound is absolute,
// so a peer that keeps the rolling deadline alive by trickling bytes
// without ever completing the header exchange still times out.
func TestHandshakeDeadlineTricklingPeer(t *testing.T) {
	shortTransferTimeout(t, 150*time.Millisecond)
	shortHandshakeTimeout(t, 400*time.Millisecond)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		// Advertise an enormous response frame, then trickle one byte
		// per 100ms: each byte resets a rolling deadline, but the
		// frame never completes.
		conn.Write([]byte{0x00, 0x10, 0x00, 0x00})
		for {
			select {
			case <-stop:
				return
			case <-time.After(100 * time.Millisecond):
				if _, err := conn.Write([]byte{0x00}); err != nil {
					return
				}
			}
		}
	}()

	start := time.Now()
	_, _, err = OpenBlockReader(ln.Addr().String(), core.Block{ID: 8, NumBytes: 64}, "s0", 0, -1)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("open against a trickling peer succeeded")
	}
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Errorf("err = %v, want a timeout", err)
	}
	if elapsed > 5*time.Second {
		t.Errorf("trickled handshake took %v, want ~HandshakeTimeout", elapsed)
	}
}

// TestDialFailureTaggedAndHooked: dial errors carry the request ID
// and repeated failures to one address fire the registered hook at
// the threshold.
func TestDialFailureTaggedAndHooked(t *testing.T) {
	// A listener that is immediately closed yields a connection-refused
	// address nothing else will reuse mid-test.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	type firing struct {
		addr string
		n    int
	}
	fired := make(chan firing, 4)
	remove := OnRepeatedDialFailure(func(a string, consecutive int) {
		fired <- firing{a, consecutive}
	})
	defer remove()

	for i := 0; i < DialFailureThreshold; i++ {
		_, _, err := OpenBlockReaderReq(addr, core.Block{ID: 9}, "s0", 0, -1, "deadbeefcafef00d")
		if err == nil {
			t.Fatal("dial to a closed address succeeded")
		}
		if !strings.Contains(err.Error(), "[req=deadbeefcafef00d]") {
			t.Fatalf("dial error %q lacks request tag", err)
		}
	}
	select {
	case f := <-fired:
		if f.addr != addr || f.n != DialFailureThreshold {
			t.Fatalf("hook fired with (%s, %d), want (%s, %d)", f.addr, f.n, addr, DialFailureThreshold)
		}
	default:
		t.Fatalf("hook did not fire after %d consecutive dial failures", DialFailureThreshold)
	}
}

// TestCloseStreamWaitAckSplit: the overlapped write path flushes the
// stream first and collects the ack separately; both halves must work
// against a well-behaved stage.
func TestCloseStreamWaitAckSplit(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	payload := []byte("overlapped block content")
	got := make(chan []byte, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		var op [1]byte
		io.ReadFull(conn, op[:])
		var hdr WriteBlockHeader
		ReadFrame(conn, &hdr)
		data, _ := io.ReadAll(NewPacketReader(conn))
		got <- data
		WriteFrame(conn, WriteBlockAck{Stored: int64(len(data))})
	}()

	bw, err := OpenBlockWriter(core.Block{ID: 3, NumBytes: int64(len(payload))},
		[]PipelineTarget{{Worker: "w1", Address: ln.Addr().String(), Storage: "s0"}}, "test")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bw.Write(payload); err != nil {
		t.Fatal(err)
	}
	if err := bw.CloseStream(); err != nil {
		t.Fatal(err)
	}
	if err := bw.WaitAck(); err != nil {
		t.Fatal(err)
	}
	if string(<-got) != string(payload) {
		t.Error("pipeline stage received wrong content")
	}
}
