package rpc

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"testing/quick"

	"repro/internal/core"
)

func TestEncodeDecodeErrorRoundTrip(t *testing.T) {
	sentinels := []error{
		core.ErrNotFound, core.ErrExists, core.ErrNotDirectory,
		core.ErrIsDirectory, core.ErrNotEmpty, core.ErrNoSpace,
		core.ErrQuotaExceeded, core.ErrPermission, core.ErrFileOpen,
		core.ErrFileClosed, core.ErrCorrupt, core.ErrNoWorkers,
		core.ErrShutdown,
	}
	for _, sentinel := range sentinels {
		err := decodeAfterWire(sentinel)
		if !errors.Is(err, sentinel) {
			t.Errorf("round trip lost sentinel %v: got %v", sentinel, err)
		}
	}
}

func decodeAfterWire(err error) error {
	return DecodeError(EncodeError(err))
}

func TestEncodeDecodeErrorWithContext(t *testing.T) {
	orig := errorsWrap(core.ErrNotFound, "path /a/b")
	enc := EncodeError(orig)
	dec := DecodeError(enc)
	if !errors.Is(dec, core.ErrNotFound) {
		t.Errorf("decoded error lost sentinel: %v", dec)
	}
	if dec.Error() == "" {
		t.Error("decoded error lost message")
	}
}

func errorsWrap(sentinel error, msg string) error {
	return &wrapErr{msg: msg, err: sentinel}
}

type wrapErr struct {
	msg string
	err error
}

func (w *wrapErr) Error() string { return w.msg + ": " + w.err.Error() }
func (w *wrapErr) Unwrap() error { return w.err }

func TestEncodeDecodeErrorNilAndUnknown(t *testing.T) {
	if got := EncodeError(nil); got != "" {
		t.Errorf("EncodeError(nil) = %q, want \"\"", got)
	}
	if got := DecodeError(""); got != nil {
		t.Errorf("DecodeError(\"\") = %v, want nil", got)
	}
	unknown := errors.New("some random failure")
	dec := DecodeError(EncodeError(unknown))
	if dec.Error() != unknown.Error() {
		t.Errorf("unknown error mangled: %q vs %q", dec, unknown)
	}
	if WrapRemote(nil) != nil {
		t.Error("WrapRemote(nil) != nil")
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	in := WriteBlockHeader{
		Block: core.Block{ID: 7, GenStamp: 2, NumBytes: 1024},
		Pipeline: []PipelineTarget{
			{Worker: "w1", Address: "h1:1", Storage: "w1:mem0"},
			{Worker: "w2", Address: "h2:1", Storage: "w2:hdd0"},
		},
		Client: "test-client",
	}
	if err := WriteFrame(&buf, in); err != nil {
		t.Fatalf("WriteFrame: %v", err)
	}
	var out WriteBlockHeader
	if err := ReadFrame(&buf, &out); err != nil {
		t.Fatalf("ReadFrame: %v", err)
	}
	if out.Block != in.Block || out.Client != in.Client || len(out.Pipeline) != 2 {
		t.Errorf("frame round trip mismatch: %+v vs %+v", out, in)
	}
	if out.Pipeline[1] != in.Pipeline[1] {
		t.Errorf("pipeline mismatch: %+v", out.Pipeline)
	}
}

// TestExtendedHeaderRoundTrip covers the request-ID field added to
// every data-transfer header: it must survive the gob frame intact on
// all three exchange types.
func TestExtendedHeaderRoundTrip(t *testing.T) {
	reqID := NewRequestID()
	t.Run("write", func(t *testing.T) {
		var buf bytes.Buffer
		in := WriteBlockHeader{
			Block:    core.Block{ID: 3, GenStamp: 1, NumBytes: 64},
			Pipeline: []PipelineTarget{{Worker: "w1", Address: "h:1", Storage: "w1:ssd0"}},
			Client:   "c",
			ReqID:    reqID,
		}
		if err := WriteFrame(&buf, in); err != nil {
			t.Fatal(err)
		}
		var out WriteBlockHeader
		if err := ReadFrame(&buf, &out); err != nil {
			t.Fatal(err)
		}
		if out.ReqID != reqID {
			t.Errorf("write header ReqID = %q, want %q", out.ReqID, reqID)
		}
	})
	t.Run("read", func(t *testing.T) {
		var buf bytes.Buffer
		in := ReadBlockHeader{Block: core.Block{ID: 4, GenStamp: 1}, Storage: "w1:hdd0", Length: -1, ReqID: reqID}
		if err := WriteFrame(&buf, in); err != nil {
			t.Fatal(err)
		}
		var out ReadBlockHeader
		if err := ReadFrame(&buf, &out); err != nil {
			t.Fatal(err)
		}
		if out.ReqID != reqID || out.Length != -1 {
			t.Errorf("read header round trip: %+v", out)
		}
	})
	t.Run("replicate", func(t *testing.T) {
		var buf bytes.Buffer
		in := ReplicateBlockHeader{Block: core.Block{ID: 5, GenStamp: 2}, Target: "w2:mem0", ReqID: reqID}
		if err := WriteFrame(&buf, in); err != nil {
			t.Fatal(err)
		}
		var out ReplicateBlockHeader
		if err := ReadFrame(&buf, &out); err != nil {
			t.Fatal(err)
		}
		if out.ReqID != reqID || out.Target != in.Target {
			t.Errorf("replicate header round trip: %+v", out)
		}
	})
}

func TestNewRequestID(t *testing.T) {
	a, b := NewRequestID(), NewRequestID()
	if len(a) != 16 || len(b) != 16 {
		t.Errorf("request ID length: %q, %q", a, b)
	}
	if a == b {
		t.Errorf("request IDs collided: %q", a)
	}
}

// TestWithReqIDPreservesSentinel checks that the [req=...] marker
// appended to wire error strings keeps errors.Is working after decode
// while making the failure attributable.
func TestWithReqIDPreservesSentinel(t *testing.T) {
	enc := WithReqID(EncodeError(errorsWrap(core.ErrNotFound, "path /x")), "deadbeef01020304")
	dec := DecodeError(enc)
	if !errors.Is(dec, core.ErrNotFound) {
		t.Errorf("req-id marker broke sentinel decoding: %v", dec)
	}
	if !bytes.Contains([]byte(dec.Error()), []byte("req=deadbeef01020304")) {
		t.Errorf("decoded error lost request ID: %v", dec)
	}
	if got := WithReqID("", "abc"); got != "" {
		t.Errorf("WithReqID on success = %q, want \"\"", got)
	}
	if got := WithReqID("E_NOTFOUND: x", ""); got != "E_NOTFOUND: x" {
		t.Errorf("WithReqID without ID = %q", got)
	}
}

func TestReqHeaderStamping(t *testing.T) {
	var args CreateArgs
	var ident Identified = &args
	ident.SetRequestID("r1")
	if args.ReqID != "r1" || ident.RequestID() != "r1" {
		t.Errorf("ReqHeader stamping failed: %+v", args)
	}
}

func TestReadFrameRejectsGiantFrame(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	var out WriteBlockAck
	if err := ReadFrame(&buf, &out); err == nil {
		t.Error("giant frame accepted")
	}
}

func TestPacketStreamRoundTrip(t *testing.T) {
	payload := make([]byte, 3*MaxPacketSize+12345) // forces multiple packets
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	var buf bytes.Buffer
	pw := NewPacketWriter(&buf)
	if _, err := pw.Write(payload); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if err := pw.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	got, err := io.ReadAll(NewPacketReader(&buf))
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Error("packet stream corrupted payload")
	}
}

func TestPacketStreamEmptyPayload(t *testing.T) {
	var buf bytes.Buffer
	pw := NewPacketWriter(&buf)
	if err := pw.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(NewPacketReader(&buf))
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	if len(got) != 0 {
		t.Errorf("empty stream yielded %d bytes", len(got))
	}
}

func TestPacketReaderDetectsCorruption(t *testing.T) {
	var buf bytes.Buffer
	pw := NewPacketWriter(&buf)
	pw.Write([]byte("precious block data"))
	pw.Close()
	raw := buf.Bytes()
	raw[10] ^= 0xFF // flip a payload bit
	_, err := io.ReadAll(NewPacketReader(bytes.NewReader(raw)))
	if !errors.Is(err, core.ErrCorrupt) {
		t.Errorf("corrupted stream err = %v, want ErrCorrupt", err)
	}
}

func TestPacketReaderDetectsTruncation(t *testing.T) {
	var buf bytes.Buffer
	pw := NewPacketWriter(&buf)
	pw.Write([]byte("some data"))
	pw.Close()
	raw := buf.Bytes()[:buf.Len()-9] // drop the end packet
	_, err := io.ReadAll(NewPacketReader(bytes.NewReader(raw)))
	if err == nil {
		t.Error("truncated stream read without error")
	}
}

func TestQuickPacketRoundTrip(t *testing.T) {
	f := func(payload []byte) bool {
		var buf bytes.Buffer
		pw := NewPacketWriter(&buf)
		if _, err := pw.Write(payload); err != nil {
			return false
		}
		if err := pw.Close(); err != nil {
			return false
		}
		got, err := io.ReadAll(NewPacketReader(&buf))
		return err == nil && bytes.Equal(got, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
