package rpc

import (
	crand "crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"sync/atomic"
)

// Request IDs correlate one client operation across the master's RPC
// log, the workers' data-server logs, and error strings returned to
// the client. They ride inside RPC argument structs (via ReqHeader)
// and the data-transfer protocol headers.

// ReqHeader is embedded in RPC argument structs to carry the request
// ID across the master protocols. The zero value (no ID) is valid:
// unidentified requests simply cannot be correlated. The request ID
// doubles as the trace ID for distributed tracing; SpanID names the
// caller's span so the server can parent its own span under it.
type ReqHeader struct {
	ReqID  string
	SpanID string

	// arrivalNs is the server-side decode timestamp, stamped by the
	// RPC server codec so handlers can measure queue wait (decode to
	// handler start). Unexported: it never crosses the wire (gob
	// ignores unexported fields) and is meaningful only within the
	// receiving process.
	arrivalNs int64
}

// RequestID returns the carried request ID.
func (h ReqHeader) RequestID() string { return h.ReqID }

// SetRequestID stamps the request ID.
func (h *ReqHeader) SetRequestID(id string) { h.ReqID = id }

// ParentSpan returns the caller's span ID, if any.
func (h ReqHeader) ParentSpan() string { return h.SpanID }

// SetArrival stamps the server-side request decode time (Unix
// nanoseconds). Called by the RPC server codec.
func (h *ReqHeader) SetArrival(ns int64) { h.arrivalNs = ns }

// Arrival returns the server-side decode time stamped by SetArrival,
// or 0 when the request did not pass through an instrumented codec.
func (h ReqHeader) Arrival() int64 { return h.arrivalNs }

// SetParentSpan stamps the caller's span ID.
func (h *ReqHeader) SetParentSpan(id string) { h.SpanID = id }

// Identified is satisfied by pointers to argument structs embedding
// ReqHeader, letting generic call paths stamp and read request IDs.
type Identified interface {
	RequestID() string
	SetRequestID(string)
}

// Traced is satisfied by pointers to argument structs embedding
// ReqHeader, letting generic call paths propagate span context.
type Traced interface {
	ParentSpan() string
	SetParentSpan(string)
}

var reqFallback atomic.Uint64

// NewRequestID returns a 16-hex-character random request ID. When the
// system randomness source fails it falls back to a process-local
// counter, which still yields unique (if guessable) IDs.
func NewRequestID() string {
	var b [8]byte
	if _, err := crand.Read(b[:]); err != nil {
		binary.BigEndian.PutUint64(b[:], reqFallback.Add(1))
	}
	return hex.EncodeToString(b[:])
}

// WithReqID appends the request ID marker to an already wire-encoded
// error string, so failures are attributable end-to-end. DecodeError
// matches on the code prefix, so the marker survives the round trip
// without breaking errors.Is.
func WithReqID(encoded, reqID string) string {
	if encoded == "" || reqID == "" {
		return encoded
	}
	return encoded + " [req=" + reqID + "]"
}
