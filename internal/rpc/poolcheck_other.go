//go:build !unix

package rpc

import "net"

// connAlive optimistically accepts pooled connections on platforms
// without a non-blocking peek; the retry-once-on-fresh-dial path in
// the open functions covers stale conns.
func connAlive(net.Conn) bool { return true }
