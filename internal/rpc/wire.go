package rpc

import (
	"bufio"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"io"
	"sync"

	"repro/internal/bufpool"
	"repro/internal/core"
	"repro/internal/trace"
	"repro/internal/xfer"
)

// The data-transfer protocol spoken on a worker's data port. Every
// exchange starts with a one-byte opcode followed by a length-prefixed
// header frame (binary v1 for the hot-path messages, gob for the
// legacy format and the dump messages — see binframe.go); block
// content then flows as checksummed packets. Connections are
// persistent: after a clean exchange the same connection carries the
// next opcode.
const (
	// OpWriteBlock streams a block into a pipeline of workers
	// (paper §3.1: Worker-to-Worker pipeline).
	OpWriteBlock = byte(iota + 1)

	// OpReadBlock streams a block (or a byte range of it) to a reader.
	OpReadBlock

	// OpReplicateBlock instructs a worker to fetch a block from
	// another worker and store it locally (paper §5).
	OpReplicateBlock

	// OpTraceDump asks a worker for its stored spans of one trace, so
	// the master can assemble a cross-daemon timeline without the
	// worker exposing an RPC server.
	OpTraceDump

	// OpTransferDump asks a worker for one page of its transfer
	// flight-recorder log, so Master.GetTransfers can fan out across
	// the cluster over the existing data port.
	OpTransferDump
)

// MaxPacketSize bounds one data packet. 64 KiB balances syscall
// overhead against pipelining latency, like HDFS's packet size.
const MaxPacketSize = 64 << 10

// PipelineTarget identifies one stage of a write pipeline: the worker
// address to forward to and the media that stage must store on.
type PipelineTarget struct {
	Worker  core.WorkerID
	Address string
	Storage core.StorageID
}

// WriteBlockHeader opens an OpWriteBlock exchange.
type WriteBlockHeader struct {
	Block core.Block // NumBytes may be 0; the packet stream defines it
	// Pipeline lists this worker's stage first; the worker stores on
	// Pipeline[0].Storage and forwards to Pipeline[1:].
	Pipeline []PipelineTarget
	// Client names the writing client for log and audit purposes.
	Client string
	// ReqID correlates this exchange with the client operation that
	// caused it across master and worker logs.
	ReqID string
	// SpanID is the sender's span, parenting this stage's span; each
	// stage replaces it with its own span ID before forwarding, so the
	// pipeline's spans chain client → worker → downstream worker.
	SpanID string
}

// WriteBlockAck closes an OpWriteBlock exchange, reporting per-stage
// success upstream.
type WriteBlockAck struct {
	// Err is the EncodeError representation of the first failure in
	// this stage or any downstream stage ("" = success).
	Err string
	// Stored is the number of bytes persisted by this stage.
	Stored int64
}

// ReadBlockHeader opens an OpReadBlock exchange.
type ReadBlockHeader struct {
	Block   core.Block
	Storage core.StorageID
	Offset  int64 // starting byte within the block
	Length  int64 // bytes to read; -1 = to end of block
	// ReqID correlates this exchange with the client operation that
	// caused it across master and worker logs.
	ReqID string
	// SpanID is the reader's span, parenting the worker's read span.
	SpanID string
}

// ReadBlockResponse precedes the packet stream of an OpReadBlock.
type ReadBlockResponse struct {
	Err    string // EncodeError representation; "" = data follows
	Length int64  // number of bytes that will be streamed
}

// ReplicateBlockHeader opens an OpReplicateBlock exchange, telling the
// receiving worker to copy a block from a source location onto one of
// its own media.
type ReplicateBlockHeader struct {
	Block   core.Block
	Target  core.StorageID       // local media to store on
	Sources []core.BlockLocation // replica locations to copy from, best first
	// ReqID correlates this exchange across master and worker logs.
	ReqID string
	// SpanID is the requester's span, parenting the replication span.
	SpanID string
}

// ReplicateBlockAck closes an OpReplicateBlock exchange.
type ReplicateBlockAck struct {
	Err string
}

// TraceDumpHeader opens an OpTraceDump exchange.
type TraceDumpHeader struct {
	TraceID string
}

// TraceDumpResponse carries the worker's retained spans for the
// requested trace. The per-trace span cap keeps it well under the
// control-frame size limit.
type TraceDumpResponse struct {
	Spans []trace.Span
}

// TransferDumpHeader opens an OpTransferDump exchange: one cursor
// page request against the worker's transfer flight recorder, with
// the same since/op/limit semantics as /debug/transfers.
type TransferDumpHeader struct {
	Since uint64
	Op    string // "" = all transfer kinds
	Limit int    // <= 0 = no cap
}

// TransferDumpResponse carries one page of the worker's transfer log
// plus its per-op lifetime counters. Limit keeps it under the
// control-frame size limit; callers page with Since = Page.Next.
type TransferDumpResponse struct {
	Page   xfer.Page
	Counts map[string]uint64
}

// WriteFrame encodes v as one length-prefixed frame: binary v1 for
// the hot-path messages, gob otherwise.
func WriteFrame(w io.Writer, v any) error {
	return writeFrameFmt(w, v, false)
}

// WriteFrameLegacy encodes v as a legacy gob frame regardless of
// type. Responders use it to echo a gob-framed request's format, so a
// mixed-version cluster interoperates; tests use it to emulate an old
// peer.
func WriteFrameLegacy(w io.Writer, v any) error {
	return writeFrameFmt(w, v, true)
}

func writeFrameFmt(w io.Writer, v any, legacy bool) error {
	if !legacy {
		bp := frameScratch.Get().(*[]byte)
		buf := (*bp)[:0]
		// Reserve the tag + length prefix, then append the payload.
		buf = append(buf, frameTagBinary, 0, 0, 0, 0)
		buf, ok := encodeBinary(buf, v)
		if ok {
			binary.LittleEndian.PutUint32(buf[1:5], uint32(len(buf)-5))
			connStats.frames.Add(1)
			connStats.frameBytes.Add(uint64(len(buf) - 5))
			_, err := w.Write(buf)
			*bp = buf[:0]
			frameScratch.Put(bp)
			if err != nil {
				return fmt.Errorf("rpc: writing frame: %w", err)
			}
			return nil
		}
		*bp = buf[:0]
		frameScratch.Put(bp)
	}
	var buf []byte
	{
		var bw lenWriter
		if err := gob.NewEncoder(&bw).Encode(v); err != nil {
			return fmt.Errorf("rpc: encoding frame: %w", err)
		}
		buf = bw.buf
	}
	connStats.frames.Add(1)
	connStats.frameBytes.Add(uint64(len(buf)))
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(buf)))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("rpc: writing frame header: %w", err)
	}
	if _, err := w.Write(buf); err != nil {
		return fmt.Errorf("rpc: writing frame body: %w", err)
	}
	return nil
}

// maxFrameSize bounds a control frame; headers are small, so anything
// bigger indicates a corrupt or hostile stream. Keeping it under
// 1<<24 also guarantees a legacy gob frame's first byte is 0x00,
// which is how ReadFrame tells the formats apart.
const maxFrameSize = 1 << 20

// ReadFrame decodes one length-prefixed frame into v, accepting both
// the binary v1 and the legacy gob format.
func ReadFrame(r io.Reader, v any) error {
	_, err := ReadFrameEx(r, v)
	return err
}

// ReadFrameEx is ReadFrame reporting which format the frame used, so
// a responder can echo it (legacy peers must receive gob responses).
func ReadFrameEx(r io.Reader, v any) (legacy bool, err error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:1]); err != nil {
		return false, err
	}
	if hdr[0] == frameTagBinary {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			return false, fmt.Errorf("rpc: reading frame length: %w", err)
		}
		n := binary.LittleEndian.Uint32(hdr[:])
		if n > maxFrameSize {
			return false, fmt.Errorf("rpc: frame of %d bytes exceeds limit", n)
		}
		connStats.frames.Add(1)
		connStats.frameBytes.Add(uint64(n))
		bp := frameScratch.Get().(*[]byte)
		buf := *bp
		if cap(buf) < int(n) {
			buf = make([]byte, n)
		}
		buf = buf[:n]
		if _, err := io.ReadFull(r, buf); err != nil {
			*bp = buf[:0]
			frameScratch.Put(bp)
			return false, fmt.Errorf("rpc: reading frame body: %w", err)
		}
		err := decodeBinary(buf, v)
		*bp = buf[:0]
		frameScratch.Put(bp)
		return false, err
	}
	if hdr[0] != 0 {
		return false, fmt.Errorf("rpc: unknown frame tag 0x%02x", hdr[0])
	}
	if _, err := io.ReadFull(r, hdr[1:]); err != nil {
		return true, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrameSize {
		return true, fmt.Errorf("rpc: frame of %d bytes exceeds limit", n)
	}
	connStats.frames.Add(1)
	connStats.frameBytes.Add(uint64(n))
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return true, fmt.Errorf("rpc: reading frame body: %w", err)
	}
	if err := gob.NewDecoder(&frameReader{buf}).Decode(v); err != nil {
		return true, fmt.Errorf("rpc: decoding frame: %w", err)
	}
	return true, nil
}

type lenWriter struct{ buf []byte }

func (w *lenWriter) Write(p []byte) (int, error) {
	w.buf = append(w.buf, p...)
	return len(p), nil
}

type frameReader struct{ buf []byte }

func (r *frameReader) Read(p []byte) (int, error) {
	if len(r.buf) == 0 {
		return 0, io.EOF
	}
	n := copy(p, r.buf)
	r.buf = r.buf[n:]
	return n, nil
}

// castagnoli is the CRC-32C table used for packet checksums, the same
// polynomial HDFS uses for block checksums.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// packetBufSize is the staging-buffer size shared by the packet
// reader and writer: one max-size packet plus framing headroom.
const packetBufSize = MaxPacketSize + 64

// packetWriterPool and packetReaderPool recycle the bufio buffers the
// packet layer stages through: one Get/Put pair per transfer instead
// of a 64 KiB allocation each.
var packetWriterPool = sync.Pool{}
var packetReaderPool = sync.Pool{}

// PacketWriter streams block content as checksummed packets:
// [uint32 length][uint32 crc32c][payload]; a zero-length packet
// terminates the stream. Its staging buffer comes from a pool;
// Release returns it once the stream is settled.
type PacketWriter struct {
	w     *bufio.Writer
	buf   [8]byte
	alloc int64
}

// NewPacketWriter wraps w for packet output.
func NewPacketWriter(w io.Writer) *PacketWriter {
	pw := &PacketWriter{}
	if v := packetWriterPool.Get(); v != nil {
		pw.w = v.(*bufio.Writer)
		pw.w.Reset(w)
	} else {
		pw.w = bufio.NewWriterSize(w, packetBufSize)
		pw.alloc = packetBufSize
	}
	return pw
}

// AllocBytes reports the buffer bytes this writer freshly allocated —
// the per-transfer churn cost the flight recorder tracks. Pool reuse
// makes it zero in steady state.
func (pw *PacketWriter) AllocBytes() int64 { return pw.alloc }

// Release returns the staging buffer to the pool. The stream must be
// settled first (Close flushed it, or the transfer aborted and the
// buffered tail is being dropped with the connection). Double release
// is a no-op.
func (pw *PacketWriter) Release() {
	if pw.w == nil {
		return
	}
	pw.w.Reset(io.Discard)
	packetWriterPool.Put(pw.w)
	pw.w = nil
}

// Write implements io.Writer, splitting p into packets of at most
// MaxPacketSize bytes.
func (pw *PacketWriter) Write(p []byte) (int, error) {
	total := 0
	for len(p) > 0 {
		chunk := p
		if len(chunk) > MaxPacketSize {
			chunk = chunk[:MaxPacketSize]
		}
		binary.BigEndian.PutUint32(pw.buf[0:4], uint32(len(chunk)))
		binary.BigEndian.PutUint32(pw.buf[4:8], crc32.Checksum(chunk, castagnoli))
		if _, err := pw.w.Write(pw.buf[:]); err != nil {
			return total, fmt.Errorf("rpc: writing packet header: %w", err)
		}
		if _, err := pw.w.Write(chunk); err != nil {
			return total, fmt.Errorf("rpc: writing packet payload: %w", err)
		}
		total += len(chunk)
		p = p[len(chunk):]
	}
	return total, nil
}

// ReadFrom implements io.ReaderFrom: it pumps r into full-size packets
// through one pooled buffer, so io.Copy onto a PacketWriter stages the
// content exactly once instead of allocating its own copy buffer.
func (pw *PacketWriter) ReadFrom(r io.Reader) (int64, error) {
	buf, fresh := bufpool.Get(MaxPacketSize)
	if fresh {
		pw.alloc += MaxPacketSize
	}
	defer bufpool.Put(buf)
	var total int64
	for {
		// Fill the packet so slow readers still yield full-size packets.
		n := 0
		var rerr error
		for n < len(buf) && rerr == nil {
			var m int
			m, rerr = r.Read(buf[n:])
			n += m
		}
		if n > 0 {
			if _, werr := pw.Write(buf[:n]); werr != nil {
				return total, werr
			}
			total += int64(n)
		}
		if rerr == io.EOF {
			return total, nil
		}
		if rerr != nil {
			return total, rerr
		}
	}
}

// Close terminates the stream with an empty packet and flushes.
func (pw *PacketWriter) Close() error {
	binary.BigEndian.PutUint32(pw.buf[0:4], 0)
	binary.BigEndian.PutUint32(pw.buf[4:8], 0)
	if _, err := pw.w.Write(pw.buf[:]); err != nil {
		return fmt.Errorf("rpc: writing end packet: %w", err)
	}
	return pw.w.Flush()
}

// PacketReader consumes a packet stream, verifying each packet's
// checksum. It implements io.Reader and reports core.ErrCorrupt on a
// checksum mismatch. Its buffers come from pools; Release returns
// them once the stream is settled.
type PacketReader struct {
	r       *bufio.Reader
	pending []byte
	done    bool
	scratch []byte
	alloc   int64
}

// NewPacketReader wraps r for packet input.
func NewPacketReader(r io.Reader) *PacketReader {
	pr := &PacketReader{}
	if v := packetReaderPool.Get(); v != nil {
		pr.r = v.(*bufio.Reader)
		pr.r.Reset(r)
	} else {
		pr.r = bufio.NewReaderSize(r, packetBufSize)
		pr.alloc = packetBufSize
	}
	return pr
}

// AllocBytes reports the buffer bytes this reader freshly allocated
// (bufio buffer plus scratch) — the per-transfer churn cost the
// flight recorder tracks. Pool reuse makes it zero in steady state.
func (pr *PacketReader) AllocBytes() int64 { return pr.alloc }

// Drained reports that the stream's end marker was consumed and no
// payload remains undelivered — the state in which the underlying
// connection is clean and reusable.
func (pr *PacketReader) Drained() bool { return pr.done && len(pr.pending) == 0 }

// PendingEmpty reports that no decoded payload is waiting. When true
// but not Drained, only the end marker (or more packets) remains on
// the wire.
func (pr *PacketReader) PendingEmpty() bool { return len(pr.pending) == 0 }

// TryFinish attempts to consume the stream's end marker: after a
// consumer read exactly the advertised length, the zero-length
// terminator may still be in flight. It returns true if the stream is
// now drained, false if payload (not a terminator) arrived or the
// read failed. Callers bound the attempt with a deadline on the
// underlying connection.
func (pr *PacketReader) TryFinish() bool {
	if pr.Drained() {
		return true
	}
	if len(pr.pending) > 0 {
		return false
	}
	if err := pr.fill(); err != nil {
		return false
	}
	return pr.Drained()
}

// Release returns the reader's buffers to their pools. The caller
// must be done with the stream (and any slice returned by Read has
// been consumed — Read copies, so that always holds).
func (pr *PacketReader) Release() {
	if pr.r != nil {
		pr.r.Reset(emptyReader{})
		packetReaderPool.Put(pr.r)
		pr.r = nil
	}
	if pr.scratch != nil {
		bufpool.Put(pr.scratch)
		pr.scratch = nil
		pr.pending = nil
	}
}

type emptyReader struct{}

func (emptyReader) Read([]byte) (int, error) { return 0, io.EOF }

// Read implements io.Reader.
func (pr *PacketReader) Read(p []byte) (int, error) {
	for len(pr.pending) == 0 {
		if pr.done {
			return 0, io.EOF
		}
		if err := pr.fill(); err != nil {
			return 0, err
		}
	}
	n := copy(p, pr.pending)
	pr.pending = pr.pending[n:]
	return n, nil
}

// WriteTo implements io.WriterTo: it hands each verified packet's
// payload straight to w, so io.Copy from a PacketReader performs no
// extra staging copy.
func (pr *PacketReader) WriteTo(w io.Writer) (int64, error) {
	var total int64
	for {
		for len(pr.pending) == 0 {
			if pr.done {
				return total, nil
			}
			if err := pr.fill(); err != nil {
				return total, err
			}
		}
		n, err := w.Write(pr.pending)
		pr.pending = pr.pending[n:]
		total += int64(n)
		if err != nil {
			return total, err
		}
	}
}

func (pr *PacketReader) fill() error {
	var hdr [8]byte
	if _, err := io.ReadFull(pr.r, hdr[:]); err != nil {
		if err == io.EOF {
			return io.ErrUnexpectedEOF // stream ended without end packet
		}
		return err
	}
	length := binary.BigEndian.Uint32(hdr[0:4])
	want := binary.BigEndian.Uint32(hdr[4:8])
	if length == 0 {
		pr.done = true
		return nil
	}
	if length > MaxPacketSize {
		return fmt.Errorf("rpc: packet of %d bytes exceeds limit", length)
	}
	if cap(pr.scratch) < int(length) {
		if pr.scratch != nil {
			bufpool.Put(pr.scratch)
		}
		var fresh bool
		pr.scratch, fresh = bufpool.Get(int(length))
		if fresh {
			pr.alloc += int64(length)
		}
	}
	buf := pr.scratch[:length]
	if _, err := io.ReadFull(pr.r, buf); err != nil {
		return fmt.Errorf("rpc: reading packet payload: %w", err)
	}
	if got := crc32.Checksum(buf, castagnoli); got != want {
		return fmt.Errorf("rpc: packet checksum mismatch (got %08x, want %08x): %w",
			got, want, core.ErrCorrupt)
	}
	pr.pending = buf
	return nil
}
