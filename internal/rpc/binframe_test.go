package rpc

import (
	"bytes"
	"testing"

	"repro/internal/core"
)

// hotMessages returns one populated value of every message type the
// binary v1 framing covers, paired with a zero destination to decode
// into.
func hotMessages() []struct {
	name string
	in   any
	out  any
} {
	return []struct {
		name string
		in   any
		out  any
	}{
		{"WriteBlockHeader", WriteBlockHeader{
			Block: core.Block{ID: 42, GenStamp: 7, NumBytes: 1 << 20},
			Pipeline: []PipelineTarget{
				{Worker: "w1", Address: "h1:9866", Storage: "w1:mem0"},
				{Worker: "w2", Address: "h2:9866", Storage: "w2:hdd1"},
			},
			Client: "bench-client", ReqID: "aabbccdd00112233", SpanID: "span-1",
		}, &WriteBlockHeader{}},
		{"WriteBlockAck", WriteBlockAck{Err: "E_NOSPACE: media full", Stored: 12345}, &WriteBlockAck{}},
		{"ReadBlockHeader", ReadBlockHeader{
			Block:   core.Block{ID: 9, GenStamp: 3, NumBytes: 4096},
			Storage: "w1:ssd0", Offset: 512, Length: -1,
			ReqID: "ffee", SpanID: "span-2",
		}, &ReadBlockHeader{}},
		{"ReadBlockResponse", ReadBlockResponse{Err: "", Length: 1 << 22}, &ReadBlockResponse{}},
		{"ReplicateBlockHeader", ReplicateBlockHeader{
			Block:  core.Block{ID: 77, GenStamp: 1, NumBytes: 64},
			Target: "w3:mem0",
			Sources: []core.BlockLocation{
				{Worker: "w1", Address: "h1:9866", Storage: "w1:hdd0", Tier: core.TierHDD, Rack: "/rack1"},
				{Worker: "w2", Address: "h2:9866", Storage: "w2:mem0", Tier: core.TierMemory, Rack: "/rack2"},
			},
			ReqID: "0102", SpanID: "span-3",
		}, &ReplicateBlockHeader{}},
		{"ReplicateBlockAck", ReplicateBlockAck{Err: "E_NOTFOUND: block"}, &ReplicateBlockAck{}},
	}
}

// TestBinaryFrameRoundTrip pushes every hot-path message through the
// binary v1 framing and checks both the wire format tag and the
// decoded value.
func TestBinaryFrameRoundTrip(t *testing.T) {
	for _, c := range hotMessages() {
		t.Run(c.name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := WriteFrame(&buf, c.in); err != nil {
				t.Fatalf("WriteFrame: %v", err)
			}
			if tag := buf.Bytes()[0]; tag != frameTagBinary {
				t.Fatalf("hot message framed with tag 0x%02x, want binary 0x%02x", tag, frameTagBinary)
			}
			legacy, err := ReadFrameEx(&buf, c.out)
			if err != nil {
				t.Fatalf("ReadFrameEx: %v", err)
			}
			if legacy {
				t.Error("binary frame reported as legacy")
			}
			assertFrameEqual(t, c.name, c.in, c.out)
		})
	}
}

// TestLegacyGobFrameRoundTrip forces every hot message through the
// legacy gob framing — what a mixed-version peer would send — and
// checks the reader auto-detects and decodes it, reporting legacy so
// the responder can echo the old format.
func TestLegacyGobFrameRoundTrip(t *testing.T) {
	for _, c := range hotMessages() {
		t.Run(c.name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := WriteFrameLegacy(&buf, c.in); err != nil {
				t.Fatalf("WriteFrameLegacy: %v", err)
			}
			if tag := buf.Bytes()[0]; tag == frameTagBinary {
				t.Fatal("legacy frame carries the binary tag")
			}
			legacy, err := ReadFrameEx(&buf, c.out)
			if err != nil {
				t.Fatalf("ReadFrameEx: %v", err)
			}
			if !legacy {
				t.Error("gob frame not reported as legacy")
			}
			assertFrameEqual(t, c.name, c.in, c.out)
		})
	}
}

func assertFrameEqual(t *testing.T, name string, in, out any) {
	t.Helper()
	switch want := in.(type) {
	case WriteBlockHeader:
		got := *out.(*WriteBlockHeader)
		if got.Block != want.Block || got.Client != want.Client ||
			got.ReqID != want.ReqID || got.SpanID != want.SpanID ||
			len(got.Pipeline) != len(want.Pipeline) {
			t.Fatalf("%s mismatch: %+v vs %+v", name, got, want)
		}
		for i := range want.Pipeline {
			if got.Pipeline[i] != want.Pipeline[i] {
				t.Fatalf("%s pipeline[%d]: %+v vs %+v", name, i, got.Pipeline[i], want.Pipeline[i])
			}
		}
	case WriteBlockAck:
		if got := *out.(*WriteBlockAck); got != want {
			t.Fatalf("%s mismatch: %+v vs %+v", name, got, want)
		}
	case ReadBlockHeader:
		if got := *out.(*ReadBlockHeader); got != want {
			t.Fatalf("%s mismatch: %+v vs %+v", name, got, want)
		}
	case ReadBlockResponse:
		if got := *out.(*ReadBlockResponse); got != want {
			t.Fatalf("%s mismatch: %+v vs %+v", name, got, want)
		}
	case ReplicateBlockHeader:
		got := *out.(*ReplicateBlockHeader)
		if got.Block != want.Block || got.Target != want.Target ||
			got.ReqID != want.ReqID || got.SpanID != want.SpanID ||
			len(got.Sources) != len(want.Sources) {
			t.Fatalf("%s mismatch: %+v vs %+v", name, got, want)
		}
		for i := range want.Sources {
			if got.Sources[i] != want.Sources[i] {
				t.Fatalf("%s sources[%d]: %+v vs %+v", name, i, got.Sources[i], want.Sources[i])
			}
		}
	case ReplicateBlockAck:
		if got := *out.(*ReplicateBlockAck); got != want {
			t.Fatalf("%s mismatch: %+v vs %+v", name, got, want)
		}
	default:
		t.Fatalf("no comparison for %s", name)
	}
}

// TestColdMessagesFallBackToGob: dump messages are not worth a binary
// codec; WriteFrame must emit them as gob frames a legacy peer can
// also read.
func TestColdMessagesFallBackToGob(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, TraceDumpHeader{TraceID: "t1"}); err != nil {
		t.Fatal(err)
	}
	if buf.Bytes()[0] == frameTagBinary {
		t.Error("TraceDumpHeader framed as binary, want gob fallback")
	}
	var out TraceDumpHeader
	legacy, err := ReadFrameEx(&buf, &out)
	if err != nil || out.TraceID != "t1" {
		t.Fatalf("gob fallback round trip: %v %+v", err, out)
	}
	if !legacy {
		t.Error("gob fallback frame not reported legacy")
	}
}

// TestBinaryFrameRejectsWrongType: a binary frame decoded into the
// wrong destination type must fail loudly, not alias fields.
func TestBinaryFrameRejectsWrongType(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, WriteBlockAck{Stored: 1}); err != nil {
		t.Fatal(err)
	}
	var out ReadBlockResponse
	if err := ReadFrame(&buf, &out); err == nil {
		t.Error("decoding a WriteBlockAck frame into ReadBlockResponse succeeded")
	}
}

// TestBinaryFrameRejectsTruncation: a truncated binary payload must
// error rather than yield a partially populated message.
func TestBinaryFrameRejectsTruncation(t *testing.T) {
	var buf bytes.Buffer
	in := ReadBlockHeader{Block: core.Block{ID: 1, GenStamp: 1, NumBytes: 10}, Storage: "s", Length: -1}
	if err := WriteFrame(&buf, in); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// Shrink the payload and patch the length prefix to match, so the
	// reader sees a well-formed frame with a short payload.
	cut := 5
	trunc := append([]byte{}, raw[:len(raw)-cut]...)
	n := len(trunc) - 5 // payload length after the tag + 4-byte prefix
	trunc[1], trunc[2], trunc[3], trunc[4] = byte(n), byte(n>>8), byte(n>>16), byte(n>>24)
	var out ReadBlockHeader
	if err := ReadFrame(bytes.NewReader(trunc), &out); err == nil {
		t.Error("truncated binary frame decoded without error")
	}
}

// TestReadFrameRejectsUnknownTag: the first byte selects the framing;
// anything but gob (0x00) or binary v1 must be rejected before any
// length is trusted.
func TestReadFrameRejectsUnknownTag(t *testing.T) {
	var out WriteBlockAck
	if err := ReadFrame(bytes.NewReader([]byte{0x7f, 0, 0, 0, 0}), &out); err == nil {
		t.Error("unknown frame tag accepted")
	}
}
