package rpc

import (
	"sync"
	"sync/atomic"
)

// Process-wide data-connection lifecycle counters. They cover the
// dialling side of the data protocol — every outbound block read,
// pipeline hop, replication pull, and dump exchange goes through
// dialData — plus the gob control-frame totals from both directions.
// The counters quantify the per-transfer connection churn the
// data-path roadmap attributes the protocol's overhead to: one dial,
// one handshake, and fresh buffers per block.
var connStats struct {
	dials        atomic.Uint64
	dialFailures atomic.Uint64
	handshakes   atomic.Uint64
	open         atomic.Int64
	bytesRead    atomic.Uint64
	bytesWritten atomic.Uint64
	frames       atomic.Uint64
	frameBytes   atomic.Uint64
}

// ConnStats is a point-in-time snapshot of the process-wide
// data-connection lifecycle counters, served under /debug/transfers.
type ConnStats struct {
	// Dials counts outbound data-connection attempts; DialFailures
	// the ones that never connected. Handshakes counts connections
	// that completed the opcode + gob header exchange.
	Dials        uint64 `json:"dials"`
	DialFailures uint64 `json:"dial_failures"`
	Handshakes   uint64 `json:"handshakes"`

	// OpenConns is the number of dialled data connections currently
	// open.
	OpenConns int64 `json:"open_conns"`

	// BytesRead / BytesWritten are totals over dialled data
	// connections; BytesPerConn is their sum averaged over completed
	// dials, the churn ratio (low = many connections doing little
	// work each).
	BytesRead    uint64 `json:"bytes_read"`
	BytesWritten uint64 `json:"bytes_written"`
	BytesPerConn uint64 `json:"bytes_per_conn"`

	// Frames / FrameBytes count control frames encoded or decoded by
	// this process (headers, acks, dump pages) — the framing cost the
	// per-transfer header phases measure in time.
	Frames     uint64 `json:"frames"`
	FrameBytes uint64 `json:"frame_bytes"`

	// Pool reports the data-connection pool counters: reuse rate,
	// returns, and why candidates were dropped.
	Pool PoolStats `json:"pool"`
}

// DataConnStats snapshots the process-wide connection lifecycle
// counters.
func DataConnStats() ConnStats {
	s := ConnStats{
		Dials:        connStats.dials.Load(),
		DialFailures: connStats.dialFailures.Load(),
		Handshakes:   connStats.handshakes.Load(),
		OpenConns:    connStats.open.Load(),
		BytesRead:    connStats.bytesRead.Load(),
		BytesWritten: connStats.bytesWritten.Load(),
		Frames:       connStats.frames.Load(),
		FrameBytes:   connStats.frameBytes.Load(),
		Pool:         dataPool.stats(),
	}
	if succeeded := s.Dials - s.DialFailures; succeeded > 0 {
		s.BytesPerConn = (s.BytesRead + s.BytesWritten) / succeeded
	}
	return s
}

// DialFailureThreshold is the consecutive-failure streak to the same
// address at which the registered hooks fire (and fire again at every
// further multiple), so connect flaps surface as journal events
// without one blip causing noise.
const DialFailureThreshold = 3

var dialFailMu sync.Mutex
var dialFailStreaks = make(map[string]int)
var dialFailHooks = make(map[int]func(addr string, consecutive int))
var dialFailHookSeq int

// OnRepeatedDialFailure registers a hook called when consecutive data
// dials to one address fail DialFailureThreshold times in a row (a
// successful dial resets the streak). Daemons use it to journal
// worker_unreachable events. The returned function deregisters the
// hook; hooks run synchronously on the failing dial path and must be
// cheap and non-blocking.
func OnRepeatedDialFailure(hook func(addr string, consecutive int)) (remove func()) {
	dialFailMu.Lock()
	defer dialFailMu.Unlock()
	id := dialFailHookSeq
	dialFailHookSeq++
	dialFailHooks[id] = hook
	return func() {
		dialFailMu.Lock()
		defer dialFailMu.Unlock()
		delete(dialFailHooks, id)
	}
}

func noteDialFailure(addr string) {
	connStats.dialFailures.Add(1)
	dialFailMu.Lock()
	dialFailStreaks[addr]++
	streak := dialFailStreaks[addr]
	var hooks []func(string, int)
	if streak%DialFailureThreshold == 0 {
		hooks = make([]func(string, int), 0, len(dialFailHooks))
		for _, h := range dialFailHooks {
			hooks = append(hooks, h)
		}
	}
	dialFailMu.Unlock()
	for _, h := range hooks {
		h(addr, streak)
	}
}

func noteDialSuccess(addr string) {
	dialFailMu.Lock()
	delete(dialFailStreaks, addr)
	dialFailMu.Unlock()
}
