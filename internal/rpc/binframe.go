package rpc

import (
	"encoding/binary"
	"fmt"
	"sync"

	"repro/internal/core"
)

// Binary framing for the hot-path control messages. The legacy format
// gob-encoded every header, building an encoder (and re-transmitting
// type descriptors) per frame; the v1 binary format is a fixed
// little-endian layout:
//
//	[0x01][u32 LE payload length][u8 msgType][fields…]
//
// where fields are little-endian integers and u32-length-prefixed
// strings. Legacy gob frames start with the high byte of a big-endian
// u32 length, which maxFrameSize (1 MiB) keeps at 0x00 — so the first
// byte on the wire distinguishes the formats and ReadFrame accepts
// both. Responders echo the requester's format (ReadFrameEx reports
// it), so an old gob-only peer interoperates with a new binary-framing
// one in either direction. The cold-path dump messages (trace and
// transfer pages) carry nested structs and stay on gob.
const frameTagBinary = 0x01

// Binary message types. The type byte leads the payload so a decoder
// can verify the frame matches the message it expects.
const (
	msgWriteBlockHeader = byte(iota + 1)
	msgWriteBlockAck
	msgReadBlockHeader
	msgReadBlockResponse
	msgReplicateBlockHeader
	msgReplicateBlockAck
)

// frameScratch pools frame assembly and parse buffers: control frames
// are small and constant-rate, so steady state allocates none.
var frameScratch = sync.Pool{New: func() any { b := make([]byte, 0, 512); return &b }}

// appendU32/appendU64/appendI64/appendStr build the v1 payload.
func appendU32(b []byte, v uint32) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

func appendU64(b []byte, v uint64) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}

func appendI64(b []byte, v int64) []byte { return appendU64(b, uint64(v)) }

func appendStr(b []byte, s string) []byte {
	b = appendU32(b, uint32(len(s)))
	return append(b, s...)
}

func appendBlock(b []byte, blk core.Block) []byte {
	b = appendU64(b, uint64(blk.ID))
	b = appendU64(b, uint64(blk.GenStamp))
	return appendI64(b, blk.NumBytes)
}

// binReader parses a v1 payload, latching the first error so call
// sites stay linear.
type binReader struct {
	b   []byte
	bad bool
}

func (r *binReader) u32() uint32 {
	if r.bad || len(r.b) < 4 {
		r.bad = true
		return 0
	}
	v := binary.LittleEndian.Uint32(r.b)
	r.b = r.b[4:]
	return v
}

func (r *binReader) u64() uint64 {
	if r.bad || len(r.b) < 8 {
		r.bad = true
		return 0
	}
	v := binary.LittleEndian.Uint64(r.b)
	r.b = r.b[8:]
	return v
}

func (r *binReader) i64() int64 { return int64(r.u64()) }

func (r *binReader) str() string {
	n := r.u32()
	if r.bad || uint32(len(r.b)) < n {
		r.bad = true
		return ""
	}
	s := string(r.b[:n])
	r.b = r.b[n:]
	return s
}

func (r *binReader) block() core.Block {
	return core.Block{
		ID:       core.BlockID(r.u64()),
		GenStamp: core.GenerationStamp(r.u64()),
		NumBytes: r.i64(),
	}
}

// encodeBinary appends msgType+fields for the hot-path messages,
// returning ok == false for types that stay on gob.
func encodeBinary(buf []byte, v any) ([]byte, bool) {
	switch m := v.(type) {
	case WriteBlockHeader:
		buf = append(buf, msgWriteBlockHeader)
		buf = appendBlock(buf, m.Block)
		buf = appendU32(buf, uint32(len(m.Pipeline)))
		for _, t := range m.Pipeline {
			buf = appendStr(buf, string(t.Worker))
			buf = appendStr(buf, t.Address)
			buf = appendStr(buf, string(t.Storage))
		}
		buf = appendStr(buf, m.Client)
		buf = appendStr(buf, m.ReqID)
		return appendStr(buf, m.SpanID), true
	case WriteBlockAck:
		buf = append(buf, msgWriteBlockAck)
		buf = appendStr(buf, m.Err)
		return appendI64(buf, m.Stored), true
	case ReadBlockHeader:
		buf = append(buf, msgReadBlockHeader)
		buf = appendBlock(buf, m.Block)
		buf = appendStr(buf, string(m.Storage))
		buf = appendI64(buf, m.Offset)
		buf = appendI64(buf, m.Length)
		buf = appendStr(buf, m.ReqID)
		return appendStr(buf, m.SpanID), true
	case ReadBlockResponse:
		buf = append(buf, msgReadBlockResponse)
		buf = appendStr(buf, m.Err)
		return appendI64(buf, m.Length), true
	case ReplicateBlockHeader:
		buf = append(buf, msgReplicateBlockHeader)
		buf = appendBlock(buf, m.Block)
		buf = appendStr(buf, string(m.Target))
		buf = appendU32(buf, uint32(len(m.Sources)))
		for _, s := range m.Sources {
			buf = appendStr(buf, string(s.Worker))
			buf = appendStr(buf, s.Address)
			buf = appendStr(buf, string(s.Storage))
			buf = append(buf, byte(s.Tier))
			buf = appendStr(buf, s.Rack)
		}
		buf = appendStr(buf, m.ReqID)
		return appendStr(buf, m.SpanID), true
	case ReplicateBlockAck:
		buf = append(buf, msgReplicateBlockAck)
		return appendStr(buf, m.Err), true
	}
	return buf, false
}

// maxFrameList bounds decoded pipeline/source list lengths; a cluster
// pipeline is replica-count long, so anything large indicates a
// corrupt frame.
const maxFrameList = 1 << 12

// decodeBinary parses a v1 payload (msgType byte already included in
// payload) into v, which must be a pointer to the matching message.
func decodeBinary(payload []byte, v any) error {
	if len(payload) == 0 {
		return fmt.Errorf("rpc: empty binary frame")
	}
	msgType, r := payload[0], binReader{b: payload[1:]}
	want := func(t byte) error {
		if msgType != t {
			return fmt.Errorf("rpc: binary frame type %d, want %d for %T", msgType, t, v)
		}
		return nil
	}
	switch m := v.(type) {
	case *WriteBlockHeader:
		if err := want(msgWriteBlockHeader); err != nil {
			return err
		}
		m.Block = r.block()
		n := r.u32()
		if n > maxFrameList {
			return fmt.Errorf("rpc: binary frame pipeline of %d stages", n)
		}
		m.Pipeline = make([]PipelineTarget, 0, n)
		for i := uint32(0); i < n && !r.bad; i++ {
			m.Pipeline = append(m.Pipeline, PipelineTarget{
				Worker:  core.WorkerID(r.str()),
				Address: r.str(),
				Storage: core.StorageID(r.str()),
			})
		}
		m.Client = r.str()
		m.ReqID = r.str()
		m.SpanID = r.str()
	case *WriteBlockAck:
		if err := want(msgWriteBlockAck); err != nil {
			return err
		}
		m.Err = r.str()
		m.Stored = r.i64()
	case *ReadBlockHeader:
		if err := want(msgReadBlockHeader); err != nil {
			return err
		}
		m.Block = r.block()
		m.Storage = core.StorageID(r.str())
		m.Offset = r.i64()
		m.Length = r.i64()
		m.ReqID = r.str()
		m.SpanID = r.str()
	case *ReadBlockResponse:
		if err := want(msgReadBlockResponse); err != nil {
			return err
		}
		m.Err = r.str()
		m.Length = r.i64()
	case *ReplicateBlockHeader:
		if err := want(msgReplicateBlockHeader); err != nil {
			return err
		}
		m.Block = r.block()
		m.Target = core.StorageID(r.str())
		n := r.u32()
		if n > maxFrameList {
			return fmt.Errorf("rpc: binary frame source list of %d", n)
		}
		m.Sources = make([]core.BlockLocation, 0, n)
		for i := uint32(0); i < n && !r.bad; i++ {
			loc := core.BlockLocation{
				Worker:  core.WorkerID(r.str()),
				Address: r.str(),
				Storage: core.StorageID(r.str()),
			}
			if r.bad || len(r.b) < 1 {
				r.bad = true
				break
			}
			loc.Tier = core.StorageTier(r.b[0])
			r.b = r.b[1:]
			loc.Rack = r.str()
			m.Sources = append(m.Sources, loc)
		}
		m.ReqID = r.str()
		m.SpanID = r.str()
	case *ReplicateBlockAck:
		if err := want(msgReplicateBlockAck); err != nil {
			return err
		}
		m.Err = r.str()
	default:
		return fmt.Errorf("rpc: no binary decoder for %T", v)
	}
	if r.bad {
		return fmt.Errorf("rpc: truncated binary frame for %T", v)
	}
	if len(r.b) != 0 {
		return fmt.Errorf("rpc: %d trailing bytes in binary frame for %T", len(r.b), v)
	}
	return nil
}
