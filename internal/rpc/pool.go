package rpc

import (
	"sync"
	"sync/atomic"
	"time"
)

// Connection pooling for the data protocol. Every outbound exchange —
// block reads, pipeline hops, replication pulls, dump pages — used to
// pay a fresh TCP dial; the pool keeps connections whose previous
// exchange completed cleanly (every request byte consumed, every
// response byte read) idle per worker address and hands them to the
// next transfer, so the steady-state data path dials ~never.
//
// Invariants:
//   - Only clean connections enter the pool. A conn that failed
//     mid-transfer (short stream, broken ack, refused handshake) is
//     closed, never returned: residual bytes would poison the next
//     exchange on it.
//   - Checkout health-checks the candidate (a closed or half-closed
//     socket, e.g. after a worker restart, is discarded) and the first
//     exchange over a pooled conn retries once on a fresh dial, so
//     callers never observe staleness.
//   - Idle conns are capped per address and expire after a maximum
//     idle age kept well below the worker's own idle-close timeout, so
//     the client side almost always closes first.

// DefaultDataPoolSize is the default idle-connection cap per worker
// address.
const DefaultDataPoolSize = 4

// DefaultDataPoolIdle is the default maximum idle age. It must stay
// comfortably below the worker's dataIdleTimeout (2 minutes) so the
// pool retires conns before the worker does.
const DefaultDataPoolIdle = 30 * time.Second

// ConnPool keeps idle data connections per worker address, newest
// first, for reuse by subsequent transfers.
type ConnPool struct {
	mu      sync.Mutex
	idle    map[string][]idleConn
	maxIdle int
	maxAge  time.Duration
	closed  bool

	hits     atomic.Uint64 // checkouts served from the pool
	misses   atomic.Uint64 // checkouts that had to dial
	returns  atomic.Uint64 // clean conns accepted back
	discards atomic.Uint64 // candidates dropped by the health check
	expired  atomic.Uint64 // idle conns retired by age or cap
	stale    atomic.Uint64 // pooled conns that failed mid-handshake (retried fresh)
}

type idleConn struct {
	dc    *deadlineConn
	since time.Time
}

// NewConnPool builds a pool keeping up to maxIdle idle conns per
// address, each for at most maxAge. maxIdle <= 0 disables pooling
// (every checkout dials, every release closes).
func NewConnPool(maxIdle int, maxAge time.Duration) *ConnPool {
	if maxAge <= 0 {
		maxAge = DefaultDataPoolIdle
	}
	return &ConnPool{idle: make(map[string][]idleConn), maxIdle: maxIdle, maxAge: maxAge}
}

// take pops the newest healthy idle conn for addr, or nil when the
// caller must dial. Expired and unhealthy candidates are closed.
func (p *ConnPool) take(addr string) *deadlineConn {
	for {
		p.mu.Lock()
		if p.closed || p.maxIdle <= 0 {
			p.mu.Unlock()
			p.misses.Add(1)
			return nil
		}
		list := p.idle[addr]
		if len(list) == 0 {
			p.mu.Unlock()
			p.misses.Add(1)
			return nil
		}
		ic := list[len(list)-1]
		list = list[:len(list)-1]
		if len(list) == 0 {
			delete(p.idle, addr)
		} else {
			p.idle[addr] = list
		}
		p.mu.Unlock()

		if time.Since(ic.since) > p.maxAge {
			p.expired.Add(1)
			ic.dc.Close()
			continue
		}
		if !connAlive(ic.dc.Conn) {
			p.discards.Add(1)
			ic.dc.Close()
			continue
		}
		p.hits.Add(1)
		return ic.dc
	}
}

// put returns a clean connection to the pool, closing it instead when
// the pool is full, closed, or disabled.
func (p *ConnPool) put(dc *deadlineConn) {
	if dc == nil {
		return
	}
	p.mu.Lock()
	if p.closed || p.maxIdle <= 0 || dc.closed || len(p.idle[dc.lastAddr]) >= p.maxIdle {
		p.mu.Unlock()
		if !dc.closed {
			p.expired.Add(1)
		}
		dc.Close()
		return
	}
	p.idle[dc.lastAddr] = append(p.idle[dc.lastAddr], idleConn{dc: dc, since: time.Now()})
	p.returns.Add(1)
	p.mu.Unlock()
}

// noteStale counts a pooled conn that passed the health check but
// failed its first exchange (the worker closed it in the race window);
// the caller is retrying on a fresh dial.
func (p *ConnPool) noteStale() { p.stale.Add(1) }

// Clear closes every idle connection, leaving the pool usable. Used
// when a cluster shuts down and by tests.
func (p *ConnPool) Clear() {
	p.mu.Lock()
	idle := p.idle
	p.idle = make(map[string][]idleConn)
	p.mu.Unlock()
	for _, list := range idle {
		for _, ic := range list {
			ic.dc.Close()
		}
	}
}

// configure resizes the pool, closing idle conns beyond the new cap.
func (p *ConnPool) configure(maxIdle int, maxAge time.Duration) {
	if maxAge <= 0 {
		maxAge = DefaultDataPoolIdle
	}
	p.mu.Lock()
	p.maxIdle = maxIdle
	p.maxAge = maxAge
	var victims []*deadlineConn
	for addr, list := range p.idle {
		for len(list) > 0 && (maxIdle <= 0 || len(list) > maxIdle) {
			victims = append(victims, list[len(list)-1].dc)
			list = list[:len(list)-1]
		}
		if len(list) == 0 {
			delete(p.idle, addr)
		} else {
			p.idle[addr] = list
		}
	}
	p.mu.Unlock()
	for _, dc := range victims {
		dc.Close()
	}
}

// idleCount returns the number of idle conns currently pooled.
func (p *ConnPool) idleCount() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for _, list := range p.idle {
		n += len(list)
	}
	return n
}

// PoolStats is a point-in-time snapshot of the pool counters, served
// with the connection stats under /debug/transfers.
type PoolStats struct {
	// Hits are checkouts served by an idle conn (no dial); Misses had
	// to dial. HitRate is Hits over all checkouts.
	Hits    uint64  `json:"hits"`
	Misses  uint64  `json:"misses"`
	HitRate float64 `json:"hit_rate"`

	// Returns counts clean conns accepted back into the pool.
	// Discards are candidates dropped by the checkout health check
	// (peer closed them while idle); Expired were retired by age or
	// the per-address cap; Stale passed the health check but failed
	// their first exchange and were retried over a fresh dial.
	Returns  uint64 `json:"returns"`
	Discards uint64 `json:"discards"`
	Expired  uint64 `json:"expired"`
	Stale    uint64 `json:"stale"`

	// Idle is the number of connections currently pooled.
	Idle int `json:"idle"`
}

func (p *ConnPool) stats() PoolStats {
	s := PoolStats{
		Hits:     p.hits.Load(),
		Misses:   p.misses.Load(),
		Returns:  p.returns.Load(),
		Discards: p.discards.Load(),
		Expired:  p.expired.Load(),
		Stale:    p.stale.Load(),
		Idle:     p.idleCount(),
	}
	if total := s.Hits + s.Misses; total > 0 {
		s.HitRate = float64(s.Hits) / float64(total)
	}
	return s
}

// dataPool is the process-wide pool every outbound data exchange draws
// from.
var dataPool = NewConnPool(DefaultDataPoolSize, DefaultDataPoolIdle)

// SetDataPool reconfigures the process-wide data-connection pool: the
// per-worker idle cap (<= 0 disables pooling) and the maximum idle age
// (<= 0 selects the default). Daemons wire the -data-pool-size and
// -data-pool-idle flags here.
func SetDataPool(maxIdle int, maxAge time.Duration) {
	dataPool.configure(maxIdle, maxAge)
}

// ResetDataPool closes every idle pooled connection. Cluster teardown
// and tests use it so conns to dead workers don't linger.
func ResetDataPool() { dataPool.Clear() }

// DataPoolStats snapshots the process-wide pool counters.
func DataPoolStats() PoolStats { return dataPool.stats() }
