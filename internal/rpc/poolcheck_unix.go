//go:build unix

package rpc

import (
	"net"
	"syscall"
)

// connAlive reports whether an idle pooled connection is still usable:
// no EOF, no error, and no unexpected buffered bytes (a clean conn has
// nothing in flight between exchanges). It peeks the socket without
// blocking or consuming, the same technique database/sql drivers use
// to validate pooled connections.
func connAlive(c net.Conn) bool {
	sc, ok := c.(syscall.Conn)
	if !ok {
		return true // can't check; the retry-once path covers staleness
	}
	raw, err := sc.SyscallConn()
	if err != nil {
		return false
	}
	alive := false
	rerr := raw.Read(func(fd uintptr) bool {
		var buf [1]byte
		n, _, err := syscall.Recvfrom(int(fd), buf[:], syscall.MSG_PEEK|syscall.MSG_DONTWAIT)
		switch {
		case err == syscall.EAGAIN || err == syscall.EWOULDBLOCK:
			alive = true // nothing to read: healthy idle conn
		case err == nil && n == 0:
			alive = false // orderly shutdown from the peer
		default:
			alive = false // error, or unexpected bytes in flight
		}
		return true // don't wait for readability
	})
	return rerr == nil && alive
}
