// Package rpc provides the wire-level building blocks shared by the
// OctopusFS master, workers, and client: stable error codes that
// survive net/rpc boundaries, and the framed, checksummed streaming
// protocol used on the workers' data-transfer port.
package rpc

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/core"
)

// codes maps stable wire codes to the core sentinel errors. Codes — not
// message text — are what cross the network, so errors.Is keeps working
// on the client side after a round trip.
var codes = []struct {
	code string
	err  error
}{
	{"E_NOTFOUND", core.ErrNotFound},
	{"E_EXISTS", core.ErrExists},
	{"E_NOTDIR", core.ErrNotDirectory},
	{"E_ISDIR", core.ErrIsDirectory},
	{"E_NOTEMPTY", core.ErrNotEmpty},
	{"E_NOSPACE", core.ErrNoSpace},
	{"E_QUOTA", core.ErrQuotaExceeded},
	{"E_PERM", core.ErrPermission},
	{"E_OPEN", core.ErrFileOpen},
	{"E_CLOSED", core.ErrFileClosed},
	{"E_CORRUPT", core.ErrCorrupt},
	{"E_NOWORKERS", core.ErrNoWorkers},
	{"E_SHUTDOWN", core.ErrShutdown},
}

// EncodeError converts an error into its wire representation:
// "<CODE>: <message>" for recognised sentinels, the bare message
// otherwise. A nil error encodes to "".
func EncodeError(err error) string {
	if err == nil {
		return ""
	}
	for _, c := range codes {
		if errors.Is(err, c.err) {
			return c.code + ": " + err.Error()
		}
	}
	return err.Error()
}

// DecodeError reverses EncodeError: a recognised code prefix yields an
// error wrapping the corresponding sentinel, so errors.Is works across
// the RPC boundary. An empty string decodes to nil.
func DecodeError(s string) error {
	if s == "" {
		return nil
	}
	for _, c := range codes {
		if strings.HasPrefix(s, c.code+": ") {
			msg := strings.TrimPrefix(s, c.code+": ")
			// A request-ID tag (WithReqID) sits after the sentinel
			// text; lift it out so the suffix strip still applies.
			req := ""
			if i := strings.LastIndex(msg, " [req="); i >= 0 && strings.HasSuffix(msg, "]") {
				msg, req = msg[:i], msg[i:]
			}
			return fmt.Errorf("%s%s: %w", strings.TrimSuffix(msg, ": "+c.err.Error()), req, c.err)
		}
	}
	return errors.New(s)
}

// WrapRemote maps an error returned by net/rpc (which flattens server
// errors to strings) back onto the core sentinels.
func WrapRemote(err error) error {
	if err == nil {
		return nil
	}
	return DecodeError(err.Error())
}
