package rpc

import (
	"fmt"
	"io"
	"net"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/trace"
	"repro/internal/xfer"
)

// DialTimeout bounds data-connection establishment.
const DialTimeout = 5 * time.Second

// TransferTimeout bounds each individual read or write on a data
// connection once it is established. It is a rolling deadline: the
// clock restarts on every packet, so a long transfer over a healthy
// link never trips it, but a worker that accepts a connection and then
// hangs surfaces an i/o timeout instead of stalling the client
// forever. Tests shorten it; zero disables deadlines.
var TransferTimeout = 30 * time.Second

// HandshakeTimeout is an absolute deadline over a connection's
// opening exchange: dial through the gob header handshake. Unlike the
// rolling TransferTimeout (which a peer trickling one byte per
// interval can stretch forever, and which zero disables entirely),
// the handshake bound is absolute and stays in force even when
// TransferTimeout is disabled — a dialled peer that accepts and then
// hangs before completing the header exchange always surfaces a
// timeout. Zero disables it (tests that single-step the handshake).
var HandshakeTimeout = 10 * time.Second

// deadlineConn applies a rolling deadline around every conn operation
// and, until established() is called, caps every deadline at the
// absolute handshake bound. It also feeds the process-wide connection
// byte counters.
type deadlineConn struct {
	net.Conn
	timeout time.Duration
	hsUntil time.Time // absolute handshake deadline; zero once established
	closed  bool
}

// deadline computes the next I/O deadline: the rolling timeout,
// clipped to the handshake bound while it is in force.
func (c *deadlineConn) deadline() time.Time {
	var d time.Time
	if c.timeout > 0 {
		d = time.Now().Add(c.timeout)
	}
	if !c.hsUntil.IsZero() && (d.IsZero() || c.hsUntil.Before(d)) {
		d = c.hsUntil
	}
	return d
}

func (c *deadlineConn) Read(p []byte) (int, error) {
	if d := c.deadline(); !d.IsZero() {
		c.Conn.SetReadDeadline(d)
	}
	n, err := c.Conn.Read(p)
	connStats.bytesRead.Add(uint64(n))
	return n, err
}

func (c *deadlineConn) Write(p []byte) (int, error) {
	if d := c.deadline(); !d.IsZero() {
		c.Conn.SetWriteDeadline(d)
	}
	n, err := c.Conn.Write(p)
	connStats.bytesWritten.Add(uint64(n))
	return n, err
}

// established marks the header handshake complete: the absolute bound
// lifts, leaving only the rolling per-operation deadline, and the
// handshake counter ticks.
func (c *deadlineConn) established() {
	c.hsUntil = time.Time{}
	if c.timeout <= 0 {
		// Clear any deadline the handshake bound left armed.
		c.Conn.SetReadDeadline(time.Time{})
		c.Conn.SetWriteDeadline(time.Time{})
	}
	connStats.handshakes.Add(1)
}

func (c *deadlineConn) Close() error {
	if !c.closed {
		c.closed = true
		connStats.open.Add(-1)
	}
	return c.Conn.Close()
}

// dialData establishes a data connection with the handshake bound
// armed and rolling I/O deadlines after it.
func dialData(addr string) (*deadlineConn, error) {
	connStats.dials.Add(1)
	conn, err := net.DialTimeout("tcp", addr, DialTimeout)
	if err != nil {
		noteDialFailure(addr)
		return nil, fmt.Errorf("rpc: dialling %s: %w", addr, err)
	}
	noteDialSuccess(addr)
	connStats.open.Add(1)
	dc := &deadlineConn{Conn: conn, timeout: TransferTimeout}
	if HandshakeTimeout > 0 {
		dc.hsUntil = time.Now().Add(HandshakeTimeout)
	}
	return dc, nil
}

// tagReq stamps the request ID onto a dial or handshake failure so
// worker-side and client-side logs of the same transfer correlate.
func tagReq(err error, reqID string) error {
	if err == nil || reqID == "" {
		return err
	}
	return fmt.Errorf("%w [req=%s]", err, reqID)
}

// TransferTiming receives the connection-establishment phases of one
// transfer: TCP dial, gob header encode+send, and the peer's response
// frame decode (which includes the peer's pre-response work, e.g. the
// checksum scrub before a read). Pass it to the Timed open variants;
// the flight recorder folds it into the transfer's record.
type TransferTiming struct {
	DialNs         int64
	HeaderEncodeNs int64
	HeaderDecodeNs int64
}

// OpenBlockReader connects to a worker's data port and starts an
// OpReadBlock exchange. The returned ReadCloser streams exactly
// length bytes of verified block content; closing it closes the
// connection. length == -1 requests the remainder of the block.
func OpenBlockReader(addr string, block core.Block, storageID core.StorageID, offset, length int64) (io.ReadCloser, int64, error) {
	return OpenBlockReaderReq(addr, block, storageID, offset, length, "")
}

// OpenBlockReaderReq is OpenBlockReader with a request ID stamped on
// the exchange header so the worker's logs can be correlated with the
// client operation.
func OpenBlockReaderReq(addr string, block core.Block, storageID core.StorageID, offset, length int64, reqID string) (io.ReadCloser, int64, error) {
	return OpenBlockReaderSpan(addr, block, storageID, offset, length, reqID, "")
}

// OpenBlockReaderSpan is OpenBlockReaderReq with the caller's span ID
// stamped on the header, parenting the worker's read span.
func OpenBlockReaderSpan(addr string, block core.Block, storageID core.StorageID, offset, length int64, reqID, spanID string) (io.ReadCloser, int64, error) {
	return OpenBlockReaderTimed(addr, block, storageID, offset, length, reqID, spanID, nil)
}

// OpenBlockReaderTimed is OpenBlockReaderSpan recording the dial and
// header phases into tm (which may be nil).
func OpenBlockReaderTimed(addr string, block core.Block, storageID core.StorageID, offset, length int64, reqID, spanID string, tm *TransferTiming) (io.ReadCloser, int64, error) {
	if tm == nil {
		tm = &TransferTiming{}
	}
	start := time.Now()
	conn, err := dialData(addr)
	tm.DialNs = time.Since(start).Nanoseconds()
	if err != nil {
		return nil, 0, tagReq(err, reqID)
	}
	encStart := time.Now()
	if _, err := conn.Write([]byte{OpReadBlock}); err != nil {
		conn.Close()
		return nil, 0, tagReq(fmt.Errorf("rpc: sending read opcode: %w", err), reqID)
	}
	hdr := ReadBlockHeader{Block: block, Storage: storageID, Offset: offset, Length: length, ReqID: reqID, SpanID: spanID}
	if err := WriteFrame(conn, hdr); err != nil {
		conn.Close()
		return nil, 0, tagReq(err, reqID)
	}
	tm.HeaderEncodeNs = time.Since(encStart).Nanoseconds()
	decStart := time.Now()
	var resp ReadBlockResponse
	if err := ReadFrame(conn, &resp); err != nil {
		conn.Close()
		return nil, 0, tagReq(err, reqID)
	}
	tm.HeaderDecodeNs = time.Since(decStart).Nanoseconds()
	if resp.Err != "" {
		conn.Close()
		return nil, 0, DecodeError(resp.Err)
	}
	conn.established()
	return &blockReadCloser{r: NewPacketReader(conn), conn: conn}, resp.Length, nil
}

type blockReadCloser struct {
	r    *PacketReader
	conn net.Conn
}

func (b *blockReadCloser) Read(p []byte) (int, error) { return b.r.Read(p) }
func (b *blockReadCloser) Close() error               { return b.conn.Close() }

// AllocBytes reports the stream's transfer-local buffer allocations,
// for the flight recorder's churn accounting.
func (b *blockReadCloser) AllocBytes() int64 { return b.r.AllocBytes() }

// BlockWriter streams one block into a worker write pipeline. Create
// it with OpenBlockWriter, Write the content, then either Commit to
// finish synchronously or CloseStream followed by WaitAck to overlap
// the acknowledgement wait with other work.
type BlockWriter struct {
	conn net.Conn
	pw   *PacketWriter
	n    int64
	peer string

	// Accumulated phase timings, served by Phases. Atomic because a
	// writer being aborted may snapshot Phases while a background
	// WaitAck (split-commit mode) is still recording its wait.
	dialNs atomic.Int64
	hdrNs  atomic.Int64
	netNs  atomic.Int64
	ackNs  atomic.Int64
}

// OpenBlockWriter connects to the first pipeline stage and sends the
// write header. pipeline[0] is the stage being dialled.
func OpenBlockWriter(block core.Block, pipeline []PipelineTarget, client string) (*BlockWriter, error) {
	return OpenBlockWriterReq(block, pipeline, client, "")
}

// OpenBlockWriterReq is OpenBlockWriter with a request ID stamped on
// the pipeline header; every downstream stage forwards it, so one
// write is traceable across all its workers.
func OpenBlockWriterReq(block core.Block, pipeline []PipelineTarget, client, reqID string) (*BlockWriter, error) {
	return OpenBlockWriterSpan(block, pipeline, client, reqID, "")
}

// OpenBlockWriterSpan is OpenBlockWriterReq with the sender's span ID
// stamped on the header, parenting the first stage's write span.
func OpenBlockWriterSpan(block core.Block, pipeline []PipelineTarget, client, reqID, spanID string) (*BlockWriter, error) {
	if len(pipeline) == 0 {
		return nil, fmt.Errorf("rpc: empty write pipeline: %w", core.ErrNoWorkers)
	}
	start := time.Now()
	conn, err := dialData(pipeline[0].Address)
	dialNs := time.Since(start).Nanoseconds()
	if err != nil {
		return nil, tagReq(err, reqID)
	}
	encStart := time.Now()
	if _, err := conn.Write([]byte{OpWriteBlock}); err != nil {
		conn.Close()
		return nil, tagReq(fmt.Errorf("rpc: sending write opcode: %w", err), reqID)
	}
	hdr := WriteBlockHeader{Block: block, Pipeline: pipeline, Client: client, ReqID: reqID, SpanID: spanID}
	if err := WriteFrame(conn, hdr); err != nil {
		conn.Close()
		return nil, tagReq(err, reqID)
	}
	conn.established()
	bw := &BlockWriter{
		conn: conn,
		pw:   NewPacketWriter(conn),
		peer: pipeline[0].Address,
	}
	bw.dialNs.Store(dialNs)
	bw.hdrNs.Store(time.Since(encStart).Nanoseconds())
	return bw, nil
}

// Write implements io.Writer.
func (w *BlockWriter) Write(p []byte) (int, error) {
	start := time.Now()
	n, err := w.pw.Write(p)
	w.netNs.Add(time.Since(start).Nanoseconds())
	w.n += int64(n)
	return n, err
}

// Written returns the bytes written so far.
func (w *BlockWriter) Written() int64 { return w.n }

// Peer returns the address of the dialled pipeline stage.
func (w *BlockWriter) Peer() string { return w.peer }

// Phases returns the writer's accumulated phase timings: TCP dial,
// header encode+send, time blocked writing the packet stream, and
// time waiting for the pipeline ack (zero until WaitAck returns).
func (w *BlockWriter) Phases() (dialNs, headerEncodeNs, netNs, ackWaitNs int64) {
	return w.dialNs.Load(), w.hdrNs.Load(), w.netNs.Load(), w.ackNs.Load()
}

// AllocBytes reports the writer's transfer-local buffer allocations,
// for the flight recorder's churn accounting.
func (w *BlockWriter) AllocBytes() int64 { return w.pw.AllocBytes() }

// CloseStream terminates the packet stream (end packet + flush)
// without waiting for the pipeline acknowledgement, so the caller can
// start the next block while this one drains through the pipeline.
func (w *BlockWriter) CloseStream() error {
	start := time.Now()
	err := w.pw.Close()
	w.netNs.Add(time.Since(start).Nanoseconds())
	return err
}

// WaitAck collects the pipeline acknowledgement after CloseStream and
// closes the connection.
func (w *BlockWriter) WaitAck() error {
	defer w.conn.Close()
	start := time.Now()
	var ack WriteBlockAck
	err := ReadFrame(w.conn, &ack)
	w.ackNs.Store(time.Since(start).Nanoseconds())
	if err != nil {
		return fmt.Errorf("rpc: reading pipeline ack: %w", err)
	}
	return DecodeError(ack.Err)
}

// Commit terminates the stream, waits for the pipeline ack, and
// closes the connection.
func (w *BlockWriter) Commit() error {
	if err := w.CloseStream(); err != nil {
		w.conn.Close()
		return err
	}
	return w.WaitAck()
}

// Abort closes the connection without completing the stream.
func (w *BlockWriter) Abort() error { return w.conn.Close() }

// FetchSpans asks the worker at addr for its retained spans of one
// trace via an OpTraceDump exchange. The master uses it to assemble
// cross-daemon timelines.
func FetchSpans(addr, traceID string) ([]trace.Span, error) {
	conn, err := dialData(addr)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	if _, err := conn.Write([]byte{OpTraceDump}); err != nil {
		return nil, fmt.Errorf("rpc: sending trace-dump opcode: %w", err)
	}
	if err := WriteFrame(conn, TraceDumpHeader{TraceID: traceID}); err != nil {
		return nil, err
	}
	var resp TraceDumpResponse
	if err := ReadFrame(conn, &resp); err != nil {
		return nil, fmt.Errorf("rpc: reading trace dump: %w", err)
	}
	conn.established()
	return resp.Spans, nil
}

// FetchTransfers asks the worker at addr for one page of its transfer
// flight-recorder log via an OpTransferDump exchange. The master uses
// it to fan Master.GetTransfers out across the cluster.
func FetchTransfers(addr string, since uint64, op string, limit int) (xfer.Page, map[string]uint64, error) {
	conn, err := dialData(addr)
	if err != nil {
		return xfer.Page{Next: since}, nil, err
	}
	defer conn.Close()
	if _, err := conn.Write([]byte{OpTransferDump}); err != nil {
		return xfer.Page{Next: since}, nil, fmt.Errorf("rpc: sending transfer-dump opcode: %w", err)
	}
	if err := WriteFrame(conn, TransferDumpHeader{Since: since, Op: op, Limit: limit}); err != nil {
		return xfer.Page{Next: since}, nil, err
	}
	var resp TransferDumpResponse
	if err := ReadFrame(conn, &resp); err != nil {
		return xfer.Page{Next: since}, nil, fmt.Errorf("rpc: reading transfer dump: %w", err)
	}
	conn.established()
	return resp.Page, resp.Counts, nil
}
