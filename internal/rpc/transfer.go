package rpc

import (
	"fmt"
	"io"
	"net"
	"time"

	"repro/internal/core"
)

// DialTimeout bounds data-connection establishment.
const DialTimeout = 5 * time.Second

// OpenBlockReader connects to a worker's data port and starts an
// OpReadBlock exchange. The returned ReadCloser streams exactly
// length bytes of verified block content; closing it closes the
// connection. length == -1 requests the remainder of the block.
func OpenBlockReader(addr string, block core.Block, storageID core.StorageID, offset, length int64) (io.ReadCloser, int64, error) {
	return OpenBlockReaderReq(addr, block, storageID, offset, length, "")
}

// OpenBlockReaderReq is OpenBlockReader with a request ID stamped on
// the exchange header so the worker's logs can be correlated with the
// client operation.
func OpenBlockReaderReq(addr string, block core.Block, storageID core.StorageID, offset, length int64, reqID string) (io.ReadCloser, int64, error) {
	conn, err := net.DialTimeout("tcp", addr, DialTimeout)
	if err != nil {
		return nil, 0, fmt.Errorf("rpc: dialling %s: %w", addr, err)
	}
	if _, err := conn.Write([]byte{OpReadBlock}); err != nil {
		conn.Close()
		return nil, 0, fmt.Errorf("rpc: sending read opcode: %w", err)
	}
	hdr := ReadBlockHeader{Block: block, Storage: storageID, Offset: offset, Length: length, ReqID: reqID}
	if err := WriteFrame(conn, hdr); err != nil {
		conn.Close()
		return nil, 0, err
	}
	var resp ReadBlockResponse
	if err := ReadFrame(conn, &resp); err != nil {
		conn.Close()
		return nil, 0, err
	}
	if resp.Err != "" {
		conn.Close()
		return nil, 0, DecodeError(resp.Err)
	}
	return &blockReadCloser{r: NewPacketReader(conn), conn: conn}, resp.Length, nil
}

type blockReadCloser struct {
	r    *PacketReader
	conn net.Conn
}

func (b *blockReadCloser) Read(p []byte) (int, error) { return b.r.Read(p) }
func (b *blockReadCloser) Close() error               { return b.conn.Close() }

// BlockWriter streams one block into a worker write pipeline. Create
// it with OpenBlockWriter, Write the content, then Commit to collect
// the pipeline acknowledgement.
type BlockWriter struct {
	conn net.Conn
	pw   *PacketWriter
	n    int64
}

// OpenBlockWriter connects to the first pipeline stage and sends the
// write header. pipeline[0] is the stage being dialled.
func OpenBlockWriter(block core.Block, pipeline []PipelineTarget, client string) (*BlockWriter, error) {
	return OpenBlockWriterReq(block, pipeline, client, "")
}

// OpenBlockWriterReq is OpenBlockWriter with a request ID stamped on
// the pipeline header; every downstream stage forwards it, so one
// write is traceable across all its workers.
func OpenBlockWriterReq(block core.Block, pipeline []PipelineTarget, client, reqID string) (*BlockWriter, error) {
	if len(pipeline) == 0 {
		return nil, fmt.Errorf("rpc: empty write pipeline: %w", core.ErrNoWorkers)
	}
	conn, err := net.DialTimeout("tcp", pipeline[0].Address, DialTimeout)
	if err != nil {
		return nil, fmt.Errorf("rpc: dialling %s: %w", pipeline[0].Address, err)
	}
	if _, err := conn.Write([]byte{OpWriteBlock}); err != nil {
		conn.Close()
		return nil, fmt.Errorf("rpc: sending write opcode: %w", err)
	}
	hdr := WriteBlockHeader{Block: block, Pipeline: pipeline, Client: client, ReqID: reqID}
	if err := WriteFrame(conn, hdr); err != nil {
		conn.Close()
		return nil, err
	}
	return &BlockWriter{conn: conn, pw: NewPacketWriter(conn)}, nil
}

// Write implements io.Writer.
func (w *BlockWriter) Write(p []byte) (int, error) {
	n, err := w.pw.Write(p)
	w.n += int64(n)
	return n, err
}

// Written returns the bytes written so far.
func (w *BlockWriter) Written() int64 { return w.n }

// Commit terminates the stream, waits for the pipeline ack, and
// closes the connection.
func (w *BlockWriter) Commit() error {
	defer w.conn.Close()
	if err := w.pw.Close(); err != nil {
		return err
	}
	var ack WriteBlockAck
	if err := ReadFrame(w.conn, &ack); err != nil {
		return fmt.Errorf("rpc: reading pipeline ack: %w", err)
	}
	return DecodeError(ack.Err)
}

// Abort closes the connection without completing the stream.
func (w *BlockWriter) Abort() error { return w.conn.Close() }
