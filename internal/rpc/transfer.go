package rpc

import (
	"fmt"
	"io"
	"net"
	"time"

	"repro/internal/core"
	"repro/internal/trace"
)

// DialTimeout bounds data-connection establishment.
const DialTimeout = 5 * time.Second

// TransferTimeout bounds each individual read or write on a data
// connection once it is established. It is a rolling deadline: the
// clock restarts on every packet, so a long transfer over a healthy
// link never trips it, but a worker that accepts a connection and then
// hangs surfaces an i/o timeout instead of stalling the client
// forever. Tests shorten it; zero disables deadlines.
var TransferTimeout = 30 * time.Second

// deadlineConn applies a rolling deadline around every conn operation.
type deadlineConn struct {
	net.Conn
	timeout time.Duration
}

func (c *deadlineConn) Read(p []byte) (int, error) {
	if c.timeout > 0 {
		c.Conn.SetReadDeadline(time.Now().Add(c.timeout))
	}
	return c.Conn.Read(p)
}

func (c *deadlineConn) Write(p []byte) (int, error) {
	if c.timeout > 0 {
		c.Conn.SetWriteDeadline(time.Now().Add(c.timeout))
	}
	return c.Conn.Write(p)
}

// dialData establishes a data connection with rolling I/O deadlines.
func dialData(addr string) (net.Conn, error) {
	conn, err := net.DialTimeout("tcp", addr, DialTimeout)
	if err != nil {
		return nil, fmt.Errorf("rpc: dialling %s: %w", addr, err)
	}
	return &deadlineConn{Conn: conn, timeout: TransferTimeout}, nil
}

// OpenBlockReader connects to a worker's data port and starts an
// OpReadBlock exchange. The returned ReadCloser streams exactly
// length bytes of verified block content; closing it closes the
// connection. length == -1 requests the remainder of the block.
func OpenBlockReader(addr string, block core.Block, storageID core.StorageID, offset, length int64) (io.ReadCloser, int64, error) {
	return OpenBlockReaderReq(addr, block, storageID, offset, length, "")
}

// OpenBlockReaderReq is OpenBlockReader with a request ID stamped on
// the exchange header so the worker's logs can be correlated with the
// client operation.
func OpenBlockReaderReq(addr string, block core.Block, storageID core.StorageID, offset, length int64, reqID string) (io.ReadCloser, int64, error) {
	return OpenBlockReaderSpan(addr, block, storageID, offset, length, reqID, "")
}

// OpenBlockReaderSpan is OpenBlockReaderReq with the caller's span ID
// stamped on the header, parenting the worker's read span.
func OpenBlockReaderSpan(addr string, block core.Block, storageID core.StorageID, offset, length int64, reqID, spanID string) (io.ReadCloser, int64, error) {
	conn, err := dialData(addr)
	if err != nil {
		return nil, 0, err
	}
	if _, err := conn.Write([]byte{OpReadBlock}); err != nil {
		conn.Close()
		return nil, 0, fmt.Errorf("rpc: sending read opcode: %w", err)
	}
	hdr := ReadBlockHeader{Block: block, Storage: storageID, Offset: offset, Length: length, ReqID: reqID, SpanID: spanID}
	if err := WriteFrame(conn, hdr); err != nil {
		conn.Close()
		return nil, 0, err
	}
	var resp ReadBlockResponse
	if err := ReadFrame(conn, &resp); err != nil {
		conn.Close()
		return nil, 0, err
	}
	if resp.Err != "" {
		conn.Close()
		return nil, 0, DecodeError(resp.Err)
	}
	return &blockReadCloser{r: NewPacketReader(conn), conn: conn}, resp.Length, nil
}

type blockReadCloser struct {
	r    *PacketReader
	conn net.Conn
}

func (b *blockReadCloser) Read(p []byte) (int, error) { return b.r.Read(p) }
func (b *blockReadCloser) Close() error               { return b.conn.Close() }

// BlockWriter streams one block into a worker write pipeline. Create
// it with OpenBlockWriter, Write the content, then either Commit to
// finish synchronously or CloseStream followed by WaitAck to overlap
// the acknowledgement wait with other work.
type BlockWriter struct {
	conn net.Conn
	pw   *PacketWriter
	n    int64
}

// OpenBlockWriter connects to the first pipeline stage and sends the
// write header. pipeline[0] is the stage being dialled.
func OpenBlockWriter(block core.Block, pipeline []PipelineTarget, client string) (*BlockWriter, error) {
	return OpenBlockWriterReq(block, pipeline, client, "")
}

// OpenBlockWriterReq is OpenBlockWriter with a request ID stamped on
// the pipeline header; every downstream stage forwards it, so one
// write is traceable across all its workers.
func OpenBlockWriterReq(block core.Block, pipeline []PipelineTarget, client, reqID string) (*BlockWriter, error) {
	return OpenBlockWriterSpan(block, pipeline, client, reqID, "")
}

// OpenBlockWriterSpan is OpenBlockWriterReq with the sender's span ID
// stamped on the header, parenting the first stage's write span.
func OpenBlockWriterSpan(block core.Block, pipeline []PipelineTarget, client, reqID, spanID string) (*BlockWriter, error) {
	if len(pipeline) == 0 {
		return nil, fmt.Errorf("rpc: empty write pipeline: %w", core.ErrNoWorkers)
	}
	conn, err := dialData(pipeline[0].Address)
	if err != nil {
		return nil, err
	}
	if _, err := conn.Write([]byte{OpWriteBlock}); err != nil {
		conn.Close()
		return nil, fmt.Errorf("rpc: sending write opcode: %w", err)
	}
	hdr := WriteBlockHeader{Block: block, Pipeline: pipeline, Client: client, ReqID: reqID, SpanID: spanID}
	if err := WriteFrame(conn, hdr); err != nil {
		conn.Close()
		return nil, err
	}
	return &BlockWriter{conn: conn, pw: NewPacketWriter(conn)}, nil
}

// Write implements io.Writer.
func (w *BlockWriter) Write(p []byte) (int, error) {
	n, err := w.pw.Write(p)
	w.n += int64(n)
	return n, err
}

// Written returns the bytes written so far.
func (w *BlockWriter) Written() int64 { return w.n }

// CloseStream terminates the packet stream (end packet + flush)
// without waiting for the pipeline acknowledgement, so the caller can
// start the next block while this one drains through the pipeline.
func (w *BlockWriter) CloseStream() error {
	return w.pw.Close()
}

// WaitAck collects the pipeline acknowledgement after CloseStream and
// closes the connection.
func (w *BlockWriter) WaitAck() error {
	defer w.conn.Close()
	var ack WriteBlockAck
	if err := ReadFrame(w.conn, &ack); err != nil {
		return fmt.Errorf("rpc: reading pipeline ack: %w", err)
	}
	return DecodeError(ack.Err)
}

// Commit terminates the stream, waits for the pipeline ack, and
// closes the connection.
func (w *BlockWriter) Commit() error {
	if err := w.CloseStream(); err != nil {
		w.conn.Close()
		return err
	}
	return w.WaitAck()
}

// Abort closes the connection without completing the stream.
func (w *BlockWriter) Abort() error { return w.conn.Close() }

// FetchSpans asks the worker at addr for its retained spans of one
// trace via an OpTraceDump exchange. The master uses it to assemble
// cross-daemon timelines.
func FetchSpans(addr, traceID string) ([]trace.Span, error) {
	conn, err := dialData(addr)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	if _, err := conn.Write([]byte{OpTraceDump}); err != nil {
		return nil, fmt.Errorf("rpc: sending trace-dump opcode: %w", err)
	}
	if err := WriteFrame(conn, TraceDumpHeader{TraceID: traceID}); err != nil {
		return nil, err
	}
	var resp TraceDumpResponse
	if err := ReadFrame(conn, &resp); err != nil {
		return nil, fmt.Errorf("rpc: reading trace dump: %w", err)
	}
	return resp.Spans, nil
}
