package rpc

import (
	"fmt"
	"io"
	"net"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/trace"
	"repro/internal/xfer"
)

// DialTimeout bounds data-connection establishment.
const DialTimeout = 5 * time.Second

// transferTimeoutNs and handshakeTimeoutNs hold the configurable
// data-path deadlines as atomics: tests shrink them while transfer
// goroutines read them, so plain package vars would race.
var (
	transferTimeoutNs  atomic.Int64
	handshakeTimeoutNs atomic.Int64
)

func init() {
	transferTimeoutNs.Store(int64(30 * time.Second))
	handshakeTimeoutNs.Store(int64(10 * time.Second))
}

// TransferTimeout returns the rolling deadline applied to each
// individual read or write on a data connection once it is
// established: the clock restarts on every packet, so a long transfer
// over a healthy link never trips it, but a worker that accepts a
// connection and then hangs surfaces an i/o timeout instead of
// stalling the client forever. Zero disables deadlines.
func TransferTimeout() time.Duration { return time.Duration(transferTimeoutNs.Load()) }

// SetTransferTimeout changes the rolling transfer deadline. It applies
// to connections established (or checked out of the pool) afterwards.
func SetTransferTimeout(d time.Duration) { transferTimeoutNs.Store(int64(d)) }

// HandshakeTimeout returns the absolute deadline over a connection's
// opening exchange: dial through the header handshake. Unlike the
// rolling TransferTimeout (which a peer trickling one byte per
// interval can stretch forever, and which zero disables entirely),
// the handshake bound is absolute and stays in force even when
// TransferTimeout is disabled — a dialled peer that accepts and then
// hangs before completing the header exchange always surfaces a
// timeout. Zero disables it (tests that single-step the handshake).
func HandshakeTimeout() time.Duration { return time.Duration(handshakeTimeoutNs.Load()) }

// SetHandshakeTimeout changes the absolute handshake bound.
func SetHandshakeTimeout(d time.Duration) { handshakeTimeoutNs.Store(int64(d)) }

// deadlineConn applies a rolling deadline around every conn operation
// and, until established() is called, caps every deadline at the
// absolute handshake bound. It also feeds the process-wide connection
// byte counters.
//
// Deadline arming is coarsened: once a rolling deadline is set, it is
// only pushed forward again after a quarter of the timeout window has
// elapsed, so a packet stream costs one SetDeadline syscall per
// timeout/4 instead of one per packet. The effective deadline is thus
// between 0.75×timeout and timeout — the slack tests must tolerate.
type deadlineConn struct {
	net.Conn
	timeout  time.Duration
	hsUntil  time.Time // absolute handshake deadline; zero once established
	armedR   time.Time // read deadline currently armed on the conn
	armedW   time.Time // write deadline currently armed on the conn
	closed   bool
	lastAddr string // dialled address, the pool key
}

// deadline computes the next I/O deadline: the rolling timeout,
// clipped to the handshake bound while it is in force.
func (c *deadlineConn) deadline() time.Time {
	var d time.Time
	if c.timeout > 0 {
		d = time.Now().Add(c.timeout)
	}
	if !c.hsUntil.IsZero() && (d.IsZero() || c.hsUntil.Before(d)) {
		d = c.hsUntil
	}
	return d
}

func (c *deadlineConn) Read(p []byte) (int, error) {
	if d := c.deadline(); !d.IsZero() {
		if !c.hsUntil.IsZero() || c.armedR.IsZero() || d.Sub(c.armedR) > c.timeout/4 {
			c.Conn.SetReadDeadline(d)
			c.armedR = d
		}
	} else if !c.armedR.IsZero() {
		c.Conn.SetReadDeadline(time.Time{})
		c.armedR = time.Time{}
	}
	n, err := c.Conn.Read(p)
	connStats.bytesRead.Add(uint64(n))
	return n, err
}

func (c *deadlineConn) Write(p []byte) (int, error) {
	if d := c.deadline(); !d.IsZero() {
		if !c.hsUntil.IsZero() || c.armedW.IsZero() || d.Sub(c.armedW) > c.timeout/4 {
			c.Conn.SetWriteDeadline(d)
			c.armedW = d
		}
	} else if !c.armedW.IsZero() {
		c.Conn.SetWriteDeadline(time.Time{})
		c.armedW = time.Time{}
	}
	n, err := c.Conn.Write(p)
	connStats.bytesWritten.Add(uint64(n))
	return n, err
}

// established marks the header handshake complete: the absolute bound
// lifts, leaving only the rolling per-operation deadline, and the
// handshake counter ticks.
func (c *deadlineConn) established() {
	c.hsUntil = time.Time{}
	if c.timeout <= 0 {
		// Clear any deadline the handshake bound left armed.
		c.Conn.SetReadDeadline(time.Time{})
		c.Conn.SetWriteDeadline(time.Time{})
		c.armedR, c.armedW = time.Time{}, time.Time{}
	}
	connStats.handshakes.Add(1)
}

// rearm readies a freshly dialled or pool-checked-out connection for a
// new transfer: deadlines cleared, the current timeout configuration
// loaded, and the handshake bound armed.
func (c *deadlineConn) rearm() {
	c.Conn.SetReadDeadline(time.Time{})
	c.Conn.SetWriteDeadline(time.Time{})
	c.armedR, c.armedW = time.Time{}, time.Time{}
	c.timeout = TransferTimeout()
	if hs := HandshakeTimeout(); hs > 0 {
		c.hsUntil = time.Now().Add(hs)
	} else {
		c.hsUntil = time.Time{}
	}
}

func (c *deadlineConn) Close() error {
	if !c.closed {
		c.closed = true
		connStats.open.Add(-1)
	}
	return c.Conn.Close()
}

// dialData establishes a fresh data connection with the handshake
// bound armed and rolling I/O deadlines after it.
func dialData(addr string) (*deadlineConn, error) {
	connStats.dials.Add(1)
	conn, err := net.DialTimeout("tcp", addr, DialTimeout)
	if err != nil {
		noteDialFailure(addr)
		return nil, fmt.Errorf("rpc: dialling %s: %w", addr, err)
	}
	noteDialSuccess(addr)
	connStats.open.Add(1)
	dc := &deadlineConn{Conn: conn, lastAddr: addr}
	dc.timeout = TransferTimeout()
	if hs := HandshakeTimeout(); hs > 0 {
		dc.hsUntil = time.Now().Add(hs)
	}
	return dc, nil
}

// checkoutData returns a data connection to addr: a pooled idle one
// when a healthy candidate exists (pooled == true, no dial), a fresh
// dial otherwise.
func checkoutData(addr string) (dc *deadlineConn, pooled bool, err error) {
	if dc := dataPool.take(addr); dc != nil {
		dc.rearm()
		return dc, true, nil
	}
	dc, err = dialData(addr)
	return dc, false, err
}

// releaseData returns a connection whose exchange completed cleanly
// (every request byte consumed, every response byte read) to the idle
// pool for the next transfer to the same worker.
func releaseData(dc *deadlineConn) {
	dataPool.put(dc)
}

// tagReq stamps the request ID onto a dial or handshake failure so
// worker-side and client-side logs of the same transfer correlate.
func tagReq(err error, reqID string) error {
	if err == nil || reqID == "" {
		return err
	}
	return fmt.Errorf("%w [req=%s]", err, reqID)
}

// TransferTiming receives the connection-establishment phases of one
// transfer: TCP dial (or pool checkout), header encode+send, and the
// peer's response frame decode (which includes the peer's pre-response
// work, e.g. the checksum scrub before a read). Pass it to the Timed
// open variants; the flight recorder folds it into the transfer's
// record.
type TransferTiming struct {
	DialNs         int64
	HeaderEncodeNs int64
	HeaderDecodeNs int64

	// PoolHit reports that the transfer reused a pooled connection
	// instead of dialling: DialNs is then the checkout cost, which
	// collapses to ~0 on warm paths.
	PoolHit bool
}

// OpenBlockReader connects to a worker's data port and starts an
// OpReadBlock exchange. The returned ReadCloser streams exactly
// length bytes of verified block content; closing it returns the
// connection to the pool when the stream completed cleanly and closes
// it otherwise. length == -1 requests the remainder of the block.
func OpenBlockReader(addr string, block core.Block, storageID core.StorageID, offset, length int64) (io.ReadCloser, int64, error) {
	return OpenBlockReaderReq(addr, block, storageID, offset, length, "")
}

// OpenBlockReaderReq is OpenBlockReader with a request ID stamped on
// the exchange header so the worker's logs can be correlated with the
// client operation.
func OpenBlockReaderReq(addr string, block core.Block, storageID core.StorageID, offset, length int64, reqID string) (io.ReadCloser, int64, error) {
	return OpenBlockReaderSpan(addr, block, storageID, offset, length, reqID, "")
}

// OpenBlockReaderSpan is OpenBlockReaderReq with the caller's span ID
// stamped on the header, parenting the worker's read span.
func OpenBlockReaderSpan(addr string, block core.Block, storageID core.StorageID, offset, length int64, reqID, spanID string) (io.ReadCloser, int64, error) {
	return OpenBlockReaderTimed(addr, block, storageID, offset, length, reqID, spanID, nil)
}

// OpenBlockReaderTimed is OpenBlockReaderSpan recording the dial and
// header phases into tm (which may be nil). A pooled connection that
// turns out stale mid-handshake (the worker closed it while idle) is
// discarded and the exchange retried once over a fresh dial, so
// callers never see pool staleness.
func OpenBlockReaderTimed(addr string, block core.Block, storageID core.StorageID, offset, length int64, reqID, spanID string, tm *TransferTiming) (io.ReadCloser, int64, error) {
	if tm == nil {
		tm = &TransferTiming{}
	}
	hdr := ReadBlockHeader{Block: block, Storage: storageID, Offset: offset, Length: length, ReqID: reqID, SpanID: spanID}
	for freshOnly := false; ; freshOnly = true {
		start := time.Now()
		var conn *deadlineConn
		var pooled bool
		var err error
		if freshOnly {
			conn, err = dialData(addr)
		} else {
			conn, pooled, err = checkoutData(addr)
		}
		tm.DialNs = time.Since(start).Nanoseconds()
		tm.PoolHit = pooled
		if err != nil {
			return nil, 0, tagReq(err, reqID)
		}
		encStart := time.Now()
		var resp ReadBlockResponse
		err = func() error {
			if _, err := conn.Write([]byte{OpReadBlock}); err != nil {
				return fmt.Errorf("rpc: sending read opcode: %w", err)
			}
			if err := WriteFrame(conn, hdr); err != nil {
				return err
			}
			tm.HeaderEncodeNs = time.Since(encStart).Nanoseconds()
			decStart := time.Now()
			if err := ReadFrame(conn, &resp); err != nil {
				return err
			}
			tm.HeaderDecodeNs = time.Since(decStart).Nanoseconds()
			return nil
		}()
		if err != nil {
			conn.Close()
			if pooled && !freshOnly {
				dataPool.noteStale()
				continue // the idle conn went stale under us; retry fresh
			}
			return nil, 0, tagReq(err, reqID)
		}
		if resp.Err != "" {
			// A refusal leaves the exchange complete and the conn clean.
			conn.established()
			releaseData(conn)
			return nil, 0, DecodeError(resp.Err)
		}
		conn.established()
		return &blockReadCloser{r: NewPacketReader(conn), conn: conn, poolHit: pooled}, resp.Length, nil
	}
}

// drainGrace bounds how long Close waits for the end-of-stream packet
// of a fully consumed block before giving up on reusing the conn.
const drainGrace = 20 * time.Millisecond

type blockReadCloser struct {
	r        *PacketReader
	conn     *deadlineConn
	released bool
	poolHit  bool
}

func (b *blockReadCloser) Read(p []byte) (int, error) { return b.r.Read(p) }

// PoolHit reports whether the stream's connection was reused from the
// pool; flight-recorder entries surface it per transfer.
func (b *blockReadCloser) PoolHit() bool { return b.poolHit }

// Close returns the connection to the pool when the packet stream was
// consumed to its end marker — the usual case, since readers drain
// exactly the advertised length — and closes it otherwise (an
// abandoned stream would poison the next transfer). A stream whose
// data packets were fully drained but whose end marker is still in
// flight gets one brief bounded attempt to consume it.
func (b *blockReadCloser) Close() error {
	if b.released {
		return nil
	}
	b.released = true
	clean := b.r.Drained()
	if !clean && b.r.PendingEmpty() {
		b.conn.hsUntil = time.Now().Add(drainGrace)
		clean = b.r.TryFinish()
		b.conn.hsUntil = time.Time{}
	}
	var err error
	if clean {
		releaseData(b.conn)
	} else {
		err = b.conn.Close()
	}
	b.r.Release()
	return err
}

// AllocBytes reports the stream's transfer-local buffer allocations,
// for the flight recorder's churn accounting.
func (b *blockReadCloser) AllocBytes() int64 { return b.r.AllocBytes() }

// BlockWriter streams one block into a worker write pipeline. Create
// it with OpenBlockWriter, Write the content, then either Commit to
// finish synchronously or CloseStream followed by WaitAck to overlap
// the acknowledgement wait with other work.
type BlockWriter struct {
	conn    *deadlineConn
	pw      *PacketWriter
	n       int64
	peer    string
	poolHit bool

	// finished guards the connection's end-of-life exactly once:
	// WaitAck releases it to the pool (clean) or closes it (error),
	// and a concurrent Abort closes it — whoever transitions first
	// wins, so an acked conn can never be closed out from under the
	// next transfer that checked it out.
	finished atomic.Bool

	// Accumulated phase timings, served by Phases. Atomic because a
	// writer being aborted may snapshot Phases while a background
	// WaitAck (split-commit mode) is still recording its wait.
	dialNs atomic.Int64
	hdrNs  atomic.Int64
	netNs  atomic.Int64
	ackNs  atomic.Int64
}

// OpenBlockWriter connects to the first pipeline stage and sends the
// write header. pipeline[0] is the stage being dialled.
func OpenBlockWriter(block core.Block, pipeline []PipelineTarget, client string) (*BlockWriter, error) {
	return OpenBlockWriterReq(block, pipeline, client, "")
}

// OpenBlockWriterReq is OpenBlockWriter with a request ID stamped on
// the pipeline header; every downstream stage forwards it, so one
// write is traceable across all its workers.
func OpenBlockWriterReq(block core.Block, pipeline []PipelineTarget, client, reqID string) (*BlockWriter, error) {
	return OpenBlockWriterSpan(block, pipeline, client, reqID, "")
}

// OpenBlockWriterSpan is OpenBlockWriterReq with the sender's span ID
// stamped on the header, parenting the first stage's write span. Like
// the reader open, a stale pooled connection is discarded and retried
// once over a fresh dial.
func OpenBlockWriterSpan(block core.Block, pipeline []PipelineTarget, client, reqID, spanID string) (*BlockWriter, error) {
	if len(pipeline) == 0 {
		return nil, fmt.Errorf("rpc: empty write pipeline: %w", core.ErrNoWorkers)
	}
	hdr := WriteBlockHeader{Block: block, Pipeline: pipeline, Client: client, ReqID: reqID, SpanID: spanID}
	for freshOnly := false; ; freshOnly = true {
		start := time.Now()
		var conn *deadlineConn
		var pooled bool
		var err error
		if freshOnly {
			conn, err = dialData(pipeline[0].Address)
		} else {
			conn, pooled, err = checkoutData(pipeline[0].Address)
		}
		dialNs := time.Since(start).Nanoseconds()
		if err != nil {
			return nil, tagReq(err, reqID)
		}
		encStart := time.Now()
		err = func() error {
			if _, err := conn.Write([]byte{OpWriteBlock}); err != nil {
				return fmt.Errorf("rpc: sending write opcode: %w", err)
			}
			return WriteFrame(conn, hdr)
		}()
		if err != nil {
			conn.Close()
			if pooled && !freshOnly {
				dataPool.noteStale()
				continue
			}
			return nil, tagReq(err, reqID)
		}
		conn.established()
		bw := &BlockWriter{
			conn:    conn,
			pw:      NewPacketWriter(conn),
			peer:    pipeline[0].Address,
			poolHit: pooled,
		}
		bw.dialNs.Store(dialNs)
		bw.hdrNs.Store(time.Since(encStart).Nanoseconds())
		return bw, nil
	}
}

// Write implements io.Writer.
func (w *BlockWriter) Write(p []byte) (int, error) {
	start := time.Now()
	n, err := w.pw.Write(p)
	w.netNs.Add(time.Since(start).Nanoseconds())
	w.n += int64(n)
	return n, err
}

// Written returns the bytes written so far.
func (w *BlockWriter) Written() int64 { return w.n }

// Peer returns the address of the dialled pipeline stage.
func (w *BlockWriter) Peer() string { return w.peer }

// PoolHit reports whether the pipeline connection was reused from the
// pool instead of freshly dialled.
func (w *BlockWriter) PoolHit() bool { return w.poolHit }

// Phases returns the writer's accumulated phase timings: TCP dial,
// header encode+send, time blocked writing the packet stream, and
// time waiting for the pipeline ack (zero until WaitAck returns).
func (w *BlockWriter) Phases() (dialNs, headerEncodeNs, netNs, ackWaitNs int64) {
	return w.dialNs.Load(), w.hdrNs.Load(), w.netNs.Load(), w.ackNs.Load()
}

// AllocBytes reports the writer's transfer-local buffer allocations,
// for the flight recorder's churn accounting.
func (w *BlockWriter) AllocBytes() int64 { return w.pw.AllocBytes() }

// CloseStream terminates the packet stream (end packet + flush)
// without waiting for the pipeline acknowledgement, so the caller can
// start the next block while this one drains through the pipeline.
func (w *BlockWriter) CloseStream() error {
	start := time.Now()
	err := w.pw.Close()
	w.netNs.Add(time.Since(start).Nanoseconds())
	return err
}

// WaitAck collects the pipeline acknowledgement after CloseStream. On
// a clean ack the connection goes back to the pool for the writer's
// next block; on error (or when a concurrent Abort got there first)
// it is closed.
func (w *BlockWriter) WaitAck() error {
	start := time.Now()
	var ack WriteBlockAck
	err := ReadFrame(w.conn, &ack)
	w.ackNs.Store(time.Since(start).Nanoseconds())
	if w.finished.CompareAndSwap(false, true) {
		if err == nil {
			releaseData(w.conn)
		} else {
			w.conn.Close()
		}
		w.pw.Release()
	}
	if err != nil {
		return fmt.Errorf("rpc: reading pipeline ack: %w", err)
	}
	return DecodeError(ack.Err)
}

// Commit terminates the stream, waits for the pipeline ack, and
// releases the connection.
func (w *BlockWriter) Commit() error {
	if err := w.CloseStream(); err != nil {
		w.Abort()
		return err
	}
	return w.WaitAck()
}

// Abort closes the connection without completing the stream. It is a
// no-op if WaitAck already settled the connection's fate.
func (w *BlockWriter) Abort() error {
	if !w.finished.CompareAndSwap(false, true) {
		return nil
	}
	err := w.conn.Close()
	w.pw.Release()
	return err
}

// FetchSpans asks the worker at addr for its retained spans of one
// trace via an OpTraceDump exchange. The master uses it to assemble
// cross-daemon timelines.
func FetchSpans(addr, traceID string) ([]trace.Span, error) {
	for freshOnly := false; ; freshOnly = true {
		var conn *deadlineConn
		var pooled bool
		var err error
		if freshOnly {
			conn, err = dialData(addr)
		} else {
			conn, pooled, err = checkoutData(addr)
		}
		if err != nil {
			return nil, err
		}
		var resp TraceDumpResponse
		err = func() error {
			if _, err := conn.Write([]byte{OpTraceDump}); err != nil {
				return fmt.Errorf("rpc: sending trace-dump opcode: %w", err)
			}
			if err := WriteFrame(conn, TraceDumpHeader{TraceID: traceID}); err != nil {
				return err
			}
			if err := ReadFrame(conn, &resp); err != nil {
				return fmt.Errorf("rpc: reading trace dump: %w", err)
			}
			return nil
		}()
		if err != nil {
			conn.Close()
			if pooled && !freshOnly {
				dataPool.noteStale()
				continue
			}
			return nil, err
		}
		conn.established()
		releaseData(conn)
		return resp.Spans, nil
	}
}

// FetchTransfers asks the worker at addr for one page of its transfer
// flight-recorder log via an OpTransferDump exchange. The master uses
// it to fan Master.GetTransfers out across the cluster.
func FetchTransfers(addr string, since uint64, op string, limit int) (xfer.Page, map[string]uint64, error) {
	for freshOnly := false; ; freshOnly = true {
		var conn *deadlineConn
		var pooled bool
		var err error
		if freshOnly {
			conn, err = dialData(addr)
		} else {
			conn, pooled, err = checkoutData(addr)
		}
		if err != nil {
			return xfer.Page{Next: since}, nil, err
		}
		var resp TransferDumpResponse
		err = func() error {
			if _, err := conn.Write([]byte{OpTransferDump}); err != nil {
				return fmt.Errorf("rpc: sending transfer-dump opcode: %w", err)
			}
			if err := WriteFrame(conn, TransferDumpHeader{Since: since, Op: op, Limit: limit}); err != nil {
				return err
			}
			if err := ReadFrame(conn, &resp); err != nil {
				return fmt.Errorf("rpc: reading transfer dump: %w", err)
			}
			return nil
		}()
		if err != nil {
			conn.Close()
			if pooled && !freshOnly {
				dataPool.noteStale()
				continue
			}
			return xfer.Page{Next: since}, nil, err
		}
		conn.established()
		releaseData(conn)
		return resp.Page, resp.Counts, nil
	}
}
