package rpc

import (
	"repro/internal/audit"
	"repro/internal/core"
	"repro/internal/events"
	"repro/internal/heat"
	"repro/internal/trace"
	"repro/internal/xfer"
)

// This file defines the net/rpc message types of the two master
// protocols: the client protocol (file system operations, paper §2.3)
// and the worker protocol (registration, heartbeats, block reports,
// paper §2.1–§2.2). Every argument struct embeds ReqHeader so the
// caller's request ID travels with the operation for cross-node log
// correlation and slow-op tracing.

// FileStatus describes one file or directory to clients.
type FileStatus struct {
	Path      string
	IsDir     bool
	Length    int64 // total file bytes (0 for directories)
	RepVector core.ReplicationVector
	BlockSize int64
	ModTime   int64 // Unix nanoseconds
	Owner     string
}

// MkdirArgs / MkdirReply implement Master.Mkdir.
type MkdirArgs struct {
	ReqHeader
	Path    string
	Parents bool // create missing parents like mkdir -p
	Owner   string
}
type MkdirReply struct{}

// CreateArgs / CreateReply implement Master.Create (paper Table 1:
// create with a replication vector instead of a replication factor).
type CreateArgs struct {
	ReqHeader
	Path      string
	RepVector core.ReplicationVector
	BlockSize int64
	Overwrite bool
	Owner     string
	// ClientNode is the topology node the writer runs on ("" if
	// off-cluster); the placement policy uses it for collocation.
	ClientNode string
}
type CreateReply struct{}

// AddBlockArgs / AddBlockReply implement Master.AddBlock: commit the
// previous block (if any) and allocate the next one with replica
// locations chosen by the placement policy.
type AddBlockArgs struct {
	ReqHeader
	Path       string
	ClientNode string
	// Previous is the just-finished block with its final length; nil
	// for the first block of a file.
	Previous *core.Block
}
type AddBlockReply struct {
	Located core.LocatedBlock
}

// CommitBlockArgs / -Reply implement Master.CommitBlock: record the
// final length of a finished block without allocating a successor.
// The overlapped client write path commits each block as its pipeline
// ack arrives instead of piggybacking the commit on the next AddBlock.
type CommitBlockArgs struct {
	ReqHeader
	Path  string
	Block core.Block
}
type CommitBlockReply struct{}

// CompleteArgs / CompleteReply implement Master.Complete: commit the
// final block and seal the file.
type CompleteArgs struct {
	ReqHeader
	Path string
	Last *core.Block // nil for an empty file
}
type CompleteReply struct{}

// AbandonArgs / AbandonReply implement Master.Abandon: drop an
// under-construction file after a failed write.
type AbandonArgs struct {
	ReqHeader
	Path string
}
type AbandonReply struct{}

// AbandonBlockArgs / -Reply implement Master.AbandonBlock: drop the
// last, uncommitted block of an under-construction file after a
// failed pipeline write so the client can allocate a replacement.
type AbandonBlockArgs struct {
	ReqHeader
	Path  string
	Block core.Block
}
type AbandonBlockReply struct{}

// GetBlockLocationsArgs / -Reply implement Master.GetBlockLocations
// (paper Table 1: getFileBlockLocations exposing storage tiers).
type GetBlockLocationsArgs struct {
	ReqHeader
	Path       string
	Offset     int64
	Length     int64
	ClientNode string // for locality-aware replica ordering
}
type GetBlockLocationsReply struct {
	FileLength int64
	Blocks     []core.LocatedBlock
}

// GetFileInfoArgs / -Reply implement Master.GetFileInfo.
type GetFileInfoArgs struct {
	ReqHeader
	Path string
}
type GetFileInfoReply struct {
	Status FileStatus
}

// ListArgs / ListReply implement Master.List.
type ListArgs struct {
	ReqHeader
	Path string
}
type ListReply struct {
	Entries []FileStatus
}

// DeleteArgs / DeleteReply implement Master.Delete.
type DeleteArgs struct {
	ReqHeader
	Path      string
	Recursive bool
}
type DeleteReply struct{}

// RenameArgs / RenameReply implement Master.Rename.
type RenameArgs struct {
	ReqHeader
	Src, Dst string
}
type RenameReply struct{}

// SetReplicationArgs / -Reply implement Master.SetReplication (paper
// Table 1: setReplication with a replication vector, driving
// move/copy/delete of replicas across tiers).
type SetReplicationArgs struct {
	ReqHeader
	Path      string
	RepVector core.ReplicationVector
}
type SetReplicationReply struct{}

// TierReportsArgs / -Reply implement Master.GetStorageTierReports
// (paper Table 1).
type TierReportsArgs struct{ ReqHeader }
type TierReportsReply struct {
	Reports []core.StorageTierReport
}

// SetQuotaArgs / SetQuotaReply implement Master.SetQuota: per-tier
// byte quotas on a directory (paper §1: quota mechanisms per storage
// media for multi-tenancy).
type SetQuotaArgs struct {
	ReqHeader
	Path  string
	Tier  core.StorageTier // TierUnspecified sets the total-space quota
	Bytes int64            // -1 clears the quota
}
type SetQuotaReply struct{}

// MediaStat is a worker's per-media statistics report, delivered at
// registration and in every heartbeat (paper §3.2).
type MediaStat struct {
	ID          core.StorageID
	Tier        core.StorageTier
	Capacity    int64
	Remaining   int64
	Connections int
	WriteMBps   float64
	ReadMBps    float64
}

// RegisterArgs / RegisterReply implement Master.Register.
type RegisterArgs struct {
	ReqHeader
	ID       core.WorkerID
	Node     string
	Rack     string
	DataAddr string // host:port of the worker's data-transfer endpoint
	HTTPAddr string // host:port of the worker's debug HTTP endpoint ("" if disabled)
	NetMBps  float64
	Media    []MediaStat
}
type RegisterReply struct {
	// Registered echoes the accepted worker ID.
	Registered core.WorkerID
}

// CommandKind discriminates the commands a master piggybacks on
// heartbeat replies (paper §2.2: block creation, deletion, and
// replication upon instructions from the Masters).
type CommandKind int

// Heartbeat command kinds.
const (
	// CmdReplicate instructs the worker to copy a block from Sources
	// onto its media Target.
	CmdReplicate CommandKind = iota + 1

	// CmdDelete instructs the worker to delete its replica of a block
	// from media Target.
	CmdDelete
)

// Command is one instruction to a worker.
type Command struct {
	Kind    CommandKind
	Block   core.Block
	Target  core.StorageID
	Sources []core.BlockLocation
}

// HeartbeatArgs / HeartbeatReply implement Master.Heartbeat.
type HeartbeatArgs struct {
	ReqHeader
	ID       core.WorkerID
	Media    []MediaStat
	NetConns int
	NetMBps  float64
	HTTPAddr string // worker debug HTTP endpoint; bound after register on the first serve
	// Heat carries the per-block access deltas accumulated on this
	// worker's data path since the previous successful heartbeat
	// (piggybacked so heat costs no extra RPC).
	Heat []heat.Delta
}
type HeartbeatReply struct {
	Commands []Command
}

// StoredBlock locates one replica within a worker's block report.
type StoredBlock struct {
	Storage core.StorageID
	Block   core.Block
}

// BlockReportArgs / -Reply implement Master.BlockReport, the periodic
// full listing from which the master detects under- and
// over-replication (paper §5).
type BlockReportArgs struct {
	ReqHeader
	ID     core.WorkerID
	Blocks []StoredBlock
}
type BlockReportReply struct{}

// BlockReceivedArgs / -Reply implement Master.BlockReceived, the
// incremental notification sent right after a worker stores a replica.
type BlockReceivedArgs struct {
	ReqHeader
	ID      core.WorkerID
	Storage core.StorageID
	Block   core.Block
}
type BlockReceivedReply struct{}

// BlockDeletedArgs / -Reply implement Master.BlockDeleted.
type BlockDeletedArgs struct {
	ReqHeader
	ID      core.WorkerID
	Storage core.StorageID
	Block   core.Block
}
type BlockDeletedReply struct{}

// ContentSummaryArgs / -Reply implement Master.GetContentSummary:
// recursive usage accounting for a directory subtree, including the
// per-tier byte usage that tier quotas charge against.
type ContentSummaryArgs struct {
	ReqHeader
	Path string
}
type ContentSummary struct {
	Path        string
	Files       int
	Directories int
	Bytes       int64 // logical file bytes
	// TierBytes charges replicas to their pinned tiers; index by
	// core.StorageTier. The last slot accumulates the total across
	// all replicas (the total-space quota's view).
	TierBytes [5]int64
}
type ContentSummaryReply struct {
	Summary ContentSummary
}

// FsckArgs / FsckReply implement Master.Fsck: per-file replication
// health over a subtree.
type FsckArgs struct {
	ReqHeader
	Path string
}

// FsckFile reports one file's replication health.
type FsckFile struct {
	Path              string
	Expected          core.ReplicationVector
	Blocks            int
	HealthyBlocks     int
	MissingReplicas   int // replicas to create across all blocks
	ExcessReplicas    int // replicas to remove across all blocks
	MissingBlocks     int // blocks with zero live replicas (data loss)
	UnderConstruction bool
}

type FsckReply struct {
	Files []FsckFile
}

// WorkerReportsArgs / -Reply implement Master.GetWorkerReports, the
// dfsadmin-report equivalent: per-worker, per-media statistics.
type WorkerReportsArgs struct{ ReqHeader }

// WorkerReport describes one live worker and its media.
type WorkerReport struct {
	ID       core.WorkerID
	Node     string
	Rack     string
	DataAddr string
	HTTPAddr string // debug HTTP endpoint ("" if the worker runs without one)
	NetMBps  float64
	Media    []MediaStat
}

type WorkerReportsReply struct {
	Workers []WorkerReport
	// MasterHTTP is the master's own debug HTTP endpoint ("" if
	// disabled), so admin tools can fan out health checks without extra
	// configuration.
	MasterHTTP string
}

// ReportSpansArgs / -Reply implement Master.ReportSpans: clients push
// their locally recorded spans to the master at the end of an
// operation, making the master the rendezvous point for cross-daemon
// trace assembly (the client process is usually gone by the time
// anyone asks for the trace).
type ReportSpansArgs struct {
	ReqHeader
	Spans []trace.Span
}
type ReportSpansReply struct{}

// GetTraceArgs / GetTraceReply implement Master.GetTrace: assemble
// the full timeline of one trace by merging the master's own spans,
// client-reported spans, and spans fanned out from live workers.
type GetTraceArgs struct {
	ReqHeader
	TraceID string
}
type GetTraceReply struct {
	Spans []trace.Span
}

// GetEventsArgs / GetEventsReply implement Master.GetEvents, the RPC
// face of the cluster event journal (the /debug/events endpoint serves
// the same page over HTTP). Since is an exclusive sequence cursor;
// polling with Since = Page.Next is exactly-once over retained events.
type GetEventsArgs struct {
	ReqHeader
	Since uint64
	Type  string // "" = all types
	Limit int    // <= 0 = journal default
}
type GetEventsReply struct {
	Page   events.Page
	Counts map[string]uint64
}

// GetAuditArgs / GetAuditReply implement Master.GetAudit, the RPC
// face of the namespace audit log (the /debug/audit endpoint serves
// the same page over HTTP). Since is an exclusive sequence cursor;
// polling with Since = Page.Next is exactly-once over retained
// entries.
type GetAuditArgs struct {
	ReqHeader
	Since uint64
	Op    string // "" = all operations
	Limit int    // <= 0 = no cap
}
type GetAuditReply struct {
	Page   audit.Page
	Counts map[string]uint64
}

// ReportTransfersArgs / -Reply implement Master.ReportTransfers:
// clients push their locally recorded transfer records to the master
// at the end of an operation (like ReportSpans), so client-side
// dial/ack phases survive the client process and join the cluster
// view served by Master.GetTransfers.
type ReportTransfersArgs struct {
	ReqHeader
	Records []xfer.Record
}
type ReportTransfersReply struct{}

// GetTransfersArgs / GetTransfersReply implement Master.GetTransfers,
// the fan-out face of the transfer flight recorder: one cursor page
// from the master's log of client-reported records plus one from each
// live worker's recorder. Since/Op/Limit have /debug/transfers
// semantics and apply per source; cursors are per source daemon, so a
// poller resumes each source from that source's Page.Next.
type GetTransfersArgs struct {
	ReqHeader
	Since uint64
	Op    string // "" = all transfer kinds
	Limit int    // <= 0 = no cap
}

// TransferSource is one daemon's page of transfer records inside a
// GetTransfersReply: the master's client-reported log ("master") or a
// worker's recorder ("worker:<id>"). Err reports a fan-out failure
// for that source ("" = page is valid).
type TransferSource struct {
	Source string
	Page   xfer.Page
	Counts map[string]uint64
	Err    string
}
type GetTransfersReply struct {
	Sources []TransferSource
}

// WorkerSample is one worker's point-in-time telemetry inside a
// ClusterSample: capacity, usage, and throughput aggregated over the
// worker's media, as last reported by heartbeat.
type WorkerSample struct {
	ID        core.WorkerID
	Capacity  int64
	Used      int64
	NetConns  int
	NetMBps   float64
	WriteMBps float64 // sum over media
	ReadMBps  float64 // sum over media
}

// ClusterSample is one row of the master's telemetry history ring:
// cluster-wide per-tier usage plus per-worker aggregates at TimeNs.
type ClusterSample struct {
	TimeNs  int64
	Workers []WorkerSample
	Tiers   []core.StorageTierReport
	Files   int
	Blocks  int
	Heat    HeatAggregate
}

// GetClusterHistoryArgs / -Reply implement Master.GetClusterHistory:
// the sampled telemetry ring, oldest first, always ending with a fresh
// live sample so "octopus-cli top" is current even between ticks.
type GetClusterHistoryArgs struct {
	ReqHeader
	// Last caps how many trailing samples to return (<= 0 = all).
	Last int
}
type GetClusterHistoryReply struct {
	Samples []ClusterSample
}

// CandidateScore mirrors policy.CandidateScore on the wire: one
// candidate media's four-objective vector and scalarised score from a
// placement decision.
type CandidateScore struct {
	Worker     core.WorkerID
	Storage    core.StorageID
	Node       string
	Rack       string
	Tier       core.StorageTier
	Score      float64
	Objectives [4]float64
	Chosen     bool
}

// ReplicaExplanation explains where one replica of a block went and
// why: the requested tier entry, the ideal vector, and the scored
// candidates with the winner first.
type ReplicaExplanation struct {
	Entry      core.StorageTier
	Ideal      [4]float64
	Candidates []CandidateScore
	Considered int
}

// BlockExplanation is one block's placement record. Origin is ""
// for the initial write placement; the background tier mover
// overwrites the record with Origin "promote" or "demote" and the
// block's decayed heat at decision time, so explain shows why the
// block last moved.
type BlockExplanation struct {
	Block    core.BlockID
	TimeNs   int64
	TraceID  string
	Origin   string
	Heat     float64
	Replicas []ReplicaExplanation
}

// ExplainArgs / ExplainReply implement Master.Explain: retrieve the
// retained placement decisions for a file's blocks.
type ExplainArgs struct {
	ReqHeader
	Path string
}
type ExplainReply struct {
	Path       string
	Objectives [4]string // objective display names, vector order
	Blocks     []BlockExplanation
}

// DecommissionArgs / -Reply implement Master.Decommission: remove a
// worker from service deliberately. Its replicas become
// under-replicated and the monitor re-replicates them, exactly as on
// heartbeat expiry, but the event journal records the removal as
// operator-initiated and the worker may not re-register.
type DecommissionArgs struct {
	ReqHeader
	ID core.WorkerID
}
type DecommissionReply struct{}

// HeatScore mirrors heat.Score on the wire: decayed operations and
// bytes for one access direction.
type HeatScore struct {
	Ops   float64
	Bytes float64
}

// FileHeat is one file's decayed access statistics.
type FileHeat struct {
	Path   string
	Read   HeatScore
	Write  HeatScore
	Heat   float64 // Read.Ops + Write.Ops, the ranking scalar
	LastNs int64
}

// BlockHeat is one block's decayed access statistics plus where its
// replicas currently live.
type BlockHeat struct {
	Block  core.BlockID
	Path   string // owning file, "" if the index has no mapping
	Read   HeatScore
	Write  HeatScore
	Heat   float64
	Tiers  [core.NumTiers]int // replica count per storage tier
	LastNs int64
}

// Misplacement kinds reported by the tier-fitness scan.
const (
	MisplacedHotOnCold     = "hot_on_cold"     // hot block, replicas only on HDD/REMOTE
	MisplacedColdOnPremium = "cold_on_premium" // cold block squatting on MEMORY/SSD
)

// MisplacedBlock is one tier-fitness finding: a block whose replica
// tier vector does not match its heat, annotated with the placement
// decision that put it there (via the retained explain records).
type MisplacedBlock struct {
	Block        core.BlockID
	Path         string
	Kind         string  // MisplacedHotOnCold or MisplacedColdOnPremium
	Heat         float64 // decayed ops at report time
	Misplacement float64 // 0..1, how far the best replica is from a fitting tier
	Score        float64 // ranking key: heat × misplacement (hot), misplacement (cold)
	Tiers        [core.NumTiers]int
	BestTier     core.StorageTier // highest (most premium) tier holding a replica
	// Originating placement decision, zero-valued when the decision
	// has aged out of the explain ring.
	DecisionTraceID string
	DecisionTimeNs  int64
}

// HeatAggregate summarises the cluster heat map for telemetry
// samples: totals, the hottest single block, per-tier heat (each
// block's heat split evenly across its replicas' tiers), and the
// current misplacement counts.
type HeatAggregate struct {
	TrackedBlocks int
	TrackedFiles  int
	TotalHeat     float64
	MaxHeat       float64
	TierHeat      [core.NumTiers]float64
	MisplacedHot  int
	MisplacedCold int
}

// GetHeatArgs / -Reply implement Master.GetHeat: the cluster heat map
// and tier-fitness report.
type GetHeatArgs struct {
	ReqHeader
	Top       int    // cap files/blocks/misplaced lists (<= 0 = default)
	File      string // restrict block list to this file's blocks
	Misplaced bool   // only compute/return the misplacement report
}
type GetHeatReply struct {
	Report HeatReport
}

// HeatReport is the full heat observability document, also served at
// /debug/heat.
type HeatReport struct {
	TimeNs     int64
	HalfLifeNs int64
	Aggregate  HeatAggregate
	Files      []FileHeat
	Blocks     []BlockHeat
	Misplaced  []MisplacedBlock
}

// Move kinds and outcomes reported by the background tier mover.
const (
	MovePromote = "promote" // hot block copied up to MEMORY/SSD
	MoveDemote  = "demote"  // cold block copied down to HDD/REMOTE

	MoveInFlight = "in_flight" // replicate scheduled, awaiting confirmation
	MoveDone     = "moved"     // new replica confirmed, source retired
	MoveExpired  = "expired"   // replicate never confirmed before the deadline
)

// MoveRecord is one tier move, in flight or finished: which replica
// was (or is being) copied where, the block's heat and tier vector
// before and after, and the journal/explain trace it was recorded
// under.
type MoveRecord struct {
	Block       core.BlockID
	Path        string
	Kind        string // MovePromote or MoveDemote
	Heat        float64
	Bytes       int64
	FromTier    core.StorageTier
	FromStorage core.StorageID
	FromWorker  core.WorkerID
	ToTier      core.StorageTier
	ToStorage   core.StorageID
	ToWorker    core.WorkerID
	BeforeTiers [core.NumTiers]int
	AfterTiers  [core.NumTiers]int
	StartedNs   int64
	FinishedNs  int64 // zero while in flight
	Outcome     string
	TraceID     string
}

// MoverCounters accumulates what the mover did and why it held back.
type MoverCounters struct {
	Promoted           int64 // completed promotions
	Demoted            int64 // completed demotions
	Scheduled          int64 // moves started
	Expired            int64 // moves abandoned after the confirm deadline
	SkippedCooldown    int64 // finding ignored: block in post-move cooldown
	SkippedConcurrency int64 // finding ignored: max concurrent moves reached
	SkippedBudget      int64 // finding ignored: bytes/sec budget exhausted
	SkippedNoTarget    int64 // finding ignored: policy had no feasible target
	SkippedUnhealthy   int64 // finding ignored: block not in a steady healthy state
	MovedBytes         int64 // bytes of completed moves
}

// MoverStatus is the mover observability document, also served at
// /debug/mover.
type MoverStatus struct {
	Enabled       bool
	IntervalNs    int64
	MaxConcurrent int
	BytesPerSec   int64
	CooldownNs    int64
	InFlight      []MoveRecord
	Recent        []MoveRecord // newest first, bounded ring
	Counters      MoverCounters
}

// GetMoverArgs / -Reply implement Master.GetMover.
type GetMoverArgs struct {
	ReqHeader
}
type GetMoverReply struct {
	Status MoverStatus
}
