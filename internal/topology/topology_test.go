package topology

import (
	"sync"
	"testing"
)

func TestDistance(t *testing.T) {
	a := Location{Rack: "/r1", Node: "n1"}
	b := Location{Rack: "/r1", Node: "n2"}
	c := Location{Rack: "/r2", Node: "n3"}
	tests := []struct {
		x, y Location
		want int
	}{
		{a, a, DistanceLocal},
		{a, b, DistanceSameRack},
		{a, c, DistanceOffRack},
		{b, c, DistanceOffRack},
	}
	for _, tt := range tests {
		if got := Distance(tt.x, tt.y); got != tt.want {
			t.Errorf("Distance(%v, %v) = %d, want %d", tt.x, tt.y, got, tt.want)
		}
		if got := Distance(tt.y, tt.x); got != tt.want {
			t.Errorf("Distance(%v, %v) = %d, want %d (symmetry)", tt.y, tt.x, got, tt.want)
		}
	}
}

func TestMapAddAndLookup(t *testing.T) {
	m := NewMap()
	m.Add("n1", "/r1")
	m.Add("n2", "r1") // missing slash is normalised
	m.Add("n3", "/r2")
	m.Add("n4", "") // empty rack -> default

	if got := m.RackOf("n1"); got != "/r1" {
		t.Errorf("RackOf(n1) = %q, want /r1", got)
	}
	if got := m.RackOf("n2"); got != "/r1" {
		t.Errorf("RackOf(n2) = %q, want /r1", got)
	}
	if got := m.RackOf("n4"); got != DefaultRack {
		t.Errorf("RackOf(n4) = %q, want %q", got, DefaultRack)
	}
	if got := m.RackOf("unknown"); got != DefaultRack {
		t.Errorf("RackOf(unknown) = %q, want %q", got, DefaultRack)
	}
	if got := m.Distance("n1", "n2"); got != DistanceSameRack {
		t.Errorf("Distance(n1,n2) = %d, want %d", got, DistanceSameRack)
	}
	if got := m.Distance("n1", "n3"); got != DistanceOffRack {
		t.Errorf("Distance(n1,n3) = %d, want %d", got, DistanceOffRack)
	}
	if got := m.Distance("n1", "n1"); got != DistanceLocal {
		t.Errorf("Distance(n1,n1) = %d, want %d", got, DistanceLocal)
	}

	if got, want := m.NumRacks(), 3; got != want {
		t.Errorf("NumRacks() = %d, want %d", got, want)
	}
	if got, want := m.NumNodes(), 4; got != want {
		t.Errorf("NumNodes() = %d, want %d", got, want)
	}

	racks := m.Racks()
	if len(racks) != 3 || racks[0] != DefaultRack || racks[1] != "/r1" || racks[2] != "/r2" {
		t.Errorf("Racks() = %v, want sorted [%s /r1 /r2]", racks, DefaultRack)
	}

	nodes := m.NodesInRack("/r1")
	if len(nodes) != 2 || nodes[0] != "n1" || nodes[1] != "n2" {
		t.Errorf("NodesInRack(/r1) = %v, want [n1 n2]", nodes)
	}
}

func TestMapReassignAndRemove(t *testing.T) {
	m := NewMap()
	m.Add("n1", "/r1")
	m.Add("n1", "/r2") // move rack
	if got := m.RackOf("n1"); got != "/r2" {
		t.Errorf("after reassign: RackOf(n1) = %q, want /r2", got)
	}
	if got := m.NumRacks(); got != 1 {
		t.Errorf("after reassign: NumRacks() = %d, want 1 (old rack emptied)", got)
	}
	m.Add("n1", "/r2") // idempotent re-add must not duplicate
	if got := len(m.NodesInRack("/r2")); got != 1 {
		t.Errorf("after duplicate add: rack members = %d, want 1", got)
	}

	m.Remove("n1")
	if got := m.NumNodes(); got != 0 {
		t.Errorf("after remove: NumNodes() = %d, want 0", got)
	}
	if got := m.NumRacks(); got != 0 {
		t.Errorf("after remove: NumRacks() = %d, want 0", got)
	}
	m.Remove("n1") // removing twice is a no-op
}

func TestNodesInRackIsCopy(t *testing.T) {
	m := NewMap()
	m.Add("n1", "/r1")
	nodes := m.NodesInRack("/r1")
	nodes[0] = "mutated"
	if got := m.NodesInRack("/r1")[0]; got != "n1" {
		t.Errorf("internal state mutated through returned slice: %q", got)
	}
}

func TestNormalizeRack(t *testing.T) {
	tests := []struct{ in, want string }{
		{"", DefaultRack},
		{"  ", DefaultRack},
		{"r1", "/r1"},
		{"/r1", "/r1"},
	}
	for _, tt := range tests {
		if got := NormalizeRack(tt.in); got != tt.want {
			t.Errorf("NormalizeRack(%q) = %q, want %q", tt.in, got, tt.want)
		}
	}
}

func TestValidate(t *testing.T) {
	if err := Validate("/rack-1"); err != nil {
		t.Errorf("Validate(/rack-1) = %v, want nil", err)
	}
	if err := Validate("/rack 1"); err == nil {
		t.Error("Validate(rack with space): got nil, want error")
	}
}

func TestMapConcurrentAccess(t *testing.T) {
	m := NewMap()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			names := []string{"a", "b", "c", "d"}
			for j := 0; j < 200; j++ {
				n := names[(i+j)%len(names)]
				m.Add(n, "/r1")
				m.RackOf(n)
				m.Distance("a", n)
				m.Racks()
				if j%10 == 0 {
					m.Remove(n)
				}
			}
		}(i)
	}
	wg.Wait()
}
