// Package topology models the hierarchical network topology of an
// OctopusFS cluster (paper §3.2). Worker nodes live in racks; the
// distance between two nodes is the number of network hops between
// them in the datacenter tree (0 = same node, 2 = same rack,
// 4 = different racks). Both the data placement and the data retrieval
// policies consult the topology to trade locality against tier speed.
package topology

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// DefaultRack is the rack assigned to nodes registered without an
// explicit network location, matching HDFS's "/default-rack".
const DefaultRack = "/default-rack"

// Network distances between two locations in the two-level
// (datacenter → rack → node) topology used by the paper's evaluation.
const (
	DistanceLocal    = 0 // same node
	DistanceSameRack = 2 // different nodes, same rack
	DistanceOffRack  = 4 // different racks
)

// Location is a node's position in the network tree, e.g. node
// "worker-3.example.com" in rack "/rack-1".
type Location struct {
	Rack string // rack path, e.g. "/rack-1"
	Node string // node name, unique within the cluster
}

// String renders the location as "<rack>/<node>".
func (l Location) String() string { return l.Rack + "/" + l.Node }

// Distance returns the number of network hops between two locations.
func Distance(a, b Location) int {
	switch {
	case a == b:
		return DistanceLocal
	case a.Rack == b.Rack:
		return DistanceSameRack
	default:
		return DistanceOffRack
	}
}

// Map tracks the rack assignment of every registered node. It is safe
// for concurrent use; the master updates it on worker registration and
// the placement policies read it on every block allocation.
type Map struct {
	mu    sync.RWMutex
	nodes map[string]string   // node name -> rack
	racks map[string][]string // rack -> sorted node names
}

// NewMap returns an empty topology map.
func NewMap() *Map {
	return &Map{
		nodes: make(map[string]string),
		racks: make(map[string][]string),
	}
}

// Add registers node in rack, replacing any previous assignment. An
// empty rack means DefaultRack; racks are normalised to a leading "/".
func (m *Map) Add(node, rack string) {
	rack = NormalizeRack(rack)
	m.mu.Lock()
	defer m.mu.Unlock()
	if old, ok := m.nodes[node]; ok {
		if old == rack {
			return
		}
		m.removeFromRackLocked(node, old)
	}
	m.nodes[node] = rack
	members := append(m.racks[rack], node)
	sort.Strings(members)
	m.racks[rack] = members
}

// Remove deletes a node from the topology. Removing an unknown node is
// a no-op.
func (m *Map) Remove(node string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	rack, ok := m.nodes[node]
	if !ok {
		return
	}
	delete(m.nodes, node)
	m.removeFromRackLocked(node, rack)
}

func (m *Map) removeFromRackLocked(node, rack string) {
	members := m.racks[rack]
	for i, n := range members {
		if n == node {
			m.racks[rack] = append(members[:i:i], members[i+1:]...)
			break
		}
	}
	if len(m.racks[rack]) == 0 {
		delete(m.racks, rack)
	}
}

// RackOf returns the rack of a node, or DefaultRack if the node is not
// registered.
func (m *Map) RackOf(node string) string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if rack, ok := m.nodes[node]; ok {
		return rack
	}
	return DefaultRack
}

// LocationOf returns the full network location of a node.
func (m *Map) LocationOf(node string) Location {
	return Location{Rack: m.RackOf(node), Node: node}
}

// Distance returns the hop distance between two registered nodes.
// Unregistered nodes are assumed to live in DefaultRack.
func (m *Map) Distance(a, b string) int {
	return Distance(m.LocationOf(a), m.LocationOf(b))
}

// Racks returns the rack paths currently holding at least one node,
// sorted lexicographically.
func (m *Map) Racks() []string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	racks := make([]string, 0, len(m.racks))
	for r := range m.racks {
		racks = append(racks, r)
	}
	sort.Strings(racks)
	return racks
}

// NodesInRack returns the sorted node names in the given rack.
func (m *Map) NodesInRack(rack string) []string {
	rack = NormalizeRack(rack)
	m.mu.RLock()
	defer m.mu.RUnlock()
	members := m.racks[rack]
	out := make([]string, len(members))
	copy(out, members)
	return out
}

// NumRacks returns the number of non-empty racks. The fault-tolerance
// objective (paper Eq. 5) special-cases single-rack clusters.
func (m *Map) NumRacks() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.racks)
}

// NumNodes returns the number of registered nodes.
func (m *Map) NumNodes() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.nodes)
}

// NormalizeRack canonicalises a rack path: empty becomes DefaultRack,
// and a missing leading slash is added.
func NormalizeRack(rack string) string {
	rack = strings.TrimSpace(rack)
	if rack == "" {
		return DefaultRack
	}
	if !strings.HasPrefix(rack, "/") {
		rack = "/" + rack
	}
	return rack
}

// Validate checks a rack path for embedded whitespace, which would
// break the textual topology-script format.
func Validate(rack string) error {
	if strings.ContainsAny(rack, " \t\n") {
		return fmt.Errorf("topology: rack path %q contains whitespace", rack)
	}
	return nil
}
