package httpjson

import (
	"encoding/json"
	"net/http/httptest"
	"testing"
)

func TestWriteSetsContentType(t *testing.T) {
	rec := httptest.NewRecorder()
	Write(rec, map[string]int{"a": 1})
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q", ct)
	}
	var got map[string]int
	if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil || got["a"] != 1 {
		t.Errorf("body = %q err=%v", rec.Body.String(), err)
	}
}

func TestIntParam(t *testing.T) {
	r := httptest.NewRequest("GET", "/x?top=5", nil)
	w := httptest.NewRecorder()
	if v, ok := IntParam(w, r, "top", 10); !ok || v != 5 {
		t.Errorf("got %d ok=%v", v, ok)
	}
	if v, ok := IntParam(w, r, "missing", 10); !ok || v != 10 {
		t.Errorf("default: got %d ok=%v", v, ok)
	}
	r = httptest.NewRequest("GET", "/x?top=abc", nil)
	w = httptest.NewRecorder()
	if _, ok := IntParam(w, r, "top", 10); ok {
		t.Error("bad value should fail")
	}
	if w.Code != 400 {
		t.Errorf("status = %d, want 400", w.Code)
	}
}

func TestUint64Param(t *testing.T) {
	r := httptest.NewRequest("GET", "/x?since=0x10", nil)
	w := httptest.NewRecorder()
	if v, ok := Uint64Param(w, r, "since", 0); !ok || v != 16 {
		t.Errorf("got %d ok=%v", v, ok)
	}
	r = httptest.NewRequest("GET", "/x?since=-3", nil)
	w = httptest.NewRecorder()
	if _, ok := Uint64Param(w, r, "since", 0); ok || w.Code != 400 {
		t.Errorf("negative should 400, code=%d", w.Code)
	}
}

func TestBoolParam(t *testing.T) {
	for _, c := range []struct {
		url  string
		def  bool
		want bool
		ok   bool
	}{
		{"/x", false, false, true},
		{"/x?misplaced", false, true, true},
		{"/x?misplaced=true", false, true, true},
		{"/x?misplaced=0", true, false, true},
		{"/x?misplaced=banana", false, false, false},
	} {
		r := httptest.NewRequest("GET", c.url, nil)
		w := httptest.NewRecorder()
		v, ok := BoolParam(w, r, "misplaced", c.def)
		if ok != c.ok || (ok && v != c.want) {
			t.Errorf("%s: got %v ok=%v, want %v ok=%v", c.url, v, ok, c.want, c.ok)
		}
		if !c.ok && w.Code != 400 {
			t.Errorf("%s: status = %d, want 400", c.url, w.Code)
		}
	}
}
