// Package httpjson bundles the JSON plumbing shared by every debug
// endpoint (/debug/events, /debug/history, /debug/traces,
// /debug/heat, /status): one Write helper that always sets the
// Content-Type header, and query-parameter parsers with a consistent
// 400-on-bad-param contract.
package httpjson

import (
	"encoding/json"
	"net/http"
	"strconv"
)

// Write encodes v as indented JSON with the Content-Type header set.
func Write(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// IntParam parses the named integer query parameter, returning def
// when absent. A malformed value writes a 400 response and returns
// ok=false; callers must stop handling the request.
func IntParam(w http.ResponseWriter, r *http.Request, name string, def int) (int, bool) {
	s := r.URL.Query().Get(name)
	if s == "" {
		return def, true
	}
	v, err := strconv.Atoi(s)
	if err != nil {
		badParam(w, name, s)
		return 0, false
	}
	return v, true
}

// Uint64Param parses the named uint64 query parameter (decimal or
// 0x-prefixed hex), returning def when absent. Malformed values write
// a 400 and return ok=false.
func Uint64Param(w http.ResponseWriter, r *http.Request, name string, def uint64) (uint64, bool) {
	s := r.URL.Query().Get(name)
	if s == "" {
		return def, true
	}
	v, err := strconv.ParseUint(s, 0, 64)
	if err != nil {
		badParam(w, name, s)
		return 0, false
	}
	return v, true
}

// BoolParam parses the named boolean query parameter. A bare
// occurrence ("?misplaced") counts as true; absence returns def;
// malformed values write a 400 and return ok=false.
func BoolParam(w http.ResponseWriter, r *http.Request, name string, def bool) (bool, bool) {
	q := r.URL.Query()
	if !q.Has(name) {
		return def, true
	}
	s := q.Get(name)
	if s == "" {
		return true, true
	}
	v, err := strconv.ParseBool(s)
	if err != nil {
		badParam(w, name, s)
		return false, false
	}
	return v, true
}

func badParam(w http.ResponseWriter, name, val string) {
	http.Error(w, "bad "+name+" parameter: "+strconv.Quote(val), http.StatusBadRequest)
}
