// Package bufpool provides size-classed reusable byte buffers for the
// data path. Packet staging, pipeline copy buffers, frame scratch, and
// probe fills all draw from here instead of allocating per transfer,
// so the steady-state data path produces (close to) zero garbage.
//
// Buffers are grouped into power-of-two size classes, each backed by a
// sync.Pool, so a 64 KiB packet buffer released by one transfer is
// picked up by the next instead of churning the heap. Get reports
// whether the buffer was freshly allocated — the flight recorder's
// per-transfer alloc-bytes stat counts only fresh buffers, making the
// pool's effectiveness directly visible in `octopus-cli transfers`.
package bufpool

import (
	"math/bits"
	"sync"
	"sync/atomic"
)

// minClassBits/maxClassBits bound the pooled size classes: 4 KiB up to
// 8 MiB. Requests outside the range are allocated directly (below) or
// rounded up to the largest class (above, when they fit).
const (
	minClassBits = 12 // 4 KiB
	maxClassBits = 23 // 8 MiB
	numClasses   = maxClassBits - minClassBits + 1
)

var classes [numClasses]sync.Pool

// Counters for pool effectiveness, exposed through Stats.
var (
	gets   atomic.Uint64
	misses atomic.Uint64
	puts   atomic.Uint64
)

// classFor returns the size-class index whose buffers hold n bytes, or
// -1 when n is outside the pooled range.
func classFor(n int) int {
	if n <= 0 || n > 1<<maxClassBits {
		return -1
	}
	b := bits.Len(uint(n - 1)) // ceil(log2 n)
	if b < minClassBits {
		b = minClassBits
	}
	return b - minClassBits
}

// Get returns a buffer of length n (capacity may be larger) and
// reports whether it had to be freshly allocated — the caller's
// alloc-bytes accounting counts only fresh buffers. Buffers are not
// zeroed; callers must not read past what they wrote.
func Get(n int) (buf []byte, fresh bool) {
	gets.Add(1)
	c := classFor(n)
	if c < 0 {
		misses.Add(1)
		return make([]byte, n), true
	}
	if v := classes[c].Get(); v != nil {
		return (*(v.(*[]byte)))[:n], false
	}
	misses.Add(1)
	return make([]byte, n, 1<<(c+minClassBits)), true
}

// Put returns a buffer obtained from Get to its size class. Buffers
// whose capacity matches no class (Get allocated them directly) are
// dropped for the GC. Callers must not retain any reference to buf
// after Put.
func Put(buf []byte) {
	c := classFor(cap(buf))
	if c < 0 || cap(buf) != 1<<(c+minClassBits) {
		return
	}
	puts.Add(1)
	b := buf[:cap(buf)]
	classes[c].Put(&b)
}

// Stats is a point-in-time snapshot of the pool counters.
type Stats struct {
	// Gets counts Get calls; Misses the ones that had to allocate
	// (fresh buffers); Puts the buffers returned for reuse.
	Gets   uint64 `json:"gets"`
	Misses uint64 `json:"misses"`
	Puts   uint64 `json:"puts"`
}

// Snapshot returns the current pool counters.
func Snapshot() Stats {
	return Stats{Gets: gets.Load(), Misses: misses.Load(), Puts: puts.Load()}
}
