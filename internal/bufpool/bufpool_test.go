package bufpool

import (
	"sync"
	"testing"
)

func TestClassFor(t *testing.T) {
	cases := []struct {
		n    int
		want int
	}{
		{0, -1},
		{-5, -1},
		{1, 0},              // rounds up to the 4 KiB class
		{4096, 0},           // exactly 4 KiB
		{4097, 1},           // next power of two: 8 KiB
		{64 << 10, 4},       // 64 KiB
		{(64 << 10) + 1, 5}, // 128 KiB
		{8 << 20, numClasses - 1},
		{(8 << 20) + 1, -1}, // over the largest class
	}
	for _, c := range cases {
		if got := classFor(c.n); got != c.want {
			t.Errorf("classFor(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestGetReturnsRequestedLength(t *testing.T) {
	for _, n := range []int{1, 100, 4096, 64 << 10, (8 << 20) + 1} {
		buf, _ := Get(n)
		if len(buf) != n {
			t.Errorf("Get(%d) returned len %d", n, len(buf))
		}
		Put(buf)
	}
}

func TestGetPutReuse(t *testing.T) {
	// Drain the class first so the reuse observation is about OUR
	// buffer, then Put and Get the same size: the second Get should be
	// satisfied from the pool (fresh=false) at least once over a few
	// attempts (sync.Pool may drop entries, so retry).
	reused := false
	for attempt := 0; attempt < 20 && !reused; attempt++ {
		buf, _ := Get(64 << 10)
		buf[0] = 0xAB
		Put(buf)
		got, fresh := Get(64 << 10)
		if !fresh && cap(got) == cap(buf) {
			reused = true
		}
		Put(got)
	}
	if !reused {
		t.Error("Put buffer never reused by a subsequent Get of the same class")
	}
}

func TestOversizeNotPooled(t *testing.T) {
	n := (8 << 20) + 1
	buf, fresh := Get(n)
	if !fresh {
		t.Fatalf("oversize Get(%d) reported pooled buffer", n)
	}
	if len(buf) != n {
		t.Fatalf("oversize Get(%d) len = %d", n, len(buf))
	}
	before := Snapshot()
	Put(buf) // must be dropped, not pooled
	after := Snapshot()
	if after.Puts != before.Puts {
		t.Errorf("oversize buffer was pooled (puts %d -> %d)", before.Puts, after.Puts)
	}
}

func TestPutRejectsOddCapacity(t *testing.T) {
	// A slice whose capacity matches no class must not enter a pool:
	// a later Get would otherwise return a buffer shorter than the
	// class size it advertises.
	odd := make([]byte, 5000) // cap 5000: inside the 8 KiB class range but not 8192
	before := Snapshot()
	Put(odd)
	after := Snapshot()
	if after.Puts != before.Puts {
		t.Error("Put accepted a buffer with non-class capacity")
	}
}

func TestStatsCount(t *testing.T) {
	before := Snapshot()
	buf, fresh := Get(4096)
	Put(buf)
	after := Snapshot()
	if after.Gets != before.Gets+1 {
		t.Errorf("gets %d -> %d, want +1", before.Gets, after.Gets)
	}
	if fresh && after.Misses != before.Misses+1 {
		t.Errorf("fresh Get did not count a miss")
	}
	if after.Puts != before.Puts+1 {
		t.Errorf("puts %d -> %d, want +1", before.Puts, after.Puts)
	}
}

func TestConcurrentGetPut(t *testing.T) {
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed byte) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				buf, _ := Get(32 << 10)
				buf[0], buf[len(buf)-1] = seed, seed
				if buf[0] != seed || buf[len(buf)-1] != seed {
					t.Error("buffer contents raced")
				}
				Put(buf)
			}
		}(byte(g))
	}
	wg.Wait()
}
