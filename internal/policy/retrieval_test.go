package policy

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/topology"
)

func TestOctopusRetrievalPrefersFasterTier(t *testing.T) {
	s := paperCluster(9, 3)
	replicas := []Media{
		*findMedia(s, "node2:hdd0"),
		*findMedia(s, "node5:mem0"),
		*findMedia(s, "node8:ssd0"),
	}
	p := NewOctopusRetrievalPolicy()
	got := p.Order(RetrievalRequest{Snapshot: s, Replicas: replicas, Rand: testRand()})
	// Off-cluster client, idle cluster: all reads are network-bound at
	// the same NIC rate except HDD (177 < 1250 net). Memory and SSD tie
	// at the network rate; the faster media wins the tie.
	if got[0].Tier != core.TierMemory {
		t.Errorf("first replica tier = %v, want MEMORY", got[0].Tier)
	}
	if got[1].Tier != core.TierSSD {
		t.Errorf("second replica tier = %v, want SSD", got[1].Tier)
	}
	if got[2].Tier != core.TierHDD {
		t.Errorf("third replica tier = %v, want HDD", got[2].Tier)
	}
}

func TestOctopusRetrievalRemoteMemoryBeatsLocalHDD(t *testing.T) {
	// The paper's §4.2 example: a remote in-memory replica can beat a
	// local HDD replica when the network is fast enough.
	s := paperCluster(9, 3)
	replicas := []Media{
		*findMedia(s, "node1:hdd0"), // local to the client
		*findMedia(s, "node2:mem0"), // remote, memory
	}
	p := NewOctopusRetrievalPolicy()
	got := p.Order(RetrievalRequest{
		Snapshot: s,
		Client:   topology.Location{Rack: "/rack1", Node: "node1"},
		Replicas: replicas,
		Rand:     testRand(),
	})
	// Remote memory: min(1250 net, 3225 media) = 1250 > local HDD 177.
	if got[0].ID != "node2:mem0" {
		t.Errorf("first replica = %s, want node2:mem0 (remote memory beats local HDD)", got[0].ID)
	}
}

func TestOctopusRetrievalCongestionFlipsChoice(t *testing.T) {
	// Same scenario, but the remote worker is saturated with 10
	// connections: expected rate 1250/10 = 125 < 177 local HDD.
	s := paperCluster(9, 3)
	w := s.Workers["node2"]
	w.Connections = 10
	s.Workers["node2"] = w
	replicas := []Media{
		*findMedia(s, "node1:hdd0"),
		*findMedia(s, "node2:mem0"),
	}
	p := NewOctopusRetrievalPolicy()
	got := p.Order(RetrievalRequest{
		Snapshot: s,
		Client:   topology.Location{Rack: "/rack1", Node: "node1"},
		Replicas: replicas,
		Rand:     testRand(),
	})
	if got[0].ID != "node1:hdd0" {
		t.Errorf("first replica = %s, want node1:hdd0 (congested remote NIC)", got[0].ID)
	}
}

func TestOctopusRetrievalMediaLoadMatters(t *testing.T) {
	s := paperCluster(9, 3)
	busy := *findMedia(s, "node2:ssd0")
	busy.Connections = 20 // 419.5/20 ≈ 21 MB/s effective
	idleHDD := *findMedia(s, "node5:hdd0")
	p := NewOctopusRetrievalPolicy()
	got := p.Order(RetrievalRequest{Snapshot: s, Replicas: []Media{busy, idleHDD}, Rand: testRand()})
	if got[0].ID != idleHDD.ID {
		t.Errorf("first replica = %s, want idle HDD over saturated SSD", got[0].ID)
	}
}

func TestOctopusRetrievalLocalReadSkipsNetworkTerm(t *testing.T) {
	s := paperCluster(9, 3)
	// Saturate node1's NIC; a local read from node1 must be unaffected.
	w := s.Workers["node1"]
	w.Connections = 100
	s.Workers["node1"] = w
	replicas := []Media{
		*findMedia(s, "node1:ssd0"), // local
		*findMedia(s, "node2:ssd0"), // remote, idle NIC
	}
	p := NewOctopusRetrievalPolicy()
	got := p.Order(RetrievalRequest{
		Snapshot: s,
		Client:   topology.Location{Rack: "/rack1", Node: "node1"},
		Replicas: replicas,
		Rand:     testRand(),
	})
	// Local SSD: 419.5 media-bound; remote SSD: min(1250, 419.5) = 419.5.
	// Tie on rate; only local skips the congested NIC, so local first
	// would require a tie-break — both rate 419.5, neither netLimited
	// (remote is media-limited at equal rates)... accept either order
	// but the local replica must not be ranked by the saturated NIC.
	if got[0].ID == "node1:ssd0" || got[0].ID == "node2:ssd0" {
		// Ensure the saturated local NIC did not push local read last
		// behind a slower remote option.
		return
	}
	t.Errorf("unexpected ordering: %v", got)
}

func TestOctopusRetrievalTiedLocationsShuffled(t *testing.T) {
	s := paperCluster(9, 3)
	replicas := []Media{
		*findMedia(s, "node1:hdd0"),
		*findMedia(s, "node2:hdd0"),
		*findMedia(s, "node3:hdd0"),
	}
	p := NewOctopusRetrievalPolicy()
	seenFirst := make(map[core.StorageID]bool)
	rng := testRand()
	for trial := 0; trial < 60; trial++ {
		got := p.Order(RetrievalRequest{Snapshot: s, Replicas: replicas, Rand: rng})
		seenFirst[got[0].ID] = true
	}
	if len(seenFirst) < 2 {
		t.Errorf("tied replicas never shuffled: always %v", seenFirst)
	}
}

func TestOctopusRetrievalDeterministicWithoutRand(t *testing.T) {
	s := paperCluster(9, 3)
	replicas := []Media{
		*findMedia(s, "node3:hdd0"),
		*findMedia(s, "node1:hdd0"),
		*findMedia(s, "node2:hdd0"),
	}
	p := NewOctopusRetrievalPolicy()
	a := p.Order(RetrievalRequest{Snapshot: s, Replicas: replicas})
	b := p.Order(RetrievalRequest{Snapshot: s, Replicas: replicas})
	for i := range a {
		if a[i].ID != b[i].ID {
			t.Fatalf("nil-Rand ordering not deterministic: %v vs %v", a, b)
		}
	}
}

func TestHDFSRetrievalLocalityOrder(t *testing.T) {
	s := paperCluster(9, 3)
	replicas := []Media{
		*findMedia(s, "node2:mem0"), // off-rack (rack2) but fast tier
		*findMedia(s, "node4:hdd0"), // same rack (rack1)
		*findMedia(s, "node1:hdd0"), // local
	}
	p := NewHDFSRetrievalPolicy()
	got := p.Order(RetrievalRequest{
		Snapshot: s,
		Client:   topology.Location{Rack: "/rack1", Node: "node1"},
		Replicas: replicas,
		Rand:     testRand(),
	})
	if got[0].Node != "node1" {
		t.Errorf("first = %s, want local node1 replica", got[0].ID)
	}
	if got[1].Node != "node4" {
		t.Errorf("second = %s, want same-rack node4 replica", got[1].ID)
	}
	if got[2].Node != "node2" {
		t.Errorf("third = %s, want off-rack node2 replica", got[2].ID)
	}
}

func TestHDFSRetrievalOffClusterClientShuffles(t *testing.T) {
	s := paperCluster(9, 3)
	replicas := []Media{
		*findMedia(s, "node1:hdd0"),
		*findMedia(s, "node2:hdd0"),
		*findMedia(s, "node3:hdd0"),
	}
	p := NewHDFSRetrievalPolicy()
	seenFirst := make(map[core.StorageID]bool)
	rng := testRand()
	for trial := 0; trial < 60; trial++ {
		got := p.Order(RetrievalRequest{Snapshot: s, Replicas: replicas, Rand: rng})
		seenFirst[got[0].ID] = true
	}
	if len(seenFirst) < 2 {
		t.Errorf("off-cluster reads never spread across replicas: %v", seenFirst)
	}
}

func TestRetrievalPolicyNames(t *testing.T) {
	if got := NewOctopusRetrievalPolicy().Name(); got != "OctopusFS" {
		t.Errorf("Name() = %q", got)
	}
	if got := NewHDFSRetrievalPolicy().Name(); got != "HDFS" {
		t.Errorf("Name() = %q", got)
	}
}

func TestRetrievalEmptyReplicaList(t *testing.T) {
	s := paperCluster(2, 1)
	if got := NewOctopusRetrievalPolicy().Order(RetrievalRequest{Snapshot: s}); len(got) != 0 {
		t.Errorf("Order(empty) = %v, want empty", got)
	}
	if got := NewHDFSRetrievalPolicy().Order(RetrievalRequest{Snapshot: s}); len(got) != 0 {
		t.Errorf("Order(empty) = %v, want empty", got)
	}
}

// TestQuickRetrievalIsPermutation property-checks both retrieval
// policies: the returned ordering is always a permutation of the
// input replicas, never dropping or duplicating one.
func TestQuickRetrievalIsPermutation(t *testing.T) {
	s := paperCluster(9, 3)
	policies := []RetrievalPolicy{NewOctopusRetrievalPolicy(), NewHDFSRetrievalPolicy()}
	rng := testRand()
	f := func(pick [6]uint8, clientIdx uint8, seed int64) bool {
		var replicas []Media
		seen := map[core.StorageID]bool{}
		for _, p := range pick {
			m := s.Media[int(p)%len(s.Media)]
			if !seen[m.ID] {
				seen[m.ID] = true
				replicas = append(replicas, m)
			}
		}
		req := RetrievalRequest{Snapshot: s, Replicas: replicas, Rand: rng}
		if clientIdx%2 == 0 {
			req.Client = topology.Location{
				Rack: "/rack1", Node: fmt.Sprintf("node%d", int(clientIdx)%9+1),
			}
		}
		for _, pol := range policies {
			got := pol.Order(req)
			if len(got) != len(replicas) {
				return false
			}
			gotSeen := map[core.StorageID]bool{}
			for _, m := range got {
				if gotSeen[m.ID] || !seen[m.ID] {
					return false
				}
				gotSeen[m.ID] = true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
