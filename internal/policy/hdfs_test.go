package policy

import (
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/topology"
)

func TestHDFSPolicyUsesOnlyHDD(t *testing.T) {
	s := paperCluster(9, 3)
	p := NewHDFSPolicy()
	for trial := 0; trial < 20; trial++ {
		got, err := p.PlaceReplicas(moopRequest(s, core.ReplicationVectorFromFactor(3)))
		if err != nil {
			t.Fatalf("PlaceReplicas: %v", err)
		}
		for _, m := range got {
			if m.Tier != core.TierHDD {
				t.Fatalf("OriginalHDFS placed a replica on %v, want HDD only", m.Tier)
			}
		}
	}
}

func TestHDFSWithSSDUsesBothButNotMemory(t *testing.T) {
	s := paperCluster(9, 3)
	p := NewHDFSWithSSDPolicy()
	sawSSD := false
	for trial := 0; trial < 50; trial++ {
		got, err := p.PlaceReplicas(moopRequest(s, core.ReplicationVectorFromFactor(3)))
		if err != nil {
			t.Fatalf("PlaceReplicas: %v", err)
		}
		for _, m := range got {
			switch m.Tier {
			case core.TierMemory, core.TierRemote:
				t.Fatalf("HDFSwithSSD placed a replica on %v", m.Tier)
			case core.TierSSD:
				sawSSD = true
			}
		}
	}
	if !sawSSD {
		t.Error("HDFSwithSSD never used an SSD across 50 trials")
	}
}

func TestHDFSPlacementRackRules(t *testing.T) {
	s := paperCluster(9, 3)
	p := NewHDFSPolicy()
	req := moopRequest(s, core.ReplicationVectorFromFactor(3))
	req.Client = topology.Location{Rack: "/rack1", Node: "node1"}
	for trial := 0; trial < 20; trial++ {
		got, err := p.PlaceReplicas(req)
		if err != nil {
			t.Fatalf("PlaceReplicas: %v", err)
		}
		if len(got) != 3 {
			t.Fatalf("placed %d replicas, want 3", len(got))
		}
		// Rule 1: first replica on the writer's node.
		if got[0].Node != "node1" {
			t.Errorf("first replica on %s, want node1", got[0].Node)
		}
		// Rule 2: second replica off the first rack.
		if got[1].Rack == got[0].Rack {
			t.Errorf("second replica on same rack %s as first", got[1].Rack)
		}
		// Rule 3: third replica on the second replica's rack, new node.
		if got[2].Rack != got[1].Rack {
			t.Errorf("third replica on rack %s, want %s", got[2].Rack, got[1].Rack)
		}
		if got[2].Node == got[1].Node {
			t.Errorf("third replica reuses node %s", got[2].Node)
		}
		if hasDuplicates(got) {
			t.Error("duplicate media in HDFS placement")
		}
	}
}

func TestHDFSPlacementSingleRackDegradesGracefully(t *testing.T) {
	s := paperCluster(4, 1)
	p := NewHDFSPolicy()
	got, err := p.PlaceReplicas(moopRequest(s, core.ReplicationVectorFromFactor(3)))
	if err != nil {
		t.Fatalf("PlaceReplicas: %v", err)
	}
	if n := distinctNodes(got); n != 3 {
		t.Errorf("single-rack placement on %d nodes, want 3 distinct", n)
	}
}

func TestHDFSPolicyNoFeasibleMedia(t *testing.T) {
	s := paperCluster(2, 1)
	for i := range s.Media {
		if s.Media[i].Tier == core.TierHDD {
			s.Media[i].Remaining = 0
		}
	}
	p := NewHDFSPolicy()
	if _, err := p.PlaceReplicas(moopRequest(s, core.ReplicationVectorFromFactor(1))); !errors.Is(err, core.ErrNoSpace) {
		t.Errorf("err = %v, want ErrNoSpace (all HDDs full, SSD/memory off-limits)", err)
	}
}

func TestHDFSPolicyPartialPlacement(t *testing.T) {
	s := paperCluster(1, 1) // one node: 3 HDDs only
	p := NewHDFSPolicy()
	got, err := p.PlaceReplicas(moopRequest(s, core.ReplicationVectorFromFactor(5)))
	if !errors.Is(err, core.ErrNoSpace) {
		t.Fatalf("err = %v, want ErrNoSpace", err)
	}
	if len(got) != 3 {
		t.Errorf("placed %d replicas, want 3 (every HDD once)", len(got))
	}
	if hasDuplicates(got) {
		t.Error("partial placement duplicated media")
	}
}

func TestHDFSPolicyEmptyCluster(t *testing.T) {
	p := NewHDFSPolicy()
	_, err := p.PlaceReplicas(PlacementRequest{Snapshot: &Snapshot{}, RepVector: core.ReplicationVectorFromFactor(1)})
	if !errors.Is(err, core.ErrNoWorkers) {
		t.Errorf("err = %v, want ErrNoWorkers", err)
	}
}

func TestRuleBasedRoundRobinTiers(t *testing.T) {
	s := paperCluster(9, 3)
	p := NewRuleBasedPolicy()
	req := moopRequest(s, core.ReplicationVectorFromFactor(3))
	req.Rand = nil // rotation starts at the fastest tier
	got, err := p.PlaceReplicas(req)
	if err != nil {
		t.Fatalf("PlaceReplicas: %v", err)
	}
	wantTiers := []core.StorageTier{core.TierMemory, core.TierSSD, core.TierHDD}
	for i, m := range got {
		if m.Tier != wantTiers[i] {
			t.Errorf("replica %d on %v, want %v (round-robin)", i, m.Tier, wantTiers[i])
		}
	}
}

func TestRuleBasedTwoRackConstraint(t *testing.T) {
	s := paperCluster(9, 3)
	p := NewRuleBasedPolicy()
	for trial := 0; trial < 30; trial++ {
		got, err := p.PlaceReplicas(moopRequest(s, core.ReplicationVectorFromFactor(4)))
		if err != nil {
			t.Fatalf("PlaceReplicas: %v", err)
		}
		if n := distinctRacks(got); n > 2 {
			t.Errorf("rule-based placement spans %d racks, want <= 2", n)
		}
		if hasDuplicates(got) {
			t.Error("duplicate media in rule-based placement")
		}
	}
}

func TestRuleBasedSkipsExhaustedTier(t *testing.T) {
	s := paperCluster(4, 2)
	for i := range s.Media {
		if s.Media[i].Tier == core.TierMemory {
			s.Media[i].Remaining = 0
		}
	}
	p := NewRuleBasedPolicy()
	req := moopRequest(s, core.ReplicationVectorFromFactor(3))
	req.Rand = nil
	got, err := p.PlaceReplicas(req)
	if err != nil {
		t.Fatalf("PlaceReplicas: %v", err)
	}
	for _, m := range got {
		if m.Tier == core.TierMemory {
			t.Errorf("placed on exhausted memory media %s", m.ID)
		}
	}
}

func TestRuleBasedEmptyAndZeroVector(t *testing.T) {
	p := NewRuleBasedPolicy()
	if _, err := p.PlaceReplicas(PlacementRequest{Snapshot: &Snapshot{}, RepVector: core.ReplicationVectorFromFactor(1)}); !errors.Is(err, core.ErrNoWorkers) {
		t.Errorf("empty cluster err = %v, want ErrNoWorkers", err)
	}
	s := paperCluster(2, 1)
	if _, err := p.PlaceReplicas(moopRequest(s, 0)); err == nil {
		t.Error("zero vector: got nil error")
	}
}
