package policy

import "math"

// Objective identifies one of the four optimization objectives of the
// data placement MOOP (paper §3.2).
type Objective int

// The four placement objectives. The MOOP policy optimises all of
// them simultaneously; the single-objective evaluation policies of
// paper §7.2 optimise exactly one.
const (
	DataBalancing Objective = iota
	LoadBalancing
	FaultTolerance
	ThroughputMax

	numObjectives
)

var objectiveNames = [...]string{"DB", "LB", "FT", "TM"}

// String returns the paper's two-letter abbreviation for the objective.
func (o Objective) String() string {
	if int(o) < len(objectiveNames) {
		return objectiveNames[o]
	}
	return "OBJ(?)"
}

// AllObjectives returns the full objective set used by the MOOP policy.
func AllObjectives() []Objective {
	return []Objective{DataBalancing, LoadBalancing, FaultTolerance, ThroughputMax}
}

// evalContext carries the cluster-wide anchors needed to evaluate the
// objective and ideal functions: they are computed once per placement
// decision, not once per candidate.
type evalContext struct {
	blockSize     int64
	maxRemPercent float64 // max_m Rem[m]/Cap[m] (Eq. 2)
	minConns      int     // min_m NrConn[m]   (Eq. 4)
	maxWriteThru  float64 // max_m WThru[m]    (Eq. 7/8)
	numTiers      int     // k in Eq. 5
	numWorkers    int     // n in Eq. 5
	numRacks      int     // t in Eq. 5
}

func newEvalContext(s *Snapshot, blockSize int64) evalContext {
	return evalContext{
		blockSize:     blockSize,
		maxRemPercent: s.MaxRemainingPercent(),
		minConns:      s.MinConnections(),
		maxWriteThru:  s.MaxWriteThru(),
		numTiers:      s.NumTiers(),
		numWorkers:    s.NumWorkers(),
		numRacks:      s.NumRacks,
	}
}

// fDataBalancing implements Eq. 1: the sum over the selected media of
// the remaining-capacity percentage after accounting for the block to
// be stored.
func (c evalContext) fDataBalancing(chosen []Media) float64 {
	sum := 0.0
	for _, m := range chosen {
		if m.Capacity > 0 {
			sum += float64(m.Remaining-c.blockSize) / float64(m.Capacity)
		}
	}
	return sum
}

// idealDataBalancing implements Eq. 2: |m| times the best
// remaining-capacity percentage in the cluster.
func (c evalContext) idealDataBalancing(n int) float64 {
	return float64(n) * c.maxRemPercent
}

// fLoadBalancing implements Eq. 3: the sum over the selected media of
// 1/(NrConn+1).
func (c evalContext) fLoadBalancing(chosen []Media) float64 {
	sum := 0.0
	for _, m := range chosen {
		sum += 1 / float64(m.Connections+1)
	}
	return sum
}

// idealLoadBalancing implements Eq. 4: |m| / (min NrConn + 1).
func (c evalContext) idealLoadBalancing(n int) float64 {
	return float64(n) / float64(c.minConns+1)
}

// fFaultTolerance implements Eq. 5: distinct-tier and distinct-node
// ratios plus the two-rack preference term (single-rack clusters score
// the rack term as 1).
func (c evalContext) fFaultTolerance(chosen []Media) float64 {
	if len(chosen) == 0 {
		return 0
	}
	tiers, nodes, racks := distinctCounts(chosen)
	score := 0.0
	if d := min(len(chosen), c.numTiers); d > 0 {
		score += float64(tiers) / float64(d)
	}
	if d := min(len(chosen), c.numWorkers); d > 0 {
		score += float64(nodes) / float64(d)
	}
	if c.numRacks == 1 {
		score += 1
	} else {
		score += 1 / float64(abs(racks-2)+1)
	}
	return score
}

// idealFaultTolerance implements Eq. 6: the constant 3.
func (c evalContext) idealFaultTolerance(int) float64 { return 3 }

// fThroughputMax implements Eq. 7: the sum of log-throughput ratios
// against the fastest media in the cluster.
func (c evalContext) fThroughputMax(chosen []Media) float64 {
	denom := math.Log(c.maxWriteThru)
	if denom <= 0 {
		// All media report <=1 MB/s; ratios degenerate to 1.
		return float64(len(chosen))
	}
	sum := 0.0
	for _, m := range chosen {
		w := m.WriteThruMBps
		if w < 1 {
			w = 1 // clamp so slow media contribute 0, not -Inf
		}
		sum += math.Log(w) / denom
	}
	return sum
}

// idealThroughputMax implements Eq. 8: |m|.
func (c evalContext) idealThroughputMax(n int) float64 { return float64(n) }

// Norm selects the distance norm for the global-criterion scalarisation
// of Eq. 11.
type Norm int

// Supported norms. The paper's ‖·‖ is the Euclidean norm; L1 is kept
// as an ablation knob (see DESIGN.md §6).
const (
	NormL2 Norm = iota
	NormL1
)

// score computes ‖f(chosen) − z*(chosen)‖ over the requested objective
// set (Eq. 11). Restricting the set to a single objective yields the
// paper's single-objective evaluation policies.
func (c evalContext) score(chosen []Media, objectives []Objective, norm Norm) float64 {
	n := len(chosen)
	total := 0.0
	for _, o := range objectives {
		var f, ideal float64
		switch o {
		case DataBalancing:
			f, ideal = c.fDataBalancing(chosen), c.idealDataBalancing(n)
		case LoadBalancing:
			f, ideal = c.fLoadBalancing(chosen), c.idealLoadBalancing(n)
		case FaultTolerance:
			f, ideal = c.fFaultTolerance(chosen), c.idealFaultTolerance(n)
		case ThroughputMax:
			f, ideal = c.fThroughputMax(chosen), c.idealThroughputMax(n)
		}
		d := f - ideal
		switch norm {
		case NormL1:
			total += math.Abs(d)
		default:
			total += d * d
		}
	}
	if norm == NormL1 {
		return total
	}
	return math.Sqrt(total)
}

// ObjectiveVector evaluates all four objective functions on a chosen
// media list, in (DB, LB, FT, TM) order — the vector-valued f of
// Eq. 9. Exposed for tests and the benchmark harness.
func ObjectiveVector(s *Snapshot, blockSize int64, chosen []Media) [4]float64 {
	c := newEvalContext(s, blockSize)
	return [4]float64{
		c.fDataBalancing(chosen),
		c.fLoadBalancing(chosen),
		c.fFaultTolerance(chosen),
		c.fThroughputMax(chosen),
	}
}

// IdealVector evaluates the ideal objective vector z* of Eq. 10 for a
// selection of size n.
func IdealVector(s *Snapshot, blockSize int64, n int) [4]float64 {
	c := newEvalContext(s, blockSize)
	return [4]float64{
		c.idealDataBalancing(n),
		c.idealLoadBalancing(n),
		c.idealFaultTolerance(n),
		c.idealThroughputMax(n),
	}
}

// Score exposes the Eq. 11 global-criterion distance for a candidate
// selection; used by tests, replication management, and benchmarks.
func Score(s *Snapshot, blockSize int64, chosen []Media, objectives []Objective, norm Norm) float64 {
	return newEvalContext(s, blockSize).score(chosen, objectives, norm)
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
