// Package policy implements the data placement and data retrieval
// policies of OctopusFS (paper §3–§5): the multi-objective
// optimization (MOOP) placement policy with its four objectives and
// greedy solver (Algorithms 1 and 2), the four single-objective
// policies, the Original-HDFS and Rule-based baseline policies used in
// the paper's evaluation, the rate-based replica-ordering retrieval
// policy (Eq. 12) with the locality-only HDFS baseline, and the
// MOOP-based excess-replica selection used by replication management.
//
// All policies are pure functions over a Snapshot of cluster state, so
// the exact same policy code runs inside the live master and inside
// the flow-level cluster simulator used by the benchmark harness.
package policy

import (
	"math/rand"
	"sort"

	"repro/internal/core"
	"repro/internal/topology"
)

// Media is the policy-visible description of one storage media
// instance: where it lives (worker, tier, rack), how full it is, how
// loaded it is, and how fast it is. The master assembles these from
// worker heartbeats (paper §3.2); the simulator synthesises them.
type Media struct {
	ID          core.StorageID
	Worker      core.WorkerID
	Node        string // topology node name of the hosting worker
	Tier        core.StorageTier
	Rack        string
	Capacity    int64 // total bytes
	Remaining   int64 // remaining bytes
	Connections int   // active I/O connections to this media

	// Sustained throughputs measured by the worker's startup I/O
	// probe, averaged per tier by the master (paper §3.2, Table 2).
	WriteThruMBps float64
	ReadThruMBps  float64
}

// RemainingPercent returns Remaining/Capacity in [0,1], the quantity
// the data-balancing objective maximises. Zero-capacity media score 0.
func (m Media) RemainingPercent() float64 {
	if m.Capacity <= 0 {
		return 0
	}
	return float64(m.Remaining) / float64(m.Capacity)
}

// WorkerInfo is the policy-visible description of one live worker:
// its position in the topology, its NIC throughput, and the number of
// active network connections it is serving. Used by the retrieval
// policy's transfer-rate estimate (paper Eq. 12).
type WorkerInfo struct {
	ID          core.WorkerID
	Node        string
	Rack        string
	NetThruMBps float64 // average network transfer rate from this worker
	Connections int     // active network connections
}

// Location returns the worker's network location.
func (w WorkerInfo) Location() topology.Location {
	return topology.Location{Rack: w.Rack, Node: w.Node}
}

// Snapshot is an immutable point-in-time view of the cluster used for
// one policy decision. Policies never mutate a snapshot.
type Snapshot struct {
	Media    []Media
	Workers  map[core.WorkerID]WorkerInfo
	NumRacks int // racks with at least one live worker (t in Eq. 5)
}

// NumWorkers returns the number of live workers (n in Eq. 5).
func (s *Snapshot) NumWorkers() int { return len(s.Workers) }

// NumTiers returns the number of storage tiers with at least one live
// media (k in Eq. 5).
func (s *Snapshot) NumTiers() int {
	var seen [core.NumTiers]bool
	n := 0
	for _, m := range s.Media {
		if !seen[m.Tier] {
			seen[m.Tier] = true
			n++
		}
	}
	return n
}

// MaxRemainingPercent returns max over all media of Rem/Cap, the
// anchor of the ideal data-balancing value (Eq. 2).
func (s *Snapshot) MaxRemainingPercent() float64 {
	best := 0.0
	for _, m := range s.Media {
		if p := m.RemainingPercent(); p > best {
			best = p
		}
	}
	return best
}

// MinConnections returns the minimum number of active I/O connections
// across all media, the anchor of the ideal load-balancing value
// (Eq. 4).
func (s *Snapshot) MinConnections() int {
	if len(s.Media) == 0 {
		return 0
	}
	best := s.Media[0].Connections
	for _, m := range s.Media[1:] {
		if m.Connections < best {
			best = m.Connections
		}
	}
	return best
}

// MaxWriteThru returns the maximum sustained write throughput across
// all media, the normaliser of the throughput objective (Eq. 7).
func (s *Snapshot) MaxWriteThru() float64 {
	best := 0.0
	for _, m := range s.Media {
		if m.WriteThruMBps > best {
			best = m.WriteThruMBps
		}
	}
	return best
}

// MediaByID returns the media with the given ID, if present.
func (s *Snapshot) MediaByID(id core.StorageID) (Media, bool) {
	for _, m := range s.Media {
		if m.ID == id {
			return m, true
		}
	}
	return Media{}, false
}

// SortMediaStable sorts a media slice by ID. Policies sort candidate
// lists before randomised selection so that decisions are reproducible
// under a seeded rand.Rand regardless of map iteration order upstream.
func SortMediaStable(media []Media) {
	sort.Slice(media, func(i, j int) bool { return media[i].ID < media[j].ID })
}

// shuffleMedia shuffles a media slice in place using rng, falling back
// to no-op when rng is nil (callers that want determinism pass nil).
func shuffleMedia(media []Media, rng *rand.Rand) {
	if rng == nil {
		return
	}
	rng.Shuffle(len(media), func(i, j int) { media[i], media[j] = media[j], media[i] })
}

// distinctCounts returns the number of distinct tiers, nodes, and
// racks appearing in the media list (NrTiers, NrNodes, NrRacks in
// Eq. 5).
func distinctCounts(media []Media) (tiers, nodes, racks int) {
	var tierSeen [core.NumTiers + 1]bool
	nodeSeen := make(map[string]struct{}, len(media))
	rackSeen := make(map[string]struct{}, len(media))
	for _, m := range media {
		ti := int(m.Tier)
		if ti > core.NumTiers {
			ti = core.NumTiers
		}
		if !tierSeen[ti] {
			tierSeen[ti] = true
			tiers++
		}
		nodeSeen[m.Node] = struct{}{}
		rackSeen[m.Rack] = struct{}{}
	}
	return tiers, len(nodeSeen), len(rackSeen)
}
