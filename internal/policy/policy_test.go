package policy

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
)

// Throughputs from paper Table 2 (MB/s), used by all policy tests.
const (
	memWrite = 1897.4
	memRead  = 3224.8
	ssdWrite = 340.6
	ssdRead  = 419.5
	hddWrite = 126.3
	hddRead  = 177.1

	netThru = 1250.0 // 10 Gbps NIC in MB/s

	gb = int64(1 << 30)
)

// paperCluster builds a snapshot mirroring the paper's evaluation
// cluster: 9 workers split across racks, each with one memory media
// (4 GB), one SSD (64 GB), and three HDDs (400 GB split across
// drives), with Table 2 throughputs, all idle.
func paperCluster(numWorkers, numRacks int) *Snapshot {
	s := &Snapshot{Workers: make(map[core.WorkerID]WorkerInfo), NumRacks: numRacks}
	for w := 0; w < numWorkers; w++ {
		node := fmt.Sprintf("node%d", w+1)
		rack := fmt.Sprintf("/rack%d", w%numRacks+1)
		id := core.WorkerID(node)
		s.Workers[id] = WorkerInfo{ID: id, Node: node, Rack: rack, NetThruMBps: netThru}
		add := func(kind string, idx int, tier core.StorageTier, capBytes int64, wtp, rtp float64) {
			s.Media = append(s.Media, Media{
				ID:            core.StorageID(fmt.Sprintf("%s:%s%d", node, kind, idx)),
				Worker:        id,
				Node:          node,
				Tier:          tier,
				Rack:          rack,
				Capacity:      capBytes,
				Remaining:     capBytes,
				WriteThruMBps: wtp,
				ReadThruMBps:  rtp,
			})
		}
		add("mem", 0, core.TierMemory, 4*gb, memWrite, memRead)
		add("ssd", 0, core.TierSSD, 64*gb, ssdWrite, ssdRead)
		for d := 0; d < 3; d++ {
			add("hdd", d, core.TierHDD, 133*gb, hddWrite, hddRead)
		}
	}
	return s
}

// findMedia returns the snapshot media with the given ID, failing the
// lookup loudly if absent.
func findMedia(s *Snapshot, id core.StorageID) *Media {
	for i := range s.Media {
		if s.Media[i].ID == id {
			return &s.Media[i]
		}
	}
	panic("test media not found: " + string(id))
}

func testRand() *rand.Rand { return rand.New(rand.NewSource(42)) }

// countByTier tallies a selection per tier.
func countByTier(ms []Media) map[core.StorageTier]int {
	out := make(map[core.StorageTier]int)
	for _, m := range ms {
		out[m.Tier]++
	}
	return out
}

// distinctNodes returns the number of distinct nodes in a selection.
func distinctNodes(ms []Media) int {
	seen := make(map[string]struct{})
	for _, m := range ms {
		seen[m.Node] = struct{}{}
	}
	return len(seen)
}

// distinctRacks returns the number of distinct racks in a selection.
func distinctRacks(ms []Media) int {
	seen := make(map[string]struct{})
	for _, m := range ms {
		seen[m.Rack] = struct{}{}
	}
	return len(seen)
}

// assertNoDuplicates fails if a selection reuses a media.
func hasDuplicates(ms []Media) bool {
	seen := make(map[core.StorageID]struct{})
	for _, m := range ms {
		if _, dup := seen[m.ID]; dup {
			return true
		}
		seen[m.ID] = struct{}{}
	}
	return false
}
