package policy

import (
	"fmt"

	"repro/internal/core"
)

// RuleBasedPolicy reimplements the rule-based baseline of paper §7.2:
// it is both network-topology and storage-tier aware, placing replicas
// across the tiers in a round-robin fashion on randomly selected nodes
// spread across two racks — but it consults no statistics, so it
// ignores current load and remaining capacity beyond feasibility.
type RuleBasedPolicy struct {
	// tierOrder is the round-robin tier rotation, fastest tier first.
	tierOrder []core.StorageTier
}

// NewRuleBasedPolicy builds the rule-based baseline rotating over the
// memory, SSD, and HDD tiers (the tiers present in the paper's
// cluster). Tiers absent from the snapshot are skipped at decision
// time.
func NewRuleBasedPolicy() *RuleBasedPolicy {
	return &RuleBasedPolicy{
		tierOrder: []core.StorageTier{core.TierMemory, core.TierSSD, core.TierHDD, core.TierRemote},
	}
}

// Name implements PlacementPolicy.
func (p *RuleBasedPolicy) Name() string { return "RuleBased" }

// PlaceReplicas implements PlacementPolicy. Replica i goes to the
// i-th tier of the rotation (skipping tiers with no feasible media),
// on a random node constrained to at most two racks.
func (p *RuleBasedPolicy) PlaceReplicas(req PlacementRequest) ([]Media, error) {
	if req.Snapshot == nil || len(req.Snapshot.Media) == 0 {
		return nil, core.ErrNoWorkers
	}
	r := req.RepVector.Total()
	if r == 0 {
		return nil, fmt.Errorf("policy: empty replication vector: %w", core.ErrNoSpace)
	}

	chosen := append([]Media(nil), req.Existing...)
	placed := make([]Media, 0, r)
	rot := p.rotationStart(req)
	for i := 0; i < r; i++ {
		m, ok := p.next(req, chosen, rot+i)
		if !ok {
			if len(placed) == 0 {
				return nil, fmt.Errorf("policy: rule-based placement found no feasible media: %w", core.ErrNoSpace)
			}
			return placed, fmt.Errorf("policy: placed %d of %d replicas: %w", len(placed), r, core.ErrNoSpace)
		}
		chosen = append(chosen, m)
		placed = append(placed, m)
	}
	return placed, nil
}

// rotationStart staggers the tier rotation across blocks so that
// successive blocks do not all start on the same tier. It derives the
// offset from the request's randomness; with a nil Rand the rotation
// always starts at the fastest tier.
func (p *RuleBasedPolicy) rotationStart(req PlacementRequest) int {
	if req.Rand == nil {
		return 0
	}
	return req.Rand.Intn(len(p.tierOrder))
}

func (p *RuleBasedPolicy) next(req PlacementRequest, chosen []Media, rotation int) (Media, bool) {
	usedIDs := make(map[core.StorageID]struct{}, len(chosen))
	usedRacks := make(map[string]struct{}, len(chosen))
	usedNodes := make(map[string]struct{}, len(chosen))
	for _, c := range chosen {
		usedIDs[c.ID] = struct{}{}
		usedRacks[c.Rack] = struct{}{}
		usedNodes[c.Node] = struct{}{}
	}
	rackOK := func(rack string) bool {
		if len(usedRacks) < 2 {
			return true
		}
		_, ok := usedRacks[rack]
		return ok
	}
	// Try each tier of the rotation starting at the requested offset.
	for k := 0; k < len(p.tierOrder); k++ {
		tier := p.tierOrder[(rotation+k)%len(p.tierOrder)]
		var candidates []Media
		var fallback []Media // same tier but reused node
		for _, m := range req.Snapshot.Media {
			if _, dup := usedIDs[m.ID]; dup {
				continue
			}
			if m.Tier != tier || m.Remaining-req.BlockSize < 0 || !rackOK(m.Rack) {
				continue
			}
			if _, used := usedNodes[m.Node]; used {
				fallback = append(fallback, m)
				continue
			}
			candidates = append(candidates, m)
		}
		if len(candidates) == 0 {
			candidates = fallback
		}
		if len(candidates) > 0 {
			SortMediaStable(candidates)
			return pickRandom(candidates, req.Rand), true
		}
	}
	return Media{}, false
}
