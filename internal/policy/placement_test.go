package policy

import (
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/topology"
)

const testBlock = int64(128 << 20)

func moopRequest(s *Snapshot, rv core.ReplicationVector) PlacementRequest {
	return PlacementRequest{
		Snapshot:  s,
		RepVector: rv,
		BlockSize: testBlock,
		Rand:      testRand(),
	}
}

func TestMOOPHonorsPinnedTiers(t *testing.T) {
	s := paperCluster(9, 3)
	p := NewMOOPPolicy(DefaultMOOPConfig())
	rv := core.NewReplicationVector(1, 1, 1, 0, 0)
	got, err := p.PlaceReplicas(moopRequest(s, rv))
	if err != nil {
		t.Fatalf("PlaceReplicas: %v", err)
	}
	byTier := countByTier(got)
	if byTier[core.TierMemory] != 1 || byTier[core.TierSSD] != 1 || byTier[core.TierHDD] != 1 {
		t.Errorf("tier counts = %v, want 1 memory, 1 ssd, 1 hdd", byTier)
	}
	if hasDuplicates(got) {
		t.Errorf("selection reuses media: %v", got)
	}
}

func TestMOOPUnspecifiedAvoidsMemoryByDefault(t *testing.T) {
	s := paperCluster(9, 3)
	p := NewMOOPPolicy(DefaultMOOPConfig()) // UseMemory=false
	got, err := p.PlaceReplicas(moopRequest(s, core.ReplicationVectorFromFactor(3)))
	if err != nil {
		t.Fatalf("PlaceReplicas: %v", err)
	}
	if n := countByTier(got)[core.TierMemory]; n != 0 {
		t.Errorf("placed %d replicas in memory with UseMemory=false, want 0", n)
	}
}

func TestMOOPMemoryCapOneThird(t *testing.T) {
	s := paperCluster(9, 3)
	cfg := DefaultMOOPConfig()
	cfg.UseMemory = true
	p := NewMOOPPolicy(cfg)
	// With 6 replicas and a 1/3 cap, at most 2 may live in memory.
	got, err := p.PlaceReplicas(moopRequest(s, core.ReplicationVectorFromFactor(6)))
	if err != nil {
		t.Fatalf("PlaceReplicas: %v", err)
	}
	if n := countByTier(got)[core.TierMemory]; n > 2 {
		t.Errorf("placed %d of 6 replicas in memory, want <= 2 (1/3 cap)", n)
	}
}

func TestMOOPPinnedMemoryAlwaysHonoredDespiteCap(t *testing.T) {
	s := paperCluster(9, 3)
	p := NewMOOPPolicy(DefaultMOOPConfig()) // UseMemory=false
	// Explicit pin must override the policy-level memory opt-out.
	got, err := p.PlaceReplicas(moopRequest(s, core.NewReplicationVector(2, 0, 1, 0, 0)))
	if err != nil {
		t.Fatalf("PlaceReplicas: %v", err)
	}
	if n := countByTier(got)[core.TierMemory]; n != 2 {
		t.Errorf("placed %d memory replicas, want 2 (explicitly pinned)", n)
	}
}

func TestMOOPSpreadsAcrossNodesAndTwoRacks(t *testing.T) {
	s := paperCluster(9, 3)
	p := NewMOOPPolicy(DefaultMOOPConfig())
	got, err := p.PlaceReplicas(moopRequest(s, core.ReplicationVectorFromFactor(3)))
	if err != nil {
		t.Fatalf("PlaceReplicas: %v", err)
	}
	if n := distinctNodes(got); n != 3 {
		t.Errorf("replicas on %d distinct nodes, want 3", n)
	}
	if n := distinctRacks(got); n != 2 {
		t.Errorf("replicas on %d racks, want exactly 2 (paper heuristic)", n)
	}
}

func TestMOOPClientCollocationFirstReplica(t *testing.T) {
	s := paperCluster(9, 3)
	p := NewMOOPPolicy(DefaultMOOPConfig())
	req := moopRequest(s, core.ReplicationVectorFromFactor(3))
	req.Client = topology.Location{Rack: "/rack2", Node: "node5"}
	got, err := p.PlaceReplicas(req)
	if err != nil {
		t.Fatalf("PlaceReplicas: %v", err)
	}
	if got[0].Node != "node5" {
		t.Errorf("first replica on %s, want client node node5", got[0].Node)
	}
}

func TestMOOPCapacityConstraint(t *testing.T) {
	s := paperCluster(3, 1)
	// Starve every media except two HDDs.
	for i := range s.Media {
		if s.Media[i].ID != "node1:hdd0" && s.Media[i].ID != "node2:hdd0" {
			s.Media[i].Remaining = testBlock - 1
		}
	}
	p := NewMOOPPolicy(DefaultMOOPConfig())
	got, err := p.PlaceReplicas(moopRequest(s, core.ReplicationVectorFromFactor(3)))
	if !errors.Is(err, core.ErrNoSpace) {
		t.Fatalf("err = %v, want ErrNoSpace (only 2 feasible media)", err)
	}
	if len(got) != 2 {
		t.Fatalf("placed %d replicas, want 2 (partial placement)", len(got))
	}
	for _, m := range got {
		if m.ID != "node1:hdd0" && m.ID != "node2:hdd0" {
			t.Errorf("placed on infeasible media %s", m.ID)
		}
	}
}

func TestMOOPNoFeasibleMedia(t *testing.T) {
	s := paperCluster(2, 1)
	for i := range s.Media {
		s.Media[i].Remaining = 0
	}
	p := NewMOOPPolicy(DefaultMOOPConfig())
	if _, err := p.PlaceReplicas(moopRequest(s, core.ReplicationVectorFromFactor(1))); !errors.Is(err, core.ErrNoSpace) {
		t.Errorf("err = %v, want ErrNoSpace", err)
	}
}

func TestMOOPEmptyCluster(t *testing.T) {
	p := NewMOOPPolicy(DefaultMOOPConfig())
	_, err := p.PlaceReplicas(PlacementRequest{Snapshot: &Snapshot{}, RepVector: core.ReplicationVectorFromFactor(1)})
	if !errors.Is(err, core.ErrNoWorkers) {
		t.Errorf("err = %v, want ErrNoWorkers", err)
	}
}

func TestMOOPZeroVector(t *testing.T) {
	s := paperCluster(2, 1)
	p := NewMOOPPolicy(DefaultMOOPConfig())
	if _, err := p.PlaceReplicas(moopRequest(s, 0)); err == nil {
		t.Error("PlaceReplicas(zero vector): got nil error")
	}
}

func TestMOOPReReplicationAvoidsExistingMediaAndNodes(t *testing.T) {
	s := paperCluster(9, 3)
	existing := []Media{*findMedia(s, "node1:hdd0"), *findMedia(s, "node4:hdd0")}
	p := NewMOOPPolicy(DefaultMOOPConfig())
	req := moopRequest(s, core.NewReplicationVector(0, 0, 1, 0, 0))
	req.Existing = existing
	got, err := p.PlaceReplicas(req)
	if err != nil {
		t.Fatalf("PlaceReplicas: %v", err)
	}
	if len(got) != 1 {
		t.Fatalf("placed %d replicas, want 1", len(got))
	}
	if got[0].ID == "node1:hdd0" || got[0].ID == "node4:hdd0" {
		t.Errorf("re-replication reused existing media %s", got[0].ID)
	}
	if got[0].Node == "node1" || got[0].Node == "node4" {
		t.Errorf("re-replication reused existing node %s; FT objective should spread", got[0].Node)
	}
	// Rack pruning with existing replicas on rack1+rack1(node4=rack1?):
	// node1 -> rack1, node4 -> rack1 (9 workers, 3 racks: node4 = rack1).
	// So the new replica should land off rack1.
	if got[0].Rack == "/rack1" {
		t.Errorf("new replica on %s, want a different rack than both existing", got[0].Rack)
	}
}

func TestMOOPRackPruningFallsBackWhenOnlyOneRackFeasible(t *testing.T) {
	s := paperCluster(6, 2)
	// Make every media outside rack1 infeasible.
	for i := range s.Media {
		if s.Media[i].Rack != "/rack1" {
			s.Media[i].Remaining = 0
		}
	}
	p := NewMOOPPolicy(DefaultMOOPConfig())
	got, err := p.PlaceReplicas(moopRequest(s, core.ReplicationVectorFromFactor(3)))
	if err != nil {
		t.Fatalf("PlaceReplicas: %v (rack pruning must relax, not fail)", err)
	}
	for _, m := range got {
		if m.Rack != "/rack1" {
			t.Errorf("replica on infeasible rack %s", m.Rack)
		}
	}
}

func TestSingleObjectivePolicies(t *testing.T) {
	t.Run("TM picks fastest tier", func(t *testing.T) {
		s := paperCluster(9, 3)
		p := NewSingleObjectivePolicy(ThroughputMax)
		got, err := p.PlaceReplicas(moopRequest(s, core.ReplicationVectorFromFactor(3)))
		if err != nil {
			t.Fatalf("PlaceReplicas: %v", err)
		}
		// TM single-objective still respects the 1/3 memory cap, so
		// expect 1 memory + 2 SSD (fastest feasible).
		byTier := countByTier(got)
		if byTier[core.TierHDD] != 0 {
			t.Errorf("TM placed %d replicas on HDD, want 0 while faster tiers have space", byTier[core.TierHDD])
		}
	})

	t.Run("DB picks most-remaining media", func(t *testing.T) {
		s := paperCluster(3, 1)
		// Drain everything to 40% except two specific HDDs at 100%.
		for i := range s.Media {
			s.Media[i].Remaining = s.Media[i].Capacity * 2 / 5
		}
		findMedia(s, "node2:hdd1").Remaining = findMedia(s, "node2:hdd1").Capacity
		p := NewSingleObjectivePolicy(DataBalancing)
		got, err := p.PlaceReplicas(moopRequest(s, core.ReplicationVectorFromFactor(1)))
		if err != nil {
			t.Fatalf("PlaceReplicas: %v", err)
		}
		if got[0].ID != "node2:hdd1" {
			t.Errorf("DB picked %s, want node2:hdd1 (highest remaining %%)", got[0].ID)
		}
	})

	t.Run("LB picks least-loaded media", func(t *testing.T) {
		s := paperCluster(3, 1)
		for i := range s.Media {
			s.Media[i].Connections = 5
		}
		findMedia(s, "node3:ssd0").Connections = 0
		p := NewSingleObjectivePolicy(LoadBalancing)
		got, err := p.PlaceReplicas(moopRequest(s, core.ReplicationVectorFromFactor(1)))
		if err != nil {
			t.Fatalf("PlaceReplicas: %v", err)
		}
		if got[0].ID != "node3:ssd0" {
			t.Errorf("LB picked %s, want node3:ssd0 (idle media)", got[0].ID)
		}
	})

	t.Run("FT spreads tiers nodes racks", func(t *testing.T) {
		s := paperCluster(9, 3)
		p := NewSingleObjectivePolicy(FaultTolerance)
		got, err := p.PlaceReplicas(moopRequest(s, core.ReplicationVectorFromFactor(3)))
		if err != nil {
			t.Fatalf("PlaceReplicas: %v", err)
		}
		tiers, nodes, racks := distinctCounts(got)
		if tiers != 3 || nodes != 3 || racks != 2 {
			t.Errorf("FT selection: tiers=%d nodes=%d racks=%d, want 3/3/2", tiers, nodes, racks)
		}
	})
}

func TestPolicyNames(t *testing.T) {
	if got := NewMOOPPolicy(DefaultMOOPConfig()).Name(); got != "MOOP" {
		t.Errorf("MOOP Name() = %q", got)
	}
	if got := NewSingleObjectivePolicy(DataBalancing).Name(); got != "DB" {
		t.Errorf("DB policy Name() = %q", got)
	}
	if got := NewHDFSPolicy().Name(); got != "OriginalHDFS" {
		t.Errorf("HDFS Name() = %q", got)
	}
	if got := NewHDFSWithSSDPolicy().Name(); got != "HDFSwithSSD" {
		t.Errorf("HDFS+SSD Name() = %q", got)
	}
	if got := NewRuleBasedPolicy().Name(); got != "RuleBased" {
		t.Errorf("RuleBased Name() = %q", got)
	}
}

func TestSelectExcessReplica(t *testing.T) {
	s := paperCluster(9, 3)
	// Three HDD replicas, two on the same node: removing one of the
	// clumped pair leaves the best-spread remainder.
	replicas := []Media{
		*findMedia(s, "node1:hdd0"),
		*findMedia(s, "node1:hdd1"),
		*findMedia(s, "node5:hdd0"),
	}
	idx, ok := SelectExcessReplica(s, testBlock, replicas, core.TierHDD)
	if !ok {
		t.Fatal("SelectExcessReplica: no candidate")
	}
	if idx != 0 && idx != 1 {
		t.Errorf("removed replica %d (%s), want one of the node1 pair", idx, replicas[idx].ID)
	}

	// Tier restriction: only memory replicas may be removed.
	mixed := []Media{
		*findMedia(s, "node1:mem0"),
		*findMedia(s, "node2:hdd0"),
		*findMedia(s, "node5:hdd0"),
	}
	idx, ok = SelectExcessReplica(s, testBlock, mixed, core.TierMemory)
	if !ok || mixed[idx].Tier != core.TierMemory {
		t.Errorf("SelectExcessReplica(memory) = %d ok=%v, want the memory replica", idx, ok)
	}

	// No replica on the requested tier.
	if _, ok := SelectExcessReplica(s, testBlock, mixed, core.TierRemote); ok {
		t.Error("SelectExcessReplica(remote): got ok=true, want false")
	}
	if _, ok := SelectExcessReplica(s, testBlock, nil, core.TierUnspecified); ok {
		t.Error("SelectExcessReplica(empty): got ok=true, want false")
	}
}

func TestSolveMOOPExposedHelper(t *testing.T) {
	s := paperCluster(3, 1)
	options := []Media{*findMedia(s, "node1:hdd0"), *findMedia(s, "node1:mem0")}
	best, ok := SolveMOOP(s, testBlock, options, nil)
	if !ok {
		t.Fatal("SolveMOOP returned no media")
	}
	if best.Tier != core.TierMemory {
		t.Errorf("SolveMOOP picked %s; on a fresh cluster the memory media dominates", best.ID)
	}
	if _, ok := SolveMOOP(s, testBlock, nil, nil); ok {
		t.Error("SolveMOOP(no options): got ok=true")
	}
}

// TestQuickMOOPInvariants property-checks the MOOP policy on random
// cluster shapes: placements never duplicate media, never exceed
// capacity, and honour pinned tiers.
func TestQuickMOOPInvariants(t *testing.T) {
	p := NewMOOPPolicy(DefaultMOOPConfig())
	f := func(nWorkers, nRacks, mPin, sPin, hPin, uPin uint8, seed int64) bool {
		nw := int(nWorkers)%8 + 2 // 2..9 workers
		nr := int(nRacks)%3 + 1   // 1..3 racks
		s := paperCluster(nw, nr)
		rv := core.NewReplicationVector(int(mPin)%2, int(sPin)%3, int(hPin)%3, 0, int(uPin)%3)
		if rv.IsZero() {
			return true
		}
		req := moopRequest(s, rv)
		req.Rand = nil
		got, err := p.PlaceReplicas(req)
		if err != nil && !errors.Is(err, core.ErrNoSpace) {
			return false
		}
		if hasDuplicates(got) {
			return false
		}
		byTier := countByTier(got)
		// Pinned tier counts may not be exceeded by... pinned entries
		// are exact; unspecified adds only to non-pinned feasible tiers.
		if err == nil {
			if byTier[core.TierMemory] < rv.Memory() ||
				byTier[core.TierSSD] < rv.SSD() ||
				byTier[core.TierHDD] < rv.HDD() {
				return false
			}
		}
		for _, m := range got {
			if m.Remaining < testBlock {
				return false
			}
		}
		_ = seed
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
