package policy

import (
	"strings"
	"testing"

	"repro/internal/core"
)

// TestExplainedMatchesPlainPlacement proves the explainability path is
// a pure observer: for the same seeded request, PlaceReplicasExplained
// must pick exactly the media PlaceReplicas picks.
func TestExplainedMatchesPlainPlacement(t *testing.T) {
	vectors := []core.ReplicationVector{
		core.ReplicationVectorFromFactor(3),
		core.NewReplicationVector(1, 1, 1, 0, 0),
		core.NewReplicationVector(0, 2, 2, 0, 0),
	}
	for _, rv := range vectors {
		s := paperCluster(9, 3)
		p := NewMOOPPolicy(DefaultMOOPConfig())
		plain, err := p.PlaceReplicas(moopRequest(s, rv))
		if err != nil {
			t.Fatalf("%s: PlaceReplicas: %v", rv, err)
		}
		explained, decisions, err := p.PlaceReplicasExplained(moopRequest(s, rv))
		if err != nil {
			t.Fatalf("%s: PlaceReplicasExplained: %v", rv, err)
		}
		if len(plain) != len(explained) {
			t.Fatalf("%s: plain placed %d, explained placed %d", rv, len(plain), len(explained))
		}
		for i := range plain {
			if plain[i].ID != explained[i].ID {
				t.Errorf("%s: replica %d differs: plain=%s explained=%s",
					rv, i, plain[i].ID, explained[i].ID)
			}
		}
		if len(decisions) != len(explained) {
			t.Fatalf("%s: %d decisions for %d replicas", rv, len(decisions), len(explained))
		}
	}
}

// TestExplainDecisionContents checks each decision is self-consistent:
// winner first and marked Chosen, full objective vectors, candidate
// ordering by score, and the Considered total covering the cap.
func TestExplainDecisionContents(t *testing.T) {
	s := paperCluster(9, 3)
	p := NewMOOPPolicy(DefaultMOOPConfig())
	rv := core.NewReplicationVector(1, 1, 1, 0, 0)
	placed, decisions, err := p.PlaceReplicasExplained(moopRequest(s, rv))
	if err != nil {
		t.Fatalf("PlaceReplicasExplained: %v", err)
	}
	entries := rv.PinnedTiers()
	for i, dec := range decisions {
		if dec.Entry != entries[i] {
			t.Errorf("decision %d entry = %v, want %v", i, dec.Entry, entries[i])
		}
		if len(dec.Candidates) == 0 {
			t.Fatalf("decision %d has no candidates", i)
		}
		if len(dec.Candidates) < 2 {
			t.Errorf("decision %d retained %d candidates, want winner plus at least one rejected",
				i, len(dec.Candidates))
		}
		if len(dec.Candidates) > MaxExplainedCandidates {
			t.Errorf("decision %d retained %d candidates, cap is %d",
				i, len(dec.Candidates), MaxExplainedCandidates)
		}
		if dec.Considered < len(dec.Candidates) {
			t.Errorf("decision %d considered %d < retained %d",
				i, dec.Considered, len(dec.Candidates))
		}
		win := dec.Candidates[0]
		if !win.Chosen {
			t.Errorf("decision %d candidate 0 not marked Chosen", i)
		}
		if win.Media.ID != placed[i].ID {
			t.Errorf("decision %d winner %s != placed %s", i, win.Media.ID, placed[i].ID)
		}
		for k, c := range dec.Candidates {
			if k > 0 && c.Chosen {
				t.Errorf("decision %d candidate %d also marked Chosen", i, k)
			}
			if k > 0 && c.Score < win.Score {
				t.Errorf("decision %d candidate %d score %.6f beats winner %.6f",
					i, k, c.Score, win.Score)
			}
			if k > 1 && c.Score < dec.Candidates[k-1].Score {
				t.Errorf("decision %d candidates not in ascending score order at %d", i, k)
			}
			var zero [4]float64
			if c.Objectives == zero {
				t.Errorf("decision %d candidate %d has an all-zero objective vector", i, k)
			}
		}
	}
}

// TestExplainScoreMatchesSolver proves the per-candidate score the
// explainer reports is bit-identical to what the unexplained solver
// computes for the same trial selection.
func TestExplainScoreMatchesSolver(t *testing.T) {
	s := paperCluster(6, 2)
	cfg := DefaultMOOPConfig()
	ctx := newEvalContext(s, testBlock)

	var options []Media
	for _, m := range s.Media {
		if m.Tier == core.TierHDD {
			options = append(options, m)
		}
	}
	best, score, dec, ok := solveMOOPExplained(ctx, options, nil, cfg.Objectives, cfg.Norm)
	if !ok {
		t.Fatal("solveMOOPExplained found no candidate")
	}
	wantBest, wantScore, wantOK := solveMOOP(ctx, options, nil, cfg.Objectives, cfg.Norm)
	if !wantOK || best.ID != wantBest.ID || score != wantScore {
		t.Fatalf("explained solver picked (%s, %v), plain solver picked (%s, %v)",
			best.ID, score, wantBest.ID, wantScore)
	}
	// Every retained candidate's score must equal a from-scratch
	// evaluation of the same trial selection.
	for _, c := range dec.Candidates {
		if got := ctx.score([]Media{c.Media}, cfg.Objectives, cfg.Norm); got != c.Score {
			t.Errorf("candidate %s score %v, independent evaluation %v", c.Media.ID, c.Score, got)
		}
	}
}

// TestExplainL1Norm covers the L1 branch of scoreFromVectors.
func TestExplainL1Norm(t *testing.T) {
	fvec := [4]float64{3, 1, 4, 1.5}
	ideal := [4]float64{1, 1, 2, 0.5}
	objectives := []Objective{DataBalancing, FaultTolerance, ThroughputMax}
	if got := scoreFromVectors(fvec, ideal, objectives, NormL1); got != 5 {
		t.Errorf("L1 score = %v, want 5", got)
	}
}

// TestFormatVector pins the rendering used by octopus-cli explain.
func TestFormatVector(t *testing.T) {
	out := FormatVector([4]float64{1.9, 0.75, 2.333, 1.8})
	for _, name := range ObjectiveNames() {
		if !strings.Contains(out, name+"=") {
			t.Errorf("FormatVector output %q missing objective %s", out, name)
		}
	}
}
