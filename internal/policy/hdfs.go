package policy

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
)

// HDFSPolicy reimplements the default HDFS block placement policy used
// as the baseline in the paper's evaluation (§7.2): the first replica
// goes on the writer's node, the second on a node in a different rack,
// the third on a different node in the second replica's rack, and any
// further replicas on random nodes — with no awareness of storage
// tiers. Media on a chosen node are picked uniformly at random among
// the allowed media types, mirroring HDFS's round-robin volume choice.
type HDFSPolicy struct {
	name    string
	allowed map[core.StorageTier]bool
}

// NewHDFSPolicy builds the "Original HDFS" baseline, which stores
// replicas on HDD media only.
func NewHDFSPolicy() *HDFSPolicy {
	return &HDFSPolicy{
		name:    "OriginalHDFS",
		allowed: map[core.StorageTier]bool{core.TierHDD: true},
	}
}

// NewHDFSWithSSDPolicy builds the "HDFS with SSD" baseline of §7.2:
// HDFS using both HDDs and SSDs for storing replicas but without
// differentiating between the two media types.
func NewHDFSWithSSDPolicy() *HDFSPolicy {
	return &HDFSPolicy{
		name:    "HDFSwithSSD",
		allowed: map[core.StorageTier]bool{core.TierHDD: true, core.TierSSD: true},
	}
}

// Name implements PlacementPolicy.
func (p *HDFSPolicy) Name() string { return p.name }

// PlaceReplicas implements PlacementPolicy using the HDFS default
// placement rules. The replication vector's tier pins are ignored —
// HDFS cannot express them — so only the total replica count matters.
func (p *HDFSPolicy) PlaceReplicas(req PlacementRequest) ([]Media, error) {
	if req.Snapshot == nil || len(req.Snapshot.Media) == 0 {
		return nil, core.ErrNoWorkers
	}
	r := req.RepVector.Total()
	if r == 0 {
		return nil, fmt.Errorf("policy: empty replication vector: %w", core.ErrNoSpace)
	}

	chosen := append([]Media(nil), req.Existing...)
	placed := make([]Media, 0, r)
	for i := 0; i < r; i++ {
		m, ok := p.next(req, chosen)
		if !ok {
			if len(placed) == 0 {
				return nil, fmt.Errorf("policy: HDFS placement found no feasible media: %w", core.ErrNoSpace)
			}
			return placed, fmt.Errorf("policy: placed %d of %d replicas: %w", len(placed), r, core.ErrNoSpace)
		}
		chosen = append(chosen, m)
		placed = append(placed, m)
	}
	return placed, nil
}

// next picks the media for the (len(chosen)+1)-th replica.
func (p *HDFSPolicy) next(req PlacementRequest, chosen []Media) (Media, bool) {
	type rule func(m Media) bool
	usedNodes := make(map[string]struct{}, len(chosen))
	usedIDs := make(map[core.StorageID]struct{}, len(chosen))
	for _, c := range chosen {
		usedNodes[c.Node] = struct{}{}
		usedIDs[c.ID] = struct{}{}
	}
	feasible := func(m Media) bool {
		if _, dup := usedIDs[m.ID]; dup {
			return false
		}
		if !p.allowed[m.Tier] {
			return false
		}
		return m.Remaining-req.BlockSize >= 0
	}
	newNode := func(m Media) bool {
		_, used := usedNodes[m.Node]
		return !used
	}

	// Placement preference ladder for this replica index, tried in
	// order until one yields candidates.
	var ladder []rule
	switch len(chosen) {
	case 0:
		if req.Client.Node != "" {
			ladder = append(ladder, func(m Media) bool { return m.Node == req.Client.Node })
		}
		ladder = append(ladder, func(Media) bool { return true })
	case 1:
		firstRack := chosen[0].Rack
		ladder = append(ladder,
			func(m Media) bool { return m.Rack != firstRack && newNode(m) },
			newNode,
			func(Media) bool { return true })
	case 2:
		secondRack := chosen[1].Rack
		ladder = append(ladder,
			func(m Media) bool { return m.Rack == secondRack && newNode(m) },
			newNode,
			func(Media) bool { return true })
	default:
		ladder = append(ladder, newNode, func(Media) bool { return true })
	}

	for _, want := range ladder {
		var candidates []Media
		for _, m := range req.Snapshot.Media {
			if feasible(m) && want(m) {
				candidates = append(candidates, m)
			}
		}
		if len(candidates) == 0 {
			continue
		}
		SortMediaStable(candidates)
		// HDFS picks a target node first, then round-robins across
		// the node's volumes; approximate the volume rotation by
		// choosing the least-loaded media on the chosen node.
		nodes := make([]string, 0, len(candidates))
		seen := map[string]struct{}{}
		for _, m := range candidates {
			if _, ok := seen[m.Node]; !ok {
				seen[m.Node] = struct{}{}
				nodes = append(nodes, m.Node)
			}
		}
		node := nodes[0]
		if req.Rand != nil {
			node = nodes[req.Rand.Intn(len(nodes))]
		}
		var onNode []Media
		for _, m := range candidates {
			if m.Node == node {
				onNode = append(onNode, m)
			}
		}
		minConns := onNode[0].Connections
		for _, m := range onNode[1:] {
			if m.Connections < minConns {
				minConns = m.Connections
			}
		}
		var least []Media
		for _, m := range onNode {
			if m.Connections == minConns {
				least = append(least, m)
			}
		}
		return pickRandom(least, req.Rand), true
	}
	return Media{}, false
}

func pickRandom(candidates []Media, rng *rand.Rand) Media {
	if rng == nil || len(candidates) == 1 {
		return candidates[0]
	}
	return candidates[rng.Intn(len(candidates))]
}
