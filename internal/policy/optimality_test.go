package policy

import (
	"math/rand"
	"testing"

	"repro/internal/core"
)

// exhaustiveBest enumerates every feasible r-combination of media and
// returns the minimum Eq. 11 score — the true MOOP optimum that the
// paper's greedy algorithm approximates (§3.3: "a good solution near
// the optimal one"). It honours the same 1/3-memory cap the policy
// applies, so the comparison is apples to apples.
func exhaustiveBest(s *Snapshot, blockSize int64, r int) (float64, bool) {
	var feasible []Media
	for _, m := range s.Media {
		if m.Remaining >= blockSize {
			feasible = append(feasible, m)
		}
	}
	if len(feasible) < r {
		return 0, false
	}
	memBudget := r / 3
	best := 0.0
	found := false
	combo := make([]Media, 0, r)
	var rec func(start, memUsed int)
	rec = func(start, memUsed int) {
		if len(combo) == r {
			score := Score(s, blockSize, combo, AllObjectives(), NormL2)
			if !found || score < best {
				best, found = score, true
			}
			return
		}
		for i := start; i <= len(feasible)-(r-len(combo)); i++ {
			mem := memUsed
			if feasible[i].Tier == core.TierMemory {
				mem++
				if mem > memBudget {
					continue
				}
			}
			combo = append(combo, feasible[i])
			rec(i+1, mem)
			combo = combo[:len(combo)-1]
		}
	}
	rec(0, 0)
	return best, found
}

// TestGreedyMOOPNearOptimal compares the greedy Algorithm 2 against
// exhaustive enumeration on randomized small clusters. The paper's
// claim: exact for r=1, near-optimal otherwise thanks to the optimal
// substructure of each objective.
func TestGreedyMOOPNearOptimal(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	cfg := DefaultMOOPConfig()
	cfg.UseMemory = true
	cfg.RackPruning = false // enumeration has no rack heuristic
	cfg.ClientLocal = false
	p := NewMOOPPolicy(cfg)

	const blockSize = int64(64 << 20)
	worstRatio := 1.0
	for trial := 0; trial < 40; trial++ {
		s := paperCluster(3, 1) // 15 media: C(15,3) = 455 combinations
		// Randomise load and fill levels.
		for i := range s.Media {
			s.Media[i].Connections = rng.Intn(6)
			s.Media[i].Remaining = s.Media[i].Capacity / int64(1+rng.Intn(4))
		}
		for _, r := range []int{1, 2, 3} {
			optimal, ok := exhaustiveBest(s, blockSize, r)
			if !ok {
				continue
			}
			got, err := p.PlaceReplicas(PlacementRequest{
				Snapshot:  s,
				RepVector: core.ReplicationVectorFromFactor(r),
				BlockSize: blockSize,
			})
			if err != nil {
				t.Fatalf("trial %d r=%d: %v", trial, r, err)
			}
			greedy := Score(s, blockSize, got, AllObjectives(), NormL2)
			if r == 1 && greedy > optimal+1e-9 {
				t.Errorf("trial %d: r=1 greedy %.4f > optimal %.4f (must be exact)", trial, greedy, optimal)
			}
			if optimal > 1e-12 {
				if ratio := greedy / optimal; ratio > worstRatio {
					worstRatio = ratio
				}
			}
			// Near-optimality bound: greedy within 50% of the optimum
			// (empirically it is far closer; see the log line below).
			if greedy > optimal*1.5+1e-9 {
				t.Errorf("trial %d r=%d: greedy score %.4f vs optimal %.4f (ratio %.2f)",
					trial, r, greedy, optimal, greedy/optimal)
			}
		}
	}
	t.Logf("worst greedy/optimal score ratio over 40 randomized clusters: %.3f", worstRatio)
}

// TestGreedyExactForSingleReplica re-checks the r=1 exactness claim on
// the paper-shaped 9-worker cluster under random load.
func TestGreedyExactForSingleReplica(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	cfg := DefaultMOOPConfig()
	cfg.UseMemory = true
	cfg.ClientLocal = false
	p := NewMOOPPolicy(cfg)
	for trial := 0; trial < 20; trial++ {
		s := paperCluster(9, 3)
		for i := range s.Media {
			s.Media[i].Connections = rng.Intn(10)
			s.Media[i].Remaining = s.Media[i].Capacity / int64(1+rng.Intn(8))
		}
		optimal, _ := exhaustiveBest(s, 1<<20, 1)
		got, err := p.PlaceReplicas(PlacementRequest{
			Snapshot: s, RepVector: core.ReplicationVectorFromFactor(1), BlockSize: 1 << 20,
		})
		if err != nil {
			t.Fatal(err)
		}
		greedy := Score(s, 1<<20, got, AllObjectives(), NormL2)
		if greedy > optimal+1e-9 {
			t.Errorf("trial %d: r=1 greedy %.6f > optimal %.6f", trial, greedy, optimal)
		}
	}
}
