package policy_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/policy"
	"repro/internal/sim"
)

// ExampleMOOPPolicy places three replicas on the paper's 9-worker
// cluster: one pinned to each of the memory, SSD, and HDD tiers.
func ExampleMOOPPolicy() {
	cluster := sim.NewCluster(sim.PaperClusterConfig())
	p := policy.NewMOOPPolicy(policy.DefaultMOOPConfig())

	chosen, err := p.PlaceReplicas(policy.PlacementRequest{
		Snapshot:  cluster.Snapshot(),
		RepVector: core.NewReplicationVector(1, 1, 1, 0, 0),
		BlockSize: 128 << 20,
	})
	if err != nil {
		panic(err)
	}
	for _, m := range chosen {
		fmt.Println(m.Tier)
	}
	// Output:
	// MEMORY
	// SSD
	// HDD
}

// ExampleOctopusRetrievalPolicy orders replicas by expected transfer
// rate (paper Eq. 12): the memory replica is read first.
func ExampleOctopusRetrievalPolicy() {
	cluster := sim.NewCluster(sim.PaperClusterConfig())
	snap := cluster.Snapshot()
	mem, _ := snap.MediaByID("node1:mem0")
	hdd, _ := snap.MediaByID("node2:hdd0")
	ordered := policy.NewOctopusRetrievalPolicy().Order(policy.RetrievalRequest{
		Snapshot: snap,
		Replicas: []policy.Media{hdd, mem},
	})
	fmt.Println("read from:", ordered[0].Tier)
	// Output:
	// read from: MEMORY
}
