package policy

import (
	"math"
	"testing"
)

const floatTol = 1e-9

func almostEqual(a, b float64) bool { return math.Abs(a-b) < floatTol }

func TestDataBalancingObjective(t *testing.T) {
	s := paperCluster(3, 1)
	block := int64(128 << 20)
	m1 := *findMedia(s, "node1:hdd0")
	m2 := *findMedia(s, "node2:ssd0")

	got := ObjectiveVector(s, block, []Media{m1, m2})[DataBalancing]
	want := float64(m1.Remaining-block)/float64(m1.Capacity) +
		float64(m2.Remaining-block)/float64(m2.Capacity)
	if !almostEqual(got, want) {
		t.Errorf("fdb = %v, want %v", got, want)
	}

	// Ideal (Eq. 2): |m| * max Rem/Cap. Fresh cluster => max percent 1.
	ideal := IdealVector(s, block, 2)[DataBalancing]
	if !almostEqual(ideal, 2.0) {
		t.Errorf("fdb* = %v, want 2", ideal)
	}
}

func TestDataBalancingPrefersEmptierMedia(t *testing.T) {
	s := paperCluster(2, 1)
	full := findMedia(s, "node1:hdd0")
	full.Remaining = full.Capacity / 10 // 10% left
	block := int64(1 << 20)

	emptier := *findMedia(s, "node2:hdd0")
	fuller := *findMedia(s, "node1:hdd0")
	fEmptier := ObjectiveVector(s, block, []Media{emptier})[DataBalancing]
	fFuller := ObjectiveVector(s, block, []Media{fuller})[DataBalancing]
	if fEmptier <= fFuller {
		t.Errorf("fdb(emptier)=%v <= fdb(fuller)=%v; want emptier to score higher", fEmptier, fFuller)
	}
}

func TestLoadBalancingObjective(t *testing.T) {
	s := paperCluster(2, 1)
	busy := findMedia(s, "node1:hdd0")
	busy.Connections = 4
	idle := *findMedia(s, "node2:hdd0")

	got := ObjectiveVector(s, 1, []Media{*busy, idle})[LoadBalancing]
	want := 1.0/5.0 + 1.0
	if !almostEqual(got, want) {
		t.Errorf("flb = %v, want %v", got, want)
	}

	// Ideal (Eq. 4): |m| / (minConn+1); min connections is 0 here.
	if ideal := IdealVector(s, 1, 2)[LoadBalancing]; !almostEqual(ideal, 2.0) {
		t.Errorf("flb* = %v, want 2", ideal)
	}
}

func TestFaultToleranceObjective(t *testing.T) {
	s := paperCluster(9, 3) // k=3 tiers, n=9 nodes, t=3 racks

	// Three replicas on different tiers, nodes, and exactly 2 racks:
	// each term maximal => fft = 3 (the ideal of Eq. 6).
	spread := []Media{
		*findMedia(s, "node1:mem0"), // rack1
		*findMedia(s, "node2:ssd0"), // rack2
		*findMedia(s, "node5:hdd0"), // rack2
	}
	if got := ObjectiveVector(s, 1, spread)[FaultTolerance]; !almostEqual(got, 3) {
		t.Errorf("fft(spread) = %v, want 3", got)
	}

	// Same tier, same node: tiers=1/3, nodes=1/3, racks=1 => 1/(|1-2|+1)=1/2.
	clumped := []Media{
		*findMedia(s, "node1:hdd0"),
		*findMedia(s, "node1:hdd1"),
		*findMedia(s, "node1:hdd2"),
	}
	want := 1.0/3.0 + 1.0/3.0 + 0.5
	if got := ObjectiveVector(s, 1, clumped)[FaultTolerance]; !almostEqual(got, want) {
		t.Errorf("fft(clumped) = %v, want %v", got, want)
	}

	// Three racks: |3-2|+1 = 2 => rack term 0.5 (penalises >2 racks).
	threeRacks := []Media{
		*findMedia(s, "node1:hdd0"), // rack1
		*findMedia(s, "node2:hdd0"), // rack2
		*findMedia(s, "node3:hdd0"), // rack3
	}
	want = 1.0/3.0 + 3.0/3.0 + 0.5
	if got := ObjectiveVector(s, 1, threeRacks)[FaultTolerance]; !almostEqual(got, want) {
		t.Errorf("fft(threeRacks) = %v, want %v", got, want)
	}

	if ideal := IdealVector(s, 1, 3)[FaultTolerance]; !almostEqual(ideal, 3) {
		t.Errorf("fft* = %v, want 3", ideal)
	}
}

func TestFaultToleranceSingleRackClusterScoresRackTermOne(t *testing.T) {
	s := paperCluster(3, 1)
	sel := []Media{*findMedia(s, "node1:hdd0"), *findMedia(s, "node2:hdd0")}
	// tiers=1/min(2,3), nodes=2/min(2,3), rack term = 1 since t=1.
	want := 0.5 + 1.0 + 1.0
	if got := ObjectiveVector(s, 1, sel)[FaultTolerance]; !almostEqual(got, want) {
		t.Errorf("fft(single rack) = %v, want %v", got, want)
	}
}

func TestThroughputObjective(t *testing.T) {
	s := paperCluster(2, 1)
	mem := *findMedia(s, "node1:mem0")
	hdd := *findMedia(s, "node2:hdd0")

	got := ObjectiveVector(s, 1, []Media{mem, hdd})[ThroughputMax]
	logMax := math.Log(memWrite)
	want := math.Log(memWrite)/logMax + math.Log(hddWrite)/logMax
	if !almostEqual(got, want) {
		t.Errorf("ftm = %v, want %v", got, want)
	}

	// Ideal (Eq. 8): |m|.
	if ideal := IdealVector(s, 1, 2)[ThroughputMax]; !almostEqual(ideal, 2) {
		t.Errorf("ftm* = %v, want 2", ideal)
	}
	// Memory media achieve the per-replica maximum of 1.
	single := ObjectiveVector(s, 1, []Media{mem})[ThroughputMax]
	if !almostEqual(single, 1) {
		t.Errorf("ftm(mem) = %v, want 1", single)
	}
}

func TestThroughputObjectiveClampsSlowMedia(t *testing.T) {
	s := paperCluster(1, 1)
	slow := *findMedia(s, "node1:hdd0")
	slow.WriteThruMBps = 0.25 // would be log-negative without clamping
	got := ObjectiveVector(s, 1, []Media{slow})[ThroughputMax]
	if got != 0 {
		t.Errorf("ftm(0.25MB/s media) = %v, want 0 (clamped)", got)
	}
	if math.IsInf(got, 0) || math.IsNaN(got) {
		t.Errorf("ftm produced non-finite value %v", got)
	}
}

func TestScoreIsZeroForIdealSelection(t *testing.T) {
	// Construct a selection that attains every ideal: fresh cluster
	// (all media same Rem% = 1, conns = 0), memory media on distinct
	// nodes/tiers... A single memory replica attains all four ideals.
	s := paperCluster(3, 1)
	mem := []Media{*findMedia(s, "node1:mem0")}
	got := Score(s, 0, mem, AllObjectives(), NormL2)
	// fdb: Rem% = 1 = ideal (block size 0); flb: 1 = ideal;
	// fft: 1/1 + 1/1 + 1 = 3 = ideal; ftm: 1 = ideal.
	if !almostEqual(got, 0) {
		t.Errorf("Score(ideal single memory replica) = %v, want 0", got)
	}
}

func TestScoreNorms(t *testing.T) {
	s := paperCluster(3, 1)
	sel := []Media{*findMedia(s, "node1:hdd0")}
	l2 := Score(s, 0, sel, AllObjectives(), NormL2)
	l1 := Score(s, 0, sel, AllObjectives(), NormL1)
	if l2 <= 0 || l1 <= 0 {
		t.Fatalf("scores must be positive for a non-ideal selection: l2=%v l1=%v", l2, l1)
	}
	if l1 < l2 {
		t.Errorf("L1 norm %v < L2 norm %v; expected L1 >= L2", l1, l2)
	}
}

func TestObjectiveString(t *testing.T) {
	names := map[Objective]string{
		DataBalancing: "DB", LoadBalancing: "LB",
		FaultTolerance: "FT", ThroughputMax: "TM",
	}
	for o, want := range names {
		if got := o.String(); got != want {
			t.Errorf("Objective(%d).String() = %q, want %q", o, got, want)
		}
	}
	if got := Objective(99).String(); got != "OBJ(?)" {
		t.Errorf("unknown objective String() = %q", got)
	}
}

func TestSnapshotDerivedStats(t *testing.T) {
	s := paperCluster(9, 3)
	if got := s.NumTiers(); got != 3 {
		t.Errorf("NumTiers() = %d, want 3", got)
	}
	if got := s.NumWorkers(); got != 9 {
		t.Errorf("NumWorkers() = %d, want 9", got)
	}
	if got := s.MaxWriteThru(); !almostEqual(got, memWrite) {
		t.Errorf("MaxWriteThru() = %v, want %v", got, memWrite)
	}
	if got := s.MinConnections(); got != 0 {
		t.Errorf("MinConnections() = %d, want 0", got)
	}
	findMedia(s, "node1:hdd0").Connections = 7
	if got := s.MinConnections(); got != 0 {
		t.Errorf("MinConnections() after one busy media = %d, want 0", got)
	}
	if got := s.MaxRemainingPercent(); !almostEqual(got, 1) {
		t.Errorf("MaxRemainingPercent() = %v, want 1", got)
	}
	if _, ok := s.MediaByID("node1:ssd0"); !ok {
		t.Error("MediaByID(node1:ssd0) not found")
	}
	if _, ok := s.MediaByID("nope"); ok {
		t.Error("MediaByID(nope) unexpectedly found")
	}
}

func TestMediaRemainingPercent(t *testing.T) {
	if got := (Media{Capacity: 0, Remaining: 5}).RemainingPercent(); got != 0 {
		t.Errorf("zero-capacity RemainingPercent() = %v, want 0", got)
	}
	if got := (Media{Capacity: 100, Remaining: 25}).RemainingPercent(); !almostEqual(got, 0.25) {
		t.Errorf("RemainingPercent() = %v, want 0.25", got)
	}
}
