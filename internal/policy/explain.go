package policy

import (
	"fmt"
	"math"

	"repro/internal/core"
)

// This file adds placement explainability: the MOOP policy can report,
// for every replica it places, the full per-objective score vector of
// every candidate it considered — not just the winning media and its
// scalarised score. The master journals and stores these decisions so
// "why is this replica on that worker/tier?" (paper §3.2–§3.3,
// Algorithms 1–2) is answerable after the fact, which the follow-up
// automation work (arXiv:1907.02394) identifies as the prerequisite
// for smarter tier management.

// MaxExplainedCandidates caps how many candidates a ReplicaDecision
// retains (winner first). Clusters have O(media) candidates per
// replica; keeping the top few loses nothing an operator acts on.
const MaxExplainedCandidates = 8

// CandidateScore records how one candidate media scored in a MOOP
// instance (Algorithm 1): the full four-objective f-vector of the
// trial selection (chosen ∪ candidate) and the Eq. 11 scalarised
// distance from the ideal vector that ranked it.
type CandidateScore struct {
	Media Media

	// Score is the Eq. 11 global-criterion distance over the policy's
	// configured objective set; lower is better.
	Score float64

	// Objectives is the trial selection's f-vector in (DB, LB, FT, TM)
	// order — Eq. 9 evaluated with this candidate added.
	Objectives [4]float64

	// Chosen marks the winning candidate.
	Chosen bool
}

// ReplicaDecision explains one replica's placement: the requested
// tier entry, the ideal vector z* the trial selections were measured
// against, and the scored candidates with the winner first.
type ReplicaDecision struct {
	// Entry is the replication-vector entry being satisfied
	// (core.TierUnspecified for an "any tier" replica).
	Entry core.StorageTier

	// Ideal is the Eq. 10 ideal vector z* for the trial size, in
	// (DB, LB, FT, TM) order.
	Ideal [4]float64

	// Candidates holds the winner at index 0, then the remaining
	// candidates by ascending (better-first) score, capped at
	// MaxExplainedCandidates.
	Candidates []CandidateScore

	// Considered is the total number of feasible candidates evaluated,
	// including any beyond the retention cap.
	Considered int
}

// ExplainingPolicy is implemented by placement policies that can
// report the per-objective breakdown of their decisions. The master
// uses it when present; policies without it (the HDFS and rule-based
// baselines) simply produce no explanations.
type ExplainingPolicy interface {
	PlacementPolicy

	// PlaceReplicasExplained behaves exactly like PlaceReplicas —
	// identical winners, identical errors — and additionally returns
	// one ReplicaDecision per placed replica.
	PlaceReplicasExplained(req PlacementRequest) ([]Media, []ReplicaDecision, error)
}

// PlaceReplicasExplained implements ExplainingPolicy.
func (p *MOOPPolicy) PlaceReplicasExplained(req PlacementRequest) ([]Media, []ReplicaDecision, error) {
	return p.placeReplicas(req, true)
}

// solveMOOPExplained is Algorithm 1 with full bookkeeping: it selects
// the same winner as solveMOOP (first-in-order wins ties) while
// recording every candidate's four-objective vector and score.
func solveMOOPExplained(ctx evalContext, options, chosen []Media,
	objectives []Objective, norm Norm) (Media, float64, ReplicaDecision, bool) {

	if len(options) == 0 {
		return Media{}, 0, ReplicaDecision{}, false
	}
	trial := make([]Media, len(chosen)+1)
	copy(trial, chosen)
	n := len(trial)
	ideal := [4]float64{
		ctx.idealDataBalancing(n),
		ctx.idealLoadBalancing(n),
		ctx.idealFaultTolerance(n),
		ctx.idealThroughputMax(n),
	}
	scored := make([]CandidateScore, len(options))
	bestScore := 0.0
	bestIdx := -1
	for i, opt := range options {
		trial[len(chosen)] = opt
		fvec := [4]float64{
			ctx.fDataBalancing(trial),
			ctx.fLoadBalancing(trial),
			ctx.fFaultTolerance(trial),
			ctx.fThroughputMax(trial),
		}
		score := scoreFromVectors(fvec, ideal, objectives, norm)
		scored[i] = CandidateScore{Media: opt, Score: score, Objectives: fvec}
		if bestIdx < 0 || score < bestScore {
			bestScore, bestIdx = score, i
		}
	}
	scored[bestIdx].Chosen = true
	dec := ReplicaDecision{Ideal: ideal, Considered: len(options)}
	dec.Candidates = rankCandidates(scored, bestIdx)
	return options[bestIdx], bestScore, dec, true
}

// rankCandidates orders the scored candidates winner-first, then by
// ascending score (ties keep option order, mirroring the solver's
// first-wins tie-break), capped at MaxExplainedCandidates.
func rankCandidates(scored []CandidateScore, bestIdx int) []CandidateScore {
	out := make([]CandidateScore, 0, len(scored))
	out = append(out, scored[bestIdx])
	rest := make([]CandidateScore, 0, len(scored)-1)
	rest = append(rest, scored[:bestIdx]...)
	rest = append(rest, scored[bestIdx+1:]...)
	// Insertion sort keeps equal-score candidates in option order;
	// candidate lists are small (pruned media sets).
	for i := 1; i < len(rest); i++ {
		for k := i; k > 0 && rest[k].Score < rest[k-1].Score; k-- {
			rest[k], rest[k-1] = rest[k-1], rest[k]
		}
	}
	out = append(out, rest...)
	if len(out) > MaxExplainedCandidates {
		out = out[:MaxExplainedCandidates]
	}
	return out
}

// scoreFromVectors computes the Eq. 11 distance from precomputed f and
// ideal vectors over the configured objective subset. It iterates the
// objectives in the same order as evalContext.score, so the result is
// bit-identical to the unexplained solver's score.
func scoreFromVectors(fvec, ideal [4]float64, objectives []Objective, norm Norm) float64 {
	total := 0.0
	for _, o := range objectives {
		if int(o) < 0 || int(o) >= int(numObjectives) {
			continue
		}
		d := fvec[o] - ideal[o]
		switch norm {
		case NormL1:
			total += math.Abs(d)
		default:
			total += d * d
		}
	}
	if norm == NormL1 {
		return total
	}
	return math.Sqrt(total)
}

// ObjectiveNames returns the display names of the four objectives in
// vector order — the column headers for explain output.
func ObjectiveNames() [4]string {
	return [4]string{
		objectiveNames[DataBalancing],
		objectiveNames[LoadBalancing],
		objectiveNames[FaultTolerance],
		objectiveNames[ThroughputMax],
	}
}

// FormatVector renders a four-objective vector compactly, e.g.
// "DB=1.92 LB=0.75 FT=2.33 TM=1.80".
func FormatVector(v [4]float64) string {
	names := ObjectiveNames()
	return fmt.Sprintf("%s=%.3f %s=%.3f %s=%.3f %s=%.3f",
		names[0], v[0], names[1], v[1], names[2], v[2], names[3], v[3])
}
