package policy

import (
	"math"
	"math/rand"
	"sort"

	"repro/internal/topology"
)

// RetrievalRequest carries everything a retrieval policy needs to
// order the replica locations of one block for a reader.
type RetrievalRequest struct {
	// Snapshot supplies the worker network statistics consulted by
	// the rate estimate; the per-media statistics travel inside
	// Replicas.
	Snapshot *Snapshot

	// Client is the reader's network location. Client.Node is empty
	// when the reader runs off-cluster.
	Client topology.Location

	// Replicas are the block's current replica locations, in any order.
	Replicas []Media

	// Rand shuffles fully tied locations to spread load (paper §4.2).
	// Nil keeps ties in stable ID order.
	Rand *rand.Rand
}

// RetrievalPolicy orders a block's replica locations for a reader
// (paper §4: "pluggable data retrieval policy"). The client reads from
// the first location and fails over down the list.
type RetrievalPolicy interface {
	// Name identifies the policy in reports and benchmarks.
	Name() string

	// Order returns the replicas sorted best-first.
	Order(req RetrievalRequest) []Media
}

// OctopusRetrievalPolicy is the default OctopusFS data retrieval
// policy (paper §4.2). For every replica it estimates the achievable
// transfer rate as
//
//	min( NetThru[W]/NrConn[W], RThru[m]/NrConn[m] )   (Eq. 12)
//
// — the bottleneck of the worker's network share and the media's I/O
// share — skipping the network term for node-local reads. Locations
// are sorted by decreasing rate; network-bottlenecked ties are broken
// by media read throughput, and exact ties are shuffled randomly.
type OctopusRetrievalPolicy struct{}

// NewOctopusRetrievalPolicy returns the default retrieval policy.
func NewOctopusRetrievalPolicy() *OctopusRetrievalPolicy {
	return &OctopusRetrievalPolicy{}
}

// Name implements RetrievalPolicy.
func (p *OctopusRetrievalPolicy) Name() string { return "OctopusFS" }

// rated pairs a replica with its estimated transfer rate.
type rated struct {
	m          Media
	rate       float64
	mediaRate  float64
	netLimited bool
}

// Order implements RetrievalPolicy using the Eq. 12 rate estimate.
func (p *OctopusRetrievalPolicy) Order(req RetrievalRequest) []Media {
	rs := make([]rated, len(req.Replicas))
	for i, m := range req.Replicas {
		rs[i] = p.rate(req, m)
	}
	// Pre-shuffle so that fully tied entries end up in random order
	// after the stable sort (paper: "shuffled randomly to help spread
	// the load more evenly").
	if req.Rand != nil {
		req.Rand.Shuffle(len(rs), func(i, j int) { rs[i], rs[j] = rs[j], rs[i] })
	} else {
		sort.SliceStable(rs, func(i, j int) bool { return rs[i].m.ID < rs[j].m.ID })
	}
	sort.SliceStable(rs, func(i, j int) bool {
		a, b := rs[i], rs[j]
		if a.rate != b.rate {
			return a.rate > b.rate
		}
		// Same estimated rate with the network as the bottleneck:
		// prefer the faster media (paper §4.2).
		if a.netLimited && b.netLimited && a.mediaRate != b.mediaRate {
			return a.mediaRate > b.mediaRate
		}
		return false
	})
	out := make([]Media, len(rs))
	for i, r := range rs {
		out[i] = r.m
	}
	return out
}

// rate computes the Eq. 12 estimate for one replica.
func (p *OctopusRetrievalPolicy) rate(req RetrievalRequest, m Media) rated {
	mediaRate := m.ReadThruMBps / float64(max(1, m.Connections))
	netRate := math.Inf(1)
	if req.Client.Node == "" || req.Client.Node != m.Node {
		// Remote read: the worker's NIC share applies.
		if w, ok := req.Snapshot.Workers[m.Worker]; ok && w.NetThruMBps > 0 {
			netRate = w.NetThruMBps / float64(max(1, w.Connections))
		}
	}
	r := rated{m: m, mediaRate: mediaRate}
	if netRate < mediaRate {
		r.rate, r.netLimited = netRate, true
	} else {
		r.rate = mediaRate
	}
	return r
}

// HDFSRetrievalPolicy reimplements the original HDFS replica ordering
// used as the baseline in paper §7.3: it sorts purely by network
// distance to the reader (local node, then local rack, then off-rack)
// and is oblivious to storage tiers and load.
type HDFSRetrievalPolicy struct{}

// NewHDFSRetrievalPolicy returns the locality-only baseline policy.
func NewHDFSRetrievalPolicy() *HDFSRetrievalPolicy {
	return &HDFSRetrievalPolicy{}
}

// Name implements RetrievalPolicy.
func (p *HDFSRetrievalPolicy) Name() string { return "HDFS" }

// Order implements RetrievalPolicy by increasing topology distance,
// shuffling replicas within the same distance group.
func (p *HDFSRetrievalPolicy) Order(req RetrievalRequest) []Media {
	out := append([]Media(nil), req.Replicas...)
	if req.Rand != nil {
		req.Rand.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	} else {
		SortMediaStable(out)
	}
	dist := func(m Media) int {
		if req.Client.Node == "" {
			return topology.DistanceOffRack
		}
		return topology.Distance(req.Client,
			topology.Location{Rack: m.Rack, Node: m.Node})
	}
	sort.SliceStable(out, func(i, j int) bool { return dist(out[i]) < dist(out[j]) })
	return out
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
