package policy

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/topology"
)

// PlacementRequest carries everything a placement policy needs to
// select storage media for the replicas of one block.
type PlacementRequest struct {
	// Snapshot is the cluster state the decision is made against.
	Snapshot *Snapshot

	// Client is the writer's network location. Client.Node is empty
	// when the writer runs off-cluster.
	Client topology.Location

	// RepVector lists the replicas still to be placed: pinned-tier
	// entries plus unspecified entries (paper §2.3). For initial block
	// allocation this is the file's replication vector; for
	// re-replication it holds only the missing replicas.
	RepVector core.ReplicationVector

	// BlockSize is the number of bytes each selected media must be
	// able to hold (the feasibility constraint of §3.2).
	BlockSize int64

	// Existing lists media already hosting replicas of the block.
	// Empty for initial placement; populated for re-replication
	// (paper §5), where new replicas are chosen taking the surviving
	// ones into account.
	Existing []Media

	// Rand provides the randomness used for tie-breaking and random
	// node selection. A nil Rand makes the policy fully deterministic.
	Rand *rand.Rand
}

// PlacementPolicy selects the storage media that will host a block's
// replicas (paper §3.3: "pluggable block placement policy").
type PlacementPolicy interface {
	// Name identifies the policy in reports and benchmarks.
	Name() string

	// PlaceReplicas returns one media per requested replica, in
	// pipeline order. It returns the media it could place even when
	// fewer than requested fit (alongside ErrNoSpace) so callers can
	// proceed with degraded replication like HDFS does.
	PlaceReplicas(req PlacementRequest) ([]Media, error)
}

// MOOPConfig tunes the MOOP placement policy. The zero value is not
// usable; call DefaultMOOPConfig.
type MOOPConfig struct {
	// Objectives is the objective set optimised by the policy. The
	// full MOOP uses all four; the paper's single-objective evaluation
	// policies use exactly one.
	Objectives []Objective

	// Norm selects the Eq. 11 scalarisation norm (default Euclidean).
	Norm Norm

	// UseMemory permits placing *unspecified* replicas on the
	// volatile memory tier. Disabled by default (paper §3.3); replicas
	// explicitly pinned to memory by the replication vector are always
	// honoured.
	UseMemory bool

	// MaxMemoryFraction caps the fraction of a block's replicas the
	// policy may put in memory (paper §3.3: "it will not place more
	// than 1/3 of the replicas in memory").
	MaxMemoryFraction float64

	// RackPruning enables the two-rack search-space heuristic of
	// §3.3: after the first replica, prune the first replica's rack;
	// after the second, restrict to the two racks already used.
	RackPruning bool

	// ClientLocal makes the policy consider only the writer's own
	// media for the first replica when the writer is collocated with a
	// worker (§3.3: "it is best to consider storing the first replica
	// on that Worker").
	ClientLocal bool
}

// DefaultMOOPConfig returns the paper-default configuration: all four
// objectives, Euclidean norm, memory disabled for unspecified
// replicas, 1/3 memory cap, rack pruning and client collocation on.
func DefaultMOOPConfig() MOOPConfig {
	return MOOPConfig{
		Objectives:        AllObjectives(),
		Norm:              NormL2,
		UseMemory:         false,
		MaxMemoryFraction: 1.0 / 3.0,
		RackPruning:       true,
		ClientLocal:       true,
	}
}

// MOOPPolicy is the default OctopusFS block placement policy (paper
// §3.3). It greedily solves the multi-objective optimization problem
// of Eq. 11 one replica at a time.
type MOOPPolicy struct {
	cfg     MOOPConfig
	name    string
	scoreFn func(tier core.StorageTier, score float64)
}

// ScoreReporter is implemented by placement policies that can report
// the objective score of each decision, letting the master export
// MOOP scores as metrics without the policy depending on them.
type ScoreReporter interface {
	// SetScoreFunc installs fn to receive the winning candidate's tier
	// and Eq. 11 scalarised score after each replica decision. Call it
	// before the policy starts serving requests; it is not synchronised
	// against concurrent PlaceReplicas calls.
	SetScoreFunc(fn func(tier core.StorageTier, score float64))
}

// SetScoreFunc implements ScoreReporter.
func (p *MOOPPolicy) SetScoreFunc(fn func(tier core.StorageTier, score float64)) {
	p.scoreFn = fn
}

// NewMOOPPolicy builds a MOOP policy with the given configuration.
func NewMOOPPolicy(cfg MOOPConfig) *MOOPPolicy {
	if len(cfg.Objectives) == 0 {
		cfg.Objectives = AllObjectives()
	}
	if cfg.MaxMemoryFraction <= 0 {
		cfg.MaxMemoryFraction = 1.0 / 3.0
	}
	name := "MOOP"
	if len(cfg.Objectives) == 1 {
		name = cfg.Objectives[0].String()
	}
	return &MOOPPolicy{cfg: cfg, name: name}
}

// NewSingleObjectivePolicy builds one of the paper's §7.2 evaluation
// policies that optimises a single objective (DB, LB, FT, or TM).
// Memory use is enabled, mirroring the paper's note that memory was
// enabled for fairness in those experiments.
func NewSingleObjectivePolicy(o Objective) *MOOPPolicy {
	cfg := DefaultMOOPConfig()
	cfg.Objectives = []Objective{o}
	cfg.UseMemory = true
	return NewMOOPPolicy(cfg)
}

// Name implements PlacementPolicy.
func (p *MOOPPolicy) Name() string { return p.name }

// Config returns the policy's configuration (for reports and tests).
func (p *MOOPPolicy) Config() MOOPConfig { return p.cfg }

// PlaceReplicas implements Algorithm 2: it iterates over the
// replication-vector entries, generating the pruned option list for
// each entry and solving the MOOP instance (Algorithm 1) to pick the
// best media, accumulating choices as it goes.
func (p *MOOPPolicy) PlaceReplicas(req PlacementRequest) ([]Media, error) {
	placed, _, err := p.placeReplicas(req, false)
	return placed, err
}

// placeReplicas is the shared Algorithm 2 loop. With explain=true it
// additionally records one ReplicaDecision per placed replica; the
// winners and errors are identical either way.
func (p *MOOPPolicy) placeReplicas(req PlacementRequest, explain bool) ([]Media, []ReplicaDecision, error) {
	if req.Snapshot == nil || len(req.Snapshot.Media) == 0 {
		return nil, nil, core.ErrNoWorkers
	}
	entries := req.RepVector.PinnedTiers()
	if len(entries) == 0 {
		return nil, nil, fmt.Errorf("policy: empty replication vector: %w", core.ErrNoSpace)
	}
	ctx := newEvalContext(req.Snapshot, req.BlockSize)

	// chosen accumulates existing replicas plus this call's picks so
	// every SolveMoop instance sees the full prospective replica set;
	// placed collects only the new picks we return.
	chosen := make([]Media, 0, len(req.Existing)+len(entries))
	chosen = append(chosen, req.Existing...)
	placed := make([]Media, 0, len(entries))
	var decisions []ReplicaDecision
	if explain {
		decisions = make([]ReplicaDecision, 0, len(entries))
	}

	memoryBudget := p.memoryBudget(req)
	for _, m := range chosen {
		if m.Tier == core.TierMemory {
			memoryBudget--
		}
	}

	for _, entry := range entries {
		options := p.genOptions(req, chosen, entry, len(placed), &memoryBudget)
		var best Media
		var score float64
		var ok bool
		if explain {
			var dec ReplicaDecision
			best, score, dec, ok = solveMOOPExplained(ctx, options, chosen, p.cfg.Objectives, p.cfg.Norm)
			if ok {
				dec.Entry = entry
				decisions = append(decisions, dec)
			}
		} else {
			best, score, ok = solveMOOP(ctx, options, chosen, p.cfg.Objectives, p.cfg.Norm)
		}
		if !ok {
			if len(placed) == 0 {
				return nil, nil, fmt.Errorf("policy: no feasible media for %s entry of %s: %w",
					entry, req.RepVector, core.ErrNoSpace)
			}
			return placed, decisions, fmt.Errorf("policy: placed %d of %d replicas: %w",
				len(placed), len(entries), core.ErrNoSpace)
		}
		if best.Tier == core.TierMemory {
			memoryBudget--
		}
		if p.scoreFn != nil {
			p.scoreFn(best.Tier, score)
		}
		chosen = append(chosen, best)
		placed = append(placed, best)
	}
	return placed, decisions, nil
}

// memoryBudget computes how many of the request's replicas may sit on
// the memory tier: every explicitly pinned memory replica, plus up to
// MaxMemoryFraction of the total for unspecified entries when
// UseMemory is enabled.
func (p *MOOPPolicy) memoryBudget(req PlacementRequest) int {
	total := req.RepVector.Total() + len(req.Existing)
	pinned := req.RepVector.Memory()
	if !p.cfg.UseMemory {
		return pinned
	}
	frac := int(p.cfg.MaxMemoryFraction * float64(total))
	if frac < pinned {
		frac = pinned
	}
	return frac
}

// genOptions implements the GenOptions step of Algorithm 2: it filters
// the cluster's media down to the feasible, heuristically pruned
// candidate set for the next replica.
func (p *MOOPPolicy) genOptions(req PlacementRequest, chosen []Media,
	entry core.StorageTier, placedSoFar int, memoryBudget *int) []Media {

	s := req.Snapshot
	usedRacks := make(map[string]struct{}, len(chosen))
	usedIDs := make(map[core.StorageID]struct{}, len(chosen))
	var firstRack string
	for i, m := range chosen {
		usedIDs[m.ID] = struct{}{}
		usedRacks[m.Rack] = struct{}{}
		if i == 0 {
			firstRack = m.Rack
		}
	}

	keep := func(m Media) bool {
		if _, dup := usedIDs[m.ID]; dup {
			return false // constraint: media are unique per block
		}
		if m.Remaining-req.BlockSize < 0 {
			return false // constraint: Rem − blockSize ≥ 0
		}
		if entry != core.TierUnspecified && m.Tier != entry {
			return false // tier pinned by the replication vector
		}
		if entry == core.TierUnspecified && m.Tier == core.TierMemory && *memoryBudget <= 0 {
			return false // volatile-tier cap (§3.3)
		}
		if p.cfg.RackPruning && s.NumRacks > 1 {
			switch len(usedRacks) {
			case 1:
				// One rack used so far: force the next replica off it
				// (unless it holds the only feasible media — handled
				// by the fallback below).
				if m.Rack == firstRack {
					return false
				}
			default:
				if len(usedRacks) >= 2 {
					// Two racks used: restrict to those racks.
					if _, ok := usedRacks[m.Rack]; !ok {
						return false
					}
				}
			}
		}
		return true
	}

	var options []Media
	// Client collocation: for the very first replica of a fresh block,
	// prefer the writer's own worker (§3.3).
	if p.cfg.ClientLocal && placedSoFar == 0 && len(chosen) == 0 && req.Client.Node != "" {
		for _, m := range s.Media {
			if m.Node == req.Client.Node && keep(m) {
				options = append(options, m)
			}
		}
	}
	if len(options) == 0 {
		for _, m := range s.Media {
			if keep(m) {
				options = append(options, m)
			}
		}
	}
	// Rack-pruning fallback: if the heuristics emptied the candidate
	// set (e.g. all spare capacity sits on the first rack), retry with
	// pruning relaxed rather than failing the write.
	if len(options) == 0 && p.cfg.RackPruning {
		relaxed := *p
		relaxed.cfg.RackPruning = false
		return relaxed.genOptions(req, chosen, entry, placedSoFar, memoryBudget)
	}
	SortMediaStable(options)
	shuffleMedia(options, req.Rand)
	return options
}

// solveMOOP implements Algorithm 1: evaluate every candidate appended
// to the chosen list, score the result against the ideal vector, and
// return the candidate with the lowest score alongside that score.
// The first candidate in option order wins ties, so upstream shuffling
// spreads tied load.
func solveMOOP(ctx evalContext, options, chosen []Media,
	objectives []Objective, norm Norm) (Media, float64, bool) {

	if len(options) == 0 {
		return Media{}, 0, false
	}
	trial := make([]Media, len(chosen)+1)
	copy(trial, chosen)
	bestScore := 0.0
	bestIdx := -1
	for i, opt := range options {
		trial[len(chosen)] = opt
		score := ctx.score(trial, objectives, norm)
		if bestIdx < 0 || score < bestScore {
			bestScore, bestIdx = score, i
		}
	}
	return options[bestIdx], bestScore, true
}

// SolveMOOP exposes Algorithm 1 for replication management (paper §5)
// and tests: given a snapshot, the candidate options, and the already
// chosen media, it returns the best media to add.
func SolveMOOP(s *Snapshot, blockSize int64, options, chosen []Media) (Media, bool) {
	best, _, ok := solveMOOP(newEvalContext(s, blockSize), options, chosen, AllObjectives(), NormL2)
	return best, ok
}

// SelectExcessReplica implements the over-replication decision of
// paper §5: given the current replica locations of a block, it
// generates the r leave-one-out sublists, scores each with Eq. 11,
// and returns the index of the replica whose removal leaves the
// lowest-scoring (best) remaining set. Candidates may be restricted to
// a tier by passing a concrete tier; TierUnspecified considers all.
func SelectExcessReplica(s *Snapshot, blockSize int64, replicas []Media, tier core.StorageTier) (int, bool) {
	if len(replicas) == 0 {
		return 0, false
	}
	ctx := newEvalContext(s, blockSize)
	bestIdx := -1
	bestScore := 0.0
	rest := make([]Media, 0, len(replicas)-1)
	for i, r := range replicas {
		if tier != core.TierUnspecified && r.Tier != tier {
			continue
		}
		rest = rest[:0]
		rest = append(rest, replicas[:i]...)
		rest = append(rest, replicas[i+1:]...)
		score := ctx.score(rest, AllObjectives(), NormL2)
		if bestIdx < 0 || score < bestScore {
			bestScore, bestIdx = score, i
		}
	}
	if bestIdx < 0 {
		return 0, false
	}
	return bestIdx, true
}
