package workloads

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/sim"
)

// JobSpec is one framework job (a MapReduce job or a Spark stage
// boundary): read a dataset from the file system, compute, write a
// dataset back.
type JobSpec struct {
	Name string

	// ReadPath is the dataset to read ("" skips the read phase, e.g.
	// a Spark stage consuming cached RDDs).
	ReadPath string

	// ComputeSecPerTask models the CPU part of each task.
	ComputeSecPerTask float64

	// WritePath / WriteMB / WriteRV describe the output dataset (""
	// skips the write phase, e.g. Spark keeping an RDD in memory).
	WritePath string
	WriteMB   int64
	WriteRV   core.ReplicationVector

	// FallbackRV, when non-zero, replaces WriteRV for a block whose
	// pinned-tier placement fails (e.g. the memory tier filled up) —
	// the application-level fallback Pegasus uses for its in-memory
	// intermediate data.
	FallbackRV core.ReplicationVector

	// OverheadSec models fixed framework overhead (job setup, task
	// scheduling) that is independent of the file system under test.
	OverheadSec float64
}

// RunJob executes one job with the given task parallelism on the
// simulated cluster and returns its makespan in seconds. Tasks are
// spread round-robin over the nodes; each task reads its share of the
// input blocks through the retrieval policy, runs its compute delay,
// and writes its share of the output through the placement policy.
func RunJob(c *sim.Cluster, job JobSpec, tasks int, blockMB int64) (float64, error) {
	if tasks <= 0 {
		return 0, fmt.Errorf("workloads: job %s: tasks must be positive", job.Name)
	}
	e := c.Engine
	start := e.Now()
	var taskErr error
	if job.OverheadSec > 0 {
		e.StartDelay(job.Name+":overhead", job.OverheadSec, nil)
	}

	// Partition the input blocks across tasks.
	var inputBlocks []sim.BlockSim
	if job.ReadPath != "" {
		f, ok := c.File(job.ReadPath)
		if !ok {
			return 0, fmt.Errorf("workloads: job %s: input %s missing: %w", job.Name, job.ReadPath, core.ErrNotFound)
		}
		inputBlocks = f.Blocks
	}
	writeBlocks := int(job.WriteMB / blockMB)
	if job.WriteMB > 0 && writeBlocks == 0 {
		writeBlocks = 1
	}

	for t := 0; t < tasks; t++ {
		node := c.Node(t)
		taskID := t

		// The task's slice of input blocks and output block count.
		var myBlocks []sim.BlockSim
		for i := taskID; i < len(inputBlocks); i += tasks {
			myBlocks = append(myBlocks, inputBlocks[i])
		}
		myWrites := writeBlocks / tasks
		if taskID < writeBlocks%tasks {
			myWrites++
		}

		readIdx := 0
		writesLeft := myWrites
		var doRead, doWrite func(e *sim.Engine)
		doCompute := func(e *sim.Engine) {
			if job.ComputeSecPerTask > 0 {
				e.StartDelay(fmt.Sprintf("%s:c%d", job.Name, taskID), job.ComputeSecPerTask, doWrite)
			} else {
				doWrite(e)
			}
		}
		doRead = func(e *sim.Engine) {
			if taskErr != nil {
				return
			}
			if readIdx >= len(myBlocks) {
				doCompute(e)
				return
			}
			blk := myBlocks[readIdx]
			readIdx++
			ordered := c.OrderReplicas(blk, node)
			if len(ordered) == 0 {
				taskErr = fmt.Errorf("workloads: job %s: block %s unreadable", job.Name, blk.Block.ID)
				return
			}
			e.StartFlow(fmt.Sprintf("%s:r%d.%d", job.Name, taskID, readIdx),
				float64(blk.Block.NumBytes>>20), sim.ReadResources(node, ordered[0]), doRead)
		}
		doWrite = func(e *sim.Engine) {
			if taskErr != nil || writesLeft == 0 {
				return
			}
			writesLeft--
			blk, err := c.PlaceBlock(job.WritePath, node, job.WriteRV, blockMB<<20)
			if err != nil && !job.FallbackRV.IsZero() {
				blk, err = c.PlaceBlock(job.WritePath, node, job.FallbackRV, blockMB<<20)
			}
			if err != nil {
				taskErr = fmt.Errorf("workloads: job %s write: %w", job.Name, err)
				return
			}
			e.StartFlow(fmt.Sprintf("%s:w%d.%d", job.Name, taskID, writesLeft),
				float64(blockMB), sim.WriteResources(node, blk.Replicas), doWrite)
		}
		doRead(e)
	}

	if _, err := e.Run(); err != nil {
		return 0, err
	}
	if taskErr != nil {
		return 0, taskErr
	}
	return e.Now() - start, nil
}

// LoadDataset places a dataset's blocks without simulating transfer
// time (data-generation happens before the timed run, paper §7.5).
func LoadDataset(c *sim.Cluster, path string, sizeMB, blockMB int64, rv core.ReplicationVector) error {
	blocks := int(sizeMB / blockMB)
	if blocks == 0 {
		blocks = 1
	}
	for i := 0; i < blocks; i++ {
		if _, err := c.PlaceBlock(path, c.Node(i), rv, blockMB<<20); err != nil {
			return fmt.Errorf("workloads: loading %s: %w", path, err)
		}
	}
	return nil
}

// DeleteDataset releases a dataset's capacity (short-lived
// intermediate data between jobs).
func DeleteDataset(c *sim.Cluster, path string) {
	f, ok := c.File(path)
	if !ok {
		return
	}
	for _, blk := range f.Blocks {
		for _, m := range blk.Replicas {
			m.Used -= blk.Block.NumBytes
			if m.Used < 0 {
				m.Used = 0
			}
		}
	}
	c.RemoveFile(path)
}

// PromoteToMemory adds (or moves) one replica of every block of a file
// into the memory tier, modelling the prefetch optimisation of paper
// §7.6. With move=true the slowest existing replica is dropped (a
// tier move); otherwise a copy is added.
func PromoteToMemory(c *sim.Cluster, path string, move bool) error {
	f, ok := c.File(path)
	if !ok {
		return fmt.Errorf("workloads: promote %s: %w", path, core.ErrNotFound)
	}
	for i := range f.Blocks {
		if err := c.AddMemoryReplica(&f.Blocks[i], move); err != nil {
			return err
		}
	}
	return nil
}
