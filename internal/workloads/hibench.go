package workloads

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/sim"
)

// EngineKind distinguishes the two processing frameworks of the
// paper's §7.5 evaluation.
type EngineKind int

// The evaluated frameworks.
const (
	// Hadoop MapReduce persists every inter-job dataset to the file
	// system and re-reads inputs each iteration.
	Hadoop EngineKind = iota

	// Spark keeps inter-stage data and cached input RDDs in executor
	// memory, touching the file system only for initial input and
	// final output — which is why the paper observes smaller (but
	// still real) gains for Spark.
	Spark
)

// String names the engine.
func (e EngineKind) String() string {
	if e == Hadoop {
		return "Hadoop"
	}
	return "Spark"
}

// HiBenchWorkload models one HiBench benchmark (paper §7.5, Figure 6):
// how much data it reads, shuffles between jobs, writes, how compute-
// heavy its tasks are, and how many chained jobs (or iterations) it
// runs.
type HiBenchWorkload struct {
	Name     string
	Category string // "micro", "olap", "ml"

	InputMB        int64   // initial dataset size
	InterMB        int64   // dataset passed between consecutive jobs
	OutputMB       int64   // final output size
	ComputePerTask float64 // seconds of CPU per task per job
	Jobs           int     // chained jobs (iterations for ML)
	IterativeInput bool    // every job re-reads the input (graph/ML)
}

// HiBenchSuite returns the nine workloads of the paper's §7.5
// evaluation: three micro benchmarks, three OLAP queries, and three
// machine-learning workloads. Sizes follow HiBench's large-scale
// profile shrunk to the paper's 10-node cluster (execution times land
// in the paper's 1–42 minute range).
func HiBenchSuite() []HiBenchWorkload {
	return []HiBenchWorkload{
		// Micro benchmarks: I/O dominated.
		{Name: "Sort", Category: "micro", InputMB: 30_000, OutputMB: 30_000, ComputePerTask: 1, Jobs: 1},
		{Name: "Wordcount", Category: "micro", InputMB: 30_000, OutputMB: 60, ComputePerTask: 42, Jobs: 1},
		{Name: "Terasort", Category: "micro", InputMB: 30_000, OutputMB: 30_000, ComputePerTask: 8, Jobs: 1},
		// OLAP queries (Hive-style chained MR jobs).
		{Name: "Scan", Category: "olap", InputMB: 20_000, OutputMB: 18_000, ComputePerTask: 3, Jobs: 1},
		{Name: "Join", Category: "olap", InputMB: 18_000, InterMB: 14_000, OutputMB: 2_000, ComputePerTask: 10, Jobs: 2},
		{Name: "Aggregation", Category: "olap", InputMB: 16_000, InterMB: 8_000, OutputMB: 500, ComputePerTask: 8, Jobs: 2},
		// Machine learning / graph analytics (iterative).
		{Name: "Pagerank", Category: "ml", InputMB: 4_000, InterMB: 9_000, OutputMB: 1_500, ComputePerTask: 6, Jobs: 4, IterativeInput: true},
		{Name: "Bayes", Category: "ml", InputMB: 12_000, InterMB: 10_000, OutputMB: 600, ComputePerTask: 18, Jobs: 3},
		{Name: "Kmeans", Category: "ml", InputMB: 16_000, InterMB: 500, OutputMB: 300, ComputePerTask: 40, Jobs: 4, IterativeInput: true},
	}
}

// HiBenchResult is one workload execution measurement.
type HiBenchResult struct {
	Workload string
	Engine   EngineKind
	Seconds  float64
}

// RunHiBench executes one workload on one engine over the given
// simulated cluster (whose placement/retrieval policies embody the
// file system under test) and returns the makespan in seconds.
//
// Hadoop materialises inter-job datasets in the file system and, for
// iterative workloads, re-reads the input every iteration. Spark
// caches the input RDD after the first read and keeps inter-stage
// data in executor memory.
func RunHiBench(c *sim.Cluster, w HiBenchWorkload, engine EngineKind, tasks int, blockMB int64) (float64, error) {
	inputPath := "/hibench/" + w.Name + "/input"
	rv3 := core.ReplicationVectorFromFactor(3)
	if err := LoadDataset(c, inputPath, w.InputMB, blockMB, rv3); err != nil {
		return 0, err
	}

	start := c.Engine.Now()
	prevPath := inputPath
	for j := 0; j < w.Jobs; j++ {
		last := j == w.Jobs-1
		job := JobSpec{
			Name:              fmt.Sprintf("%s-j%d", w.Name, j),
			ComputeSecPerTask: w.ComputePerTask,
			WriteRV:           rv3,
			OverheadSec:       engineOverheadSec(engine),
		}
		// Read phase.
		switch {
		case j == 0:
			job.ReadPath = inputPath
		case engine == Hadoop:
			job.ReadPath = prevPath
			if w.IterativeInput {
				// Iterative Hadoop jobs re-read the input too; model
				// the bigger of the two datasets plus the smaller as
				// a combined read by chaining a pre-read of input.
				if err := readDataset(c, inputPath, tasks); err != nil {
					return 0, err
				}
			}
		case engine == Spark:
			// Cached RDDs: no file system read after the first job.
			job.ReadPath = ""
		}
		// Write phase.
		switch {
		case last:
			job.WritePath = "/hibench/" + w.Name + "/output"
			job.WriteMB = w.OutputMB
		case engine == Hadoop:
			job.WritePath = fmt.Sprintf("/hibench/%s/inter-%d", w.Name, j)
			job.WriteMB = w.InterMB
		default:
			job.WritePath = "" // Spark keeps it in executor memory
		}

		if _, err := RunJob(c, job, tasks, blockMB); err != nil {
			return 0, err
		}
		// Short-lived intermediates are dropped once consumed.
		if engine == Hadoop && j > 0 && prevPath != inputPath {
			DeleteDataset(c, prevPath)
		}
		if job.WritePath != "" && !last {
			prevPath = job.WritePath
		}
	}
	return c.Engine.Now() - start, nil
}

// engineOverheadSec models per-job framework overhead (job setup,
// task scheduling) that the file system cannot accelerate.
func engineOverheadSec(e EngineKind) float64 {
	if e == Spark {
		return 4
	}
	return 8
}

// readDataset simulates a full parallel read of a dataset (used for
// iterative Hadoop jobs that re-scan their input each iteration).
func readDataset(c *sim.Cluster, path string, tasks int) error {
	job := JobSpec{Name: "scan:" + path, ReadPath: path}
	_, err := RunJob(c, job, tasks, 1)
	return err
}
