// Package workloads implements the workload generators of the paper's
// evaluation (§7): DFSIO (distributed I/O throughput), the S-Live
// namespace stress test, HiBench-style Hadoop/Spark job models, and
// the Pegasus graph-mining workload models. DFSIO, HiBench, and
// Pegasus run against the flow-level simulator; S-Live runs against
// the live master.
package workloads

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/sim"
)

// DFSIOConfig parameterises one DFSIO run (paper §7.1: "a distributed
// I/O benchmark that measures average throughput for write and read
// operations").
type DFSIOConfig struct {
	Cluster *sim.Cluster

	// Threads is the degree of parallelism d; thread i runs on node
	// i mod numNodes, like DFSIO map tasks.
	Threads int

	// TotalMB is the aggregate payload to write (excluding replicas).
	TotalMB int64

	// BlockMB is the file block size.
	BlockMB int64

	// RepVector controls per-tier replica placement.
	RepVector core.ReplicationVector

	// PathPrefix namespaces this run's files.
	PathPrefix string
}

// Sample is one point of a throughput timeline.
type Sample struct {
	TimeSec float64
	// PayloadMB is the cumulative payload completed by TimeSec.
	PayloadMB float64
}

// IOStats summarises one DFSIO phase.
type IOStats struct {
	MakespanSec float64
	PayloadMB   float64
	// ThroughputPerWorkerMBps is aggregate payload rate divided by the
	// number of worker nodes — the paper's Figures 2, 3, 5 y-axis.
	ThroughputPerWorkerMBps float64
	// PerThreadMBps is the mean per-task I/O rate (DFSIO's "average
	// I/O rate"), the metric that exhibits the paper's decline with
	// growing parallelism.
	PerThreadMBps float64
	Timeline      []Sample
	// LocalReads / TotalReads track read locality (§7.1 discussion).
	LocalReads, TotalReads int
}

// RunWrite writes TotalMB of payload with the configured parallelism
// and replication vector, returning throughput statistics.
func RunWrite(cfg DFSIOConfig) (IOStats, error) {
	if cfg.Threads <= 0 || cfg.TotalMB <= 0 || cfg.BlockMB <= 0 {
		return IOStats{}, fmt.Errorf("workloads: invalid DFSIO config %+v", cfg)
	}
	c := cfg.Cluster
	e := c.Engine
	perThreadMB := cfg.TotalMB / int64(cfg.Threads)
	blocksPerThread := int(perThreadMB / cfg.BlockMB)
	if blocksPerThread == 0 {
		blocksPerThread = 1
	}
	blockBytes := cfg.BlockMB << 20

	stats := IOStats{}
	phaseStart := e.Now()
	var placementErr error
	for t := 0; t < cfg.Threads; t++ {
		node := c.Node(t)
		path := fmt.Sprintf("%s/part-%04d", cfg.PathPrefix, t)
		remaining := blocksPerThread
		var writeNext func(e *sim.Engine)
		writeNext = func(e *sim.Engine) {
			if remaining == 0 || placementErr != nil {
				return
			}
			remaining--
			blk, err := c.PlaceBlock(path, node, cfg.RepVector, blockBytes)
			if err != nil {
				placementErr = err
				return
			}
			resources := sim.WriteResources(node, blk.Replicas)
			e.StartFlow(fmt.Sprintf("w:%s:%d", path, remaining),
				float64(cfg.BlockMB), resources, func(e *sim.Engine) {
					stats.PayloadMB += float64(cfg.BlockMB)
					stats.Timeline = append(stats.Timeline, Sample{
						TimeSec: e.Now() - phaseStart, PayloadMB: stats.PayloadMB,
					})
					writeNext(e)
				})
		}
		writeNext(e)
	}
	elapsed, err := e.Run()
	if err != nil {
		return stats, err
	}
	if placementErr != nil {
		return stats, placementErr
	}
	stats.MakespanSec = elapsed
	if elapsed > 0 {
		stats.ThroughputPerWorkerMBps = stats.PayloadMB / elapsed / float64(len(c.Nodes))
		stats.PerThreadMBps = stats.PayloadMB / elapsed / float64(cfg.Threads)
	}
	return stats, nil
}

// RunRead reads back the files written by RunWrite with the cluster's
// retrieval policy, shifting each reader one node over so only ~1/3 of
// reads are node-local like the paper's run (§7.1).
func RunRead(cfg DFSIOConfig) (IOStats, error) {
	c := cfg.Cluster
	e := c.Engine
	stats := IOStats{}
	phaseStart := e.Now()
	var readErr error
	for t := 0; t < cfg.Threads; t++ {
		// Offset reader placement versus writer placement.
		node := c.Node(t + 1)
		path := fmt.Sprintf("%s/part-%04d", cfg.PathPrefix, t)
		file, ok := c.File(path)
		if !ok {
			return stats, fmt.Errorf("workloads: file %s was not written: %w", path, core.ErrNotFound)
		}
		idx := 0
		var readNext func(e *sim.Engine)
		readNext = func(e *sim.Engine) {
			if idx >= len(file.Blocks) || readErr != nil {
				return
			}
			blk := file.Blocks[idx]
			idx++
			ordered := c.OrderReplicas(blk, node)
			if len(ordered) == 0 {
				readErr = fmt.Errorf("workloads: block %s has no replicas: %w", blk.Block.ID, core.ErrNoWorkers)
				return
			}
			src := ordered[0]
			stats.TotalReads++
			if src.Node() == node {
				stats.LocalReads++
			}
			sizeMB := float64(blk.Block.NumBytes >> 20)
			e.StartFlow(fmt.Sprintf("r:%s:%d", path, idx),
				sizeMB, sim.ReadResources(node, src), func(e *sim.Engine) {
					stats.PayloadMB += sizeMB
					stats.Timeline = append(stats.Timeline, Sample{
						TimeSec: e.Now() - phaseStart, PayloadMB: stats.PayloadMB,
					})
					readNext(e)
				})
		}
		readNext(e)
	}
	elapsed, err := e.Run()
	if err != nil {
		return stats, err
	}
	if readErr != nil {
		return stats, readErr
	}
	stats.MakespanSec = elapsed
	if elapsed > 0 {
		stats.ThroughputPerWorkerMBps = stats.PayloadMB / elapsed / float64(len(c.Nodes))
		stats.PerThreadMBps = stats.PayloadMB / elapsed / float64(cfg.Threads)
	}
	return stats, nil
}

// WindowedThroughput converts a timeline into per-window throughput
// per worker, for the paper's Figure 3 time series.
func WindowedThroughput(timeline []Sample, windowSec float64, numWorkers int) []Sample {
	if len(timeline) == 0 || windowSec <= 0 {
		return nil
	}
	maxT := timeline[len(timeline)-1].TimeSec
	numWindows := int(maxT/windowSec) + 1
	out := make([]Sample, 0, numWindows)
	j, prevCum := 0, 0.0
	for w := 1; w <= numWindows; w++ {
		endT := float64(w) * windowSec
		cum := prevCum
		for j < len(timeline) && timeline[j].TimeSec <= endT {
			cum = timeline[j].PayloadMB
			j++
		}
		out = append(out, Sample{
			TimeSec:   endT,
			PayloadMB: (cum - prevCum) / windowSec / float64(numWorkers),
		})
		prevCum = cum
	}
	return out
}
