package workloads

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
)

func dfsioCluster() *sim.Cluster {
	return sim.NewCluster(sim.PaperClusterConfig())
}

func TestRunWriteBasics(t *testing.T) {
	c := dfsioCluster()
	stats, err := RunWrite(DFSIOConfig{
		Cluster: c, Threads: 9, TotalMB: 1152, BlockMB: 128,
		RepVector: core.NewReplicationVector(0, 0, 3, 0, 0), PathPrefix: "/t",
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.PayloadMB != 1152 {
		t.Errorf("PayloadMB = %v, want 1152", stats.PayloadMB)
	}
	if stats.MakespanSec <= 0 {
		t.Error("MakespanSec not positive")
	}
	if stats.ThroughputPerWorkerMBps <= 0 || stats.PerThreadMBps <= 0 {
		t.Error("throughput not positive")
	}
	// Single-stream HDD pipelines cannot exceed the HDD write rate.
	if stats.PerThreadMBps > 126.3+1e-6 {
		t.Errorf("per-thread write %v exceeds HDD capacity", stats.PerThreadMBps)
	}
	// 9 files × 1 block history each? 1152/9 threads = 128MB each = 1 block.
	f, ok := c.File("/t/part-0000")
	if !ok || len(f.Blocks) != 1 {
		t.Errorf("file registry wrong: %+v ok=%v", f, ok)
	}
}

func TestMemoryWritesFasterThanHDD(t *testing.T) {
	run := func(rv core.ReplicationVector) float64 {
		c := dfsioCluster()
		stats, err := RunWrite(DFSIOConfig{
			Cluster: c, Threads: 9, TotalMB: 2304, BlockMB: 128,
			RepVector: rv, PathPrefix: "/t",
		})
		if err != nil {
			t.Fatal(err)
		}
		return stats.PerThreadMBps
	}
	mem := run(core.NewReplicationVector(3, 0, 0, 0, 0))
	hdd := run(core.NewReplicationVector(0, 0, 3, 0, 0))
	if mem <= hdd {
		t.Errorf("memory writes (%v) not faster than HDD (%v)", mem, hdd)
	}
	if mem < 2*hdd {
		t.Errorf("memory/HDD ratio %.2f, want >= 2 (paper shape)", mem/hdd)
	}
}

func TestRunReadAfterWrite(t *testing.T) {
	c := dfsioCluster()
	cfg := DFSIOConfig{
		Cluster: c, Threads: 9, TotalMB: 1152, BlockMB: 128,
		RepVector: core.ReplicationVectorFromFactor(3), PathPrefix: "/t",
	}
	if _, err := RunWrite(cfg); err != nil {
		t.Fatal(err)
	}
	stats, err := RunRead(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if stats.PayloadMB != 1152 {
		t.Errorf("read PayloadMB = %v", stats.PayloadMB)
	}
	if stats.TotalReads != 9 {
		t.Errorf("TotalReads = %d, want 9 blocks", stats.TotalReads)
	}
	if stats.LocalReads > stats.TotalReads {
		t.Error("more local reads than reads")
	}
}

func TestRunReadMissingFile(t *testing.T) {
	c := dfsioCluster()
	_, err := RunRead(DFSIOConfig{
		Cluster: c, Threads: 2, TotalMB: 256, BlockMB: 128,
		RepVector: core.ReplicationVectorFromFactor(1), PathPrefix: "/never-written",
	})
	if err == nil {
		t.Error("reading unwritten files succeeded")
	}
}

func TestRunWriteValidation(t *testing.T) {
	c := dfsioCluster()
	if _, err := RunWrite(DFSIOConfig{Cluster: c}); err == nil {
		t.Error("zero config accepted")
	}
}

func TestOneMemoryReplicaSpeedsUpReads(t *testing.T) {
	// Paper §7.1: "by placing just 1 replica in memory, the average
	// read throughput increases 2–5x over storing all replicas on
	// HDDs."
	run := func(rv core.ReplicationVector) float64 {
		c := dfsioCluster()
		cfg := DFSIOConfig{
			Cluster: c, Threads: 27, TotalMB: 3456, BlockMB: 128,
			RepVector: rv, PathPrefix: "/t",
		}
		if _, err := RunWrite(cfg); err != nil {
			t.Fatal(err)
		}
		stats, err := RunRead(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return stats.PerThreadMBps
	}
	withMem := run(core.NewReplicationVector(1, 0, 2, 0, 0))
	allHDD := run(core.NewReplicationVector(0, 0, 3, 0, 0))
	if ratio := withMem / allHDD; ratio < 2 {
		t.Errorf("memory-replica read speedup = %.2fx, want >= 2x", ratio)
	}
}

func TestWindowedThroughput(t *testing.T) {
	timeline := []Sample{
		{TimeSec: 0.5, PayloadMB: 100},
		{TimeSec: 1.5, PayloadMB: 300},
		{TimeSec: 2.5, PayloadMB: 300}, // idle window
		{TimeSec: 3.5, PayloadMB: 400},
	}
	got := WindowedThroughput(timeline, 1.0, 10)
	want := []float64{10, 20, 0, 10} // MB per sec per 10 workers
	if len(got) != len(want) {
		t.Fatalf("windows = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if math.Abs(got[i].PayloadMB-want[i]) > 1e-9 {
			t.Errorf("window %d = %v, want %v", i, got[i].PayloadMB, want[i])
		}
	}
	if got := WindowedThroughput(nil, 1, 1); got != nil {
		t.Errorf("empty timeline produced %v", got)
	}
}
