package workloads

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/sim"
)

// PegasusWorkload models one Pegasus graph-mining workload (paper
// §7.6, Figure 7): an iterative Hadoop computation over a 2-million-
// vertex graph (3.3 GB) that re-reads its input every iteration and
// produces short-lived intermediate data between iterations.
type PegasusWorkload struct {
	Name           string
	InputMB        int64
	InterMB        int64 // intermediate data per iteration
	Iterations     int
	ComputePerTask float64
}

// PegasusSuite returns the four workloads of the paper's §7.6
// evaluation. All converge within four iterations; HADI stands out
// with ~18 GB of intermediate data per iteration.
func PegasusSuite() []PegasusWorkload {
	return []PegasusWorkload{
		{Name: "Pagerank", InputMB: 3_300, InterMB: 5_000, Iterations: 4, ComputePerTask: 14},
		{Name: "ConComp", InputMB: 3_300, InterMB: 4_000, Iterations: 3, ComputePerTask: 12},
		{Name: "HADI", InputMB: 3_300, InterMB: 18_000, Iterations: 4, ComputePerTask: 16},
		{Name: "RWR", InputMB: 3_300, InterMB: 6_000, Iterations: 4, ComputePerTask: 13},
	}
}

// PegasusOpts selects the Pegasus-side optimisations of paper §7.6.
type PegasusOpts struct {
	// Prefetch moves one replica of the reused input dataset into the
	// memory tier when the iterative workload starts.
	Prefetch bool

	// MemIntermediate writes short-lived intermediate data with one
	// replica pinned to the memory tier (⟨1,0,0,0,1⟩ instead of U=2).
	MemIntermediate bool
}

// RunPegasus executes one Pegasus workload over the simulated cluster
// and returns the makespan in seconds. The cluster's policies embody
// the file system under test (HDFS baselines vs OctopusFS).
func RunPegasus(c *sim.Cluster, w PegasusWorkload, opts PegasusOpts, tasks int, blockMB int64) (float64, error) {
	inputPath := "/pegasus/" + w.Name + "/input"
	rv3 := core.ReplicationVectorFromFactor(3)
	if err := LoadDataset(c, inputPath, w.InputMB, blockMB, rv3); err != nil {
		return 0, err
	}
	start := c.Engine.Now()

	// Pegasus identifies the dataset reused every iteration and
	// instructs OctopusFS to prefetch one replica into memory. The
	// move overlaps with the first iteration's processing, so it is
	// not charged to the makespan (paper: "better overlaps I/O with
	// task processing").
	if opts.Prefetch {
		if err := PromoteToMemory(c, inputPath, true); err != nil {
			return 0, err
		}
	}

	// Intermediate data replication: Pegasus uses 2 replicas for
	// short-lived data; the optimisation pins one of them to memory.
	interRV := core.ReplicationVectorFromFactor(2)
	fallbackRV := core.ReplicationVector(0)
	if opts.MemIntermediate {
		interRV = core.NewReplicationVector(1, 0, 0, 0, 1)
		fallbackRV = core.ReplicationVectorFromFactor(2)
	}

	prevInter := ""
	for it := 0; it < w.Iterations; it++ {
		last := it == w.Iterations-1
		job := JobSpec{
			Name:              fmt.Sprintf("%s-it%d", w.Name, it),
			ReadPath:          inputPath,
			ComputeSecPerTask: w.ComputePerTask,
			WriteRV:           interRV,
			FallbackRV:        fallbackRV,
			OverheadSec:       engineOverheadSec(Hadoop),
		}
		if !last {
			job.WritePath = fmt.Sprintf("/pegasus/%s/inter-%d", w.Name, it)
			job.WriteMB = w.InterMB
		} else {
			job.WritePath = "/pegasus/" + w.Name + "/output"
			job.WriteMB = w.InterMB / 4
			job.WriteRV = rv3
		}
		// Iterations beyond the first also consume the previous
		// iteration's intermediate data.
		if prevInter != "" {
			if err := readDataset(c, prevInter, tasks); err != nil {
				return 0, err
			}
		}
		if _, err := RunJob(c, job, tasks, blockMB); err != nil {
			return 0, err
		}
		if prevInter != "" {
			DeleteDataset(c, prevInter)
		}
		if !last {
			prevInter = job.WritePath
		}
	}
	return c.Engine.Now() - start, nil
}
