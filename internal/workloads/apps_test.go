package workloads

import (
	"testing"

	"repro/internal/core"
	"repro/internal/policy"
	"repro/internal/sim"
)

func hdfsCluster() *sim.Cluster {
	cfg := sim.PaperClusterConfig()
	cfg.Placement = policy.NewHDFSPolicy()
	cfg.Retrieval = policy.NewHDFSRetrievalPolicy()
	return sim.NewCluster(cfg)
}

func octoCluster() *sim.Cluster {
	return sim.NewCluster(sim.PaperClusterConfig())
}

func TestRunJobReadComputeWrite(t *testing.T) {
	c := octoCluster()
	if err := LoadDataset(c, "/in", 1280, 128, core.ReplicationVectorFromFactor(3)); err != nil {
		t.Fatal(err)
	}
	sec, err := RunJob(c, JobSpec{
		Name: "j", ReadPath: "/in", ComputeSecPerTask: 2,
		WritePath: "/out", WriteMB: 640, WriteRV: core.ReplicationVectorFromFactor(3),
	}, 9, 128)
	if err != nil {
		t.Fatal(err)
	}
	if sec <= 2 {
		t.Errorf("job finished in %.2fs, must exceed the 2s compute phase", sec)
	}
	if _, ok := c.File("/out"); !ok {
		t.Error("output dataset not registered")
	}
}

func TestRunJobComputeOnly(t *testing.T) {
	c := octoCluster()
	sec, err := RunJob(c, JobSpec{Name: "cpu", ComputeSecPerTask: 3}, 5, 128)
	if err != nil {
		t.Fatal(err)
	}
	if sec < 3-1e-9 || sec > 3.1 {
		t.Errorf("compute-only job took %.3fs, want ~3s", sec)
	}
}

func TestRunJobOverheadFloorsRuntime(t *testing.T) {
	c := octoCluster()
	sec, err := RunJob(c, JobSpec{Name: "idle", OverheadSec: 5}, 3, 128)
	if err != nil {
		t.Fatal(err)
	}
	if sec < 5-1e-9 {
		t.Errorf("job with 5s overhead took %.3fs", sec)
	}
}

func TestRunJobFallbackRV(t *testing.T) {
	cfg := sim.PaperClusterConfig()
	cfg.MemCapacity = 128 << 20 // one block per node's memory
	c := sim.NewCluster(cfg)
	// Pinned-memory writes exceed total memory; the fallback keeps the
	// job alive.
	_, err := RunJob(c, JobSpec{
		Name:      "spill",
		WritePath: "/out", WriteMB: 128 * 30,
		WriteRV:    core.NewReplicationVector(1, 0, 0, 0, 1),
		FallbackRV: core.ReplicationVectorFromFactor(2),
	}, 9, 128)
	if err != nil {
		t.Fatalf("fallback did not rescue the job: %v", err)
	}
}

func TestDeleteDatasetReleasesCapacity(t *testing.T) {
	c := octoCluster()
	if err := LoadDataset(c, "/tmp1", 1280, 128, core.ReplicationVectorFromFactor(3)); err != nil {
		t.Fatal(err)
	}
	used := func() int64 {
		var total int64
		for _, u := range c.TierUsage() {
			total += u[0]
		}
		return total
	}
	if used() == 0 {
		t.Fatal("dataset occupied no capacity")
	}
	DeleteDataset(c, "/tmp1")
	if used() != 0 {
		t.Errorf("capacity not released: %d bytes", used())
	}
	DeleteDataset(c, "/tmp1") // idempotent
}

func TestPromoteToMemory(t *testing.T) {
	c := octoCluster()
	if err := LoadDataset(c, "/hot", 640, 128, core.ReplicationVectorFromFactor(3)); err != nil {
		t.Fatal(err)
	}
	if err := PromoteToMemory(c, "/hot", true); err != nil {
		t.Fatal(err)
	}
	f, _ := c.File("/hot")
	for _, blk := range f.Blocks {
		hasMem := false
		for _, m := range blk.Replicas {
			if m.Tier == core.TierMemory {
				hasMem = true
			}
		}
		if !hasMem {
			t.Errorf("block %s has no memory replica after promote", blk.Block.ID)
		}
		if len(blk.Replicas) != 3 {
			t.Errorf("move changed replica count to %d, want 3", len(blk.Replicas))
		}
	}
	if err := PromoteToMemory(c, "/missing", false); err == nil {
		t.Error("promoting a missing file succeeded")
	}
}

func TestHiBenchOctopusBeatsHDFSEverywhere(t *testing.T) {
	// Paper Figure 6: "performance gains for every single workload."
	for _, engine := range []EngineKind{Hadoop, Spark} {
		for _, w := range HiBenchSuite() {
			hdfsSec, err := RunHiBench(hdfsCluster(), w, engine, 27, 128)
			if err != nil {
				t.Fatalf("%s/%s hdfs: %v", engine, w.Name, err)
			}
			octoSec, err := RunHiBench(octoCluster(), w, engine, 27, 128)
			if err != nil {
				t.Fatalf("%s/%s octopus: %v", engine, w.Name, err)
			}
			if octoSec > hdfsSec {
				t.Errorf("%s/%s: OctopusFS slower (%.0fs vs %.0fs)", engine, w.Name, octoSec, hdfsSec)
			}
		}
	}
}

func TestHiBenchSparkGainsSmallerThanHadoop(t *testing.T) {
	// Paper §7.5: Spark benefits less because it already keeps data in
	// executor memory. Compare suite-average normalized times.
	avg := func(engine EngineKind) float64 {
		total := 0.0
		for _, w := range HiBenchSuite() {
			hdfsSec, err := RunHiBench(hdfsCluster(), w, engine, 27, 128)
			if err != nil {
				t.Fatal(err)
			}
			octoSec, err := RunHiBench(octoCluster(), w, engine, 27, 128)
			if err != nil {
				t.Fatal(err)
			}
			total += octoSec / hdfsSec
		}
		return total / float64(len(HiBenchSuite()))
	}
	hadoopNorm, sparkNorm := avg(Hadoop), avg(Spark)
	if hadoopNorm >= 1 || sparkNorm >= 1 {
		t.Fatalf("no average gain: hadoop %.2f spark %.2f", hadoopNorm, sparkNorm)
	}
	if hadoopNorm > sparkNorm {
		t.Errorf("hadoop normalized %.3f > spark %.3f; paper expects larger Hadoop gains", hadoopNorm, sparkNorm)
	}
}

func TestPegasusOptimisationOrdering(t *testing.T) {
	// Paper Figure 7: OctopusFS beats HDFS; each optimisation helps;
	// both together help most.
	w := PegasusSuite()[0] // Pagerank
	run := func(c *sim.Cluster, opts PegasusOpts) float64 {
		sec, err := RunPegasus(c, w, opts, 27, 128)
		if err != nil {
			t.Fatal(err)
		}
		return sec
	}
	hdfs := run(hdfsCluster(), PegasusOpts{})
	plain := run(octoCluster(), PegasusOpts{})
	prefetch := run(octoCluster(), PegasusOpts{Prefetch: true})
	interm := run(octoCluster(), PegasusOpts{MemIntermediate: true})
	both := run(octoCluster(), PegasusOpts{Prefetch: true, MemIntermediate: true})

	if plain >= hdfs {
		t.Errorf("OctopusFS (%.0fs) not faster than HDFS (%.0fs)", plain, hdfs)
	}
	if prefetch > plain {
		t.Errorf("prefetch (%.0fs) slower than plain (%.0fs)", prefetch, plain)
	}
	if interm > plain {
		t.Errorf("mem-intermediate (%.0fs) slower than plain (%.0fs)", interm, plain)
	}
	if both > prefetch || both > interm {
		t.Errorf("both (%.0fs) slower than single optimisations (%.0f, %.0f)", both, prefetch, interm)
	}
}

func TestPegasusHADIFallsBackWhenMemoryTight(t *testing.T) {
	// HADI writes ~18 GB of intermediate data per iteration; the
	// memory tier (36 GB) plus prefetched input cannot pin it all, and
	// the run must complete via the fallback vector.
	var hadi PegasusWorkload
	for _, w := range PegasusSuite() {
		if w.Name == "HADI" {
			hadi = w
		}
	}
	if _, err := RunPegasus(octoCluster(), hadi,
		PegasusOpts{Prefetch: true, MemIntermediate: true}, 27, 128); err != nil {
		t.Fatalf("HADI with both optimisations failed: %v", err)
	}
}

func TestHiBenchSuiteStructure(t *testing.T) {
	suite := HiBenchSuite()
	if len(suite) != 9 {
		t.Fatalf("suite has %d workloads, want 9 (paper §7.5)", len(suite))
	}
	counts := map[string]int{}
	for _, w := range suite {
		counts[w.Category]++
		if w.InputMB <= 0 || w.Jobs <= 0 {
			t.Errorf("%s: invalid spec %+v", w.Name, w)
		}
		if w.Jobs > 1 && w.InterMB == 0 && !w.IterativeInput {
			t.Errorf("%s: multi-job workload without intermediates", w.Name)
		}
	}
	if counts["micro"] != 3 || counts["olap"] != 3 || counts["ml"] != 3 {
		t.Errorf("category mix = %v, want 3/3/3", counts)
	}
}

func TestPegasusSuiteStructure(t *testing.T) {
	suite := PegasusSuite()
	if len(suite) != 4 {
		t.Fatalf("suite has %d workloads, want 4 (paper §7.6)", len(suite))
	}
	for _, w := range suite {
		if w.InputMB != 3300 {
			t.Errorf("%s: input %dMB, want 3300 (the 3.3GB graph)", w.Name, w.InputMB)
		}
		if w.Iterations < 1 || w.Iterations > 4 {
			t.Errorf("%s: %d iterations, want <= 4 (paper: all converge in <= 4)", w.Name, w.Iterations)
		}
	}
}
