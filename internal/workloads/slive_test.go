package workloads

import (
	"testing"

	"repro/internal/integration"
)

func TestRunSLive(t *testing.T) {
	cfg := integration.DefaultClusterConfig(t.TempDir())
	cfg.NumWorkers = 2
	c, err := integration.StartCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	results, err := RunSLive(SLiveConfig{
		MasterAddr:   c.Master.Addr(),
		Clients:      2,
		OpsPerClient: 8,
	})
	if err != nil {
		t.Fatalf("RunSLive: %v", err)
	}
	if len(results) != len(SLiveOps()) {
		t.Fatalf("got %d result rows, want %d", len(results), len(SLiveOps()))
	}
	for i, r := range results {
		if r.Op != SLiveOps()[i] {
			t.Errorf("row %d op = %s, want %s", i, r.Op, SLiveOps()[i])
		}
		if r.Ops != 16 {
			t.Errorf("%s: %d ops, want 16", r.Op, r.Ops)
		}
		if r.OpsPerSec <= 0 {
			t.Errorf("%s: non-positive rate", r.Op)
		}
	}
	// Metadata-only operations must be much faster than create (which
	// moves block data through a pipeline) — the Table 3 shape.
	rates := map[SLiveOp]float64{}
	for _, r := range results {
		rates[r.Op] = r.OpsPerSec
	}
	if rates[OpOpen] < rates[OpCreate] {
		t.Errorf("open (%.0f/s) slower than create (%.0f/s)", rates[OpOpen], rates[OpCreate])
	}
	if rates[OpList] < rates[OpCreate] {
		t.Errorf("list (%.0f/s) slower than create (%.0f/s)", rates[OpList], rates[OpCreate])
	}
}
