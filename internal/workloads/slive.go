package workloads

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/client"
	"repro/internal/core"
)

// SLiveOp names one namespace operation type of the S-Live stress
// test (paper §7.4, Table 3).
type SLiveOp string

// The operation mix of Table 3.
const (
	OpMkdir  SLiveOp = "mkdir"
	OpList   SLiveOp = "ls"
	OpCreate SLiveOp = "create"
	OpOpen   SLiveOp = "open"
	OpRename SLiveOp = "rename"
	OpDelete SLiveOp = "delete"
)

// SLiveOps returns the Table 3 operations in report order.
func SLiveOps() []SLiveOp {
	return []SLiveOp{OpMkdir, OpList, OpCreate, OpOpen, OpRename, OpDelete}
}

// SLiveConfig parameterises a stress run against a live master.
type SLiveConfig struct {
	MasterAddr string
	// Clients is the number of concurrent client goroutines per
	// operation type.
	Clients int
	// OpsPerClient bounds each client's operation count.
	OpsPerClient int
	// FileContent is the payload written by create operations (small,
	// like S-Live's default).
	FileContent []byte
}

// SLiveResult reports the measured rate of one operation type.
type SLiveResult struct {
	Op        SLiveOp
	Ops       int
	Seconds   float64
	OpsPerSec float64
}

// RunSLive stress-tests a live master with the Table 3 operation mix
// and returns per-operation rates. The namespace is pre-populated
// with the files needed by list/open/rename/delete so each phase
// measures exactly one operation type.
func RunSLive(cfg SLiveConfig) ([]SLiveResult, error) {
	if cfg.Clients <= 0 {
		cfg.Clients = 4
	}
	if cfg.OpsPerClient <= 0 {
		cfg.OpsPerClient = 50
	}
	if cfg.FileContent == nil {
		cfg.FileContent = []byte("slive")
	}

	// Shared setup client.
	setup, err := client.Dial(cfg.MasterAddr, client.WithOwner("slive"))
	if err != nil {
		return nil, err
	}
	defer setup.Close()
	if err := setup.Mkdir("/slive", true); err != nil {
		return nil, err
	}

	totalOps := cfg.Clients * cfg.OpsPerClient
	rv1 := core.ReplicationVectorFromFactor(1)

	// Pre-populate directories with files for list and open phases.
	if err := setup.Mkdir("/slive/listdir", true); err != nil {
		return nil, err
	}
	for i := 0; i < 10; i++ {
		if err := setup.WriteFile(fmt.Sprintf("/slive/listdir/f%d", i), cfg.FileContent, rv1); err != nil {
			return nil, err
		}
	}
	if err := setup.Mkdir("/slive/ops", true); err != nil {
		return nil, err
	}
	for i := 0; i < totalOps; i++ {
		if err := setup.WriteFile(fmt.Sprintf("/slive/ops/f%d", i), cfg.FileContent, rv1); err != nil {
			return nil, err
		}
	}

	run := func(op SLiveOp, fn func(fs *client.FileSystem, client, op int) error) (SLiveResult, error) {
		clients := make([]*client.FileSystem, cfg.Clients)
		for i := range clients {
			c, err := client.Dial(cfg.MasterAddr, client.WithOwner("slive"))
			if err != nil {
				return SLiveResult{}, err
			}
			clients[i] = c
		}
		defer func() {
			for _, c := range clients {
				c.Close()
			}
		}()
		var wg sync.WaitGroup
		var failures atomic.Int64
		start := time.Now()
		for ci := range clients {
			wg.Add(1)
			go func(ci int) {
				defer wg.Done()
				for oi := 0; oi < cfg.OpsPerClient; oi++ {
					if err := fn(clients[ci], ci, oi); err != nil {
						failures.Add(1)
					}
				}
			}(ci)
		}
		wg.Wait()
		elapsed := time.Since(start).Seconds()
		ok := totalOps - int(failures.Load())
		if failures.Load() > 0 {
			return SLiveResult{}, fmt.Errorf("workloads: slive %s: %d/%d operations failed", op, failures.Load(), totalOps)
		}
		return SLiveResult{Op: op, Ops: ok, Seconds: elapsed, OpsPerSec: float64(ok) / elapsed}, nil
	}

	var results []SLiveResult
	phases := []struct {
		op SLiveOp
		fn func(fs *client.FileSystem, ci, oi int) error
	}{
		{OpMkdir, func(fs *client.FileSystem, ci, oi int) error {
			return fs.Mkdir(fmt.Sprintf("/slive/mkdir/c%d/d%d", ci, oi), true)
		}},
		{OpList, func(fs *client.FileSystem, ci, oi int) error {
			_, err := fs.List("/slive/listdir")
			return err
		}},
		{OpCreate, func(fs *client.FileSystem, ci, oi int) error {
			return fs.WriteFile(fmt.Sprintf("/slive/create/c%d-o%d", ci, oi), cfg.FileContent, rv1)
		}},
		{OpOpen, func(fs *client.FileSystem, ci, oi int) error {
			_, err := fs.GetFileBlockLocations("/slive/listdir/f1", 0, -1)
			return err
		}},
		{OpRename, func(fs *client.FileSystem, ci, oi int) error {
			id := ci*cfg.OpsPerClient + oi
			return fs.Rename(fmt.Sprintf("/slive/ops/f%d", id), fmt.Sprintf("/slive/ops/r%d", id))
		}},
		{OpDelete, func(fs *client.FileSystem, ci, oi int) error {
			id := ci*cfg.OpsPerClient + oi
			return fs.Delete(fmt.Sprintf("/slive/ops/r%d", id), false)
		}},
	}
	if err := setup.Mkdir("/slive/create", true); err != nil {
		return nil, err
	}
	for _, phase := range phases {
		res, err := run(phase.op, phase.fn)
		if err != nil {
			return results, err
		}
		results = append(results, res)
	}
	return results, nil
}
