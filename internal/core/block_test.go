package core

import "testing"

func TestBlockIDString(t *testing.T) {
	if got, want := BlockID(1042).String(), "blk_1042"; got != want {
		t.Errorf("BlockID.String() = %q, want %q", got, want)
	}
}

func TestBlockString(t *testing.T) {
	b := Block{ID: 7, GenStamp: 3, NumBytes: 1024}
	if got, want := b.String(), "blk_7_3 (1024B)"; got != want {
		t.Errorf("Block.String() = %q, want %q", got, want)
	}
}

func TestStorageTierReportPercentRemaining(t *testing.T) {
	tests := []struct {
		name string
		r    StorageTierReport
		want float64
	}{
		{"half full", StorageTierReport{Capacity: 100, Remaining: 50}, 50},
		{"empty capacity", StorageTierReport{Capacity: 0, Remaining: 0}, 0},
		{"full", StorageTierReport{Capacity: 10, Remaining: 10}, 100},
		{"negative capacity is guarded", StorageTierReport{Capacity: -5, Remaining: 1}, 0},
	}
	for _, tt := range tests {
		if got := tt.r.PercentRemaining(); got != tt.want {
			t.Errorf("%s: PercentRemaining() = %v, want %v", tt.name, got, tt.want)
		}
	}
}
