package core

import (
	"testing"
	"testing/quick"
)

func TestReplicationVectorRoundTrip(t *testing.T) {
	v := NewReplicationVector(1, 0, 2, 0, 0)
	if got := v.Memory(); got != 1 {
		t.Errorf("Memory() = %d, want 1", got)
	}
	if got := v.SSD(); got != 0 {
		t.Errorf("SSD() = %d, want 0", got)
	}
	if got := v.HDD(); got != 2 {
		t.Errorf("HDD() = %d, want 2", got)
	}
	if got := v.Remote(); got != 0 {
		t.Errorf("Remote() = %d, want 0", got)
	}
	if got := v.Unspecified(); got != 0 {
		t.Errorf("Unspecified() = %d, want 0", got)
	}
	if got := v.Total(); got != 3 {
		t.Errorf("Total() = %d, want 3", got)
	}
}

func TestReplicationVectorFromFactor(t *testing.T) {
	v := ReplicationVectorFromFactor(3)
	if v.Unspecified() != 3 || v.Specified() != 0 || v.Total() != 3 {
		t.Errorf("ReplicationVectorFromFactor(3) = %s, want <0,0,0,0,3>", v)
	}
}

func TestReplicationVectorString(t *testing.T) {
	v := NewReplicationVector(1, 2, 3, 4, 5)
	if got, want := v.String(), "<1,2,3,4,5>"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestParseReplicationVector(t *testing.T) {
	tests := []struct {
		in      string
		want    ReplicationVector
		wantErr bool
	}{
		{"<1,0,2,0,0>", NewReplicationVector(1, 0, 2, 0, 0), false},
		{"⟨1,0,2,0,0⟩", NewReplicationVector(1, 0, 2, 0, 0), false},
		{"1,0,2", NewReplicationVector(1, 0, 2, 0, 0), false},
		{"0,0,0,0,3", ReplicationVectorFromFactor(3), false},
		{" < 1 , 1 , 1 > ", NewReplicationVector(1, 1, 1, 0, 0), false},
		{"1,2,3,4,5,6", 0, true},
		{"a,b", 0, true},
		{"-1", 0, true},
		{"5000", 0, true},
		{"", 0, true},
	}
	for _, tt := range tests {
		got, err := ParseReplicationVector(tt.in)
		if (err != nil) != tt.wantErr {
			t.Errorf("ParseReplicationVector(%q) error = %v, wantErr %v", tt.in, err, tt.wantErr)
			continue
		}
		if err == nil && got != tt.want {
			t.Errorf("ParseReplicationVector(%q) = %s, want %s", tt.in, got, tt.want)
		}
	}
}

func TestReplicationVectorWithTierClamps(t *testing.T) {
	v := ReplicationVector(0).WithTier(TierSSD, -5)
	if got := v.SSD(); got != 0 {
		t.Errorf("WithTier(-5): SSD() = %d, want 0", got)
	}
	v = v.WithTier(TierSSD, MaxReplicasPerTier+100)
	if got := v.SSD(); got != MaxReplicasPerTier {
		t.Errorf("WithTier(max+100): SSD() = %d, want %d", got, MaxReplicasPerTier)
	}
}

func TestReplicationVectorDiff(t *testing.T) {
	tests := []struct {
		name     string
		from, to ReplicationVector
		want     map[StorageTier]int
	}{
		{
			name: "move HDD replica to SSD",
			from: NewReplicationVector(1, 0, 2, 0, 0),
			to:   NewReplicationVector(1, 1, 1, 0, 0),
			want: map[StorageTier]int{TierSSD: 1, TierHDD: -1},
		},
		{
			name: "copy to SSD",
			from: NewReplicationVector(1, 0, 2, 0, 0),
			to:   NewReplicationVector(1, 1, 2, 0, 0),
			want: map[StorageTier]int{TierSSD: 1},
		},
		{
			name: "delete in-memory replica",
			from: NewReplicationVector(1, 0, 2, 0, 0),
			to:   NewReplicationVector(0, 0, 2, 0, 0),
			want: map[StorageTier]int{TierMemory: -1},
		},
		{
			name: "no change",
			from: NewReplicationVector(1, 0, 2, 0, 0),
			to:   NewReplicationVector(1, 0, 2, 0, 0),
			want: map[StorageTier]int{},
		},
		{
			name: "unspecified grows",
			from: ReplicationVectorFromFactor(2),
			to:   ReplicationVectorFromFactor(3),
			want: map[StorageTier]int{TierUnspecified: 1},
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := tt.from.Diff(tt.to)
			if len(got) != len(tt.want) {
				t.Fatalf("Diff = %v, want %v", got, tt.want)
			}
			for tier, delta := range tt.want {
				if got[tier] != delta {
					t.Errorf("Diff[%v] = %d, want %d", tier, got[tier], delta)
				}
			}
		})
	}
}

func TestPinnedTiers(t *testing.T) {
	v := NewReplicationVector(1, 0, 2, 0, 1)
	got := v.PinnedTiers()
	want := []StorageTier{TierMemory, TierHDD, TierHDD, TierUnspecified}
	if len(got) != len(want) {
		t.Fatalf("PinnedTiers() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("PinnedTiers()[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestReplicationVectorValidate(t *testing.T) {
	if err := NewReplicationVector(0, 0, 0, 0, 0).Validate(); err == nil {
		t.Error("Validate() on zero vector: got nil, want error")
	}
	if err := ReplicationVectorFromFactor(1).Validate(); err != nil {
		t.Errorf("Validate() on <0,0,0,0,1>: got %v, want nil", err)
	}
}

// quickVector builds a vector from bounded random counts.
func quickVector(m, s, h, r, u uint16) ReplicationVector {
	cap := func(x uint16) int { return int(x) % (MaxReplicasPerTier + 1) }
	return NewReplicationVector(cap(m), cap(s), cap(h), cap(r), cap(u))
}

func TestQuickRoundTripStringParse(t *testing.T) {
	f := func(m, s, h, r, u uint16) bool {
		v := quickVector(m, s, h, r, u)
		parsed, err := ParseReplicationVector(v.String())
		return err == nil && parsed == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickTotalEqualsSum(t *testing.T) {
	f := func(m, s, h, r, u uint16) bool {
		v := quickVector(m, s, h, r, u)
		sum := v.Memory() + v.SSD() + v.HDD() + v.Remote() + v.Unspecified()
		return v.Total() == sum && len(v.PinnedTiers()) == sum
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickDiffIsAntisymmetric(t *testing.T) {
	f := func(m1, s1, h1, r1, u1, m2, s2, h2, r2, u2 uint16) bool {
		a := quickVector(m1, s1, h1, r1, u1)
		b := quickVector(m2, s2, h2, r2, u2)
		ab, ba := a.Diff(b), b.Diff(a)
		if len(ab) != len(ba) {
			return false
		}
		for tier, d := range ab {
			if ba[tier] != -d {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickWithTierIsolation(t *testing.T) {
	// Setting one tier's count must not disturb the others.
	f := func(m, s, h, r, u, n uint16) bool {
		v := quickVector(m, s, h, r, u)
		nv := int(n) % (MaxReplicasPerTier + 1)
		w := v.WithTier(TierHDD, nv)
		return w.HDD() == nv &&
			w.Memory() == v.Memory() && w.SSD() == v.SSD() &&
			w.Remote() == v.Remote() && w.Unspecified() == v.Unspecified()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
