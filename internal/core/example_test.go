package core_test

import (
	"fmt"

	"repro/internal/core"
)

// ExampleReplicationVector shows the paper's §2.3 move/copy/delete
// semantics expressed as vector diffs.
func ExampleReplicationVector() {
	v := core.NewReplicationVector(1, 0, 2, 0, 0) // 1 memory + 2 HDD
	fmt.Println("vector:", v)
	fmt.Println("total replicas:", v.Total())

	// Move one replica from HDD to SSD.
	moved := core.NewReplicationVector(1, 1, 1, 0, 0)
	for tier, delta := range v.Diff(moved) {
		if delta > 0 {
			fmt.Printf("add %d on %s\n", delta, tier)
		}
	}
	// Output:
	// vector: <1,0,2,0,0>
	// total replicas: 3
	// add 1 on SSD
}

// ExampleParseReplicationVector parses the shell notation used by
// octopus-cli.
func ExampleParseReplicationVector() {
	v, err := core.ParseReplicationVector("<0,1,2,0,0>")
	if err != nil {
		panic(err)
	}
	fmt.Println(v.SSD(), "SSD replica,", v.HDD(), "HDD replicas")
	// Output:
	// 1 SSD replica, 2 HDD replicas
}

// ExampleReplicationVectorFromFactor shows backwards compatibility
// with the scalar HDFS replication factor.
func ExampleReplicationVectorFromFactor() {
	v := core.ReplicationVectorFromFactor(3)
	fmt.Println(v, "— placement policy chooses the tiers")
	// Output:
	// <0,0,0,0,3> — placement policy chooses the tiers
}
