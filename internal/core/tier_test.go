package core

import "testing"

func TestTierString(t *testing.T) {
	tests := []struct {
		tier StorageTier
		want string
	}{
		{TierMemory, "MEMORY"},
		{TierSSD, "SSD"},
		{TierHDD, "HDD"},
		{TierRemote, "REMOTE"},
		{TierUnspecified, "UNSPECIFIED"},
		{StorageTier(99), "TIER(99)"},
	}
	for _, tt := range tests {
		if got := tt.tier.String(); got != tt.want {
			t.Errorf("StorageTier(%d).String() = %q, want %q", tt.tier, got, tt.want)
		}
	}
}

func TestParseTier(t *testing.T) {
	tests := []struct {
		in      string
		want    StorageTier
		wantErr bool
	}{
		{"MEMORY", TierMemory, false},
		{"mem", TierMemory, false},
		{"  ram ", TierMemory, false},
		{"M", TierMemory, false},
		{"SSD", TierSSD, false},
		{"flash", TierSSD, false},
		{"hdd", TierHDD, false},
		{"Disk", TierHDD, false},
		{"remote", TierRemote, false},
		{"NAS", TierRemote, false},
		{"u", TierUnspecified, false},
		{"any", TierUnspecified, false},
		{"tape", 0, true},
		{"", 0, true},
	}
	for _, tt := range tests {
		got, err := ParseTier(tt.in)
		if (err != nil) != tt.wantErr {
			t.Errorf("ParseTier(%q) error = %v, wantErr %v", tt.in, err, tt.wantErr)
			continue
		}
		if err == nil && got != tt.want {
			t.Errorf("ParseTier(%q) = %v, want %v", tt.in, got, tt.want)
		}
	}
}

func TestTierValid(t *testing.T) {
	for _, tier := range Tiers() {
		if !tier.Valid() {
			t.Errorf("Tiers() returned invalid tier %v", tier)
		}
	}
	if TierUnspecified.Valid() {
		t.Error("TierUnspecified.Valid() = true, want false")
	}
	if StorageTier(200).Valid() {
		t.Error("StorageTier(200).Valid() = true, want false")
	}
}

func TestTierVolatile(t *testing.T) {
	if !TierMemory.Volatile() {
		t.Error("TierMemory.Volatile() = false, want true")
	}
	for _, tier := range []StorageTier{TierSSD, TierHDD, TierRemote} {
		if tier.Volatile() {
			t.Errorf("%v.Volatile() = true, want false", tier)
		}
	}
}

func TestTiersOrderedFastestFirst(t *testing.T) {
	ts := Tiers()
	if len(ts) != NumTiers {
		t.Fatalf("len(Tiers()) = %d, want %d", len(ts), NumTiers)
	}
	if ts[0] != TierMemory || ts[len(ts)-1] != TierRemote {
		t.Errorf("Tiers() = %v, want memory first and remote last", ts)
	}
	// Mutating the returned slice must not affect future calls.
	ts[0] = TierRemote
	if Tiers()[0] != TierMemory {
		t.Error("Tiers() returned a shared slice; mutation leaked")
	}
}
