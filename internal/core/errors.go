package core

import "errors"

// Sentinel errors shared across OctopusFS components. RPC boundaries
// map these to stable codes so that clients can test against them with
// errors.Is even when the error crossed the wire.
var (
	// ErrNotFound reports that a path, block, or worker does not exist.
	ErrNotFound = errors.New("octopusfs: not found")

	// ErrExists reports that a path already exists where a new one was
	// to be created.
	ErrExists = errors.New("octopusfs: already exists")

	// ErrNotDirectory reports that a directory operation hit a file.
	ErrNotDirectory = errors.New("octopusfs: not a directory")

	// ErrIsDirectory reports that a file operation hit a directory.
	ErrIsDirectory = errors.New("octopusfs: is a directory")

	// ErrNotEmpty reports a non-recursive delete of a non-empty
	// directory.
	ErrNotEmpty = errors.New("octopusfs: directory not empty")

	// ErrNoSpace reports that no storage media with sufficient
	// remaining capacity satisfies a placement request.
	ErrNoSpace = errors.New("octopusfs: insufficient storage capacity")

	// ErrQuotaExceeded reports that an allocation would exceed a
	// per-tier storage quota (paper §1: quota mechanisms per storage
	// media for multi-tenancy).
	ErrQuotaExceeded = errors.New("octopusfs: storage tier quota exceeded")

	// ErrPermission reports an access-control violation.
	ErrPermission = errors.New("octopusfs: permission denied")

	// ErrFileOpen reports an operation on a file still under
	// construction by another client.
	ErrFileOpen = errors.New("octopusfs: file is under construction")

	// ErrFileClosed reports I/O on a closed stream.
	ErrFileClosed = errors.New("octopusfs: stream is closed")

	// ErrCorrupt reports a replica whose content failed checksum
	// verification.
	ErrCorrupt = errors.New("octopusfs: block replica is corrupt")

	// ErrNoWorkers reports that the cluster has no live workers able
	// to serve a request.
	ErrNoWorkers = errors.New("octopusfs: no live workers available")

	// ErrShutdown reports that the component has been stopped.
	ErrShutdown = errors.New("octopusfs: component is shut down")
)
