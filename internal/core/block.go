package core

import "fmt"

// DefaultBlockSize is the default size into which file content is
// split (paper §2.1: "large blocks, 128MB by default").
const DefaultBlockSize = 128 * 1024 * 1024

// BlockID uniquely identifies a file block within one master's
// namespace. IDs are allocated monotonically by the master.
type BlockID uint64

// String renders the ID in HDFS-like form, e.g. "blk_1042".
func (id BlockID) String() string { return fmt.Sprintf("blk_%d", uint64(id)) }

// GenerationStamp versions a block's content. It is bumped on every
// mutation (e.g. pipeline recovery), letting the master discard
// replicas that predate the latest committed write.
type GenerationStamp uint64

// Block describes one block of a file: its identity, its content
// version, and the number of bytes it holds.
type Block struct {
	ID       BlockID
	GenStamp GenerationStamp
	NumBytes int64
}

// String renders the block as "blk_<id>_<gen> (<bytes>B)".
func (b Block) String() string {
	return fmt.Sprintf("blk_%d_%d (%dB)", uint64(b.ID), uint64(b.GenStamp), b.NumBytes)
}

// WorkerID uniquely identifies a Worker in the cluster. It is assigned
// at registration and stable across restarts of the same worker
// configuration (typically "host:port" of the worker's data endpoint).
type WorkerID string

// StorageID uniquely identifies one storage media instance (e.g. a
// specific HDD) attached to a specific Worker. The placement policies
// select individual media, not just workers, so every replica location
// is a (worker, media) pair.
type StorageID string

// BlockLocation describes one stored replica of a block: which worker
// holds it, on which media and tier, and where that worker sits in the
// network topology. The client reads replicas in the order the master
// returns them (paper §4.1).
type BlockLocation struct {
	Worker  WorkerID
	Address string // host:port of the worker's data transfer endpoint
	Storage StorageID
	Tier    StorageTier
	Rack    string
}

// LocatedBlock pairs a block with its current replica locations,
// ordered by the master's data retrieval policy, and the block's byte
// offset within the file.
type LocatedBlock struct {
	Block     Block
	Offset    int64 // offset of the block's first byte within the file
	Locations []BlockLocation
}

// StorageTierReport summarises one active storage tier for the
// getStorageTierReports client API (paper Table 1): capacity totals and
// the average measured throughputs across the tier's media.
type StorageTierReport struct {
	Tier          StorageTier
	NumMedia      int     // media instances grouped into this tier
	NumWorkers    int     // distinct workers contributing media
	Capacity      int64   // total bytes across all media
	Remaining     int64   // remaining bytes across all media
	WriteThruMBps float64 // average sustained write throughput, MB/s
	ReadThruMBps  float64 // average sustained read throughput, MB/s
}

// PercentRemaining returns the tier's remaining capacity as a
// percentage of its total capacity, or 0 for an empty tier.
func (r StorageTierReport) PercentRemaining() float64 {
	if r.Capacity <= 0 {
		return 0
	}
	return 100 * float64(r.Remaining) / float64(r.Capacity)
}
