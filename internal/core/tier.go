// Package core defines the fundamental types shared by every OctopusFS
// component: storage tiers, the 64-bit replication vector, block and
// worker identities, block locations, and storage-tier reports.
//
// The types mirror the concepts of the SIGMOD'17 paper "OctopusFS: A
// Distributed File System with Tiered Storage Management": files are
// split into large blocks, each block is replicated onto storage media
// that belong to Workers, and the same type of media across Workers is
// logically grouped into a virtual storage tier.
package core

import (
	"fmt"
	"strings"
)

// StorageTier identifies a virtual storage tier. A tier groups storage
// media with similar I/O characteristics across all Workers in the
// cluster (paper §2.2). Tiers are ordered fastest-first: lower numeric
// values denote faster media.
type StorageTier uint8

// The canonical storage tiers. TierUnspecified is the pseudo-tier "U"
// used inside replication vectors to request replicas whose tier is
// chosen automatically by the data placement policy (paper §2.3).
const (
	TierMemory      StorageTier = iota // volatile DRAM-backed storage
	TierSSD                            // flash-based solid state drives
	TierHDD                            // rotational hard disk drives
	TierRemote                         // network-attached or cloud storage
	TierUnspecified                    // placement chosen by the policy

	// NumTiers is the number of concrete (placeable) storage tiers.
	NumTiers = int(TierUnspecified)
)

var tierNames = [...]string{"MEMORY", "SSD", "HDD", "REMOTE", "UNSPECIFIED"}

// String returns the canonical upper-case tier name.
func (t StorageTier) String() string {
	if int(t) < len(tierNames) {
		return tierNames[t]
	}
	return fmt.Sprintf("TIER(%d)", uint8(t))
}

// Valid reports whether t is a concrete, placeable storage tier.
func (t StorageTier) Valid() bool { return t < StorageTier(NumTiers) }

// Volatile reports whether data stored on this tier is lost on restart.
// Only the memory tier is volatile; the data placement policy treats it
// specially (at most one third of a block's replicas may live there).
func (t StorageTier) Volatile() bool { return t == TierMemory }

// ParseTier converts a tier name (case-insensitive; "MEM"/"MEMORY",
// "SSD", "HDD"/"DISK", "REMOTE", "U"/"UNSPECIFIED") to a StorageTier.
func ParseTier(s string) (StorageTier, error) {
	switch strings.ToUpper(strings.TrimSpace(s)) {
	case "MEM", "MEMORY", "RAM", "M":
		return TierMemory, nil
	case "SSD", "FLASH", "S":
		return TierSSD, nil
	case "HDD", "DISK", "H":
		return TierHDD, nil
	case "REMOTE", "NAS", "R":
		return TierRemote, nil
	case "U", "UNSPECIFIED", "ANY":
		return TierUnspecified, nil
	}
	return 0, fmt.Errorf("core: unknown storage tier %q", s)
}

// Tiers returns the concrete tiers ordered fastest-first. The returned
// slice is freshly allocated and may be modified by the caller.
func Tiers() []StorageTier {
	ts := make([]StorageTier, NumTiers)
	for i := range ts {
		ts[i] = StorageTier(i)
	}
	return ts
}
