package core

import (
	"fmt"
	"strconv"
	"strings"
)

// ReplicationVector encodes the desired number of block replicas per
// storage tier into a single 64-bit word (paper §2.3). The vector holds
// five fields — ⟨Memory, SSD, HDD, Remote, Unspecified⟩ — of 12 bits
// each, so every field can count up to 4095 replicas. The "Unspecified"
// field requests replicas whose tier is chosen automatically by the
// data placement policy.
//
// A vector fully determines the move/copy/delete semantics of
// SetReplication: diffing the old and the new vector yields per-tier
// additions and removals (see Diff).
//
// The zero ReplicationVector requests no replicas and is invalid for
// file creation.
type ReplicationVector uint64

const (
	repVectorFieldBits = 12
	repVectorFieldMask = (1 << repVectorFieldBits) - 1

	// MaxReplicasPerTier is the largest per-tier replica count a
	// replication vector can represent.
	MaxReplicasPerTier = repVectorFieldMask
)

// NewReplicationVector builds a vector from per-tier counts
// ⟨memory, ssd, hdd, remote, unspecified⟩. Counts above
// MaxReplicasPerTier are capped.
func NewReplicationVector(memory, ssd, hdd, remote, unspecified int) ReplicationVector {
	var v ReplicationVector
	v = v.WithTier(TierMemory, memory).
		WithTier(TierSSD, ssd).
		WithTier(TierHDD, hdd).
		WithTier(TierRemote, remote).
		WithTier(TierUnspecified, unspecified)
	return v
}

// ReplicationVectorFromFactor converts a legacy HDFS replication factor
// r into the equivalent vector ⟨0,0,0,0,r⟩, preserving backwards
// compatibility with the scalar API (paper §2.3).
func ReplicationVectorFromFactor(r int) ReplicationVector {
	return NewReplicationVector(0, 0, 0, 0, r)
}

// Tier returns the replica count requested for tier t.
func (v ReplicationVector) Tier(t StorageTier) int {
	return int(v>>(repVectorFieldBits*uint(t))) & repVectorFieldMask
}

// WithTier returns a copy of v with tier t's count set to n.
// Negative n is treated as zero; n above MaxReplicasPerTier is capped.
func (v ReplicationVector) WithTier(t StorageTier, n int) ReplicationVector {
	if n < 0 {
		n = 0
	}
	if n > MaxReplicasPerTier {
		n = MaxReplicasPerTier
	}
	shift := repVectorFieldBits * uint(t)
	v &^= ReplicationVector(repVectorFieldMask) << shift
	v |= ReplicationVector(n) << shift
	return v
}

// Memory returns the replica count for the memory tier.
func (v ReplicationVector) Memory() int { return v.Tier(TierMemory) }

// SSD returns the replica count for the SSD tier.
func (v ReplicationVector) SSD() int { return v.Tier(TierSSD) }

// HDD returns the replica count for the HDD tier.
func (v ReplicationVector) HDD() int { return v.Tier(TierHDD) }

// Remote returns the replica count for the remote tier.
func (v ReplicationVector) Remote() int { return v.Tier(TierRemote) }

// Unspecified returns the count of replicas whose tier is chosen by the
// placement policy.
func (v ReplicationVector) Unspecified() int { return v.Tier(TierUnspecified) }

// Total returns the total number of replicas requested across all
// tiers, including unspecified ones.
func (v ReplicationVector) Total() int {
	n := 0
	for t := TierMemory; t <= TierUnspecified; t++ {
		n += v.Tier(t)
	}
	return n
}

// Specified returns the number of replicas pinned to concrete tiers
// (the total minus the unspecified count).
func (v ReplicationVector) Specified() int {
	return v.Total() - v.Unspecified()
}

// IsZero reports whether the vector requests no replicas at all.
func (v ReplicationVector) IsZero() bool { return v.Total() == 0 }

// PinnedTiers expands the concrete-tier fields into a flat list of
// tiers, one entry per pinned replica, ordered fastest tier first.
// Unspecified replicas are appended as TierUnspecified entries, so the
// result always has length v.Total(). This is the iteration order used
// by the MOOP data placement policy (paper Algorithm 2).
func (v ReplicationVector) PinnedTiers() []StorageTier {
	out := make([]StorageTier, 0, v.Total())
	for t := TierMemory; t < StorageTier(NumTiers); t++ {
		for i := 0; i < v.Tier(t); i++ {
			out = append(out, t)
		}
	}
	for i := 0; i < v.Unspecified(); i++ {
		out = append(out, TierUnspecified)
	}
	return out
}

// Diff computes the per-tier replica deltas needed to transform vector
// v into vector want. Positive entries are replicas to add on that
// tier, negative entries replicas to remove. Unspecified counts are
// compared as-is: deciding which concrete tier serves an unspecified
// request is the placement policy's job, not the codec's.
func (v ReplicationVector) Diff(want ReplicationVector) map[StorageTier]int {
	d := make(map[StorageTier]int)
	for t := TierMemory; t <= TierUnspecified; t++ {
		if delta := want.Tier(t) - v.Tier(t); delta != 0 {
			d[t] = delta
		}
	}
	return d
}

// String renders the vector in the paper's ⟨M,S,H,R,U⟩ notation, e.g.
// "<1,0,2,0,0>".
func (v ReplicationVector) String() string {
	return fmt.Sprintf("<%d,%d,%d,%d,%d>",
		v.Memory(), v.SSD(), v.HDD(), v.Remote(), v.Unspecified())
}

// ParseReplicationVector parses the ⟨M,S,H,R,U⟩ notation produced by
// String. Both ASCII angle brackets and the typographic ⟨⟩ pair are
// accepted, as is a bare comma-separated list. Shorter lists are
// right-padded with zeros, so "1,0,2" means ⟨1,0,2,0,0⟩.
func ParseReplicationVector(s string) (ReplicationVector, error) {
	s = strings.TrimSpace(s)
	for _, cut := range []string{"<", ">", "⟨", "⟩"} {
		s = strings.ReplaceAll(s, cut, "")
	}
	parts := strings.Split(s, ",")
	if len(parts) > NumTiers+1 {
		return 0, fmt.Errorf("core: replication vector %q has %d fields, want at most %d", s, len(parts), NumTiers+1)
	}
	var counts [NumTiers + 1]int
	for i, p := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return 0, fmt.Errorf("core: replication vector field %d: %w", i, err)
		}
		if n < 0 || n > MaxReplicasPerTier {
			return 0, fmt.Errorf("core: replication vector field %d out of range: %d", i, n)
		}
		counts[i] = n
	}
	return NewReplicationVector(counts[0], counts[1], counts[2], counts[3], counts[4]), nil
}

// Validate checks that the vector is usable for a file: it must request
// at least one replica.
func (v ReplicationVector) Validate() error {
	if v.IsZero() {
		return fmt.Errorf("core: replication vector %s requests no replicas", v)
	}
	return nil
}
