package audit

import (
	"net/http"

	"repro/internal/httpjson"
)

// debugResponse is the /debug/audit JSON document: one cursor page
// plus the per-op lifetime counters.
type debugResponse struct {
	Page
	Counts map[string]uint64 `json:"counts"`
}

// RegisterDebugHandler mounts the log on mux at /debug/audit. Query
// parameters mirror /debug/events: ?since=<seq> resumes a cursor
// (default 0 = from the oldest retained entry), ?op=<op> filters by
// operation, and ?limit=<n> caps the page size (default 1000). The
// response carries the next cursor plus eviction/drop counters so
// pollers can distinguish "no news" from "news lost".
func RegisterDebugHandler(mux *http.ServeMux, l *Log) {
	mux.HandleFunc("/debug/audit", func(w http.ResponseWriter, r *http.Request) {
		since, ok := httpjson.Uint64Param(w, r, "since", 0)
		if !ok {
			return
		}
		limit, ok := httpjson.IntParam(w, r, "limit", 1000)
		if !ok {
			return
		}
		page := l.Since(since, r.URL.Query().Get("op"), limit)
		if page.Entries == nil {
			page.Entries = []Entry{}
		}
		httpjson.Write(w, debugResponse{Page: page, Counts: l.Counts()})
	})
}
