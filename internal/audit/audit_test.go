package audit

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func appendN(l *Log, n int, op string) {
	for i := 0; i < n; i++ {
		l.Append(Entry{Op: op, Path: fmt.Sprintf("/f%d", i), Result: "ok", TotalNs: 1})
	}
}

func TestAppendSinceCursor(t *testing.T) {
	l := New(16)
	appendN(l, 5, "create")
	page := l.Since(0, "", 0)
	if len(page.Entries) != 5 {
		t.Fatalf("entries = %d, want 5", len(page.Entries))
	}
	for i, e := range page.Entries {
		if e.Seq != uint64(i+1) {
			t.Fatalf("entry %d seq = %d, want %d", i, e.Seq, i+1)
		}
		if e.Time == 0 {
			t.Fatalf("entry %d has zero time", i)
		}
	}
	if page.Next != 5 {
		t.Fatalf("next = %d, want 5", page.Next)
	}
	// Polling from the cursor returns nothing and leaves it in place.
	page = l.Since(page.Next, "", 0)
	if len(page.Entries) != 0 || page.Next != 5 {
		t.Fatalf("empty poll: entries=%d next=%d", len(page.Entries), page.Next)
	}
	appendN(l, 2, "delete")
	page = l.Since(5, "", 0)
	if len(page.Entries) != 2 || page.Entries[0].Seq != 6 || page.Next != 7 {
		t.Fatalf("resume: entries=%d next=%d", len(page.Entries), page.Next)
	}
}

func TestOpFilterAdvancesCursor(t *testing.T) {
	l := New(32)
	l.Append(Entry{Op: "create", Path: "/a", Result: "ok"})
	l.Append(Entry{Op: "list", Path: "/", Result: "ok"})
	l.Append(Entry{Op: "create", Path: "/b", Result: "ok"})
	page := l.Since(0, "create", 0)
	if len(page.Entries) != 2 {
		t.Fatalf("filtered entries = %d, want 2", len(page.Entries))
	}
	// The filtered-out "list" entry (seq 2) must still advance Next so
	// a create-only poller does not re-examine it.
	if page.Next != 3 {
		t.Fatalf("next = %d, want 3", page.Next)
	}
	if page.Entries[0].Path != "/a" || page.Entries[1].Path != "/b" {
		t.Fatalf("unexpected paths %q %q", page.Entries[0].Path, page.Entries[1].Path)
	}
}

func TestLimitCapsPage(t *testing.T) {
	l := New(64)
	appendN(l, 10, "stat")
	page := l.Since(0, "", 3)
	if len(page.Entries) != 3 || page.Next != 3 {
		t.Fatalf("limited page: entries=%d next=%d", len(page.Entries), page.Next)
	}
	page = l.Since(page.Next, "", 3)
	if len(page.Entries) != 3 || page.Entries[0].Seq != 4 {
		t.Fatalf("second page: entries=%d firstSeq=%d", len(page.Entries), page.Entries[0].Seq)
	}
}

func TestEvictionReportsMissed(t *testing.T) {
	l := New(4)
	appendN(l, 10, "mkdir") // seqs 1..10; ring keeps 7..10, evicted 6
	page := l.Since(0, "", 0)
	if page.Missed != 6 {
		t.Fatalf("missed = %d, want 6", page.Missed)
	}
	if page.Evicted != 6 {
		t.Fatalf("evicted = %d, want 6", page.Evicted)
	}
	if len(page.Entries) != 4 || page.Entries[0].Seq != 7 {
		t.Fatalf("retained: entries=%d firstSeq=%d", len(page.Entries), page.Entries[0].Seq)
	}
	// A cursor past the hole reports no further loss.
	page = l.Since(page.Next, "", 0)
	if page.Missed != 0 {
		t.Fatalf("post-hole missed = %d, want 0", page.Missed)
	}
}

func TestBacklogOverflowDropsAndCounts(t *testing.T) {
	l := New(16)
	// Never draining (no Since call), so everything past the channel
	// backlog must be shed.
	total := backlog + 100
	appendN(l, total, "create")
	if got := l.Dropped(); got != 100 {
		t.Fatalf("dropped = %d, want 100", got)
	}
	// The backlog itself survives and drains in FIFO order.
	page := l.Since(0, "", 0)
	if page.Dropped != 100 {
		t.Fatalf("page dropped = %d, want 100", page.Dropped)
	}
	if page.Next != uint64(backlog) {
		t.Fatalf("next = %d, want %d", page.Next, backlog)
	}
	if last := page.Entries[len(page.Entries)-1]; last.Path != fmt.Sprintf("/f%d", backlog-1) {
		t.Fatalf("last retained path = %q", last.Path)
	}
}

func TestCountsLifetime(t *testing.T) {
	l := New(4)
	appendN(l, 6, "create")
	appendN(l, 3, "rename")
	counts := l.Counts()
	if counts["create"] != 6 || counts["rename"] != 3 {
		t.Fatalf("counts = %v", counts)
	}
}

func TestNilLogSafe(t *testing.T) {
	var l *Log
	l.Append(Entry{Op: "create"})
	if page := l.Since(0, "", 0); len(page.Entries) != 0 {
		t.Fatal("nil log returned entries")
	}
	if l.Dropped() != 0 || l.Len() != 0 || l.Cap() != 0 || l.Counts() != nil {
		t.Fatal("nil log accessors not zero")
	}
}

func TestConcurrentAppendAndPoll(t *testing.T) {
	l := New(128)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				l.Append(Entry{Op: "create", Path: fmt.Sprintf("/g%d/f%d", g, i), Result: "ok"})
				if i%50 == 0 {
					l.Since(0, "", 10)
				}
			}
		}(g)
	}
	wg.Wait()
	total := l.Dropped()
	for _, c := range l.Counts() {
		total += c
	}
	if total != 8*500 {
		t.Fatalf("accounted entries = %d, want %d", total, 8*500)
	}
}

func TestDebugHandler(t *testing.T) {
	l := New(16)
	appendN(l, 4, "create")
	l.Append(Entry{Op: "rename", Path: "/a", Dst: "/b", Result: "ok"})
	mux := http.NewServeMux()
	RegisterDebugHandler(mux, l)

	get := func(url string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		req := httptest.NewRequest("GET", url, nil)
		mux.ServeHTTP(rec, req)
		return rec
	}

	rec := get("/debug/audit?op=rename")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	body := rec.Body.String()
	if !strings.Contains(body, `"dst": "/b"`) || strings.Contains(body, `"op": "create"`) {
		t.Fatalf("filtered body = %s", body)
	}
	if !strings.Contains(body, `"counts"`) || !strings.Contains(body, `"next": 5`) {
		t.Fatalf("missing cursor/counts: %s", body)
	}

	if rec := get("/debug/audit?since=bogus"); rec.Code != http.StatusBadRequest {
		t.Fatalf("bad since: status = %d", rec.Code)
	}
	if rec := get("/debug/audit?limit=bogus"); rec.Code != http.StatusBadRequest {
		t.Fatalf("bad limit: status = %d", rec.Code)
	}
}
