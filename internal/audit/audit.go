// Package audit implements the master's namespace audit log: one
// structured entry per namespace RPC (mutations and reads alike),
// carrying the op, path(s), result, the client's request/trace ID,
// byte sizes, and a per-phase latency breakdown — queue-wait in the
// RPC server, lock-wait on the namespace mutex, in-memory apply,
// edit-log append, and fsync. Where a trace answers "what happened
// inside one request" and the event journal records cluster state
// transitions, the audit log answers "who did what to the namespace,
// and where did the time go" for every request.
//
// The log is bounded twice over. Retained entries live in a ring
// buffer (like the event journal) so memory never grows past the
// configured capacity, and the producer side is a non-blocking
// buffered channel: the RPC hot path never takes the consumer lock,
// and when the channel backlog is full the entry is dropped and
// counted rather than slowing the master down. "Droppable under
// pressure" is a feature — the audit log must never become the
// contention it exists to measure.
package audit

import (
	"sync"
	"sync/atomic"
	"time"
)

// DefaultCapacity bounds the ring when the configured capacity is
// zero. Metadata ops are small; 4096 entries cover the recent past in
// well under a MB.
const DefaultCapacity = 4096

// backlog is the producer channel depth: how many entries may be
// in flight between the RPC handlers and the ring before Append
// starts dropping. Sized above any plausible handler concurrency so
// drops only happen when consumers (pollers, the drain on Append)
// genuinely cannot keep up.
const backlog = 1024

// Entry is one audited namespace operation. All latency fields are
// nanoseconds; phases that did not occur (fsync when the edit log is
// not in sync mode, append on a read op) are zero.
type Entry struct {
	// Seq is the log-assigned sequence number: strictly monotonically
	// increasing, starting at 1. It is the cursor for Since.
	Seq uint64 `json:"seq"`

	// Time is the operation completion time in Unix nanoseconds.
	Time int64 `json:"time_ns"`

	// Op names the RPC ("create", "mkdir", "rename", "list", …).
	Op string `json:"op"`

	// Path is the primary path operated on.
	Path string `json:"path,omitempty"`

	// Dst is the destination path for two-path ops (rename).
	Dst string `json:"dst,omitempty"`

	// TraceID is the client's request ID, joining the entry to the
	// span timeline served by /debug/traces and `octopus-cli trace`.
	TraceID string `json:"trace_id,omitempty"`

	// Result is "ok" on success, the error text otherwise.
	Result string `json:"result"`

	// Bytes is the op's data size where one applies (committed block
	// bytes, located file bytes).
	Bytes int64 `json:"bytes,omitempty"`

	// Phase breakdown. QueueNs is the wait between the RPC server
	// decoding the request and the handler starting; LockWaitNs the
	// wait for the namespace mutex; ApplyNs the in-memory tree
	// mutation (or read body); AppendNs the edit-log gob append;
	// FsyncNs the edit-log file sync. TotalNs is handler start to
	// completion and can exceed the sum (placement, block-map work).
	QueueNs    int64 `json:"queue_ns"`
	LockWaitNs int64 `json:"lock_wait_ns"`
	ApplyNs    int64 `json:"apply_ns"`
	AppendNs   int64 `json:"append_ns,omitempty"`
	FsyncNs    int64 `json:"fsync_ns,omitempty"`
	TotalNs    int64 `json:"total_ns"`
}

// Log is the bounded audit stream. A nil *Log is valid and discards
// everything, so callers never nil-check the append path.
type Log struct {
	ch      chan Entry
	dropped atomic.Uint64

	mu      sync.Mutex
	buf     []Entry // ring storage, len == capacity
	start   int     // index of the oldest retained entry
	n       int     // retained entries
	nextSeq uint64  // next sequence number to assign (first entry gets 1)
	evicted uint64  // entries overwritten in the ring (oldest-first)
	counts  map[string]uint64
}

// New builds a log retaining up to capacity entries (<= 0 selects
// DefaultCapacity).
func New(capacity int) *Log {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Log{
		ch:      make(chan Entry, backlog),
		buf:     make([]Entry, capacity),
		nextSeq: 1,
		counts:  make(map[string]uint64),
	}
}

// Append records one entry. It never blocks: the entry goes onto the
// backlog channel if there is room and is otherwise dropped and
// counted. Time is stamped here (completion time); Seq is assigned
// when the backlog is drained into the ring, preserving channel FIFO
// order. Nil logs discard.
func (l *Log) Append(e Entry) {
	if l == nil {
		return
	}
	if e.Time == 0 {
		e.Time = time.Now().UnixNano()
	}
	select {
	case l.ch <- e:
	default:
		l.dropped.Add(1)
	}
}

// drainLocked moves backlogged entries into the ring. Callers hold
// l.mu.
func (l *Log) drainLocked() {
	for {
		select {
		case e := <-l.ch:
			e.Seq = l.nextSeq
			l.nextSeq++
			l.counts[e.Op]++
			if l.n == len(l.buf) {
				l.buf[l.start] = e
				l.start = (l.start + 1) % len(l.buf)
				l.evicted++
			} else {
				l.buf[(l.start+l.n)%len(l.buf)] = e
				l.n++
			}
		default:
			return
		}
	}
}

// Page is one Since result, with the same exactly-once cursor
// semantics as the event journal's page: Next advances over
// op-filtered entries too, and Missed surfaces eviction gaps.
type Page struct {
	// Entries are the matching entries, oldest first.
	Entries []Entry `json:"entries"`

	// Next is the cursor for the following Since call: the highest
	// sequence number examined, or the request's since value when
	// nothing new exists.
	Next uint64 `json:"next"`

	// Missed counts entries with Seq > since evicted from the ring
	// before this call.
	Missed uint64 `json:"missed"`

	// Evicted is the lifetime ring-eviction total.
	Evicted uint64 `json:"evicted"`

	// Dropped is the lifetime count of entries discarded because the
	// producer backlog was full — load shedding, distinct from ring
	// eviction.
	Dropped uint64 `json:"dropped"`
}

// Since returns retained entries with Seq > since, oldest first,
// optionally filtered by op, capped at limit (<= 0 means no cap).
func (l *Log) Since(since uint64, op string, limit int) Page {
	if l == nil {
		return Page{Next: since}
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.drainLocked()
	page := Page{Next: since, Evicted: l.evicted, Dropped: l.dropped.Load()}
	if l.evicted > since {
		page.Missed = l.evicted - since
		page.Next = l.evicted
	}
	for i := 0; i < l.n; i++ {
		e := l.buf[(l.start+i)%len(l.buf)]
		if e.Seq <= since {
			continue
		}
		if limit > 0 && len(page.Entries) >= limit {
			break
		}
		page.Next = e.Seq
		if op != "" && e.Op != op {
			continue
		}
		page.Entries = append(page.Entries, e)
	}
	return page
}

// Counts returns a copy of the per-op lifetime totals for entries
// that reached the ring.
func (l *Log) Counts() map[string]uint64 {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.drainLocked()
	out := make(map[string]uint64, len(l.counts))
	for k, v := range l.counts {
		out[k] = v
	}
	return out
}

// Dropped returns how many entries were shed because the producer
// backlog was full.
func (l *Log) Dropped() uint64 {
	if l == nil {
		return 0
	}
	return l.dropped.Load()
}

// Len returns the number of retained entries (after draining the
// backlog).
func (l *Log) Len() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.drainLocked()
	return l.n
}

// Cap returns the configured ring capacity.
func (l *Log) Cap() int {
	if l == nil {
		return 0
	}
	return len(l.buf)
}
