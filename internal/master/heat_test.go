package master

import (
	"net/http"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/heat"
	"repro/internal/rpc"
)

// heatTestBlock creates a one-block file and reports its single
// replica as stored on the given media, returning the block ID.
func heatTestBlock(t *testing.T, m *Master, path, worker, storage string) core.BlockID {
	t.Helper()
	svc := &Service{m: m}
	if err := svc.Create(&rpc.CreateArgs{
		Path: path, RepVector: core.ReplicationVectorFromFactor(1),
	}, &rpc.CreateReply{}); err != nil {
		t.Fatal(err)
	}
	var reply rpc.AddBlockReply
	if err := svc.AddBlock(&rpc.AddBlockArgs{
		ReqHeader: rpc.ReqHeader{ReqID: rpc.NewRequestID()},
		Path:      path,
	}, &reply); err != nil {
		t.Fatal(err)
	}
	blk := reply.Located.Block
	blk.NumBytes = 1 << 20
	if err := svc.BlockReceived(&rpc.BlockReceivedArgs{
		ID: core.WorkerID(worker), Storage: core.StorageID(storage), Block: blk,
	}, &rpc.BlockReceivedReply{}); err != nil {
		t.Fatal(err)
	}
	return blk.ID
}

// heatTestCluster builds a master with one worker exposing memory and
// HDD media, a hot block whose only replica is on HDD, and a cold
// block squatting in memory. Heat arrives through the real heartbeat
// piggyback path for the hot block.
func heatTestCluster(t *testing.T) (*Master, core.BlockID, core.BlockID) {
	t.Helper()
	m := testMaster(t)
	registerFakeWorker(t, m, "w1", "/r1",
		mediaStat("w1:mem0", core.TierMemory, 1<<30, 1000, 2000),
		mediaStat("w1:hdd0", core.TierHDD, 4<<30, 120, 170),
	)
	hot := heatTestBlock(t, m, "/hot", "w1", "w1:hdd0")
	cold := heatTestBlock(t, m, "/cold", "w1", "w1:mem0")

	svc := &Service{m: m}
	if err := svc.Heartbeat(&rpc.HeartbeatArgs{
		ID: "w1",
		Heat: []heat.Delta{
			{Block: hot, ReadOps: 100, ReadBytes: 100 << 20},
		},
	}, &rpc.HeartbeatReply{}); err != nil {
		t.Fatal(err)
	}
	// The cold block was touched once, twenty half-lives ago: its
	// decayed heat is ~1e-6 ops, far below the cold cutoff, while a
	// premium (memory) replica still holds its bytes.
	m.heat.blocks.Add(cold, heat.Read, 1, 10,
		time.Now().Add(-20*heat.DefaultHalfLife).UnixNano())
	return m, hot, cold
}

func TestHeatReportRanksAndFlagsMisplacement(t *testing.T) {
	m, hot, cold := heatTestCluster(t)

	report := m.heatReport(10, "", false)
	agg := report.Aggregate
	if agg.TrackedBlocks != 2 || agg.TrackedFiles != 2 {
		t.Fatalf("aggregate tracks %d blocks / %d files, want 2 / 2", agg.TrackedBlocks, agg.TrackedFiles)
	}
	if agg.MaxHeat < 90 || agg.MaxHeat > 100 {
		t.Errorf("max heat = %.2f, want ~100 decayed ops", agg.MaxHeat)
	}
	if agg.TierHeat[core.TierHDD] < 90 {
		t.Errorf("HDD tier heat = %.2f, want the hot block's ~100", agg.TierHeat[core.TierHDD])
	}
	if agg.MisplacedHot != 1 || agg.MisplacedCold != 1 {
		t.Fatalf("misplaced = %d hot / %d cold, want 1 / 1", agg.MisplacedHot, agg.MisplacedCold)
	}

	if len(report.Misplaced) != 2 {
		t.Fatalf("misplaced list = %d entries, want 2", len(report.Misplaced))
	}
	// The hot-on-cold finding scores heat×misplacement (~33); the
	// cold-on-premium one scores misplacement alone (~0.67).
	mb := report.Misplaced[0]
	if mb.Block != hot || mb.Kind != rpc.MisplacedHotOnCold {
		t.Fatalf("top misplacement = %+v, want hot_on_cold for the hot block", mb)
	}
	if mb.Path != "/hot" || mb.BestTier != core.TierHDD || mb.Tiers[core.TierHDD] != 1 {
		t.Errorf("hot finding = %+v, want /hot with one HDD replica", mb)
	}
	if mb.Score < 25 || mb.Score > 35 {
		t.Errorf("hot score = %.2f, want ~33 (heat 100 × misplacement 1/3)", mb.Score)
	}
	if mb.DecisionTraceID == "" || mb.DecisionTimeNs == 0 {
		t.Errorf("hot finding lacks the originating placement decision: %+v", mb)
	}
	cb := report.Misplaced[1]
	if cb.Block != cold || cb.Kind != rpc.MisplacedColdOnPremium || cb.BestTier != core.TierMemory {
		t.Fatalf("second misplacement = %+v, want cold_on_premium in memory", cb)
	}

	// Rankings are heat-descending and joined to paths.
	if len(report.Blocks) != 2 || report.Blocks[0].Block != hot || report.Blocks[0].Path != "/hot" {
		t.Errorf("block ranking = %+v, want the hot block first", report.Blocks)
	}
	if len(report.Files) != 2 {
		t.Fatalf("file ranking = %d entries, want 2 (creates count as writes)", len(report.Files))
	}

	// ?file= restricts the block list to one file's blocks.
	filtered := m.heatReport(10, "/cold", false)
	if len(filtered.Blocks) != 1 || filtered.Blocks[0].Block != cold {
		t.Errorf("file-filtered blocks = %+v, want only the cold block", filtered.Blocks)
	}

	// misplacedOnly omits the rankings but keeps the fitness report.
	fitness := m.heatReport(10, "", true)
	if fitness.Files != nil || fitness.Blocks != nil {
		t.Error("misplacedOnly report still carries rankings")
	}
	if len(fitness.Misplaced) != 2 {
		t.Errorf("misplacedOnly report lost findings: %+v", fitness.Misplaced)
	}
}

func TestScanMisplacedJournalsTransitionsOnce(t *testing.T) {
	m, hot, _ := heatTestCluster(t)

	m.scanMisplaced()
	page := m.Journal().Since(0, evHeatMisplaced, 0)
	if len(page.Events) != 2 {
		t.Fatalf("heat_misplaced events = %d, want 2 (hot + cold)", len(page.Events))
	}
	var hotEvent bool
	for _, e := range page.Events {
		if e.Attrs["kind"] == rpc.MisplacedHotOnCold {
			hotEvent = true
			if e.Attrs["path"] != "/hot" || e.Attrs["best_tier"] != "HDD" || e.Attrs["tiers"] != "HDD:1" {
				t.Errorf("hot event attrs = %+v", e.Attrs)
			}
			if e.TraceID == "" {
				t.Error("hot event not linked to its placement decision trace")
			}
		}
	}
	if !hotEvent {
		t.Fatal("no hot_on_cold event journaled")
	}

	// A steady misplacement journals once, not every scan.
	m.scanMisplaced()
	if n := len(m.Journal().Since(0, evHeatMisplaced, 0).Events); n != 2 {
		t.Fatalf("re-scan journaled again: %d events, want 2", n)
	}

	// Leaving the misplaced set unflags the block, so a relapse
	// journals a fresh event.
	m.heat.blocks.Remove(hot)
	m.scanMisplaced()
	m.foldHeat([]heat.Delta{{Block: hot, ReadOps: 100, ReadBytes: 1 << 20}})
	m.scanMisplaced()
	if n := len(m.Journal().Since(0, evHeatMisplaced, 0).Events); n != 3 {
		t.Fatalf("relapse events = %d, want 3", n)
	}
}

func TestHeatRenameAndForgetFollowNamespace(t *testing.T) {
	m := testMaster(t)
	now := time.Now().UnixNano()
	m.touchFileWrite("/a/f")
	m.touchFileRead("/a/f", 100)
	m.heat.indexBlock(7, "/a/f")
	m.heat.blocks.Add(7, heat.Read, 3, 300, now)

	// Directory rename rewrites both the file map and the block index.
	m.heat.rename("/a", "/b")
	files := m.heat.files.Snapshot(now)
	if len(files) != 1 || files[0].Key != "/b/f" {
		t.Fatalf("files after dir rename = %+v, want /b/f", files)
	}
	if got := m.heat.pathOf(7); got != "/b/f" {
		t.Fatalf("pathOf after dir rename = %q, want /b/f", got)
	}
	// Exact-file rename.
	m.heat.rename("/b/f", "/c")
	if got := m.heat.pathOf(7); got != "/c" {
		t.Fatalf("pathOf after file rename = %q, want /c", got)
	}
	if files = m.heat.files.Snapshot(now); len(files) != 1 || files[0].Key != "/c" {
		t.Fatalf("files after file rename = %+v, want /c", files)
	}
	if files[0].Stat.Read.Ops == 0 || files[0].Stat.Write.Ops == 0 {
		t.Error("rename lost accumulated heat")
	}

	// Deletion drops the file heat and the block bookkeeping.
	m.heat.forgetPath("/c")
	if n := m.heat.files.Len(); n != 0 {
		t.Errorf("files after forgetPath = %d, want 0", n)
	}
	m.heat.forgetBlocks([]core.Block{{ID: 7}})
	if got := m.heat.pathOf(7); got != "" {
		t.Errorf("pathOf after forgetBlocks = %q, want \"\"", got)
	}
	if n := m.heat.blocks.Len(); n != 0 {
		t.Errorf("block heat after forgetBlocks = %d entries, want 0", n)
	}
}

// TestHTTPDebugHeatEndpoint checks /debug/heat serves the report with
// ?top, ?file, and ?misplaced handling, and 400s malformed params.
func TestHTTPDebugHeatEndpoint(t *testing.T) {
	m, hot, _ := heatTestCluster(t)
	addr, err := m.ServeHTTP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + addr + "/debug/heat"

	var report rpc.HeatReport
	if code := getJSON(t, base, &report); code != http.StatusOK {
		t.Fatalf("GET /debug/heat = %d", code)
	}
	if report.HalfLifeNs != int64(heat.DefaultHalfLife) {
		t.Errorf("half-life = %d, want default %d", report.HalfLifeNs, int64(heat.DefaultHalfLife))
	}
	if report.Aggregate.TrackedBlocks != 2 || len(report.Misplaced) != 2 {
		t.Fatalf("report = %+v, want 2 tracked blocks and 2 findings", report.Aggregate)
	}
	if len(report.Blocks) != 2 || report.Blocks[0].Block != hot {
		t.Errorf("blocks = %+v, want the hot block ranked first", report.Blocks)
	}

	report = rpc.HeatReport{}
	getJSON(t, base+"?top=1", &report)
	if len(report.Files) != 1 || len(report.Blocks) != 1 || len(report.Misplaced) != 1 {
		t.Errorf("?top=1 lists = %d files / %d blocks / %d misplaced, want 1 each",
			len(report.Files), len(report.Blocks), len(report.Misplaced))
	}

	report = rpc.HeatReport{}
	getJSON(t, base+"?file=/hot", &report)
	for _, b := range report.Blocks {
		if b.Path != "/hot" {
			t.Errorf("?file=/hot leaked block for %q", b.Path)
		}
	}

	report = rpc.HeatReport{}
	getJSON(t, base+"?misplaced", &report)
	if report.Files != nil || report.Blocks != nil || len(report.Misplaced) != 2 {
		t.Errorf("?misplaced report = %+v, want findings only", report)
	}

	var ignore any
	if code := getJSON(t, base+"?top=bogus", &ignore); code != http.StatusBadRequest {
		t.Errorf("GET ?top=bogus = %d, want 400", code)
	}
	if code := getJSON(t, base+"?misplaced=bogus", &ignore); code != http.StatusBadRequest {
		t.Errorf("GET ?misplaced=bogus = %d, want 400", code)
	}
}
