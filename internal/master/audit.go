package master

import (
	"time"

	"repro/internal/audit"
	"repro/internal/namespace"
	"repro/internal/rpc"
	"repro/internal/trace"
)

// opAudit carries one audited namespace RPC from handler start to
// completion. It bundles the instrumentation every such handler
// needs — the op metrics and "master.<op>" span from trackOpSpan, the
// namespace.OpStats the handler threads into its namespace call, and
// the audit entry under construction — so the handlers stay one
// defer-line wide:
//
//	op := s.m.beginOp("mkdir", args.ReqHeader, args.Path, "")
//	defer op.Finish(&err)
//	return wire(s.m.ns.Mkdir(args.Path, args.Parents, args.Owner, op.Stats()))
type opAudit struct {
	m       *Master
	sp      *trace.ActiveSpan
	done    func(*error)
	st      namespace.OpStats
	entry   audit.Entry
	start   time.Time
	arrived bool
}

// beginOp starts the shared instrumentation of one audited namespace
// RPC. path and dst prefill the entry's paths (dst is "" except for
// rename). Queue wait is computed against the arrival time the RPC
// codec stamped onto the header; zero when the request came in
// through an uninstrumented transport.
func (m *Master) beginOp(op string, h rpc.ReqHeader, path, dst string) *opAudit {
	sp, done := m.trackOpSpan(op, h)
	a := &opAudit{m: m, sp: sp, done: done, start: time.Now()}
	a.entry = audit.Entry{Op: op, Path: path, Dst: dst, TraceID: h.ReqID}
	if arrival := h.Arrival(); arrival > 0 {
		a.arrived = true
		if q := a.start.UnixNano() - arrival; q > 0 {
			a.entry.QueueNs = q
		}
	}
	return a
}

// Span returns the op's span, for handlers that parent sub-spans
// under it (AddBlock's placement scoring).
func (a *opAudit) Span() *trace.ActiveSpan { return a.sp }

// Stats returns the OpStats the handler passes into namespace calls;
// the namespace fills in lock-wait, apply, append, and fsync times.
func (a *opAudit) Stats() *namespace.OpStats { return &a.st }

// Bytes records the op's data size (committed block bytes, located
// file bytes).
func (a *opAudit) Bytes(n int64) { a.entry.Bytes = n }

// Finish completes the op: copies the namespace phase breakdown into
// the entry, annotates the span with it, observes the queue wait,
// closes the span/metrics via trackOpSpan's done, and appends the
// entry to the audit log. Use as `defer op.Finish(&err)` on a method
// with a named error return.
func (a *opAudit) Finish(errp *error) {
	e := &a.entry
	e.LockWaitNs = a.st.LockWaitNs
	e.ApplyNs = a.st.ApplyNs
	e.AppendNs = a.st.AppendNs
	e.FsyncNs = a.st.FsyncNs
	e.TotalNs = time.Since(a.start).Nanoseconds()
	// Result captures the raw error before done stamps the request-ID
	// marker onto the wire form; the entry has its own TraceID field.
	e.Result = "ok"
	if *errp != nil {
		e.Result = (*errp).Error()
	}
	a.sp.AnnotateInt("queue_ns", e.QueueNs)
	a.sp.AnnotateInt("lock_wait_ns", e.LockWaitNs)
	a.sp.AnnotateInt("apply_ns", e.ApplyNs)
	if e.AppendNs > 0 {
		a.sp.AnnotateInt("append_ns", e.AppendNs)
		a.sp.AnnotateInt("fsync_ns", e.FsyncNs)
	}
	if a.arrived {
		a.m.metrics.rpcQueueWait.Observe(float64(e.QueueNs) / 1e9)
	}
	a.done(errp)
	a.m.audit.Append(a.entry)
}

// AuditLog exposes the audit log (for the HTTP handler and tests).
func (m *Master) AuditLog() *audit.Log { return m.audit }

// GetAudit serves one page of the namespace audit log over RPC.
// Untraced and unaudited: a poller tailing the log must not fill the
// very log it reads.
func (s *Service) GetAudit(args *rpc.GetAuditArgs, reply *rpc.GetAuditReply) (err error) {
	defer s.m.trackOpUntraced("getAudit", args.ReqID)(&err)
	reply.Page = s.m.audit.Since(args.Since, args.Op, args.Limit)
	if reply.Page.Entries == nil {
		reply.Page.Entries = []audit.Entry{}
	}
	reply.Counts = s.m.audit.Counts()
	return nil
}
