package master

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/events"
	"repro/internal/heat"
	"repro/internal/rpc"
)

// This file implements the master's access-heat plane: the per-block
// and per-file decayed access counters that tell the tier-management
// machinery which data is hot, and the tier-fitness report that ranks
// blocks whose replica tier vectors contradict their heat. Workers
// deliver raw per-block deltas piggybacked on heartbeats (foldHeat);
// the master's own metadata handlers record file-level opens and
// creates (touchFileRead/touchFileWrite). The monitor loop scans for
// misplacements at history cadence and journals transitions as
// heat_misplaced events, so the journal tells *when* a block went off
// tier, not just that it is.

// heatPlane bundles the master's heat state: the two decayed maps and
// the block → path index that joins worker-reported block heat back
// to namespace files.
type heatPlane struct {
	blocks *heat.Map[core.BlockID]
	files  *heat.Map[string]

	mu    sync.Mutex
	paths map[core.BlockID]string
	// flagged records the misplacement kind last journaled per block,
	// so the scan publishes entries and kind changes, not every tick.
	flagged map[core.BlockID]string
}

func newHeatPlane(halfLife time.Duration, capacity int) *heatPlane {
	if capacity <= 0 {
		capacity = heat.DefaultMapCapacity
	}
	fileCap := capacity / 4
	if fileCap < 1 {
		fileCap = 1
	}
	return &heatPlane{
		blocks:  heat.NewMap[core.BlockID](halfLife, capacity),
		files:   heat.NewMap[string](halfLife, fileCap),
		paths:   make(map[core.BlockID]string),
		flagged: make(map[core.BlockID]string),
	}
}

// indexBlock records which file a block belongs to.
func (hp *heatPlane) indexBlock(id core.BlockID, path string) {
	hp.mu.Lock()
	hp.paths[id] = path
	hp.mu.Unlock()
}

// pathOf resolves a block to its owning file ("" when unknown).
func (hp *heatPlane) pathOf(id core.BlockID) string {
	hp.mu.Lock()
	defer hp.mu.Unlock()
	return hp.paths[id]
}

// forgetBlocks drops deleted blocks from the heat map, the path
// index, and the misplacement flag set.
func (hp *heatPlane) forgetBlocks(blocks []core.Block) {
	hp.mu.Lock()
	for _, b := range blocks {
		delete(hp.paths, b.ID)
		delete(hp.flagged, b.ID)
	}
	hp.mu.Unlock()
	for _, b := range blocks {
		hp.blocks.Remove(b.ID)
	}
}

// forgetPath drops a deleted file (or directory subtree) from the
// file heat map.
func (hp *heatPlane) forgetPath(path string) {
	prefix := strings.TrimSuffix(path, "/") + "/"
	hp.files.RemoveFunc(func(p string) bool {
		return p == path || strings.HasPrefix(p, prefix)
	})
}

// rename rewrites the file heat map and block path index after a
// namespace rename of src (file or directory) to dst.
func (hp *heatPlane) rename(src, dst string) {
	srcPrefix := strings.TrimSuffix(src, "/") + "/"
	rewrite := func(p string) (string, bool) {
		if p == src {
			return dst, true
		}
		if strings.HasPrefix(p, srcPrefix) {
			return dst + "/" + p[len(srcPrefix):], true
		}
		return p, false
	}
	hp.files.Rekey(rewrite)
	hp.mu.Lock()
	for id, p := range hp.paths {
		if np, ok := rewrite(p); ok {
			hp.paths[id] = np
		}
	}
	hp.mu.Unlock()
}

// foldHeat merges one heartbeat's worth of worker deltas into the
// cluster block heat map.
func (m *Master) foldHeat(deltas []heat.Delta) {
	if len(deltas) == 0 {
		return
	}
	nowNs := time.Now().UnixNano()
	for _, d := range deltas {
		if d.ReadOps > 0 || d.ReadBytes > 0 {
			m.heat.blocks.Add(d.Block, heat.Read, int64(d.ReadOps), d.ReadBytes, nowNs)
		}
		if d.WriteOps > 0 || d.WriteBytes > 0 {
			m.heat.blocks.Add(d.Block, heat.Write, int64(d.WriteOps), d.WriteBytes, nowNs)
		}
	}
}

// touchFileRead records one file open-for-read covering roughly
// `bytes` bytes (the requested range).
func (m *Master) touchFileRead(path string, bytes int64) {
	m.heat.files.Add(path, heat.Read, 1, bytes, time.Now().UnixNano())
}

// touchFileWrite records one file create/overwrite.
func (m *Master) touchFileWrite(path string) {
	m.heat.files.Add(path, heat.Write, 1, 0, time.Now().UnixNano())
}

// Tier-fitness thresholds. Hotness is judged both absolutely (a block
// touched less than ~hotMinOps decayed ops is never "hot") and
// relative to the current hottest block, so the report adapts to the
// cluster's activity level instead of hard-coding an ops rate.
const (
	heatHotMinOps  = 2.0  // absolute floor for "hot"
	heatHotFrac    = 0.10 // hot ⇒ within 10× of the hottest block
	heatColdMinOps = 0.05 // absolute ceiling for "cold"
	heatColdFrac   = 0.01 // cold ⇒ under 1% of the hottest block
	defaultHeatTop = 20   // list cap when a request leaves Top zero
)

// tierRank orders tiers premium-first for misplacement scoring:
// MEMORY=0, SSD=1, HDD=2, REMOTE=3 — which is exactly the tier
// enumeration order.
func tierRank(t core.StorageTier) int { return int(t) }

// misplacedFrom computes the tier-fitness findings for a block heat
// snapshot: hot blocks whose replicas sit only on cold tiers
// (HDD/REMOTE) and cold blocks squatting on premium tiers
// (MEMORY/SSD), ranked by heat×misplacement. Blocks without located
// replicas are skipped — there is no tier vector to judge.
func (m *Master) misplacedFrom(entries []heat.Entry[core.BlockID], maxHeat float64) []rpc.MisplacedBlock {
	hotCut := heatHotMinOps
	if f := heatHotFrac * maxHeat; f > hotCut {
		hotCut = f
	}
	coldCut := heatColdMinOps
	if f := heatColdFrac * maxHeat; f > coldCut {
		coldCut = f
	}
	var out []rpc.MisplacedBlock
	for _, e := range entries {
		replicas := m.blocks.Replicas(e.Key)
		if len(replicas) == 0 {
			continue
		}
		var tiers [core.NumTiers]int
		best := tierRank(core.TierRemote)
		for _, r := range replicas {
			tiers[r.Tier]++
			if rank := tierRank(r.Tier); rank < best {
				best = rank
			}
		}
		h := e.Stat.Heat()
		mb := rpc.MisplacedBlock{
			Block:    e.Key,
			Path:     m.heat.pathOf(e.Key),
			Heat:     h,
			Tiers:    tiers,
			BestTier: core.StorageTier(best),
		}
		switch {
		case h >= hotCut && best >= tierRank(core.TierHDD):
			// Every replica is on HDD or REMOTE: a hot block with no
			// premium copy. The further the best replica is from SSD,
			// the worse the misplacement.
			mb.Kind = rpc.MisplacedHotOnCold
			mb.Misplacement = float64(best-1) / 3
			mb.Score = h * mb.Misplacement
		case h < coldCut && best <= tierRank(core.TierSSD):
			// A copy occupies MEMORY or SSD that nothing reads.
			mb.Kind = rpc.MisplacedColdOnPremium
			mb.Misplacement = float64(2-best) / 3
			mb.Score = mb.Misplacement
		default:
			continue
		}
		if be, ok := m.placementFor(e.Key); ok {
			mb.DecisionTraceID = be.TraceID
			mb.DecisionTimeNs = be.TimeNs
		}
		out = append(out, mb)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Score > out[j].Score })
	return out
}

// heatAggregate summarises a block heat snapshot for telemetry
// samples: totals, the hottest block, per-tier heat (each block's
// heat split evenly across its replicas), and misplacement counts.
func (m *Master) heatAggregate(entries []heat.Entry[core.BlockID], misplaced []rpc.MisplacedBlock) rpc.HeatAggregate {
	agg := rpc.HeatAggregate{
		TrackedBlocks: len(entries),
		TrackedFiles:  m.heat.files.Len(),
	}
	for _, e := range entries {
		h := e.Stat.Heat()
		agg.TotalHeat += h
		if h > agg.MaxHeat {
			agg.MaxHeat = h
		}
		replicas := m.blocks.Replicas(e.Key)
		if len(replicas) == 0 {
			continue
		}
		share := h / float64(len(replicas))
		for _, r := range replicas {
			agg.TierHeat[r.Tier] += share
		}
	}
	for _, mb := range misplaced {
		if mb.Kind == rpc.MisplacedHotOnCold {
			agg.MisplacedHot++
		} else {
			agg.MisplacedCold++
		}
	}
	return agg
}

// liveHeatAggregate computes the current heat summary for telemetry
// samples.
func (m *Master) liveHeatAggregate() rpc.HeatAggregate {
	entries := m.heat.blocks.Snapshot(time.Now().UnixNano())
	var maxHeat float64
	if len(entries) > 0 {
		maxHeat = entries[0].Stat.Heat()
	}
	return m.heatAggregate(entries, m.misplacedFrom(entries, maxHeat))
}

// heatReport assembles the full heat document served by Master.GetHeat
// and /debug/heat. top caps each list (<= 0 selects defaultHeatTop);
// file restricts the block list to one file's blocks; misplacedOnly
// omits the file/block rankings.
func (m *Master) heatReport(top int, file string, misplacedOnly bool) rpc.HeatReport {
	if top <= 0 {
		top = defaultHeatTop
	}
	nowNs := time.Now().UnixNano()
	blockEntries := m.heat.blocks.Snapshot(nowNs)
	var maxHeat float64
	if len(blockEntries) > 0 {
		maxHeat = blockEntries[0].Stat.Heat()
	}
	misplaced := m.misplacedFrom(blockEntries, maxHeat)

	report := rpc.HeatReport{
		TimeNs:     nowNs,
		HalfLifeNs: int64(m.heat.blocks.HalfLife()),
		Aggregate:  m.heatAggregate(blockEntries, misplaced),
	}
	if len(misplaced) > top {
		misplaced = misplaced[:top]
	}
	report.Misplaced = misplaced
	if misplacedOnly {
		return report
	}

	for _, e := range m.heat.files.Snapshot(nowNs) {
		if file != "" && e.Key != file {
			continue
		}
		report.Files = append(report.Files, rpc.FileHeat{
			Path:   e.Key,
			Read:   rpc.HeatScore{Ops: e.Stat.Read.Ops, Bytes: e.Stat.Read.Bytes},
			Write:  rpc.HeatScore{Ops: e.Stat.Write.Ops, Bytes: e.Stat.Write.Bytes},
			Heat:   e.Stat.Heat(),
			LastNs: e.Stat.LastNs,
		})
		if len(report.Files) >= top {
			break
		}
	}
	for _, e := range blockEntries {
		path := m.heat.pathOf(e.Key)
		if file != "" && path != file {
			continue
		}
		bh := rpc.BlockHeat{
			Block:  e.Key,
			Path:   path,
			Read:   rpc.HeatScore{Ops: e.Stat.Read.Ops, Bytes: e.Stat.Read.Bytes},
			Write:  rpc.HeatScore{Ops: e.Stat.Write.Ops, Bytes: e.Stat.Write.Bytes},
			Heat:   e.Stat.Heat(),
			LastNs: e.Stat.LastNs,
		}
		for _, r := range m.blocks.Replicas(e.Key) {
			bh.Tiers[r.Tier]++
		}
		report.Blocks = append(report.Blocks, bh)
		if len(report.Blocks) >= top {
			break
		}
	}
	return report
}

// scanMisplaced recomputes the tier-fitness findings and journals
// blocks that entered the misplaced set (or changed kind) as
// heat_misplaced events; blocks that left the set are unflagged so a
// relapse journals again. The monitor loop runs this at history
// cadence — misplacement is a trend, not a per-tick alarm.
func (m *Master) scanMisplaced() {
	nowNs := time.Now().UnixNano()
	entries := m.heat.blocks.Snapshot(nowNs)
	var maxHeat float64
	if len(entries) > 0 {
		maxHeat = entries[0].Stat.Heat()
	}
	misplaced := m.misplacedFrom(entries, maxHeat)

	current := make(map[core.BlockID]string, len(misplaced))
	for _, mb := range misplaced {
		current[mb.Block] = mb.Kind
	}
	m.heat.mu.Lock()
	var fresh []rpc.MisplacedBlock
	for _, mb := range misplaced {
		if m.heat.flagged[mb.Block] != mb.Kind {
			m.heat.flagged[mb.Block] = mb.Kind
			fresh = append(fresh, mb)
		}
	}
	for id := range m.heat.flagged {
		if _, still := current[id]; !still {
			delete(m.heat.flagged, id)
		}
	}
	m.heat.mu.Unlock()

	for _, mb := range fresh {
		attrs := []string{
			"block", formatBlockID(mb.Block),
			"path", mb.Path,
			"kind", mb.Kind,
			"heat", fmt.Sprintf("%.2f", mb.Heat),
			"score", fmt.Sprintf("%.2f", mb.Score),
			"tiers", formatTierVector(mb.Tiers),
			"best_tier", mb.BestTier.String(),
		}
		m.journal.PublishTraced(events.Warn, evHeatMisplaced, mb.DecisionTraceID,
			"block tier placement contradicts its access heat", attrs...)
	}
}

// formatTierVector renders a replica-count-per-tier vector compactly,
// e.g. "HDD:2" or "MEMORY:1,HDD:2".
func formatTierVector(tiers [core.NumTiers]int) string {
	var parts []string
	for t, n := range tiers {
		if n > 0 {
			parts = append(parts, fmt.Sprintf("%s:%d", core.StorageTier(t), n))
		}
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, ",")
}

// GetHeat serves the cluster heat map and tier-fitness report.
// Untraced: pollers (octopus-cli heat, /debug/heat) would churn the
// trace store.
func (s *Service) GetHeat(args *rpc.GetHeatArgs, reply *rpc.GetHeatReply) (err error) {
	defer s.m.trackOpUntraced("getHeat", args.ReqID)(&err)
	reply.Report = s.m.heatReport(args.Top, args.File, args.Misplaced)
	return nil
}
