package master

import (
	"bufio"
	"encoding/gob"
	"io"
	netrpc "net/rpc"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
)

// serverCodec is the standard gob RPC codec plus the instrumentation
// the audit log and the contention metrics need from the transport
// layer: it stamps the server-side decode time onto every request
// header (handlers subtract it from their own start time to get the
// RPC queue wait — how long a decoded request sat behind the
// connection's other work before its handler ran) and maintains the
// master's in-flight request gauge (decoded but not yet responded).
type serverCodec struct {
	rwc    io.ReadWriteCloser
	dec    *gob.Decoder
	enc    *gob.Encoder
	encBuf *bufio.Writer

	inflight *metrics.Gauge
	// outstanding counts this connection's decoded-but-unanswered
	// requests, so Close can drain the gauge exactly even when the
	// connection dies with requests in flight.
	outstanding atomic.Int64
	closed      atomic.Bool
}

// newServerCodec wraps one accepted connection. inflight may be nil
// (tests that build a codec without a metrics registry).
func newServerCodec(conn io.ReadWriteCloser, inflight *metrics.Gauge) *serverCodec {
	buf := bufio.NewWriter(conn)
	return &serverCodec{
		rwc:      conn,
		dec:      gob.NewDecoder(conn),
		enc:      gob.NewEncoder(buf),
		encBuf:   buf,
		inflight: inflight,
	}
}

func (c *serverCodec) ReadRequestHeader(r *netrpc.Request) error {
	return c.dec.Decode(r)
}

// ReadRequestBody decodes the argument struct and stamps the arrival
// time onto its embedded ReqHeader. net/rpc passes body == nil for
// requests it will reject (unknown method); gob discards the value,
// and the in-flight count still rises because a response is still
// owed and WriteResponse will pay it back.
func (c *serverCodec) ReadRequestBody(body any) error {
	if err := c.dec.Decode(body); err != nil {
		return err
	}
	if h, ok := body.(interface{ SetArrival(int64) }); ok {
		h.SetArrival(time.Now().UnixNano())
	}
	c.outstanding.Add(1)
	if c.inflight != nil {
		c.inflight.Add(1)
	}
	return nil
}

// WriteResponse is serialized by net/rpc's sending mutex.
func (c *serverCodec) WriteResponse(r *netrpc.Response, body any) error {
	if err := c.enc.Encode(r); err != nil {
		return err
	}
	if err := c.enc.Encode(body); err != nil {
		return err
	}
	err := c.encBuf.Flush()
	// Every response pays down one decoded request. Responses to
	// requests whose body decode failed never incremented; clamp so a
	// storm of them cannot drive the gauge negative.
	if n := c.outstanding.Add(-1); n < 0 {
		c.outstanding.Add(1)
	} else if c.inflight != nil {
		c.inflight.Add(-1)
	}
	return err
}

// Close releases whatever the connection still owed the gauge:
// net/rpc waits for all handlers before closing the codec, so any
// remainder here is requests that died with the connection.
func (c *serverCodec) Close() error {
	if !c.closed.CompareAndSwap(false, true) {
		return nil
	}
	if n := c.outstanding.Swap(0); n > 0 && c.inflight != nil {
		c.inflight.Add(float64(-n))
	}
	return c.rwc.Close()
}
