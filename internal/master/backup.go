package master

import (
	"fmt"
	"log/slog"
	netrpc "net/rpc"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/namespace"
	"repro/internal/rpc"
)

// BackupConfig configures a Backup Master (paper §2.1).
type BackupConfig struct {
	// PrimaryAddr is the primary master's RPC endpoint.
	PrimaryAddr string

	// CheckpointDir receives the periodic fsimage checkpoints from
	// which a failed primary can restart.
	CheckpointDir string

	// Interval paces checkpoint pulls.
	Interval time.Duration

	// Logger receives operational logs; nil discards them.
	Logger *slog.Logger
}

// Backup is a Backup Master: it maintains an up-to-date in-memory
// image of the primary's namespace and periodically persists
// checkpoints so the system can restart from the most recent one upon
// a primary failure (paper §2.1).
type Backup struct {
	cfg BackupConfig
	ns  *namespace.Namespace

	mu     sync.Mutex
	client *netrpc.Client
	lastOK time.Time

	done chan struct{}
	wg   sync.WaitGroup
	once sync.Once
}

// NewBackup starts a Backup Master syncing from cfg.PrimaryAddr.
func NewBackup(cfg BackupConfig) (*Backup, error) {
	if cfg.Interval <= 0 {
		cfg.Interval = time.Second
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.New(slog.DiscardHandler)
	}
	if cfg.CheckpointDir != "" {
		if err := os.MkdirAll(cfg.CheckpointDir, 0o755); err != nil {
			return nil, fmt.Errorf("backup: creating checkpoint dir: %w", err)
		}
	}
	ns, err := namespace.Open("")
	if err != nil {
		return nil, err
	}
	b := &Backup{cfg: cfg, ns: ns, done: make(chan struct{})}
	if err := b.syncOnce(); err != nil {
		ns.Close()
		return nil, err
	}
	b.wg.Add(1)
	go b.loop()
	return b, nil
}

// Namespace exposes the backup's standby image (for take-over and
// tests).
func (b *Backup) Namespace() *namespace.Namespace { return b.ns }

// LastSync returns the time of the last successful checkpoint pull.
func (b *Backup) LastSync() time.Time {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.lastOK
}

// Close stops the backup.
func (b *Backup) Close() error {
	b.once.Do(func() { close(b.done) })
	b.wg.Wait()
	b.mu.Lock()
	if b.client != nil {
		b.client.Close()
	}
	b.mu.Unlock()
	return b.ns.Close()
}

func (b *Backup) loop() {
	defer b.wg.Done()
	ticker := time.NewTicker(b.cfg.Interval)
	defer ticker.Stop()
	for {
		select {
		case <-b.done:
			return
		case <-ticker.C:
			if err := b.syncOnce(); err != nil {
				b.cfg.Logger.Warn("backup sync failed", "err", err)
			}
		}
	}
}

// syncOnce pulls the primary's namespace image, refreshes the standby
// copy, and persists a checkpoint file.
func (b *Backup) syncOnce() error {
	b.mu.Lock()
	if b.client == nil {
		c, err := netrpc.Dial("tcp", b.cfg.PrimaryAddr)
		if err != nil {
			b.mu.Unlock()
			return fmt.Errorf("backup: dialling primary: %w", err)
		}
		b.client = c
	}
	c := b.client
	b.mu.Unlock()

	var reply ImageReply
	if err := c.Call("Master.GetImage", &ImageArgs{}, &reply); err != nil {
		b.mu.Lock()
		if b.client == c {
			b.client.Close()
			b.client = nil
		}
		b.mu.Unlock()
		return rpc.WrapRemote(err)
	}
	if err := b.ns.LoadImageBytes(reply.Image); err != nil {
		return err
	}
	if b.cfg.CheckpointDir != "" {
		tmp := filepath.Join(b.cfg.CheckpointDir, "fsimage.tmp")
		if err := os.WriteFile(tmp, reply.Image, 0o644); err != nil {
			return fmt.Errorf("backup: writing checkpoint: %w", err)
		}
		if err := os.Rename(tmp, filepath.Join(b.cfg.CheckpointDir, "fsimage")); err != nil {
			return fmt.Errorf("backup: committing checkpoint: %w", err)
		}
	}
	b.mu.Lock()
	b.lastOK = time.Now()
	b.mu.Unlock()
	return nil
}
