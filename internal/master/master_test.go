package master

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/rpc"
)

func testMaster(t *testing.T, mutate ...func(*Config)) *Master {
	t.Helper()
	cfg := Config{
		ListenAddr:      "127.0.0.1:0",
		BlockSize:       4 << 20,
		MonitorInterval: 25 * time.Millisecond,
		WorkerTimeout:   500 * time.Millisecond,
	}
	for _, fn := range mutate {
		fn(&cfg)
	}
	m, err := New(cfg)
	if err != nil {
		t.Fatalf("master.New: %v", err)
	}
	t.Cleanup(func() { m.Close() })
	return m
}

// registerFakeWorker registers a synthetic worker directly through the
// RPC service handler (no real worker process needed).
func registerFakeWorker(t *testing.T, m *Master, id, rack string, media ...rpc.MediaStat) {
	t.Helper()
	svc := &Service{m: m}
	err := svc.Register(&rpc.RegisterArgs{
		ID:       core.WorkerID(id),
		Node:     id,
		Rack:     rack,
		DataAddr: "127.0.0.1:1",
		NetMBps:  1250,
		Media:    media,
	}, &rpc.RegisterReply{})
	if err != nil {
		t.Fatalf("Register(%s): %v", id, err)
	}
}

func mediaStat(id string, tier core.StorageTier, capBytes int64, w, r float64) rpc.MediaStat {
	return rpc.MediaStat{
		ID: core.StorageID(id), Tier: tier,
		Capacity: capBytes, Remaining: capBytes,
		WriteMBps: w, ReadMBps: r,
	}
}

func TestTierReportsAggregation(t *testing.T) {
	m := testMaster(t)
	registerFakeWorker(t, m, "w1", "/r1",
		mediaStat("w1:mem0", core.TierMemory, 100, 1000, 2000),
		mediaStat("w1:hdd0", core.TierHDD, 400, 120, 170),
	)
	registerFakeWorker(t, m, "w2", "/r2",
		mediaStat("w2:hdd0", core.TierHDD, 400, 140, 190),
	)
	reports := m.tierReports()
	if len(reports) != 2 {
		t.Fatalf("reports = %d tiers, want 2", len(reports))
	}
	if reports[0].Tier != core.TierMemory || reports[1].Tier != core.TierHDD {
		t.Fatalf("tier order wrong: %+v", reports)
	}
	hdd := reports[1]
	if hdd.NumMedia != 2 || hdd.NumWorkers != 2 || hdd.Capacity != 800 {
		t.Errorf("hdd aggregate = %+v", hdd)
	}
	if hdd.WriteThruMBps != 130 { // (120+140)/2
		t.Errorf("hdd avg write = %v, want 130", hdd.WriteThruMBps)
	}
}

func TestHeartbeatUnknownWorkerDemandsReRegistration(t *testing.T) {
	m := testMaster(t)
	svc := &Service{m: m}
	err := svc.Heartbeat(&rpc.HeartbeatArgs{ID: "ghost"}, &rpc.HeartbeatReply{})
	if err == nil {
		t.Fatal("heartbeat from unregistered worker accepted")
	}
	if !errors.Is(rpc.DecodeError(err.Error()), core.ErrNotFound) {
		t.Errorf("err = %v, want wrapped ErrNotFound", err)
	}
}

func TestWorkerExpiry(t *testing.T) {
	m := testMaster(t)
	registerFakeWorker(t, m, "w1", "/r1", mediaStat("w1:hdd0", core.TierHDD, 400, 120, 170))
	if m.NumWorkers() != 1 {
		t.Fatal("worker not registered")
	}
	// Without heartbeats, the monitor expires the worker.
	deadline := time.Now().Add(5 * time.Second)
	for m.NumWorkers() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("worker never expired")
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestSnapshotCaching(t *testing.T) {
	m := testMaster(t)
	registerFakeWorker(t, m, "w1", "/r1", mediaStat("w1:hdd0", core.TierHDD, 400, 120, 170))
	s1 := m.snapshot()
	s2 := m.snapshot()
	if s1 != s2 {
		t.Error("snapshot not cached within TTL")
	}
	time.Sleep(snapshotTTL + 10*time.Millisecond)
	s3 := m.snapshot()
	if s3 == s1 {
		t.Error("snapshot cache never expires")
	}
}

func TestSnapshotIncludesScheduledLoad(t *testing.T) {
	m := testMaster(t)
	registerFakeWorker(t, m, "w1", "/r1", mediaStat("w1:hdd0", core.TierHDD, 400, 120, 170))
	m.mu.Lock()
	m.scheduled["w1:hdd0"] = 3
	m.mu.Unlock()
	time.Sleep(snapshotTTL + 10*time.Millisecond) // bust the cache
	snap := m.snapshot()
	med, ok := snap.MediaByID("w1:hdd0")
	if !ok || med.Connections != 3 {
		t.Errorf("snapshot connections = %+v, want scheduled load 3", med)
	}
}

func TestServiceNamespaceOpsWithoutWorkers(t *testing.T) {
	m := testMaster(t)
	svc := &Service{m: m}
	if err := svc.Mkdir(&rpc.MkdirArgs{Path: "/d", Parents: true}, &rpc.MkdirReply{}); err != nil {
		t.Fatal(err)
	}
	var list rpc.ListReply
	if err := svc.List(&rpc.ListArgs{Path: "/"}, &list); err != nil || len(list.Entries) != 1 {
		t.Fatalf("List = %+v, %v", list, err)
	}
	// AddBlock with no workers must fail with ErrNoWorkers, not panic.
	if err := svc.Create(&rpc.CreateArgs{
		Path: "/d/f", RepVector: core.ReplicationVectorFromFactor(1),
	}, &rpc.CreateReply{}); err != nil {
		t.Fatal(err)
	}
	err := svc.AddBlock(&rpc.AddBlockArgs{Path: "/d/f"}, &rpc.AddBlockReply{})
	if err == nil {
		t.Fatal("AddBlock with no workers succeeded")
	}
	if !errors.Is(rpc.DecodeError(err.Error()), core.ErrNoWorkers) {
		t.Errorf("err = %v, want wrapped ErrNoWorkers", err)
	}
}

func TestBlockReportReconcilesLostReplicas(t *testing.T) {
	// Negative grace disables the fresh-replica exemption so the
	// reconciliation path is exercised immediately.
	m := testMaster(t, func(c *Config) { c.ReportGrace = -time.Nanosecond })
	registerFakeWorker(t, m, "w1", "/r1", mediaStat("w1:hdd0", core.TierHDD, 4<<30, 120, 170))
	svc := &Service{m: m}

	// Create a file with one block and pretend w1 stored it.
	if err := svc.Create(&rpc.CreateArgs{Path: "/f", RepVector: core.ReplicationVectorFromFactor(1)}, &rpc.CreateReply{}); err != nil {
		t.Fatal(err)
	}
	var reply rpc.AddBlockReply
	if err := svc.AddBlock(&rpc.AddBlockArgs{Path: "/f"}, &reply); err != nil {
		t.Fatal(err)
	}
	blk := reply.Located.Block
	blk.NumBytes = 100
	if err := svc.BlockReceived(&rpc.BlockReceivedArgs{
		ID: "w1", Storage: "w1:hdd0", Block: blk,
	}, &rpc.BlockReceivedReply{}); err != nil {
		t.Fatal(err)
	}
	if got := len(m.blocks.Replicas(blk.ID)); got != 1 {
		t.Fatalf("replicas = %d, want 1", got)
	}

	// An empty block report from w1 means the replica is gone.
	if err := svc.BlockReport(&rpc.BlockReportArgs{ID: "w1"}, &rpc.BlockReportReply{}); err != nil {
		t.Fatal(err)
	}
	if got := len(m.blocks.Replicas(blk.ID)); got != 0 {
		t.Errorf("replicas after empty report = %d, want 0", got)
	}
}

func TestBlockReportRejectsUnknownBlocks(t *testing.T) {
	m := testMaster(t)
	registerFakeWorker(t, m, "w1", "/r1", mediaStat("w1:hdd0", core.TierHDD, 4<<30, 120, 170))
	svc := &Service{m: m}
	// Report a block the namespace never allocated: the master should
	// schedule its deletion on the next heartbeat.
	orphan := core.Block{ID: 4242, GenStamp: 1, NumBytes: 10}
	if err := svc.BlockReport(&rpc.BlockReportArgs{
		ID:     "w1",
		Blocks: []rpc.StoredBlock{{Storage: "w1:hdd0", Block: orphan}},
	}, &rpc.BlockReportReply{}); err != nil {
		t.Fatal(err)
	}
	var hb rpc.HeartbeatReply
	if err := svc.Heartbeat(&rpc.HeartbeatArgs{ID: "w1"}, &hb); err != nil {
		t.Fatal(err)
	}
	foundDelete := false
	for _, cmd := range hb.Commands {
		if cmd.Kind == rpc.CmdDelete && cmd.Block.ID == orphan.ID {
			foundDelete = true
		}
	}
	if !foundDelete {
		t.Errorf("no delete command for orphan block; commands = %+v", hb.Commands)
	}
}

func TestGetWorkerReports(t *testing.T) {
	m := testMaster(t)
	registerFakeWorker(t, m, "w2", "/r2", mediaStat("w2:hdd0", core.TierHDD, 400, 120, 170))
	registerFakeWorker(t, m, "w1", "/r1",
		mediaStat("w1:hdd0", core.TierHDD, 400, 120, 170),
		mediaStat("w1:mem0", core.TierMemory, 100, 1000, 2000),
	)
	svc := &Service{m: m}
	var reply rpc.WorkerReportsReply
	if err := svc.GetWorkerReports(&rpc.WorkerReportsArgs{}, &reply); err != nil {
		t.Fatal(err)
	}
	if len(reply.Workers) != 2 {
		t.Fatalf("workers = %d, want 2", len(reply.Workers))
	}
	// Sorted by ID; media sorted within each worker.
	if reply.Workers[0].ID != "w1" || reply.Workers[1].ID != "w2" {
		t.Errorf("worker order: %+v", reply.Workers)
	}
	if len(reply.Workers[0].Media) != 2 || reply.Workers[0].Media[0].ID != "w1:hdd0" {
		t.Errorf("media order: %+v", reply.Workers[0].Media)
	}
}

func TestHTTPStatusEndpoint(t *testing.T) {
	m := testMaster(t)
	registerFakeWorker(t, m, "w1", "/r1", mediaStat("w1:hdd0", core.TierHDD, 400<<20, 120, 170))
	if err := m.ns.Mkdir("/d", true, "u"); err != nil {
		t.Fatal(err)
	}

	addr, err := m.ServeHTTP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + addr + "/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st StatusReport
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Directories != 2 { // root + /d
		t.Errorf("directories = %d, want 2", st.Directories)
	}
	if len(st.Workers) != 1 || st.Workers[0].ID != "w1" {
		t.Errorf("workers = %+v", st.Workers)
	}
	if len(st.Tiers) != 1 || st.Tiers[0].Tier != "HDD" {
		t.Errorf("tiers = %+v", st.Tiers)
	}
	if st.Policies["placement"] != "MOOP" {
		t.Errorf("policies = %v", st.Policies)
	}

	// Human-readable overview.
	resp2, err := http.Get("http://" + addr + "/")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	if !strings.Contains(string(body), "OctopusFS master") {
		t.Errorf("overview page: %q", body)
	}
}
