package master

import (
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/rpc"
	"repro/internal/xfer"
)

// This file is the master's side of the transfer flight recorder: it
// keeps client-reported records (the client-side dial/ack phases of
// every read and write) in its own bounded log and fans GetTransfers
// out to every live worker so one call yields the cluster-wide
// data-path view that "octopus-cli transfers" renders.

// TransferLog exposes the master's transfer flight recorder (which
// holds client-reported records) for the HTTP endpoint and tests.
func (m *Master) TransferLog() *xfer.Log { return m.xfers }

// ReportTransfers ingests transfer records a client recorded locally,
// mirroring ReportSpans: clients push at the end of an operation so
// their side of the data path survives the client process. Untraced:
// the reporting call itself is bookkeeping, not a namespace operation.
func (s *Service) ReportTransfers(args *rpc.ReportTransfersArgs, _ *rpc.ReportTransfersReply) (err error) {
	defer s.m.trackOpUntraced("reportTransfers", args.ReqID)(&err)
	for _, r := range args.Records {
		// The master's log assigns its own sequence numbers; a
		// client-local Seq would corrupt the cursor ordering.
		r.Seq = 0
		s.m.xfers.Append(r)
	}
	return nil
}

// GetTransfers serves one page of transfer records from every source:
// the master's client-reported log plus each live worker's recorder.
// Cursors are per source, so pollers resume each source from its own
// Page.Next. Untraced: pollers would churn the trace store.
func (s *Service) GetTransfers(args *rpc.GetTransfersArgs, reply *rpc.GetTransfersReply) (err error) {
	defer s.m.trackOpUntraced("getTransfers", args.ReqID)(&err)
	reply.Sources = s.m.assembleTransfers(args.Since, args.Op, args.Limit)
	return nil
}

// assembleTransfers pages the master's own log and fans out to every
// live worker concurrently (the AssembleTrace pattern). A worker that
// fails to answer contributes its error instead of failing the whole
// call — a partial cluster view beats none.
func (m *Master) assembleTransfers(since uint64, op string, limit int) []rpc.TransferSource {
	masterSrc := rpc.TransferSource{
		Source: "master",
		Page:   m.xfers.Since(since, op, limit),
		Counts: m.xfers.Counts(),
	}
	if masterSrc.Page.Entries == nil {
		masterSrc.Page.Entries = []xfer.Record{}
	}

	type workerAddr struct {
		id   core.WorkerID
		addr string
	}
	m.mu.RLock()
	addrs := make([]workerAddr, 0, len(m.workers))
	for id, w := range m.workers {
		addrs = append(addrs, workerAddr{id: id, addr: w.dataAddr})
	}
	m.mu.RUnlock()

	fromWorkers := make([]rpc.TransferSource, len(addrs))
	var wg sync.WaitGroup
	for i, wa := range addrs {
		wg.Add(1)
		go func(i int, wa workerAddr) {
			defer wg.Done()
			src := rpc.TransferSource{Source: "worker:" + string(wa.id)}
			page, counts, err := rpc.FetchTransfers(wa.addr, since, op, limit)
			if err != nil {
				m.cfg.Logger.Warn("transfer fan-out failed",
					"worker", wa.id, "err", err)
				src.Err = err.Error()
			} else {
				src.Page = page
				src.Counts = counts
			}
			if src.Page.Entries == nil {
				src.Page.Entries = []xfer.Record{}
			}
			fromWorkers[i] = src
		}(i, wa)
	}
	wg.Wait()

	sort.Slice(fromWorkers, func(a, b int) bool {
		return fromWorkers[a].Source < fromWorkers[b].Source
	})
	return append([]rpc.TransferSource{masterSrc}, fromWorkers...)
}
